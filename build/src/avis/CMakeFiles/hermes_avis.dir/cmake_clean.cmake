file(REMOVE_RECURSE
  "CMakeFiles/hermes_avis.dir/avis_domain.cc.o"
  "CMakeFiles/hermes_avis.dir/avis_domain.cc.o.d"
  "CMakeFiles/hermes_avis.dir/video_db.cc.o"
  "CMakeFiles/hermes_avis.dir/video_db.cc.o.d"
  "libhermes_avis.a"
  "libhermes_avis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_avis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
