# Empty compiler generated dependencies file for hermes_avis.
# This may be replaced when dependencies are built.
