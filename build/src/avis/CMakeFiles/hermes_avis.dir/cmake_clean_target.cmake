file(REMOVE_RECURSE
  "libhermes_avis.a"
)
