# Empty compiler generated dependencies file for hermes_flatfile.
# This may be replaced when dependencies are built.
