file(REMOVE_RECURSE
  "CMakeFiles/hermes_flatfile.dir/flatfile_domain.cc.o"
  "CMakeFiles/hermes_flatfile.dir/flatfile_domain.cc.o.d"
  "libhermes_flatfile.a"
  "libhermes_flatfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_flatfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
