file(REMOVE_RECURSE
  "libhermes_flatfile.a"
)
