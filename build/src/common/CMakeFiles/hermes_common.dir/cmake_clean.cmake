file(REMOVE_RECURSE
  "CMakeFiles/hermes_common.dir/io.cc.o"
  "CMakeFiles/hermes_common.dir/io.cc.o.d"
  "CMakeFiles/hermes_common.dir/status.cc.o"
  "CMakeFiles/hermes_common.dir/status.cc.o.d"
  "CMakeFiles/hermes_common.dir/strings.cc.o"
  "CMakeFiles/hermes_common.dir/strings.cc.o.d"
  "CMakeFiles/hermes_common.dir/value.cc.o"
  "CMakeFiles/hermes_common.dir/value.cc.o.d"
  "libhermes_common.a"
  "libhermes_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
