# Empty compiler generated dependencies file for hermes_common.
# This may be replaced when dependencies are built.
