# Empty dependencies file for hermes_cim.
# This may be replaced when dependencies are built.
