file(REMOVE_RECURSE
  "libhermes_cim.a"
)
