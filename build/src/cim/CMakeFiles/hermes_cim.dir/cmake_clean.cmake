file(REMOVE_RECURSE
  "CMakeFiles/hermes_cim.dir/cim.cc.o"
  "CMakeFiles/hermes_cim.dir/cim.cc.o.d"
  "CMakeFiles/hermes_cim.dir/result_cache.cc.o"
  "CMakeFiles/hermes_cim.dir/result_cache.cc.o.d"
  "CMakeFiles/hermes_cim.dir/substitution.cc.o"
  "CMakeFiles/hermes_cim.dir/substitution.cc.o.d"
  "libhermes_cim.a"
  "libhermes_cim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_cim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
