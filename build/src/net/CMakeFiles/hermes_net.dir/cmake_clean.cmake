file(REMOVE_RECURSE
  "CMakeFiles/hermes_net.dir/network.cc.o"
  "CMakeFiles/hermes_net.dir/network.cc.o.d"
  "CMakeFiles/hermes_net.dir/remote_domain.cc.o"
  "CMakeFiles/hermes_net.dir/remote_domain.cc.o.d"
  "CMakeFiles/hermes_net.dir/site.cc.o"
  "CMakeFiles/hermes_net.dir/site.cc.o.d"
  "libhermes_net.a"
  "libhermes_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
