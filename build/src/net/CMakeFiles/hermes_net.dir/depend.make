# Empty dependencies file for hermes_net.
# This may be replaced when dependencies are built.
