file(REMOVE_RECURSE
  "CMakeFiles/hermes_spatial.dir/spatial_domain.cc.o"
  "CMakeFiles/hermes_spatial.dir/spatial_domain.cc.o.d"
  "libhermes_spatial.a"
  "libhermes_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
