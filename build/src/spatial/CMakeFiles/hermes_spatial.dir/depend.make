# Empty dependencies file for hermes_spatial.
# This may be replaced when dependencies are built.
