file(REMOVE_RECURSE
  "libhermes_spatial.a"
)
