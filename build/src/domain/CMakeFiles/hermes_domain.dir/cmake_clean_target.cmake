file(REMOVE_RECURSE
  "libhermes_domain.a"
)
