
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/domain/call.cc" "src/domain/CMakeFiles/hermes_domain.dir/call.cc.o" "gcc" "src/domain/CMakeFiles/hermes_domain.dir/call.cc.o.d"
  "/root/repo/src/domain/domain.cc" "src/domain/CMakeFiles/hermes_domain.dir/domain.cc.o" "gcc" "src/domain/CMakeFiles/hermes_domain.dir/domain.cc.o.d"
  "/root/repo/src/domain/registry.cc" "src/domain/CMakeFiles/hermes_domain.dir/registry.cc.o" "gcc" "src/domain/CMakeFiles/hermes_domain.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/hermes_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
