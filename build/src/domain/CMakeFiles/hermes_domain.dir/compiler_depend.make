# Empty compiler generated dependencies file for hermes_domain.
# This may be replaced when dependencies are built.
