file(REMOVE_RECURSE
  "CMakeFiles/hermes_domain.dir/call.cc.o"
  "CMakeFiles/hermes_domain.dir/call.cc.o.d"
  "CMakeFiles/hermes_domain.dir/domain.cc.o"
  "CMakeFiles/hermes_domain.dir/domain.cc.o.d"
  "CMakeFiles/hermes_domain.dir/registry.cc.o"
  "CMakeFiles/hermes_domain.dir/registry.cc.o.d"
  "libhermes_domain.a"
  "libhermes_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
