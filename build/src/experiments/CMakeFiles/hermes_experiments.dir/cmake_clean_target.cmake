file(REMOVE_RECURSE
  "libhermes_experiments.a"
)
