file(REMOVE_RECURSE
  "CMakeFiles/hermes_experiments.dir/claims.cc.o"
  "CMakeFiles/hermes_experiments.dir/claims.cc.o.d"
  "CMakeFiles/hermes_experiments.dir/fig5.cc.o"
  "CMakeFiles/hermes_experiments.dir/fig5.cc.o.d"
  "CMakeFiles/hermes_experiments.dir/fig6.cc.o"
  "CMakeFiles/hermes_experiments.dir/fig6.cc.o.d"
  "CMakeFiles/hermes_experiments.dir/tradeoff.cc.o"
  "CMakeFiles/hermes_experiments.dir/tradeoff.cc.o.d"
  "libhermes_experiments.a"
  "libhermes_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
