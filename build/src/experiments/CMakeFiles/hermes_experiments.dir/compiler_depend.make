# Empty compiler generated dependencies file for hermes_experiments.
# This may be replaced when dependencies are built.
