file(REMOVE_RECURSE
  "libhermes_dcsm.a"
)
