
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dcsm/cost_vector_db.cc" "src/dcsm/CMakeFiles/hermes_dcsm.dir/cost_vector_db.cc.o" "gcc" "src/dcsm/CMakeFiles/hermes_dcsm.dir/cost_vector_db.cc.o.d"
  "/root/repo/src/dcsm/dcsm.cc" "src/dcsm/CMakeFiles/hermes_dcsm.dir/dcsm.cc.o" "gcc" "src/dcsm/CMakeFiles/hermes_dcsm.dir/dcsm.cc.o.d"
  "/root/repo/src/dcsm/persistence.cc" "src/dcsm/CMakeFiles/hermes_dcsm.dir/persistence.cc.o" "gcc" "src/dcsm/CMakeFiles/hermes_dcsm.dir/persistence.cc.o.d"
  "/root/repo/src/dcsm/summary_table.cc" "src/dcsm/CMakeFiles/hermes_dcsm.dir/summary_table.cc.o" "gcc" "src/dcsm/CMakeFiles/hermes_dcsm.dir/summary_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/hermes_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/domain/CMakeFiles/hermes_domain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
