file(REMOVE_RECURSE
  "CMakeFiles/hermes_dcsm.dir/cost_vector_db.cc.o"
  "CMakeFiles/hermes_dcsm.dir/cost_vector_db.cc.o.d"
  "CMakeFiles/hermes_dcsm.dir/dcsm.cc.o"
  "CMakeFiles/hermes_dcsm.dir/dcsm.cc.o.d"
  "CMakeFiles/hermes_dcsm.dir/persistence.cc.o"
  "CMakeFiles/hermes_dcsm.dir/persistence.cc.o.d"
  "CMakeFiles/hermes_dcsm.dir/summary_table.cc.o"
  "CMakeFiles/hermes_dcsm.dir/summary_table.cc.o.d"
  "libhermes_dcsm.a"
  "libhermes_dcsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_dcsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
