# Empty compiler generated dependencies file for hermes_dcsm.
# This may be replaced when dependencies are built.
