file(REMOVE_RECURSE
  "CMakeFiles/hermes_relational.dir/database.cc.o"
  "CMakeFiles/hermes_relational.dir/database.cc.o.d"
  "CMakeFiles/hermes_relational.dir/relational_domain.cc.o"
  "CMakeFiles/hermes_relational.dir/relational_domain.cc.o.d"
  "CMakeFiles/hermes_relational.dir/schema.cc.o"
  "CMakeFiles/hermes_relational.dir/schema.cc.o.d"
  "CMakeFiles/hermes_relational.dir/table.cc.o"
  "CMakeFiles/hermes_relational.dir/table.cc.o.d"
  "libhermes_relational.a"
  "libhermes_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
