# Empty compiler generated dependencies file for hermes_relational.
# This may be replaced when dependencies are built.
