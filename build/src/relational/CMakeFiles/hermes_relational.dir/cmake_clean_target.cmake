file(REMOVE_RECURSE
  "libhermes_relational.a"
)
