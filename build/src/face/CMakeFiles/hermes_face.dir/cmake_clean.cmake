file(REMOVE_RECURSE
  "CMakeFiles/hermes_face.dir/face_domain.cc.o"
  "CMakeFiles/hermes_face.dir/face_domain.cc.o.d"
  "libhermes_face.a"
  "libhermes_face.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_face.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
