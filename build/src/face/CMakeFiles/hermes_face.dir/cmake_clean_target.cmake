file(REMOVE_RECURSE
  "libhermes_face.a"
)
