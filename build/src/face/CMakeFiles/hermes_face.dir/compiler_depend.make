# Empty compiler generated dependencies file for hermes_face.
# This may be replaced when dependencies are built.
