# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("lang")
subdirs("domain")
subdirs("relational")
subdirs("flatfile")
subdirs("avis")
subdirs("spatial")
subdirs("terrain")
subdirs("text")
subdirs("face")
subdirs("net")
subdirs("cim")
subdirs("dcsm")
subdirs("optimizer")
subdirs("engine")
subdirs("testbed")
subdirs("experiments")
