file(REMOVE_RECURSE
  "CMakeFiles/hermes_optimizer.dir/estimator.cc.o"
  "CMakeFiles/hermes_optimizer.dir/estimator.cc.o.d"
  "CMakeFiles/hermes_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/hermes_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/hermes_optimizer.dir/rewriter.cc.o"
  "CMakeFiles/hermes_optimizer.dir/rewriter.cc.o.d"
  "libhermes_optimizer.a"
  "libhermes_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
