# Empty dependencies file for hermes_optimizer.
# This may be replaced when dependencies are built.
