file(REMOVE_RECURSE
  "libhermes_optimizer.a"
)
