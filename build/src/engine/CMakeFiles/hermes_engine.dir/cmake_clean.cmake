file(REMOVE_RECURSE
  "CMakeFiles/hermes_engine.dir/bindings.cc.o"
  "CMakeFiles/hermes_engine.dir/bindings.cc.o.d"
  "CMakeFiles/hermes_engine.dir/executor.cc.o"
  "CMakeFiles/hermes_engine.dir/executor.cc.o.d"
  "CMakeFiles/hermes_engine.dir/mediator.cc.o"
  "CMakeFiles/hermes_engine.dir/mediator.cc.o.d"
  "libhermes_engine.a"
  "libhermes_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
