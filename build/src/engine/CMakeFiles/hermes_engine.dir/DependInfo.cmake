
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/bindings.cc" "src/engine/CMakeFiles/hermes_engine.dir/bindings.cc.o" "gcc" "src/engine/CMakeFiles/hermes_engine.dir/bindings.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/hermes_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/hermes_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/mediator.cc" "src/engine/CMakeFiles/hermes_engine.dir/mediator.cc.o" "gcc" "src/engine/CMakeFiles/hermes_engine.dir/mediator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/hermes_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/domain/CMakeFiles/hermes_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/cim/CMakeFiles/hermes_cim.dir/DependInfo.cmake"
  "/root/repo/build/src/dcsm/CMakeFiles/hermes_dcsm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hermes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/hermes_optimizer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
