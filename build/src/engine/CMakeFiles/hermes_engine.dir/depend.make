# Empty dependencies file for hermes_engine.
# This may be replaced when dependencies are built.
