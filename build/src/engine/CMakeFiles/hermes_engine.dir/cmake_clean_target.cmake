file(REMOVE_RECURSE
  "libhermes_engine.a"
)
