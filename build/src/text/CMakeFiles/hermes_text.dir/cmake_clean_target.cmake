file(REMOVE_RECURSE
  "libhermes_text.a"
)
