# Empty dependencies file for hermes_text.
# This may be replaced when dependencies are built.
