file(REMOVE_RECURSE
  "CMakeFiles/hermes_text.dir/text_domain.cc.o"
  "CMakeFiles/hermes_text.dir/text_domain.cc.o.d"
  "libhermes_text.a"
  "libhermes_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
