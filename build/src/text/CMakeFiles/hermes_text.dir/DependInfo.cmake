
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/text_domain.cc" "src/text/CMakeFiles/hermes_text.dir/text_domain.cc.o" "gcc" "src/text/CMakeFiles/hermes_text.dir/text_domain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/domain/CMakeFiles/hermes_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/hermes_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
