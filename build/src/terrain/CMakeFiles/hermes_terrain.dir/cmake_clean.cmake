file(REMOVE_RECURSE
  "CMakeFiles/hermes_terrain.dir/terrain_domain.cc.o"
  "CMakeFiles/hermes_terrain.dir/terrain_domain.cc.o.d"
  "libhermes_terrain.a"
  "libhermes_terrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_terrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
