# Empty dependencies file for hermes_terrain.
# This may be replaced when dependencies are built.
