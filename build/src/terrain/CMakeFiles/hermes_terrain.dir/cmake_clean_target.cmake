file(REMOVE_RECURSE
  "libhermes_terrain.a"
)
