file(REMOVE_RECURSE
  "libhermes_lang.a"
)
