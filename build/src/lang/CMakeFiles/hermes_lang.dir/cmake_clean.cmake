file(REMOVE_RECURSE
  "CMakeFiles/hermes_lang.dir/ast.cc.o"
  "CMakeFiles/hermes_lang.dir/ast.cc.o.d"
  "CMakeFiles/hermes_lang.dir/lexer.cc.o"
  "CMakeFiles/hermes_lang.dir/lexer.cc.o.d"
  "CMakeFiles/hermes_lang.dir/parser.cc.o"
  "CMakeFiles/hermes_lang.dir/parser.cc.o.d"
  "CMakeFiles/hermes_lang.dir/token.cc.o"
  "CMakeFiles/hermes_lang.dir/token.cc.o.d"
  "libhermes_lang.a"
  "libhermes_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
