# Empty compiler generated dependencies file for hermes_lang.
# This may be replaced when dependencies are built.
