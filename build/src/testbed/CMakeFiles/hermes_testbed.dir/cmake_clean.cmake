file(REMOVE_RECURSE
  "CMakeFiles/hermes_testbed.dir/scenario.cc.o"
  "CMakeFiles/hermes_testbed.dir/scenario.cc.o.d"
  "libhermes_testbed.a"
  "libhermes_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
