file(REMOVE_RECURSE
  "libhermes_testbed.a"
)
