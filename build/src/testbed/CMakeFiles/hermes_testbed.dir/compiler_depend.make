# Empty compiler generated dependencies file for hermes_testbed.
# This may be replaced when dependencies are built.
