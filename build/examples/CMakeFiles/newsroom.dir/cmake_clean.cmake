file(REMOVE_RECURSE
  "CMakeFiles/newsroom.dir/newsroom.cpp.o"
  "CMakeFiles/newsroom.dir/newsroom.cpp.o.d"
  "newsroom"
  "newsroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newsroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
