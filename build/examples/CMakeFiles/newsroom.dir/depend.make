# Empty dependencies file for newsroom.
# This may be replaced when dependencies are built.
