# Empty dependencies file for video_explorer.
# This may be replaced when dependencies are built.
