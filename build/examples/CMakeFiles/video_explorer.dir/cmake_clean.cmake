file(REMOVE_RECURSE
  "CMakeFiles/video_explorer.dir/video_explorer.cpp.o"
  "CMakeFiles/video_explorer.dir/video_explorer.cpp.o.d"
  "video_explorer"
  "video_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
