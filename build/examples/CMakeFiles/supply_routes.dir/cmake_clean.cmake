file(REMOVE_RECURSE
  "CMakeFiles/supply_routes.dir/supply_routes.cpp.o"
  "CMakeFiles/supply_routes.dir/supply_routes.cpp.o.d"
  "supply_routes"
  "supply_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supply_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
