# Empty dependencies file for supply_routes.
# This may be replaced when dependencies are built.
