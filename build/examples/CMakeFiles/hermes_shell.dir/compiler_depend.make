# Empty compiler generated dependencies file for hermes_shell.
# This may be replaced when dependencies are built.
