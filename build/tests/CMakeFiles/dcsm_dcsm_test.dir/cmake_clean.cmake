file(REMOVE_RECURSE
  "CMakeFiles/dcsm_dcsm_test.dir/dcsm/dcsm_test.cc.o"
  "CMakeFiles/dcsm_dcsm_test.dir/dcsm/dcsm_test.cc.o.d"
  "dcsm_dcsm_test"
  "dcsm_dcsm_test.pdb"
  "dcsm_dcsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsm_dcsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
