# Empty compiler generated dependencies file for dcsm_dcsm_test.
# This may be replaced when dependencies are built.
