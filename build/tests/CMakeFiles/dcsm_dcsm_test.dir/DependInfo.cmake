
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dcsm/dcsm_test.cc" "tests/CMakeFiles/dcsm_dcsm_test.dir/dcsm/dcsm_test.cc.o" "gcc" "tests/CMakeFiles/dcsm_dcsm_test.dir/dcsm/dcsm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/hermes_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/experiments/CMakeFiles/hermes_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/hermes_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/cim/CMakeFiles/hermes_cim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hermes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/hermes_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/dcsm/CMakeFiles/hermes_dcsm.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/hermes_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/avis/CMakeFiles/hermes_avis.dir/DependInfo.cmake"
  "/root/repo/build/src/flatfile/CMakeFiles/hermes_flatfile.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/hermes_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/terrain/CMakeFiles/hermes_terrain.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/hermes_text.dir/DependInfo.cmake"
  "/root/repo/build/src/face/CMakeFiles/hermes_face.dir/DependInfo.cmake"
  "/root/repo/build/src/domain/CMakeFiles/hermes_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/hermes_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
