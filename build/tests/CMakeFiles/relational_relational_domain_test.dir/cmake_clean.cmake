file(REMOVE_RECURSE
  "CMakeFiles/relational_relational_domain_test.dir/relational/relational_domain_test.cc.o"
  "CMakeFiles/relational_relational_domain_test.dir/relational/relational_domain_test.cc.o.d"
  "relational_relational_domain_test"
  "relational_relational_domain_test.pdb"
  "relational_relational_domain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_relational_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
