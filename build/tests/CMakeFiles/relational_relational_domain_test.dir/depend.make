# Empty dependencies file for relational_relational_domain_test.
# This may be replaced when dependencies are built.
