file(REMOVE_RECURSE
  "CMakeFiles/dcsm_summary_table_test.dir/dcsm/summary_table_test.cc.o"
  "CMakeFiles/dcsm_summary_table_test.dir/dcsm/summary_table_test.cc.o.d"
  "dcsm_summary_table_test"
  "dcsm_summary_table_test.pdb"
  "dcsm_summary_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsm_summary_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
