# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dcsm_summary_table_test.
