# Empty dependencies file for dcsm_summary_table_test.
# This may be replaced when dependencies are built.
