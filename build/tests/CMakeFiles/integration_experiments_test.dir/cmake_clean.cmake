file(REMOVE_RECURSE
  "CMakeFiles/integration_experiments_test.dir/integration/experiments_test.cc.o"
  "CMakeFiles/integration_experiments_test.dir/integration/experiments_test.cc.o.d"
  "integration_experiments_test"
  "integration_experiments_test.pdb"
  "integration_experiments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_experiments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
