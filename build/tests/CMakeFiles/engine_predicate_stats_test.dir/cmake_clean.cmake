file(REMOVE_RECURSE
  "CMakeFiles/engine_predicate_stats_test.dir/engine/predicate_stats_test.cc.o"
  "CMakeFiles/engine_predicate_stats_test.dir/engine/predicate_stats_test.cc.o.d"
  "engine_predicate_stats_test"
  "engine_predicate_stats_test.pdb"
  "engine_predicate_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_predicate_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
