# Empty compiler generated dependencies file for engine_predicate_stats_test.
# This may be replaced when dependencies are built.
