# Empty compiler generated dependencies file for net_remote_estimate_test.
# This may be replaced when dependencies are built.
