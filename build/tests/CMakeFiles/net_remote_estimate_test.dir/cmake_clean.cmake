file(REMOVE_RECURSE
  "CMakeFiles/net_remote_estimate_test.dir/net/remote_estimate_test.cc.o"
  "CMakeFiles/net_remote_estimate_test.dir/net/remote_estimate_test.cc.o.d"
  "net_remote_estimate_test"
  "net_remote_estimate_test.pdb"
  "net_remote_estimate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_remote_estimate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
