# Empty dependencies file for integration_section_examples_test.
# This may be replaced when dependencies are built.
