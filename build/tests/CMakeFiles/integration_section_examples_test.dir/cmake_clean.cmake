file(REMOVE_RECURSE
  "CMakeFiles/integration_section_examples_test.dir/integration/section_examples_test.cc.o"
  "CMakeFiles/integration_section_examples_test.dir/integration/section_examples_test.cc.o.d"
  "integration_section_examples_test"
  "integration_section_examples_test.pdb"
  "integration_section_examples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_section_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
