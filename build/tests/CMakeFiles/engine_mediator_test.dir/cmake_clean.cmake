file(REMOVE_RECURSE
  "CMakeFiles/engine_mediator_test.dir/engine/mediator_test.cc.o"
  "CMakeFiles/engine_mediator_test.dir/engine/mediator_test.cc.o.d"
  "engine_mediator_test"
  "engine_mediator_test.pdb"
  "engine_mediator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_mediator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
