# Empty dependencies file for engine_mediator_test.
# This may be replaced when dependencies are built.
