# Empty dependencies file for face_face_test.
# This may be replaced when dependencies are built.
