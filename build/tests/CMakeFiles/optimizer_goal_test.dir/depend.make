# Empty dependencies file for optimizer_goal_test.
# This may be replaced when dependencies are built.
