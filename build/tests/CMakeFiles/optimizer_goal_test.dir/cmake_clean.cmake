file(REMOVE_RECURSE
  "CMakeFiles/optimizer_goal_test.dir/optimizer/goal_test.cc.o"
  "CMakeFiles/optimizer_goal_test.dir/optimizer/goal_test.cc.o.d"
  "optimizer_goal_test"
  "optimizer_goal_test.pdb"
  "optimizer_goal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_goal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
