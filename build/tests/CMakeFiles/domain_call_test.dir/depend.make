# Empty dependencies file for domain_call_test.
# This may be replaced when dependencies are built.
