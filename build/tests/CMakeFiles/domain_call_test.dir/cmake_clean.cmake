file(REMOVE_RECURSE
  "CMakeFiles/domain_call_test.dir/domain/call_test.cc.o"
  "CMakeFiles/domain_call_test.dir/domain/call_test.cc.o.d"
  "domain_call_test"
  "domain_call_test.pdb"
  "domain_call_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_call_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
