file(REMOVE_RECURSE
  "CMakeFiles/terrain_terrain_test.dir/terrain/terrain_test.cc.o"
  "CMakeFiles/terrain_terrain_test.dir/terrain/terrain_test.cc.o.d"
  "terrain_terrain_test"
  "terrain_terrain_test.pdb"
  "terrain_terrain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrain_terrain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
