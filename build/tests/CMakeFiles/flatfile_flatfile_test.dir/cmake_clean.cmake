file(REMOVE_RECURSE
  "CMakeFiles/flatfile_flatfile_test.dir/flatfile/flatfile_test.cc.o"
  "CMakeFiles/flatfile_flatfile_test.dir/flatfile/flatfile_test.cc.o.d"
  "flatfile_flatfile_test"
  "flatfile_flatfile_test.pdb"
  "flatfile_flatfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flatfile_flatfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
