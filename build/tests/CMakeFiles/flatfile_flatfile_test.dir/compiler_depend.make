# Empty compiler generated dependencies file for flatfile_flatfile_test.
# This may be replaced when dependencies are built.
