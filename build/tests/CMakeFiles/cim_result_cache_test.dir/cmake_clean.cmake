file(REMOVE_RECURSE
  "CMakeFiles/cim_result_cache_test.dir/cim/result_cache_test.cc.o"
  "CMakeFiles/cim_result_cache_test.dir/cim/result_cache_test.cc.o.d"
  "cim_result_cache_test"
  "cim_result_cache_test.pdb"
  "cim_result_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_result_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
