file(REMOVE_RECURSE
  "CMakeFiles/relational_database_test.dir/relational/database_test.cc.o"
  "CMakeFiles/relational_database_test.dir/relational/database_test.cc.o.d"
  "relational_database_test"
  "relational_database_test.pdb"
  "relational_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
