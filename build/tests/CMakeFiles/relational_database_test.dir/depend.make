# Empty dependencies file for relational_database_test.
# This may be replaced when dependencies are built.
