file(REMOVE_RECURSE
  "CMakeFiles/dcsm_incremental_summary_test.dir/dcsm/incremental_summary_test.cc.o"
  "CMakeFiles/dcsm_incremental_summary_test.dir/dcsm/incremental_summary_test.cc.o.d"
  "dcsm_incremental_summary_test"
  "dcsm_incremental_summary_test.pdb"
  "dcsm_incremental_summary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsm_incremental_summary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
