# Empty dependencies file for dcsm_incremental_summary_test.
# This may be replaced when dependencies are built.
