# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dcsm_incremental_summary_test.
