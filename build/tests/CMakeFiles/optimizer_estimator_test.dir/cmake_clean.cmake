file(REMOVE_RECURSE
  "CMakeFiles/optimizer_estimator_test.dir/optimizer/estimator_test.cc.o"
  "CMakeFiles/optimizer_estimator_test.dir/optimizer/estimator_test.cc.o.d"
  "optimizer_estimator_test"
  "optimizer_estimator_test.pdb"
  "optimizer_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
