# Empty dependencies file for common_io_test.
# This may be replaced when dependencies are built.
