file(REMOVE_RECURSE
  "CMakeFiles/common_io_test.dir/common/io_test.cc.o"
  "CMakeFiles/common_io_test.dir/common/io_test.cc.o.d"
  "common_io_test"
  "common_io_test.pdb"
  "common_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
