file(REMOVE_RECURSE
  "CMakeFiles/avis_avis_test.dir/avis/avis_test.cc.o"
  "CMakeFiles/avis_avis_test.dir/avis/avis_test.cc.o.d"
  "avis_avis_test"
  "avis_avis_test.pdb"
  "avis_avis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avis_avis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
