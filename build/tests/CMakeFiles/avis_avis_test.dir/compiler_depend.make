# Empty compiler generated dependencies file for avis_avis_test.
# This may be replaced when dependencies are built.
