file(REMOVE_RECURSE
  "CMakeFiles/cim_staleness_test.dir/cim/staleness_test.cc.o"
  "CMakeFiles/cim_staleness_test.dir/cim/staleness_test.cc.o.d"
  "cim_staleness_test"
  "cim_staleness_test.pdb"
  "cim_staleness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_staleness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
