# Empty compiler generated dependencies file for cim_staleness_test.
# This may be replaced when dependencies are built.
