file(REMOVE_RECURSE
  "CMakeFiles/dcsm_persistence_test.dir/dcsm/persistence_test.cc.o"
  "CMakeFiles/dcsm_persistence_test.dir/dcsm/persistence_test.cc.o.d"
  "dcsm_persistence_test"
  "dcsm_persistence_test.pdb"
  "dcsm_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsm_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
