# Empty compiler generated dependencies file for dcsm_persistence_test.
# This may be replaced when dependencies are built.
