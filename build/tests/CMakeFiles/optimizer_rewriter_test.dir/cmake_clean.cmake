file(REMOVE_RECURSE
  "CMakeFiles/optimizer_rewriter_test.dir/optimizer/rewriter_test.cc.o"
  "CMakeFiles/optimizer_rewriter_test.dir/optimizer/rewriter_test.cc.o.d"
  "optimizer_rewriter_test"
  "optimizer_rewriter_test.pdb"
  "optimizer_rewriter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_rewriter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
