file(REMOVE_RECURSE
  "CMakeFiles/engine_executor_edge_test.dir/engine/executor_edge_test.cc.o"
  "CMakeFiles/engine_executor_edge_test.dir/engine/executor_edge_test.cc.o.d"
  "engine_executor_edge_test"
  "engine_executor_edge_test.pdb"
  "engine_executor_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_executor_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
