# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dcsm_cost_vector_db_test.
