# Empty dependencies file for dcsm_cost_vector_db_test.
# This may be replaced when dependencies are built.
