file(REMOVE_RECURSE
  "CMakeFiles/dcsm_cost_vector_db_test.dir/dcsm/cost_vector_db_test.cc.o"
  "CMakeFiles/dcsm_cost_vector_db_test.dir/dcsm/cost_vector_db_test.cc.o.d"
  "dcsm_cost_vector_db_test"
  "dcsm_cost_vector_db_test.pdb"
  "dcsm_cost_vector_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcsm_cost_vector_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
