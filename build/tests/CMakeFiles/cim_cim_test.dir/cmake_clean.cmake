file(REMOVE_RECURSE
  "CMakeFiles/cim_cim_test.dir/cim/cim_test.cc.o"
  "CMakeFiles/cim_cim_test.dir/cim/cim_test.cc.o.d"
  "cim_cim_test"
  "cim_cim_test.pdb"
  "cim_cim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_cim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
