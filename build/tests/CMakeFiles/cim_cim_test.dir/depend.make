# Empty dependencies file for cim_cim_test.
# This may be replaced when dependencies are built.
