# Empty dependencies file for domain_registry_test.
# This may be replaced when dependencies are built.
