file(REMOVE_RECURSE
  "CMakeFiles/domain_registry_test.dir/domain/registry_test.cc.o"
  "CMakeFiles/domain_registry_test.dir/domain/registry_test.cc.o.d"
  "domain_registry_test"
  "domain_registry_test.pdb"
  "domain_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
