file(REMOVE_RECURSE
  "CMakeFiles/cim_substitution_test.dir/cim/substitution_test.cc.o"
  "CMakeFiles/cim_substitution_test.dir/cim/substitution_test.cc.o.d"
  "cim_substitution_test"
  "cim_substitution_test.pdb"
  "cim_substitution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cim_substitution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
