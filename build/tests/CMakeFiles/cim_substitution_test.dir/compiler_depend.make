# Empty compiler generated dependencies file for cim_substitution_test.
# This may be replaced when dependencies are built.
