file(REMOVE_RECURSE
  "CMakeFiles/text_text_test.dir/text/text_test.cc.o"
  "CMakeFiles/text_text_test.dir/text/text_test.cc.o.d"
  "text_text_test"
  "text_text_test.pdb"
  "text_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
