# Empty dependencies file for bench_summarization_tables.
# This may be replaced when dependencies are built.
