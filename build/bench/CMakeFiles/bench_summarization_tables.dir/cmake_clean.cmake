file(REMOVE_RECURSE
  "CMakeFiles/bench_summarization_tables.dir/summarization_tables.cc.o"
  "CMakeFiles/bench_summarization_tables.dir/summarization_tables.cc.o.d"
  "bench_summarization_tables"
  "bench_summarization_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summarization_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
