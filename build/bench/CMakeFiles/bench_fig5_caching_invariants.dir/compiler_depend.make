# Empty compiler generated dependencies file for bench_fig5_caching_invariants.
# This may be replaced when dependencies are built.
