file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_caching_invariants.dir/fig5_caching_invariants.cc.o"
  "CMakeFiles/bench_fig5_caching_invariants.dir/fig5_caching_invariants.cc.o.d"
  "bench_fig5_caching_invariants"
  "bench_fig5_caching_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_caching_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
