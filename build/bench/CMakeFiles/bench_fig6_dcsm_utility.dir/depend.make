# Empty dependencies file for bench_fig6_dcsm_utility.
# This may be replaced when dependencies are built.
