file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_dcsm_utility.dir/fig6_dcsm_utility.cc.o"
  "CMakeFiles/bench_fig6_dcsm_utility.dir/fig6_dcsm_utility.cc.o.d"
  "bench_fig6_dcsm_utility"
  "bench_fig6_dcsm_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dcsm_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
