# Empty dependencies file for bench_cim_overhead.
# This may be replaced when dependencies are built.
