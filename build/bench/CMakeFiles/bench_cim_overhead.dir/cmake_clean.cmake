file(REMOVE_RECURSE
  "CMakeFiles/bench_cim_overhead.dir/cim_overhead.cc.o"
  "CMakeFiles/bench_cim_overhead.dir/cim_overhead.cc.o.d"
  "bench_cim_overhead"
  "bench_cim_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cim_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
