file(REMOVE_RECURSE
  "CMakeFiles/bench_summarization_tradeoff.dir/summarization_tradeoff.cc.o"
  "CMakeFiles/bench_summarization_tradeoff.dir/summarization_tradeoff.cc.o.d"
  "bench_summarization_tradeoff"
  "bench_summarization_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summarization_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
