# Empty dependencies file for bench_plan_choice_accuracy.
# This may be replaced when dependencies are built.
