file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_choice_accuracy.dir/plan_choice_accuracy.cc.o"
  "CMakeFiles/bench_plan_choice_accuracy.dir/plan_choice_accuracy.cc.o.d"
  "bench_plan_choice_accuracy"
  "bench_plan_choice_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_choice_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
