#include "cim/substitution.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace hermes::cim {
namespace {

lang::DomainCallSpec SpecOf(const std::string& invariant_text, bool lhs) {
  Result<lang::Invariant> inv = lang::Parser::ParseInvariant(invariant_text);
  EXPECT_TRUE(inv.ok()) << inv.status();
  return lhs ? inv->lhs : inv->rhs;
}

TEST(SubstitutionTest, MatchBindsVariables) {
  lang::DomainCallSpec pattern =
      SpecOf("=> spatial:range(F, X, Y, D) = spatial:range(F, X, Y, D).",
             true);
  DomainCall call{"spatial",
                  "range",
                  {Value::Str("map1"), Value::Int(3), Value::Int(4),
                   Value::Int(50)}};
  Substitution theta;
  ASSERT_TRUE(MatchCallAgainstSpec(pattern, call, &theta));
  EXPECT_EQ(theta.at("F"), Value::Str("map1"));
  EXPECT_EQ(theta.at("D"), Value::Int(50));
}

TEST(SubstitutionTest, MatchChecksConstants) {
  lang::DomainCallSpec pattern =
      SpecOf("=> spatial:range('map1', X, Y, D) = spatial:range('p', X, Y, D).",
             true);
  DomainCall wrong{"spatial",
                   "range",
                   {Value::Str("other"), Value::Int(0), Value::Int(0),
                    Value::Int(1)}};
  Substitution theta;
  EXPECT_FALSE(MatchCallAgainstSpec(pattern, wrong, &theta));
}

TEST(SubstitutionTest, MatchRejectsDomainFunctionArityMismatch) {
  lang::DomainCallSpec pattern = SpecOf("=> d:f(X) = d:g(X).", true);
  Substitution theta;
  EXPECT_FALSE(MatchCallAgainstSpec(pattern, DomainCall{"e", "f", {Value::Int(1)}},
                                    &theta));
  EXPECT_FALSE(MatchCallAgainstSpec(pattern, DomainCall{"d", "g", {Value::Int(1)}},
                                    &theta));
  EXPECT_FALSE(MatchCallAgainstSpec(
      pattern, DomainCall{"d", "f", {Value::Int(1), Value::Int(2)}}, &theta));
}

TEST(SubstitutionTest, RepeatedVariableMustAgree) {
  lang::DomainCallSpec pattern = SpecOf("=> d:f(X, X) = d:g(X).", true);
  Substitution theta;
  EXPECT_TRUE(MatchCallAgainstSpec(
      pattern, DomainCall{"d", "f", {Value::Int(1), Value::Int(1)}}, &theta));
  Substitution theta2;
  EXPECT_FALSE(MatchCallAgainstSpec(
      pattern, DomainCall{"d", "f", {Value::Int(1), Value::Int(2)}}, &theta2));
}

TEST(SubstitutionTest, ApplySubstitutionGroundsBoundVars) {
  lang::DomainCallSpec rhs =
      SpecOf("D > 142 => spatial:range('map1', X, Y, D) = "
             "spatial:range('points', X, Y, 142).",
             false);
  Substitution theta{{"X", Value::Int(7)}, {"Y", Value::Int(9)}};
  lang::DomainCallSpec grounded = ApplySubstitution(rhs, theta);
  EXPECT_TRUE(grounded.is_ground());
  EXPECT_EQ(grounded.args[1].constant, Value::Int(7));
  EXPECT_EQ(grounded.args[3].constant, Value::Int(142));
}

TEST(SubstitutionTest, ApplySubstitutionLeavesUnboundVars) {
  lang::DomainCallSpec rhs =
      SpecOf("V1 <= V2 => d:sel(T, V2) >= d:sel(T, V1).", false);
  Substitution theta{{"T", Value::Str("t")}, {"V2", Value::Int(10)}};
  lang::DomainCallSpec partial = ApplySubstitution(rhs, theta);
  EXPECT_FALSE(partial.is_ground());
  EXPECT_TRUE(partial.args[1].is_variable());
  EXPECT_EQ(partial.args[1].var_name, "V1");
}

TEST(SubstitutionTest, ResolveTermWithPath) {
  Substitution theta{
      {"T", Value::Struct({{"loc", Value::Str("depot")}})}};
  lang::Term term = lang::Term::Var("T", {"loc"});
  Result<Value> v = ResolveTerm(term, theta);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Str("depot"));
}

TEST(SubstitutionTest, EvalConditionsAllHold) {
  Result<lang::Invariant> inv = lang::Parser::ParseInvariant(
      "F2 <= F1 & L1 <= L2 => v:f(V, F2, L2) >= v:f(V, F1, L1).");
  ASSERT_TRUE(inv.ok());
  Substitution theta{{"F1", Value::Int(4)},
                     {"F2", Value::Int(1)},
                     {"L1", Value::Int(47)},
                     {"L2", Value::Int(100)}};
  Result<bool> holds = EvalConditions(inv->conditions, theta);
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
}

TEST(SubstitutionTest, EvalConditionsFailsWhenViolated) {
  Result<lang::Invariant> inv =
      lang::Parser::ParseInvariant("A < B => d:f(A) <= d:f(B).");
  ASSERT_TRUE(inv.ok());
  Substitution theta{{"A", Value::Int(5)}, {"B", Value::Int(3)}};
  Result<bool> holds = EvalConditions(inv->conditions, theta);
  ASSERT_TRUE(holds.ok());
  EXPECT_FALSE(*holds);
}

TEST(SubstitutionTest, EvalConditionsUnboundVariableIsFalse) {
  Result<lang::Invariant> inv =
      lang::Parser::ParseInvariant("A < B => d:f(A) <= d:f(B).");
  ASSERT_TRUE(inv.ok());
  Substitution theta{{"A", Value::Int(5)}};  // B unbound
  Result<bool> holds = EvalConditions(inv->conditions, theta);
  ASSERT_TRUE(holds.ok());
  EXPECT_FALSE(*holds);
}

}  // namespace
}  // namespace hermes::cim
