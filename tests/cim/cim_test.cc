#include "cim/cim.h"

#include <gtest/gtest.h>

#include <map>

namespace hermes::cim {
namespace {

/// Scriptable inner domain: maps call keys to answers, counts invocations,
/// and can simulate unavailability.
class ScriptedDomain : public Domain {
 public:
  explicit ScriptedDomain(std::string name) : name_(std::move(name)) {}

  void SetAnswers(const DomainCall& call, AnswerSet answers) {
    answers_[call.ToString()] = std::move(answers);
  }
  void SetUnavailable(bool down) { down_ = down; }
  int calls() const { return calls_; }

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override { return {}; }
  Result<CallOutput> Run(const DomainCall& call) override {
    ++calls_;
    if (down_) return Status::Unavailable("scripted outage");
    auto it = answers_.find(call.ToString());
    if (it == answers_.end()) {
      return Status::NotFound("unscripted call " + call.ToString());
    }
    CallOutput out;
    out.answers = it->second;
    out.first_ms = 100.0;
    out.all_ms = 500.0;
    return out;
  }

 private:
  std::string name_;
  std::map<std::string, AnswerSet> answers_;
  bool down_ = false;
  int calls_ = 0;
};

DomainCall Range(const std::string& video, int f, int l) {
  return DomainCall{
      "video", "fto", {Value::Str(video), Value::Int(f), Value::Int(l)}};
}

struct CimFixture {
  std::shared_ptr<ScriptedDomain> inner;
  std::unique_ptr<CimDomain> cim;

  explicit CimFixture(CimOptions options = {}) {
    inner = std::make_shared<ScriptedDomain>("video");
    cim = std::make_unique<CimDomain>("cim_video", "video", inner, options);
    inner->SetAnswers(Range("rope", 4, 47),
                      {Value::Str("rupert"), Value::Str("brandon")});
    inner->SetAnswers(Range("rope", 4, 127),
                      {Value::Str("rupert"), Value::Str("brandon"),
                       Value::Str("mrs_wilson")});
  }
};

TEST(CimTest, MissForwardsAndCaches) {
  CimFixture fx;
  // Calls arrive under the CIM's registry name; they are normalized.
  DomainCall call = Range("rope", 4, 47);
  call.domain = "cim_video";
  Result<CallOutput> out = fx.cim->Run(call);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->answers.size(), 2u);
  EXPECT_EQ(fx.inner->calls(), 1);
  EXPECT_EQ(fx.cim->stats().misses, 1u);

  // Second identical call: exact hit, no inner call, much faster.
  Result<CallOutput> again = fx.cim->Run(call);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(fx.inner->calls(), 1);
  EXPECT_EQ(fx.cim->stats().exact_hits, 1u);
  EXPECT_EQ(again->answers.size(), 2u);
  EXPECT_LT(again->all_ms, out->all_ms / 10.0);
}

TEST(CimTest, CacheDisabledAlwaysCallsActual) {
  CimOptions options;
  options.use_cache = false;
  CimFixture fx(options);
  (void)fx.cim->Run(Range("rope", 4, 47));
  (void)fx.cim->Run(Range("rope", 4, 47));
  EXPECT_EQ(fx.inner->calls(), 2);
  EXPECT_EQ(fx.cim->stats().exact_hits, 0u);
}

TEST(CimTest, EqualityInvariantServesEquivalentCall) {
  CimFixture fx;
  ASSERT_TRUE(fx.cim
                  ->AddInvariants(
                      "L >= 130000 => video:fto('rope', F, L) = "
                      "video:fto('rope', F, 129999).")
                  .ok());
  fx.inner->SetAnswers(Range("rope", 4, 129999), {Value::Str("everyone")});
  // Warm the cache with the clamped call.
  (void)fx.cim->Run(Range("rope", 4, 129999));
  ASSERT_EQ(fx.inner->calls(), 1);

  // An unclamped call is served via the equality invariant.
  Result<CallOutput> out = fx.cim->Run(Range("rope", 4, 500000));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->answers, AnswerSet{Value::Str("everyone")});
  EXPECT_EQ(fx.inner->calls(), 1);  // no actual call
  EXPECT_EQ(fx.cim->stats().equality_hits, 1u);
  EXPECT_TRUE(out->complete);
}

TEST(CimTest, EqualityInvariantMatchesEitherSide) {
  CimFixture fx;
  ASSERT_TRUE(
      fx.cim->AddInvariants("=> video:fto('a', F, L) = video:fto('b', F, L).")
          .ok());
  fx.inner->SetAnswers(Range("a", 1, 2), {Value::Int(1)});
  (void)fx.cim->Run(Range("a", 1, 2));  // cache the lhs-side call
  // A call matching the *rhs* must also find it.
  Result<CallOutput> out = fx.cim->Run(Range("b", 1, 2));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(fx.cim->stats().equality_hits, 1u);
}

TEST(CimTest, SupersetInvariantGivesPartialThenCompletes) {
  CimFixture fx;
  ASSERT_TRUE(fx.cim
                  ->AddInvariants(
                      "F2 <= F1 & L1 <= L2 => video:fto(V, F2, L2) >= "
                      "video:fto(V, F1, L1).")
                  .ok());
  // Warm with the narrow range.
  (void)fx.cim->Run(Range("rope", 4, 47));
  ASSERT_EQ(fx.inner->calls(), 1);

  // The wider range gets the cached subset immediately and the actual call
  // completes the answer set.
  Result<CallOutput> out = fx.cim->Run(Range("rope", 4, 127));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(fx.cim->stats().partial_hits, 1u);
  EXPECT_EQ(fx.inner->calls(), 2);  // actual call still made
  EXPECT_TRUE(out->complete);
  ASSERT_EQ(out->answers.size(), 3u);
  // Cached subset first, then the new answers, no duplicates.
  EXPECT_EQ(out->answers[0], Value::Str("rupert"));
  EXPECT_EQ(out->answers[1], Value::Str("brandon"));
  EXPECT_EQ(out->answers[2], Value::Str("mrs_wilson"));
  // First answer beats the actual call's 100ms first-answer latency.
  EXPECT_LT(out->first_ms, 100.0);
  // Completion cannot beat the actual call.
  EXPECT_GE(out->all_ms, 500.0);
}

TEST(CimTest, SubsetInvariantDirectionAlsoWorks) {
  // lhs <= rhs: a call matching rhs can use a cached lhs as partial.
  CimFixture fx;
  ASSERT_TRUE(fx.cim
                  ->AddInvariants(
                      "F1 >= F2 & L1 <= L2 => video:fto(V, F1, L1) <= "
                      "video:fto(V, F2, L2).")
                  .ok());
  (void)fx.cim->Run(Range("rope", 4, 47));  // cache narrow (lhs side)
  Result<CallOutput> out = fx.cim->Run(Range("rope", 4, 127));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(fx.cim->stats().partial_hits, 1u);
}

TEST(CimTest, InteractiveModeServesPartialOnly) {
  CimOptions options;
  options.complete_partial_hits = false;
  CimFixture fx(options);
  ASSERT_TRUE(fx.cim
                  ->AddInvariants(
                      "F2 <= F1 & L1 <= L2 => video:fto(V, F2, L2) >= "
                      "video:fto(V, F1, L1).")
                  .ok());
  (void)fx.cim->Run(Range("rope", 4, 47));
  int calls_before = fx.inner->calls();
  Result<CallOutput> out = fx.cim->Run(Range("rope", 4, 127));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(fx.inner->calls(), calls_before);  // no actual call
  EXPECT_FALSE(out->complete);
  EXPECT_EQ(out->answers.size(), 2u);  // just the cached subset
}

TEST(CimTest, InvariantsDisabledSkipsSearch) {
  CimOptions options;
  options.use_invariants = false;
  CimFixture fx(options);
  ASSERT_TRUE(
      fx.cim->AddInvariants("=> video:fto('a', F, L) = video:fto('b', F, L).")
          .ok());
  fx.inner->SetAnswers(Range("a", 1, 2), {Value::Int(1)});
  fx.inner->SetAnswers(Range("b", 1, 2), {Value::Int(1)});
  (void)fx.cim->Run(Range("a", 1, 2));
  (void)fx.cim->Run(Range("b", 1, 2));
  EXPECT_EQ(fx.cim->stats().equality_hits, 0u);
  EXPECT_EQ(fx.inner->calls(), 2);
}

TEST(CimTest, UnavailabilityMaskedByPartialHit) {
  CimFixture fx;
  ASSERT_TRUE(fx.cim
                  ->AddInvariants(
                      "F2 <= F1 & L1 <= L2 => video:fto(V, F2, L2) >= "
                      "video:fto(V, F1, L1).")
                  .ok());
  (void)fx.cim->Run(Range("rope", 4, 47));
  fx.inner->SetUnavailable(true);
  Result<CallOutput> out = fx.cim->Run(Range("rope", 4, 127));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_FALSE(out->complete);  // best effort from the cache
  EXPECT_EQ(out->answers.size(), 2u);
  EXPECT_EQ(fx.cim->stats().unavailable_masked, 1u);
}

TEST(CimTest, UnavailabilityWithNoCacheFails) {
  CimFixture fx;
  fx.inner->SetUnavailable(true);
  Result<CallOutput> out = fx.cim->Run(Range("rope", 4, 47));
  EXPECT_TRUE(out.status().IsUnavailable());
  EXPECT_EQ(fx.cim->stats().unavailable_failed, 1u);
}

TEST(CimTest, ExactHitFasterThanEqualityHit) {
  // The paper's Figure 5: exact cache hits beat invariant-derived hits
  // because invariant matching costs time.
  CimFixture fx;
  ASSERT_TRUE(fx.cim
                  ->AddInvariants(
                      "L >= 130000 => video:fto('rope', F, L) = "
                      "video:fto('rope', F, 129999).")
                  .ok());
  fx.inner->SetAnswers(Range("rope", 4, 129999), {Value::Str("x")});
  (void)fx.cim->Run(Range("rope", 4, 129999));

  Result<CallOutput> exact = fx.cim->Run(Range("rope", 4, 129999));
  Result<CallOutput> via_inv = fx.cim->Run(Range("rope", 4, 500000));
  ASSERT_TRUE(exact.ok() && via_inv.ok());
  EXPECT_LT(exact->first_ms, via_inv->first_ms);
}

TEST(CimTest, CacheResultsDisabledDoesNotPopulate) {
  CimOptions options;
  options.cache_results = false;
  CimFixture fx(options);
  (void)fx.cim->Run(Range("rope", 4, 47));
  (void)fx.cim->Run(Range("rope", 4, 47));
  EXPECT_EQ(fx.inner->calls(), 2);
  EXPECT_EQ(fx.cim->cache().size(), 0u);
}

TEST(CimTest, BestPartialIsLargestCachedSubset) {
  CimFixture fx;
  ASSERT_TRUE(fx.cim
                  ->AddInvariants(
                      "F2 <= F1 & L1 <= L2 => video:fto(V, F2, L2) >= "
                      "video:fto(V, F1, L1).")
                  .ok());
  fx.inner->SetAnswers(Range("rope", 10, 20), {Value::Str("rupert")});
  fx.inner->SetAnswers(Range("rope", 4, 500),
                       {Value::Str("rupert"), Value::Str("brandon"),
                        Value::Str("phillip"), Value::Str("janet")});
  (void)fx.cim->Run(Range("rope", 10, 20));  // small subset
  (void)fx.cim->Run(Range("rope", 4, 500));  // larger subset
  fx.inner->SetAnswers(Range("rope", 1, 1000),
                       {Value::Str("rupert"), Value::Str("brandon"),
                        Value::Str("phillip"), Value::Str("janet"),
                        Value::Str("david")});
  Result<CallOutput> out = fx.cim->Run(Range("rope", 1, 1000));
  ASSERT_TRUE(out.ok());
  // The larger cached subset (4 answers) should lead; answer 0..3 from it.
  ASSERT_EQ(out->answers.size(), 5u);
  EXPECT_EQ(out->answers[3], Value::Str("janet"));
}

TEST(CimTest, StatsResetWorks) {
  CimFixture fx;
  (void)fx.cim->Run(Range("rope", 4, 47));
  fx.cim->ResetStats();
  EXPECT_EQ(fx.cim->stats().misses, 0u);
  EXPECT_EQ(fx.cim->stats().actual_calls, 0u);
}

}  // namespace
}  // namespace hermes::cim
