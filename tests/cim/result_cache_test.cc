#include "cim/result_cache.h"

#include <gtest/gtest.h>

namespace hermes::cim {
namespace {

DomainCall Call(int i) {
  return DomainCall{"d", "f", {Value::Int(i)}};
}

AnswerSet Answers(int n) {
  AnswerSet out;
  for (int i = 0; i < n; ++i) out.push_back(Value::Int(i));
  return out;
}

TEST(ResultCacheTest, PutAndGet) {
  ResultCache cache;
  cache.Put(Call(1), Answers(3));
  const CacheEntry* e = cache.Get(Call(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->answers.size(), 3u);
  EXPECT_TRUE(e->complete);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ResultCacheTest, MissCountsAndReturnsNull) {
  ResultCache cache;
  EXPECT_EQ(cache.Get(Call(9)), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCacheTest, PutReplacesExisting) {
  ResultCache cache;
  cache.Put(Call(1), Answers(3));
  cache.Put(Call(1), Answers(5));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(Call(1))->answers.size(), 5u);
}

TEST(ResultCacheTest, PeekDoesNotTouchStats) {
  ResultCache cache;
  cache.Put(Call(1), Answers(1));
  EXPECT_NE(cache.Peek(Call(1)), nullptr);
  EXPECT_EQ(cache.Peek(Call(2)), nullptr);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ResultCacheTest, EntryCountEviction) {
  ResultCache cache(/*max_entries=*/2);
  cache.Put(Call(1), Answers(1));
  cache.Put(Call(2), Answers(1));
  cache.Put(Call(3), Answers(1));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Peek(Call(1)), nullptr);  // LRU victim
  EXPECT_NE(cache.Peek(Call(3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, GetRefreshesRecency) {
  ResultCache cache(/*max_entries=*/2);
  cache.Put(Call(1), Answers(1));
  cache.Put(Call(2), Answers(1));
  (void)cache.Get(Call(1));  // bump 1 to the front
  cache.Put(Call(3), Answers(1));
  EXPECT_NE(cache.Peek(Call(1)), nullptr);
  EXPECT_EQ(cache.Peek(Call(2)), nullptr);  // 2 became the victim
}

TEST(ResultCacheTest, ByteBoundEviction) {
  // Each Int answer is ~8 bytes.
  ResultCache cache(/*max_entries=*/0, /*max_bytes=*/100);
  cache.Put(Call(1), Answers(5));   // ~40 bytes
  cache.Put(Call(2), Answers(5));   // ~80 total
  cache.Put(Call(3), Answers(5));   // would exceed 100 → evict LRU
  EXPECT_LE(cache.total_bytes(), 100u);
  EXPECT_EQ(cache.Peek(Call(1)), nullptr);
}

TEST(ResultCacheTest, RemoveAndClear) {
  ResultCache cache;
  cache.Put(Call(1), Answers(2));
  cache.Put(Call(2), Answers(2));
  cache.Remove(Call(1));
  EXPECT_EQ(cache.size(), 1u);
  cache.Remove(Call(99));  // no-op
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.total_bytes(), 0u);
}

TEST(ResultCacheTest, IncompleteEntriesKeepFlag) {
  ResultCache cache;
  cache.Put(Call(1), Answers(2), /*complete=*/false);
  EXPECT_FALSE(cache.Get(Call(1))->complete);
}

TEST(ResultCacheTest, ForEachVisitsAllAndCanStop) {
  ResultCache cache;
  cache.Put(Call(1), Answers(1));
  cache.Put(Call(2), Answers(1));
  cache.Put(Call(3), Answers(1));
  int visited = 0;
  cache.ForEach([&](const CacheEntry&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 3);
  visited = 0;
  cache.ForEach([&](const CacheEntry&) {
    ++visited;
    return false;
  });
  EXPECT_EQ(visited, 1);
}

TEST(ResultCacheTest, TotalBytesTracksContent) {
  ResultCache cache;
  cache.Put(Call(1), Answers(10));
  size_t bytes = cache.total_bytes();
  EXPECT_GT(bytes, 0u);
  cache.Put(Call(2), Answers(10));
  EXPECT_EQ(cache.total_bytes(), 2 * bytes);
}

}  // namespace
}  // namespace hermes::cim
