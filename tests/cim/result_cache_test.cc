#include "cim/result_cache.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace hermes::cim {
namespace {

DomainCall Call(int i) {
  return DomainCall{"d", "f", {Value::Int(i)}};
}

AnswerSet Answers(int n) {
  AnswerSet out;
  for (int i = 0; i < n; ++i) out.push_back(Value::Int(i));
  return out;
}

TEST(ResultCacheTest, PutAndGet) {
  ResultCache cache;
  cache.Put(Call(1), Answers(3));
  std::optional<CacheEntry> e = cache.Get(Call(1));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->answers.size(), 3u);
  EXPECT_TRUE(e->complete);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ResultCacheTest, MissCountsAndReturnsNullopt) {
  ResultCache cache;
  EXPECT_FALSE(cache.Get(Call(9)).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCacheTest, PutReplacesExisting) {
  ResultCache cache;
  cache.Put(Call(1), Answers(3));
  cache.Put(Call(1), Answers(5));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(Call(1))->answers.size(), 5u);
}

TEST(ResultCacheTest, PeekDoesNotTouchStats) {
  ResultCache cache;
  cache.Put(Call(1), Answers(1));
  EXPECT_TRUE(cache.Peek(Call(1)).has_value());
  EXPECT_FALSE(cache.Peek(Call(2)).has_value());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ResultCacheTest, EntryCountEviction) {
  ResultCache cache(/*max_entries=*/2);
  cache.Put(Call(1), Answers(1));
  cache.Put(Call(2), Answers(1));
  cache.Put(Call(3), Answers(1));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Peek(Call(1)).has_value());  // LRU victim
  EXPECT_TRUE(cache.Peek(Call(3)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, GetRefreshesRecency) {
  ResultCache cache(/*max_entries=*/2);
  cache.Put(Call(1), Answers(1));
  cache.Put(Call(2), Answers(1));
  (void)cache.Get(Call(1));  // bump 1 to the front
  cache.Put(Call(3), Answers(1));
  EXPECT_TRUE(cache.Peek(Call(1)).has_value());
  EXPECT_FALSE(cache.Peek(Call(2)).has_value());  // 2 became the victim
}

TEST(ResultCacheTest, ByteBoundEviction) {
  // Each Int answer is ~8 bytes.
  ResultCache cache(/*max_entries=*/0, /*max_bytes=*/100);
  cache.Put(Call(1), Answers(5));   // ~40 bytes
  cache.Put(Call(2), Answers(5));   // ~80 total
  cache.Put(Call(3), Answers(5));   // would exceed 100 → evict LRU
  EXPECT_LE(cache.total_bytes(), 100u);
  EXPECT_FALSE(cache.Peek(Call(1)).has_value());
}

TEST(ResultCacheTest, RemoveAndClear) {
  ResultCache cache;
  cache.Put(Call(1), Answers(2));
  cache.Put(Call(2), Answers(2));
  cache.Remove(Call(1));
  EXPECT_EQ(cache.size(), 1u);
  cache.Remove(Call(99));  // no-op
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.total_bytes(), 0u);
}

TEST(ResultCacheTest, IncompleteEntriesKeepFlag) {
  ResultCache cache;
  cache.Put(Call(1), Answers(2), /*complete=*/false);
  EXPECT_FALSE(cache.Get(Call(1))->complete);
}

TEST(ResultCacheTest, ForEachVisitsAllAndCanStop) {
  ResultCache cache;
  cache.Put(Call(1), Answers(1));
  cache.Put(Call(2), Answers(1));
  cache.Put(Call(3), Answers(1));
  int visited = 0;
  cache.ForEach([&](const CacheEntry&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 3);
  visited = 0;
  cache.ForEach([&](const CacheEntry&) {
    ++visited;
    return false;
  });
  EXPECT_EQ(visited, 1);
}

TEST(ResultCacheTest, TotalBytesTracksContent) {
  ResultCache cache;
  cache.Put(Call(1), Answers(10));
  size_t bytes = cache.total_bytes();
  EXPECT_GT(bytes, 0u);
  cache.Put(Call(2), Answers(10));
  EXPECT_EQ(cache.total_bytes(), 2 * bytes);
}

// --- Sharding ------------------------------------------------------------

TEST(ResultCacheTest, ShardDefaults) {
  // Unbounded caches stripe for concurrency; bounded ones default to one
  // shard so eviction stays exact global LRU.
  EXPECT_EQ(ResultCache().num_shards(), ResultCache::kDefaultShards);
  EXPECT_EQ(ResultCache(/*max_entries=*/4).num_shards(), 1u);
  EXPECT_EQ(ResultCache(0, /*max_bytes=*/100).num_shards(), 1u);
  EXPECT_EQ(ResultCache(4, 0, /*num_shards=*/8).num_shards(), 8u);
}

TEST(ResultCacheTest, ShardedCacheServesAllEntries) {
  ResultCache cache(0, 0, /*num_shards=*/4);
  for (int i = 0; i < 64; ++i) cache.Put(Call(i), Answers(i % 5 + 1));
  EXPECT_EQ(cache.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    std::optional<CacheEntry> e = cache.Get(Call(i));
    ASSERT_TRUE(e.has_value()) << "entry " << i;
    EXPECT_EQ(e->answers.size(), static_cast<size_t>(i % 5 + 1));
  }
  EXPECT_EQ(cache.stats().hits, 64u);
}

TEST(ResultCacheTest, ShardedEntryBudgetIsSplitRoundedUp) {
  // 4 entries over 4 shards = 1 per shard; aggregate capacity is at least
  // the requested bound and never more than bound rounded up per shard.
  ResultCache cache(/*max_entries=*/4, 0, /*num_shards=*/4);
  for (int i = 0; i < 100; ++i) cache.Put(Call(i), Answers(1));
  EXPECT_LE(cache.size(), 4u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

// --- Edge cases the sharding work surfaced (regression tests) ------------

TEST(ResultCacheTest, OversizedInsertIsRejectedNotLoopEvicted) {
  ResultCache cache(0, /*max_bytes=*/50);
  cache.Put(Call(1), Answers(3));  // ~24 bytes, fits
  size_t resident = cache.size();
  cache.Put(Call(2), Answers(100));  // ~800 bytes: can never fit
  // The oversized entry is refused outright instead of evicting every
  // resident entry on its way to being evicted itself.
  EXPECT_FALSE(cache.Peek(Call(2)).has_value());
  EXPECT_EQ(cache.size(), resident);
  EXPECT_TRUE(cache.Peek(Call(1)).has_value());
  EXPECT_EQ(cache.stats().oversize_rejects, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResultCacheTest, OversizedReplacementDropsTheStaleEntry) {
  ResultCache cache(0, /*max_bytes=*/50);
  cache.Put(Call(1), Answers(3));
  cache.Put(Call(1), Answers(100));  // replacement too big to admit
  // Keeping the old answers would silently serve stale data for a call the
  // caller just re-ran; the entry is dropped instead.
  EXPECT_FALSE(cache.Peek(Call(1)).has_value());
  EXPECT_EQ(cache.stats().oversize_rejects, 1u);
}

TEST(ResultCacheTest, GetReturnsSnapshotUnaffectedByLaterMutation) {
  // The old pointer-returning API was invalidated by the next Put/Remove;
  // the value snapshot must survive arbitrary later mutations.
  ResultCache cache;
  cache.Put(Call(1), Answers(4));
  std::optional<CacheEntry> snapshot = cache.Get(Call(1));
  ASSERT_TRUE(snapshot.has_value());
  cache.Put(Call(1), Answers(9));  // replace
  cache.Remove(Call(1));           // and remove entirely
  cache.Clear();
  EXPECT_EQ(snapshot->answers.size(), 4u);
  EXPECT_EQ(snapshot->call, Call(1));
}

TEST(ResultCacheTest, ConcurrentMixedOperationsKeepExactCounters) {
  ResultCache cache(0, 0, /*num_shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        int key = (t * kOpsPerThread + i) % 97;
        cache.Put(Call(key), Answers(2));
        std::optional<CacheEntry> e = cache.Get(Call(key + 1000));
        EXPECT_FALSE(e.has_value());  // distinct key space: always a miss
        e = cache.Get(Call(key));
        if (e.has_value()) {
          EXPECT_EQ(e->answers.size(), 2u);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ResultCacheStats stats = cache.stats();
  // Every op is counted exactly once despite the concurrency.
  EXPECT_EQ(stats.insertions,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread * 2);
  // The 1000+ key space was never inserted: at least half the lookups miss.
  EXPECT_GE(stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(cache.size(), 97u);
}

}  // namespace
}  // namespace hermes::cim
