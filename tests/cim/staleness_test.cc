#include <gtest/gtest.h>

#include "cim/cim.h"

namespace hermes::cim {
namespace {

/// Counts calls; answers change with every execution, so a stale cache is
/// observably wrong.
class VersionedDomain : public Domain {
 public:
  explicit VersionedDomain(std::string name) : name_(std::move(name)) {}
  int calls() const { return calls_; }

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override { return {}; }
  Result<CallOutput> Run(const DomainCall& call) override {
    (void)call;
    ++calls_;
    CallOutput out;
    out.answers = {Value::Int(calls_)};  // version tag
    out.first_ms = out.all_ms = 100.0;
    return out;
  }

 private:
  std::string name_;
  int calls_ = 0;
};

DomainCall TheCall() { return DomainCall{"v", "now", {Value::Int(1)}}; }

TEST(CimStalenessTest, UnboundedAgeServesForever) {
  auto inner = std::make_shared<VersionedDomain>("v");
  CimDomain cim("cim_v", "v", inner);
  (void)cim.Run(TheCall());
  for (int i = 0; i < 10; ++i) {
    Result<CallOutput> out = cim.Run(TheCall());
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->answers, AnswerSet{Value::Int(1)});  // original version
  }
  EXPECT_EQ(inner->calls(), 1);
}

TEST(CimStalenessTest, AgedEntriesAreRefetched) {
  auto inner = std::make_shared<VersionedDomain>("v");
  CimOptions options;
  options.max_entry_age = 3;
  CimDomain cim("cim_v", "v", inner, options);

  (void)cim.Run(TheCall());                      // tick 1: miss, cached @1
  EXPECT_EQ(cim.Run(TheCall())->answers[0], Value::Int(1));  // tick 2: hit
  EXPECT_EQ(cim.Run(TheCall())->answers[0], Value::Int(1));  // tick 3: hit
  EXPECT_EQ(cim.Run(TheCall())->answers[0], Value::Int(1));  // tick 4: hit
  // tick 5: age (5-1) > 3 → stale, refetched and re-cached.
  Result<CallOutput> refreshed = cim.Run(TheCall());
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->answers[0], Value::Int(2));
  EXPECT_EQ(inner->calls(), 2);
  EXPECT_EQ(cim.stats().exact_hits, 3u);
  EXPECT_EQ(cim.stats().misses, 2u);
}

TEST(CimStalenessTest, StaleEntriesInvisibleToInvariants) {
  auto inner = std::make_shared<VersionedDomain>("v");
  CimOptions options;
  options.max_entry_age = 1;
  CimDomain cim("cim_v", "v", inner, options);
  ASSERT_TRUE(cim.AddInvariants("=> v:now(X) = v:now(X).").ok());

  (void)cim.Run(TheCall());  // tick 1: cached @1
  (void)cim.Run(DomainCall{"v", "now", {Value::Int(2)}});  // tick 2
  // tick 3: the @1 entry is now 2 ticks old (> 1): neither the exact probe
  // nor the (self-)equality invariant may serve it.
  Result<CallOutput> out = cim.Run(TheCall());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers[0], Value::Int(3));
  EXPECT_EQ(cim.stats().equality_hits, 0u);
}

/// VersionedDomain that can be taken down: while `down`, Run fails
/// Unavailable the way a dead site's network layer does.
class OutageDomain : public VersionedDomain {
 public:
  using VersionedDomain::VersionedDomain;
  void set_down(bool down) { down_ = down; }
  Result<CallOutput> Run(const DomainCall& call) override {
    if (down_) return Status::Unavailable("site is down");
    return VersionedDomain::Run(call);
  }

 private:
  bool down_ = false;
};

TEST(CimStalenessTest, StaleFallbackMasksAMissPathOutage) {
  auto inner = std::make_shared<OutageDomain>("v");
  CimOptions options;
  options.max_entry_age = 1;
  options.serve_stale_on_unavailable = true;
  CimDomain cim("cim_v", "v", inner, options);

  (void)cim.Run(TheCall());                                // tick 1: cached @1
  (void)cim.Run(DomainCall{"v", "now", {Value::Int(2)}});  // tick 2: ages @1
  inner->set_down(true);
  // Tick 3: the @1 entry is 2 ticks old — an ordinary miss — and the
  // actual call fails. The degradation ladder's last rung serves the stale
  // entry anyway, marked degraded.
  Result<CallOutput> degraded = cim.Run(TheCall());
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded->answers[0], Value::Int(1));  // the stale version
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(cim.stats().stale_serves, 1u);
  // A call with no cached material at all still fails cleanly.
  Result<CallOutput> lost = cim.Run(DomainCall{"v", "now", {Value::Int(9)}});
  EXPECT_FALSE(lost.ok());
  EXPECT_TRUE(lost.status().IsUnavailable());
  EXPECT_EQ(cim.stats().unavailable_failed, 1u);
  // Once the source recovers, the entry is refreshed and degradation ends.
  inner->set_down(false);
  Result<CallOutput> fresh = cim.Run(TheCall());
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->degraded);
  EXPECT_EQ(cim.stats().stale_serves, 1u);
}

TEST(CimStalenessTest, StaleFallbackIsOffByDefault) {
  auto inner = std::make_shared<OutageDomain>("v");
  CimOptions options;
  options.max_entry_age = 1;
  CimDomain cim("cim_v", "v", inner, options);
  (void)cim.Run(TheCall());                                // tick 1: cached @1
  (void)cim.Run(DomainCall{"v", "now", {Value::Int(2)}});  // tick 2: ages @1
  inner->set_down(true);
  // The historical miss-path behaviour: a miss over a dead source fails,
  // stale material or not.
  Result<CallOutput> lost = cim.Run(TheCall());
  EXPECT_FALSE(lost.ok());
  EXPECT_TRUE(lost.status().IsUnavailable());
  EXPECT_EQ(cim.stats().stale_serves, 0u);
}

}  // namespace
}  // namespace hermes::cim
