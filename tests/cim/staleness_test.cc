#include <gtest/gtest.h>

#include "cim/cim.h"

namespace hermes::cim {
namespace {

/// Counts calls; answers change with every execution, so a stale cache is
/// observably wrong.
class VersionedDomain : public Domain {
 public:
  explicit VersionedDomain(std::string name) : name_(std::move(name)) {}
  int calls() const { return calls_; }

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override { return {}; }
  Result<CallOutput> Run(const DomainCall& call) override {
    (void)call;
    ++calls_;
    CallOutput out;
    out.answers = {Value::Int(calls_)};  // version tag
    out.first_ms = out.all_ms = 100.0;
    return out;
  }

 private:
  std::string name_;
  int calls_ = 0;
};

DomainCall TheCall() { return DomainCall{"v", "now", {Value::Int(1)}}; }

TEST(CimStalenessTest, UnboundedAgeServesForever) {
  auto inner = std::make_shared<VersionedDomain>("v");
  CimDomain cim("cim_v", "v", inner);
  (void)cim.Run(TheCall());
  for (int i = 0; i < 10; ++i) {
    Result<CallOutput> out = cim.Run(TheCall());
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->answers, AnswerSet{Value::Int(1)});  // original version
  }
  EXPECT_EQ(inner->calls(), 1);
}

TEST(CimStalenessTest, AgedEntriesAreRefetched) {
  auto inner = std::make_shared<VersionedDomain>("v");
  CimOptions options;
  options.max_entry_age = 3;
  CimDomain cim("cim_v", "v", inner, options);

  (void)cim.Run(TheCall());                      // tick 1: miss, cached @1
  EXPECT_EQ(cim.Run(TheCall())->answers[0], Value::Int(1));  // tick 2: hit
  EXPECT_EQ(cim.Run(TheCall())->answers[0], Value::Int(1));  // tick 3: hit
  EXPECT_EQ(cim.Run(TheCall())->answers[0], Value::Int(1));  // tick 4: hit
  // tick 5: age (5-1) > 3 → stale, refetched and re-cached.
  Result<CallOutput> refreshed = cim.Run(TheCall());
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->answers[0], Value::Int(2));
  EXPECT_EQ(inner->calls(), 2);
  EXPECT_EQ(cim.stats().exact_hits, 3u);
  EXPECT_EQ(cim.stats().misses, 2u);
}

TEST(CimStalenessTest, StaleEntriesInvisibleToInvariants) {
  auto inner = std::make_shared<VersionedDomain>("v");
  CimOptions options;
  options.max_entry_age = 1;
  CimDomain cim("cim_v", "v", inner, options);
  ASSERT_TRUE(cim.AddInvariants("=> v:now(X) = v:now(X).").ok());

  (void)cim.Run(TheCall());  // tick 1: cached @1
  (void)cim.Run(DomainCall{"v", "now", {Value::Int(2)}});  // tick 2
  // tick 3: the @1 entry is now 2 ticks old (> 1): neither the exact probe
  // nor the (self-)equality invariant may serve it.
  Result<CallOutput> out = cim.Run(TheCall());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers[0], Value::Int(3));
  EXPECT_EQ(cim.stats().equality_hits, 0u);
}

}  // namespace
}  // namespace hermes::cim
