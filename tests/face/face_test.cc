#include "face/face_domain.h"

#include <gtest/gtest.h>

#include "engine/mediator.h"
#include "relational/relational_domain.h"

namespace hermes::face {
namespace {

std::shared_ptr<FaceDomain> MakeDomain() {
  auto d = std::make_shared<FaceDomain>("face");
  d->Enroll("stewart", 1);
  d->Enroll("dall", 2);
  d->Enroll("granger", 3);
  d->Enroll("chandler", 4);
  d->AddPhoto("photo_stewart", "stewart", 100);
  d->AddPhoto("photo_dall", "dall", 101);
  d->AddPhoto("photo_blurry", "granger", 102, /*noise=*/1.0);
  return d;
}

DomainCall Call(const std::string& fn, ValueList args) {
  return DomainCall{"face", fn, std::move(args)};
}

TEST(FaceDomainTest, IdentifyFindsEnrolledPerson) {
  auto d = MakeDomain();
  Result<CallOutput> out =
      d->Run(Call("identify", {Value::Str("photo_stewart")}));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->answers.size(), 1u);
  EXPECT_EQ(*out->answers[0].GetAttr("person"), Value::Str("stewart"));
  EXPECT_LT(out->answers[0].GetAttr("distance")->as_double(), 0.5);
}

TEST(FaceDomainTest, MatchRespectsThresholdAndOrder) {
  auto d = MakeDomain();
  Result<CallOutput> tight =
      d->Run(Call("match", {Value::Str("photo_dall"), Value::Double(0.5)}));
  ASSERT_TRUE(tight.ok());
  ASSERT_EQ(tight->answers.size(), 1u);
  EXPECT_EQ(*tight->answers[0].GetAttr("person"), Value::Str("dall"));

  Result<CallOutput> loose =
      d->Run(Call("match", {Value::Str("photo_dall"), Value::Double(100.0)}));
  ASSERT_TRUE(loose.ok());
  EXPECT_GE(loose->answers.size(), tight->answers.size());
  // Nearest first.
  double prev = 0.0;
  for (const Value& row : loose->answers) {
    double dist = row.GetAttr("distance")->as_double();
    EXPECT_GE(dist, prev);
    prev = dist;
  }
}

TEST(FaceDomainTest, NoisyPhotoStillResolves) {
  auto d = MakeDomain();
  Result<CallOutput> out =
      d->Run(Call("identify", {Value::Str("photo_blurry")}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->answers.size(), 1u);
  EXPECT_EQ(*out->answers[0].GetAttr("person"), Value::Str("granger"));
}

TEST(FaceDomainTest, PeopleListsGallery) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(Call("people", {}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers.size(), 4u);
}

TEST(FaceDomainTest, UnknownPhotoIsNotFound) {
  auto d = MakeDomain();
  EXPECT_TRUE(
      d->Run(Call("identify", {Value::Str("ghost")})).status().IsNotFound());
}

TEST(FaceDomainTest, CostGrowsWithGallery) {
  auto small = std::make_shared<FaceDomain>("face");
  small->Enroll("a", 1);
  small->AddPhoto("p", "a", 9);
  auto big = std::make_shared<FaceDomain>("face");
  for (int i = 0; i < 200; ++i) big->Enroll("p" + std::to_string(i), i);
  big->AddPhoto("p", "p0", 9);
  Result<CallOutput> cheap = small->Run(Call("identify", {Value::Str("p")}));
  Result<CallOutput> pricey = big->Run(Call("identify", {Value::Str("p")}));
  ASSERT_TRUE(cheap.ok() && pricey.ok());
  EXPECT_GT(pricey->all_ms, 2.0 * cheap->all_ms);
}

TEST(FaceDomainTest, DeterministicPerCall) {
  auto d = MakeDomain();
  Result<CallOutput> a = d->Run(Call("identify", {Value::Str("photo_dall")}));
  Result<CallOutput> b = d->Run(Call("identify", {Value::Str("photo_dall")}));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->all_ms, b->all_ms);
}

TEST(FaceDomainTest, MediatesSecuritySweepRule) {
  // Who was photographed at the depot, and what do they do? face + cast.
  Mediator med;
  ASSERT_TRUE(med.RegisterDomain("face", MakeDomain()).ok());
  auto db = std::make_shared<relational::Database>();
  ASSERT_TRUE(db->LoadCsv("staff", "name:string,clearance:string\n"
                                   "stewart,alpha\ndall,beta\n")
                  .ok());
  ASSERT_TRUE(med.RegisterDomain(
                     "relation",
                     std::make_shared<relational::RelationalDomain>("rel", db))
                  .ok());
  ASSERT_TRUE(med.LoadProgram(R"(
      sighting(Photo, Person, Clearance) :-
          in(M, face:identify(Photo)) &
          =(Person, M.person) &
          in(T, relation:equal('staff', 'name', Person)) &
          =(Clearance, T.clearance).
  )")
                  .ok());
  Result<QueryResult> res =
      med.Query("?- sighting('photo_dall', P, C).", QueryOptions{});
  ASSERT_TRUE(res.ok()) << res.status();
  ASSERT_EQ(res->execution.answers.size(), 1u);
}

}  // namespace
}  // namespace hermes::face
