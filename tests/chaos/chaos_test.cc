// Chaos suite (ctest -L chaos): the rope testbed under the canned fault
// plan in chaos.faults, served through a concurrent QueryPool. Two
// properties are on trial:
//
//   1. Liveness — every query terminates with answers or a clean error,
//      whatever the fault plan does to its sources.
//   2. Determinism — per-query outcomes (answers, virtual times, retry and
//      breaker counters, completeness) are bit-identical at 1 and 8 worker
//      threads, because every random draw is keyed on the query's own
//      identity rather than on scheduling order.
//
// CI also runs this binary under ThreadSanitizer as the chaos stress job.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "engine/mediator.h"
#include "engine/query_pool.h"
#include "net/faults/fault_plan.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

std::string CannedPlanPath() {
  return std::string(HERMES_TEST_SRCDIR) + "/chaos/chaos.faults";
}

/// One query's outcome, flattened for exact comparison across runs.
struct Outcome {
  bool ok = false;
  std::string error;
  size_t answers = 0;
  double t_all_ms = 0.0;
  uint64_t retries = 0;
  uint64_t breaker_shed = 0;
  uint64_t deadline_aborts = 0;
  uint64_t degraded_calls = 0;
  uint64_t remote_failures = 0;
  double retry_backoff_ms = 0.0;
  int completeness = 0;
  size_t lost_sources = 0;

  bool operator==(const Outcome& other) const {
    return ok == other.ok && error == other.error &&
           answers == other.answers && t_all_ms == other.t_all_ms &&
           retries == other.retries && breaker_shed == other.breaker_shed &&
           deadline_aborts == other.deadline_aborts &&
           degraded_calls == other.degraded_calls &&
           remote_failures == other.remote_failures &&
           retry_backoff_ms == other.retry_backoff_ms &&
           completeness == other.completeness &&
           lost_sources == other.lost_sources;
  }
};

std::string Describe(const Outcome& o) {
  return "ok=" + std::to_string(o.ok) + " answers=" +
         std::to_string(o.answers) + " t_all=" + std::to_string(o.t_all_ms) +
         " retries=" + std::to_string(o.retries) + " shed=" +
         std::to_string(o.breaker_shed) + " deadline_aborts=" +
         std::to_string(o.deadline_aborts) + " degraded=" +
         std::to_string(o.degraded_calls) + " completeness=" +
         std::to_string(o.completeness) + " lost=" +
         std::to_string(o.lost_sources) + " err=" + o.error;
}

/// The canned chaos workload: the appendix queries over shifting frame
/// windows, so the pool mixes cold calls, cache hits and fault windows.
std::vector<std::string> Workload(size_t n) {
  std::vector<std::string> queries;
  for (size_t i = 0; i < n; ++i) {
    int number = 1 + static_cast<int>(i % 4);
    int64_t first = 4 + static_cast<int64_t>(3 * (i % 5));
    int64_t last = first + 20 + static_cast<int64_t>(i % 7);
    queries.push_back(testbed::AppendixQuery(number, false, first, last));
  }
  return queries;
}

std::unique_ptr<Mediator> ChaosMediator(bool caching) {
  auto med = std::make_unique<Mediator>();
  resilience::ResiliencePolicy policy;
  policy.retry.max_retries = 2;
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 3;
  policy.call_deadline_ms = 25000.0;  // abandons the 30s slow injections
  med->set_default_resilience_policy(policy);
  testbed::RopeScenarioOptions scenario;
  scenario.enable_caching = caching;
  EXPECT_TRUE(testbed::SetupRopeScenario(med.get(), scenario).ok());
  EXPECT_TRUE(med->LoadFaultPlan(CannedPlanPath()).ok());
  // Per-query network streams: simulated jitter must not depend on which
  // worker thread runs the query (the fault plan's own draws never do).
  med->set_per_query_network_rng(true);
  return med;
}

/// Runs the workload through a pool of `threads` workers. `caching` keeps
/// the CIM in the stack; the bit-identity tests turn it off (and the
/// workload uses distinct query texts), because what a *shared* cache holds
/// when a query arrives legitimately depends on completion order.
std::vector<Outcome> RunPool(size_t threads,
                             const std::vector<std::string>& queries,
                             bool caching) {
  std::unique_ptr<Mediator> med = ChaosMediator(caching);
  QueryPoolOptions pool_options;
  pool_options.num_threads = threads;
  std::unique_ptr<QueryPool> pool = med->Serve(pool_options);
  QueryOptions options;
  options.use_optimizer = false;
  options.use_cim = caching;
  options.partial_results = true;
  options.record_statistics = false;
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    // Pin the ids so both runs use the same per-query streams regardless
    // of scheduling.
    QueryOptions pinned = options;
    pinned.query_id = 1000 + i;
    futures.push_back(pool->Submit(queries[i], pinned));
  }
  std::vector<Outcome> outcomes;
  for (auto& future : futures) {
    Result<QueryResult> res = future.get();
    Outcome o;
    o.ok = res.ok();
    if (!res.ok()) {
      o.error = res.status().ToString();
    } else {
      o.answers = res->execution.answers.size();
      o.t_all_ms = res->execution.t_all_ms;
      o.retries = res->metrics.retries;
      o.breaker_shed = res->metrics.breaker_shed;
      o.deadline_aborts = res->metrics.deadline_aborts;
      o.degraded_calls = res->metrics.degraded_calls;
      o.remote_failures = res->metrics.remote_failures;
      o.retry_backoff_ms = res->metrics.retry_backoff_ms;
      o.completeness = static_cast<int>(res->completeness);
      o.lost_sources = res->lost_sources.size();
    }
    outcomes.push_back(std::move(o));
  }
  pool->Shutdown();
  return outcomes;
}

TEST(ChaosTest, EveryQueryTerminatesUnderTheCannedPlan) {
  std::vector<std::string> queries = Workload(24);
  std::vector<Outcome> outcomes = RunPool(8, queries, /*caching=*/true);
  ASSERT_EQ(outcomes.size(), queries.size());
  size_t succeeded = 0, with_faults = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    // partial_results tolerates lost sources: the only clean failure class
    // left is a parse/compile error, which this workload never produces.
    EXPECT_TRUE(o.ok) << "query " << i << ": " << o.error;
    succeeded += o.ok;
    with_faults += (o.retries + o.deadline_aborts + o.breaker_shed +
                    o.remote_failures) > 0;
  }
  EXPECT_EQ(succeeded, queries.size());
  // The plan is aggressive enough that faults actually fired somewhere.
  EXPECT_GT(with_faults, 0u);
}

TEST(ChaosTest, OutcomesAreBitIdenticalAcrossThreadCounts) {
  std::vector<std::string> queries = Workload(16);
  std::vector<Outcome> serial = RunPool(1, queries, /*caching=*/false);
  std::vector<Outcome> concurrent = RunPool(8, queries, /*caching=*/false);
  ASSERT_EQ(serial.size(), concurrent.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i] == concurrent[i])
        << "query " << i << " diverged:\n  1 thread: " << Describe(serial[i])
        << "\n  8 threads: " << Describe(concurrent[i]);
  }
}

TEST(ChaosTest, RepeatRunsOfTheSamePoolConfigurationAgree) {
  std::vector<std::string> queries = Workload(12);
  std::vector<Outcome> first = RunPool(4, queries, /*caching=*/false);
  std::vector<Outcome> second = RunPool(4, queries, /*caching=*/false);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(first[i] == second[i])
        << "query " << i << " diverged:\n  run 1: " << Describe(first[i])
        << "\n  run 2: " << Describe(second[i]);
  }
}

}  // namespace
}  // namespace hermes
