// Chaos suite with the overload layer armed: per-site AIMD concurrency
// limits and hedged requests both live while the canned fault plan batters
// a generated multi-tier topology through a concurrent QueryPool. On trial:
//
//   1. Liveness — every query terminates cleanly with the governor in the
//      hot path, and the faults actually drive it: some branches are shed
//      by the limiter, some stragglers and failures are hedged.
//   2. Determinism — per-query outcomes INCLUDING every shed decision,
//      hedge issue and hedge win are bit-identical at 1, 4 and 8 worker
//      threads. All limiter windows, latency rings and hedge budgets live
//      on the query's own CallContext, so scheduling cannot change them.
//
// The brownout ladder is deliberately frozen (an unreachable up-threshold):
// it aggregates shed rates ACROSS queries, so its level is load-dependent
// by design and would couple one query's hedging to its neighbors'
// completion order — the exact coupling this suite must prove the per-query
// state machinery does not have. The ladder's own behavior is covered by
// domain_overload_test and the TSan stress suite.
//
// CI also runs this binary under ThreadSanitizer as part of the chaos
// stress job.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "engine/mediator.h"
#include "engine/query_pool.h"
#include "testbed/topology.h"

namespace hermes {
namespace {

std::string CannedPlanPath() {
  return std::string(HERMES_TEST_SRCDIR) + "/chaos/overload.faults";
}

/// One query's outcome, flattened for exact comparison across runs. Same
/// core fields as the other chaos suites plus the governor's decisions.
struct Outcome {
  bool ok = false;
  std::string error;
  size_t answers = 0;
  double t_all_ms = 0.0;
  uint64_t retries = 0;
  uint64_t remote_failures = 0;
  uint64_t failovers = 0;
  uint64_t load_shed = 0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  int completeness = 0;
  size_t lost_sources = 0;

  bool operator==(const Outcome& other) const {
    return ok == other.ok && error == other.error &&
           answers == other.answers && t_all_ms == other.t_all_ms &&
           retries == other.retries &&
           remote_failures == other.remote_failures &&
           failovers == other.failovers && load_shed == other.load_shed &&
           hedges == other.hedges && hedge_wins == other.hedge_wins &&
           completeness == other.completeness &&
           lost_sources == other.lost_sources;
  }
};

std::string Describe(const Outcome& o) {
  return "ok=" + std::to_string(o.ok) + " answers=" +
         std::to_string(o.answers) + " t_all=" + std::to_string(o.t_all_ms) +
         " retries=" + std::to_string(o.retries) + " failures=" +
         std::to_string(o.remote_failures) + " failovers=" +
         std::to_string(o.failovers) + " shed=" + std::to_string(o.load_shed) +
         " hedges=" + std::to_string(o.hedges) + " wins=" +
         std::to_string(o.hedge_wins) + " completeness=" +
         std::to_string(o.completeness) + " lost=" +
         std::to_string(o.lost_sources) + " err=" + o.error;
}

std::unique_ptr<Mediator> OverloadChaosMediator(testbed::TopologyInfo* info) {
  auto med = std::make_unique<Mediator>();
  resilience::ResiliencePolicy resilience;
  resilience.retry.max_retries = 1;
  resilience.breaker.enabled = true;
  resilience.breaker.failure_threshold = 3;
  resilience.breaker.probe_interval = 1e9;  // no probe within a query
  resilience.call_deadline_ms = 10000.0;  // abandons the 30s slow injections
  med->set_default_resilience_policy(resilience);

  testbed::TopologyOptions topo;
  topo.num_sites = 8;  // two of each tier; replicas behind every slow tier
  EXPECT_TRUE(testbed::SetupOverloadTopology(med.get(), topo, info).ok());
  med->set_per_query_network_rng(true);
  med->set_async_execution(true);  // branches scatter from one instant

  overload::OverloadPolicy policy;
  policy.limiter.enabled = true;
  policy.limiter.initial_limit = 6.0;  // below the fanout: every query
  policy.limiter.min_limit = 1.0;      // sheds its burst tail
  policy.limiter.max_limit = 16.0;
  policy.hedge.enabled = true;
  policy.hedge.quantile = 0.5;
  policy.hedge.min_samples = 3;  // the ring fills within one scatter
  policy.hedge.budget_percent = 50.0;
  overload::BrownoutController::Options frozen;
  frozen.up_threshold = 2.0;  // a shed rate no workload can reach
  EXPECT_TRUE(med->EnableOverloadControl(policy, frozen).ok());

  EXPECT_TRUE(med->LoadFaultPlan(CannedPlanPath()).ok());
  return med;
}

std::vector<Outcome> RunPool(size_t threads, size_t num_queries) {
  testbed::TopologyInfo info;
  std::unique_ptr<Mediator> med = OverloadChaosMediator(&info);
  QueryPoolOptions pool_options;
  pool_options.num_threads = threads;
  std::unique_ptr<QueryPool> pool = med->Serve(pool_options);
  QueryOptions options;
  options.use_optimizer = false;
  options.partial_results = true;  // shed branches become lost sources
  options.record_statistics = false;  // shared DCSM writes would make the
                                      // hedge baseline completion-order-
                                      // dependent
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    QueryOptions pinned = options;
    pinned.query_id = 1000 + i;
    futures.push_back(
        pool->Submit(testbed::TopologyQuery(info, i, /*fanout=*/8), pinned));
  }
  std::vector<Outcome> outcomes;
  for (auto& future : futures) {
    Result<QueryResult> res = future.get();
    Outcome o;
    o.ok = res.ok();
    if (!res.ok()) {
      o.error = res.status().ToString();
    } else {
      o.answers = res->execution.answers.size();
      o.t_all_ms = res->execution.t_all_ms;
      o.retries = res->metrics.retries;
      o.remote_failures = res->metrics.remote_failures;
      o.failovers = res->metrics.failovers;
      o.load_shed = res->metrics.load_shed;
      o.hedges = res->metrics.hedges;
      o.hedge_wins = res->metrics.hedge_wins;
      o.completeness = static_cast<int>(res->completeness);
      o.lost_sources = res->lost_sources.size();
    }
    outcomes.push_back(std::move(o));
  }
  pool->Shutdown();

  // The ladder stayed frozen: outcome determinism below rests on it.
  EXPECT_EQ(med->brownout()->transitions(), 0u);
  std::string prom = med->metrics().ExposePrometheus();
  EXPECT_NE(prom.find("hermes_overload_shed_total"), std::string::npos);
  EXPECT_NE(prom.find("hermes_hedge_issued_total"), std::string::npos);
  return outcomes;
}

TEST(OverloadChaosTest, EveryQueryTerminatesWithTheGovernorArmed) {
  std::vector<Outcome> outcomes = RunPool(8, 24);
  ASSERT_EQ(outcomes.size(), 24u);
  uint64_t shed = 0, hedges = 0, wins = 0, with_faults = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    EXPECT_TRUE(o.ok) << "query " << i << ": " << o.error;
    shed += o.load_shed;
    hedges += o.hedges;
    wins += o.hedge_wins;
    with_faults += (o.retries + o.remote_failures + o.failovers) > 0;
  }
  // The faults drove every governor path: 8-wide scatters past a 6-slot
  // window shed their tails, stragglers and failures hedged, and at least
  // one replica beat its primary home.
  EXPECT_GT(shed, 0u);
  EXPECT_GT(hedges, 0u);
  EXPECT_GT(wins, 0u);
  EXPECT_GT(with_faults, 0u);
}

TEST(OverloadChaosTest, ShedAndHedgeDecisionsAreBitIdenticalAcrossThreads) {
  std::vector<Outcome> serial = RunPool(1, 16);
  std::vector<Outcome> four = RunPool(4, 16);
  std::vector<Outcome> eight = RunPool(8, 16);
  ASSERT_EQ(serial.size(), four.size());
  ASSERT_EQ(serial.size(), eight.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i] == four[i])
        << "query " << i << " diverged:\n  1 thread:  "
        << Describe(serial[i]) << "\n  4 threads: " << Describe(four[i]);
    EXPECT_TRUE(serial[i] == eight[i])
        << "query " << i << " diverged:\n  1 thread:  "
        << Describe(serial[i]) << "\n  8 threads: " << Describe(eight[i]);
  }
}

}  // namespace
}  // namespace hermes
