// Chaos suite with adaptive execution armed: the plan cache and mid-query
// replanning both enabled while the canned fault plan batters the sources
// through a concurrent QueryPool. On trial:
//
//   1. Liveness — every query still terminates cleanly with both features
//      in the hot path.
//   2. Determinism — per-query outcomes INCLUDING the replan decisions are
//      bit-identical at 1, 4 and 8 worker threads. Replan triggers read
//      only per-query state (the query's own breaker map, estimates
//      snapshotted at plan time), so scheduling cannot change them. What
//      *is* scheduling-dependent — whether a given query hit or missed the
//      shared plan cache — must never leak into an outcome.
//
// CI also runs this binary under ThreadSanitizer as part of the chaos
// stress job.

#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "engine/mediator.h"
#include "engine/query_pool.h"
#include "net/faults/fault_plan.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

std::string CannedPlanPath() {
  return std::string(HERMES_TEST_SRCDIR) + "/chaos/chaos.faults";
}

/// One query's outcome, flattened for exact comparison across runs. Same
/// core fields as chaos_test.cc plus the adaptive-execution decisions;
/// plan-cache hit/miss is deliberately absent (what a shared cache holds
/// when a query arrives legitimately depends on completion order).
struct Outcome {
  bool ok = false;
  std::string error;
  size_t answers = 0;
  double t_all_ms = 0.0;
  uint64_t retries = 0;
  uint64_t breaker_shed = 0;
  uint64_t deadline_aborts = 0;
  uint64_t degraded_calls = 0;
  uint64_t remote_failures = 0;
  int completeness = 0;
  size_t lost_sources = 0;
  size_t replans = 0;
  std::string replan_triggers;  ///< Concatenated per-event trigger strings.

  bool operator==(const Outcome& other) const {
    return ok == other.ok && error == other.error &&
           answers == other.answers && t_all_ms == other.t_all_ms &&
           retries == other.retries && breaker_shed == other.breaker_shed &&
           deadline_aborts == other.deadline_aborts &&
           degraded_calls == other.degraded_calls &&
           remote_failures == other.remote_failures &&
           completeness == other.completeness &&
           lost_sources == other.lost_sources && replans == other.replans &&
           replan_triggers == other.replan_triggers;
  }
};

std::string Describe(const Outcome& o) {
  return "ok=" + std::to_string(o.ok) + " answers=" +
         std::to_string(o.answers) + " t_all=" + std::to_string(o.t_all_ms) +
         " retries=" + std::to_string(o.retries) + " shed=" +
         std::to_string(o.breaker_shed) + " completeness=" +
         std::to_string(o.completeness) + " lost=" +
         std::to_string(o.lost_sources) + " replans=" +
         std::to_string(o.replans) + " triggers=[" + o.replan_triggers +
         "] err=" + o.error;
}

/// Flattened (rule-free) queries so the top-level spine is replannable and
/// the plan-cache entries are rebindable: the umd video call feeds
/// per-object cornell lookups, and cornell's 30% flakiness opens per-query
/// breakers mid-join in a workload-dependent but schedule-independent set
/// of queries.
std::vector<std::string> Workload(size_t n) {
  std::vector<std::string> queries;
  for (size_t i = 0; i < n; ++i) {
    int64_t first = 4 + static_cast<int64_t>(3 * (i % 5));
    int64_t last = first + 20 + static_cast<int64_t>(17 * (i % 7));
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "?- in(Object, video:frames_to_objects('rope', %lld, %lld)) "
                  "& in(T, relation:equal('cast', role, Object)) & "
                  "=(Actor, T.name).",
                  static_cast<long long>(first), static_cast<long long>(last));
    queries.push_back(buf);
  }
  return queries;
}

std::unique_ptr<Mediator> AdaptiveChaosMediator() {
  auto med = std::make_unique<Mediator>();
  resilience::ResiliencePolicy policy;
  policy.retry.max_retries = 2;
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 3;
  policy.call_deadline_ms = 25000.0;  // abandons the 30s slow injections
  med->set_default_resilience_policy(policy);
  testbed::RopeScenarioOptions scenario;
  scenario.enable_caching = true;  // the CIMs are the replan redirect target
  EXPECT_TRUE(testbed::SetupRopeScenario(med.get(), scenario).ok());

  // Warm the CIM wrappers over the full movie BEFORE the faults land, so a
  // replan redirect always finds its answers cached: every per-object
  // relation lookup a workload window can produce is a subset of this one.
  // (Redirects that missed would fall through to the flaky site and write
  // back on success — making later queries' timing depend on completion
  // order, which the bit-identity tests below would catch.)
  QueryOptions warm;
  warm.use_optimizer = false;
  warm.use_cim = true;
  warm.record_statistics = false;
  EXPECT_TRUE(
      med->Query("?- in(Object, video:frames_to_objects('rope', 1, 129999)) "
                 "& in(T, relation:equal('cast', role, Object)) & "
                 "=(Actor, T.name).",
                 warm)
          .ok());

  // With retries on, cornell's 30% flakiness almost never costs a whole
  // call, so breakers stay closed and there is nothing to replan around.
  // The relation stack instead fails fast with a hair-trigger breaker: two
  // failed per-object lookups open it mid-join, and the replan path is the
  // only thing standing between the query and bleeding its suffix.
  resilience::ResiliencePolicy relation_policy;
  relation_policy.retry.max_retries = 0;
  relation_policy.breaker.enabled = true;
  relation_policy.breaker.failure_threshold = 2;
  relation_policy.breaker.probe_interval = 1e9;  // no probe within a query
  relation_policy.call_deadline_ms = 25000.0;
  EXPECT_TRUE(med->SetResiliencePolicy("relation", relation_policy).ok());

  EXPECT_TRUE(med->LoadFaultPlan(CannedPlanPath()).ok());
  med->set_per_query_network_rng(true);
  EXPECT_TRUE(med->EnablePlanCache().ok());
  engine::op::ReplanOptions replan;
  replan.enabled = true;
  med->set_replan_options(replan);
  return med;
}

std::vector<Outcome> RunPool(size_t threads,
                             const std::vector<std::string>& queries) {
  std::unique_ptr<Mediator> med = AdaptiveChaosMediator();
  QueryPoolOptions pool_options;
  pool_options.num_threads = threads;
  std::unique_ptr<QueryPool> pool = med->Serve(pool_options);
  QueryOptions options;
  options.use_optimizer = false;
  options.use_cim = false;  // the CIM enters only through a replan redirect
  options.partial_results = true;
  options.record_statistics = false;
  options.explain = true;
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryOptions pinned = options;
    pinned.query_id = 1000 + i;
    futures.push_back(pool->Submit(queries[i], pinned));
  }
  std::vector<Outcome> outcomes;
  for (auto& future : futures) {
    Result<QueryResult> res = future.get();
    Outcome o;
    o.ok = res.ok();
    if (!res.ok()) {
      o.error = res.status().ToString();
    } else {
      o.answers = res->execution.answers.size();
      o.t_all_ms = res->execution.t_all_ms;
      o.retries = res->metrics.retries;
      o.breaker_shed = res->metrics.breaker_shed;
      o.deadline_aborts = res->metrics.deadline_aborts;
      o.degraded_calls = res->metrics.degraded_calls;
      o.remote_failures = res->metrics.remote_failures;
      o.completeness = static_cast<int>(res->completeness);
      o.lost_sources = res->lost_sources.size();
      o.replans = res->replan_events.size();
      for (const engine::op::ReplanEvent& ev : res->replan_events) {
        o.replan_triggers += ev.trigger + ";";
        // A replanned query's EXPLAIN must carry the spliced marker.
        EXPECT_NE(res->explain_text.find("replanned@"), std::string::npos);
      }
    }
    outcomes.push_back(std::move(o));
  }
  pool->Shutdown();

  // The cache actually carried load: with rebindable single-shape queries,
  // everything after the first compilation is a hit.
  optimizer::PlanCacheStats stats = med->plan_cache()->stats();
  EXPECT_EQ(stats.hits + stats.misses, queries.size());
  EXPECT_GT(stats.hits, 0u);
  std::string prom = med->metrics().ExposePrometheus();
  EXPECT_NE(prom.find("hermes_plan_cache_hits_total"), std::string::npos);
  EXPECT_NE(prom.find("hermes_replan_triggers_total"), std::string::npos);
  return outcomes;
}

TEST(AdaptiveChaosTest, EveryQueryTerminatesWithAdaptiveExecutionArmed) {
  std::vector<std::string> queries = Workload(24);
  std::vector<Outcome> outcomes = RunPool(8, queries);
  ASSERT_EQ(outcomes.size(), queries.size());
  size_t replanned = 0, with_faults = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    EXPECT_TRUE(o.ok) << "query " << i << ": " << o.error;
    replanned += o.replans > 0;
    with_faults += (o.retries + o.deadline_aborts + o.breaker_shed +
                    o.remote_failures) > 0;
  }
  EXPECT_GT(with_faults, 0u);
  // The canned plan's cornell flakiness opens per-query breakers mid-join
  // in some queries; those must have rerouted rather than bled answers.
  EXPECT_GT(replanned, 0u);
}

TEST(AdaptiveChaosTest, OutcomesAndReplansAreBitIdenticalAcrossThreadCounts) {
  std::vector<std::string> queries = Workload(16);
  std::vector<Outcome> serial = RunPool(1, queries);
  std::vector<Outcome> four = RunPool(4, queries);
  std::vector<Outcome> eight = RunPool(8, queries);
  ASSERT_EQ(serial.size(), four.size());
  ASSERT_EQ(serial.size(), eight.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i] == four[i])
        << "query " << i << " diverged:\n  1 thread:  "
        << Describe(serial[i]) << "\n  4 threads: " << Describe(four[i]);
    EXPECT_TRUE(serial[i] == eight[i])
        << "query " << i << " diverged:\n  1 thread:  "
        << Describe(serial[i]) << "\n  8 threads: " << Describe(eight[i]);
  }
}

}  // namespace
}  // namespace hermes
