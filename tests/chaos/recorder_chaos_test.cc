// Flight-recorder determinism under chaos: the per-query event stream —
// kinds, sequence numbers, simulated timestamps, sites, details — is
// bit-identical whether the pool runs 1, 4 or 8 workers, because every
// event is stamped from the query's own simulated clock and RNG streams.
// Caching stays off (a shared cache's state legitimately depends on
// completion order), mirroring chaos_test.cc's bit-identity tests.

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/mediator.h"
#include "engine/query_pool.h"
#include "obs/flight_recorder.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

std::string CannedPlanPath() {
  return std::string(HERMES_TEST_SRCDIR) + "/chaos/chaos.faults";
}

std::vector<std::string> Workload(size_t n) {
  std::vector<std::string> queries;
  for (size_t i = 0; i < n; ++i) {
    int number = 1 + static_cast<int>(i % 4);
    int64_t first = 4 + static_cast<int64_t>(3 * (i % 5));
    int64_t last = first + 20 + static_cast<int64_t>(i % 7);
    queries.push_back(testbed::AppendixQuery(number, false, first, last));
  }
  return queries;
}

/// Per-query event streams, rendered to text for exact comparison and
/// readable failure output.
std::map<uint64_t, std::vector<std::string>> RunPool(
    size_t threads, const std::vector<std::string>& queries) {
  auto med = std::make_unique<Mediator>();
  resilience::ResiliencePolicy policy;
  policy.retry.max_retries = 2;
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 3;
  policy.call_deadline_ms = 25000.0;
  med->set_default_resilience_policy(policy);
  testbed::RopeScenarioOptions scenario;
  scenario.enable_caching = false;
  EXPECT_TRUE(testbed::SetupRopeScenario(med.get(), scenario).ok());
  EXPECT_TRUE(med->LoadFaultPlan(CannedPlanPath()).ok());
  med->set_per_query_network_rng(true);
  DiagnosticsOptions diag;
  // Generous rings: wraparound depends on how many queries share a worker
  // thread, which is exactly the scheduling noise this test must exclude.
  diag.ring_capacity = 1 << 16;
  EXPECT_TRUE(med->EnableDiagnostics(diag).ok());

  QueryPoolOptions pool_options;
  pool_options.num_threads = threads;
  std::unique_ptr<QueryPool> pool = med->Serve(pool_options);
  QueryOptions options;
  options.use_optimizer = false;
  options.use_cim = false;
  options.partial_results = true;
  options.record_statistics = false;
  std::vector<std::future<Result<QueryResult>>> futures;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryOptions pinned = options;
    pinned.query_id = 1000 + i;
    futures.push_back(pool->Submit(queries[i], pinned));
  }
  for (auto& future : futures) (void)future.get();
  pool->Shutdown();

  std::map<uint64_t, std::vector<std::string>> streams;
  for (size_t i = 0; i < queries.size(); ++i) {
    uint64_t id = 1000 + i;
    std::vector<std::string> lines;
    for (const obs::FlightEvent& ev :
         med->flight_recorder()->SnapshotQuery(id)) {
      lines.push_back(ev.ToString());
    }
    streams[id] = std::move(lines);
  }
  return streams;
}

void ExpectIdentical(
    const std::map<uint64_t, std::vector<std::string>>& base,
    const std::map<uint64_t, std::vector<std::string>>& other,
    const std::string& what) {
  ASSERT_EQ(base.size(), other.size());
  for (const auto& [id, stream] : base) {
    auto it = other.find(id);
    ASSERT_NE(it, other.end()) << what << ": query " << id << " missing";
    const std::vector<std::string>& got = it->second;
    ASSERT_EQ(stream.size(), got.size())
        << what << ": query " << id << " event count diverged";
    for (size_t i = 0; i < stream.size(); ++i) {
      EXPECT_EQ(stream[i], got[i])
          << what << ": query " << id << " event " << i << " diverged";
    }
  }
}

TEST(RecorderChaos, StreamsArePopulatedAndWellFormed) {
  std::vector<std::string> queries = Workload(12);
  std::map<uint64_t, std::vector<std::string>> streams =
      RunPool(4, queries);
  size_t with_call_events = 0;
  for (const auto& [id, stream] : streams) {
    ASSERT_FALSE(stream.empty()) << "query " << id;
    EXPECT_NE(stream.front().find("query_start"), std::string::npos);
    EXPECT_NE(stream.back().find("query_end"), std::string::npos);
    for (const std::string& line : stream) {
      if (line.find("call_issued") != std::string::npos) {
        ++with_call_events;
        break;
      }
    }
  }
  EXPECT_GT(with_call_events, 0u);
}

TEST(RecorderChaos, PerQueryStreamsAreBitIdenticalAcrossThreadCounts) {
  std::vector<std::string> queries = Workload(16);
  std::map<uint64_t, std::vector<std::string>> one = RunPool(1, queries);
  std::map<uint64_t, std::vector<std::string>> four = RunPool(4, queries);
  std::map<uint64_t, std::vector<std::string>> eight = RunPool(8, queries);
  ExpectIdentical(one, four, "1 vs 4 threads");
  ExpectIdentical(one, eight, "1 vs 8 threads");
}

}  // namespace
}  // namespace hermes
