// Chaos suite for the async execution path (ctest -L chaos): the rope
// testbed under the canned fault plan with scatter-gather compilation AND
// cross-query single-flight coalescing turned on, served through a
// concurrent QueryPool. On trial:
//
//   1. Liveness — every query terminates despite faults, coalesced or not.
//   2. Determinism — per-query outcomes (answers, virtual times, retry and
//      breaker counters, completeness) are bit-identical at 1, 4 and 8
//      worker threads. Coalescing only shares a leader's materialized
//      inner output — deterministic in the call arguments — while every
//      query still plans its own transfers from its own RNG stream, so
//      nothing about a query's outcome depends on what else is in flight.
//      (The coalesced_calls counter itself is scheduling-dependent by
//      design and is excluded from the comparison.)
//
// CI also runs this binary under ThreadSanitizer as a chaos stress job.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "engine/mediator.h"
#include "engine/query_pool.h"
#include "net/faults/fault_plan.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

std::string CannedPlanPath() {
  return std::string(HERMES_TEST_SRCDIR) + "/chaos/chaos.faults";
}

/// Echo source for fan-out queries: id(x) → {x} at fixed inner latency.
class EchoDomain : public Domain {
 public:
  explicit EchoDomain(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return {{"id", 1, "id(x): {x}"}};
  }
  Result<CallOutput> Run(const DomainCall& call) override {
    CallOutput out;
    out.answers = {call.args[0]};
    out.first_ms = 3.0;
    out.all_ms = 7.0;
    return out;
  }

 private:
  std::string name_;
};

/// One query's outcome, flattened for exact comparison across runs.
/// coalesced_calls is deliberately absent: it varies with scheduling.
struct Outcome {
  bool ok = false;
  std::string error;
  size_t answers = 0;
  double t_first_ms = 0.0;
  double t_all_ms = 0.0;
  uint64_t remote_calls = 0;
  uint64_t bytes = 0;
  double charge = 0.0;
  uint64_t retries = 0;
  uint64_t breaker_shed = 0;
  uint64_t deadline_aborts = 0;
  uint64_t degraded_calls = 0;
  uint64_t remote_failures = 0;
  double retry_backoff_ms = 0.0;
  int completeness = 0;
  size_t lost_sources = 0;

  bool operator==(const Outcome& other) const {
    return ok == other.ok && error == other.error &&
           answers == other.answers && t_first_ms == other.t_first_ms &&
           t_all_ms == other.t_all_ms && remote_calls == other.remote_calls &&
           bytes == other.bytes && charge == other.charge &&
           retries == other.retries && breaker_shed == other.breaker_shed &&
           deadline_aborts == other.deadline_aborts &&
           degraded_calls == other.degraded_calls &&
           remote_failures == other.remote_failures &&
           retry_backoff_ms == other.retry_backoff_ms &&
           completeness == other.completeness &&
           lost_sources == other.lost_sources;
  }
};

std::string Describe(const Outcome& o) {
  return "ok=" + std::to_string(o.ok) + " answers=" +
         std::to_string(o.answers) + " t_all=" + std::to_string(o.t_all_ms) +
         " calls=" + std::to_string(o.remote_calls) + " bytes=" +
         std::to_string(o.bytes) + " retries=" + std::to_string(o.retries) +
         " shed=" + std::to_string(o.breaker_shed) + " completeness=" +
         std::to_string(o.completeness) + " err=" + o.error;
}

/// Appendix queries over shifting windows interleaved with fan-out echo
/// queries. The echo pair compiles into a scatter-gather group, and the
/// repeated windows give the single-flight layer identical concurrent
/// misses to coalesce at >1 thread.
std::vector<std::string> Workload(size_t n) {
  std::vector<std::string> queries;
  for (size_t i = 0; i < n; ++i) {
    if (i % 3 == 2) {
      int64_t k = static_cast<int64_t>(i % 4);
      queries.push_back("?- in(X, echo1:id(" + std::to_string(k) +
                        ")) & in(Y, echo2:id(" + std::to_string(k) + ")).");
    } else {
      int number = 1 + static_cast<int>(i % 4);
      int64_t first = 4 + static_cast<int64_t>(3 * (i % 5));
      int64_t last = first + 20 + static_cast<int64_t>(i % 3);
      queries.push_back(testbed::AppendixQuery(number, false, first, last));
    }
  }
  return queries;
}

std::unique_ptr<Mediator> AsyncChaosMediator() {
  auto med = std::make_unique<Mediator>();
  resilience::ResiliencePolicy policy;
  policy.retry.max_retries = 2;
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 3;
  policy.call_deadline_ms = 25000.0;
  med->set_default_resilience_policy(policy);
  testbed::RopeScenarioOptions scenario;
  scenario.enable_caching = false;  // shared-cache state is order-dependent
  EXPECT_TRUE(testbed::SetupRopeScenario(med.get(), scenario).ok());
  EXPECT_TRUE(med->RegisterRemoteDomain(
                      "echo1", std::make_shared<EchoDomain>("echo1"),
                      net::UsaSite("echo-east"))
                  .ok());
  EXPECT_TRUE(med->RegisterRemoteDomain(
                      "echo2", std::make_shared<EchoDomain>("echo2"),
                      net::UsaSite("echo-west"))
                  .ok());
  EXPECT_TRUE(med->LoadFaultPlan(CannedPlanPath()).ok());
  med->set_per_query_network_rng(true);
  med->set_async_execution(true);
  SingleFlightOptions sf;
  sf.enabled = true;
  sf.wait_timeout_ms = 30000.0;
  med->set_single_flight(sf);
  return med;
}

std::vector<Outcome> RunPool(size_t threads,
                             const std::vector<std::string>& queries) {
  std::unique_ptr<Mediator> med = AsyncChaosMediator();
  QueryPoolOptions pool_options;
  pool_options.num_threads = threads;
  std::unique_ptr<QueryPool> pool = med->Serve(pool_options);
  QueryOptions options;
  options.use_optimizer = false;
  options.use_cim = false;
  options.partial_results = true;
  options.record_statistics = false;
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryOptions pinned = options;
    pinned.query_id = 1000 + i;
    futures.push_back(pool->Submit(queries[i], pinned));
  }
  std::vector<Outcome> outcomes;
  for (auto& future : futures) {
    Result<QueryResult> res = future.get();
    Outcome o;
    o.ok = res.ok();
    if (!res.ok()) {
      o.error = res.status().ToString();
    } else {
      o.answers = res->execution.answers.size();
      o.t_first_ms = res->execution.t_first_ms;
      o.t_all_ms = res->execution.t_all_ms;
      o.remote_calls = res->metrics.remote_calls;
      o.bytes = res->metrics.bytes_transferred;
      o.charge = res->metrics.network_charge;
      o.retries = res->metrics.retries;
      o.breaker_shed = res->metrics.breaker_shed;
      o.deadline_aborts = res->metrics.deadline_aborts;
      o.degraded_calls = res->metrics.degraded_calls;
      o.remote_failures = res->metrics.remote_failures;
      o.retry_backoff_ms = res->metrics.retry_backoff_ms;
      o.completeness = static_cast<int>(res->completeness);
      o.lost_sources = res->lost_sources.size();
    }
    outcomes.push_back(std::move(o));
  }
  pool->Shutdown();
  return outcomes;
}

TEST(AsyncChaosTest, EveryQueryTerminatesWithAsyncAndCoalescingOn) {
  std::vector<std::string> queries = Workload(24);
  std::vector<Outcome> outcomes = RunPool(8, queries);
  ASSERT_EQ(outcomes.size(), queries.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].ok) << "query " << i << ": " << outcomes[i].error;
  }
}

TEST(AsyncChaosTest, OutcomesAreBitIdenticalAcrossThreadCounts) {
  std::vector<std::string> queries = Workload(18);
  std::vector<Outcome> serial = RunPool(1, queries);
  std::vector<Outcome> four = RunPool(4, queries);
  std::vector<Outcome> eight = RunPool(8, queries);
  ASSERT_EQ(serial.size(), four.size());
  ASSERT_EQ(serial.size(), eight.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i] == four[i])
        << "query " << i << " diverged:\n  1 thread:  " << Describe(serial[i])
        << "\n  4 threads: " << Describe(four[i]);
    EXPECT_TRUE(serial[i] == eight[i])
        << "query " << i << " diverged:\n  1 thread:  " << Describe(serial[i])
        << "\n  8 threads: " << Describe(eight[i]);
  }
}

}  // namespace
}  // namespace hermes
