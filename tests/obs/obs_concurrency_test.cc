// Concurrency contract of the observability layer — also part of the CI
// thread-sanitizer workload. The core invariant: the registry's process-
// level fold counters equal the sum of the per-query CallMetrics that the
// same queries reported, at any thread count (nothing double-counted,
// nothing dropped, no data races).

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "engine/mediator.h"
#include "engine/query_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

const char* kObjectsRule =
    "objects(F, L, O) :- in(O, video:frames_to_objects('rope', F, L)).";

TEST(ObsConcurrency, CounterTotalsAreExactAcrossThreads) {
  obs::Counter counter;
  obs::FloatCounter fcounter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &fcounter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add(1);
        fcounter.Add(0.5);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(fcounter.Value(), kThreads * kPerThread * 0.5);
}

TEST(ObsConcurrency, HistogramCountsAreExactAcrossThreads) {
  obs::Histogram h(obs::Histogram::ExponentialBounds(1.0, 2.0, 10));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>((t * kPerThread + i) % 700));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, uint64_t{kThreads} * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsConcurrency, HistogramMergeIsAssociative) {
  auto make = [](double base) {
    obs::Histogram h({1.0, 10.0, 100.0});
    h.Observe(base);
    h.Observe(base * 3.0);
    h.Observe(base * 30.0);
    return h.Snapshot();
  };
  obs::HistogramSnapshot a = make(0.5), b = make(2.0), c = make(4.0);

  obs::HistogramSnapshot left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  obs::HistogramSnapshot bc = b;     // a + (b + c)
  bc.Merge(c);
  obs::HistogramSnapshot right = a;
  right.Merge(bc);

  EXPECT_EQ(left.counts, right.counts);
  EXPECT_DOUBLE_EQ(left.sum, right.sum);
  EXPECT_EQ(left.count, right.count);
}

// The tentpole invariant: after 8 worker threads serve a mixed workload,
// every hermes_query_* fold counter in the mediator's registry equals the
// sum of that field over the per-query CallMetrics the futures returned.
TEST(ObsConcurrency, RegistryFoldEqualsSumOfPerQueryMetrics) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, {}).ok());
  ASSERT_TRUE(med.LoadProgram(kObjectsRule).ok());

  QueryOptions as_written;
  as_written.use_optimizer = false;

  QueryPoolOptions pool_options;
  pool_options.num_threads = 8;
  std::unique_ptr<QueryPool> pool = med.Serve(pool_options);
  std::vector<std::future<Result<QueryResult>>> futures;
  constexpr int kQueries = 48;
  for (int i = 0; i < kQueries; ++i) {
    // Mix of repeated (cache-hitting) and fresh (source-calling) ranges.
    int last = i % 3 == 0 ? 47 : 40 + i;
    futures.push_back(pool->Submit(
        "?- objects(4, " + std::to_string(last) + ", O).", as_written));
  }

  CallMetrics summed;
  for (std::future<Result<QueryResult>>& f : futures) {
    Result<QueryResult> res = f.get();
    ASSERT_TRUE(res.ok()) << res.status();
    summed.Merge(res->metrics);
  }
  pool->Shutdown();

  obs::MetricsRegistry& registry = med.metrics();
  EXPECT_EQ(registry.GetOrAddCounter("hermes_queries_total", "")->Value(),
            uint64_t{kQueries});
#define HERMES_FIELD(f)                                                     \
  EXPECT_EQ(                                                                \
      registry.GetOrAddCounter("hermes_query_" #f "_total", "")->Value(),   \
      summed.f)                                                             \
      << #f;
  HERMES_CALL_METRICS_UINT64_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD
#define HERMES_FIELD(f)                                                      \
  EXPECT_NEAR(                                                               \
      registry.GetOrAddFloatCounter("hermes_query_" #f "_total", "")->Value(), \
      summed.f, 1e-6)                                                        \
      << #f;
  HERMES_CALL_METRICS_DOUBLE_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD

  // The layer-owned series agree with the layers' own snapshot structs.
  EXPECT_EQ(registry.GetOrAddCounter("hermes_net_calls_total", "")->Value(),
            med.network().stats().calls);
  EXPECT_EQ(
      registry
          .GetOrAddCounter("hermes_cim_exact_hits_total", "",
                           {{"domain", "video"}})
          ->Value(),
      med.cim("video")->stats().exact_hits);

  // Pool counters landed in the same registry.
  EXPECT_EQ(registry.GetOrAddCounter("hermes_pool_submitted_total", "")->Value(),
            uint64_t{kQueries});
  EXPECT_EQ(registry.GetOrAddCounter("hermes_pool_completed_total", "")->Value(),
            uint64_t{kQueries});

  // And one exposition renders the whole catalogue without blowing up.
  std::string prom = registry.ExposePrometheus();
  EXPECT_NE(prom.find("hermes_query_domain_calls_total"), std::string::npos);
  EXPECT_NE(prom.find("hermes_pool_queue_wait_ms_bucket"), std::string::npos);
}

// Operator-layer metrics under concurrency: 8 worker threads execute
// queries while other threads render EXPLAIN against the same mediator.
// EXPLAIN is read-only (no domain call, no operator Open), so the
// hermes_exec_op_* folds must equal the executing queries' own metrics:
// opens{op=domain_call} is exactly the summed per-query domain-call count.
TEST(ObsConcurrency, ExecOpMetricsFoldUnderMixedExplainAndExecute) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, {}).ok());
  ASSERT_TRUE(med.LoadProgram(kObjectsRule).ok());

  QueryOptions as_written;
  as_written.use_optimizer = false;

  QueryPoolOptions pool_options;
  pool_options.num_threads = 8;
  std::unique_ptr<QueryPool> pool = med.Serve(pool_options);

  // Concurrent EXPLAIN traffic: plan compilation + DCSM cost reads racing
  // the executing queries (TSan exercises Dcsm::Cost vs. RecordSample).
  std::atomic<bool> stop{false};
  std::vector<std::thread> explainers;
  for (int t = 0; t < 2; ++t) {
    explainers.emplace_back([&med, &as_written, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        Result<std::string> text =
            med.Explain("?- objects(4, 47, O).", as_written);
        ASSERT_TRUE(text.ok()) << text.status();
        ASSERT_NE(text->find("DomainCall"), std::string::npos);
      }
    });
  }

  std::vector<std::future<Result<QueryResult>>> futures;
  constexpr int kQueries = 32;
  for (int i = 0; i < kQueries; ++i) {
    int last = i % 3 == 0 ? 47 : 40 + i;
    futures.push_back(pool->Submit(
        "?- objects(4, " + std::to_string(last) + ", O).", as_written));
  }

  uint64_t summed_domain_calls = 0;
  uint64_t summed_answers = 0;
  for (std::future<Result<QueryResult>>& f : futures) {
    Result<QueryResult> res = f.get();
    ASSERT_TRUE(res.ok()) << res.status();
    summed_domain_calls += res->execution.domain_calls;
    summed_answers += res->execution.answers.size();
  }
  pool->Shutdown();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : explainers) t.join();

  obs::MetricsRegistry& registry = med.metrics();
  EXPECT_EQ(registry
                .GetOrAddCounter("hermes_exec_op_opens_total", "",
                                 {{"op", "domain_call"}})
                ->Value(),
            summed_domain_calls);
  // Every answer passed through sink and project exactly once.
  EXPECT_EQ(registry
                .GetOrAddCounter("hermes_exec_op_rows_total", "",
                                 {{"op", "answer_sink"}})
                ->Value(),
            summed_answers);
  EXPECT_EQ(registry
                .GetOrAddCounter("hermes_exec_op_rows_total", "",
                                 {{"op", "project"}})
                ->Value(),
            summed_answers);
  // One sink open per query; no error was recorded on any operator.
  EXPECT_EQ(registry
                .GetOrAddCounter("hermes_exec_op_opens_total", "",
                                 {{"op", "answer_sink"}})
                ->Value(),
            uint64_t{kQueries});
  EXPECT_EQ(registry
                .GetOrAddCounter("hermes_exec_op_errors_total", "",
                                 {{"op", "domain_call"}})
                ->Value(),
            0u);
  std::string prom = registry.ExposePrometheus();
  EXPECT_NE(prom.find("hermes_exec_op_sim_ms_bucket"), std::string::npos);
}

// Tracing under concurrency: each query carries its own tracer; span trees
// stay per-query (no cross-talk) and merge into one valid Chrome document.
TEST(ObsConcurrency, PerQueryTracersStayIsolated) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, {}).ok());
  ASSERT_TRUE(med.LoadProgram(kObjectsRule).ok());

  QueryOptions as_written;
  as_written.use_optimizer = false;

  constexpr int kQueries = 16;
  std::vector<obs::Tracer> tracers(kQueries);
  QueryPoolOptions pool_options;
  pool_options.num_threads = 8;
  std::unique_ptr<QueryPool> pool = med.Serve(pool_options);
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < kQueries; ++i) {
    QueryOptions options = as_written;
    options.tracer = &tracers[i];
    futures.push_back(pool->Submit(
        "?- objects(4, " + std::to_string(40 + i) + ", O).", options));
  }
  for (std::future<Result<QueryResult>>& f : futures) {
    ASSERT_TRUE(f.get().ok());
  }
  pool->Shutdown();

  std::vector<const obs::Tracer*> all;
  for (const obs::Tracer& t : tracers) {
    ASSERT_FALSE(t.empty());
    // Exactly one root span, and it is the "query" envelope.
    size_t roots = 0;
    for (const obs::Span& s : t.spans()) {
      if (s.parent == 0) {
        ++roots;
        EXPECT_EQ(s.name, "query");
      }
      EXPECT_TRUE(s.closed) << s.name;
    }
    EXPECT_EQ(roots, 1u);
    all.push_back(&t);
  }
  std::string merged = obs::ChromeTraceJson(all);
  EXPECT_NE(merged.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace hermes
