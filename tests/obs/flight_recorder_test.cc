#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace hermes::obs {
namespace {

FlightEvent Event(uint64_t query_id, uint32_t seq, double sim_ms,
                  FlightEventKind kind = FlightEventKind::kCallIssued) {
  return FlightEvent::Make(kind, query_id, seq, sim_ms);
}

TEST(FlightEvent, TruncatesOverlongStringsInsteadOfOverflowing) {
  FlightEvent ev = Event(1, 0, 0.0);
  std::string long_name(100, 'x');
  ev.set_site(long_name);
  ev.set_domain(long_name);
  ev.set_detail(long_name);
  EXPECT_EQ(ev.site_str().size(), FlightEvent::kSiteChars - 1);
  EXPECT_EQ(ev.domain_str().size(), FlightEvent::kDomainChars - 1);
  EXPECT_EQ(ev.detail_str().size(), FlightEvent::kDetailChars - 1);
  EXPECT_EQ(ev.site_str(), std::string(FlightEvent::kSiteChars - 1, 'x'));
}

TEST(FlightEvent, JsonCarriesEveryField) {
  FlightEvent ev = Event(42, 7, 123.5, FlightEventKind::kRetry);
  ev.set_site("umd");
  ev.set_domain("video");
  ev.set_detail("flaky");
  ev.value = 250.0;
  ev.aux = 2;
  std::string json = ev.ToJson();
  EXPECT_NE(json.find("\"query_id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"retry\""), std::string::npos);
  EXPECT_NE(json.find("\"site\":\"umd\""), std::string::npos);
  EXPECT_NE(json.find("\"domain\":\"video\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"flaky\""), std::string::npos);
  EXPECT_NE(json.find("\"aux\":2"), std::string::npos);
}

TEST(FlightRecorder, RingWrapsOverwritingOldestAndCountsDrops) {
  FlightRecorder recorder(/*ring_capacity=*/4);
  for (uint32_t i = 0; i < 10; ++i) {
    recorder.Emit(Event(1, i, static_cast<double>(i)));
  }
  EXPECT_EQ(recorder.ring_count(), 1u);
  EXPECT_EQ(recorder.total_events(), 10u);
  EXPECT_EQ(recorder.dropped_events(), 6u);
  std::vector<FlightEvent> events = recorder.SnapshotQuery(1);
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);  // the oldest six were overwritten
  }
}

TEST(FlightRecorder, SnapshotQueryFiltersByQueryId) {
  FlightRecorder recorder(16);
  recorder.Emit(Event(1, 0, 0.0));
  recorder.Emit(Event(2, 0, 1.0));
  recorder.Emit(Event(1, 1, 2.0));
  recorder.Emit(Event(2, 1, 3.0));
  std::vector<FlightEvent> q1 = recorder.SnapshotQuery(1);
  ASSERT_EQ(q1.size(), 2u);
  EXPECT_EQ(q1[0].seq, 0u);
  EXPECT_EQ(q1[1].seq, 1u);
  EXPECT_TRUE(recorder.SnapshotQuery(99).empty());
}

TEST(FlightRecorder, SnapshotAllOrdersBySimTimeThenQueryThenSeq) {
  FlightRecorder recorder(16);
  recorder.Emit(Event(2, 0, 5.0));
  recorder.Emit(Event(1, 0, 5.0));
  recorder.Emit(Event(1, 1, 1.0));
  std::vector<FlightEvent> all = recorder.SnapshotAll();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0].sim_ms, 1.0);
  EXPECT_EQ(all[1].query_id, 1u);
  EXPECT_EQ(all[2].query_id, 2u);
}

TEST(FlightRecorder, BindMetricsExportsTotalsAndDrops) {
  FlightRecorder recorder(2);
  MetricsRegistry registry;
  recorder.BindMetrics(registry);
  for (uint32_t i = 0; i < 5; ++i) recorder.Emit(Event(1, i, 0.0));
  std::string prom = registry.ExposePrometheus();
  EXPECT_NE(prom.find("hermes_flight_events_total 5"), std::string::npos);
  EXPECT_NE(prom.find("hermes_flight_events_dropped_total 3"),
            std::string::npos);
}

// Eight writers, one ring each: no event is lost or torn (every snapshot
// field agrees with what the owning thread wrote). CI runs this binary
// under TSan, which also vets snapshot-vs-emit races.
TEST(FlightRecorder, ConcurrentWritersKeepRingsIndependent) {
  constexpr size_t kThreads = 8;
  constexpr uint32_t kPerThread = 2000;
  FlightRecorder recorder(/*ring_capacity=*/4096);
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (uint32_t i = 0; i < kPerThread; ++i) {
        FlightEvent ev = Event(100 + t, i, static_cast<double>(i),
                               FlightEventKind::kCallCompleted);
        ev.set_site("site" + std::to_string(t));
        ev.set_domain("domain" + std::to_string(t));
        ev.value = static_cast<double>(t);
        ev.aux = i;
        recorder.Emit(ev);
      }
    });
  }
  // Concurrent snapshots must see only whole events, never torn ones.
  std::thread reader([&recorder] {
    for (int i = 0; i < 50; ++i) {
      for (const FlightEvent& ev : recorder.SnapshotAll()) {
        ASSERT_GE(ev.query_id, 100u);
        ASSERT_LT(ev.query_id, 100u + kThreads);
        size_t t = ev.query_id - 100;
        ASSERT_EQ(ev.site_str(), "site" + std::to_string(t));
        ASSERT_EQ(ev.aux, ev.seq);
      }
    }
  });
  for (std::thread& w : writers) w.join();
  reader.join();

  EXPECT_EQ(recorder.ring_count(), kThreads);
  EXPECT_EQ(recorder.total_events(), kThreads * kPerThread);
  EXPECT_EQ(recorder.dropped_events(), 0u);
  for (size_t t = 0; t < kThreads; ++t) {
    std::vector<FlightEvent> events = recorder.SnapshotQuery(100 + t);
    ASSERT_EQ(events.size(), kPerThread);
    for (uint32_t i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(events[i].seq, i);
      ASSERT_EQ(events[i].domain_str(), "domain" + std::to_string(t));
      ASSERT_DOUBLE_EQ(events[i].value, static_cast<double>(t));
    }
  }
}

}  // namespace
}  // namespace hermes::obs
