#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace hermes::obs {
namespace {

TEST(Counter, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(FloatCounter, AddAndValue) {
  FloatCounter c;
  c.Add(1.5);
  c.Add(2.25);
  EXPECT_DOUBLE_EQ(c.Value(), 3.75);
  c.Reset();
  EXPECT_DOUBLE_EQ(c.Value(), 0.0);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.Set(10.0);
  g.Add(-3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 6.5);
}

TEST(CallbackGauge, ComputesAtReadTime) {
  double source = 1.0;
  CallbackGauge g([&source] { return source * 2.0; });
  EXPECT_DOUBLE_EQ(g.Value(), 2.0);
  source = 21.0;
  EXPECT_DOUBLE_EQ(g.Value(), 42.0);
}

TEST(Histogram, BucketsFollowPrometheusLeSemantics) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // le=1
  h.Observe(1.0);    // le=1 (inclusive upper bound)
  h.Observe(5.0);    // le=10
  h.Observe(100.0);  // le=100
  h.Observe(1000.0); // +Inf overflow
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 5.0 + 100.0 + 1000.0);
}

TEST(Histogram, GeneratedBounds) {
  std::vector<double> exp = Histogram::ExponentialBounds(1.0, 2.0, 4);
  EXPECT_EQ(exp, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  std::vector<double> lin = Histogram::LinearBounds(0.0, 5.0, 3);
  EXPECT_EQ(lin, (std::vector<double>{0.0, 5.0, 10.0}));
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(Histogram::LinearBounds(10.0, 10.0, 10));
  for (int i = 0; i < 100; ++i) h.Observe(static_cast<double>(i));
  HistogramSnapshot snap = h.Snapshot();
  double p50 = snap.Quantile(0.5);
  EXPECT_GE(p50, 40.0);
  EXPECT_LE(p50, 60.0);
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.Quantile(0.5), 0.0);
}

TEST(Registry, GetOrAddReusesSameSeries) {
  MetricsRegistry registry;
  auto a = registry.GetOrAddCounter("hermes_test_total", "help");
  auto b = registry.GetOrAddCounter("hermes_test_total", "help");
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(registry.size(), 1u);

  // Distinct labels are a distinct series of the same family.
  auto c = registry.GetOrAddCounter("hermes_test_total", "help",
                                    {{"site", "italy"}});
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Registry, RegisterReplacesExistingSeries) {
  MetricsRegistry registry;
  auto first = std::make_shared<Counter>();
  first->Add(7);
  registry.Register("hermes_test_total", "help", {}, first);
  auto second = std::make_shared<Counter>();
  registry.Register("hermes_test_total", "help", {}, second);
  EXPECT_EQ(registry.size(), 1u);
  auto resolved = registry.GetOrAddCounter("hermes_test_total", "help");
  EXPECT_EQ(resolved.get(), second.get());
}

TEST(Registry, PrometheusExposition) {
  MetricsRegistry registry;
  registry.GetOrAddCounter("hermes_calls_total", "Calls made",
                           {{"site", "italy"}})
      ->Add(3);
  registry.GetOrAddGauge("hermes_cache_bytes", "Cache occupancy")->Set(128.0);
  auto h = registry.GetOrAddHistogram("hermes_latency_ms", "Latency",
                                      {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(50.0);

  std::string text = registry.ExposePrometheus();
  EXPECT_NE(text.find("# HELP hermes_calls_total Calls made"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE hermes_calls_total counter"), std::string::npos);
  EXPECT_NE(text.find("hermes_calls_total{site=\"italy\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE hermes_cache_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("hermes_cache_bytes 128"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hermes_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("hermes_latency_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("hermes_latency_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("hermes_latency_ms_count 2"), std::string::npos);
}

TEST(Registry, JsonExpositionEscapesAndStructures) {
  MetricsRegistry registry;
  registry.GetOrAddCounter("hermes_calls_total", "with \"quotes\" and \\",
                           {{"q", "a\nb"}});
  std::string json = registry.ExposeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("with \\\"quotes\\\" and \\\\"), std::string::npos);
  EXPECT_NE(json.find("a\\nb"), std::string::npos);
  EXPECT_EQ(json.find('\n') == std::string::npos ||
                json.find("a\nb") == std::string::npos,
            true);
}

TEST(Registry, PrometheusFamiliesAreConsecutive) {
  MetricsRegistry registry;
  registry.GetOrAddCounter("hermes_b_total", "b", {{"site", "one"}});
  registry.GetOrAddCounter("hermes_a_total", "a");
  registry.GetOrAddCounter("hermes_b_total", "b", {{"site", "two"}});
  std::string text = registry.ExposePrometheus();
  // One # TYPE header per family, series of one family grouped together.
  size_t first_header = text.find("# TYPE hermes_b_total");
  size_t second_header = text.find("# TYPE hermes_b_total", first_header + 1);
  EXPECT_NE(first_header, std::string::npos);
  EXPECT_EQ(second_header, std::string::npos);
}

}  // namespace
}  // namespace hermes::obs
