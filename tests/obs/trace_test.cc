#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace hermes::obs {
namespace {

TEST(Tracer, SpansNestUnderInnermostOpenSpan) {
  Tracer tracer(/*query_id=*/7);
  uint64_t root = tracer.BeginSpan("query", "query", 0.0);
  uint64_t call = tracer.BeginSpan("call:video:fto", "domain-call", 10.0);
  uint64_t hop = tracer.BeginSpan("network-hop", "net", 10.0);
  tracer.EndSpan(hop, 40.0);
  tracer.EndSpan(call, 50.0);
  uint64_t sibling = tracer.BeginSpan("call:text:search", "domain-call", 50.0);
  tracer.EndSpan(sibling, 60.0);
  tracer.EndSpan(root, 60.0);

  ASSERT_EQ(tracer.spans().size(), 4u);
  EXPECT_EQ(tracer.spans()[0].parent, 0u);
  EXPECT_EQ(tracer.spans()[1].parent, root);
  EXPECT_EQ(tracer.spans()[2].parent, call);
  // A span begun after `call` closed is a child of the root, not of `call`.
  EXPECT_EQ(tracer.spans()[3].parent, root);
}

TEST(Tracer, ParentEndCoversChildren) {
  Tracer tracer;
  uint64_t parent = tracer.BeginSpan("call", "domain-call", 0.0);
  uint64_t child = tracer.BeginSpan("network-hop", "net", 0.0);
  tracer.EndSpan(child, 120.0);  // e.g. an unavailability penalty
  tracer.EndSpan(parent, 5.0);   // failure path reports a short envelope
  EXPECT_DOUBLE_EQ(tracer.spans()[0].sim_end_ms, 120.0);
}

TEST(Tracer, EndSpanIsIdempotentAndOnlyExtends) {
  Tracer tracer;
  uint64_t id = tracer.BeginSpan("s", "query", 10.0);
  tracer.EndSpan(id, 30.0);
  tracer.EndSpan(id, 20.0);  // earlier end does not shrink the span
  EXPECT_DOUBLE_EQ(tracer.spans()[0].sim_end_ms, 30.0);
  tracer.EndSpan(id, 45.0);  // later end still extends
  EXPECT_DOUBLE_EQ(tracer.spans()[0].sim_end_ms, 45.0);
}

TEST(Tracer, MarkFailedRecordsError) {
  Tracer tracer;
  uint64_t id = tracer.BeginSpan("s", "net", 0.0);
  tracer.MarkFailed(id, "site down");
  tracer.EndSpan(id, 1.0);
  EXPECT_TRUE(tracer.spans()[0].failed);
  ASSERT_EQ(tracer.spans()[0].args.size(), 1u);
  EXPECT_EQ(tracer.spans()[0].args[0].first, "error");
  EXPECT_EQ(tracer.spans()[0].args[0].second, "site down");
}

TEST(Tracer, ChromeJsonShape) {
  Tracer tracer(/*query_id=*/3);
  uint64_t root = tracer.BeginSpan("query", "query", 0.0);
  tracer.AddArg(root, "text", "?- actors(A).");
  uint64_t call = tracer.BeginSpan("call:video:fto", "domain-call", 5.0);
  tracer.EndSpan(call, 25.0);
  tracer.EndSpan(root, 25.0);

  std::string json = tracer.ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Metadata events name the process and the query track.
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query 3\""), std::string::npos);
  // Complete events: sim ms rendered as trace µs, per-query tid.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":5000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":20000"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"text\":\"?- actors(A).\""), std::string::npos);
}

TEST(Tracer, MergedExportRendersEachQueryAsOwnTrack) {
  Tracer cold(1), warm(2);
  cold.EndSpan(cold.BeginSpan("query", "query", 0.0), 100.0);
  warm.EndSpan(warm.BeginSpan("query", "query", 0.0), 10.0);
  std::string json = ChromeTraceJson({&cold, &warm, nullptr});
  EXPECT_NE(json.find("\"name\":\"query 1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query 2\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(Tracer, EmptyMergeRendersMinimalValidDocument) {
  // Regression: a merge with no spans used to emit a trailing comma after
  // the (absent) last event, which Chrome and json.load both reject.
  const std::string want = "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(ChromeTraceJson({}), want);
  EXPECT_EQ(ChromeTraceJson({nullptr}), want);
  Tracer empty(9);
  EXPECT_EQ(ChromeTraceJson({&empty}), want);
  EXPECT_EQ(ChromeTraceJson({nullptr, &empty, nullptr}), want);
}

TEST(Tracer, EmptyTracersContributeNoMetadataToMixedMerges) {
  Tracer used(1), unused(2);
  used.EndSpan(used.BeginSpan("query", "query", 0.0), 10.0);
  std::string json = ChromeTraceJson({&used, &unused});
  EXPECT_NE(json.find("\"name\":\"query 1\""), std::string::npos);
  // The span-less tracer must not leave an orphan track behind.
  EXPECT_EQ(json.find("\"name\":\"query 2\""), std::string::npos);
  EXPECT_EQ(json, ChromeTraceJson({&used}));
}

TEST(SpanScope, ClosesOnScopeExitAndToleratesNullTracer) {
  Tracer tracer;
  {
    SpanScope scope(&tracer, "call", "domain-call", 10.0);
    EXPECT_TRUE(scope.active());
    scope.set_sim_end(42.0);
    scope.AddArg("answers", "9");
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_TRUE(tracer.spans()[0].closed);
  EXPECT_DOUBLE_EQ(tracer.spans()[0].sim_end_ms, 42.0);
  EXPECT_EQ(tracer.spans()[0].args[0].second, "9");

  // A null tracer disables everything without branching at call sites.
  SpanScope noop(nullptr, "x", "y", 0.0);
  EXPECT_FALSE(noop.active());
  noop.set_sim_end(1.0);
  noop.AddArg("k", "v");
  noop.MarkFailed("err");
}

}  // namespace
}  // namespace hermes::obs
