#ifndef HERMES_TESTS_ALLOC_GUARD_ALLOC_GUARD_H_
#define HERMES_TESTS_ALLOC_GUARD_ALLOC_GUARD_H_

#include <cstddef>

#include <gtest/gtest.h>

/// Allocation-count regression harness.
///
/// Linking `hermes_alloc_guard` replaces the global operator new/delete with
/// counting forwarders, so a test can pin the number of heap allocations a
/// code path performs. Counters are per-thread: other threads' allocations
/// never leak into a scope's tally.
///
/// The point is catching *regressions by construction*: data-plane hot loops
/// (per-row operator work) must stay at zero allocations, and any future
/// change that sneaks a std::string copy or node-based container back into
/// the loop fails the `alloc`-labelled suite instead of silently eroding
/// throughput.
namespace hermes::testing {

/// Allocations performed by this thread since it started (monotonic).
size_t ThreadAllocCount();

/// Bytes requested by this thread since it started (monotonic).
size_t ThreadAllocBytes();

/// Tallies this thread's allocations between construction and count().
class AllocCounterScope {
 public:
  AllocCounterScope()
      : start_count_(ThreadAllocCount()), start_bytes_(ThreadAllocBytes()) {}

  size_t count() const { return ThreadAllocCount() - start_count_; }
  size_t bytes() const { return ThreadAllocBytes() - start_bytes_; }

 private:
  size_t start_count_;
  size_t start_bytes_;
};

}  // namespace hermes::testing

/// Runs `body` and fails the test if it performed more than `max_allocs`
/// heap allocations on the calling thread.
#define HERMES_EXPECT_ALLOCS_LE(max_allocs, body)                           \
  do {                                                                      \
    ::hermes::testing::AllocCounterScope hermes_alloc_scope_;               \
    { body; }                                                               \
    const size_t hermes_alloc_n_ = hermes_alloc_scope_.count();             \
    EXPECT_LE(hermes_alloc_n_, static_cast<size_t>(max_allocs))             \
        << "code path performed " << hermes_alloc_n_                        \
        << " heap allocations; budget is " << (max_allocs);                 \
  } while (0)

#endif  // HERMES_TESTS_ALLOC_GUARD_ALLOC_GUARD_H_
