#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "alloc_guard.h"
#include "engine/executor.h"
#include "engine/op/compile.h"
#include "lang/parser.h"

namespace hermes::engine {
namespace {

/// Domain whose single function enumerates `rows` integer answers in one
/// allocation (the answer vector's buffer), so per-row growth observed by
/// the guard comes from the engine, not the source.
class RowsDomain : public Domain {
 public:
  RowsDomain(std::string name, size_t rows)
      : name_(std::move(name)), rows_(rows) {}

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return {{"rows", 0, "rows(): integer enumeration"}};
  }
  Result<CallOutput> Run(const DomainCall&) override {
    CallOutput out;
    out.answers.reserve(rows_);
    for (size_t i = 0; i < rows_; ++i) {
      out.answers.push_back(Value::Int(static_cast<int64_t>(i)));
    }
    out.first_ms = 1.0;
    out.all_ms = 2.0;
    return out;
  }

 private:
  std::string name_;
  size_t rows_;
};

/// Heap allocations of one steady-state (pre-warmed) execution of an async
/// fan-out plan: two independent enumerations compiled into a
/// ScatterGatherOp, gathered into a cross product that a comparison filter
/// rejects row by row. The hot path on trial is the async issue/gather
/// loop — member cursor re-opens, binding rollbacks, filter evaluation.
size_t AllocsForRows(size_t rows) {
  DomainRegistry registry;
  EXPECT_TRUE(
      registry.Register("d1", std::make_shared<RowsDomain>("d1", rows)).ok());
  EXPECT_TRUE(
      registry.Register("d2", std::make_shared<RowsDomain>("d2", rows)).ok());
  Result<lang::Program> program = lang::Parser::ParseProgram("");
  EXPECT_TRUE(program.ok()) << program.status();
  Result<lang::Query> query = lang::Parser::ParseQuery(
      "?- in(X, d1:rows()) & in(Y, d2:rows()) & X > 1000000000.");
  EXPECT_TRUE(query.ok()) << query.status();
  op::CompileOptions options;
  options.async_scatter_gather = true;
  op::CompiledQuery compiled = op::Compile(*program, *query, options);
  Executor executor(&registry, nullptr, {});

  // Warm-up run: first-touch allocations (binding slots, operator state)
  // happen here and are reused by the measured run.
  CallContext ctx;
  Result<QueryExecution> warm =
      executor.ExecuteCompiled(*program, compiled, &ctx);
  EXPECT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->answers.empty());

  testing::AllocCounterScope scope;
  Result<QueryExecution> exec =
      executor.ExecuteCompiled(*program, compiled, &ctx);
  const size_t allocs = scope.count();
  EXPECT_TRUE(exec.ok()) << exec.status();
  EXPECT_TRUE(exec->answers.empty());
  return allocs;
}

TEST(AsyncFanoutAllocTest, GatherLoopAllocationsIndependentOfRowCount) {
  // Zero allocations *per gathered row*: the 8×8 and 128×128 cross
  // products must execute with the identical allocation count — the async
  // issue path materializes each member's answers once and the gather
  // odometer reuses cursor state across re-opens.
  const size_t small = AllocsForRows(8);
  const size_t large = AllocsForRows(128);
  EXPECT_EQ(small, large)
      << "async gather loop allocated per row: " << small
      << " allocs at 8x8 rows, " << large << " at 128x128";
}

TEST(AsyncFanoutAllocTest, SteadyStateExecutionStaysWithinFixedBudget) {
  // The whole steady-state fan-out execution — both members issued, 64×64
  // rows gathered, filtered and rolled back — must fit a small fixed
  // budget covering per-query setup only (pipeline plumbing, two answer
  // buffers, result bookkeeping).
  DomainRegistry registry;
  ASSERT_TRUE(
      registry.Register("d1", std::make_shared<RowsDomain>("d1", 64)).ok());
  ASSERT_TRUE(
      registry.Register("d2", std::make_shared<RowsDomain>("d2", 64)).ok());
  Result<lang::Program> program = lang::Parser::ParseProgram("");
  ASSERT_TRUE(program.ok()) << program.status();
  Result<lang::Query> query = lang::Parser::ParseQuery(
      "?- in(X, d1:rows()) & in(Y, d2:rows()) & X > 1000000000.");
  ASSERT_TRUE(query.ok()) << query.status();
  op::CompileOptions options;
  options.async_scatter_gather = true;
  op::CompiledQuery compiled = op::Compile(*program, *query, options);
  Executor executor(&registry, nullptr, {});
  CallContext ctx;
  Result<QueryExecution> warm =
      executor.ExecuteCompiled(*program, compiled, &ctx);
  ASSERT_TRUE(warm.ok()) << warm.status();

  HERMES_EXPECT_ALLOCS_LE(64, {
    Result<QueryExecution> exec =
        executor.ExecuteCompiled(*program, compiled, &ctx);
    ASSERT_TRUE(exec.ok()) << exec.status();
    EXPECT_TRUE(exec->answers.empty());
  });
}

}  // namespace
}  // namespace hermes::engine
