#include "alloc_guard.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace hermes {
namespace {

TEST(AllocGuardTest, CountsHeapAllocations) {
  testing::AllocCounterScope scope;
  auto p = std::make_unique<int>(7);
  EXPECT_GE(scope.count(), 1u);
  EXPECT_GE(scope.bytes(), sizeof(int));
  (void)p;
}

TEST(AllocGuardTest, StackOnlyCodeCountsZero) {
  HERMES_EXPECT_ALLOCS_LE(0, {
    int x = 41;
    x += 1;
    volatile int sink = x;
    (void)sink;
  });
}

TEST(AllocGuardTest, VectorGrowthIsCounted) {
  testing::AllocCounterScope scope;
  std::vector<int> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_GE(scope.count(), 1u);
}

TEST(AllocGuardTest, CountersArePerThread) {
  testing::AllocCounterScope scope;
  std::thread worker([] {
    // These allocations land on the worker's counters, not ours.
    std::vector<std::string> junk;
    for (int i = 0; i < 50; ++i) junk.push_back(std::string(200, 'x'));
  });
  worker.join();
  // Thread creation itself may allocate on this thread, but the worker's
  // 50+ payload allocations must not be attributed here.
  EXPECT_LT(scope.count(), 20u);
}

TEST(AllocGuardTest, AlignedAllocationsAreCountedAndUsable) {
  testing::AllocCounterScope scope;
  struct alignas(64) Wide {
    double lanes[8];
  };
  auto w = std::make_unique<Wide>();
  EXPECT_EQ(reinterpret_cast<uintptr_t>(w.get()) % 64, 0u);
  EXPECT_GE(scope.count(), 1u);
}

}  // namespace
}  // namespace hermes
