#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "alloc_guard.h"
#include "common/value.h"

namespace hermes {
namespace {

/// The probe: a Value whose every payload is heap-backed (strings long
/// enough to defeat SSO), so each gratuitous deep copy shows up as at least
/// one counted allocation. Pointer-identity checks then pin the view
/// accessors to *zero* copies, not just "few".
Value MakeProbeStruct() {
  return Value::Struct({
      {"id", Value::Int(7)},
      {"label", Value::Str(std::string(128, 'L'))},
      {"pos", Value::Struct({{"x", Value::Double(1.5)},
                             {"y", Value::Double(-2.5)},
                             {"tag", Value::Str(std::string(96, 'T'))}})},
      {"frames", Value::List({Value::Str(std::string(64, 'a')),
                              Value::Str(std::string(64, 'b'))})},
  });
}

TEST(ValueCopyRegressionTest, GetAttrPtrAliasesStorageWithZeroAllocations) {
  Value probe = MakeProbeStruct();
  const Value* expect = &probe.as_struct()[1].second;
  HERMES_EXPECT_ALLOCS_LE(0, {
    Result<const Value*> label = probe.GetAttrPtr("label");
    ASSERT_TRUE(label.ok());
    EXPECT_EQ(label.value(), expect);
  });
}

TEST(ValueCopyRegressionTest, GetAttrMemoSkipsRescans) {
  Value probe = MakeProbeStruct();
  size_t memo = 0;
  Result<const Value*> first = probe.GetAttrPtr("frames", &memo);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(memo, 3u);  // position learned on the first lookup

  // Repeated lookups with the hint must stay allocation-free and return the
  // identical field, the shape of per-row attribute access in filters.
  HERMES_EXPECT_ALLOCS_LE(0, {
    for (int i = 0; i < 1000; ++i) {
      Result<const Value*> again = probe.GetAttrPtr("frames", &memo);
      ASSERT_TRUE(again.ok());
      ASSERT_EQ(again.value(), first.value());
    }
  });

  // A stale hint (different layout) must fall back to the scan, not trust
  // the memo blindly.
  Value other = Value::Struct({{"frames", Value::Int(1)}});
  size_t stale = 3;
  Result<const Value*> fallback = other.GetAttrPtr("frames", &stale);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(stale, 0u);
  EXPECT_EQ(fallback.value(), &other.as_struct()[0].second);
}

TEST(ValueCopyRegressionTest, GetPathPtrWalksNestedPayloadWithoutCopying) {
  Value probe = MakeProbeStruct();
  const Value* expect =
      &probe.as_struct()[2].second.as_struct()[2].second;  // pos.tag
  const std::vector<std::string> path = {"pos", "tag"};
  HERMES_EXPECT_ALLOCS_LE(0, {
    Result<const Value*> tag = probe.GetPathPtr(path);
    ASSERT_TRUE(tag.ok());
    EXPECT_EQ(tag.value(), expect);
  });

  // Positional steps too: frames.2 is the second list element.
  Result<const Value*> second = probe.GetPathPtr({"frames", "2"});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), &probe.as_struct()[3].second.as_list()[1]);
}

TEST(ValueCopyRegressionTest, ElementaryValueActsAsOneTupleByView) {
  Value elementary = Value::Int(42);
  Result<const Value*> self = elementary.GetIndexPtr(1);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self.value(), &elementary);
}

TEST(ValueCopyRegressionTest, ViewAndLegacyAccessorsAgreeOnErrors) {
  Value probe = MakeProbeStruct();
  Value scalar = Value::Int(1);

  EXPECT_EQ(probe.GetAttrPtr("missing").status().code(),
            probe.GetAttr("missing").status().code());
  EXPECT_EQ(scalar.GetAttrPtr("x").status().code(),
            scalar.GetAttr("x").status().code());
  EXPECT_EQ(probe.GetIndexPtr(99).status().code(),
            probe.GetIndex(99).status().code());
  EXPECT_EQ(scalar.GetIndexPtr(0).status().code(),
            scalar.GetIndex(0).status().code());
  EXPECT_EQ(probe.GetPathPtr({"pos", "zz"}).status().code(),
            probe.GetPath({"pos", "zz"}).status().code());
}

TEST(ValueCopyRegressionTest, MoveOverloadsStealPayloadInsteadOfCopying) {
  // String: the moved-out buffer must be the original heap block.
  Value sv = Value::Str(std::string(256, 's'));
  const char* buffer = sv.as_string().data();
  std::string stolen;
  HERMES_EXPECT_ALLOCS_LE(0, { stolen = std::move(sv).as_string(); });
  EXPECT_EQ(stolen.data(), buffer);
  EXPECT_EQ(stolen.size(), 256u);

  // List: vector storage must transfer, element payloads untouched.
  Value lv = Value::List({Value::Str(std::string(128, 'x')), Value::Int(1)});
  const Value* elements = lv.as_list().data();
  ValueList list;
  HERMES_EXPECT_ALLOCS_LE(0, { list = std::move(lv).as_list(); });
  EXPECT_EQ(list.data(), elements);
  ASSERT_EQ(list.size(), 2u);

  // Struct fields likewise.
  Value stv = MakeProbeStruct();
  const auto* fields = stv.as_struct().data();
  StructFields moved;
  HERMES_EXPECT_ALLOCS_LE(0, { moved = std::move(stv).as_struct(); });
  EXPECT_EQ(moved.data(), fields);
  ASSERT_EQ(moved.size(), 4u);
}

TEST(ValueCopyRegressionTest, ConstLvalueAccessorsStillReturnReferences) {
  const Value probe = MakeProbeStruct();
  HERMES_EXPECT_ALLOCS_LE(0, {
    const StructFields& fields = probe.as_struct();
    const std::string& label = fields[1].second.as_string();
    EXPECT_EQ(label.size(), 128u);
  });
}

}  // namespace
}  // namespace hermes
