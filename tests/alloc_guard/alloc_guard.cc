#include "alloc_guard.h"

#include <cstdlib>
#include <new>

namespace hermes::testing {
namespace {

// Plain thread_local counters: operator new may run before any test code,
// so these must be constant-initialized and allocation-free themselves.
thread_local size_t tls_alloc_count = 0;
thread_local size_t tls_alloc_bytes = 0;

void* CountedAlloc(size_t size) {
  ++tls_alloc_count;
  tls_alloc_bytes += size;
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(size_t size, size_t align) {
  ++tls_alloc_count;
  tls_alloc_bytes += size;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? align : size) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

size_t ThreadAllocCount() { return tls_alloc_count; }
size_t ThreadAllocBytes() { return tls_alloc_bytes; }

}  // namespace hermes::testing

// ---------------------------------------------------------------------------
// Global operator new/delete replacements (C++17 set). All forms funnel into
// malloc/free so mixed new/free pairs inside third-party code stay valid.
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) {
  void* p = hermes::testing::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = hermes::testing::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return hermes::testing::CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return hermes::testing::CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = hermes::testing::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = hermes::testing::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return hermes::testing::CountedAlignedAlloc(size,
                                              static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return hermes::testing::CountedAlignedAlloc(size,
                                              static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
