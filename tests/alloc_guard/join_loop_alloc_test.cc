#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "alloc_guard.h"
#include "engine/executor.h"
#include "lang/parser.h"

namespace hermes::engine {
namespace {

/// Domain whose single function enumerates `rows` integer answers. Run()
/// performs exactly one allocation (the answer vector's buffer) regardless
/// of the row count, so any per-row growth observed by the guard below
/// comes from the executor's data plane, not the source.
class RowsDomain : public Domain {
 public:
  explicit RowsDomain(size_t rows) : rows_(rows) {}

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return {{"rows", 0, "rows(): integer enumeration"}};
  }
  Result<CallOutput> Run(const DomainCall& call) override {
    CallOutput out;
    out.answers.reserve(rows_);
    for (size_t i = 0; i < rows_; ++i) {
      out.answers.push_back(Value::Int(static_cast<int64_t>(i)));
    }
    out.first_ms = 1.0;
    out.all_ms = 2.0;
    return out;
  }

 private:
  std::string name_ = "d";
  size_t rows_;
};

/// Heap allocations of one steady-state (pre-warmed) execution of a
/// join-shaped plan — a domain enumeration feeding a comparison filter that
/// rejects every row, so the whole run is the per-row hot loop: resolve the
/// bound variable, evaluate the comparison, roll the binding frame back.
size_t AllocsForRows(size_t rows) {
  DomainRegistry registry;
  EXPECT_TRUE(registry.Register("d", std::make_shared<RowsDomain>(rows)).ok());
  Result<lang::Program> program = lang::Parser::ParseProgram("");
  EXPECT_TRUE(program.ok()) << program.status();
  Result<lang::Query> query =
      lang::Parser::ParseQuery("?- in(X, d:rows()) & X > 1000000000.");
  EXPECT_TRUE(query.ok()) << query.status();
  op::CompiledQuery compiled = op::Compile(*program, *query);
  Executor executor(&registry, nullptr, {});

  // Warm-up run: first-touch allocations (binding slots, operator state)
  // happen here and are reused by the measured run.
  CallContext ctx;
  Result<QueryExecution> warm =
      executor.ExecuteCompiled(*program, compiled, &ctx);
  EXPECT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->answers.empty());

  testing::AllocCounterScope scope;
  Result<QueryExecution> exec =
      executor.ExecuteCompiled(*program, compiled, &ctx);
  const size_t allocs = scope.count();
  EXPECT_TRUE(exec.ok()) << exec.status();
  EXPECT_TRUE(exec->answers.empty());
  return allocs;
}

TEST(JoinLoopAllocTest, SteadyStateLoopAllocationsIndependentOfRowCount) {
  // Zero allocations *per row*: pushing 64x more rows through the loop must
  // not change the execution's allocation count at all. (The absolute count
  // covers per-query setup — pipeline, bindings, the one answer vector —
  // and is pinned separately below.)
  const size_t small = AllocsForRows(8);
  const size_t large = AllocsForRows(512);
  EXPECT_EQ(small, large)
      << "join hot loop allocated per row: " << small << " allocs at 8 rows, "
      << large << " at 512 rows";
}

TEST(JoinLoopAllocTest, SteadyStateExecutionStaysWithinFixedBudget) {
  // The whole steady-state execution — 256 rows enumerated, filtered, and
  // rolled back — must fit a small fixed allocation budget. The budget
  // covers per-query setup only (call pipeline plumbing, the domain's
  // answer buffer, result bookkeeping); per-row costs would blow past it
  // immediately (256 rows * 1 alloc = 256 > 64).
  DomainRegistry registry;
  ASSERT_TRUE(registry.Register("d", std::make_shared<RowsDomain>(256)).ok());
  Result<lang::Program> program = lang::Parser::ParseProgram("");
  ASSERT_TRUE(program.ok()) << program.status();
  Result<lang::Query> query =
      lang::Parser::ParseQuery("?- in(X, d:rows()) & X > 1000000000.");
  ASSERT_TRUE(query.ok()) << query.status();
  op::CompiledQuery compiled = op::Compile(*program, *query);
  Executor executor(&registry, nullptr, {});
  CallContext ctx;
  Result<QueryExecution> warm =
      executor.ExecuteCompiled(*program, compiled, &ctx);
  ASSERT_TRUE(warm.ok()) << warm.status();

  HERMES_EXPECT_ALLOCS_LE(64, {
    Result<QueryExecution> exec =
        executor.ExecuteCompiled(*program, compiled, &ctx);
    ASSERT_TRUE(exec.ok()) << exec.status();
    EXPECT_TRUE(exec->answers.empty());
  });
}

}  // namespace
}  // namespace hermes::engine
