// Plan-cache hit path under the allocation guard: once an entry is warm
// (skeleton inserted, one instance pooled), acquiring and releasing a
// plan for a repeat query — including rebinding changed numeric constants
// — performs zero heap allocations. This is the contract that makes the
// cache admission-free: a hit costs a shard lock, a constant compare/
// assign and a stats reset, never an allocator round trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "alloc_guard.h"
#include "engine/mediator.h"
#include "lang/parser.h"
#include "optimizer/plan_cache.h"
#include "testbed/scenario.h"

namespace hermes::optimizer {
namespace {

std::string Flattened(int first, int last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "?- in(Object, video:frames_to_objects('rope', %d, %d)) & "
                "in(T, relation:equal('cast', role, Object)) & "
                "=(Actor, T.name).",
                first, last);
  return buf;
}

lang::Query MustParse(const std::string& text) {
  Result<lang::Query> query = lang::Parser::ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status();
  return *query;
}

TEST(PlanCacheAllocTest, WarmHitAndReleaseAreAllocationFree) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, {}).ok());
  QueryOptions raw;
  raw.use_optimizer = false;
  raw.use_cim = false;
  Result<optimizer::OptimizerResult> planned =
      med.Plan(Flattened(4, 47), raw);
  ASSERT_TRUE(planned.ok()) << planned.status();

  PlanCacheOptions options;
  options.shards = 1;
  // Stats are backed by the metric counters; counter bumps are atomic adds,
  // so binding them keeps the measured path honest (the mediator's cache
  // always runs with metrics bound).
  obs::MetricsRegistry registry;
  PlanCache cache(options, &med.dcsm(), {});
  cache.BindMetrics(registry);

  // Keys built off the hot path, exactly as the mediator does alongside
  // parsing. Same shape; the second differs only in its int constants.
  std::vector<Value> constants, rebind_constants;
  PlanCacheKey key =
      PlanCache::MakeKey(MustParse(Flattened(4, 47)), "raw", &constants);
  PlanCacheKey rebind_key = PlanCache::MakeKey(MustParse(Flattened(10, 60)),
                                               "raw", &rebind_constants);
  ASSERT_EQ(key.text, rebind_key.text);

  cache.Insert(key, constants, planned->best, CostVector{}, false, {});
  // Warm-up: the first acquire instantiates (compiles a fresh operator
  // tree — allocation-heavy by design); releasing pools the instance.
  {
    PlanCache::Lease warm = cache.Acquire(key, constants);
    ASSERT_TRUE(static_cast<bool>(warm));
    ASSERT_NE(warm.plan(), nullptr);
    cache.Release(std::move(warm));
  }
  ASSERT_EQ(cache.stats().instantiations, 1u);

  // Steady state, identical constants: pop, compare (all equal), reset.
  HERMES_EXPECT_ALLOCS_LE(0, {
    PlanCache::Lease lease = cache.Acquire(key, constants);
    cache.Release(std::move(lease));
  });

  // Steady state, rebinding: the two frame-bound ints are assigned in
  // place; the string constants compare equal and are left untouched.
  HERMES_EXPECT_ALLOCS_LE(0, {
    PlanCache::Lease lease = cache.Acquire(key, rebind_constants);
    cache.Release(std::move(lease));
  });

  // Nothing above was a miss, and no extra instance was built.
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.instantiations, 1u);
}

}  // namespace
}  // namespace hermes::optimizer
