#include <gtest/gtest.h>

#include "engine/mediator.h"
#include "lang/parser.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

TEST(TraceTest, OffByDefault) {
  Mediator med;
  testbed::RopeScenarioOptions options;
  options.sites.video_site = net::LocalSite();
  options.sites.relation_site = net::LocalSite();
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, options).ok());
  Result<QueryResult> res =
      med.Query(testbed::AppendixQuery(3, false, 4, 47), QueryOptions{});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->execution.trace.empty());
}

TEST(TraceTest, RecordsEveryCallInPipelineOrder) {
  Mediator med;
  testbed::RopeScenarioOptions options;
  options.sites.video_site = net::LocalSite();
  options.sites.relation_site = net::LocalSite();
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, options).ok());
  QueryOptions qo;
  qo.use_optimizer = false;
  qo.use_cim = false;
  qo.collect_trace = true;
  Result<QueryResult> res =
      med.Query(testbed::AppendixQuery(3, false, 4, 47), qo);
  ASSERT_TRUE(res.ok()) << res.status();
  const std::vector<engine::CallTrace>& trace = res->execution.trace;
  ASSERT_EQ(trace.size(), res->execution.domain_calls);
  // The first call is the frames_to_objects sweep; each relation probe
  // follows, with non-decreasing pipeline start times.
  EXPECT_EQ(trace[0].call.function, "frames_to_objects");
  double prev = -1.0;
  for (const engine::CallTrace& t : trace) {
    EXPECT_FALSE(t.failed);
    EXPECT_GE(t.t_start_ms, prev);
    prev = t.t_start_ms;
    EXPECT_FALSE(t.ToString().empty());
  }
  // 1 video call + one relation call per object in [4,47].
  EXPECT_EQ(trace.size(), 8u);
}

TEST(TraceTest, RecordsFailures) {
  Mediator med;
  testbed::RopeScenarioOptions options;
  options.sites.video_site.availability = 0.0;
  options.enable_caching = false;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, options).ok());
  QueryOptions qo;
  qo.use_optimizer = false;
  qo.use_cim = false;
  qo.collect_trace = true;
  Result<QueryResult> res =
      med.Query(testbed::AppendixQuery(1, true, 4, 47), qo);
  EXPECT_TRUE(res.status().IsUnavailable());
  // The trace lives in the (failed) execution, which Result discards —
  // so failure tracing is exercised at the executor level instead.
  engine::Executor executor(&med.registry(), nullptr,
                            [] {
                              engine::ExecutorOptions o;
                              o.collect_trace = true;
                              return o;
                            }());
  Result<lang::Query> query = lang::Parser::ParseQuery(
      "?- in(O, video:frames_to_objects('rope', 4, 47)).");
  ASSERT_TRUE(query.ok());
  Result<engine::QueryExecution> exec =
      executor.Execute(med.program(), *query);
  EXPECT_TRUE(exec.status().IsUnavailable());
}

TEST(TraceTest, TraceShowsCimServingFromCache) {
  Mediator med;
  ASSERT_TRUE(
      testbed::SetupRopeScenario(&med, testbed::RopeScenarioOptions{}).ok());
  QueryOptions qo;
  qo.use_optimizer = false;
  qo.use_cim = true;
  qo.collect_trace = true;
  std::string query = testbed::AppendixQuery(1, true, 4, 47);
  ASSERT_TRUE(med.Query(query, qo).ok());  // warm
  Result<QueryResult> warm = med.Query(query, qo);
  ASSERT_TRUE(warm.ok());
  ASSERT_FALSE(warm->execution.trace.empty());
  // Calls route to the CIM wrapper and return in ~cache time.
  EXPECT_EQ(warm->execution.trace[0].call.domain, "cim_video");
  EXPECT_LT(warm->execution.trace[0].all_ms, 10.0);
}

}  // namespace
}  // namespace hermes
