// QueryPool admission control: priority draining, typed full-queue
// rejection with queue-depth context, deadline-aware shedding against the
// observed queue-wait watermark, CoDel queue-delay shedding at dequeue, and
// the brownout ladder refusing low-priority work at level 3.
//
// The pool's admission decisions run on the host wall clock (queue waits
// are real implementation costs), so these tests create genuine backlog —
// service pacing stretches each query's simulated latency into real worker
// occupancy — and assert on typed outcomes, never on exact timings.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "domain/overload.h"
#include "engine/mediator.h"
#include "engine/query_pool.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

std::string FramesQuery(int first, int last) {
  return "?- in(O, video:frames_to_objects('rope', " + std::to_string(first) +
         ", " + std::to_string(last) + ")).";
}

QueryOptions WithPriority(QueryPriority p, double deadline_ms = 0.0) {
  QueryOptions q;
  q.use_optimizer = false;
  q.priority = p;
  q.deadline_ms = deadline_ms;
  return q;
}

std::unique_ptr<Mediator> PacedMediator(double pacing) {
  auto med = std::make_unique<Mediator>();
  EXPECT_TRUE(testbed::SetupRopeScenario(med.get(), {}).ok());
  med->set_service_pacing(pacing);
  return med;
}

TEST(AdmissionTest, HighPriorityDrainsBeforeEarlierLowPriority) {
  std::unique_ptr<Mediator> med = PacedMediator(0.05);
  QueryPoolOptions pool_options;
  pool_options.num_threads = 1;
  pool_options.queue_capacity = 8;
  std::unique_ptr<QueryPool> pool = med->Serve(pool_options);

  // Occupy the single worker, then enqueue the same query twice — LOW
  // first, HIGH second. The worker must drain HIGH first; with the rope
  // scenario's caching on, the first executor of the shared call misses
  // the cache and the second hits, which makes execution order observable
  // in the per-query metrics.
  std::future<Result<QueryResult>> blocker =
      pool->Submit(FramesQuery(300, 900), WithPriority(QueryPriority::kNormal));
  std::future<Result<QueryResult>> low =
      pool->Submit(FramesQuery(4, 47), WithPriority(QueryPriority::kLow));
  std::future<Result<QueryResult>> high =
      pool->Submit(FramesQuery(4, 47), WithPriority(QueryPriority::kHigh));

  Result<QueryResult> high_res = high.get();
  Result<QueryResult> low_res = low.get();
  ASSERT_TRUE(blocker.get().ok());
  ASSERT_TRUE(high_res.ok()) << high_res.status();
  ASSERT_TRUE(low_res.ok()) << low_res.status();
  EXPECT_EQ(high_res->execution.answers.size(),
            low_res->execution.answers.size());
  // HIGH ran first: it did the real work, LOW was served from cache.
  EXPECT_EQ(high_res->metrics.cache_hits, 0u);
  EXPECT_GT(high_res->metrics.domain_calls, 0u);
  EXPECT_GT(low_res->metrics.cache_hits, 0u);
}

TEST(AdmissionTest, FullQueueRejectionIsTypedWithQueueContext) {
  std::unique_ptr<Mediator> med = PacedMediator(0.05);
  QueryPoolOptions pool_options;
  pool_options.num_threads = 1;
  pool_options.queue_capacity = 1;
  std::unique_ptr<QueryPool> pool = med->Serve(pool_options);

  // Occupy the worker, fill the 1-slot queue, then overflow it.
  std::future<Result<QueryResult>> blocker =
      pool->Submit(FramesQuery(300, 900), WithPriority(QueryPriority::kNormal));
  std::vector<std::future<Result<QueryResult>>> accepted;
  Status refused = Status::OK();
  for (int i = 0; i < 3 && refused.ok(); ++i) {
    std::future<Result<QueryResult>> out;
    refused = pool->TrySubmit(FramesQuery(4, 20 + i),
                              WithPriority(QueryPriority::kNormal), &out);
    if (refused.ok()) accepted.push_back(std::move(out));
  }
  ASSERT_FALSE(refused.ok()) << "queue never filled";
  EXPECT_TRUE(refused.IsResourceExhausted()) << refused;
  // The status carries the queue's state at rejection time.
  EXPECT_NE(refused.ToString().find("depth 1/1"), std::string::npos)
      << refused;
  EXPECT_GT(pool->stats().rejected, 0u);
  std::string prom = med->metrics().ExposePrometheus();
  EXPECT_NE(prom.find("hermes_pool_rejected_total"), std::string::npos);
  EXPECT_NE(prom.find("reason=\"full\""), std::string::npos);
  EXPECT_NE(prom.find("hermes_pool_queue_depth"), std::string::npos);
  ASSERT_TRUE(blocker.get().ok());
  for (auto& f : accepted) EXPECT_TRUE(f.get().ok());
}

TEST(AdmissionTest, DeadlineBelowQueueWaitWatermarkIsShedAtSubmission) {
  std::unique_ptr<Mediator> med = PacedMediator(0.02);
  QueryPoolOptions pool_options;
  pool_options.num_threads = 1;
  pool_options.queue_capacity = 16;
  pool_options.admission.enabled = true;
  pool_options.admission.watermark_min_samples = 4;
  pool_options.admission.codel_target_ms = 0.0;  // isolate the deadline path
  std::unique_ptr<QueryPool> pool = med->Serve(pool_options);

  // Build real backlog behind the single worker so the pool observes
  // genuine queue waits (well above a millisecond each).
  std::vector<std::future<Result<QueryResult>>> warm;
  for (int i = 0; i < 5; ++i) {
    warm.push_back(pool->Submit(FramesQuery(4, 40 + i),
                                WithPriority(QueryPriority::kNormal)));
  }
  for (auto& f : warm) ASSERT_TRUE(f.get().ok());

  // A microscopic deadline budget (0.1 simulated ms × pacing 0.02 = 2µs of
  // wall budget) cannot survive the observed watermark: shed at the door.
  std::future<Result<QueryResult>> out;
  Status shed = pool->TrySubmit(
      FramesQuery(4, 60), WithPriority(QueryPriority::kNormal, 0.1), &out);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed;
  EXPECT_NE(shed.ToString().find("deadline budget"), std::string::npos)
      << shed;
  EXPECT_EQ(pool->stats().shed_deadline, 1u);

  // A workable deadline passes the same check.
  std::future<Result<QueryResult>> fine;
  ASSERT_TRUE(pool->TrySubmit(FramesQuery(4, 61),
                              WithPriority(QueryPriority::kNormal, 1e9), &fine)
                  .ok());
  EXPECT_TRUE(fine.get().ok());
  std::string prom = med->metrics().ExposePrometheus();
  EXPECT_NE(prom.find("reason=\"deadline\""), std::string::npos);
}

TEST(AdmissionTest, CodelShedsBackloggedQueriesButNeverHighPriority) {
  std::unique_ptr<Mediator> med = PacedMediator(0.02);
  QueryPoolOptions pool_options;
  pool_options.num_threads = 1;
  pool_options.queue_capacity = 32;
  pool_options.admission.enabled = true;
  pool_options.admission.deadline_aware = false;  // isolate the CoDel path
  pool_options.admission.codel_target_ms = 1.0;
  pool_options.admission.codel_interval_ms = 2.0;
  std::unique_ptr<QueryPool> pool = med->Serve(pool_options);

  // Pile queries behind the single paced worker: sojourns blow through the
  // 1ms target within the first service time and CoDel starts dropping at
  // dequeue — except for high-priority queries, which it never touches.
  std::vector<std::future<Result<QueryResult>>> normals;
  std::vector<std::future<Result<QueryResult>>> highs;
  for (int i = 0; i < 10; ++i) {
    normals.push_back(pool->Submit(FramesQuery(4, 80 + i),
                                   WithPriority(QueryPriority::kNormal)));
    if (i % 3 == 0) {
      highs.push_back(pool->Submit(FramesQuery(4, 200 + i),
                                   WithPriority(QueryPriority::kHigh)));
    }
  }
  size_t answered = 0, codel_shed = 0;
  for (auto& f : normals) {
    Result<QueryResult> res = f.get();
    if (res.ok()) {
      ++answered;
    } else {
      ASSERT_TRUE(res.status().IsResourceExhausted()) << res.status();
      EXPECT_NE(res.status().ToString().find("CoDel"), std::string::npos)
          << res.status();
      ++codel_shed;
    }
  }
  for (auto& f : highs) {
    Result<QueryResult> res = f.get();
    EXPECT_TRUE(res.ok()) << res.status();  // kHigh is never CoDel-shed
  }
  EXPECT_GT(answered, 0u);   // the system kept doing work
  EXPECT_GT(codel_shed, 0u);  // and shed the hopeless backlog
  EXPECT_EQ(pool->stats().shed_codel, codel_shed);
  std::string prom = med->metrics().ExposePrometheus();
  EXPECT_NE(prom.find("reason=\"codel\""), std::string::npos);
}

TEST(AdmissionTest, BrownoutLevelThreeShedsLowPriorityAtTheDoor) {
  std::unique_ptr<Mediator> med = PacedMediator(0.0);
  // A hair-trigger ladder the test can drive to level 3 by hand.
  overload::BrownoutController::Options ladder;
  ladder.window_events = 8;
  ladder.up_threshold = 0.5;
  ladder.ewma_alpha = 1.0;
  ladder.min_dwell_windows = 0;
  ASSERT_TRUE(med->EnableOverloadControl({}, ladder).ok());

  QueryPoolOptions pool_options;
  pool_options.num_threads = 1;
  pool_options.admission.enabled = true;
  std::unique_ptr<QueryPool> pool = med->Serve(pool_options);

  overload::BrownoutController* brownout = med->brownout();
  ASSERT_NE(brownout, nullptr);
  while (brownout->level() < overload::BrownoutController::kShedLow) {
    brownout->RecordOutcome(true);
  }

  std::future<Result<QueryResult>> out;
  Status shed = pool->TrySubmit(FramesQuery(4, 47),
                                WithPriority(QueryPriority::kLow), &out);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed;
  EXPECT_NE(shed.ToString().find("brownout"), std::string::npos) << shed;
  EXPECT_EQ(pool->stats().shed_brownout, 1u);

  // Normal and high priority still get through at level 3.
  std::future<Result<QueryResult>> normal;
  ASSERT_TRUE(pool->TrySubmit(FramesQuery(4, 47),
                              WithPriority(QueryPriority::kNormal), &normal)
                  .ok());
  EXPECT_TRUE(normal.get().ok());
  std::string prom = med->metrics().ExposePrometheus();
  EXPECT_NE(prom.find("reason=\"brownout\""), std::string::npos);
  EXPECT_NE(prom.find("hermes_overload_brownout_level"), std::string::npos);
}

}  // namespace
}  // namespace hermes
