// Edge-case coverage for the executor: attribute paths in call arguments,
// bounded caches under load, deeply nested values, unavailability
// propagation through rules.

#include <gtest/gtest.h>

#include "engine/mediator.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

TEST(ExecutorEdgeTest, AttributePathAsDomainCallArgument) {
  // in(R, terraindb:findrte(From, T.loc)) — the call argument is resolved
  // through the struct produced by an earlier goal.
  Mediator med;
  ASSERT_TRUE(med.RegisterDomain("terraindb", testbed::MakeSupplyTerrain())
                  .ok());
  auto inv = testbed::MakeInventoryDatabase();
  ASSERT_TRUE(med.RegisterDomain(
                     "ingres",
                     std::make_shared<relational::RelationalDomain>("i", inv))
                  .ok());
  ASSERT_TRUE(med.LoadProgram(R"(
      route_direct(From, Sup, R) :-
          in(T, ingres:equal('inventory', item, Sup)) &
          in(R, terraindb:findrte(From, T.loc)).
  )")
                  .ok());
  Result<QueryResult> res = med.Query(
      "?- route_direct('place1', 'rations', R).", QueryOptions{});
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->execution.answers.size(), 2u);  // north + south depots
}

TEST(ExecutorEdgeTest, BoundedCimCacheEvictsUnderLoad) {
  Mediator med;
  testbed::RopeScenarioOptions options;
  options.enable_caching = false;  // wire caching manually with bounds
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, options).ok());
  ASSERT_TRUE(med.EnableCaching("video", cim::CimOptions{},
                                cim::CimCostParams{},
                                /*cache_max_entries=*/3)
                  .ok());
  QueryOptions via_cim;
  via_cim.use_optimizer = false;
  for (int last = 10; last <= 80; last += 10) {
    ASSERT_TRUE(
        med.Query(testbed::AppendixQuery(1, true, 4, last), via_cim).ok());
  }
  cim::CimDomain* cim = med.cim("video");
  EXPECT_LE(cim->cache().size(), 3u);
  EXPECT_GT(cim->cache().stats().evictions, 0u);
  // The cache still functions: the most recent call is a hit.
  uint64_t hits = cim->stats().exact_hits;
  ASSERT_TRUE(
      med.Query(testbed::AppendixQuery(1, true, 4, 80), via_cim).ok());
  EXPECT_GT(cim->stats().exact_hits, hits);
}

TEST(ExecutorEdgeTest, UnavailabilityPropagatesThroughRules) {
  Mediator med;
  testbed::RopeScenarioOptions options;
  options.sites.video_site.availability = 0.0;
  options.enable_caching = false;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, options).ok());
  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;
  Result<QueryResult> res =
      med.Query(testbed::AppendixQuery(3, false, 4, 47), direct);
  EXPECT_TRUE(res.status().IsUnavailable());
}

TEST(ExecutorEdgeTest, ComparisonOnlyQuery) {
  Mediator med;
  ASSERT_TRUE(med.LoadProgram("tautology(X) :- =(X, 42) & X > 10.").ok());
  Result<QueryResult> res = med.Query("?- tautology(X).", QueryOptions{});
  ASSERT_TRUE(res.ok()) << res.status();
  ASSERT_EQ(res->execution.answers.size(), 1u);
  EXPECT_EQ(res->execution.answers[0][0], Value::Int(42));

  Result<QueryResult> none = med.Query("?- tautology(5).", QueryOptions{});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->execution.answers.empty());
}

TEST(ExecutorEdgeTest, DeeplyNestedAnswerStructures) {
  // Terrain routes contain lists of structs; drill in through paths.
  Mediator med;
  ASSERT_TRUE(med.RegisterDomain("terraindb", testbed::MakeSupplyTerrain())
                  .ok());
  ASSERT_TRUE(med.LoadProgram(R"(
      first_waypoint_x(From, To, X) :-
          in(R, terraindb:findrte(From, To)) &
          =(X, R.waypoints.1.x).
  )")
                  .ok());
  Result<QueryResult> res = med.Query(
      "?- first_waypoint_x('place1', 'depot_west', X).", QueryOptions{});
  ASSERT_TRUE(res.ok()) << res.status();
  ASSERT_EQ(res->execution.answers.size(), 1u);
  EXPECT_EQ(res->execution.answers.back().back(), Value::Int(4));  // place1.x
}

TEST(ExecutorEdgeTest, RuleChainsThreeLevelsDeep) {
  Mediator med;
  auto db = testbed::MakeCastDatabase();
  ASSERT_TRUE(med.RegisterDomain(
                     "relation",
                     std::make_shared<relational::RelationalDomain>("r", db))
                  .ok());
  ASSERT_TRUE(med.LoadProgram(R"(
      level1(R, N) :- in(T, relation:equal('cast', 'role', R)) & =(N, T.name).
      level2(R, N) :- level1(R, N).
      level3(N) :- level2('rupert', N).
  )")
                  .ok());
  Result<QueryResult> res = med.Query("?- level3(N).", QueryOptions{});
  ASSERT_TRUE(res.ok()) << res.status();
  ASSERT_EQ(res->execution.answers.size(), 1u);
  EXPECT_EQ(res->execution.answers[0][0], Value::Str("james stewart"));
}

}  // namespace
}  // namespace hermes
