// Tests of the physical operator layer (engine/op/): tree compilation,
// repeated execution of a compiled tree, per-operator stats and metrics,
// operator spans, and the executor guard paths driven through the tree.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/op/compile.h"
#include "engine/op/explain.h"
#include "engine/op/op_metrics.h"
#include "lang/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hermes::engine {
namespace {

class ScriptedDomain : public Domain {
 public:
  explicit ScriptedDomain(std::string name) : name_(std::move(name)) {}

  void Set(const DomainCall& call, AnswerSet answers, double first_ms = 1.0,
           double all_ms = 2.0) {
    scripts_[call.ToString()] = {std::move(answers), first_ms, all_ms};
  }
  int calls() const { return calls_; }

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override { return {}; }
  Result<CallOutput> Run(const DomainCall& call) override {
    ++calls_;
    auto it = scripts_.find(call.ToString());
    if (it == scripts_.end()) {
      return Status::NotFound("unscripted: " + call.ToString());
    }
    CallOutput out;
    out.answers = it->second.answers;
    out.first_ms = it->second.first_ms;
    out.all_ms = it->second.all_ms;
    return out;
  }

 private:
  struct Script {
    AnswerSet answers;
    double first_ms;
    double all_ms;
  };
  std::string name_;
  std::map<std::string, Script> scripts_;
  int calls_ = 0;
};

struct Fixture {
  DomainRegistry registry;
  std::shared_ptr<ScriptedDomain> d = std::make_shared<ScriptedDomain>("d");
  lang::Program program;
  lang::Query query;

  Fixture() { (void)registry.Register("d", d); }

  void Parse(const std::string& program_text, const std::string& query_text) {
    Result<lang::Program> p = lang::Parser::ParseProgram(program_text);
    ASSERT_TRUE(p.ok()) << p.status();
    Result<lang::Query> q = lang::Parser::ParseQuery(query_text);
    ASSERT_TRUE(q.ok()) << q.status();
    program = std::move(p).value();
    query = std::move(q).value();
  }
};

DomainCall C(const std::string& fn, ValueList args) {
  return DomainCall{"d", fn, std::move(args)};
}

TEST(OpTreeTest, CompiledTreeShape) {
  Fixture fx;
  fx.Parse("", "?- in(X, d:f()) & X > 1 & in(Y, d:g(X)).");
  op::CompiledQuery cq = op::Compile(fx.program, fx.query);
  ASSERT_NE(cq.root, nullptr);
  ASSERT_NE(cq.sink, nullptr);
  EXPECT_EQ(cq.root->kind(), op::OpKind::kAnswerSink);
  EXPECT_EQ(cq.var_names, (std::vector<std::string>{"X", "Y"}));

  // The EXPLAIN rendering reflects the tree: sink over project over a
  // left-deep join chain in goal order.
  std::string text = op::ExplainTree(*cq.root, {});
  EXPECT_NE(text.find("AnswerSink"), std::string::npos) << text;
  EXPECT_NE(text.find("Project [X, Y]"), std::string::npos) << text;
  EXPECT_NE(text.find("NestedLoopJoin"), std::string::npos) << text;
  EXPECT_NE(text.find("DomainCall"), std::string::npos) << text;
  EXPECT_NE(text.find("Filter"), std::string::npos) << text;
  size_t first_call = text.find("d:f()");
  size_t filter = text.find("Filter");
  size_t second_call = text.find("d:g(");
  ASSERT_NE(first_call, std::string::npos);
  ASSERT_NE(second_call, std::string::npos);
  EXPECT_LT(first_call, filter);
  EXPECT_LT(filter, second_call);
}

TEST(OpTreeTest, EmptyQueryCompilesToUnit) {
  Fixture fx;
  fx.Parse("f('a').", "?- f('a').");
  op::CompiledQuery cq = op::Compile(fx.program, fx.query);
  std::string text = op::ExplainTree(*cq.root, {});
  EXPECT_NE(text.find("RulePredicate"), std::string::npos) << text;
}

TEST(OpTreeTest, ExecuteCompiledIsRepeatable) {
  Fixture fx;
  fx.d->Set(C("f", {}), {Value::Int(1), Value::Int(2)}, 10, 20);
  fx.Parse("", "?- in(X, d:f()).");
  op::CompiledQuery cq = op::Compile(fx.program, fx.query);
  Executor executor(&fx.registry, nullptr, {});
  for (int run = 0; run < 2; ++run) {
    CallContext ctx;
    Result<QueryExecution> exec =
        executor.ExecuteCompiled(fx.program, cq, &ctx);
    ASSERT_TRUE(exec.ok()) << exec.status();
    EXPECT_EQ(exec->answers.size(), 2u);
    EXPECT_DOUBLE_EQ(exec->t_first_ms, 10.0);
    EXPECT_DOUBLE_EQ(exec->t_all_ms, 20.0);
    EXPECT_EQ(exec->domain_calls, 1u);
    EXPECT_TRUE(exec->complete);
  }
  // Per-operator stats accumulate across the two runs of the same tree.
  EXPECT_EQ(cq.root->stats().opens, 2u);
  EXPECT_EQ(cq.root->stats().rows, 4u);
}

TEST(OpTreeTest, PerOperatorMetricsMatchExecution) {
  Fixture fx;
  fx.d->Set(C("outer", {}), {Value::Int(1), Value::Int(2)}, 1, 2);
  fx.d->Set(C("inner", {Value::Int(1)}), {Value::Str("a")}, 1, 1);
  fx.d->Set(C("inner", {Value::Int(2)}), {Value::Str("b")}, 1, 1);
  fx.Parse("", "?- in(X, d:outer()) & in(Y, d:inner(X)).");

  obs::MetricsRegistry registry;
  ExecutorOptions options;
  options.op_metrics = op::ExecOpMetrics::Bind(registry);
  Executor executor(&fx.registry, nullptr, options);
  Result<QueryExecution> exec = executor.Execute(fx.program, fx.query);
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_EQ(exec->answers.size(), 2u);

  // One Open of the outer call op + one per outer tuple for the inner:
  // opens{op=domain_call} = 3 = the query's domain-call count.
  EXPECT_EQ(options.op_metrics->domain_call.opens->Value(), 3u);
  EXPECT_EQ(exec->domain_calls, 3u);
  // The join produced both answers; the sink consumed them.
  EXPECT_EQ(options.op_metrics->answer_sink.rows->Value(), 2u);
  EXPECT_EQ(options.op_metrics->nested_loop_join.rows->Value(), 2u);
}

TEST(OpTreeTest, OperatorSpansGatedByOption) {
  Fixture fx;
  fx.d->Set(C("f", {}), {Value::Int(1)}, 1, 2);
  fx.Parse("", "?- in(X, d:f()).");

  auto count_operator_spans = [](const obs::Tracer& tracer) {
    size_t n = 0;
    for (const obs::Span& span : tracer.spans()) {
      if (span.category == "operator") ++n;
    }
    return n;
  };

  {
    obs::Tracer tracer;
    CallContext ctx;
    ctx.tracer = &tracer;
    Executor executor(&fx.registry, nullptr, {});
    ASSERT_TRUE(executor.Execute(fx.program, fx.query, &ctx).ok());
    EXPECT_EQ(count_operator_spans(tracer), 0u);  // default: walker shape
  }
  {
    obs::Tracer tracer;
    CallContext ctx;
    ctx.tracer = &tracer;
    ExecutorOptions options;
    options.trace_operators = true;
    Executor executor(&fx.registry, nullptr, options);
    ASSERT_TRUE(executor.Execute(fx.program, fx.query, &ctx).ok());
    // Sink, project, domain call — every operator of the tree.
    EXPECT_EQ(count_operator_spans(tracer), 3u);
    for (const obs::Span& span : tracer.spans()) {
      if (span.category == "operator") {
        EXPECT_TRUE(span.closed);
      }
    }
  }
}

TEST(OpTreeTest, RecursionDepthGuardAtOpen) {
  Fixture fx;
  fx.Parse("p(X) :- p(X).", "?- p(1).");
  ExecutorOptions options;
  options.max_recursion_depth = 8;
  Executor executor(&fx.registry, nullptr, options);
  Result<QueryExecution> exec = executor.Execute(fx.program, fx.query);
  ASSERT_FALSE(exec.ok());
  EXPECT_NE(exec.status().ToString().find("recursion depth limit reached"),
            std::string::npos)
      << exec.status();
}

TEST(OpTreeTest, DomainCallBudgetStopsMidPipeline) {
  // outer delivers 3 tuples; each probes inner. Budget of 2 admits the
  // outer call and the first inner probe, then fails the second inner call
  // while the join is mid-flight.
  Fixture fx;
  fx.d->Set(C("outer", {}),
            {Value::Int(1), Value::Int(2), Value::Int(3)}, 1, 3);
  for (int i = 1; i <= 3; ++i) {
    fx.d->Set(C("inner", {Value::Int(i)}), {Value::Str("x")}, 1, 1);
  }
  fx.Parse("", "?- in(X, d:outer()) & in(Y, d:inner(X)).");
  ExecutorOptions options;
  options.max_domain_calls = 2;
  Executor executor(&fx.registry, nullptr, options);
  Result<QueryExecution> exec = executor.Execute(fx.program, fx.query);
  ASSERT_FALSE(exec.ok());
  EXPECT_NE(exec.status().ToString().find("budget exhausted"),
            std::string::npos)
      << exec.status();
  EXPECT_EQ(fx.d->calls(), 2);
}

TEST(OpTreeTest, InteractiveBatchResumesAcrossRuns) {
  Fixture fx;
  AnswerSet many;
  for (int i = 0; i < 10; ++i) many.push_back(Value::Int(i));
  fx.d->Set(C("big", {}), many, 1, 10);
  fx.Parse("", "?- in(X, d:big()).");

  ExecutorOptions options;
  options.mode = ExecutionMode::kInteractive;
  options.interactive_batch = 3;
  Executor executor(&fx.registry, nullptr, options);
  op::CompiledQuery cq = op::Compile(fx.program, fx.query);

  CallContext ctx;
  Result<QueryExecution> exec = executor.ExecuteCompiled(fx.program, cq, &ctx);
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_EQ(exec->answers.size(), 3u);
  EXPECT_FALSE(exec->complete);

  // Re-running the same compiled tree restarts the batch (the paper's UI
  // re-queries); the tree resets cleanly and returns the batch again.
  CallContext ctx2;
  Result<QueryExecution> again =
      executor.ExecuteCompiled(fx.program, cq, &ctx2);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->answers.size(), 3u);
  EXPECT_FALSE(again->complete);
}

TEST(OpTreeTest, InteractiveStopIssuesNoFurtherCalls) {
  // Once the sink stops pulling, no downstream domain call is issued: the
  // first outer tuple satisfies the batch, so inner runs exactly once.
  Fixture fx;
  fx.d->Set(C("outer", {}),
            {Value::Int(1), Value::Int(2), Value::Int(3)}, 1, 3);
  for (int i = 1; i <= 3; ++i) {
    fx.d->Set(C("inner", {Value::Int(i)}), {Value::Str("x")}, 1, 1);
  }
  fx.Parse("", "?- in(X, d:outer()) & in(Y, d:inner(X)).");
  ExecutorOptions options;
  options.mode = ExecutionMode::kInteractive;
  options.interactive_batch = 1;
  Executor executor(&fx.registry, nullptr, options);
  Result<QueryExecution> exec = executor.Execute(fx.program, fx.query);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->answers.size(), 1u);
  EXPECT_EQ(fx.d->calls(), 2);  // outer + one inner probe
}

TEST(OpTreeTest, RuleStatsVisibleInExplainActuals) {
  Fixture fx;
  fx.d->Set(C("f", {}), {Value::Int(1), Value::Int(2)}, 1, 2);
  fx.Parse("p(X) :- in(X, d:f()).", "?- p(X).");
  op::CompiledQuery cq = op::Compile(fx.program, fx.query);
  Executor executor(&fx.registry, nullptr, {});
  CallContext ctx;
  ASSERT_TRUE(executor.ExecuteCompiled(fx.program, cq, &ctx).ok());

  op::ExplainOptions options;
  options.actuals = true;
  std::string text = op::ExplainTree(*cq.root, options);
  EXPECT_NE(text.find("rule:"), std::string::npos) << text;
  EXPECT_NE(text.find("(actual: opens=1 rows=2"), std::string::npos) << text;
}

}  // namespace
}  // namespace hermes::engine
