// Mid-query re-optimization end to end: a breaker opening on a suffix
// goal's site makes the executing join splice in a CIM-redirected subtree,
// the EXPLAIN carries the replanned@ marker with the before/after suffix,
// and the hermes_replan_* counters and diagnostics bundles record the
// decision. Golden test at the bottom pins the replanned EXPLAIN; after an
// intentional format change regenerate with:
//
//   HERMES_UPDATE_GOLDENS=1 ./tests/engine_replan_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "common/io.h"
#include "engine/mediator.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

// The appendix queries are single rule-predicate goals, whose bodies
// execute inside one RulePredicateOp — nothing for the top-level spine to
// replan. The flattened form exposes the goal chain to the spine: the
// video call (umd) feeds per-object relation lookups (cornell), so killing
// cornell mid-join leaves an unexecuted suffix worth re-planning.
const char kFlattenedQuery[] =
    "?- in(Object, video:frames_to_objects('rope', 4, 47)) & "
    "in(T, relation:equal('cast', role, Object)) & =(Actor, T.name).";

std::unique_ptr<Mediator> RopeMediator() {
  auto med = std::make_unique<Mediator>();
  EXPECT_TRUE(testbed::SetupRopeScenario(med.get(), {}).ok());
  return med;
}

QueryOptions DirectQuery() {
  QueryOptions options;
  options.use_optimizer = false;
  options.use_cim = false;  // replan's redirect must be the one adding CIM
  options.partial_results = true;
  options.explain = true;
  return options;
}

/// Warms the CIM wrappers (so the redirect target has answers), then kills
/// the relation site and arms a hair-trigger breaker on it.
void WarmCimThenKillRelationSite(Mediator* med) {
  QueryOptions warm;
  warm.use_optimizer = false;
  warm.use_cim = true;
  Result<QueryResult> warmed = med->Query(kFlattenedQuery, warm);
  ASSERT_TRUE(warmed.ok()) << warmed.status();
  ASSERT_FALSE(warmed->execution.answers.empty());

  med->remote_link("relation")->mutable_site().availability = 0.0;
  resilience::ResiliencePolicy policy;
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 2;
  policy.breaker.probe_interval = 1e9;  // no half-open probe mid-query
  ASSERT_TRUE(med->SetResiliencePolicy("relation", policy).ok());
}

TEST(ReplanTest, BreakerOpenSplicesCimRedirectIntoTheRunningJoin) {
  std::unique_ptr<Mediator> med = RopeMediator();
  // Diagnostics wires the flight recorder the kReplan event lands in.
  ASSERT_TRUE(med->EnableDiagnostics({}).ok());
  WarmCimThenKillRelationSite(med.get());

  engine::op::ReplanOptions replan;
  replan.enabled = true;
  med->set_replan_options(replan);

  Result<QueryResult> res = med->Query(kFlattenedQuery, DirectQuery());
  ASSERT_TRUE(res.ok()) << res.status();

  // The replan fired on the breaker and redirected the suffix to the CIM.
  ASSERT_EQ(res->replan_events.size(), 1u);
  const engine::op::ReplanEvent& ev = res->replan_events[0];
  EXPECT_NE(ev.trigger.find("breaker_open"), std::string::npos) << ev.trigger;
  EXPECT_NE(ev.trigger.find("site=cornell"), std::string::npos) << ev.trigger;
  EXPECT_NE(ev.trigger.find("domain=relation"), std::string::npos);
  EXPECT_NE(ev.old_suffix.find("relation:equal"), std::string::npos);
  EXPECT_NE(ev.new_suffix.find("cim_relation:equal"), std::string::npos);

  // The join rows issued before the breaker opened lost their source; every
  // row after the splice was answered from the warmed CIM.
  EXPECT_FALSE(res->execution.answers.empty());
  EXPECT_NE(res->completeness, QueryCompleteness::kComplete);

  // EXPLAIN shows which operator was replanned, plus the decision record.
  EXPECT_NE(res->explain_text.find("replanned@cim_relation:equal"),
            std::string::npos)
      << res->explain_text;
  EXPECT_NE(res->explain_text.find("trigger=breaker_open"), std::string::npos);

  // Observability: counters moved and the per-query flight stream has the
  // replan event.
  std::string prom = med->metrics().ExposePrometheus();
  EXPECT_NE(prom.find("hermes_replan_triggers_total 1"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("hermes_replan_splices_total 1"), std::string::npos);
  bool saw_replan_event = false;
  for (const obs::FlightEvent& fe :
       med->flight_recorder()->SnapshotQuery(res->query_id)) {
    if (fe.kind == obs::FlightEventKind::kReplan) saw_replan_event = true;
  }
  EXPECT_TRUE(saw_replan_event);
}

TEST(ReplanTest, DisabledByDefaultEvenUnderAnOpenBreaker) {
  std::unique_ptr<Mediator> med = RopeMediator();
  WarmCimThenKillRelationSite(med.get());

  Result<QueryResult> res = med->Query(kFlattenedQuery, DirectQuery());
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_TRUE(res->replan_events.empty());
  EXPECT_EQ(res->explain_text.find("replanned@"), std::string::npos);
  // Without the replan every per-row relation call is shed by the breaker:
  // the join streams zero answers.
  EXPECT_TRUE(res->execution.answers.empty());
  std::string prom = med->metrics().ExposePrometheus();
  EXPECT_NE(prom.find("hermes_replan_triggers_total 0"), std::string::npos);
}

TEST(ReplanTest, MaxReplansBoundsSplicesPerQuery) {
  std::unique_ptr<Mediator> med = RopeMediator();
  WarmCimThenKillRelationSite(med.get());

  engine::op::ReplanOptions replan;
  replan.enabled = true;
  replan.max_replans = 0;  // armed but budgetless: must behave as disabled
  med->set_replan_options(replan);

  Result<QueryResult> res = med->Query(kFlattenedQuery, DirectQuery());
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_TRUE(res->replan_events.empty());
  EXPECT_TRUE(res->execution.answers.empty());
}

TEST(ReplanTest, DiagnosticsBundleCapturesTheReplanDecision) {
  std::unique_ptr<Mediator> med = RopeMediator();

  DiagnosticsOptions diag;
  // Isolate the replan capture reason from the breaker-open one (which is
  // checked first and would otherwise claim this bundle).
  diag.capture_on_breaker_open = false;
  diag.capture_on_partial = false;
  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "replan_bundles";
  std::filesystem::remove_all(dir);
  diag.bundle_dir = dir.string();
  ASSERT_TRUE(med->EnableDiagnostics(diag).ok());

  WarmCimThenKillRelationSite(med.get());
  engine::op::ReplanOptions replan;
  replan.enabled = true;
  med->set_replan_options(replan);

  Result<QueryResult> res = med->Query(kFlattenedQuery, DirectQuery());
  ASSERT_TRUE(res.ok()) << res.status();
  ASSERT_FALSE(res->replan_events.empty());

  std::vector<DebugBundle> bundles = med->diagnostics()->bundles();
  ASSERT_EQ(bundles.size(), 1u);
  const DebugBundle& bundle = bundles[0];
  EXPECT_EQ(bundle.reason, "replan");
  EXPECT_NE(bundle.replan_text.find("trigger=breaker_open"),
            std::string::npos);
  EXPECT_NE(bundle.replan_text.find("cim_relation:equal"), std::string::npos);
  EXPECT_NE(bundle.explain_text.find("replanned@"), std::string::npos);
  // Persisted alongside the other components, and listed in the manifest.
  EXPECT_TRUE(
      std::filesystem::exists(std::filesystem::path(bundle.dir) /
                              "replan.txt"));
  EXPECT_NE(bundle.ManifestJson().find("\"replan\":\"replan.txt\""),
            std::string::npos);
}

// ---- Golden: the replanned EXPLAIN rendering ------------------------------

std::string GoldenPath(const std::string& name) {
  return std::string(HERMES_TEST_SRCDIR) + "/golden/" + name;
}

void CompareGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (std::getenv("HERMES_UPDATE_GOLDENS") != nullptr) {
    ASSERT_TRUE(WriteStringToFile(path, actual).ok());
    GTEST_SKIP() << "golden updated: " << path;
  }
  Result<std::string> expected = ReadFileToString(path);
  ASSERT_TRUE(expected.ok()) << "missing golden " << path
                             << " (run with HERMES_UPDATE_GOLDENS=1)";
  EXPECT_EQ(*expected, actual) << "EXPLAIN drifted from " << path
                               << "; regenerate with HERMES_UPDATE_GOLDENS=1 "
                                  "if the change is intentional";
}

TEST(ReplanGolden, BreakerRedirectExplain) {
  std::unique_ptr<Mediator> med = RopeMediator();
  WarmCimThenKillRelationSite(med.get());
  engine::op::ReplanOptions replan;
  replan.enabled = true;
  med->set_replan_options(replan);

  QueryOptions options = DirectQuery();
  options.query_id = 42;  // pin the id so the explain header is stable
  Result<QueryResult> res = med->Query(kFlattenedQuery, options);
  ASSERT_TRUE(res.ok()) << res.status();
  ASSERT_FALSE(res->replan_events.empty());
  CompareGolden("explain_replanned_breaker.txt", res->explain_text);
}

}  // namespace
}  // namespace hermes
