// Tests for the predicate first-answer statistics extension — the paper's
// Section 8 remedy: "cache, especially the time for the first answer of
// predicates in the same way we cache statistics for domain calls."

#include <gtest/gtest.h>

#include <cmath>

#include "engine/executor.h"
#include "engine/mediator.h"
#include "lang/parser.h"
#include "optimizer/estimator.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

/// A workload with heavy backtracking: objects from a frame range joined
/// against the *name* column of the cast relation. Role strings never
/// equal actor names, so every outer tuple fails downstream and the first
/// (non-)answer takes as long as the whole evaluation — the case where
/// the compositional Tf formula under-predicts massively.
constexpr const char* kBacktrackRule =
    "mismatched(F, L, Y) :- "
    "in(X, video:frames_to_objects('rope', F, L)) & "
    "in(T, relation:equal('cast', 'name', X)) & =(Y, T.role).";

struct Fixture {
  Mediator med;

  Fixture() {
    testbed::RopeScenarioOptions options;
    options.enable_caching = false;
    EXPECT_TRUE(testbed::SetupRopeScenario(&med, options).ok());
    EXPECT_TRUE(med.LoadProgram(kBacktrackRule).ok());
  }
};

TEST(PredicateStatsTest, ExecutorRecordsIdbStatistics) {
  Fixture fx;
  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;
  ASSERT_TRUE(fx.med.Query("?- mismatched(4, 47, Y).", direct).ok());

  const std::vector<dcsm::CostRecord>* group = fx.med.dcsm().database().GetGroup(
      dcsm::CallGroupKey{"idb", "mismatched", 3});
  ASSERT_NE(group, nullptr);
  ASSERT_EQ(group->size(), 1u);
  const dcsm::CostRecord& record = (*group)[0];
  // Zero answers: Tf collapses to Ta (the full fruitless search).
  EXPECT_DOUBLE_EQ(record.cost.cardinality, 0.0);
  EXPECT_DOUBLE_EQ(record.cost.t_first_ms, record.cost.t_all_ms);
  EXPECT_GT(record.cost.t_all_ms, 1000.0);
  // Bound args recorded as values, the free output as null.
  EXPECT_EQ(record.call.args[0], Value::Int(4));
  EXPECT_TRUE(record.call.args[2].is_null());
}

TEST(PredicateStatsTest, RecordingCanBeDisabled) {
  Fixture fx;
  fx.med.executor_options().record_predicate_statistics = false;
  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;
  ASSERT_TRUE(fx.med.Query("?- mismatched(4, 47, Y).", direct).ok());
  EXPECT_EQ(fx.med.dcsm().database().GetGroup(
                dcsm::CallGroupKey{"idb", "mismatched", 3}),
            nullptr);
}

TEST(PredicateStatsTest, ObservedTfFixesBacktrackingUnderPrediction) {
  Fixture fx;
  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;

  // Observe the workload twice (warms both domain and predicate stats).
  Result<QueryResult> run1 = fx.med.Query("?- mismatched(4, 47, Y).", direct);
  ASSERT_TRUE(run1.ok());
  Result<QueryResult> run2 = fx.med.Query("?- mismatched(4, 47, Y).", direct);
  ASSERT_TRUE(run2.ok());
  double actual_tf = run2->execution.t_first_ms;

  Result<lang::Query> query =
      lang::Parser::ParseQuery("?- mismatched(4, 47, Y).");
  ASSERT_TRUE(query.ok());

  // Formula-only estimate: Tf = sum of per-subgoal first-answer times —
  // blind to the backtracking, so it under-predicts badly.
  optimizer::RuleCostEstimator formula_only(&fx.med.dcsm());
  Result<optimizer::RuleCostEstimator::Estimate> blind =
      formula_only.EstimateBody(fx.med.program(), query->goals,
                                optimizer::BindingEnv());
  ASSERT_TRUE(blind.ok()) << blind.status();
  EXPECT_LT(blind->cost.t_first_ms, actual_tf / 2.0);

  // With predicate-Tf caching the estimate tracks the observation.
  optimizer::EstimatorParams params;
  params.use_predicate_first_answer_stats = true;
  optimizer::RuleCostEstimator informed(&fx.med.dcsm(), params);
  Result<optimizer::RuleCostEstimator::Estimate> learned =
      informed.EstimateBody(fx.med.program(), query->goals,
                            optimizer::BindingEnv());
  ASSERT_TRUE(learned.ok()) << learned.status();
  double learned_error =
      std::fabs(learned->cost.t_first_ms - actual_tf) / actual_tf;
  double blind_error =
      std::fabs(blind->cost.t_first_ms - actual_tf) / actual_tf;
  EXPECT_LT(learned_error, 0.3);
  EXPECT_LT(learned_error, blind_error / 2.0);
}

TEST(PredicateStatsTest, TaAndCardinalityKeepCompositionalFormula) {
  Fixture fx;
  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;
  ASSERT_TRUE(fx.med.Query("?- mismatched(4, 47, Y).", direct).ok());

  Result<lang::Query> query =
      lang::Parser::ParseQuery("?- mismatched(4, 47, Y).");
  optimizer::EstimatorParams params;
  params.use_predicate_first_answer_stats = true;
  optimizer::RuleCostEstimator informed(&fx.med.dcsm(), params);
  optimizer::RuleCostEstimator plain(&fx.med.dcsm());
  auto a = informed.EstimateBody(fx.med.program(), query->goals,
                                 optimizer::BindingEnv());
  auto b = plain.EstimateBody(fx.med.program(), query->goals,
                              optimizer::BindingEnv());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->cost.t_all_ms, b->cost.t_all_ms);
  EXPECT_DOUBLE_EQ(a->cost.cardinality, b->cost.cardinality);
}

TEST(PredicateStatsTest, RelaxesToAnyInvocationWhenArgsUnseen) {
  Fixture fx;
  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;
  ASSERT_TRUE(fx.med.Query("?- mismatched(4, 47, Y).", direct).ok());

  // Different frame range, never executed: the fully-relaxed predicate
  // statistics still inform the estimate.
  Result<lang::Query> query =
      lang::Parser::ParseQuery("?- mismatched(40, 900, Y).");
  optimizer::EstimatorParams params;
  params.use_predicate_first_answer_stats = true;
  optimizer::RuleCostEstimator informed(&fx.med.dcsm(), params);
  auto est = informed.EstimateBody(fx.med.program(), query->goals,
                                   optimizer::BindingEnv());
  ASSERT_TRUE(est.ok()) << est.status();
  EXPECT_GT(est->cost.t_first_ms, 1000.0);  // inherited observed Tf
}

}  // namespace
}  // namespace hermes
