#include "engine/mediator.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

testbed::RopeScenarioOptions FastSites() {
  testbed::RopeScenarioOptions options;
  options.sites.video_site = net::LocalSite();
  options.sites.relation_site = net::LocalSite();
  return options;
}

TEST(MediatorTest, SetupAndSimpleQuery) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, FastSites()).ok());
  Result<QueryResult> res =
      med.Query(testbed::AppendixQuery(1, false, 4, 47), QueryOptions{});
  ASSERT_TRUE(res.ok()) << res.status();
  // query1: one Size × the objects in [4,47].
  EXPECT_EQ(res->execution.answers.size(), 7u);
  EXPECT_GT(res->execution.t_all_ms, 0.0);
}

TEST(MediatorTest, PrimedAndUnprimedQueriesAgreeOnAnswers) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, FastSites()).ok());
  QueryOptions raw;
  raw.use_optimizer = false;
  raw.use_cim = false;
  Result<QueryResult> q1 =
      med.Query(testbed::AppendixQuery(1, false, 4, 47), raw);
  Result<QueryResult> q1p =
      med.Query(testbed::AppendixQuery(1, true, 4, 47), raw);
  ASSERT_TRUE(q1.ok() && q1p.ok());
  EXPECT_EQ(q1->execution.answers.size(), q1p->execution.answers.size());
}

TEST(MediatorTest, Query3AndQuery4AreEquivalentRewritings) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, FastSites()).ok());
  QueryOptions raw;
  raw.use_optimizer = false;
  raw.use_cim = false;
  Result<QueryResult> q3 =
      med.Query(testbed::AppendixQuery(3, false, 4, 47), raw);
  Result<QueryResult> q4 =
      med.Query(testbed::AppendixQuery(4, false, 4, 47), raw);
  ASSERT_TRUE(q3.ok()) << q3.status();
  ASSERT_TRUE(q4.ok()) << q4.status();
  EXPECT_EQ(q3->execution.answers.size(), 5u);
  EXPECT_EQ(q4->execution.answers.size(), q3->execution.answers.size());
}

TEST(MediatorTest, CachingAcceleratesRepeatQueries) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(
                  &med, testbed::RopeScenarioOptions{})
                  .ok());
  QueryOptions cim_only;
  cim_only.use_optimizer = false;
  cim_only.use_cim = true;
  Result<QueryResult> cold =
      med.Query(testbed::AppendixQuery(3, false, 4, 47), cim_only);
  Result<QueryResult> warm =
      med.Query(testbed::AppendixQuery(3, false, 4, 47), cim_only);
  ASSERT_TRUE(cold.ok() && warm.ok());
  EXPECT_EQ(cold->execution.answers.size(), warm->execution.answers.size());
  EXPECT_LT(warm->execution.t_all_ms, cold->execution.t_all_ms / 50.0);
  EXPECT_GT(med.cim("video")->stats().exact_hits, 0u);
}

TEST(MediatorTest, InvariantServesWiderRangePartially) {
  Mediator med;
  ASSERT_TRUE(
      testbed::SetupRopeScenario(&med, testbed::RopeScenarioOptions{}).ok());
  QueryOptions cim_only;
  cim_only.use_optimizer = false;
  cim_only.use_cim = true;
  // Warm with the narrow range, then query the wider one.
  ASSERT_TRUE(med.Query(testbed::AppendixQuery(1, true, 4, 47), cim_only).ok());
  Result<QueryResult> wide =
      med.Query(testbed::AppendixQuery(1, true, 4, 127), cim_only);
  ASSERT_TRUE(wide.ok()) << wide.status();
  EXPECT_GT(med.cim("video")->stats().partial_hits, 0u);
  // Answers must include mrs_wilson (in [40,127] only).
  bool found = false;
  for (const ValueList& row : wide->execution.answers) {
    for (const Value& v : row) {
      if (v == Value::Str("mrs_wilson")) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MediatorTest, OptimizerLearnsToPreferCim) {
  Mediator med;
  ASSERT_TRUE(
      testbed::SetupRopeScenario(&med, testbed::RopeScenarioOptions{}).ok());
  QueryOptions opts;  // optimizer on, cim allowed
  // Round 1 executes (cold statistics), rounds 2-3 learn.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(med.Query(testbed::AppendixQuery(3, false, 4, 47), opts).ok());
  }
  Result<QueryResult> res =
      med.Query(testbed::AppendixQuery(3, false, 4, 47), opts);
  ASSERT_TRUE(res.ok());
  // By now the CIM path has recorded cheap statistics and must be chosen.
  EXPECT_NE(res->plan_description.find("cim"), std::string::npos);
  EXPECT_LT(res->execution.t_all_ms, 100.0);
}

TEST(MediatorTest, InteractiveModeReturnsFirstBatch) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, FastSites()).ok());
  QueryOptions opts;
  opts.mode = engine::ExecutionMode::kInteractive;
  opts.interactive_batch = 2;
  opts.use_optimizer = false;
  opts.use_cim = false;
  Result<QueryResult> res =
      med.Query(testbed::AppendixQuery(3, false, 4, 47), opts);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->execution.answers.size(), 2u);
  EXPECT_FALSE(res->execution.complete);
}

TEST(MediatorTest, PlanReturnsRankedCandidates) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, FastSites()).ok());
  Result<optimizer::OptimizerResult> plan =
      med.Plan(testbed::AppendixQuery(3, false, 4, 47), QueryOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_GE(plan->candidates.size(), 2u);  // direct and cim variants at least
  EXPECT_TRUE(plan->best.estimatable);
}

TEST(MediatorTest, NativeCostModelIsUsedWhenEnabled) {
  Mediator med;
  testbed::RopeScenarioOptions options = FastSites();
  options.relational_native_cost_model = true;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, options).ok());
  Result<lang::DomainCallSpec> pattern = lang::Parser::ParseCallPattern(
      "relation:equal('cast', 'role', $b)");
  ASSERT_TRUE(pattern.ok());
  Result<dcsm::CostEstimate> est = med.dcsm().Cost(*pattern);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->source, "native:relation");
}

TEST(MediatorTest, InvariantForUncachedDomainRejected) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, FastSites()).ok());
  EXPECT_FALSE(med.AddInvariants("=> ghost:f(X) = ghost:g(X).").ok());
}

TEST(MediatorTest, ParseErrorsSurfaceFromQuery) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, FastSites()).ok());
  EXPECT_TRUE(med.Query("?- broken(", QueryOptions{}).status().IsParseError());
  EXPECT_TRUE(med.LoadProgram("junk :-").IsParseError());
}

TEST(MediatorTest, StatisticsAccumulateAcrossQueries) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, FastSites()).ok());
  QueryOptions raw;
  raw.use_optimizer = false;
  raw.use_cim = false;
  (void)med.Query(testbed::AppendixQuery(3, false, 4, 47), raw);
  size_t after_one = med.dcsm().database().TotalRecords();
  EXPECT_GT(after_one, 0u);
  (void)med.Query(testbed::AppendixQuery(3, false, 4, 127), raw);
  EXPECT_GT(med.dcsm().database().TotalRecords(), after_one);
}

TEST(MediatorTest, RecordStatisticsCanBeDisabled) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, FastSites()).ok());
  QueryOptions opts;
  opts.use_optimizer = false;
  opts.use_cim = false;
  opts.record_statistics = false;
  (void)med.Query(testbed::AppendixQuery(3, false, 4, 47), opts);
  EXPECT_EQ(med.dcsm().database().TotalRecords(), 0u);
}

TEST(MediatorTest, NetworkStatsTrackTraffic) {
  Mediator med;
  ASSERT_TRUE(
      testbed::SetupRopeScenario(&med, testbed::RopeScenarioOptions{}).ok());
  QueryOptions raw;
  raw.use_optimizer = false;
  raw.use_cim = false;
  (void)med.Query(testbed::AppendixQuery(1, true, 4, 47), raw);
  EXPECT_GT(med.network().stats().calls, 0u);
  EXPECT_GT(med.network().stats().bytes_transferred, 0u);
}

TEST(MediatorTest, SectionTwoRouteToSuppliesScenario) {
  // The paper's Section 2 example: find a supply location and plan a route
  // to it, mediating between a relational inventory and a path planner.
  Mediator med;
  auto inventory = testbed::MakeInventoryDatabase();
  ASSERT_TRUE(med.RegisterDomain(
                     "ingres", std::make_shared<relational::RelationalDomain>(
                                   "ingres", inventory))
                  .ok());
  ASSERT_TRUE(med.RegisterDomain("terraindb", testbed::MakeSupplyTerrain())
                  .ok());
  ASSERT_TRUE(med.LoadProgram(R"(
    routetosupplies(From, Sup, To, R) :-
        in(Tuple, ingres:equal('inventory', item, Sup)) &
        =(Tuple.loc, To) &
        in(R, terraindb:findrte(From, To)).
  )")
                  .ok());
  Result<QueryResult> res = med.Query(
      "?- routetosupplies('place1', 'h-22 fuel', To, R).", QueryOptions{});
  ASSERT_TRUE(res.ok()) << res.status();
  // Two depots stock h-22 fuel and both are reachable.
  EXPECT_EQ(res->execution.answers.size(), 2u);
  for (const ValueList& row : res->execution.answers) {
    // Columns: From(const) appears? var_names = [From?...] — query args
    // are constants, so vars are To and R.
    EXPECT_TRUE(row.back().is_struct());  // the route struct
  }
}

}  // namespace
}  // namespace hermes
