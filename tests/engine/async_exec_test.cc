// Async scatter-gather execution: runs of independent domain calls (no
// shared bound variables) compile into a ScatterGatherOp whose members are
// issued concurrently on the simulated clock, so the group's latency is the
// max over branches instead of the sum. These tests pin the grouping rule,
// the answer-set equivalence with the sequential tree, the max-not-sum
// timing, and the EXPLAIN markers.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/mediator.h"

namespace hermes {
namespace {

/// Echo domain with fixed inner latency: id(x) → {x} in first=3/all=7 ms.
class EchoDomain : public Domain {
 public:
  explicit EchoDomain(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return {{"id", 1, "id(x): {x}"}};
  }
  Result<CallOutput> Run(const DomainCall& call) override {
    if (call.function != "id" || call.args.size() != 1) {
      return Status::NotFound("no function " + call.function);
    }
    CallOutput out;
    out.answers = {call.args[0]};
    out.first_ms = 3.0;
    out.all_ms = 7.0;
    return out;
  }

 private:
  std::string name_;
};

/// A jitter-free site: every transfer plan is a pure function of the
/// parameters, so simulated latencies compare exactly across plan shapes.
net::SiteParams FlatSite(std::string name, double rtt_ms) {
  net::SiteParams site = net::UsaSite(std::move(name));
  site.jitter = 0.0;
  site.rtt_ms = rtt_ms;
  return site;
}

/// Three echo sources on independent links with well-separated latencies.
void SetupFanout(Mediator* med) {
  ASSERT_TRUE(med->RegisterRemoteDomain("d1", std::make_shared<EchoDomain>("d1"),
                                        FlatSite("s1", 400.0))
                  .ok());
  ASSERT_TRUE(med->RegisterRemoteDomain("d2", std::make_shared<EchoDomain>("d2"),
                                        FlatSite("s2", 800.0))
                  .ok());
  ASSERT_TRUE(med->RegisterRemoteDomain("d3", std::make_shared<EchoDomain>("d3"),
                                        FlatSite("s3", 1200.0))
                  .ok());
}

const char* kFanoutQuery = "?- in(A, d1:id(1)) & in(B, d2:id(2)) & in(C, d3:id(3)).";

QueryOptions AsWritten(bool async) {
  QueryOptions q;
  q.use_optimizer = false;
  q.record_statistics = false;
  q.async_scatter_gather = async;
  return q;
}

TEST(AsyncExecTest, IndependentCallsCostMaxNotSum) {
  Mediator med;
  SetupFanout(&med);

  // Per-branch latency baselines: each call alone.
  double branch_ta[3];
  const char* singles[] = {"?- in(A, d1:id(1)).", "?- in(B, d2:id(2)).",
                           "?- in(C, d3:id(3))."};
  for (int i = 0; i < 3; ++i) {
    Result<QueryResult> res = med.Query(singles[i], AsWritten(false));
    ASSERT_TRUE(res.ok()) << res.status();
    branch_ta[i] = res->execution.t_all_ms;
  }
  const double max_branch = std::max({branch_ta[0], branch_ta[1], branch_ta[2]});
  const double sum_branch = branch_ta[0] + branch_ta[1] + branch_ta[2];

  Result<QueryResult> sync = med.Query(kFanoutQuery, AsWritten(false));
  ASSERT_TRUE(sync.ok()) << sync.status();
  Result<QueryResult> async = med.Query(kFanoutQuery, AsWritten(true));
  ASSERT_TRUE(async.ok()) << async.status();

  // Sequential chain: the three waits add up. Scatter-gather: all three
  // calls are in flight from t=0, so the group costs the slowest branch.
  EXPECT_NEAR(async->execution.t_all_ms, max_branch, 1e-6);
  EXPECT_GT(sync->execution.t_all_ms, 0.9 * sum_branch);
  EXPECT_LT(async->execution.t_all_ms, 0.5 * sync->execution.t_all_ms);

  // Both plans ship the same three calls; only the overlap differs.
  EXPECT_EQ(sync->traffic.remote_calls, 3u);
  EXPECT_EQ(async->traffic.remote_calls, 3u);

  // QueryResult mirrors the paper's Tf/Ta measures.
  EXPECT_DOUBLE_EQ(async->tf_sim_ms, async->execution.t_first_ms);
  EXPECT_DOUBLE_EQ(async->ta_sim_ms, async->execution.t_all_ms);
}

TEST(AsyncExecTest, AsyncAndSyncPlansProduceIdenticalAnswers) {
  Mediator med;
  SetupFanout(&med);
  Result<QueryResult> sync = med.Query(kFanoutQuery, AsWritten(false));
  ASSERT_TRUE(sync.ok()) << sync.status();
  Result<QueryResult> async = med.Query(kFanoutQuery, AsWritten(true));
  ASSERT_TRUE(async.ok()) << async.status();

  ASSERT_EQ(sync->execution.answers.size(), async->execution.answers.size());
  EXPECT_EQ(sync->execution.var_names, async->execution.var_names);
  for (size_t i = 0; i < sync->execution.answers.size(); ++i) {
    ASSERT_EQ(sync->execution.answers[i].size(),
              async->execution.answers[i].size());
    for (size_t j = 0; j < sync->execution.answers[i].size(); ++j) {
      EXPECT_EQ(sync->execution.answers[i][j], async->execution.answers[i][j])
          << "answer " << i << " column " << j;
    }
  }
}

TEST(AsyncExecTest, DependentCallsStaySequential) {
  Mediator med;
  SetupFanout(&med);
  // d2's argument is d1's output: not independent, so no group forms and
  // the async option changes nothing.
  const char* dependent = "?- in(A, d1:id(1)) & in(B, d2:id(A)).";
  Result<QueryResult> sync = med.Query(dependent, AsWritten(false));
  ASSERT_TRUE(sync.ok()) << sync.status();
  Result<QueryResult> async = med.Query(dependent, AsWritten(true));
  ASSERT_TRUE(async.ok()) << async.status();
  EXPECT_DOUBLE_EQ(sync->execution.t_all_ms, async->execution.t_all_ms);
  EXPECT_EQ(sync->execution.answers.size(), async->execution.answers.size());

  Result<std::string> plan = med.Explain(dependent, AsWritten(true));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->find("ScatterGather"), std::string::npos) << *plan;
  EXPECT_EQ(plan->find("async"), std::string::npos) << *plan;
}

TEST(AsyncExecTest, ExplainMarksGroupedCallsAsync) {
  Mediator med;
  SetupFanout(&med);

  Result<std::string> sync_plan = med.Explain(kFanoutQuery, AsWritten(false));
  ASSERT_TRUE(sync_plan.ok()) << sync_plan.status();
  EXPECT_EQ(sync_plan->find("ScatterGather"), std::string::npos) << *sync_plan;
  EXPECT_EQ(sync_plan->find("async"), std::string::npos) << *sync_plan;

  Result<std::string> async_plan = med.Explain(kFanoutQuery, AsWritten(true));
  ASSERT_TRUE(async_plan.ok()) << async_plan.status();
  EXPECT_NE(async_plan->find("ScatterGather"), std::string::npos) << *async_plan;
  EXPECT_NE(async_plan->find("fanout=3"), std::string::npos) << *async_plan;
  EXPECT_NE(async_plan->find("async"), std::string::npos) << *async_plan;

  // The executed tree renders the same markers with actuals.
  QueryOptions options = AsWritten(true);
  options.explain = true;
  Result<QueryResult> res = med.Query(kFanoutQuery, options);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_NE(res->explain_text.find("ScatterGather"), std::string::npos)
      << res->explain_text;
  EXPECT_NE(res->explain_text.find("async"), std::string::npos)
      << res->explain_text;
}

TEST(AsyncExecTest, MediatorDefaultEnablesAsyncForEveryQuery) {
  Mediator med;
  SetupFanout(&med);
  med.set_async_execution(true);
  // QueryOptions left at its default (async_scatter_gather=false): the
  // wiring-time default applies.
  QueryOptions q;
  q.use_optimizer = false;
  q.record_statistics = false;
  Result<std::string> plan = med.Explain(kFanoutQuery, q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("ScatterGather"), std::string::npos) << *plan;
}

TEST(AsyncExecTest, GroupInsideRuleBodyReissuesPerOuterRow) {
  Mediator med;
  SetupFanout(&med);
  // The group sits in a rule body under an outer enumeration: it must
  // re-ground and re-issue per outer row, producing the same cross product
  // as the sequential tree.
  ASSERT_TRUE(
      med.LoadProgram("pair(X, B, C) :- in(B, d2:id(X)) & in(C, d3:id(X)).")
          .ok());
  const char* query = "?- in(A, d1:id(5)) & pair(A, B, C).";
  Result<QueryResult> sync = med.Query(query, AsWritten(false));
  ASSERT_TRUE(sync.ok()) << sync.status();
  Result<QueryResult> async = med.Query(query, AsWritten(true));
  ASSERT_TRUE(async.ok()) << async.status();
  ASSERT_EQ(sync->execution.answers.size(), async->execution.answers.size());
  EXPECT_GT(async->execution.answers.size(), 0u);
  EXPECT_LT(async->execution.t_all_ms, sync->execution.t_all_ms);
}

}  // namespace
}  // namespace hermes
