// End-to-end coverage of the degradation ladder: a query whose sources die
// terminates with structured completeness — never hangs, crashes, or
// silently pretends to be complete.

#include <gtest/gtest.h>

#include <string>

#include "engine/mediator.h"
#include "net/faults/fault_plan.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

/// Value of the first exposition sample whose line starts with `prefix`
/// (family name, optionally with a label block), or -1 when absent.
double MetricValue(const std::string& prom, const std::string& prefix) {
  size_t pos = 0;
  while (pos < prom.size()) {
    size_t eol = prom.find('\n', pos);
    if (eol == std::string::npos) eol = prom.size();
    std::string line = prom.substr(pos, eol - pos);
    if (line.rfind(prefix, 0) == 0) {
      size_t space = line.rfind(' ');
      if (space != std::string::npos) {
        return std::stod(line.substr(space + 1));
      }
    }
    pos = eol + 1;
  }
  return -1.0;
}

net::FaultPlan MustParse(const std::string& text) {
  Result<net::FaultPlan> plan = net::FaultPlan::Parse(text);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return std::move(plan).value();
}

QueryOptions RawQuery() {
  QueryOptions options;
  options.use_optimizer = false;
  options.use_cim = false;
  return options;
}

testbed::RopeScenarioOptions DeadVideoSite() {
  testbed::RopeScenarioOptions options;
  options.sites.video_site.availability = 0.0;
  options.enable_caching = false;
  return options;
}

// ---- Satellite: the pre-existing unavailability path -----------------------

TEST(DegradationTest, QueryOverDownSiteTerminatesWithUnavailable) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, DeadVideoSite()).ok());
  Result<QueryResult> res =
      med.Query(testbed::AppendixQuery(3, false, 4, 47), RawQuery());
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsUnavailable()) << res.status();
  EXPECT_NE(res.status().message().find("umd"), std::string::npos)
      << res.status();
}

TEST(DegradationTest, FailedQueriesStillFoldMetricsIntoTheRegistry) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, DeadVideoSite()).ok());
  ASSERT_FALSE(
      med.Query(testbed::AppendixQuery(3, false, 4, 47), RawQuery()).ok());
  // The failed query's per-layer counters reached the process registry via
  // the CallMetrics X-macro fold, so the folded remote_failures matches the
  // network simulator's own global failure count.
  net::NetworkStats net = med.network().stats();
  EXPECT_GT(net.failures, 0u);
  std::string prom = med.metrics().ExposePrometheus();
  EXPECT_EQ(MetricValue(prom, "hermes_query_remote_failures_total "),
            static_cast<double>(net.failures));
  EXPECT_EQ(MetricValue(prom, "hermes_query_failures_total "), 1.0);
}

// ---- Partial results: losing a source is reported, not fatal ---------------

TEST(DegradationTest, PartialResultsNameTheLostSource) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, DeadVideoSite()).ok());
  QueryOptions options = RawQuery();
  options.partial_results = true;
  Result<QueryResult> res =
      med.Query(testbed::AppendixQuery(3, false, 4, 47), options);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->completeness, QueryCompleteness::kPartial);
  EXPECT_FALSE(res->execution.complete);
  EXPECT_TRUE(res->execution.answers.empty());  // the join lost its input
  ASSERT_FALSE(res->lost_sources.empty());
  EXPECT_EQ(res->lost_sources[0].site, "umd");
  EXPECT_EQ(res->lost_sources[0].domain, "video");
  EXPECT_FALSE(res->lost_sources[0].masked);
}

TEST(DegradationTest, QueryDeadlineYieldsPartialAnswersAtTheDeadline) {
  Mediator med;  // default (slow) transatlantic sites
  ASSERT_TRUE(
      testbed::SetupRopeScenario(&med, testbed::RopeScenarioOptions{}).ok());
  QueryOptions options = RawQuery();
  options.deadline_ms = 1000.0;  // the cold query needs ~8.5 simulated s
  Result<QueryResult> strict = med.Query(
      testbed::AppendixQuery(3, false, 4, 47), options);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsDeadlineExceeded()) << strict.status();

  options.partial_results = true;
  Result<QueryResult> partial = med.Query(
      testbed::AppendixQuery(3, false, 4, 47), options);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_EQ(partial->completeness, QueryCompleteness::kPartial);
  EXPECT_FALSE(partial->execution.complete);
  EXPECT_GT(partial->metrics.deadline_aborts, 0u);
  // The clock stops at the deadline: answers in flight are cut off there.
  EXPECT_DOUBLE_EQ(partial->execution.t_all_ms, 1000.0);
}

// ---- Degraded: the CIM masks an outage with cached material ----------------

TEST(DegradationTest, StaleCacheMasksAnOutageAsDegraded) {
  testbed::RopeScenarioOptions scenario;  // caching + frame invariants on
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, scenario).ok());
  QueryOptions options;
  options.use_optimizer = false;
  options.use_cim = true;
  // Warm the CIM with a narrower frame range than we will ask for.
  Result<QueryResult> warm =
      med.Query(testbed::AppendixQuery(3, false, 4, 40), options);
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_EQ(warm->completeness, QueryCompleteness::kComplete);

  // Now the video site goes dark. The wider query gets a subset-invariant
  // (partial) hit; completing it needs the source, which fails — the CIM
  // serves the partial answers marked degraded instead.
  ASSERT_TRUE(med.SetFaultPlan(MustParse("outage site=umd\n")).ok());
  options.partial_results = true;
  Result<QueryResult> masked =
      med.Query(testbed::AppendixQuery(3, false, 4, 47), options);
  ASSERT_TRUE(masked.ok()) << masked.status();
  EXPECT_EQ(masked->completeness, QueryCompleteness::kDegraded);
  EXPECT_FALSE(masked->execution.answers.empty());  // cached material served
  EXPECT_GT(masked->metrics.degraded_calls, 0u);
  ASSERT_FALSE(masked->lost_sources.empty());
  EXPECT_EQ(masked->lost_sources[0].site, "umd");
  EXPECT_TRUE(masked->lost_sources[0].masked);

  // Lifting the fault plan restores complete service.
  ASSERT_TRUE(med.SetFaultPlan(net::FaultPlan{}).ok());
  Result<QueryResult> healed =
      med.Query(testbed::AppendixQuery(3, false, 4, 47), options);
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(healed->completeness, QueryCompleteness::kComplete);
}

// ---- Retries: backoff rides out an outage window ---------------------------

TEST(DegradationTest, RetriesRideOutAnOutageWindowDeterministically) {
  auto run = [](uint64_t /*tag*/) {
    Mediator med;
    testbed::RopeScenarioOptions scenario;
    scenario.enable_caching = false;
    EXPECT_TRUE(testbed::SetupRopeScenario(&med, scenario).ok());
    resilience::ResiliencePolicy policy;
    policy.retry.max_retries = 3;
    EXPECT_TRUE(med.SetResiliencePolicy("video", policy).ok());
    EXPECT_TRUE(med.SetResiliencePolicy("relation", policy).ok());
    EXPECT_TRUE(
        med.SetFaultPlan(net::FaultPlan::Parse("outage site=umd until=3000\n")
                             .value())
            .ok());
    return med.Query(testbed::AppendixQuery(3, false, 4, 47), RawQuery());
  };
  Result<QueryResult> first = run(1);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->completeness, QueryCompleteness::kComplete);
  EXPECT_EQ(first->execution.answers.size(), 5u);
  EXPECT_GT(first->metrics.retries, 0u);
  EXPECT_GT(first->metrics.retry_backoff_ms, 0.0);

  // Same seeds, fresh mediator: the whole retry/backoff schedule replays
  // bit-identically.
  Result<QueryResult> second = run(2);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->metrics.retries, first->metrics.retries);
  EXPECT_DOUBLE_EQ(second->metrics.retry_backoff_ms,
                   first->metrics.retry_backoff_ms);
  EXPECT_DOUBLE_EQ(second->execution.t_all_ms, first->execution.t_all_ms);
}

// ---- Breaker: sustained failure sheds load ---------------------------------

TEST(DegradationTest, BreakerShedsLoadOffAStrugglingSite) {
  Mediator med;
  testbed::RopeScenarioOptions scenario;
  scenario.sites.relation_site.availability = 0.0;  // cornell is down
  scenario.enable_caching = false;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, scenario).ok());
  resilience::ResiliencePolicy policy;
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 2;
  policy.breaker.probe_interval = 100;  // no probe within this query
  ASSERT_TRUE(med.SetResiliencePolicy("relation", policy).ok());

  // query3 raw: one video call feeding 7 per-object relation calls, all of
  // which hit the dead site. The breaker trips after 2 and sheds the rest.
  QueryOptions options = RawQuery();
  options.partial_results = true;
  Result<QueryResult> res =
      med.Query(testbed::AppendixQuery(3, false, 4, 47), options);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->completeness, QueryCompleteness::kPartial);
  EXPECT_EQ(res->metrics.breaker_shed, 5u);
  // Only the 2 tripping attempts reached the network (plus the video call).
  EXPECT_EQ(res->metrics.remote_calls, 3u);
  EXPECT_EQ(res->metrics.remote_failures, 2u);
  bool named = false;
  for (const SourceError& lost : res->lost_sources) {
    named = named || (lost.site == "cornell" && lost.domain == "relation");
  }
  EXPECT_TRUE(named);

  // The shedding is visible on the process-level resilience series.
  std::string prom = med.metrics().ExposePrometheus();
  EXPECT_EQ(MetricValue(prom,
                        "hermes_resilience_breaker_shed_total"
                        "{site=\"cornell\",domain=\"relation\"} "),
            5.0);
  EXPECT_EQ(
      MetricValue(prom,
                  "hermes_resilience_breaker_transitions_total"
                  "{site=\"cornell\",domain=\"relation\",to=\"open\"} "),
      1.0);
}

// ---- Failover: an alternate source answers for a dead primary --------------

/// Minimal remote source for the failover test: vals(k) → {tag}.
class TaggedDomain : public Domain {
 public:
  TaggedDomain(std::string name, std::string tag)
      : name_(std::move(name)), tag_(std::move(tag)) {}
  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return {{"vals", 1, "vals(k): {tag}"}};
  }
  Result<CallOutput> Run(const DomainCall& call) override {
    if (call.function != "vals") {
      return Status::NotFound("no function " + call.function);
    }
    CallOutput out;
    out.answers = {Value::Str(tag_)};
    out.first_ms = out.all_ms = 1.0;
    return out;
  }

 private:
  std::string name_;
  std::string tag_;
};

TEST(DegradationTest, FailoverReroutesToTheAlternateSite) {
  Mediator med;
  net::SiteParams dead = net::UsaSite("deadsite");
  dead.availability = 0.0;
  ASSERT_TRUE(med.RegisterRemoteDomain(
                     "prim", std::make_shared<TaggedDomain>("prim", "primary"),
                     dead)
                  .ok());
  ASSERT_TRUE(med.RegisterRemoteDomain(
                     "alt", std::make_shared<TaggedDomain>("alt", "alternate"),
                     net::UsaSite("mirror"))
                  .ok());
  ASSERT_TRUE(med.AddFailover("prim", "alt").ok());
  // An alternate missing the primary's functions is rejected at wiring.
  ASSERT_TRUE(med.RegisterRemoteDomain(
                     "other",
                     std::make_shared<TaggedDomain>("other", "other"),
                     net::UsaSite("elsewhere"))
                  .ok());
  EXPECT_FALSE(med.AddFailover("relation_free_name", "alt").ok());
  ASSERT_TRUE(med.LoadProgram("q(X) :- in(X, prim:vals(1)).").ok());

  Result<QueryResult> res = med.Query("?- q(X).", RawQuery());
  ASSERT_TRUE(res.ok()) << res.status();
  ASSERT_EQ(res->execution.answers.size(), 1u);
  ASSERT_EQ(res->execution.answers[0].size(), 1u);
  EXPECT_EQ(res->execution.answers[0][0], Value::Str("alternate"));
  // The failover made the query whole: nothing lost, nothing degraded.
  EXPECT_EQ(res->completeness, QueryCompleteness::kComplete);
  EXPECT_EQ(res->metrics.failovers, 1u);
  EXPECT_EQ(MetricValue(med.metrics().ExposePrometheus(),
                        "hermes_resilience_failovers_total"
                        "{site=\"deadsite\",domain=\"prim\"} "),
            1.0);
}

}  // namespace
}  // namespace hermes
