// The diagnostics layer end to end: anomaly capture produces complete
// debug bundles, the slow-query log carries per-operator est-vs-actual
// rows, DCSM drift telemetry moves when a fault plan skews latencies, and
// DumpDiagnostics writes the on-demand snapshot.

#include "engine/diagnostics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "common/io.h"
#include "engine/mediator.h"
#include "net/faults/fault_plan.h"
#include "obs/flight_recorder.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

std::unique_ptr<Mediator> RopeMediator(bool caching = true) {
  auto med = std::make_unique<Mediator>();
  testbed::RopeScenarioOptions scenario;
  scenario.enable_caching = caching;
  EXPECT_TRUE(testbed::SetupRopeScenario(med.get(), scenario).ok());
  return med;
}

std::string TempDir(const std::string& leaf) {
  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / leaf;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(Diagnostics, SlowThresholdCapturesACompleteBundle) {
  std::unique_ptr<Mediator> med = RopeMediator();
  DiagnosticsOptions options;
  options.slow_threshold_sim_ms = 1.0;  // everything is "slow"
  options.bundle_dir = TempDir("diag_bundles");
  ASSERT_TRUE(med->EnableDiagnostics(options).ok());

  Result<QueryResult> res =
      med->Query(testbed::AppendixQuery(1, false, 1, 9000), {});
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  DiagnosticsCenter* diag = med->diagnostics();
  ASSERT_NE(diag, nullptr);
  ASSERT_EQ(diag->captures(), 1u);
  std::vector<DebugBundle> bundles = diag->bundles();
  ASSERT_EQ(bundles.size(), 1u);
  const DebugBundle& bundle = bundles[0];
  EXPECT_EQ(bundle.reason, "slow-threshold");
  EXPECT_EQ(bundle.query_id, res->query_id);

  // All four components are present even though the caller passed no
  // tracer and asked for no EXPLAIN.
  EXPECT_FALSE(bundle.events.empty());
  EXPECT_EQ(bundle.events.front().kind, obs::FlightEventKind::kQueryStart);
  EXPECT_EQ(bundle.events.back().kind, obs::FlightEventKind::kQueryEnd);
  EXPECT_NE(bundle.chrome_trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(bundle.chrome_trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(bundle.explain_text.find("actual:"), std::string::npos);
  EXPECT_NE(bundle.prometheus.find("hermes_queries_total 1"),
            std::string::npos);
  ASSERT_FALSE(bundle.rows.empty());

  // Persisted layout: bundle dir with the four files plus the manifest,
  // and the rolling slow-query log beside it.
  ASSERT_FALSE(bundle.dir.empty());
  for (const char* file : {"manifest.json", "events.json", "trace.json",
                           "explain.txt", "metrics.prom"}) {
    EXPECT_TRUE(
        std::filesystem::exists(std::filesystem::path(bundle.dir) / file))
        << file;
  }
  Result<std::string> log = ReadFileToString(
      (std::filesystem::path(options.bundle_dir) / "slow_queries.log")
          .string());
  ASSERT_TRUE(log.ok());
  EXPECT_NE(log->find("slow-query q"), std::string::npos);
  EXPECT_NE(log->find("reason=slow-threshold"), std::string::npos);
}

TEST(Diagnostics, UnremarkableQueriesAreNotCaptured) {
  std::unique_ptr<Mediator> med = RopeMediator();
  DiagnosticsOptions options;  // no threshold, no watermark
  ASSERT_TRUE(med->EnableDiagnostics(options).ok());
  ASSERT_TRUE(med->Query(testbed::AppendixQuery(1, false, 1, 9000), {}).ok());
  EXPECT_EQ(med->diagnostics()->captures(), 0u);
  // The recorder still has the query's events for on-demand inspection.
  EXPECT_GT(med->flight_recorder()->total_events(), 0u);
}

TEST(Diagnostics, PartialQueryCapturesWithCompletenessReason) {
  std::unique_ptr<Mediator> med = RopeMediator();
  DiagnosticsOptions options;
  ASSERT_TRUE(med->EnableDiagnostics(options).ok());
  // Outage covering the whole run: the video source is lost; with
  // partial_results the query completes partial and the policy captures.
  Result<net::FaultPlan> plan =
      net::FaultPlan::Parse("seed 7\noutage site=umd from=0 until=100000000\n");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(med->SetFaultPlan(std::move(plan).value()).ok());
  QueryOptions qopts;
  qopts.partial_results = true;
  Result<QueryResult> res =
      med->Query(testbed::AppendixQuery(1, false, 1, 9000), qopts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->completeness, QueryCompleteness::kPartial);
  std::vector<DebugBundle> bundles = med->diagnostics()->bundles();
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_EQ(bundles[0].reason, "partial");
  EXPECT_EQ(bundles[0].completeness, "partial");
}

TEST(Diagnostics, DriftGaugesMoveWhenLatencySkews) {
  std::unique_ptr<Mediator> med = RopeMediator(/*caching=*/false);
  DiagnosticsOptions options;
  options.drift.threshold = 0.5;
  options.drift.min_samples = 1;
  ASSERT_TRUE(med->EnableDiagnostics(options).ok());

  // Warm-up: the first pass records statistics, so the second pass has
  // real (non-default) estimates to drift against.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        med->Query(testbed::AppendixQuery(1, false, 1, 9000), {}).ok());
  }
  dcsm::DriftReport calm = med->DriftReport();

  // ×8 latency on every link: observed Tf/Ta shoot past the estimates the
  // warm-up recorded.
  Result<net::FaultPlan> plan = net::FaultPlan::Parse(
      "seed 7\nlatency site=* factor=8 from=0 until=100000000\n");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(med->SetFaultPlan(std::move(plan).value()).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        med->Query(testbed::AppendixQuery(1, false, 1, 9000), {}).ok());
  }

  dcsm::DriftTracker* drift = med->drift_tracker();
  ASSERT_NE(drift, nullptr);
  EXPECT_GT(drift->observations(), 0u);
  dcsm::DriftReport skewed = med->DriftReport();
  ASSERT_FALSE(skewed.entries.empty());
  double max_ta = 0.0;
  for (const dcsm::DriftEntry& e : skewed.entries) {
    max_ta = std::max(max_ta, e.ewma_ta);
  }
  double calm_max_ta = 0.0;
  for (const dcsm::DriftEntry& e : calm.entries) {
    calm_max_ta = std::max(calm_max_ta, e.ewma_ta);
  }
  EXPECT_GT(max_ta, calm_max_ta);
  EXPECT_FALSE(skewed.Exceeded().empty());
  EXPECT_GT(drift->exceeded_events(), 0u);

  std::string prom = med->metrics().ExposePrometheus();
  EXPECT_NE(prom.find("hermes_dcsm_drift{"), std::string::npos);
  EXPECT_NE(prom.find("dim=\"ta\""), std::string::npos);
  EXPECT_NE(prom.find("hermes_dcsm_drift_exceeded_total"), std::string::npos);
}

TEST(Diagnostics, DumpWritesTheOnDemandSnapshot) {
  std::unique_ptr<Mediator> med = RopeMediator();
  ASSERT_TRUE(med->EnableDiagnostics({}).ok());
  ASSERT_TRUE(med->Query(testbed::AppendixQuery(1, false, 1, 9000), {}).ok());
  std::string dir = TempDir("diag_dump");
  ASSERT_TRUE(med->DumpDiagnostics(dir).ok());
  for (const char* file :
       {"events.json", "metrics.prom", "drift.txt", "slow_queries.log"}) {
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / file))
        << file;
  }
  Result<std::string> events =
      ReadFileToString((std::filesystem::path(dir) / "events.json").string());
  ASSERT_TRUE(events.ok());
  EXPECT_NE(events->find("\"kind\":\"query_start\""), std::string::npos);
  EXPECT_NE(events->find("\"kind\":\"call_issued\""), std::string::npos);
}

TEST(Diagnostics, SlowLogRotatesBySizeInsteadOfGrowingUnbounded) {
  std::unique_ptr<Mediator> med = RopeMediator();
  DiagnosticsOptions options;
  options.slow_threshold_sim_ms = 1.0;  // everything is "slow"
  options.bundle_dir = TempDir("diag_rotate");
  options.slow_log_max_bytes = 600;  // a couple of records per generation
  options.max_bundles = 2;           // rotation is the subject, not bundles
  ASSERT_TRUE(med->EnableDiagnostics(options).ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        med->Query(testbed::AppendixQuery(1, false, 1, 9000), {}).ok());
  }

  std::filesystem::path log =
      std::filesystem::path(options.bundle_dir) / "slow_queries.log";
  std::filesystem::path rotated(log.string() + ".1");
  ASSERT_TRUE(std::filesystem::exists(log));
  // A capture storm rolled the log into its single predecessor generation —
  // the pair bounds total disk at roughly twice the configured cap.
  EXPECT_TRUE(std::filesystem::exists(rotated));
  EXPECT_GT(std::filesystem::file_size(rotated), 0u);
  // The live generation stays within one record of the cap.
  Result<std::string> live = ReadFileToString(log.string());
  ASSERT_TRUE(live.ok());
  EXPECT_NE(live->find("slow-query q"), std::string::npos);

  // The in-memory ring is bounded independently of the files.
  EXPECT_EQ(med->diagnostics()->captures(), 10u);
  EXPECT_LE(med->diagnostics()->bundles().size(), options.max_bundles);
}

TEST(Diagnostics, BrownoutTransitionsCaptureCrossQueryBundles) {
  std::unique_ptr<Mediator> med = RopeMediator();
  // A hair-trigger ladder the test can walk by hand.
  overload::BrownoutController::Options ladder;
  ladder.window_events = 4;
  ladder.up_threshold = 0.5;
  ladder.ewma_alpha = 1.0;
  ladder.min_dwell_windows = 0;
  ASSERT_TRUE(med->EnableOverloadControl({}, ladder).ok());
  DiagnosticsOptions options;
  options.bundle_dir = TempDir("diag_brownout");
  ASSERT_TRUE(med->EnableDiagnostics(options).ok());

  // A real query first, so the cross-query event snapshot has content.
  ASSERT_TRUE(med->Query(testbed::AppendixQuery(1, false, 1, 9000), {}).ok());

  overload::BrownoutController* brownout = med->brownout();
  ASSERT_NE(brownout, nullptr);
  while (brownout->level() < overload::BrownoutController::kNoHedge) {
    brownout->RecordOutcome(true);
  }
  ASSERT_GE(brownout->transitions(), 1u);

  DiagnosticsCenter* diag = med->diagnostics();
  std::vector<DebugBundle> bundles = diag->bundles();
  ASSERT_FALSE(bundles.empty());
  const DebugBundle& bundle = bundles.back();
  EXPECT_EQ(bundle.reason, "brownout-transition");
  EXPECT_NE(bundle.query_text.find("normal -> no_hedge"), std::string::npos)
      << bundle.query_text;
  // No single query owns a ladder transition: the bundle snapshots the
  // recorder's resident events and the metrics at the instant it fired.
  EXPECT_FALSE(bundle.events.empty());
  EXPECT_NE(bundle.prometheus.find("hermes_overload_brownout_level"),
            std::string::npos);
  // Persisted beside the slow log, which records the transition too.
  ASSERT_FALSE(bundle.dir.empty());
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(bundle.dir) / "manifest.json"));
  Result<std::string> log = ReadFileToString(
      (std::filesystem::path(options.bundle_dir) / "slow_queries.log")
          .string());
  ASSERT_TRUE(log.ok());
  EXPECT_NE(log->find("reason=brownout-transition"), std::string::npos);
}

TEST(Diagnostics, DumpRequiresEnableDiagnostics) {
  std::unique_ptr<Mediator> med = RopeMediator();
  Status st = med->DumpDiagnostics(TempDir("diag_never"));
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
}

}  // namespace
}  // namespace hermes
