// Concurrent serving: many clients hammering one shared Mediator through a
// QueryPool. These tests pin the concurrency contract — wiring frozen while
// serving, exact shared counters, per-query traffic attribution that sums
// to the global aggregate, and replay determinism of the per-query network
// RNG across thread counts. They are also the TSan workload of the CI
// thread-sanitizer job.

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "engine/mediator.h"
#include "engine/query_pool.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

const char* kObjectsRule =
    "objects(F, L, O) :- in(O, video:frames_to_objects('rope', F, L)).";

QueryOptions AsWritten() {
  QueryOptions q;
  q.use_optimizer = false;
  return q;
}

std::string ObjectsQuery(int last) {
  return "?- objects(4, " + std::to_string(last) + ", O).";
}

testbed::RopeScenarioOptions NoCacheOptions() {
  testbed::RopeScenarioOptions options;
  options.enable_caching = false;
  options.add_frame_invariants = false;
  return options;
}

TEST(ConcurrencyTest, StressMixedWorkloadOnSharedMediator) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, {}).ok());
  ASSERT_TRUE(med.LoadProgram(kObjectsRule).ok());

  QueryPoolOptions pool_options;
  pool_options.num_threads = 8;
  std::unique_ptr<QueryPool> pool = med.Serve(pool_options);
  EXPECT_EQ(pool->num_threads(), 8u);
  EXPECT_TRUE(med.serving());

  // A mix of repeated (cacheable) and one-off ranges, plus the appendix
  // join queries, all in flight at once.
  std::vector<std::string> texts;
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int round = 0; round < 5; ++round) {
    texts.push_back(ObjectsQuery(47));  // repeats: exact hits after the first
    texts.push_back(ObjectsQuery(100 + round));          // always fresh
    texts.push_back(testbed::AppendixQuery(3, false, 4, 47));
    texts.push_back(testbed::AppendixQuery(1, false, 4, 60 + round));
  }
  futures.reserve(texts.size());
  for (const std::string& text : texts) {
    futures.push_back(pool->Submit(text, AsWritten()));
  }

  std::map<std::string, size_t> answers_by_text;
  std::set<uint64_t> ids;
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<QueryResult> res = futures[i].get();
    ASSERT_TRUE(res.ok()) << texts[i] << ": " << res.status();
    EXPECT_GT(res->execution.answers.size(), 0u) << texts[i];
    EXPECT_NE(res->query_id, 0u);
    ids.insert(res->query_id);
    // The same query text must produce the same answer count no matter
    // whether it was served from cache or the source.
    auto [it, inserted] =
        answers_by_text.emplace(texts[i], res->execution.answers.size());
    if (!inserted) {
      EXPECT_EQ(it->second, res->execution.answers.size()) << texts[i];
    }
  }
  EXPECT_EQ(ids.size(), texts.size());  // every query ran under its own id

  pool->Shutdown();
  EXPECT_FALSE(med.serving());
  QueryPoolStats stats = pool->stats();
  EXPECT_EQ(stats.submitted, texts.size());
  EXPECT_EQ(stats.completed, texts.size());
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ConcurrencyTest, WiringIsFrozenWhileServing) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, NoCacheOptions()).ok());

  std::unique_ptr<QueryPool> pool = med.Serve({});
  Status caching = med.EnableCaching("video");
  EXPECT_TRUE(caching.IsFailedPrecondition()) << caching;
  EXPECT_TRUE(med.LoadProgram(kObjectsRule).IsFailedPrecondition());
  EXPECT_TRUE(med.ClearProgram().IsFailedPrecondition());
  EXPECT_TRUE(med.AddInvariants("x = y.").IsFailedPrecondition());
  EXPECT_EQ(med.cim("video"), nullptr);  // the rejected call changed nothing

  pool->Shutdown();
  // After the pool is gone the same wiring calls succeed.
  EXPECT_TRUE(med.EnableCaching("video").ok());
  EXPECT_TRUE(med.LoadProgram(kObjectsRule).ok());
  EXPECT_NE(med.cim("video"), nullptr);
  Result<QueryResult> res = med.Query(ObjectsQuery(47), AsWritten());
  EXPECT_TRUE(res.ok()) << res.status();
}

TEST(ConcurrencyTest, SubmitAfterShutdownFailsCleanly) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, NoCacheOptions()).ok());
  ASSERT_TRUE(med.LoadProgram(kObjectsRule).ok());

  std::unique_ptr<QueryPool> pool = med.Serve({});
  pool->Shutdown();
  pool->Shutdown();  // idempotent

  Result<QueryResult> res = pool->Submit(ObjectsQuery(47)).get();
  EXPECT_TRUE(res.status().IsFailedPrecondition());
  std::future<Result<QueryResult>> out;
  Status refused = pool->TrySubmit(ObjectsQuery(47), {}, &out);
  EXPECT_TRUE(refused.IsFailedPrecondition()) << refused;
  EXPECT_GT(pool->stats().rejected, 0u);
}

TEST(ConcurrencyTest, ConcurrentPerQueryTrafficSumsToGlobalStats) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, NoCacheOptions()).ok());
  ASSERT_TRUE(med.LoadProgram(kObjectsRule).ok());

  QueryPoolOptions pool_options;
  pool_options.num_threads = 8;
  std::unique_ptr<QueryPool> pool = med.Serve(pool_options);
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(pool->Submit(ObjectsQuery(40 + i), AsWritten()));
  }

  uint64_t calls = 0, bytes = 0, failures = 0;
  double charge = 0.0;
  for (std::future<Result<QueryResult>>& f : futures) {
    Result<QueryResult> res = f.get();
    ASSERT_TRUE(res.ok()) << res.status();
    calls += res->traffic.remote_calls;
    bytes += res->traffic.bytes;
    failures += res->traffic.failures;
    charge += res->traffic.charge;
  }
  pool->Shutdown();

  // Every remote byte of every concurrent query is attributed exactly once:
  // the per-query bills add up to the shared simulator's atomic aggregate.
  net::NetworkStats global = med.network().stats();
  EXPECT_EQ(calls, global.calls);
  EXPECT_EQ(bytes, global.bytes_transferred);
  EXPECT_EQ(failures, global.failures);
  EXPECT_NEAR(charge, global.total_charge, 1e-6);
}

TEST(ConcurrencyTest, CacheCountersStayExactUnderConcurrentHits) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, {}).ok());
  ASSERT_TRUE(med.LoadProgram(kObjectsRule).ok());

  // Warm: exactly one miss + one actual call inserts the entry.
  ASSERT_TRUE(med.Query(ObjectsQuery(47), AsWritten()).ok());
  med.cim("video")->ResetStats();
  med.cim("video")->cache().ResetStats();

  constexpr int kQueries = 40;
  QueryPoolOptions pool_options;
  pool_options.num_threads = 8;
  std::unique_ptr<QueryPool> pool = med.Serve(pool_options);
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < kQueries; ++i) {
    futures.push_back(pool->Submit(ObjectsQuery(47), AsWritten()));
  }
  for (std::future<Result<QueryResult>>& f : futures) {
    Result<QueryResult> res = f.get();
    ASSERT_TRUE(res.ok()) << res.status();
    // Each repeat is served wholly from cache, and its own metrics say so —
    // outcome attribution is per-call, not diffed from shared counters.
    EXPECT_EQ(res->metrics.cache_hits, 1u);
    EXPECT_EQ(res->metrics.cache_misses, 0u);
    EXPECT_EQ(res->traffic.remote_calls, 0u);
  }
  pool->Shutdown();

  cim::CimStats stats = med.cim("video")->stats();
  EXPECT_EQ(stats.exact_hits, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.actual_calls, 0u);
  EXPECT_EQ(med.cim("video")->cache().stats().hits,
            static_cast<uint64_t>(kQueries));
}

// Satellite of the per-query RNG work: with set_per_query_network_rng(true),
// a query's simulated latencies and traffic depend only on (network seed,
// query id) — so replaying the same submissions on 1 thread and on 8 threads
// yields identical per-query results.
TEST(ConcurrencyTest, PerQueryRngReplaysIdenticallyAcrossThreadCounts) {
  auto run = [](size_t threads) {
    auto med = std::make_unique<Mediator>();
    EXPECT_TRUE(testbed::SetupRopeScenario(med.get(), NoCacheOptions()).ok());
    EXPECT_TRUE(med->LoadProgram(kObjectsRule).ok());
    med->set_per_query_network_rng(true);

    QueryOptions options = AsWritten();
    options.record_statistics = false;

    QueryPoolOptions pool_options;
    pool_options.num_threads = threads;
    std::unique_ptr<QueryPool> pool = med->Serve(pool_options);
    std::vector<std::future<Result<QueryResult>>> futures;
    for (int i = 0; i < 16; ++i) {
      // Pin the ids explicitly so both runs use the same (seed, id) streams
      // regardless of what else the mediator ran before.
      QueryOptions pinned = options;
      pinned.query_id = 1000 + i;
      futures.push_back(pool->Submit(ObjectsQuery(40 + i % 8), pinned));
    }
    std::vector<QueryResult> results;
    for (std::future<Result<QueryResult>>& f : futures) {
      Result<QueryResult> res = f.get();
      EXPECT_TRUE(res.ok()) << res.status();
      results.push_back(std::move(*res));
    }
    pool->Shutdown();
    return results;
  };

  std::vector<QueryResult> serial = run(1);
  std::vector<QueryResult> parallel = run(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].query_id, parallel[i].query_id);
    EXPECT_EQ(serial[i].execution.answers.size(),
              parallel[i].execution.answers.size());
    // The simulated clock readings — pure functions of the query's RNG
    // stream — replay exactly.
    EXPECT_DOUBLE_EQ(serial[i].execution.t_all_ms,
                     parallel[i].execution.t_all_ms);
    EXPECT_DOUBLE_EQ(serial[i].execution.t_first_ms,
                     parallel[i].execution.t_first_ms);
    EXPECT_EQ(serial[i].traffic.bytes, parallel[i].traffic.bytes);
    EXPECT_EQ(serial[i].traffic.remote_calls, parallel[i].traffic.remote_calls);
    EXPECT_DOUBLE_EQ(serial[i].traffic.charge, parallel[i].traffic.charge);
  }
}

// Without per-query streams the shared legacy RNG sequence is consumed in
// scheduling order — latencies then legitimately differ between runs; the
// answers themselves must not.
TEST(ConcurrencyTest, SharedRngStillYieldsIdenticalAnswers) {
  auto run = [](size_t threads) {
    auto med = std::make_unique<Mediator>();
    EXPECT_TRUE(testbed::SetupRopeScenario(med.get(), NoCacheOptions()).ok());
    EXPECT_TRUE(med->LoadProgram(kObjectsRule).ok());
    QueryPoolOptions pool_options;
    pool_options.num_threads = threads;
    std::unique_ptr<QueryPool> pool = med->Serve(pool_options);
    std::vector<std::future<Result<QueryResult>>> futures;
    for (int i = 0; i < 12; ++i) {
      futures.push_back(pool->Submit(ObjectsQuery(40 + i), AsWritten()));
    }
    std::vector<size_t> counts;
    for (std::future<Result<QueryResult>>& f : futures) {
      Result<QueryResult> res = f.get();
      EXPECT_TRUE(res.ok()) << res.status();
      counts.push_back(res->execution.answers.size());
    }
    pool->Shutdown();
    return counts;
  };
  EXPECT_EQ(run(1), run(8));
}

}  // namespace
}  // namespace hermes
