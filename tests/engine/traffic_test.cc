// Per-query network-traffic attribution: QueryResult::traffic is derived
// from the query's own CallContext metrics (the network layer attributes as
// it runs), never by diffing the shared simulator's global statistics — so
// unrelated traffic on the same simulator can no longer leak into a query's
// bill, and every byte of every query adds up to the global aggregate.

#include <gtest/gtest.h>

#include "engine/mediator.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

testbed::RopeScenarioOptions NoCacheOptions() {
  testbed::RopeScenarioOptions options;
  options.enable_caching = false;
  options.add_frame_invariants = false;
  return options;
}

QueryOptions AsWritten() {
  QueryOptions q;
  q.use_optimizer = false;
  return q;
}

const char* kObjectsRule =
    "objects(F, L, O) :- in(O, video:frames_to_objects('rope', F, L)).";

TEST(QueryTrafficTest, UnrelatedGlobalTrafficDoesNotLeakIntoAQuery) {
  Mediator polluted, twin;
  ASSERT_TRUE(testbed::SetupRopeScenario(&polluted, NoCacheOptions()).ok());
  ASSERT_TRUE(testbed::SetupRopeScenario(&twin, NoCacheOptions()).ok());
  ASSERT_TRUE(polluted.LoadProgram(kObjectsRule).ok());
  ASSERT_TRUE(twin.LoadProgram(kObjectsRule).ok());

  // Unrelated activity on the shared simulator: another query's transfers
  // and failures landing in the global statistics.
  (void)polluted.network().RecordTransfer(net::ItalySite(), 1 << 20, 9999.0);
  polluted.network().RecordFailure();

  Result<QueryResult> a = polluted.Query("?- objects(4, 47, O).", AsWritten());
  Result<QueryResult> b = twin.Query("?- objects(4, 47, O).", AsWritten());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_GT(b->traffic.bytes, 0u);

  // The polluted mediator's query is billed exactly what its twin is.
  EXPECT_EQ(a->traffic.remote_calls, b->traffic.remote_calls);
  EXPECT_EQ(a->traffic.failures, b->traffic.failures);
  EXPECT_EQ(a->traffic.bytes, b->traffic.bytes);
  EXPECT_DOUBLE_EQ(a->traffic.charge, b->traffic.charge);
  // The pollution is still visible globally, just not attributed.
  EXPECT_GE(polluted.network().stats().bytes_transferred,
            a->traffic.bytes + (1 << 20));
}

TEST(QueryTrafficTest, PerQueryTrafficSumsToGlobalStats) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, NoCacheOptions()).ok());
  ASSERT_TRUE(med.LoadProgram(kObjectsRule).ok());

  uint64_t calls = 0, bytes = 0, failures = 0;
  double charge = 0.0;
  for (int i = 0; i < 4; ++i) {
    Result<QueryResult> res =
        med.Query("?- objects(4, " + std::to_string(40 + i) + ", O).",
                  AsWritten());
    ASSERT_TRUE(res.ok()) << res.status();
    calls += res->traffic.remote_calls;
    bytes += res->traffic.bytes;
    failures += res->traffic.failures;
    charge += res->traffic.charge;
  }
  const net::NetworkStats& global = med.network().stats();
  EXPECT_EQ(calls, global.calls);
  EXPECT_EQ(bytes, global.bytes_transferred);
  EXPECT_EQ(failures, global.failures);
  EXPECT_NEAR(charge, global.total_charge, 1e-9);
}

TEST(QueryTrafficTest, CacheHitsGenerateNoTraffic) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, {}).ok());
  ASSERT_TRUE(med.LoadProgram(kObjectsRule).ok());

  Result<QueryResult> miss = med.Query("?- objects(4, 47, O).", AsWritten());
  Result<QueryResult> hit = med.Query("?- objects(4, 47, O).", AsWritten());
  ASSERT_TRUE(miss.ok() && hit.ok());
  EXPECT_GT(miss->traffic.remote_calls, 0u);
  EXPECT_GT(miss->metrics.cache_misses, 0u);
  EXPECT_EQ(hit->traffic.remote_calls, 0u);
  EXPECT_EQ(hit->traffic.bytes, 0u);
  EXPECT_DOUBLE_EQ(hit->traffic.charge, 0.0);
  EXPECT_GT(hit->metrics.cache_hits, 0u);
  EXPECT_EQ(hit->execution.answers.size(), miss->execution.answers.size());
}

TEST(QueryTrafficTest, MaskedOutageIsAttributedAsFailure) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, {}).ok());
  ASSERT_TRUE(med.LoadProgram(kObjectsRule).ok());

  // Warm the cache, then take the site down: the CIM masks the outage with
  // cached answers, and the lost call is still billed to the query.
  ASSERT_TRUE(med.Query("?- objects(4, 47, O).", AsWritten()).ok());
  ASSERT_NE(med.remote_link("video"), nullptr);
  med.remote_link("video")->mutable_site().availability = 0.0;

  // An exact hit never reaches the network at all.
  Result<QueryResult> exact = med.Query("?- objects(4, 47, O).", AsWritten());
  ASSERT_TRUE(exact.ok()) << exact.status();
  EXPECT_EQ(exact->traffic.failures, 0u);
  EXPECT_EQ(exact->traffic.remote_calls, 0u);

  // A partial-invariant hit attempts the actual call, loses it to the
  // outage, and serves the cached subset — the failed attempt is billed.
  Result<QueryResult> masked =
      med.Query("?- objects(4, 500, O).", AsWritten());
  ASSERT_TRUE(masked.ok()) << masked.status();
  EXPECT_GT(med.cim("video")->stats().unavailable_masked, 0u);
  EXPECT_GT(masked->traffic.failures, 0u);
  EXPECT_EQ(masked->traffic.failures, masked->traffic.remote_calls);
  EXPECT_EQ(masked->traffic.bytes, 0u);
}

TEST(QueryTrafficTest, MetricsExposePerLayerCounters) {
  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, {}).ok());
  ASSERT_TRUE(med.LoadProgram(kObjectsRule).ok());

  QueryOptions traced = AsWritten();
  traced.collect_trace = true;
  Result<QueryResult> res = med.Query("?- objects(4, 47, O).", traced);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_GT(res->metrics.domain_calls, 0u);
  EXPECT_EQ(res->metrics.traced_calls, res->execution.trace.size());
  EXPECT_GT(res->metrics.stats_records, 0u);
  EXPECT_EQ(res->metrics.bytes_transferred, res->traffic.bytes);
  EXPECT_GT(res->metrics.network_ms, 0.0);
}

}  // namespace
}  // namespace hermes
