#include "engine/executor.h"

#include <gtest/gtest.h>

#include <map>

#include "lang/parser.h"

namespace hermes::engine {
namespace {

/// Scriptable domain with controllable per-call latencies.
class ScriptedDomain : public Domain {
 public:
  explicit ScriptedDomain(std::string name) : name_(std::move(name)) {}

  void Set(const DomainCall& call, AnswerSet answers, double first_ms = 1.0,
           double all_ms = 2.0) {
    scripts_[call.ToString()] = {std::move(answers), first_ms, all_ms};
  }
  int calls() const { return calls_; }

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override { return {}; }
  Result<CallOutput> Run(const DomainCall& call) override {
    ++calls_;
    auto it = scripts_.find(call.ToString());
    if (it == scripts_.end()) {
      return Status::NotFound("unscripted: " + call.ToString());
    }
    CallOutput out;
    out.answers = it->second.answers;
    out.first_ms = it->second.first_ms;
    out.all_ms = it->second.all_ms;
    return out;
  }

 private:
  struct Script {
    AnswerSet answers;
    double first_ms;
    double all_ms;
  };
  std::string name_;
  std::map<std::string, Script> scripts_;
  int calls_ = 0;
};

struct Fixture {
  DomainRegistry registry;
  std::shared_ptr<ScriptedDomain> d = std::make_shared<ScriptedDomain>("d");

  Fixture() { (void)registry.Register("d", d); }

  Result<QueryExecution> Run(const std::string& program_text,
                             const std::string& query_text,
                             ExecutorOptions options = {}) {
    Result<lang::Program> program = lang::Parser::ParseProgram(program_text);
    EXPECT_TRUE(program.ok()) << program.status();
    Result<lang::Query> query = lang::Parser::ParseQuery(query_text);
    EXPECT_TRUE(query.ok()) << query.status();
    Executor executor(&registry, nullptr, options);
    return executor.Execute(*program, *query);
  }
};

DomainCall C(const std::string& fn, ValueList args) {
  return DomainCall{"d", fn, std::move(args)};
}

TEST(ExecutorTest, SingleCallEnumeration) {
  Fixture fx;
  fx.d->Set(C("f", {}), {Value::Int(1), Value::Int(2), Value::Int(3)}, 10, 30);
  Result<QueryExecution> exec = fx.Run("", "?- in(X, d:f()).");
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_EQ(exec->var_names, (std::vector<std::string>{"X"}));
  ASSERT_EQ(exec->answers.size(), 3u);
  EXPECT_EQ(exec->answers[0][0], Value::Int(1));
  EXPECT_DOUBLE_EQ(exec->t_first_ms, 10.0);
  EXPECT_DOUBLE_EQ(exec->t_all_ms, 30.0);
  EXPECT_EQ(exec->domain_calls, 1u);
}

TEST(ExecutorTest, NestedLoopJoinTiming) {
  // Outer call: 2 answers at t=10 and t=20 (all=20). Inner per-answer call:
  // 1 answer, first=all=5. Pipeline: inner(1) runs [10,15], inner(2) starts
  // max(20, 15)=20, done 25. Ta = 25; Tf = 15.
  Fixture fx;
  fx.d->Set(C("outer", {}), {Value::Int(1), Value::Int(2)}, 10, 20);
  fx.d->Set(C("inner", {Value::Int(1)}), {Value::Str("a")}, 5, 5);
  fx.d->Set(C("inner", {Value::Int(2)}), {Value::Str("b")}, 5, 5);
  Result<QueryExecution> exec =
      fx.Run("", "?- in(X, d:outer()) & in(Y, d:inner(X)).");
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_EQ(exec->answers.size(), 2u);
  EXPECT_DOUBLE_EQ(exec->t_first_ms, 15.0);
  EXPECT_DOUBLE_EQ(exec->t_all_ms, 25.0);
  EXPECT_EQ(exec->domain_calls, 3u);
}

TEST(ExecutorTest, NoDuplicateEliminationAcrossOuterTuples) {
  // The same inner call is issued once per outer answer (footnote 2).
  Fixture fx;
  fx.d->Set(C("outer", {}), {Value::Int(1), Value::Int(1)}, 1, 2);
  fx.d->Set(C("inner", {Value::Int(1)}), {Value::Str("a")}, 1, 1);
  Result<QueryExecution> exec =
      fx.Run("", "?- in(X, d:outer()) & in(Y, d:inner(X)).");
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->answers.size(), 2u);
  EXPECT_EQ(fx.d->calls(), 3);  // outer + 2 identical inner calls
}

TEST(ExecutorTest, MembershipCheckSucceedsOnce) {
  Fixture fx;
  fx.d->Set(C("f", {}), {Value::Int(1), Value::Int(2), Value::Int(2)}, 1, 9);
  Result<QueryExecution> exec = fx.Run("", "?- in(2, d:f()).");
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_EQ(exec->answers.size(), 1u);  // a check, not an enumeration
}

TEST(ExecutorTest, MembershipMissWaitsForFullSet) {
  Fixture fx;
  fx.d->Set(C("f", {}), {Value::Int(1)}, 1, 44);
  Result<QueryExecution> exec = fx.Run("", "?- in(9, d:f()).");
  ASSERT_TRUE(exec.ok());
  EXPECT_TRUE(exec->answers.empty());
  EXPECT_DOUBLE_EQ(exec->t_all_ms, 44.0);
}

TEST(ExecutorTest, ComparisonFiltersAndBinds) {
  Fixture fx;
  fx.d->Set(C("f", {}), {Value::Int(1), Value::Int(5), Value::Int(9)}, 1, 3);
  Result<QueryExecution> exec =
      fx.Run("", "?- in(X, d:f()) & X > 3 & =(Y, X).");
  ASSERT_TRUE(exec.ok()) << exec.status();
  ASSERT_EQ(exec->answers.size(), 2u);
  EXPECT_EQ(exec->answers[0][1], Value::Int(5));  // Y column
}

TEST(ExecutorTest, AttributePathsInComparisons) {
  Fixture fx;
  fx.d->Set(C("rows", {}),
            {Value::Struct({{"name", Value::Str("ann")},
                            {"age", Value::Int(30)}}),
             Value::Struct({{"name", Value::Str("bob")},
                            {"age", Value::Int(20)}})},
            1, 2);
  Result<QueryExecution> exec =
      fx.Run("", "?- in(T, d:rows()) & T.age >= 25 & =(N, T.name).");
  ASSERT_TRUE(exec.ok()) << exec.status();
  ASSERT_EQ(exec->answers.size(), 1u);
  EXPECT_EQ(exec->answers[0][1], Value::Str("ann"));
}

TEST(ExecutorTest, RuleEvaluationWithBindingPropagation) {
  Fixture fx;
  fx.d->Set(C("p", {Value::Str("a")}), {Value::Str("b1"), Value::Str("b2")},
            1, 2);
  fx.d->Set(C("q", {Value::Str("b1")}), {Value::Str("c1")}, 1, 2);
  fx.d->Set(C("q", {Value::Str("b2")}), {Value::Str("c2"), Value::Str("c3")},
            1, 2);
  Result<QueryExecution> exec = fx.Run(
      "m(A, C) :- in(B, d:p(A)) & in(C, d:q(B)).", "?- m('a', C).");
  ASSERT_TRUE(exec.ok()) << exec.status();
  ASSERT_EQ(exec->answers.size(), 3u);
  EXPECT_EQ(exec->answers[0][0], Value::Str("c1"));
  EXPECT_EQ(exec->answers[2][0], Value::Str("c3"));
}

TEST(ExecutorTest, MultipleRulesTriedSequentially) {
  Fixture fx;
  fx.d->Set(C("r1", {}), {Value::Int(1)}, 5, 5);
  fx.d->Set(C("r2", {}), {Value::Int(2)}, 7, 7);
  Result<QueryExecution> exec = fx.Run(
      "u(X) :- in(X, d:r1()).\n"
      "u(X) :- in(X, d:r2()).",
      "?- u(X).");
  ASSERT_TRUE(exec.ok()) << exec.status();
  ASSERT_EQ(exec->answers.size(), 2u);
  EXPECT_EQ(exec->answers[0][0], Value::Int(1));
  EXPECT_EQ(exec->answers[1][0], Value::Int(2));
  // Rule 2 starts only after rule 1 finished: t_all = 5 + 7 (plus the
  // sub-millisecond unification plumbing cost).
  EXPECT_NEAR(exec->t_all_ms, 12.0, 0.01);
}

TEST(ExecutorTest, HeadConstantsFilterCalls) {
  Fixture fx;
  fx.d->Set(C("f", {}), {Value::Int(7)}, 1, 1);
  Result<QueryExecution> exec = fx.Run(
      "tagged('yes', X) :- in(X, d:f()).", "?- tagged(W, X).");
  ASSERT_TRUE(exec.ok()) << exec.status();
  ASSERT_EQ(exec->answers.size(), 1u);
  EXPECT_EQ(exec->answers[0][0], Value::Str("yes"));

  // A mismatching constant makes the rule inapplicable.
  Result<QueryExecution> none = fx.Run(
      "tagged('yes', X) :- in(X, d:f()).", "?- tagged('no', X).");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->answers.empty());
}

TEST(ExecutorTest, FactsEvaluate) {
  Fixture fx;
  Result<QueryExecution> exec = fx.Run(
      "color('red').\ncolor('blue').", "?- color(C).");
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_EQ(exec->answers.size(), 2u);
}

TEST(ExecutorTest, InteractiveModeStopsAfterBatch) {
  Fixture fx;
  AnswerSet many;
  for (int i = 0; i < 100; ++i) many.push_back(Value::Int(i));
  fx.d->Set(C("big", {}), many, 1, 1000);
  fx.d->Set(C("probe", {Value::Int(0)}), {Value::Str("x")}, 1, 1);

  ExecutorOptions options;
  options.mode = ExecutionMode::kInteractive;
  options.interactive_batch = 1;
  Result<QueryExecution> exec = fx.Run("", "?- in(X, d:big()).", options);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->answers.size(), 1u);
  EXPECT_FALSE(exec->complete);
  // Stopping early: evaluation time is the first answer's time, far below
  // the 1000ms full-set time.
  EXPECT_LT(exec->t_all_ms, 10.0);
}

TEST(ExecutorTest, InteractiveBatchOfK) {
  Fixture fx;
  AnswerSet many;
  for (int i = 0; i < 10; ++i) many.push_back(Value::Int(i));
  fx.d->Set(C("big", {}), many, 1, 10);
  ExecutorOptions options;
  options.mode = ExecutionMode::kInteractive;
  options.interactive_batch = 4;
  Result<QueryExecution> exec = fx.Run("", "?- in(X, d:big()).", options);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->answers.size(), 4u);
  EXPECT_FALSE(exec->complete);
}

TEST(ExecutorTest, RepeatedOutputVariableActsAsJoin) {
  Fixture fx;
  fx.d->Set(C("f", {}), {Value::Int(1), Value::Int(2)}, 1, 2);
  fx.d->Set(C("g", {}), {Value::Int(2), Value::Int(3)}, 1, 2);
  Result<QueryExecution> exec =
      fx.Run("", "?- in(X, d:f()) & in(X, d:g()).");
  ASSERT_TRUE(exec.ok()) << exec.status();
  ASSERT_EQ(exec->answers.size(), 1u);
  EXPECT_EQ(exec->answers[0][0], Value::Int(2));
}

TEST(ExecutorTest, UnknownPredicateIsNotFound) {
  Fixture fx;
  EXPECT_TRUE(fx.Run("", "?- ghost(X).").status().IsNotFound());
}

TEST(ExecutorTest, UnboundDomainArgumentFails) {
  Fixture fx;
  fx.d->Set(C("f", {Value::Int(1)}), {Value::Int(1)}, 1, 1);
  EXPECT_FALSE(fx.Run("", "?- in(X, d:f(Y)).").ok());
}

TEST(ExecutorTest, RecursionDepthGuard) {
  Fixture fx;
  Result<QueryExecution> exec = fx.Run("loop(X) :- loop(X).", "?- loop(1).");
  EXPECT_EQ(exec.status().code(), StatusCode::kUnimplemented);
}

TEST(ExecutorTest, DomainCallBudgetGuard) {
  Fixture fx;
  AnswerSet many;
  for (int i = 0; i < 50; ++i) many.push_back(Value::Int(i));
  fx.d->Set(C("f", {}), many, 1, 2);
  for (int i = 0; i < 50; ++i) {
    fx.d->Set(C("g", {Value::Int(i)}), {Value::Int(i)}, 1, 1);
  }
  ExecutorOptions options;
  options.max_domain_calls = 10;
  Result<QueryExecution> exec =
      fx.Run("", "?- in(X, d:f()) & in(Y, d:g(X)).", options);
  EXPECT_EQ(exec.status().code(), StatusCode::kInternal);
}

TEST(ExecutorTest, ZeroAnswerTfEqualsTa) {
  Fixture fx;
  fx.d->Set(C("f", {}), {}, 3, 3);
  Result<QueryExecution> exec = fx.Run("", "?- in(X, d:f()).");
  ASSERT_TRUE(exec.ok());
  EXPECT_TRUE(exec->answers.empty());
  EXPECT_DOUBLE_EQ(exec->t_first_ms, exec->t_all_ms);
}

TEST(ExecutorTest, StatisticsRecordedIntoDcsm) {
  Fixture fx;
  fx.d->Set(C("f", {}), {Value::Int(1)}, 2, 4);
  dcsm::Dcsm dcsm;
  Result<lang::Program> program = lang::Parser::ParseProgram("");
  Result<lang::Query> query = lang::Parser::ParseQuery("?- in(X, d:f()).");
  Executor executor(&fx.registry, &dcsm, ExecutorOptions{});
  ASSERT_TRUE(executor.Execute(*program, *query).ok());
  EXPECT_EQ(dcsm.database().TotalRecords(), 1u);
  const std::vector<dcsm::CostRecord>* group =
      dcsm.database().GetGroup(dcsm::CallGroupKey{"d", "f", 0});
  ASSERT_NE(group, nullptr);
  EXPECT_DOUBLE_EQ((*group)[0].cost.t_all_ms, 4.0);
  EXPECT_DOUBLE_EQ((*group)[0].cost.cardinality, 1.0);
}

}  // namespace
}  // namespace hermes::engine
