#include "dcsm/cost_vector_db.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace hermes::dcsm {
namespace {

DomainCall P(const std::string& a) {
  return DomainCall{"d1", "p_bf", {Value::Str(a)}};
}

lang::DomainCallSpec Pattern(const std::string& text) {
  Result<lang::DomainCallSpec> spec = lang::Parser::ParseCallPattern(text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return *spec;
}

/// Loads the paper's table (T16): statistics of d1:p_bf calls.
///   A='a': Ta 2.00, 2.20 (Card 2, 2); A='c': 2.80, 2.84 (Card 3, 3).
void LoadT16(CostVectorDatabase* db) {
  db->RecordExecution(P("a"), CostVector(0.5, 2.00, 2));
  db->RecordExecution(P("a"), CostVector(0.5, 2.20, 2));
  db->RecordExecution(P("c"), CostVector(0.6, 2.80, 3));
  db->RecordExecution(P("c"), CostVector(0.6, 2.84, 3));
}

TEST(CostVectorDbTest, RecordGroupsByDomainFunctionArity) {
  CostVectorDatabase db;
  LoadT16(&db);
  db.RecordExecution(DomainCall{"d2", "q_bf", {Value::Str("b")}},
                     CostVector(1, 5, 4));
  EXPECT_EQ(db.TotalRecords(), 5u);
  EXPECT_EQ(db.Groups().size(), 2u);
  const std::vector<CostRecord>* group =
      db.GetGroup(CallGroupKey{"d1", "p_bf", 1});
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->size(), 4u);
  EXPECT_EQ(db.GetGroup(CallGroupKey{"d1", "p_bf", 2}), nullptr);
}

TEST(CostVectorDbTest, RecordTimesAreMonotone) {
  CostVectorDatabase db;
  LoadT16(&db);
  const std::vector<CostRecord>* group =
      db.GetGroup(CallGroupKey{"d1", "p_bf", 1});
  ASSERT_NE(group, nullptr);
  for (size_t i = 1; i < group->size(); ++i) {
    EXPECT_GT((*group)[i].record_time, (*group)[i - 1].record_time);
  }
}

TEST(CostVectorDbTest, PaperExampleConstantEstimate) {
  // Section 6.1: the cost of d1:p_bf('a') is the average of the two 'a'
  // entries: (2.00 + 2.20) / 2 = 2.10.
  CostVectorDatabase db;
  LoadT16(&db);
  Result<Aggregate> agg = db.Estimate(Pattern("d1:p_bf('a')"));
  ASSERT_TRUE(agg.ok()) << agg.status();
  EXPECT_DOUBLE_EQ(agg->cost.t_all_ms, 2.10);
  EXPECT_EQ(agg->matched, 2u);
  EXPECT_EQ(agg->rows_scanned, 4u);
}

TEST(CostVectorDbTest, PaperExampleBoundEstimate) {
  // Section 6.1: the cost of d1:p_bf($b) is the average of all four
  // entries: (2.00 + 2.20 + 2.80 + 2.84) / 4 = 2.46.
  CostVectorDatabase db;
  LoadT16(&db);
  Result<Aggregate> agg = db.Estimate(Pattern("d1:p_bf($b)"));
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(agg->cost.t_all_ms, 2.46);
  EXPECT_DOUBLE_EQ(agg->cost.cardinality, 2.5);
  EXPECT_EQ(agg->matched, 4u);
}

TEST(CostVectorDbTest, UnmatchedConstantIsNotFound) {
  CostVectorDatabase db;
  LoadT16(&db);
  EXPECT_TRUE(db.Estimate(Pattern("d1:p_bf('zzz')")).status().IsNotFound());
  EXPECT_TRUE(db.Estimate(Pattern("d9:none($b)")).status().IsNotFound());
}

TEST(CostVectorDbTest, MissingMetricsAreSkippedInAverages) {
  CostVectorDatabase db;
  CostRecord r1;
  r1.call = P("a");
  r1.cost = CostVector(1.0, 10.0, 5);
  db.Record(r1);
  CostRecord r2;  // interactive-mode record: Ta and Card unknown
  r2.call = P("a");
  r2.cost = CostVector(2.0, 999.0, 999);
  r2.has_t_all = false;
  r2.has_cardinality = false;
  db.Record(r2);

  Result<Aggregate> agg = db.Estimate(Pattern("d1:p_bf('a')"));
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(agg->cost.t_first_ms, 1.5);  // both records
  EXPECT_DOUBLE_EQ(agg->cost.t_all_ms, 10.0);   // only the complete one
  EXPECT_DOUBLE_EQ(agg->cost.cardinality, 5.0);
  EXPECT_TRUE(agg->has_t_all);
}

TEST(CostVectorDbTest, RecencyWeightingFavorsNewRecords) {
  CostVectorDatabase db;
  db.RecordExecution(P("a"), CostVector(1, 100.0, 1));
  for (int i = 0; i < 10; ++i) {
    db.RecordExecution(P("a"), CostVector(1, 10.0, 1));
  }
  Result<Aggregate> flat = db.Estimate(Pattern("d1:p_bf('a')"), 0.0);
  Result<Aggregate> recent = db.Estimate(Pattern("d1:p_bf('a')"), 2.0);
  ASSERT_TRUE(flat.ok() && recent.ok());
  // Unweighted: (100 + 10*10)/11 ≈ 18.2. Recency-weighted: ≈ 10.
  EXPECT_GT(flat->cost.t_all_ms, 15.0);
  EXPECT_LT(recent->cost.t_all_ms, 11.0);
}

TEST(CostVectorDbTest, VariablePatternsRejected) {
  CostVectorDatabase db;
  LoadT16(&db);
  lang::DomainCallSpec bad;
  bad.domain = "d1";
  bad.function = "p_bf";
  bad.args.push_back(lang::Term::Var("X"));
  EXPECT_EQ(db.Estimate(bad).status().code(), StatusCode::kInvalidArgument);
}

TEST(CostVectorDbTest, ApproxBytesGrowsWithRecords) {
  CostVectorDatabase db;
  LoadT16(&db);
  size_t four = db.ApproxBytes();
  LoadT16(&db);
  EXPECT_GT(db.ApproxBytes(), four);
}

TEST(CostVectorDbTest, ClearEmptiesEverything) {
  CostVectorDatabase db;
  LoadT16(&db);
  db.Clear();
  EXPECT_EQ(db.TotalRecords(), 0u);
  EXPECT_TRUE(db.Groups().empty());
}

}  // namespace
}  // namespace hermes::dcsm
