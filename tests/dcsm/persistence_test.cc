#include "dcsm/persistence.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace hermes::dcsm {
namespace {

TEST(PersistenceTest, RoundTripPreservesEstimates) {
  CostVectorDatabase original;
  original.RecordExecution(
      DomainCall{"video", "frames_to_objects",
                 {Value::Str("rope"), Value::Int(4), Value::Int(47)}},
      CostVector(123.5, 456.25, 7));
  original.RecordExecution(
      DomainCall{"d1", "p_bf", {Value::Str("a")}}, CostVector(0.5, 2.0, 2));
  CostRecord partial;
  partial.call = DomainCall{"d1", "p_bf", {Value::Str("c")}};
  partial.cost = CostVector(0.25, 0, 0);
  partial.has_t_all = false;
  partial.has_cardinality = false;
  original.Record(std::move(partial));

  std::string dump = DumpStatistics(original);

  CostVectorDatabase restored;
  Result<size_t> loaded = LoadStatistics(dump, &restored);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 3u);
  EXPECT_EQ(restored.TotalRecords(), 3u);

  // Every estimate the original can answer, the restored database answers
  // identically — including missing-metric handling.
  for (const char* pattern_text :
       {"video:frames_to_objects('rope', 4, 47)", "d1:p_bf('a')",
        "d1:p_bf($b)", "d1:p_bf('c')"}) {
    Result<lang::DomainCallSpec> pattern =
        lang::Parser::ParseCallPattern(pattern_text);
    ASSERT_TRUE(pattern.ok());
    Result<Aggregate> a = original.Estimate(*pattern);
    Result<Aggregate> b = restored.Estimate(*pattern);
    ASSERT_EQ(a.ok(), b.ok()) << pattern_text;
    if (!a.ok()) continue;
    EXPECT_DOUBLE_EQ(a->cost.t_first_ms, b->cost.t_first_ms) << pattern_text;
    EXPECT_DOUBLE_EQ(a->cost.t_all_ms, b->cost.t_all_ms) << pattern_text;
    EXPECT_DOUBLE_EQ(a->cost.cardinality, b->cost.cardinality)
        << pattern_text;
    EXPECT_EQ(a->has_t_all, b->has_t_all) << pattern_text;
  }
}

TEST(PersistenceTest, StringValuesWithQuotesRoundTrip) {
  CostVectorDatabase original;
  original.RecordExecution(
      DomainCall{"d", "f", {Value::Str("it's | tricky")}},
      CostVector(1, 2, 3));
  CostVectorDatabase restored;
  // The '|' inside the quoted string would naively split the line; the
  // dump format survives because SplitString produces fields that fail to
  // parse... so this documents the limitation instead:
  Result<size_t> loaded = LoadStatistics(DumpStatistics(original), &restored);
  // Pipes inside string arguments are not supported by the line format.
  EXPECT_FALSE(loaded.ok());
}

TEST(PersistenceTest, CommentsAndBlanksIgnored) {
  CostVectorDatabase db;
  Result<size_t> loaded = LoadStatistics(
      "# header\n\n  \nd:f(1) | 1 | 2 | 3 | .\n# trailing\n", &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 1u);
}

TEST(PersistenceTest, MalformedLinesRejected) {
  CostVectorDatabase db;
  EXPECT_TRUE(LoadStatistics("d:f(1) | 1 | 2\n", &db).status().IsParseError());
  EXPECT_TRUE(
      LoadStatistics("d:f(1) | x | 2 | 3 | .\n", &db).status().IsParseError());
  EXPECT_TRUE(
      LoadStatistics("d:f($b) | 1 | 2 | 3 | .\n", &db).status().IsParseError());
  EXPECT_TRUE(
      LoadStatistics("not a call | 1 | 2 | 3 | .\n", &db).status()
          .IsParseError());
}

TEST(PersistenceTest, MissingMetricsDashRoundTrip) {
  CostVectorDatabase db;
  Result<size_t> loaded =
      LoadStatistics("d:f('x') | 5 | - | - | .\n", &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const std::vector<CostRecord>* group =
      db.GetGroup(CallGroupKey{"d", "f", 1});
  ASSERT_NE(group, nullptr);
  EXPECT_TRUE((*group)[0].has_t_first);
  EXPECT_FALSE((*group)[0].has_t_all);
  EXPECT_FALSE((*group)[0].has_cardinality);
}

}  // namespace
}  // namespace hermes::dcsm
