#include <gtest/gtest.h>

#include "dcsm/dcsm.h"
#include "lang/parser.h"

namespace hermes::dcsm {
namespace {

lang::DomainCallSpec Pattern(const std::string& text) {
  Result<lang::DomainCallSpec> spec = lang::Parser::ParseCallPattern(text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return *spec;
}

DomainCall Call(int a) { return DomainCall{"d", "f", {Value::Int(a)}}; }

TEST(IncrementalSummaryTest, FoldEqualsRebuild) {
  // Property: folding records one at a time yields the same table as a
  // full rebuild over the whole record set.
  Dcsm incremental;
  incremental.options().auto_update_summaries = true;
  Dcsm rebuilt;

  // Seed both with the same initial records and build summaries.
  for (int i = 0; i < 5; ++i) {
    incremental.RecordExecution(Call(i % 2), CostVector(1, 10.0 + i, 2));
    rebuilt.RecordExecution(Call(i % 2), CostVector(1, 10.0 + i, 2));
  }
  ASSERT_TRUE(incremental.BuildLosslessSummaries().ok());

  // Stream more records: incremental folds them in; `rebuilt` gets them
  // recorded and summarized from scratch at the end.
  for (int i = 5; i < 30; ++i) {
    incremental.RecordExecution(Call(i % 2), CostVector(1, 10.0 + i, 2));
    rebuilt.RecordExecution(Call(i % 2), CostVector(1, 10.0 + i, 2));
  }
  ASSERT_TRUE(rebuilt.BuildLosslessSummaries().ok());

  incremental.options().use_raw_database = false;
  rebuilt.options().use_raw_database = false;
  for (const char* text : {"d:f(0)", "d:f(1)", "d:f($b)"}) {
    Result<CostEstimate> a = incremental.Cost(Pattern(text));
    Result<CostEstimate> b = rebuilt.Cost(Pattern(text));
    ASSERT_TRUE(a.ok() && b.ok()) << text;
    EXPECT_DOUBLE_EQ(a->cost.t_all_ms, b->cost.t_all_ms) << text;
    EXPECT_EQ(a->records_matched, b->records_matched) << text;
  }
}

TEST(IncrementalSummaryTest, OffByDefault) {
  Dcsm dcsm;
  dcsm.RecordExecution(Call(0), CostVector(1, 10, 2));
  ASSERT_TRUE(dcsm.BuildLosslessSummaries().ok());
  dcsm.RecordExecution(Call(0), CostVector(1, 90, 2));

  dcsm.options().use_raw_database = false;
  Result<CostEstimate> stale = dcsm.Cost(Pattern("d:f(0)"));
  ASSERT_TRUE(stale.ok());
  // Without auto-update the summary still reflects only the first record.
  EXPECT_DOUBLE_EQ(stale->cost.t_all_ms, 10.0);
}

TEST(IncrementalSummaryTest, NewDimensionValuesCreateRows) {
  Dcsm dcsm;
  dcsm.options().auto_update_summaries = true;
  dcsm.RecordExecution(Call(0), CostVector(1, 10, 2));
  ASSERT_TRUE(dcsm.BuildLosslessSummaries().ok());
  dcsm.RecordExecution(Call(7), CostVector(1, 70, 2));  // unseen value

  dcsm.options().use_raw_database = false;
  Result<CostEstimate> est = dcsm.Cost(Pattern("d:f(7)"));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->cost.t_all_ms, 70.0);
}

TEST(IncrementalSummaryTest, FoldIgnoresForeignRecords) {
  CostRecord foreign;
  foreign.call = DomainCall{"other", "g", {Value::Int(1)}};
  foreign.cost = CostVector(1, 1, 1);
  Result<SummaryTable> table = SummaryTable::Build(
      CallGroupKey{"d", "f", 1}, {}, {0});
  ASSERT_TRUE(table.ok());
  table->Fold(foreign);
  EXPECT_EQ(table->num_rows(), 0u);
}

}  // namespace
}  // namespace hermes::dcsm
