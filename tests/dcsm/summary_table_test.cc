#include "dcsm/summary_table.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace hermes::dcsm {
namespace {

lang::DomainCallSpec Pattern(const std::string& text) {
  Result<lang::DomainCallSpec> spec = lang::Parser::ParseCallPattern(text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return *spec;
}

/// The paper's table (T16) records for d1:p_bf.
std::vector<CostRecord> T16Records() {
  std::vector<CostRecord> out;
  auto add = [&out](const std::string& a, double ta, double card) {
    CostRecord r;
    r.call = DomainCall{"d1", "p_bf", {Value::Str(a)}};
    r.cost = CostVector(ta / 4, ta, card);
    out.push_back(r);
  };
  add("a", 2.00, 2);
  add("a", 2.20, 2);
  add("c", 2.80, 3);
  add("c", 2.84, 3);
  return out;
}

CallGroupKey T16Key() { return CallGroupKey{"d1", "p_bf", 1}; }

TEST(SummaryTableTest, LosslessBuildMatchesPaperT20) {
  // Figure 3's table (T20): the 'a' rows aggregate to Ta 2.10 with l=2,
  // the 'c' rows to Ta 2.82 with l=2.
  Result<SummaryTable> table =
      SummaryTable::Build(T16Key(), T16Records(), {0});
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_TRUE(table->IsLossless());
  EXPECT_EQ(table->num_rows(), 2u);

  const SummaryRow* row_a = table->Lookup({Value::Str("a")});
  ASSERT_NE(row_a, nullptr);
  EXPECT_DOUBLE_EQ(row_a->Mean().t_all_ms, 2.10);
  EXPECT_DOUBLE_EQ(row_a->Mean().cardinality, 2.0);
  EXPECT_EQ(row_a->l, 2u);

  const SummaryRow* row_c = table->Lookup({Value::Str("c")});
  ASSERT_NE(row_c, nullptr);
  EXPECT_DOUBLE_EQ(row_c->Mean().t_all_ms, 2.82);
}

TEST(SummaryTableTest, LosslessAnswersSameAsRawForAllQuestions) {
  // The defining property of lossless summarization (Section 6.2.1): any
  // statistics question answers identically on the summary and the raw
  // records.
  CostVectorDatabase db;
  for (const CostRecord& r : T16Records()) db.Record(CostRecord(r));
  Result<SummaryTable> table =
      SummaryTable::Build(T16Key(), T16Records(), {0});
  ASSERT_TRUE(table.ok());

  for (const char* pattern_text : {"d1:p_bf('a')", "d1:p_bf('c')",
                                   "d1:p_bf($b)"}) {
    lang::DomainCallSpec pattern = Pattern(pattern_text);
    Result<Aggregate> raw = db.Estimate(pattern);
    Result<Aggregate> summarized = table->EstimateForPattern(pattern);
    ASSERT_TRUE(raw.ok() && summarized.ok()) << pattern_text;
    EXPECT_DOUBLE_EQ(raw->cost.t_all_ms, summarized->cost.t_all_ms)
        << pattern_text;
    EXPECT_DOUBLE_EQ(raw->cost.cardinality, summarized->cost.cardinality)
        << pattern_text;
    EXPECT_EQ(raw->matched, summarized->matched) << pattern_text;
  }
}

TEST(SummaryTableTest, FullyLossyCollapsesToOneRow) {
  // Figure 4: dropping the dimension leaves a single averaged row.
  Result<SummaryTable> table = SummaryTable::Build(T16Key(), T16Records(), {});
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->IsLossless());
  EXPECT_EQ(table->num_rows(), 1u);
  const SummaryRow* row = table->Lookup({});
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ(row->Mean().t_all_ms, 2.46);
  EXPECT_DOUBLE_EQ(row->Mean().cardinality, 2.5);
  EXPECT_EQ(row->l, 4u);
}

TEST(SummaryTableTest, LossyCannotAnswerConstantQuestions) {
  Result<SummaryTable> table = SummaryTable::Build(T16Key(), T16Records(), {});
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->CanAnswer(Pattern("d1:p_bf('a')")));
  EXPECT_TRUE(table->CanAnswer(Pattern("d1:p_bf($b)")));
  EXPECT_FALSE(table->EstimateForPattern(Pattern("d1:p_bf('a')")).ok());
}

TEST(SummaryTableTest, LossyAnswerForBoundPatternMatchesRawAverage) {
  Result<SummaryTable> table = SummaryTable::Build(T16Key(), T16Records(), {});
  ASSERT_TRUE(table.ok());
  Result<Aggregate> agg = table->EstimateForPattern(Pattern("d1:p_bf($b)"));
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(agg->cost.t_all_ms, 2.46);
  EXPECT_EQ(agg->matched, 4u);
}

TEST(SummaryTableTest, MultiDimensionPartialRetention) {
  // d:f(A, B) with only position 0 retained (Example 6.2's dropping of
  // never-instantiable positions).
  std::vector<CostRecord> records;
  auto add = [&records](int a, int b, double ta) {
    CostRecord r;
    r.call = DomainCall{"d", "f", {Value::Int(a), Value::Int(b)}};
    r.cost = CostVector(ta / 2, ta, 1);
    records.push_back(r);
  };
  add(1, 10, 4.0);
  add(1, 20, 6.0);
  add(2, 10, 10.0);
  CallGroupKey key{"d", "f", 2};
  Result<SummaryTable> table = SummaryTable::Build(key, records, {0});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);

  // Constant at the retained position: answerable.
  Result<Aggregate> agg = table->EstimateForPattern(Pattern("d:f(1, $b)"));
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(agg->cost.t_all_ms, 5.0);
  // Constant at the dropped position: not answerable.
  EXPECT_FALSE(table->EstimateForPattern(Pattern("d:f($b, 10)")).ok());
}

TEST(SummaryTableTest, DimensionOutOfRangeRejected) {
  EXPECT_FALSE(SummaryTable::Build(T16Key(), T16Records(), {3}).ok());
}

TEST(SummaryTableTest, ApproxBytesSmallerThanRawForRepeatedArgs) {
  // 100 records over 2 distinct argument values: the summary must be far
  // smaller than the raw statistics.
  std::vector<CostRecord> records;
  CostVectorDatabase db;
  for (int i = 0; i < 100; ++i) {
    CostRecord r;
    r.call = DomainCall{"d1", "p_bf", {Value::Str(i % 2 ? "a" : "c")}};
    r.cost = CostVector(1, 2, 3);
    records.push_back(r);
    db.Record(CostRecord(r));
  }
  Result<SummaryTable> table = SummaryTable::Build(T16Key(), records, {0});
  ASSERT_TRUE(table.ok());
  EXPECT_LT(table->ApproxBytes(), db.ApproxBytes() / 10);
}

TEST(SummaryTableTest, MissingMetricsPropagate) {
  std::vector<CostRecord> records;
  CostRecord r;
  r.call = DomainCall{"d1", "p_bf", {Value::Str("a")}};
  r.cost = CostVector(1.0, 0.0, 0.0);
  r.has_t_all = false;
  r.has_cardinality = false;
  records.push_back(r);
  Result<SummaryTable> table = SummaryTable::Build(T16Key(), records, {0});
  ASSERT_TRUE(table.ok());
  Result<Aggregate> agg = table->EstimateForPattern(Pattern("d1:p_bf('a')"));
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(agg->has_t_first);
  EXPECT_FALSE(agg->has_t_all);
  EXPECT_FALSE(agg->has_cardinality);
}

}  // namespace
}  // namespace hermes::dcsm
