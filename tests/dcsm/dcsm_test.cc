#include "dcsm/dcsm.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "relational/relational_domain.h"
#include "testbed/scenario.h"

namespace hermes::dcsm {
namespace {

lang::DomainCallSpec Pattern(const std::string& text) {
  Result<lang::DomainCallSpec> spec = lang::Parser::ParseCallPattern(text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return *spec;
}

/// Populates the Example 6.3 situation: a three-argument call d:f(A, B, C).
void LoadThreeArg(Dcsm* dcsm) {
  auto rec = [dcsm](int a, int b, int c, double ta) {
    dcsm->RecordExecution(
        DomainCall{"d", "f", {Value::Int(a), Value::Int(b), Value::Int(c)}},
        CostVector(ta / 3, ta, 1));
  };
  rec(1, 10, 2, 6.0);
  rec(1, 20, 2, 8.0);
  rec(1, 10, 3, 12.0);
  rec(2, 10, 2, 20.0);
}

TEST(DcsmTest, ExactRawEstimate) {
  Dcsm dcsm;
  LoadThreeArg(&dcsm);
  Result<CostEstimate> est = dcsm.Cost(Pattern("d:f(1, 10, 2)"));
  ASSERT_TRUE(est.ok()) << est.status();
  EXPECT_DOUBLE_EQ(est->cost.t_all_ms, 6.0);
  EXPECT_EQ(est->source, "raw");
}

TEST(DcsmTest, RelaxationDropsConstantsUntilMatch) {
  // Example 6.3's flavor: d:f(A, $b, 2) with no exact match for A=9 must
  // relax to $b at position 0 and average the C=2 records.
  Dcsm dcsm;
  LoadThreeArg(&dcsm);
  Result<CostEstimate> est = dcsm.Cost(Pattern("d:f(9, $b, 2)"));
  ASSERT_TRUE(est.ok());
  // Records with C=2: 6.0, 8.0, 20.0 → 11.333...
  EXPECT_NEAR(est->cost.t_all_ms, 34.0 / 3.0, 1e-9);
}

TEST(DcsmTest, FullyRelaxedFallsBackToGlobalAverage) {
  Dcsm dcsm;
  LoadThreeArg(&dcsm);
  Result<CostEstimate> est = dcsm.Cost(Pattern("d:f(9, 99, 7)"));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->cost.t_all_ms, (6 + 8 + 12 + 20) / 4.0);
}

TEST(DcsmTest, DefaultWhenNoStatistics) {
  Dcsm dcsm;
  Result<CostEstimate> est = dcsm.Cost(Pattern("ghost:none($b)"));
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->source, "default");
  DcsmOptions strict;
  strict.allow_default = false;
  Dcsm picky(strict);
  EXPECT_TRUE(picky.Cost(Pattern("ghost:none($b)")).status().IsNotFound());
}

TEST(DcsmTest, SummaryPreferredOverRawAndCheaper) {
  Dcsm dcsm;
  LoadThreeArg(&dcsm);
  ASSERT_TRUE(dcsm.BuildLosslessSummaries().ok());
  Result<CostEstimate> est = dcsm.Cost(Pattern("d:f(1, 10, 2)"));
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->source, "summary");
  EXPECT_DOUBLE_EQ(est->cost.t_all_ms, 6.0);

  // The summary path must simulate less lookup time than raw aggregation.
  Dcsm raw_only;
  LoadThreeArg(&raw_only);
  Result<CostEstimate> raw = raw_only.Cost(Pattern("d:f(1, 10, 2)"));
  ASSERT_TRUE(raw.ok());
  EXPECT_LT(est->lookup_ms, raw->lookup_ms);
}

TEST(DcsmTest, LossySummariesLoseConstantResolution) {
  Dcsm dcsm;
  dcsm.options().use_raw_database = false;
  LoadThreeArg(&dcsm);
  ASSERT_TRUE(dcsm.BuildFullyLossySummaries().ok());
  // Constants cannot be honored: everything falls to the global average.
  Result<CostEstimate> est = dcsm.Cost(Pattern("d:f(1, 10, 2)"));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->cost.t_all_ms, 11.5);
  EXPECT_EQ(est->source, "summary");
}

TEST(DcsmTest, LosslessSummaryKeepsConstantResolution) {
  Dcsm dcsm;
  dcsm.options().use_raw_database = false;
  LoadThreeArg(&dcsm);
  ASSERT_TRUE(dcsm.BuildLosslessSummaries().ok());
  Result<CostEstimate> est = dcsm.Cost(Pattern("d:f(2, 10, 2)"));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->cost.t_all_ms, 20.0);
}

TEST(DcsmTest, InstantiableArgsFromProgram) {
  // Example 6.2: positions bound only to body-local variables can never be
  // constants at rewrite time and may be dropped.
  Result<lang::Program> program = lang::Parser::ParseProgram(R"(
    m(A, C) :- p(A, B) & q(B, C).
    p(A, B) :- in(B, d1:p_bf(A)).
    q(B, C) :- in(C, d2:q_bf(B)).
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  // d1:p_bf's argument is the head variable A of rule p: instantiable.
  EXPECT_EQ(Dcsm::InstantiableArgs(*program, CallGroupKey{"d1", "p_bf", 1}),
            (std::vector<size_t>{0}));
  // d2:q_bf's argument is B — head variable of q, so instantiable too.
  EXPECT_EQ(Dcsm::InstantiableArgs(*program, CallGroupKey{"d2", "q_bf", 1}),
            (std::vector<size_t>{0}));

  // But if the predicates are "hidden" behind m (the paper's assumption),
  // B never surfaces: model that with a rule whose body variable stays
  // local.
  Result<lang::Program> hidden = lang::Parser::ParseProgram(R"(
    m(A, C) :- in(B, d1:p_bf(A)) & in(C, d2:q_bf(B)).
  )");
  ASSERT_TRUE(hidden.ok());
  EXPECT_EQ(Dcsm::InstantiableArgs(*hidden, CallGroupKey{"d2", "q_bf", 1}),
            (std::vector<size_t>{}));
  EXPECT_EQ(Dcsm::InstantiableArgs(*hidden, CallGroupKey{"d1", "p_bf", 1}),
            (std::vector<size_t>{0}));
}

TEST(DcsmTest, BuildSummariesForProgramDropsHiddenDims) {
  Result<lang::Program> hidden = lang::Parser::ParseProgram(
      "m(A, C) :- in(B, d1:p_bf(A)) & in(C, d2:q_bf(B)).");
  ASSERT_TRUE(hidden.ok());
  Dcsm dcsm;
  dcsm.RecordExecution(DomainCall{"d2", "q_bf", {Value::Str("b1")}},
                       CostVector(1, 4, 2));
  dcsm.RecordExecution(DomainCall{"d2", "q_bf", {Value::Str("b2")}},
                       CostVector(1, 8, 4));
  ASSERT_TRUE(dcsm.BuildSummariesForProgram(*hidden).ok());
  const std::vector<SummaryTable>* tables =
      dcsm.SummariesFor(CallGroupKey{"d2", "q_bf", 1});
  ASSERT_NE(tables, nullptr);
  ASSERT_EQ(tables->size(), 1u);
  EXPECT_TRUE((*tables)[0].dims().empty());
  EXPECT_EQ((*tables)[0].num_rows(), 1u);
}

TEST(DcsmTest, NativeModelTakesPrecedence) {
  auto db = testbed::MakeCastDatabase();
  auto domain = std::make_shared<relational::RelationalDomain>(
      "ingres", db, relational::RelationalCostParams{},
      /*provide_cost_model=*/true);
  Dcsm dcsm;
  ASSERT_TRUE(dcsm.RegisterNativeModel("relation", domain).ok());
  // Even with contradictory cached statistics, the native model answers.
  dcsm.RecordExecution(DomainCall{"relation", "all", {Value::Str("cast")}},
                       CostVector(1000, 99999, 42));
  Result<CostEstimate> est = dcsm.Cost(Pattern("relation:all('cast')"));
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->source, "native:relation");
  EXPECT_DOUBLE_EQ(est->cost.cardinality, 9.0);
}

TEST(DcsmTest, NativeModelRegistrationRequiresCostModel) {
  auto db = testbed::MakeCastDatabase();
  auto plain = std::make_shared<relational::RelationalDomain>("ingres", db);
  Dcsm dcsm;
  EXPECT_FALSE(dcsm.RegisterNativeModel("relation", plain).ok());
}

TEST(DcsmTest, SummaryAccountingReportsFootprint) {
  Dcsm dcsm;
  LoadThreeArg(&dcsm);
  EXPECT_EQ(dcsm.TotalSummaryRows(), 0u);
  ASSERT_TRUE(dcsm.BuildLosslessSummaries().ok());
  EXPECT_EQ(dcsm.TotalSummaryRows(), 4u);  // 4 distinct argument triples
  EXPECT_GT(dcsm.TotalSummaryBytes(), 0u);
  ASSERT_TRUE(dcsm.BuildFullyLossySummaries().ok());
  EXPECT_EQ(dcsm.TotalSummaryRows(), 5u);  // + the one-row lossy table
  dcsm.ClearSummaries();
  EXPECT_EQ(dcsm.TotalSummaryRows(), 0u);
}

TEST(DcsmTest, VariablePatternRejected) {
  Dcsm dcsm;
  lang::DomainCallSpec bad;
  bad.domain = "d";
  bad.function = "f";
  bad.args.push_back(lang::Term::Var("X"));
  EXPECT_EQ(dcsm.Cost(bad).status().code(), StatusCode::kInvalidArgument);
}

TEST(DcsmTest, MostSpecificSummaryWins) {
  // With both a lossless and a fully-lossy table, a constant pattern uses
  // the lossless one.
  Dcsm dcsm;
  dcsm.options().use_raw_database = false;
  LoadThreeArg(&dcsm);
  ASSERT_TRUE(dcsm.BuildLosslessSummaries().ok());
  ASSERT_TRUE(dcsm.BuildFullyLossySummaries().ok());
  Result<CostEstimate> est = dcsm.Cost(Pattern("d:f(2, 10, 2)"));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->cost.t_all_ms, 20.0);  // not the 11.5 global mean
}

}  // namespace
}  // namespace hermes::dcsm
