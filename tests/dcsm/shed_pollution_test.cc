// Shed calls must not pollute the DCSM: a branch the overload limiter
// refused never ran, so it must contribute neither a drift observation
// (its "latency" would be a lie that walks the EWMA toward zero and trips
// drift_exceeded on the next honest sample) nor an execution statistic.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dcsm/drift.h"
#include "engine/mediator.h"
#include "testbed/topology.h"

namespace hermes {
namespace {

std::unique_ptr<Mediator> SheddingMediator() {
  auto med = std::make_unique<Mediator>();
  testbed::TopologyOptions topo;
  topo.num_sites = 4;
  topo.with_failover_pairs = false;
  EXPECT_TRUE(testbed::SetupOverloadTopology(med.get(), topo).ok());
  med->set_per_query_network_rng(true);
  med->set_async_execution(true);  // branches share one open instant

  overload::OverloadPolicy policy;
  policy.limiter.enabled = true;
  policy.limiter.initial_limit = 1.0;
  policy.limiter.min_limit = 1.0;
  policy.limiter.additive_increase = 0.0;  // pinned: 1 slot, ever
  EXPECT_TRUE(med->EnableOverloadControl(policy, {}).ok());
  EXPECT_TRUE(med->EnableDiagnostics({}).ok());
  return med;
}

// Seeds the DCSM with one real statistic per domain: the drift tracker
// deliberately skips estimates whose only source is the default placeholder,
// so a cold model would record nothing and the pollution assertions would
// pass vacuously. Each warmup is a fanout-1 query (one call, never shed);
// its own observation is skipped (the estimate is still default when the
// call is costed), so warmups leave observations() at zero.
void WarmEachDomain(Mediator* med, const testbed::TopologyInfo& info,
                    const QueryOptions& options) {
  for (uint64_t k = 0; k < info.domains.size(); ++k) {
    // 1000+k keeps the domain rotation (1000 % 4 == 0) but moves the warmup
    // argument far past anything the shed queries ask for, so no later
    // branch is quietly served from the answer cache instead of the wire.
    Result<QueryResult> res =
        med->Query(testbed::TopologyQuery(info, 1000 + k, /*fanout=*/1),
                   options);
    ASSERT_TRUE(res.ok()) << res.status();
    ASSERT_EQ(res->metrics.load_shed, 0u);
  }
  ASSERT_EQ(med->drift_tracker()->observations(), 0u);
}

TEST(ShedPollutionTest, ShedBranchesLeaveNoDriftObservations) {
  std::unique_ptr<Mediator> med = SheddingMediator();
  testbed::TopologyInfo info;
  info.domains = {"s0", "s1", "s2", "s3"};

  QueryOptions options;
  options.use_optimizer = false;
  options.record_statistics = true;
  options.partial_results = true;
  WarmEachDomain(med.get(), info, options);

  // Four same-site branches at one simulated instant against a 1-slot
  // window: one runs, three are shed as lost sources.
  Result<QueryResult> res =
      med->Query(testbed::TopologyQuery(info, 0, /*fanout=*/4), options);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->completeness, QueryCompleteness::kPartial);
  EXPECT_EQ(res->metrics.load_shed, 3u);

  // Exactly the one executed call was observed — the shed branches are
  // invisible to the drift EWMAs and trip nothing.
  dcsm::DriftTracker* drift = med->drift_tracker();
  ASSERT_NE(drift, nullptr);
  EXPECT_EQ(drift->observations(), 1u);
  EXPECT_EQ(drift->exceeded_events(), 0u);
}

TEST(ShedPollutionTest, RepeatedShedsNeverTripTheDriftHook) {
  std::unique_ptr<Mediator> med = SheddingMediator();
  // Only s0 — the fast tier, availability 1.0. The flakier tiers can fail
  // an admitted branch, which frees the 1-slot window mid-instant and lets
  // a second branch through; pinning to the reliable tier keeps the
  // one-admitted/three-shed arithmetic exact across all eight queries.
  testbed::TopologyInfo info;
  info.domains = {"s0"};

  QueryOptions options;
  options.use_optimizer = false;
  options.record_statistics = true;
  options.partial_results = true;
  WarmEachDomain(med.get(), info, options);

  uint64_t shed_total = 0;
  for (uint64_t k = 0; k < 8; ++k) {
    Result<QueryResult> res =
        med->Query(testbed::TopologyQuery(info, k, /*fanout=*/4), options);
    ASSERT_TRUE(res.ok()) << res.status();
    shed_total += res->metrics.load_shed;
  }
  EXPECT_EQ(shed_total, 8u * 3u);
  dcsm::DriftTracker* drift = med->drift_tracker();
  ASSERT_NE(drift, nullptr);
  // One honest observation per query; a whole run of shedding moved no
  // EWMA and flagged no group.
  EXPECT_EQ(drift->observations(), 8u);
  EXPECT_EQ(drift->exceeded_events(), 0u);
  EXPECT_TRUE(med->DriftReport().Exceeded().empty());
}

}  // namespace
}  // namespace hermes
