// DriftTracker warm-up semantics: the EWMA seeds from the *trimmed mean*
// of the first min_samples observations, so a single outlier during
// warm-up cannot trip drift_exceeded (the regression this pins: the first
// sample used to seed the EWMA at full weight, so one bad draw flagged the
// group — and would now invalidate every dependent plan-cache entry).

#include "dcsm/drift.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dcsm/dcsm.h"
#include "lang/parser.h"

namespace hermes::dcsm {
namespace {

lang::DomainCallSpec Pattern(const std::string& text) {
  Result<lang::DomainCallSpec> spec = lang::Parser::ParseCallPattern(text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return *spec;
}

/// Gives `dcsm` one real statistic, so Cost("d:f(1)") has a non-default
/// source of Ta=10, card=4 (drift skips default-only estimates).
void Seed(Dcsm* dcsm) {
  dcsm->RecordExecution(DomainCall{"d", "f", {Value::Int(1)}},
                        CostVector(5.0, 10.0, 4.0));
}

struct HookLog {
  std::vector<std::string> fired;

  DriftTracker::ExceededHook hook() {
    return [this](const std::string& site, const std::string& domain,
                  const std::string& adorn) {
      fired.push_back(site + "/" + domain + "/" + adorn);
    };
  }
};

TEST(DriftWarmupTest, OneOutlierAmongWarmupSamplesDoesNotTrip) {
  Dcsm dcsm;
  Seed(&dcsm);
  DriftOptions options;
  options.threshold = 1.0;
  options.min_samples = 3;
  DriftTracker drift(&dcsm, options);
  HookLog log;
  drift.set_exceeded_hook(log.hook());

  // First observation is wildly off (20× the estimate); the next two are
  // dead on. The trimmed mean drops the outlier, so the group seeds calm.
  drift.Observe(Pattern("d:f(1)"), "c", CostVector(100.0, 200.0, 4.0), 0.0,
                nullptr);
  drift.Observe(Pattern("d:f(1)"), "c", CostVector(5.0, 10.0, 4.0), 1.0,
                nullptr);
  drift.Observe(Pattern("d:f(1)"), "c", CostVector(5.0, 10.0, 4.0), 2.0,
                nullptr);

  EXPECT_EQ(drift.observations(), 3u);
  EXPECT_EQ(drift.exceeded_events(), 0u);
  EXPECT_TRUE(drift.Report().Exceeded().empty());
  EXPECT_TRUE(log.fired.empty());
}

TEST(DriftWarmupTest, SustainedErrorStillTripsAfterWarmup) {
  Dcsm dcsm;
  Seed(&dcsm);
  DriftOptions options;
  options.threshold = 1.0;
  options.min_samples = 3;
  DriftTracker drift(&dcsm, options);
  drift.SetSite("d", "umd");
  HookLog log;
  drift.set_exceeded_hook(log.hook());

  // Every observation is 20× the estimate: trimming one sample does not
  // rescue the seed, and the group flags as soon as warm-up completes.
  for (int i = 0; i < 3; ++i) {
    drift.Observe(Pattern("d:f(1)"), "c", CostVector(100.0, 200.0, 4.0),
                  static_cast<double>(i), nullptr);
  }
  EXPECT_EQ(drift.exceeded_events(), 1u);
  ASSERT_EQ(drift.Report().Exceeded().size(), 1u);
  ASSERT_EQ(log.fired.size(), 1u);
  EXPECT_EQ(log.fired[0], "umd/d/c");

  // The flag is edge-triggered: staying past the threshold does not refire
  // the hook (re-invalidation storms on every call would thrash the cache).
  drift.Observe(Pattern("d:f(1)"), "c", CostVector(100.0, 200.0, 4.0), 3.0,
                nullptr);
  EXPECT_EQ(drift.exceeded_events(), 1u);
  EXPECT_EQ(log.fired.size(), 1u);
}

TEST(DriftWarmupTest, MinSamplesOneKeepsTheEagerBehavior) {
  Dcsm dcsm;
  Seed(&dcsm);
  DriftOptions options;
  options.threshold = 1.0;
  options.min_samples = 1;  // opt back into flag-on-first-sample
  DriftTracker drift(&dcsm, options);
  HookLog log;
  drift.set_exceeded_hook(log.hook());

  drift.Observe(Pattern("d:f(1)"), "c", CostVector(100.0, 200.0, 4.0), 0.0,
                nullptr);
  EXPECT_EQ(drift.exceeded_events(), 1u);
  EXPECT_EQ(log.fired.size(), 1u);
}

TEST(DriftWarmupTest, GroupsWarmUpIndependently) {
  Dcsm dcsm;
  Seed(&dcsm);
  dcsm.RecordExecution(DomainCall{"e", "g", {Value::Int(1)}},
                       CostVector(5.0, 10.0, 4.0));
  DriftOptions options;
  options.threshold = 1.0;
  options.min_samples = 2;
  DriftTracker drift(&dcsm, options);
  HookLog log;
  drift.set_exceeded_hook(log.hook());

  // d:f drifts hard; e:g stays calm. Only the drifted group flags.
  for (int i = 0; i < 2; ++i) {
    drift.Observe(Pattern("d:f(1)"), "c", CostVector(100.0, 200.0, 4.0),
                  static_cast<double>(i), nullptr);
    drift.Observe(Pattern("e:g(1)"), "c", CostVector(5.0, 10.0, 4.0),
                  static_cast<double>(i), nullptr);
  }
  ASSERT_EQ(log.fired.size(), 1u);
  EXPECT_EQ(log.fired[0], "local/d/c");
  EXPECT_EQ(drift.Report().Exceeded().size(), 1u);
}

}  // namespace
}  // namespace hermes::dcsm
