#include "spatial/spatial_domain.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hermes::spatial {
namespace {

DomainCall RangeCall(const std::string& file, double x, double y,
                     double dist) {
  return DomainCall{"spatial",
                    "range",
                    {Value::Str(file), Value::Double(x), Value::Double(y),
                     Value::Double(dist)}};
}

TEST(SpatialTest, RangeFindsExactPoints) {
  SpatialDomain d("spatial");
  d.PutFile("f", {{"a", 0, 0}, {"b", 3, 4}, {"c", 10, 10}});
  Result<CallOutput> out = d.Run(RangeCall("f", 0, 0, 5.0));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->answers.size(), 2u);  // a (dist 0) and b (dist 5, inclusive)
}

TEST(SpatialTest, GridIndexMatchesBruteForce) {
  // Property: the grid-indexed range query returns exactly the points a
  // brute-force distance check would.
  std::vector<Point> points = MakeUniformPoints(42, 500, 100, 100);
  SpatialDomain d("spatial");
  d.PutFile("f", points);
  struct Probe {
    double x, y, dist;
  };
  for (const Probe& p : {Probe{50, 50, 10}, Probe{0, 0, 30}, Probe{99, 99, 5},
                         Probe{50, 50, 200}, Probe{-10, -10, 5}}) {
    Result<CallOutput> out = d.Run(RangeCall("f", p.x, p.y, p.dist));
    ASSERT_TRUE(out.ok());
    size_t brute = 0;
    for (const Point& pt : points) {
      double dx = pt.x - p.x, dy = pt.y - p.y;
      if (dx * dx + dy * dy <= p.dist * p.dist) ++brute;
    }
    EXPECT_EQ(out->answers.size(), brute)
        << "probe (" << p.x << "," << p.y << ") dist " << p.dist;
  }
}

TEST(SpatialTest, CountRangeAgreesWithRange) {
  SpatialDomain d("spatial");
  d.PutFile("f", MakeUniformPoints(7, 200, 50, 50));
  Result<CallOutput> range = d.Run(RangeCall("f", 25, 25, 10));
  Result<CallOutput> count = d.Run(DomainCall{
      "spatial",
      "count_range",
      {Value::Str("f"), Value::Double(25), Value::Double(25),
       Value::Double(10)}});
  ASSERT_TRUE(range.ok() && count.ok());
  EXPECT_EQ(count->answers[0].as_int(),
            static_cast<int64_t>(range->answers.size()));
}

TEST(SpatialTest, ExtentReportsBoundingBox) {
  SpatialDomain d("spatial");
  d.PutFile("f", {{"a", 1, 2}, {"b", 9, 4}});
  Result<CallOutput> out =
      d.Run(DomainCall{"spatial", "extent", {Value::Str("f")}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out->answers[0].GetAttr("min_x"), Value::Double(1.0));
  EXPECT_EQ(*out->answers[0].GetAttr("max_x"), Value::Double(9.0));
}

TEST(SpatialTest, SectionFourInvariantPropertyHolds) {
  // The 100×100 'points' file: a range of 142 from its centre covers the
  // whole square, so any larger radius returns the identical answer set —
  // the paper's range-clamping equality invariant.
  SpatialDomain d("spatial");
  d.PutFile("points", MakeUniformPoints(11, 400, 100, 100));
  Result<CallOutput> clamped = d.Run(RangeCall("points", 50, 50, 142));
  Result<CallOutput> huge = d.Run(RangeCall("points", 50, 50, 10000));
  ASSERT_TRUE(clamped.ok() && huge.ok());
  EXPECT_EQ(clamped->answers.size(), 400u);
  EXPECT_EQ(huge->answers.size(), 400u);
}

TEST(SpatialTest, BiggerRangeCostsMore) {
  SpatialDomain d("spatial");
  d.PutFile("f", MakeUniformPoints(3, 2000, 1000, 1000));
  Result<CallOutput> small_q = d.Run(RangeCall("f", 500, 500, 10));
  Result<CallOutput> large_q = d.Run(RangeCall("f", 500, 500, 400));
  ASSERT_TRUE(small_q.ok() && large_q.ok());
  EXPECT_GT(large_q->all_ms, small_q->all_ms);
}

TEST(SpatialTest, NegativeDistanceRejected) {
  SpatialDomain d("spatial");
  d.PutFile("f", {{"a", 0, 0}});
  EXPECT_FALSE(d.Run(RangeCall("f", 0, 0, -1)).ok());
}

TEST(SpatialTest, MissingFileIsNotFound) {
  SpatialDomain d("spatial");
  EXPECT_TRUE(d.Run(RangeCall("ghost", 0, 0, 1)).status().IsNotFound());
}

TEST(SpatialTest, EmptyFileReturnsNothing) {
  SpatialDomain d("spatial");
  d.PutFile("empty", {});
  Result<CallOutput> out = d.Run(RangeCall("empty", 0, 0, 100));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->answers.empty());
}

}  // namespace
}  // namespace hermes::spatial
