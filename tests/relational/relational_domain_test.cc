#include "relational/relational_domain.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "testbed/scenario.h"

namespace hermes::relational {
namespace {

std::shared_ptr<RelationalDomain> MakeDomain(bool cost_model = false) {
  return std::make_shared<RelationalDomain>(
      "ingres", testbed::MakeCastDatabase(), RelationalCostParams{},
      cost_model);
}

DomainCall Call(const std::string& fn, ValueList args) {
  return DomainCall{"ingres", fn, std::move(args)};
}

TEST(RelationalDomainTest, AllReturnsEveryRowAsStruct) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(Call("all", {Value::Str("cast")}));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->answers.size(), 9u);
  EXPECT_TRUE(out->answers[0].is_struct());
  EXPECT_TRUE(out->answers[0].GetAttr("name").ok());
  EXPECT_GT(out->all_ms, 0.0);
  EXPECT_LE(out->first_ms, out->all_ms);
}

TEST(RelationalDomainTest, EqualSelectsMatchingRows) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(
      Call("equal", {Value::Str("cast"), Value::Str("role"),
                     Value::Str("rupert")}));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->answers.size(), 1u);
  EXPECT_EQ(*out->answers[0].GetAttr("name"), Value::Str("james stewart"));
}

TEST(RelationalDomainTest, SelectFamilyAgreesWithPredicate) {
  auto d = MakeDomain();
  struct Case {
    const char* fn;
    lang::RelOp op;
  };
  for (const Case& c :
       {Case{"select_lt", lang::RelOp::kLt}, Case{"select_le", lang::RelOp::kLe},
        Case{"select_gt", lang::RelOp::kGt}, Case{"select_ge", lang::RelOp::kGe},
        Case{"select_neq", lang::RelOp::kNeq},
        Case{"select_eq", lang::RelOp::kEq}}) {
    Result<CallOutput> out = d->Run(Call(
        c.fn, {Value::Str("cast"), Value::Str("role"), Value::Str("janet")}));
    ASSERT_TRUE(out.ok()) << c.fn << ": " << out.status();
    for (const Value& row : out->answers) {
      EXPECT_TRUE(lang::EvalRelOp(c.op, *row.GetAttr("role"),
                                  Value::Str("janet")))
          << c.fn;
    }
  }
}

TEST(RelationalDomainTest, ProjectAndDistinct) {
  auto d = MakeDomain();
  Result<CallOutput> proj =
      d->Run(Call("project", {Value::Str("cast"), Value::Str("role")}));
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->answers.size(), 9u);

  Result<CallOutput> dist =
      d->Run(Call("distinct", {Value::Str("cast"), Value::Str("role")}));
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->answers.size(), 9u);  // all roles distinct
}

TEST(RelationalDomainTest, CountReturnsSingleton) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(Call("count", {Value::Str("cast")}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers, AnswerSet{Value::Int(9)});
}

TEST(RelationalDomainTest, UnknownTableIsNotFound) {
  auto d = MakeDomain();
  EXPECT_TRUE(d->Run(Call("all", {Value::Str("ghost")})).status().IsNotFound());
}

TEST(RelationalDomainTest, UnknownFunctionIsNotFound) {
  auto d = MakeDomain();
  EXPECT_TRUE(
      d->Run(Call("frobnicate", {Value::Str("cast")})).status().IsNotFound());
}

TEST(RelationalDomainTest, WrongArityIsInvalidArgument) {
  auto d = MakeDomain();
  EXPECT_EQ(d->Run(Call("all", {})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(d->Run(Call("equal", {Value::Str("cast")})).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RelationalDomainTest, EmptyResultStillCostsScanTime) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(Call(
      "equal", {Value::Str("cast"), Value::Str("role"), Value::Str("nobody")}));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->answers.empty());
  EXPECT_GT(out->all_ms, 0.0);
  EXPECT_DOUBLE_EQ(out->first_ms, out->all_ms);
}

TEST(RelationalDomainTest, NoCostModelByDefault) {
  auto d = MakeDomain(false);
  EXPECT_FALSE(d->HasCostModel());
  Result<lang::DomainCallSpec> pattern =
      lang::Parser::ParseCallPattern("ingres:all('cast')");
  ASSERT_TRUE(pattern.ok());
  EXPECT_EQ(d->EstimateCost(*pattern).status().code(),
            StatusCode::kUnimplemented);
}

TEST(RelationalDomainTest, NativeCostModelPredictsCardinalities) {
  auto d = MakeDomain(true);
  EXPECT_TRUE(d->HasCostModel());

  Result<lang::DomainCallSpec> all =
      lang::Parser::ParseCallPattern("ingres:all('cast')");
  Result<CostVector> all_cost = d->EstimateCost(*all);
  ASSERT_TRUE(all_cost.ok()) << all_cost.status();
  EXPECT_DOUBLE_EQ(all_cost->cardinality, 9.0);

  // equal on 'role' (9 distinct values over 9 rows) → 1 expected row.
  Result<lang::DomainCallSpec> eq =
      lang::Parser::ParseCallPattern("ingres:equal('cast', 'role', $b)");
  Result<CostVector> eq_cost = d->EstimateCost(*eq);
  ASSERT_TRUE(eq_cost.ok()) << eq_cost.status();
  EXPECT_NEAR(eq_cost->cardinality, 1.0, 1e-9);

  // The estimate should be close to an actual execution's cost.
  Result<CallOutput> actual = d->Run(
      Call("equal", {Value::Str("cast"), Value::Str("role"),
                     Value::Str("rupert")}));
  ASSERT_TRUE(actual.ok());
  EXPECT_NEAR(eq_cost->t_all_ms, actual->all_ms, actual->all_ms * 0.5 + 0.1);
}

TEST(RelationalDomainTest, NativeCostModelNeedsConstantTable) {
  auto d = MakeDomain(true);
  Result<lang::DomainCallSpec> pattern =
      lang::Parser::ParseCallPattern("ingres:all($b)");
  EXPECT_FALSE(d->EstimateCost(*pattern).ok());
}

TEST(RelationalDomainTest, FunctionsListIsComplete) {
  auto d = MakeDomain();
  std::vector<FunctionInfo> fns = d->Functions();
  EXPECT_GE(fns.size(), 10u);
  bool has_equal = false;
  for (const FunctionInfo& fn : fns) has_equal |= fn.name == "equal";
  EXPECT_TRUE(has_equal);
}

}  // namespace
}  // namespace hermes::relational
