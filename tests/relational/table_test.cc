#include "relational/table.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hermes::relational {
namespace {

Schema TestSchema() {
  return Schema({{"name", ColumnType::kString},
                 {"role", ColumnType::kString},
                 {"salary", ColumnType::kInt}});
}

Table MakeCast() {
  Table t("cast", TestSchema());
  EXPECT_TRUE(t.Insert({Value::Str("stewart"), Value::Str("rupert"),
                        Value::Int(120)})
                  .ok());
  EXPECT_TRUE(
      t.Insert({Value::Str("dall"), Value::Str("brandon"), Value::Int(80)})
          .ok());
  EXPECT_TRUE(t.Insert({Value::Str("granger"), Value::Str("phillip"),
                        Value::Int(85)})
                  .ok());
  EXPECT_TRUE(t.Insert({Value::Str("stewart"), Value::Str("narrator"),
                        Value::Int(120)})
                  .ok());
  return t;
}

TEST(SchemaTest, ColumnIndexAndValidation) {
  Schema s = TestSchema();
  EXPECT_EQ(*s.ColumnIndex("role"), 1u);
  EXPECT_TRUE(s.ColumnIndex("ghost").status().IsNotFound());
  EXPECT_TRUE(s.ValidateRow({Value::Str("a"), Value::Str("b"), Value::Int(1)})
                  .ok());
  // Wrong arity.
  EXPECT_FALSE(s.ValidateRow({Value::Str("a")}).ok());
  // Wrong type.
  EXPECT_EQ(s.ValidateRow({Value::Str("a"), Value::Str("b"), Value::Str("c")})
                .code(),
            StatusCode::kTypeError);
}

TEST(SchemaTest, IntAcceptedInDoubleColumn) {
  Schema s({{"x", ColumnType::kDouble}});
  EXPECT_TRUE(s.ValidateRow({Value::Int(3)}).ok());
  EXPECT_FALSE(s.ValidateRow({Value::Str("3")}).ok());
}

TEST(TableTest, InsertAndScan) {
  Table t = MakeCast();
  EXPECT_EQ(t.num_rows(), 4u);
  Table::ScanResult all = t.FindAll();
  EXPECT_EQ(all.row_ids.size(), 4u);
  EXPECT_EQ(all.rows_examined, 4u);
}

TEST(TableTest, FindEqualWithoutIndexScansAll) {
  Table t = MakeCast();
  Result<Table::ScanResult> r = t.FindEqual("name", Value::Str("stewart"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids.size(), 2u);
  EXPECT_EQ(r->rows_examined, 4u);  // full scan
}

TEST(TableTest, FindEqualWithHashIndexProbes) {
  Table t = MakeCast();
  ASSERT_TRUE(t.CreateHashIndex("name").ok());
  Result<Table::ScanResult> r = t.FindEqual("name", Value::Str("stewart"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids.size(), 2u);
  EXPECT_LT(r->rows_examined, 4u);  // index probe, not a scan
}

TEST(TableTest, HashIndexRefreshesAfterInsert) {
  Table t = MakeCast();
  ASSERT_TRUE(t.CreateHashIndex("role").ok());
  ASSERT_TRUE(
      t.Insert({Value::Str("x"), Value::Str("rupert"), Value::Int(1)}).ok());
  Result<Table::ScanResult> r = t.FindEqual("role", Value::Str("rupert"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids.size(), 2u);
}

TEST(TableTest, FindCompareRange) {
  Table t = MakeCast();
  Result<Table::ScanResult> r =
      t.FindCompare("salary", lang::RelOp::kGe, Value::Int(85));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids.size(), 3u);
}

TEST(TableTest, OrderedIndexMatchesScanResults) {
  // Property: with and without the ordered index, comparison results agree.
  Rng rng(123);
  Table plain("t", Schema({{"v", ColumnType::kInt}}));
  Table indexed("t", Schema({{"v", ColumnType::kInt}}));
  for (int i = 0; i < 300; ++i) {
    Value v = Value::Int(rng.NextInRange(0, 50));
    ASSERT_TRUE(plain.Insert({v}).ok());
    ASSERT_TRUE(indexed.Insert({v}).ok());
  }
  ASSERT_TRUE(indexed.CreateOrderedIndex("v").ok());
  for (lang::RelOp op : {lang::RelOp::kLt, lang::RelOp::kLe, lang::RelOp::kGt,
                         lang::RelOp::kGe, lang::RelOp::kEq,
                         lang::RelOp::kNeq}) {
    for (int64_t pivot : {-1, 0, 13, 25, 50, 99}) {
      Result<Table::ScanResult> a =
          plain.FindCompare("v", op, Value::Int(pivot));
      Result<Table::ScanResult> b =
          indexed.FindCompare("v", op, Value::Int(pivot));
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(a->row_ids, b->row_ids)
          << "op=" << lang::RelOpName(op) << " pivot=" << pivot;
    }
  }
}

TEST(TableTest, RowAsStructAndList) {
  Table t = MakeCast();
  Value s = t.RowAsStruct(0);
  EXPECT_EQ(*s.GetAttr("name"), Value::Str("stewart"));
  EXPECT_EQ(*s.GetAttr("salary"), Value::Int(120));
  Value l = t.RowAsList(0);
  EXPECT_EQ(*l.GetIndex(2), Value::Str("rupert"));
}

TEST(TableTest, DistinctCount) {
  Table t = MakeCast();
  EXPECT_EQ(*t.DistinctCount("name"), 3u);
  EXPECT_EQ(*t.DistinctCount("role"), 4u);
  EXPECT_FALSE(t.DistinctCount("ghost").ok());
}

TEST(TableTest, UnknownColumnErrors) {
  Table t = MakeCast();
  EXPECT_FALSE(t.FindEqual("ghost", Value::Int(1)).ok());
  EXPECT_FALSE(t.CreateHashIndex("ghost").ok());
  EXPECT_FALSE(t.CreateOrderedIndex("ghost").ok());
}

}  // namespace
}  // namespace hermes::relational
