#include "relational/database.h"

#include <gtest/gtest.h>

namespace hermes::relational {
namespace {

TEST(DatabaseTest, CreateGetDrop) {
  Database db;
  Result<Table*> t = db.CreateTable("t", Schema({{"x", ColumnType::kInt}}));
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_TRUE(db.GetTable("t").ok());
  EXPECT_EQ(db.CreateTable("t", Schema(std::vector<Column>{})).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(db.DropTable("t").ok());
  EXPECT_FALSE(db.HasTable("t"));
  EXPECT_TRUE(db.DropTable("t").IsNotFound());
}

TEST(DatabaseTest, LoadCsvWithTypes) {
  Database db;
  Result<Table*> t = db.LoadCsv("people", R"(name:string,age:int,score:double
'ann smith',34,1.5
bob,40,2
)");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ((*t)->num_rows(), 2u);
  Value row0 = (*t)->RowAsStruct(0);
  EXPECT_EQ(*row0.GetAttr("name"), Value::Str("ann smith"));
  EXPECT_EQ(*row0.GetAttr("age"), Value::Int(34));
  EXPECT_EQ(*row0.GetAttr("score"), Value::Double(1.5));
  // Unquoted string and int-typed double field.
  Value row1 = (*t)->RowAsStruct(1);
  EXPECT_EQ(*row1.GetAttr("name"), Value::Str("bob"));
  EXPECT_EQ(*row1.GetAttr("score"), Value::Double(2.0));
}

TEST(DatabaseTest, LoadCsvDefaultTypeIsString) {
  Database db;
  Result<Table*> t = db.LoadCsv("t", "a,b\nx,y\n");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ((*t)->schema().column(0).type, ColumnType::kString);
}

TEST(DatabaseTest, LoadCsvSkipsBlankAndCommentLines) {
  Database db;
  Result<Table*> t = db.LoadCsv("t", "a:int\n\n# comment\n1\n\n2\n");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ((*t)->num_rows(), 2u);
}

TEST(DatabaseTest, LoadCsvBadArityFails) {
  Database db;
  EXPECT_FALSE(db.LoadCsv("t", "a:int,b:int\n1\n").ok());
}

TEST(DatabaseTest, LoadCsvBadTypeFails) {
  Database db;
  EXPECT_FALSE(db.LoadCsv("t", "a:int\nnot_a_number\n").ok());
  Database db2;
  EXPECT_FALSE(db2.LoadCsv("t", "a:frob\n1\n").ok());
}

TEST(DatabaseTest, LoadCsvBoolColumn) {
  Database db;
  Result<Table*> t = db.LoadCsv("t", "flag:bool\ntrue\n0\n");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ((*t)->row(0)[0], Value::Bool(true));
  EXPECT_EQ((*t)->row(1)[0], Value::Bool(false));
}

TEST(DatabaseTest, TableNamesSorted) {
  Database db;
  (void)db.CreateTable("zz", Schema(std::vector<Column>{}));
  (void)db.CreateTable("aa", Schema(std::vector<Column>{}));
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"aa", "zz"}));
}

}  // namespace
}  // namespace hermes::relational
