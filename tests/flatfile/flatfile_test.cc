#include "flatfile/flatfile_domain.h"

#include <gtest/gtest.h>

namespace hermes::flatfile {
namespace {

std::shared_ptr<FlatFileDomain> MakeDomain() {
  auto d = std::make_shared<FlatFileDomain>("files");
  d->PutFile("supplies", {
                             {Value::Str("h-22 fuel"), Value::Str("depot_north")},
                             {Value::Str("rations"), Value::Str("depot_north")},
                             {Value::Str("rations"), Value::Str("depot_south")},
                         });
  return d;
}

DomainCall Call(const std::string& fn, ValueList args) {
  return DomainCall{"files", fn, std::move(args)};
}

TEST(FlatFileTest, ScanReturnsRecordsAsLists) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(Call("scan", {Value::Str("supplies")}));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->answers.size(), 3u);
  EXPECT_EQ(*out->answers[0].GetIndex(1), Value::Str("h-22 fuel"));
}

TEST(FlatFileTest, MatchFiltersOnOneBasedField) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(Call(
      "match", {Value::Str("supplies"), Value::Int(1), Value::Str("rations")}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers.size(), 2u);
  // Field 2 match.
  out = d->Run(Call("match", {Value::Str("supplies"), Value::Int(2),
                              Value::Str("depot_north")}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers.size(), 2u);
}

TEST(FlatFileTest, FieldProjectsColumn) {
  auto d = MakeDomain();
  Result<CallOutput> out =
      d->Run(Call("field", {Value::Str("supplies"), Value::Int(2)}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers.size(), 3u);
  EXPECT_EQ(out->answers[2], Value::Str("depot_south"));
}

TEST(FlatFileTest, LinesCountsRecords) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(Call("lines", {Value::Str("supplies")}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers, AnswerSet{Value::Int(3)});
}

TEST(FlatFileTest, MissingFileIsNotFound) {
  auto d = MakeDomain();
  EXPECT_TRUE(d->Run(Call("scan", {Value::Str("ghost")})).status().IsNotFound());
}

TEST(FlatFileTest, ZeroFieldNumberRejected) {
  auto d = MakeDomain();
  EXPECT_FALSE(d->Run(Call("field", {Value::Str("supplies"), Value::Int(0)}))
                   .ok());
}

TEST(FlatFileTest, ScanCostScalesWithFileSize) {
  auto d = MakeDomain();
  std::vector<ValueList> big(1000, {Value::Int(1)});
  d->PutFile("big", std::move(big));
  Result<CallOutput> small_out =
      d->Run(Call("lines", {Value::Str("supplies")}));
  Result<CallOutput> big_out = d->Run(Call("lines", {Value::Str("big")}));
  ASSERT_TRUE(small_out.ok() && big_out.ok());
  EXPECT_GT(big_out->all_ms, small_out->all_ms);
}

TEST(FlatFileTest, AppendRecordCreatesAndGrowsFile) {
  auto d = MakeDomain();
  EXPECT_FALSE(d->HasFile("log"));
  d->AppendRecord("log", {Value::Int(1)});
  d->AppendRecord("log", {Value::Int(2)});
  EXPECT_TRUE(d->HasFile("log"));
  Result<CallOutput> out = d->Run(Call("lines", {Value::Str("log")}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers, AnswerSet{Value::Int(2)});
}

TEST(FlatFileTest, MatchOutOfRangeFieldMatchesNothing) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(Call(
      "match", {Value::Str("supplies"), Value::Int(9), Value::Str("x")}));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->answers.empty());
}

}  // namespace
}  // namespace hermes::flatfile
