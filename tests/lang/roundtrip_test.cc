// Property sweep: every construct the printer can emit, the parser
// re-reads to an identical AST (fixed point after one round trip).

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace hermes::lang {
namespace {

class RuleRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RuleRoundTrip, ParsePrintParseIsIdentity) {
  Result<Rule> first = Parser::ParseRule(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam() << ": " << first.status();
  std::string printed = first->ToString();
  Result<Rule> second = Parser::ParseRule(printed);
  ASSERT_TRUE(second.ok()) << printed << ": " << second.status();
  EXPECT_EQ(printed, second->ToString());
}

INSTANTIATE_TEST_SUITE_P(
    Constructs, RuleRoundTrip,
    ::testing::Values(
        // Facts and constants of every type.
        "p(1, -2, 2.5, 'str', sym, true, false, null).",
        "p([1, [2, 'x'], []]).",
        // Domain calls: zero args, nested structure in answers.
        "p(X) :- in(X, d:f()).",
        "p(X, Y) :- in(X, d1:p_ff()) & in(Y, d2:q_bf(X)).",
        // Attribute paths, positional and named, chained.
        "q(A) :- in(T, d:rows()) & =(A, T.name).",
        "q(A) :- in(T, d:rows()) & =(A, $ans.1.loc).",
        "q(A) :- in(T, d:rows()) & T.qty.1 >= 7.",
        // All comparison operators, both orientations.
        "r(X) :- in(X, d:f()) & X = 1 & X != 2 & X < 3 & X <= 4 & X > 0 & "
        "X >= -1.",
        // Membership checks (bound output term).
        "m(X) :- in(X, d:f()) & in(X, e:g()).",
        "m() :- in('fixed', d:f()).",
        // The paper's Section 2 rule.
        "routetosupplies(From, Sup, To, R) :- "
        "in(T, ingres:select_eq('inventory', item, Sup)) & =(T.loc, To) & "
        "in(R, terraindb:findrte(From, To))."));

class InvariantRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(InvariantRoundTrip, ParsePrintParseIsIdentity) {
  Result<Invariant> first = Parser::ParseInvariant(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam() << ": " << first.status();
  std::string printed = first->ToString();
  Result<Invariant> second = Parser::ParseInvariant(printed);
  ASSERT_TRUE(second.ok()) << printed << ": " << second.status();
  EXPECT_EQ(printed, second->ToString());
}

INSTANTIATE_TEST_SUITE_P(
    Constructs, InvariantRoundTrip,
    ::testing::Values(
        "=> d:f(X) = d:g(X).",
        "X > 142 => spatial:range('map1', X, Y, D) = "
        "spatial:range('points', X, Y, 142).",
        "V1 <= V2 => r:select_lt(T, A, V2) >= r:select_lt(T, A, V1).",
        "A != B & A < 10 => d:f(A, B) <= d:g(B, A).",
        "F2 <= F1 & L1 <= L2 => v:fto(V, F2, L2) >= v:fto(V, F1, L1)."));

class QueryRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(QueryRoundTrip, ParsePrintParseIsIdentity) {
  Result<Query> first = Parser::ParseQuery(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam() << ": " << first.status();
  std::string printed = first->ToString();
  Result<Query> second = Parser::ParseQuery(printed);
  ASSERT_TRUE(second.ok()) << printed << ": " << second.status();
  EXPECT_EQ(printed, second->ToString());
}

INSTANTIATE_TEST_SUITE_P(
    Constructs, QueryRoundTrip,
    ::testing::Values("?- m(a, C).",
                      "?- in(X, d:f(1, 'two', 3.5)) & X.size > 10.",
                      "?- q(A) & r(A, B) & B != A.",
                      "?- in([1, 2], d:f())."));

TEST(RoundTripTest, CallPatternsPreserveBoundMarkers) {
  for (const char* text :
       {"d:f(5, $b)", "d:f($b, $b, $b)", "video:size('rope')",
        "d:f(1.5, 'x', $b, [1, 2])"}) {
    Result<DomainCallSpec> first = Parser::ParseCallPattern(text);
    ASSERT_TRUE(first.ok()) << text;
    Result<DomainCallSpec> second =
        Parser::ParseCallPattern(first->ToString());
    ASSERT_TRUE(second.ok()) << first->ToString();
    EXPECT_EQ(first->ToString(), second->ToString());
  }
}

TEST(RoundTripTest, StringEscapesSurvive) {
  Result<Rule> rule = Parser::ParseRule(R"(p('it\'s', 'a\\b').)");
  ASSERT_TRUE(rule.ok()) << rule.status();
  Result<Rule> again = Parser::ParseRule(rule->ToString());
  ASSERT_TRUE(again.ok()) << rule->ToString();
  EXPECT_EQ(again->head.args[0].constant, Value::Str("it's"));
  EXPECT_EQ(again->head.args[1].constant, Value::Str("a\\b"));
}

}  // namespace
}  // namespace hermes::lang
