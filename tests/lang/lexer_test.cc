#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace hermes::lang {
namespace {

std::vector<Token> MustLex(const std::string& text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  return tokens.ok() ? *tokens : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  std::vector<Token> t = MustLex("");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, LowercaseIdentifierIsConstantSymbol) {
  std::vector<Token> t = MustLex("rupert");
  EXPECT_EQ(t[0].kind, TokenKind::kIdent);
  EXPECT_EQ(t[0].text, "rupert");
}

TEST(LexerTest, UppercaseAndUnderscoreAreVariables) {
  EXPECT_EQ(MustLex("From")[0].kind, TokenKind::kVariable);
  EXPECT_EQ(MustLex("_x")[0].kind, TokenKind::kVariable);
  EXPECT_EQ(MustLex("$ans")[0].kind, TokenKind::kVariable);
}

TEST(LexerTest, DollarBIsItsOwnToken) {
  EXPECT_EQ(MustLex("$b")[0].kind, TokenKind::kDollarB);
}

TEST(LexerTest, VariableAttributePathIsLexedIntoTheToken) {
  std::vector<Token> t = MustLex("$ans.1.name");
  ASSERT_EQ(t[0].kind, TokenKind::kVariable);
  EXPECT_EQ(t[0].text, "$ans");
  EXPECT_EQ(t[0].path, (std::vector<std::string>{"1", "name"}));
}

TEST(LexerTest, ClauseTerminatorDotIsSeparateFromPath) {
  // "q(B,C)." — the final dot must be a kDot token, not a path step.
  std::vector<Token> t = MustLex("q(B,C).");
  ASSERT_GE(t.size(), 8u);
  EXPECT_EQ(t[4].kind, TokenKind::kVariable);
  EXPECT_TRUE(t[4].path.empty());
  EXPECT_EQ(t[5].kind, TokenKind::kRParen);
  EXPECT_EQ(t[6].kind, TokenKind::kDot);
}

TEST(LexerTest, VariableDotFollowedByIdentIsPath) {
  std::vector<Token> t = MustLex("P.name = A");
  EXPECT_EQ(t[0].kind, TokenKind::kVariable);
  EXPECT_EQ(t[0].path, (std::vector<std::string>{"name"}));
  EXPECT_EQ(t[1].kind, TokenKind::kEq);
}

TEST(LexerTest, IntAndDoubleLiterals) {
  std::vector<Token> t = MustLex("42 -7 2.5 1e3 -1.5e-2");
  EXPECT_EQ(t[0].kind, TokenKind::kInt);
  EXPECT_EQ(t[0].int_value, 42);
  EXPECT_EQ(t[1].kind, TokenKind::kInt);
  EXPECT_EQ(t[1].int_value, -7);
  EXPECT_EQ(t[2].kind, TokenKind::kDouble);
  EXPECT_EQ(t[2].double_value, 2.5);
  EXPECT_EQ(t[3].kind, TokenKind::kDouble);
  EXPECT_EQ(t[3].double_value, 1000.0);
  EXPECT_EQ(t[4].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(t[4].double_value, -0.015);
}

TEST(LexerTest, NumberFollowedByClauseDot) {
  // "f(142)." — 142 then ')' then '.'
  std::vector<Token> t = MustLex("f(142).");
  EXPECT_EQ(t[2].kind, TokenKind::kInt);
  EXPECT_EQ(t[3].kind, TokenKind::kRParen);
  EXPECT_EQ(t[4].kind, TokenKind::kDot);
}

TEST(LexerTest, SingleAndDoubleQuotedStrings) {
  std::vector<Token> t = MustLex("'h-22 fuel' \"rope\"");
  EXPECT_EQ(t[0].kind, TokenKind::kString);
  EXPECT_EQ(t[0].text, "h-22 fuel");
  EXPECT_EQ(t[1].kind, TokenKind::kString);
  EXPECT_EQ(t[1].text, "rope");
}

TEST(LexerTest, StringEscapes) {
  std::vector<Token> t = MustLex(R"('it\'s\n')");
  EXPECT_EQ(t[0].text, "it's\n");
}

TEST(LexerTest, UnterminatedStringIsParseError) {
  Lexer lexer("'oops");
  EXPECT_TRUE(lexer.Tokenize().status().IsParseError());
}

TEST(LexerTest, OperatorsAndPunctuation) {
  std::vector<Token> t = MustLex(":- ?- => = == != <> < <= > >= & , ( ) [ ] :");
  std::vector<TokenKind> kinds;
  for (const Token& tok : t) kinds.push_back(tok.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIf, TokenKind::kQuery, TokenKind::kImplies,
                       TokenKind::kEq, TokenKind::kEq, TokenKind::kNeq,
                       TokenKind::kNeq, TokenKind::kLt, TokenKind::kLe,
                       TokenKind::kGt, TokenKind::kGe, TokenKind::kAmp,
                       TokenKind::kComma, TokenKind::kLParen,
                       TokenKind::kRParen, TokenKind::kLBracket,
                       TokenKind::kRBracket, TokenKind::kColon,
                       TokenKind::kEnd}));
}

TEST(LexerTest, CommentsAreSkipped) {
  std::vector<Token> t = MustLex(
      "% a comment line\n"
      "foo // trailing comment\n"
      "bar");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].text, "foo");
  EXPECT_EQ(t[1].text, "bar");
}

TEST(LexerTest, TracksLineAndColumn) {
  std::vector<Token> t = MustLex("a\n  b");
  EXPECT_EQ(t[0].line, 1);
  EXPECT_EQ(t[0].column, 1);
  EXPECT_EQ(t[1].line, 2);
  EXPECT_EQ(t[1].column, 3);
}

TEST(LexerTest, UnexpectedCharacterReportsPosition) {
  Lexer lexer("foo @");
  Status s = lexer.Tokenize().status();
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line 1"), std::string::npos);
}

TEST(LexerTest, LoneDollarIsError) {
  Lexer lexer("$ x");
  EXPECT_TRUE(lexer.Tokenize().status().IsParseError());
}

}  // namespace
}  // namespace hermes::lang
