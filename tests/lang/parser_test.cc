#include "lang/parser.h"

#include <gtest/gtest.h>

namespace hermes::lang {
namespace {

Rule MustParseRule(const std::string& text) {
  Result<Rule> r = Parser::ParseRule(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? *r : Rule{};
}

TEST(ParserTest, ParsesFact) {
  Rule rule = MustParseRule("p(a, 1).");
  EXPECT_EQ(rule.head.predicate, "p");
  ASSERT_EQ(rule.head.args.size(), 2u);
  EXPECT_EQ(rule.head.args[0].constant, Value::Str("a"));
  EXPECT_EQ(rule.head.args[1].constant, Value::Int(1));
  EXPECT_TRUE(rule.body.empty());
}

TEST(ParserTest, ParsesSectionTwoExampleRule) {
  Rule rule = MustParseRule(
      "routetosupplies(From, Sup1, To, R) :- "
      "in(Tuple, ingres:select_eq('inventory', item, Sup1)) & "
      "=(Tuple.loc, To) & "
      "in(R, terraindb:findrte(From, To)).");
  EXPECT_EQ(rule.head.predicate, "routetosupplies");
  ASSERT_EQ(rule.body.size(), 3u);
  EXPECT_TRUE(rule.body[0].is_domain_call());
  EXPECT_EQ(rule.body[0].call.domain, "ingres");
  EXPECT_EQ(rule.body[0].call.function, "select_eq");
  EXPECT_TRUE(rule.body[1].is_comparison());
  EXPECT_EQ(rule.body[1].lhs.var_name, "Tuple");
  EXPECT_EQ(rule.body[1].lhs.path, (std::vector<std::string>{"loc"}));
  EXPECT_TRUE(rule.body[2].is_domain_call());
}

TEST(ParserTest, CommaAndAmpersandBothSeparate) {
  Rule a = MustParseRule("m(A, C) :- p(A, B), q(B, C).");
  Rule b = MustParseRule("m(A, C) :- p(A, B) & q(B, C).");
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(ParserTest, InfixAndPrefixComparisons) {
  Rule a = MustParseRule("f(X) :- g(X) & X <= 5.");
  Rule b = MustParseRule("f(X) :- g(X) & <=(X, 5).");
  EXPECT_EQ(a.body[1].ToString(), b.body[1].ToString());
  EXPECT_EQ(a.body[1].op, RelOp::kLe);
}

TEST(ParserTest, PositionalAttributeSelectors) {
  Rule rule = MustParseRule(
      "p(A, B) :- in($ans, d1:p_ff()) & =($ans.1, A) & =($ans.2, B).");
  EXPECT_EQ(rule.body[1].lhs.var_name, "$ans");
  EXPECT_EQ(rule.body[1].lhs.path, (std::vector<std::string>{"1"}));
}

TEST(ParserTest, ZeroArgDomainCall) {
  Rule rule = MustParseRule("p(B, C) :- in(B, d2:q_ff()).");
  EXPECT_TRUE(rule.body[0].is_domain_call());
  EXPECT_TRUE(rule.body[0].call.args.empty());
}

TEST(ParserTest, RuleHeadMustBePredicate) {
  EXPECT_TRUE(Parser::ParseRule("X = 5 :- p(X).").status().IsParseError());
}

TEST(ParserTest, MissingDotIsError) {
  EXPECT_TRUE(Parser::ParseRule("p(a) :- q(a)").status().IsParseError());
}

TEST(ParserTest, TrailingInputIsError) {
  EXPECT_TRUE(Parser::ParseRule("p(a). q(b).").status().IsParseError());
}

TEST(ParserTest, ProgramParsesMultipleRules) {
  Result<Program> p = Parser::ParseProgram(
      "m(A, C) :- p(A, B) & q(B, C).\n"
      "p(A, B) :- in(B, d1:p_bf(A)).\n"
      "q(B, C) :- in(C, d2:q_bf(B)).\n");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->rules.size(), 3u);
}

TEST(ParserTest, ProgramRoundTripsThroughToString) {
  const std::string text =
      "m(A, C) :- p(A, B) & q(B, C).\n"
      "p(A, B) :- in(B, d1:p_bf(A)) & A != 'x'.\n";
  Result<Program> p1 = Parser::ParseProgram(text);
  ASSERT_TRUE(p1.ok());
  Result<Program> p2 = Parser::ParseProgram(p1->ToString());
  ASSERT_TRUE(p2.ok()) << p2.status();
  EXPECT_EQ(p1->ToString(), p2->ToString());
}

TEST(ParserTest, QueryWithAndWithoutArrow) {
  Result<Query> a = Parser::ParseQuery("?- m(a, C).");
  Result<Query> b = Parser::ParseQuery("m(a, C).");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToString(), b->ToString());
}

TEST(ParserTest, QueryWithConjunction) {
  Result<Query> q =
      Parser::ParseQuery("?- in(X, d:f(1)) & X > 3 & p(X, Y).");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->goals.size(), 3u);
}

TEST(ParserTest, ListLiterals) {
  Rule rule = MustParseRule("p(X) :- in(X, d:f([1, 2.5, 'a'])).");
  const Value& v = rule.body[0].call.args[0].constant;
  ASSERT_TRUE(v.is_list());
  EXPECT_EQ(v.as_list().size(), 3u);
}

TEST(ParserTest, ListsMayNotContainVariables) {
  EXPECT_TRUE(Parser::ParseRule("p(X) :- in(X, d:f([Y])).")
                  .status()
                  .IsParseError());
}

TEST(ParserTest, TrueFalseNullLiterals) {
  Rule rule = MustParseRule("p(X) :- in(X, d:f(true, false, null)).");
  EXPECT_EQ(rule.body[0].call.args[0].constant, Value::Bool(true));
  EXPECT_EQ(rule.body[0].call.args[1].constant, Value::Bool(false));
  EXPECT_TRUE(rule.body[0].call.args[2].constant.is_null());
}

// ---- Invariants -----------------------------------------------------------

TEST(ParserTest, ParsesEqualityInvariant) {
  Result<Invariant> inv = Parser::ParseInvariant(
      "Dist > 142 => spatial:range('map1', X, Y, Dist) = "
      "spatial:range('points', X, Y, 142).");
  ASSERT_TRUE(inv.ok()) << inv.status();
  EXPECT_EQ(inv->relation, InvariantRelation::kEqual);
  ASSERT_EQ(inv->conditions.size(), 1u);
  EXPECT_EQ(inv->conditions[0].op, RelOp::kGt);
  EXPECT_EQ(inv->lhs.domain, "spatial");
  EXPECT_EQ(inv->rhs.args[3].constant, Value::Int(142));
}

TEST(ParserTest, ParsesContainmentInvariant) {
  Result<Invariant> inv = Parser::ParseInvariant(
      "V1 <= V2 => relation:select_lt(Table, Attr, V2) >= "
      "relation:select_lt(Table, Attr, V1).");
  ASSERT_TRUE(inv.ok()) << inv.status();
  EXPECT_EQ(inv->relation, InvariantRelation::kSuperset);
}

TEST(ParserTest, InvariantWithoutConditions) {
  Result<Invariant> inv =
      Parser::ParseInvariant("=> d:f(X) = d:g(X).");
  ASSERT_TRUE(inv.ok()) << inv.status();
  EXPECT_TRUE(inv->conditions.empty());
}

TEST(ParserTest, InvariantConditionsMustBeComparisons) {
  EXPECT_FALSE(
      Parser::ParseInvariant("p(X) => d:f(X) = d:g(X).").ok());
}

TEST(ParserTest, InvariantFreeConditionVariableRejected) {
  Status s = Parser::ParseInvariant("Z > 1 => d:f(X) = d:g(X).").status();
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("'Z'"), std::string::npos);
}

TEST(ParserTest, ParsesMultipleInvariants) {
  Result<std::vector<Invariant>> invs = Parser::ParseInvariants(
      "=> d:f(X) = d:g(X).\n"
      "A <= B => d:h(A) <= d:h(B).\n");
  ASSERT_TRUE(invs.ok()) << invs.status();
  EXPECT_EQ(invs->size(), 2u);
  EXPECT_EQ((*invs)[1].relation, InvariantRelation::kSubset);
}

TEST(ParserTest, InvariantRoundTrip) {
  const std::string text =
      "F2 <= F1 & L1 <= L2 => video:frames_to_objects(V, F2, L2) >= "
      "video:frames_to_objects(V, F1, L1).";
  Result<Invariant> inv1 = Parser::ParseInvariant(text);
  ASSERT_TRUE(inv1.ok());
  Result<Invariant> inv2 = Parser::ParseInvariant(inv1->ToString());
  ASSERT_TRUE(inv2.ok()) << inv2.status();
  EXPECT_EQ(inv1->ToString(), inv2->ToString());
}

// ---- Call patterns -----------------------------------------------------------

TEST(ParserTest, ParsesCallPatternWithBound) {
  Result<DomainCallSpec> spec = Parser::ParseCallPattern("d:f(5, $b)");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->domain, "d");
  EXPECT_TRUE(spec->args[0].is_constant());
  EXPECT_TRUE(spec->args[1].is_bound_pattern());
  EXPECT_FALSE(spec->is_ground());
}

TEST(ParserTest, CallPatternRejectsVariables) {
  EXPECT_FALSE(Parser::ParseCallPattern("d:f(X)").ok());
}

TEST(ParserTest, CallPatternOptionalDot) {
  EXPECT_TRUE(Parser::ParseCallPattern("d:f(1).").ok());
  EXPECT_TRUE(Parser::ParseCallPattern("d:f(1)").ok());
}

// ---- Atom helpers -----------------------------------------------------------

TEST(AstTest, AtomVariablesDeduplicates) {
  Rule rule = MustParseRule("p(X, Y) :- in(X, d:f(Y, X)).");
  std::vector<std::string> vars = rule.body[0].Variables();
  EXPECT_EQ(vars, (std::vector<std::string>{"X", "Y"}));
}

TEST(AstTest, FlipRelOp) {
  EXPECT_EQ(FlipRelOp(RelOp::kLt), RelOp::kGt);
  EXPECT_EQ(FlipRelOp(RelOp::kLe), RelOp::kGe);
  EXPECT_EQ(FlipRelOp(RelOp::kEq), RelOp::kEq);
  EXPECT_EQ(FlipRelOp(RelOp::kNeq), RelOp::kNeq);
}

TEST(AstTest, EvalRelOpOnValues) {
  EXPECT_TRUE(EvalRelOp(RelOp::kLe, Value::Int(3), Value::Double(3.0)));
  EXPECT_TRUE(EvalRelOp(RelOp::kLt, Value::Str("a"), Value::Str("b")));
  EXPECT_FALSE(EvalRelOp(RelOp::kGt, Value::Int(1), Value::Int(2)));
  EXPECT_TRUE(EvalRelOp(RelOp::kNeq, Value::Int(1), Value::Str("1")));
}

}  // namespace
}  // namespace hermes::lang
