#include "avis/avis_domain.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "avis/video_db.h"

namespace hermes::avis {
namespace {

std::shared_ptr<AvisDomain> MakeDomain() {
  auto db = std::make_shared<VideoDatabase>();
  LoadRopeDataset(db.get());
  return std::make_shared<AvisDomain>("avis", db);
}

DomainCall Call(const std::string& fn, ValueList args) {
  return DomainCall{"video", fn, std::move(args)};
}

std::vector<std::string> Names(const AnswerSet& answers) {
  std::vector<std::string> out;
  for (const Value& v : answers) out.push_back(v.as_string());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(VideoDatabaseTest, RopeDatasetLoads) {
  VideoDatabase db;
  LoadRopeDataset(&db);
  EXPECT_EQ(db.num_videos(), 2u);
  ASSERT_TRUE(db.GetVideo("rope").ok());
  EXPECT_TRUE(db.GetVideo("ghost").status().IsNotFound());
}

TEST(VideoDatabaseTest, ObjectsInRangeRespectsOverlap) {
  VideoDatabase db;
  LoadRopeDataset(&db);
  Result<VideoDatabase::RangeResult> r = db.ObjectsInRange("rope", 4, 47);
  ASSERT_TRUE(r.ok());
  // Segments overlapping [4,47]: rupert, brandon, phillip, david,
  // mrs_wilson, rope_prop, chest.
  EXPECT_EQ(r->objects.size(), 7u);
  EXPECT_GT(r->segments_examined, 0u);
}

TEST(VideoDatabaseTest, FramesOfObjectReturnsAllSegments) {
  VideoDatabase db;
  LoadRopeDataset(&db);
  Result<VideoDatabase::FramesResult> r = db.FramesOfObject("rope", "rupert");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->segments.size(), 3u);
}

TEST(VideoDatabaseTest, SyntheticGenerationIsDeterministic) {
  VideoDatabase a, b;
  LoadSyntheticVideos(&a, 99, 3, 5, 1000);
  LoadSyntheticVideos(&b, 99, 3, 5, 1000);
  Result<const VideoInfo*> va = a.GetVideo("video_0");
  Result<const VideoInfo*> vb = b.GetVideo("video_0");
  ASSERT_TRUE(va.ok() && vb.ok());
  ASSERT_EQ((*va)->segments.size(), (*vb)->segments.size());
  for (size_t i = 0; i < (*va)->segments.size(); ++i) {
    EXPECT_EQ((*va)->segments[i].first_frame, (*vb)->segments[i].first_frame);
  }
}

TEST(AvisDomainTest, VideoSizeAndFrames) {
  auto d = MakeDomain();
  Result<CallOutput> size = d->Run(Call("video_size", {Value::Str("rope")}));
  ASSERT_TRUE(size.ok()) << size.status();
  EXPECT_EQ(size->answers, AnswerSet{Value::Int(1214800000)});
  Result<CallOutput> frames =
      d->Run(Call("video_frames", {Value::Str("rope")}));
  ASSERT_TRUE(frames.ok());
  EXPECT_EQ(frames->answers, AnswerSet{Value::Int(130000)});
}

TEST(AvisDomainTest, FramesToObjectsRange) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(
      Call("frames_to_objects", {Value::Str("rope"), Value::Int(4),
                                 Value::Int(47)}));
  ASSERT_TRUE(out.ok()) << out.status();
  std::vector<std::string> names = Names(out->answers);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "rupert"));
  EXPECT_TRUE(std::count(names.begin(), names.end(), "brandon"));
  EXPECT_FALSE(std::count(names.begin(), names.end(), "janet"));
}

TEST(AvisDomainTest, WiderRangeSeesSuperset) {
  // The subset property behind the scenario's frame-range invariant.
  auto d = MakeDomain();
  Result<CallOutput> narrow = d->Run(Call(
      "frames_to_objects", {Value::Str("rope"), Value::Int(4), Value::Int(47)}));
  Result<CallOutput> wide = d->Run(Call(
      "frames_to_objects", {Value::Str("rope"), Value::Int(4), Value::Int(127)}));
  ASSERT_TRUE(narrow.ok() && wide.ok());
  std::vector<std::string> n = Names(narrow->answers);
  std::vector<std::string> w = Names(wide->answers);
  EXPECT_TRUE(std::includes(w.begin(), w.end(), n.begin(), n.end()));
  EXPECT_GE(w.size(), n.size());
}

TEST(AvisDomainTest, ObjectToFramesStructs) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(
      Call("object_to_frames", {Value::Str("rope"), Value::Str("rupert")}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->answers.size(), 3u);
  EXPECT_EQ(*out->answers[0].GetAttr("first"), Value::Int(4));
  EXPECT_EQ(*out->answers[0].GetAttr("last"), Value::Int(42));
}

TEST(AvisDomainTest, VideosListsStore) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(Call("videos", {}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(Names(out->answers),
            (std::vector<std::string>{"rope", "the_birds"}));
}

TEST(AvisDomainTest, EmptyRangeRejected) {
  auto d = MakeDomain();
  EXPECT_FALSE(d->Run(Call("frames_to_objects",
                           {Value::Str("rope"), Value::Int(47), Value::Int(4)}))
                   .ok());
}

TEST(AvisDomainTest, JitterIsDeterministicPerCall) {
  auto d = MakeDomain();
  DomainCall call = Call("frames_to_objects",
                         {Value::Str("rope"), Value::Int(4), Value::Int(47)});
  Result<CallOutput> a = d->Run(call);
  Result<CallOutput> b = d->Run(call);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->all_ms, b->all_ms);  // repeating a call costs the same
  EXPECT_DOUBLE_EQ(a->first_ms, b->first_ms);
}

TEST(AvisDomainTest, DifferentCallsJitterDifferently) {
  auto d = MakeDomain();
  Result<CallOutput> a = d->Run(Call(
      "frames_to_objects", {Value::Str("rope"), Value::Int(4), Value::Int(47)}));
  Result<CallOutput> b = d->Run(Call(
      "frames_to_objects", {Value::Str("rope"), Value::Int(4), Value::Int(48)}));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->all_ms, b->all_ms);
}

TEST(AvisDomainTest, CostGrowsWithRangeLength) {
  AvisCostParams no_jitter;
  no_jitter.jitter = 0.0;
  auto db = std::make_shared<VideoDatabase>();
  LoadRopeDataset(db.get());
  AvisDomain d("avis", db, no_jitter);
  Result<CallOutput> narrow = d.Run(Call(
      "frames_to_objects", {Value::Str("rope"), Value::Int(4), Value::Int(47)}));
  Result<CallOutput> wide = d.Run(Call(
      "frames_to_objects",
      {Value::Str("rope"), Value::Int(4), Value::Int(100000)}));
  ASSERT_TRUE(narrow.ok() && wide.ok());
  EXPECT_GT(wide->all_ms, narrow->all_ms);
}

TEST(AvisDomainTest, UnknownVideoIsNotFound) {
  auto d = MakeDomain();
  EXPECT_TRUE(
      d->Run(Call("video_size", {Value::Str("ghost")})).status().IsNotFound());
}

}  // namespace
}  // namespace hermes::avis
