#include "domain/pipeline.h"

#include <gtest/gtest.h>

#include "cim/cache_interceptor.h"
#include "cim/cim.h"
#include "domain/registry.h"

namespace hermes {
namespace {

/// Fixed-latency echo domain: echo:id(x) → {x}.
class EchoDomain : public Domain {
 public:
  explicit EchoDomain(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return {{"id", 1, "id(x): {x}"}};
  }
  Result<CallOutput> Run(const DomainCall& call) override {
    if (call.function != "id" || call.args.size() != 1) {
      return Status::NotFound("no function " + call.function);
    }
    ++runs;
    CallOutput out;
    out.answers = {call.args[0]};
    out.first_ms = 3.0;
    out.all_ms = 7.0;
    return out;
  }

  int runs = 0;

 private:
  std::string name_;
};

/// Counts the calls that reach its position in the stack.
class CountingInterceptor : public CallInterceptor {
 public:
  explicit CountingInterceptor(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  Result<CallOutput> Intercept(CallContext& ctx, const DomainCall& call,
                               const Next& next) override {
    ++calls;
    return next(ctx, call);
  }

  int calls = 0;

 private:
  std::string name_;
};

DomainCall Id(int64_t x) { return DomainCall{"echo", "id", {Value::Int(x)}}; }

TEST(CallMetricsTest, MergeIsAdditive) {
  CallMetrics a, b;
  a.domain_calls = 2;
  a.cache_hits = 1;
  a.network_charge = 0.5;
  b.domain_calls = 3;
  b.cache_misses = 4;
  b.network_charge = 0.25;
  a.Merge(b);
  EXPECT_EQ(a.domain_calls, 5u);
  EXPECT_EQ(a.cache_hits, 1u);
  EXPECT_EQ(a.cache_misses, 4u);
  EXPECT_DOUBLE_EQ(a.network_charge, 0.75);
}

TEST(CallContextTest, ChargeCallEnforcesBudget) {
  CallContext ctx;
  ctx.call_budget = 2;
  EXPECT_TRUE(ctx.ChargeCall().ok());
  EXPECT_TRUE(ctx.ChargeCall().ok());
  EXPECT_FALSE(ctx.ChargeCall().ok());
  EXPECT_EQ(ctx.metrics.domain_calls, 2u);
}

TEST(PipelineDomainTest, EmptyStackMatchesDirectRegistryRun) {
  auto echo = std::make_shared<EchoDomain>("echo");
  DomainRegistry direct, piped;
  ASSERT_TRUE(direct.Register("echo", echo).ok());
  ASSERT_TRUE(piped.Register("echo", std::make_shared<PipelineDomain>(
                                         "echo", std::vector<std::shared_ptr<
                                                     CallInterceptor>>{},
                                         echo))
                  .ok());

  Result<CallOutput> a = direct.Run(Id(9));
  Result<CallOutput> b = piped.Run(Id(9));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->answers, b->answers);
  EXPECT_EQ(a->first_ms, b->first_ms);  // bit-identical, not just near
  EXPECT_EQ(a->all_ms, b->all_ms);
  EXPECT_EQ(a->complete, b->complete);

  // Errors pass through unchanged too.
  DomainCall bad{"echo", "nope", {}};
  EXPECT_EQ(direct.Run(bad).status().ToString(),
            piped.Run(bad).status().ToString());
}

TEST(PipelineDomainTest, StackRunsTopFirst) {
  auto echo = std::make_shared<EchoDomain>("echo");
  std::vector<std::string> order;
  class Probe : public CallInterceptor {
   public:
    Probe(std::string name, std::vector<std::string>* order)
        : name_(std::move(name)), order_(order) {}
    const std::string& name() const override { return name_; }
    Result<CallOutput> Intercept(CallContext& ctx, const DomainCall& call,
                                 const Next& next) override {
      order_->push_back(name_);
      return next(ctx, call);
    }

   private:
    std::string name_;
    std::vector<std::string>* order_;
  };
  PipelineDomain domain(
      "echo",
      {std::make_shared<Probe>("outer", &order),
       std::make_shared<Probe>("inner", &order)},
      echo);
  CallContext ctx;
  ASSERT_TRUE(domain.Run(ctx, Id(1)).ok());
  EXPECT_EQ(order, (std::vector<std::string>{"outer", "inner"}));
  EXPECT_EQ(domain.FindLayer("inner")->name(), "inner");
  EXPECT_EQ(domain.FindLayer("ghost"), nullptr);
}

TEST(PipelineDomainTest, CacheSplitsStackIntoSeenAndActualCalls) {
  // [above] → [cache] → [below] → echo: the layer above the cache sees
  // every call, the layer below only the ones the cache could not serve.
  auto echo = std::make_shared<EchoDomain>("echo");
  auto cim = std::make_shared<cim::CimDomain>("cim_echo", "echo", echo);
  auto above = std::make_shared<CountingInterceptor>("above");
  auto below = std::make_shared<CountingInterceptor>("below");
  PipelineDomain domain(
      "cim_echo",
      {above, std::make_shared<cim::CacheInterceptor>(cim), below}, echo);

  CallContext ctx;
  ASSERT_TRUE(domain.Run(ctx, Id(1)).ok());  // miss → actual call
  ASSERT_TRUE(domain.Run(ctx, Id(1)).ok());  // exact hit → served above
  ASSERT_TRUE(domain.Run(ctx, Id(2)).ok());  // miss → actual call

  EXPECT_EQ(above->calls, 3);
  EXPECT_EQ(below->calls, 2);
  EXPECT_EQ(echo->runs, 2);
  EXPECT_EQ(ctx.metrics.cache_hits, 1u);
  EXPECT_EQ(ctx.metrics.cache_misses, 2u);
}

TEST(PipelineDomainTest, TraceLayerSeesCacheHits) {
  auto echo = std::make_shared<EchoDomain>("echo");
  auto cim = std::make_shared<cim::CimDomain>("cim_echo", "echo", echo);
  PipelineDomain domain("cim_echo",
                        {std::make_shared<TraceInterceptor>(),
                         std::make_shared<cim::CacheInterceptor>(cim)},
                        echo);

  CallContext ctx;
  std::vector<CallTrace> trace;
  ctx.trace = &trace;
  ASSERT_TRUE(domain.Run(ctx, Id(1)).ok());
  ctx.now_ms = 50.0;
  Result<CallOutput> hit = domain.Run(ctx, Id(1));
  ASSERT_TRUE(hit.ok());

  ASSERT_EQ(trace.size(), 2u);  // the hit is traced, with cache-hit latency
  EXPECT_EQ(trace[1].t_start_ms, 50.0);
  EXPECT_EQ(trace[1].all_ms, hit->all_ms);
  EXPECT_LT(trace[1].all_ms, trace[0].all_ms);
  EXPECT_EQ(ctx.metrics.traced_calls, 2u);
  // Without a sink nothing is recorded.
  ctx.trace = nullptr;
  ASSERT_TRUE(domain.Run(ctx, Id(1)).ok());
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(ctx.metrics.traced_calls, 2u);
}

TEST(PipelineDomainTest, ContextlessRunUsesScratchContext) {
  auto echo = std::make_shared<EchoDomain>("echo");
  auto cim = std::make_shared<cim::CimDomain>("cim_echo", "echo", echo);
  PipelineDomain domain("cim_echo",
                        {std::make_shared<cim::CacheInterceptor>(cim)}, echo);
  Result<CallOutput> miss = domain.Run(Id(4));
  Result<CallOutput> hit = domain.Run(Id(4));
  ASSERT_TRUE(miss.ok() && hit.ok());
  EXPECT_EQ(miss->answers, hit->answers);
  EXPECT_LT(hit->all_ms, miss->all_ms);  // the cache state is still shared
  EXPECT_EQ(cim->stats().exact_hits, 1u);
}

TEST(PipelineDomainTest, CostModelFoldsThroughStack) {
  class ModeledDomain : public EchoDomain {
   public:
    using EchoDomain::EchoDomain;
    bool HasCostModel() const override { return true; }
    Result<CostVector> EstimateCost(
        const lang::DomainCallSpec& pattern) const override {
      (void)pattern;
      return CostVector(1.0, 2.0, 3.0);
    }
  };
  auto echo = std::make_shared<ModeledDomain>("echo");
  PipelineDomain plain("echo", {}, echo);
  EXPECT_TRUE(plain.HasCostModel());

  auto cim = std::make_shared<cim::CimDomain>("cim_echo", "echo", echo);
  PipelineDomain cached("cim_echo",
                        {std::make_shared<cim::CacheInterceptor>(cim)}, echo);
  EXPECT_FALSE(cached.HasCostModel());  // the cache layer hides the model
}

}  // namespace
}  // namespace hermes
