#include "domain/overload.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "domain/pipeline.h"

namespace hermes::overload {
namespace {

DomainCall TheCall() { return DomainCall{"video", "frames", {Value::Int(4)}}; }

/// Fake inner layer (network + domain below the overload layer): answers
/// with a scripted latency per attempt, or fails when the script says so.
/// A negative latency means "fail this attempt with Unavailable".
struct ScriptedSite {
  std::vector<double> latencies_ms;
  size_t attempts = 0;

  CallInterceptor::Next AsNext() {
    return [this](CallContext& ctx, const DomainCall&) -> Result<CallOutput> {
      double ms =
          attempts < latencies_ms.size() ? latencies_ms[attempts] : 10.0;
      ++attempts;
      if (ms < 0.0) {
        ctx.last_failure_site = "umd";
        ctx.last_failure_cause = "outage";
        SourceError err;
        err.site = "umd";
        err.domain = "video";
        err.function = "frames";
        err.cause = "outage";
        err.t_ms = ctx.now_ms;
        ctx.source_errors.push_back(std::move(err));
        return Status::Unavailable("site 'umd' is down");
      }
      CallOutput out;
      out.answers = {Value::Int(1)};
      out.first_ms = ms / 2.0;
      out.all_ms = ms;
      return out;
    };
  }
};

OverloadPolicy LimiterOnly(double initial, double min = 1.0) {
  OverloadPolicy policy;
  policy.limiter.enabled = true;
  policy.limiter.initial_limit = initial;
  policy.limiter.min_limit = min;
  policy.limiter.max_limit = 64.0;
  return policy;
}

TEST(OverloadTest, DefaultPolicyIsPassThrough) {
  ScriptedSite site{{25.0}};
  OverloadInterceptor governor("umd");
  CallContext ctx;
  Result<CallOutput> run = governor.Intercept(ctx, TheCall(), site.AsNext());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_DOUBLE_EQ(run->all_ms, 25.0);
  EXPECT_TRUE(ctx.overload_states.empty());  // no state is even touched
}

TEST(OverloadTest, LimitGrowsAdditivelyOnHealthyCalls) {
  ScriptedSite site{{10.0, 10.0, 10.0}};
  OverloadInterceptor governor("umd");
  governor.set_policy(LimiterOnly(4.0));
  CallContext ctx;
  for (int i = 0; i < 3; ++i) {
    ctx.now_ms = 100.0 * i;  // past each previous call's completion
    ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  }
  EXPECT_DOUBLE_EQ(ctx.overload_states["umd"].limit, 7.0);  // 4 + 1 + 1 + 1
  EXPECT_EQ(ctx.overload_states["umd"].calls_seen, 3u);
}

TEST(OverloadTest, LimitShrinksMultiplicativelyOnFailure) {
  ScriptedSite site{{-1.0}};
  OverloadInterceptor governor("umd");
  governor.set_policy(LimiterOnly(8.0));
  CallContext ctx;
  Result<CallOutput> run = governor.Intercept(ctx, TheCall(), site.AsNext());
  EXPECT_FALSE(run.ok());
  EXPECT_DOUBLE_EQ(ctx.overload_states["umd"].limit, 4.0);  // 8 × 0.5
}

TEST(OverloadTest, LatencyPastBaselineFactorIsCongestion) {
  // Baseline 10ms, latency_factor 3: a 35ms call is a congestion signal
  // even though it succeeded.
  ScriptedSite site{{35.0}};
  OverloadInterceptor governor("umd");
  governor.set_policy(LimiterOnly(8.0));
  governor.set_baseline([](const DomainCall&) { return 10.0; });
  CallContext ctx;
  ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  EXPECT_DOUBLE_EQ(ctx.overload_states["umd"].limit, 4.0);
}

TEST(OverloadTest, CallPastTheWindowLimitIsShedTyped) {
  // Two concurrent calls at t=0 fill a limit-2 window (they complete at
  // t=50); the third is shed with kResourceExhausted and counted.
  ScriptedSite site{{50.0, 50.0, 50.0}};
  OverloadInterceptor governor("umd");
  OverloadPolicy pinned = LimiterOnly(2.0);
  pinned.limiter.additive_increase = 0.0;  // pin the limit at 2 for the test
  governor.set_policy(pinned);
  CallContext ctx;
  ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  Result<CallOutput> shed = governor.Intercept(ctx, TheCall(), site.AsNext());
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted()) << shed.status();
  EXPECT_EQ(ctx.metrics.load_shed, 1u);
  EXPECT_EQ(site.attempts, 2u);  // the shed call never reached the site
  ASSERT_EQ(ctx.source_errors.size(), 1u);
  EXPECT_EQ(ctx.source_errors[0].cause, "load-shed");

  // Once the window drains on the simulated clock, admission resumes.
  ctx.now_ms = 60.0;
  EXPECT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
}

TEST(OverloadTest, OpenBreakerClampsTheLimitToTheFloor) {
  ScriptedSite site{{50.0, 50.0}};
  OverloadInterceptor governor("umd");
  governor.set_policy(LimiterOnly(8.0, /*min=*/1.0));
  CallContext ctx;
  ctx.breaker_states["umd"].state = CallContext::BreakerState::kOpen;
  ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  // The AIMD limit is still ~8, but the open breaker caps admission at the
  // floor: the second concurrent call is shed.
  Result<CallOutput> shed = governor.Intercept(ctx, TheCall(), site.AsNext());
  EXPECT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted());
}

TEST(OverloadTest, BreakerProbesBypassLimiterAdmissionAndAccounting) {
  // A full window must not starve the half-open probe that would close the
  // breaker — and the probe must not occupy a slot or move the limit.
  ScriptedSite site{{50.0, 10.0}};
  OverloadInterceptor governor("umd");
  governor.set_policy(LimiterOnly(1.0));
  CallContext ctx;
  ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  ctx.breaker_probe = true;
  Result<CallOutput> probe = governor.Intercept(ctx, TheCall(), site.AsNext());
  ctx.breaker_probe = false;
  ASSERT_TRUE(probe.ok()) << probe.status();
  const CallContext::OverloadState& st = ctx.overload_states["umd"];
  EXPECT_EQ(st.in_flight_until_ms.size(), 1u);  // only the first call
  EXPECT_EQ(st.calls_seen, 1u);
  EXPECT_DOUBLE_EQ(st.limit, 2.0);  // one healthy +1; probe moved nothing
}

OverloadPolicy HedgeOnly(double quantile = 0.5, size_t min_samples = 2,
                         double budget_percent = 100.0) {
  OverloadPolicy policy;
  policy.hedge.enabled = true;
  policy.hedge.quantile = quantile;
  policy.hedge.min_samples = min_samples;
  policy.hedge.budget_percent = budget_percent;
  policy.hedge.baseline_trigger_factor = 0.0;  // ring-armed only
  return policy;
}

/// A replica that always answers in `ms` and records when it was asked.
struct Replica {
  double ms = 5.0;
  size_t attempts = 0;
  std::vector<double> asked_at_ms;

  OverloadInterceptor::HedgeFn AsRoute() {
    return [this](CallContext& ctx, const DomainCall&) -> Result<CallOutput> {
      ++attempts;
      asked_at_ms.push_back(ctx.now_ms);
      CallOutput out;
      out.answers = {Value::Int(2)};
      out.first_ms = ms / 2.0;
      out.all_ms = ms;
      return out;
    };
  }
};

TEST(OverloadTest, HedgeWinAdoptsTheFasterReplicaAnswer) {
  // Warm the ring with two 10ms calls (median trigger = 10ms), then a
  // 100ms straggler: the hedge opens at t=10 on the simulated clock and
  // its 5ms answer lands at 15ms — it wins.
  ScriptedSite site{{10.0, 10.0, 100.0}};
  Replica replica;
  OverloadInterceptor governor("umd");
  governor.set_policy(HedgeOnly());
  governor.set_hedge_route(replica.AsRoute());
  CallContext ctx;
  ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  Result<CallOutput> run = governor.Intercept(ctx, TheCall(), site.AsNext());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_DOUBLE_EQ(run->all_ms, 15.0);  // trigger 10 + replica 5
  EXPECT_EQ(ctx.metrics.hedges, 1u);
  EXPECT_EQ(ctx.metrics.hedge_wins, 1u);
  ASSERT_EQ(replica.asked_at_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(replica.asked_at_ms[0], 10.0);  // opened at the trigger
  EXPECT_DOUBLE_EQ(ctx.now_ms, 0.0);  // the clock was restored
}

TEST(OverloadTest, SlowReplicaLosesAndThePrimaryAnswerStands) {
  ScriptedSite site{{10.0, 10.0, 100.0}};
  Replica replica;
  replica.ms = 500.0;  // slower than the primary even from the trigger
  OverloadInterceptor governor("umd");
  governor.set_policy(HedgeOnly());
  governor.set_hedge_route(replica.AsRoute());
  CallContext ctx;
  ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  Result<CallOutput> run = governor.Intercept(ctx, TheCall(), site.AsNext());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_DOUBLE_EQ(run->all_ms, 100.0);  // the primary stood
  EXPECT_EQ(ctx.metrics.hedges, 1u);
  EXPECT_EQ(ctx.metrics.hedge_wins, 0u);
}

TEST(OverloadTest, HedgeBudgetCapsSpeculativeHedges) {
  // 10% budget: the first hedge is free, the second needs ≥ 10 admitted
  // calls to the site. Every call past the warmup is a 100ms straggler.
  ScriptedSite site{{10.0, 10.0, 100.0, 100.0, 100.0}};
  Replica replica;
  OverloadInterceptor governor("umd");
  governor.set_policy(HedgeOnly(0.5, 2, /*budget_percent=*/10.0));
  governor.set_hedge_route(replica.AsRoute());
  CallContext ctx;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  }
  EXPECT_EQ(ctx.metrics.hedges, 1u);  // the free one; budget blocked the rest
}

TEST(OverloadTest, ColdRingFallsBackToBaselineTrigger) {
  // No warmup at all: the ring is cold, but a DCSM baseline of 10ms with
  // factor 2 arms the hedge at t=20 for the very first call.
  ScriptedSite site{{100.0}};
  Replica replica;
  OverloadInterceptor governor("umd");
  OverloadPolicy policy = HedgeOnly(0.5, /*min_samples=*/4);
  policy.hedge.baseline_trigger_factor = 2.0;
  governor.set_policy(policy);
  governor.set_hedge_route(replica.AsRoute());
  governor.set_baseline([](const DomainCall&) { return 10.0; });
  CallContext ctx;
  Result<CallOutput> run = governor.Intercept(ctx, TheCall(), site.AsNext());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_DOUBLE_EQ(run->all_ms, 25.0);  // trigger 20 + replica 5
  EXPECT_EQ(ctx.metrics.hedge_wins, 1u);
}

TEST(OverloadTest, FailedPrimaryIsRescuedByTheHedgeAndMasked) {
  // Warmup, then the primary fails outright: the hedge that was already in
  // flight at the trigger adopts the call, and the primary's source error
  // is masked the way failover rescues are.
  ScriptedSite site{{10.0, 10.0, -1.0}};
  Replica replica;
  OverloadInterceptor governor("umd");
  governor.set_policy(HedgeOnly());
  governor.set_hedge_route(replica.AsRoute());
  CallContext ctx;
  ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  Result<CallOutput> run = governor.Intercept(ctx, TheCall(), site.AsNext());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_DOUBLE_EQ(run->all_ms, 15.0);  // trigger 10 + replica 5
  EXPECT_EQ(ctx.metrics.hedge_wins, 1u);
  ASSERT_EQ(ctx.source_errors.size(), 1u);
  EXPECT_TRUE(ctx.source_errors[0].masked);
}

TEST(OverloadTest, LoadShedCallsAreNeverHedged) {
  // A shed call must not trigger its own hedge — that would defeat the
  // limiter. Limit 1, two concurrent calls: the second is shed, and the
  // replica is never consulted for it.
  ScriptedSite site{{50.0, 50.0}};
  Replica replica;
  OverloadInterceptor governor("umd");
  OverloadPolicy policy = LimiterOnly(1.0);
  policy.limiter.additive_increase = 0.0;  // pin the limit at 1
  policy.hedge.enabled = true;
  policy.hedge.min_samples = 1;
  // Ring-armed only, so the admitted 50ms call (faster than any trigger
  // the empty ring can produce) does not hedge — isolating the shed call.
  policy.hedge.baseline_trigger_factor = 0.0;
  governor.set_policy(policy);
  governor.set_hedge_route(replica.AsRoute());
  CallContext ctx;
  ASSERT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
  Result<CallOutput> shed = governor.Intercept(ctx, TheCall(), site.AsNext());
  EXPECT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted());
  EXPECT_EQ(replica.attempts, 0u);
  EXPECT_EQ(ctx.metrics.hedges, 0u);
}

TEST(OverloadTest, HedgingDisabledFlagAndBrownoutLevelSuppressHedges) {
  auto run_once = [](bool disable_flag, int brownout_level) {
    ScriptedSite site{{10.0, 10.0, 100.0}};
    Replica replica;
    OverloadInterceptor governor("umd");
    governor.set_policy(HedgeOnly());
    governor.set_hedge_route(replica.AsRoute());
    auto brownout = std::make_shared<BrownoutController>();
    if (brownout_level > 0) {
      // Drive the ladder up by brute force: windows of pure sheds.
      BrownoutController::Options opt;
      opt.window_events = 1;
      opt.min_dwell_windows = 0;
      brownout = std::make_shared<BrownoutController>(opt);
      while (brownout->level() < brownout_level) {
        brownout->RecordOutcome(true);
      }
    }
    governor.set_brownout(brownout);
    CallContext ctx;
    ctx.hedging_disabled = disable_flag;
    EXPECT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
    EXPECT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
    EXPECT_TRUE(governor.Intercept(ctx, TheCall(), site.AsNext()).ok());
    return ctx.metrics.hedges;
  };
  EXPECT_EQ(run_once(false, 0), 1u);  // control: the straggler hedges
  EXPECT_EQ(run_once(true, 0), 0u);   // per-query kill switch
  EXPECT_EQ(run_once(false, BrownoutController::kNoHedge), 0u);  // ladder
}

TEST(OverloadTest, BrownoutLadderEscalatesAndRecoversWithDwell) {
  BrownoutController::Options opt;
  opt.window_events = 4;
  opt.up_threshold = 0.5;
  opt.down_threshold = 0.1;
  opt.ewma_alpha = 1.0;  // no smoothing: each window is the pressure
  opt.min_dwell_windows = 2;
  BrownoutController ladder(opt);
  EXPECT_EQ(ladder.level(), BrownoutController::kNormal);

  auto window = [&](bool shed) {
    for (int i = 0; i < 4; ++i) ladder.RecordOutcome(shed);
  };
  // Two all-shed windows satisfy the dwell and escalate one level.
  window(true);
  EXPECT_EQ(ladder.level(), BrownoutController::kNormal);  // dwell holds it
  window(true);
  EXPECT_EQ(ladder.level(), BrownoutController::kNoHedge);
  // Escalate to the top of the ladder.
  window(true);
  window(true);
  EXPECT_EQ(ladder.level(), BrownoutController::kDegrade);
  window(true);
  window(true);
  EXPECT_EQ(ladder.level(), BrownoutController::kShedLow);
  window(true);
  window(true);
  EXPECT_EQ(ladder.level(), BrownoutController::kShedLow);  // clamped
  // Pressure gone: de-escalation walks back down one dwell at a time.
  window(false);
  window(false);
  EXPECT_EQ(ladder.level(), BrownoutController::kDegrade);
  window(false);
  window(false);
  EXPECT_EQ(ladder.level(), BrownoutController::kNoHedge);
  window(false);
  window(false);
  EXPECT_EQ(ladder.level(), BrownoutController::kNormal);
  EXPECT_EQ(ladder.transitions(), 6u);
}

TEST(OverloadTest, BrownoutTransitionHookSeesEveryLevelChange) {
  BrownoutController::Options opt;
  opt.window_events = 1;
  opt.up_threshold = 0.5;
  opt.ewma_alpha = 1.0;
  opt.min_dwell_windows = 0;
  BrownoutController ladder(opt);
  std::vector<std::pair<int, int>> seen;
  ladder.set_transition_hook(
      [&](int from, int to, double) { seen.push_back({from, to}); });
  for (int i = 0; i < 5; ++i) ladder.RecordOutcome(true);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(seen[1], (std::pair<int, int>{1, 2}));
  EXPECT_EQ(seen[2], (std::pair<int, int>{2, 3}));
}

TEST(OverloadTest, LevelNamesAreStable) {
  EXPECT_STREQ(BrownoutController::LevelName(BrownoutController::kNormal),
               "normal");
  EXPECT_STREQ(BrownoutController::LevelName(BrownoutController::kNoHedge),
               "no_hedge");
  EXPECT_STREQ(BrownoutController::LevelName(BrownoutController::kDegrade),
               "degrade");
  EXPECT_STREQ(BrownoutController::LevelName(BrownoutController::kShedLow),
               "shed_low");
  EXPECT_STREQ(BrownoutController::LevelName(99), "unknown");
}

TEST(OverloadTest, ShedDecisionsAreDeterministicAcrossReplays) {
  // The full decision path (limiter windows, ring, budget) lives on the
  // CallContext, so replaying the same call sequence is bit-identical.
  auto run_once = [] {
    ScriptedSite site{{10.0, 12.0, -1.0, 100.0, 11.0, 100.0}};
    Replica replica;
    OverloadInterceptor governor("umd");
    OverloadPolicy policy = LimiterOnly(3.0);
    policy.hedge.enabled = true;
    policy.hedge.quantile = 0.5;
    policy.hedge.min_samples = 2;
    policy.hedge.budget_percent = 50.0;
    governor.set_policy(policy);
    governor.set_hedge_route(replica.AsRoute());
    CallContext ctx;
    std::string trace;
    for (int i = 0; i < 6; ++i) {
      ctx.now_ms = 5.0 * i;
      Result<CallOutput> run =
          governor.Intercept(ctx, TheCall(), site.AsNext());
      trace += run.ok() ? std::to_string(run->all_ms) : run.status().ToString();
      trace += ";";
    }
    trace += std::to_string(ctx.metrics.hedges) + "/" +
             std::to_string(ctx.metrics.hedge_wins) + "/" +
             std::to_string(ctx.metrics.load_shed);
    return trace;
  };
  std::string first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_EQ(first, run_once());
}

}  // namespace
}  // namespace hermes::overload
