// Cross-query single-flight call coalescing: N concurrent queries missing
// on the identical remote call share one in-flight execution. These tests
// pin the registry's leader/follower/fallback protocol, the end-to-end
// "N misses → 1 network call" behaviour through a Mediator, the
// non-poisoning of followers on leader failure, and the disabled default.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/mediator.h"
#include "engine/query_pool.h"

namespace hermes {
namespace {

/// Echo domain whose Run blocks on a gate until the test releases it, so
/// the test can deterministically hold a leader in flight while followers
/// pile up on the registry.
class GatedDomain : public Domain {
 public:
  explicit GatedDomain(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return {{"id", 1, "id(x): {x}, gated"}};
  }
  Result<CallOutput> Run(const DomainCall& call) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++runs_;
      cv_.wait(lock, [this] { return open_; });
    }
    CallOutput out;
    out.answers = {call.args[0]};
    out.first_ms = 3.0;
    out.all_ms = 7.0;
    return out;
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  int runs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return runs_;
  }

 private:
  std::string name_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  int runs_ = 0;
};

/// Fails its first execution (after the gate opens), succeeds afterwards:
/// the leader publishes a failure while followers are already waiting.
class FlakyGatedDomain : public GatedDomain {
 public:
  explicit FlakyGatedDomain(std::string name) : GatedDomain(std::move(name)) {}
  Result<CallOutput> Run(const DomainCall& call) override {
    Result<CallOutput> out = GatedDomain::Run(call);
    std::lock_guard<std::mutex> lock(flaky_mu_);
    if (!failed_once_) {
      failed_once_ = true;
      return Status::Unavailable("first execution injected to fail");
    }
    return out;
  }

 private:
  std::mutex flaky_mu_;
  bool failed_once_ = false;
};

net::SiteParams FlatSite(std::string name) {
  net::SiteParams site = net::UsaSite(std::move(name));
  site.jitter = 0.0;
  return site;
}

QueryOptions AsWritten() {
  QueryOptions q;
  q.use_optimizer = false;
  q.record_statistics = false;
  return q;
}

SingleFlightOptions EnabledOptions() {
  SingleFlightOptions sf;
  sf.enabled = true;
  sf.wait_timeout_ms = 30000.0;  // generous: TSan builds run slowly
  return sf;
}

/// Spins until `waiting` followers are parked on the registry (with a
/// wall-clock guard so a wiring bug fails instead of hanging).
void AwaitWaiters(const Mediator& med, uint64_t waiting) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (med.single_flight().stats().waiting < waiting) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "followers never reached the registry";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(SingleFlightRegistryTest, LeaderThenFollowersThenFreshFlight) {
  SingleFlightRegistry registry;
  SingleFlightRegistry::Join first = registry.JoinOrLead("k");
  EXPECT_TRUE(first.leader);
  SingleFlightRegistry::Join second = registry.JoinOrLead("k");
  EXPECT_FALSE(second.leader);
  EXPECT_EQ(first.flight.get(), second.flight.get());

  CallOutput out;
  out.answers = {Value::Int(42)};
  out.all_ms = 5.0;
  registry.Publish(*first.flight, Status::OK(), out);
  Result<CallOutput> shared = registry.Await(*second.flight);
  ASSERT_TRUE(shared.ok()) << shared.status();
  ASSERT_EQ(shared->answers.size(), 1u);
  EXPECT_EQ(shared->answers[0], Value::Int(42));

  // The key retired with publication: later arrivals lead a fresh flight.
  SingleFlightRegistry::Join third = registry.JoinOrLead("k");
  EXPECT_TRUE(third.leader);
  EXPECT_NE(third.flight.get(), first.flight.get());

  SingleFlightRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.leaders, 2u);
  EXPECT_EQ(stats.followers, 1u);
  EXPECT_EQ(stats.fallbacks, 0u);
}

TEST(SingleFlightRegistryTest, LeaderFailurePropagatesAsFallback) {
  SingleFlightRegistry registry;
  SingleFlightRegistry::Join leader = registry.JoinOrLead("k");
  SingleFlightRegistry::Join follower = registry.JoinOrLead("k");
  registry.Publish(*leader.flight, Status::Unavailable("boom"), {});
  Result<CallOutput> shared = registry.Await(*follower.flight);
  EXPECT_FALSE(shared.ok());
  EXPECT_TRUE(shared.status().IsUnavailable()) << shared.status();
  EXPECT_EQ(registry.stats().fallbacks, 1u);
  EXPECT_EQ(registry.stats().followers, 0u);
}

TEST(SingleFlightTest, ConcurrentIdenticalMissesShareOneNetworkCall) {
  constexpr size_t kQueries = 4;
  Mediator med;
  auto gate = std::make_shared<GatedDomain>("echo");
  ASSERT_TRUE(med.RegisterRemoteDomain("echo", gate, FlatSite("s1")).ok());
  med.set_single_flight(EnabledOptions());

  QueryPoolOptions pool_options;
  pool_options.num_threads = kQueries;
  std::unique_ptr<QueryPool> pool = med.Serve(pool_options);
  std::vector<std::future<Result<QueryResult>>> futures;
  for (size_t i = 0; i < kQueries; ++i) {
    futures.push_back(pool->Submit("?- in(A, echo:id(7)).", AsWritten()));
  }

  // The leader is in the domain, blocked on the gate; hold it there until
  // every other query is parked on its flight, then let it finish.
  AwaitWaiters(med, kQueries - 1);
  gate->OpenGate();

  uint64_t coalesced = 0;
  for (std::future<Result<QueryResult>>& f : futures) {
    Result<QueryResult> res = f.get();
    ASSERT_TRUE(res.ok()) << res.status();
    ASSERT_EQ(res->execution.answers.size(), 1u);
    EXPECT_EQ(res->execution.answers[0][0], Value::Int(7));
    // Every query accounts the call in its own bill, coalesced or not.
    EXPECT_EQ(res->metrics.remote_calls, 1u);
    EXPECT_GT(res->traffic.bytes, 0u);
    coalesced += res->metrics.coalesced_calls;
  }
  pool->Shutdown();

  // One execution served all four queries: the source ran once, the
  // simulator shipped one call, and three queries flagged the coalesce.
  EXPECT_EQ(gate->runs(), 1);
  EXPECT_EQ(med.network().stats().calls, 1u);
  EXPECT_EQ(coalesced, kQueries - 1);
  SingleFlightRegistry::Stats stats = med.single_flight().stats();
  EXPECT_EQ(stats.leaders, 1u);
  EXPECT_EQ(stats.followers, kQueries - 1);
  EXPECT_EQ(stats.fallbacks, 0u);
}

TEST(SingleFlightTest, LeaderFailureDoesNotPoisonFollowers) {
  constexpr size_t kQueries = 4;
  Mediator med;
  // One retry lets the leader's own query recover from the injected
  // first-execution failure.
  resilience::ResiliencePolicy policy;
  policy.retry.max_retries = 2;
  med.set_default_resilience_policy(policy);
  auto gate = std::make_shared<FlakyGatedDomain>("echo");
  ASSERT_TRUE(med.RegisterRemoteDomain("echo", gate, FlatSite("s1")).ok());
  med.set_single_flight(EnabledOptions());

  QueryPoolOptions pool_options;
  pool_options.num_threads = kQueries;
  std::unique_ptr<QueryPool> pool = med.Serve(pool_options);
  std::vector<std::future<Result<QueryResult>>> futures;
  for (size_t i = 0; i < kQueries; ++i) {
    futures.push_back(pool->Submit("?- in(A, echo:id(7)).", AsWritten()));
  }
  AwaitWaiters(med, kQueries - 1);
  gate->OpenGate();

  uint64_t retries = 0, coalesced = 0;
  for (std::future<Result<QueryResult>>& f : futures) {
    Result<QueryResult> res = f.get();
    ASSERT_TRUE(res.ok()) << res.status();
    ASSERT_EQ(res->execution.answers.size(), 1u);
    EXPECT_EQ(res->execution.answers[0][0], Value::Int(7));
    retries += res->metrics.retries;
    coalesced += res->metrics.coalesced_calls;
  }
  pool->Shutdown();

  // The leader's failure was published, every follower fell back to its
  // own call (never inheriting the error), and only the leader's query
  // spent a retry on it.
  EXPECT_EQ(med.single_flight().stats().fallbacks, kQueries - 1);
  EXPECT_GE(retries, 1u);
  // Followers that fell back may re-coalesce among themselves; what is
  // pinned is that nobody adopted the failed execution.
  EXPECT_LE(coalesced, kQueries - 1);
}

TEST(SingleFlightTest, DisabledByDefaultEveryQueryShipsItsOwnCall) {
  constexpr size_t kQueries = 3;
  Mediator med;
  auto gate = std::make_shared<GatedDomain>("echo");
  gate->OpenGate();  // never block: coalescing is off
  ASSERT_TRUE(med.RegisterRemoteDomain("echo", gate, FlatSite("s1")).ok());

  for (size_t i = 0; i < kQueries; ++i) {
    Result<QueryResult> res = med.Query("?- in(A, echo:id(7)).", AsWritten());
    ASSERT_TRUE(res.ok()) << res.status();
    EXPECT_EQ(res->metrics.coalesced_calls, 0u);
  }
  EXPECT_EQ(gate->runs(), static_cast<int>(kQueries));
  EXPECT_EQ(med.network().stats().calls, kQueries);
  EXPECT_EQ(med.single_flight().stats().leaders, 0u);
}

}  // namespace
}  // namespace hermes
