// Concurrency stress for the overload layer, built to run under
// ThreadSanitizer in CI's chaos-tsan job. Per-query state (limiter
// windows, latency rings, hedge budgets) lives on each thread's own
// CallContext, so the shared surface under test is exactly what queries
// share in production: the interceptor's metric instruments, the advisory
// limit gauge, and the BrownoutController's windowed EWMA + level atomics
// + transition hook.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "domain/overload.h"
#include "domain/pipeline.h"
#include "obs/metrics.h"

namespace hermes::overload {
namespace {

DomainCall TheCall(int i) {
  return DomainCall{"video", "frames", {Value::Int(i)}};
}

TEST(OverloadStressTest, SharedInterceptorAndLadderSurviveConcurrentQueries) {
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 400;

  obs::MetricsRegistry registry;
  auto brownout = std::make_shared<BrownoutController>([] {
    BrownoutController::Options opt;
    opt.window_events = 16;
    opt.up_threshold = 0.3;
    opt.down_threshold = 0.05;
    opt.min_dwell_windows = 1;
    return opt;
  }());
  brownout->BindMetrics(registry);
  std::atomic<uint64_t> hook_fired{0};
  brownout->set_transition_hook(
      [&](int, int, double) { hook_fired.fetch_add(1); });

  OverloadInterceptor governor("umd");
  OverloadPolicy policy;
  policy.limiter.enabled = true;
  policy.limiter.initial_limit = 2.0;
  policy.limiter.min_limit = 1.0;
  policy.limiter.max_limit = 8.0;
  policy.hedge.enabled = true;
  policy.hedge.quantile = 0.5;
  policy.hedge.min_samples = 2;
  policy.hedge.budget_percent = 50.0;
  policy.hedge.baseline_trigger_factor = 2.0;
  governor.set_policy(policy);
  governor.set_brownout(brownout);
  governor.set_baseline([](const DomainCall&) { return 10.0; });
  governor.set_hedge_route(
      [](CallContext&, const DomainCall&) -> Result<CallOutput> {
        CallOutput out;
        out.answers = {Value::Int(2)};
        out.first_ms = 2.0;
        out.all_ms = 4.0;
        return out;
      });
  governor.BindMetrics(registry, "video");

  std::atomic<uint64_t> admitted{0}, shed{0}, failed{0};
  auto worker = [&](int tid) {
    CallContext ctx;
    ctx.query_id = 100 + static_cast<uint64_t>(tid);
    for (int i = 0; i < kCallsPerThread; ++i) {
      // A mix of fast calls, stragglers (hedge triggers), hard failures
      // (AIMD decrease + rescue), and same-instant bursts (limiter sheds).
      const int shape = i % 5;
      if (shape != 3) ctx.now_ms = 10.0 * i;  // shape 3 reuses the instant
      auto next = [shape](CallContext& c,
                          const DomainCall&) -> Result<CallOutput> {
        if (shape == 4) {
          c.last_failure_site = "umd";
          c.last_failure_cause = "outage";
          return Status::Unavailable("site 'umd' is down");
        }
        CallOutput out;
        out.answers = {Value::Int(1)};
        out.first_ms = 1.0;
        out.all_ms = shape == 2 ? 100.0 : 8.0;
        return out;
      };
      Result<CallOutput> run = governor.Intercept(ctx, TheCall(i), next);
      if (run.ok()) {
        admitted.fetch_add(1);
      } else if (run.status().IsResourceExhausted()) {
        shed.fetch_add(1);
      } else {
        failed.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  // Concurrent exposition races against every counter and the gauge.
  for (int i = 0; i < 20; ++i) {
    std::string prom = registry.ExposePrometheus();
    EXPECT_NE(prom.find("hermes_overload_admitted_total"), std::string::npos);
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(admitted.load() + shed.load() + failed.load(),
            static_cast<uint64_t>(kThreads) * kCallsPerThread);
  EXPECT_GT(admitted.load(), 0u);
  // The ladder saw every outcome; its level is a valid rung wherever the
  // interleaving left it.
  EXPECT_GE(brownout->level(), BrownoutController::kNormal);
  EXPECT_LE(brownout->level(), BrownoutController::kShedLow);
  EXPECT_EQ(brownout->transitions(), hook_fired.load());
  std::string prom = registry.ExposePrometheus();
  EXPECT_NE(prom.find("hermes_hedge_issued_total"), std::string::npos);
  EXPECT_NE(prom.find("hermes_overload_brownout_level"), std::string::npos);
}

}  // namespace
}  // namespace hermes::overload
