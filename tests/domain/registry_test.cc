#include "domain/registry.h"

#include <gtest/gtest.h>

namespace hermes {
namespace {

/// A trivial in-memory domain for registry tests: echo:id(x) → {x}.
class EchoDomain : public Domain {
 public:
  explicit EchoDomain(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return {{"id", 1, "id(x): {x}"}};
  }
  Result<CallOutput> Run(const DomainCall& call) override {
    if (call.function != "id" || call.args.size() != 1) {
      return Status::NotFound("no function " + call.function);
    }
    CallOutput out;
    out.answers = {call.args[0]};
    out.first_ms = out.all_ms = 1.0;
    return out;
  }

 private:
  std::string name_;
};

TEST(RegistryTest, RegisterAndRun) {
  DomainRegistry registry;
  ASSERT_TRUE(registry.Register("echo", std::make_shared<EchoDomain>("echo"))
                  .ok());
  EXPECT_TRUE(registry.Has("echo"));
  DomainCall call{"echo", "id", {Value::Int(9)}};
  Result<CallOutput> out = registry.Run(call);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->answers, AnswerSet{Value::Int(9)});
}

TEST(RegistryTest, DuplicateNameRejected) {
  DomainRegistry registry;
  ASSERT_TRUE(registry.Register("d", std::make_shared<EchoDomain>("d")).ok());
  EXPECT_EQ(registry.Register("d", std::make_shared<EchoDomain>("d"))
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(RegistryTest, RegisterOrReplaceOverwrites) {
  DomainRegistry registry;
  auto a = std::make_shared<EchoDomain>("a");
  auto b = std::make_shared<EchoDomain>("b");
  registry.RegisterOrReplace("d", a);
  registry.RegisterOrReplace("d", b);
  Result<std::shared_ptr<Domain>> got = registry.Get("d");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->name(), "b");
}

TEST(RegistryTest, NullDomainRejected) {
  DomainRegistry registry;
  EXPECT_FALSE(registry.Register("d", nullptr).ok());
}

TEST(RegistryTest, UnknownDomainIsNotFound) {
  DomainRegistry registry;
  DomainCall call{"ghost", "id", {}};
  EXPECT_TRUE(registry.Run(call).status().IsNotFound());
  EXPECT_TRUE(registry.Get("ghost").status().IsNotFound());
}

TEST(RegistryTest, UnregisterRemoves) {
  DomainRegistry registry;
  ASSERT_TRUE(registry.Register("d", std::make_shared<EchoDomain>("d")).ok());
  EXPECT_TRUE(registry.Unregister("d").ok());
  EXPECT_FALSE(registry.Has("d"));
  EXPECT_TRUE(registry.Unregister("d").IsNotFound());
}

TEST(RegistryTest, NamesAreSorted) {
  DomainRegistry registry;
  (void)registry.Register("zeta", std::make_shared<EchoDomain>("zeta"));
  (void)registry.Register("alpha", std::make_shared<EchoDomain>("alpha"));
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace hermes
