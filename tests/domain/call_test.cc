#include "domain/call.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "domain/domain.h"
#include "lang/parser.h"

namespace hermes {
namespace {

TEST(DomainCallTest, FromGroundSpec) {
  Result<lang::DomainCallSpec> spec =
      lang::Parser::ParseCallPattern("video:frames_to_objects('rope', 4, 47)");
  ASSERT_TRUE(spec.ok());
  Result<DomainCall> call = DomainCall::FromSpec(*spec);
  ASSERT_TRUE(call.ok()) << call.status();
  EXPECT_EQ(call->domain, "video");
  EXPECT_EQ(call->function, "frames_to_objects");
  ASSERT_EQ(call->args.size(), 3u);
  EXPECT_EQ(call->args[1], Value::Int(4));
}

TEST(DomainCallTest, FromNonGroundSpecFails) {
  Result<lang::DomainCallSpec> spec =
      lang::Parser::ParseCallPattern("d:f(5, $b)");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(DomainCall::FromSpec(*spec).ok());
}

TEST(DomainCallTest, ToSpecRoundTrip) {
  DomainCall call{"d", "f", {Value::Int(1), Value::Str("x")}};
  lang::DomainCallSpec spec = call.ToSpec();
  EXPECT_TRUE(spec.is_ground());
  Result<DomainCall> back = DomainCall::FromSpec(spec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, call);
}

TEST(DomainCallTest, EqualityAndHash) {
  DomainCall a{"d", "f", {Value::Int(1)}};
  DomainCall b{"d", "f", {Value::Int(1)}};
  DomainCall c{"d", "f", {Value::Int(2)}};
  DomainCall d{"e", "f", {Value::Int(1)}};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);

  std::unordered_set<DomainCall, DomainCallHash> set;
  set.insert(a);
  EXPECT_EQ(set.count(b), 1u);
  EXPECT_EQ(set.count(c), 0u);
}

TEST(DomainCallTest, ToStringRendering) {
  DomainCall call{"video", "video_size", {Value::Str("rope")}};
  EXPECT_EQ(call.ToString(), "video:video_size('rope')");
}

TEST(DomainCallTest, AnswerSetByteSizeSumsValues) {
  AnswerSet answers = {Value::Int(1), Value::Str("abc")};
  EXPECT_EQ(AnswerSetByteSize(answers),
            Value::Int(1).ApproxByteSize() + Value::Str("abc").ApproxByteSize());
  EXPECT_EQ(AnswerSetByteSize({}), 0u);
}

TEST(ArrivalOffsetTest, InterpolatesBetweenFirstAndAll) {
  CallOutput out;
  out.answers = {Value::Int(0), Value::Int(1), Value::Int(2)};
  out.first_ms = 10.0;
  out.all_ms = 30.0;
  EXPECT_DOUBLE_EQ(ArrivalOffsetMs(out, 0), 10.0);
  EXPECT_DOUBLE_EQ(ArrivalOffsetMs(out, 1), 20.0);
  EXPECT_DOUBLE_EQ(ArrivalOffsetMs(out, 2), 30.0);
}

TEST(ArrivalOffsetTest, SingleAnswerArrivesAtFirst) {
  CallOutput out;
  out.answers = {Value::Int(0)};
  out.first_ms = 5.0;
  out.all_ms = 9.0;
  EXPECT_DOUBLE_EQ(ArrivalOffsetMs(out, 0), 5.0);
}

}  // namespace
}  // namespace hermes
