#include <gtest/gtest.h>

#include <string>

#include "domain/pipeline.h"

namespace hermes {
namespace {

// Drift-proofing (see the mirror static_assert in pipeline.cc): Merge is
// generated from the same field-list macros this test walks, so a field
// that exists in CallMetrics but not in the macros fails compilation, and
// a macro entry that Merge mishandles fails here.
TEST(CallMetrics, MergeAddsEveryListedField) {
  CallMetrics a, b;
  uint64_t seed = 1;
#define HERMES_FIELD(f) \
  a.f = seed;           \
  b.f = 10 * seed;      \
  seed += 1;
  HERMES_CALL_METRICS_UINT64_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD
  double dseed = 0.5;
#define HERMES_FIELD(f) \
  a.f = dseed;          \
  b.f = 10.0 * dseed;   \
  dseed += 0.25;
  HERMES_CALL_METRICS_DOUBLE_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD

  a.Merge(b);

  seed = 1;
#define HERMES_FIELD(f)                        \
  EXPECT_EQ(a.f, seed + 10 * seed) << #f;      \
  seed += 1;
  HERMES_CALL_METRICS_UINT64_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD
  dseed = 0.5;
#define HERMES_FIELD(f)                                   \
  EXPECT_DOUBLE_EQ(a.f, dseed + 10.0 * dseed) << #f;      \
  dseed += 0.25;
  HERMES_CALL_METRICS_DOUBLE_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD
}

TEST(CallMetrics, MergeOntoDefaultEqualsSource) {
  CallMetrics a, b;
  b.domain_calls = 3;
  b.cache_hits = 2;
  b.network_ms = 12.5;
  a.Merge(b);
  EXPECT_EQ(a.domain_calls, 3u);
  EXPECT_EQ(a.cache_hits, 2u);
  EXPECT_DOUBLE_EQ(a.network_ms, 12.5);
  EXPECT_EQ(a.remote_calls, 0u);
}

TEST(CallTrace, ToStringFlattensMultiLineErrors) {
  CallTrace entry;
  entry.call.domain = "video";
  entry.call.function = "frames_to_objects";
  entry.t_start_ms = 12.5;
  entry.failed = true;
  entry.error = "line one\nline two\r\nline three";

  std::string s = entry.ToString();
  EXPECT_EQ(s.find('\n'), std::string::npos);
  EXPECT_EQ(s.find('\r'), std::string::npos);
  EXPECT_NE(s.find("line one\\nline two\\r\\nline three"), std::string::npos);
  EXPECT_NE(s.find("FAILED"), std::string::npos);
}

TEST(CallTrace, ToStringStaysSortableByLeadingTimestamp) {
  CallTrace early, late;
  early.call.domain = "d";
  early.call.function = "f";
  early.t_start_ms = 5.0;
  early.failed = true;
  early.error = "broken\npipe";
  late = early;
  late.t_start_ms = 105.0;
  late.failed = false;
  late.answers = 2;

  std::string a = early.ToString();
  std::string b = late.ToString();
  // Fixed-width "t=%9.1fms" prefix: lexical order == chronological order,
  // and flattening keeps each entry on one physical line.
  EXPECT_EQ(a.rfind("t=", 0), 0u);
  EXPECT_EQ(b.rfind("t=", 0), 0u);
  EXPECT_LT(a.substr(0, 13), b.substr(0, 13));
}

}  // namespace
}  // namespace hermes
