#include "domain/resilience/resilience.h"

#include <gtest/gtest.h>

#include <cmath>

#include "domain/pipeline.h"

namespace hermes::resilience {
namespace {

constexpr double kTimeoutMs = 2000.0;  // per-failure penalty the fake charges

DomainCall TheCall() { return DomainCall{"video", "frames", {Value::Int(4)}}; }

/// A fake inner layer (the network + domain below the resilience layer):
/// unavailable until the query clock reaches `recover_at_ms`, then answers
/// with fixed latencies. Each failed attempt charges the retry timeout the
/// way NetworkInterceptor does.
struct FlakySite {
  double recover_at_ms = 0.0;
  int attempts = 0;
  double slow_all_ms = 10.0;  // latency of a successful response

  CallInterceptor::Next AsNext() {
    return [this](CallContext& ctx, const DomainCall&) -> Result<CallOutput> {
      ++attempts;
      if (ctx.now_ms < recover_at_ms) {
        ctx.last_failure_site = "umd";
        ctx.last_failure_cause = "outage";
        ctx.last_call_penalty_ms = kTimeoutMs;
        return Status::Unavailable("site 'umd' is down");
      }
      CallOutput out;
      out.answers = {Value::Int(1)};
      out.first_ms = 5.0;
      out.all_ms = slow_all_ms;
      return out;
    };
  }
};

ResiliencePolicy NoJitterRetries(int max_retries) {
  ResiliencePolicy policy;
  policy.retry.max_retries = max_retries;
  policy.retry.backoff_base_ms = 100.0;
  policy.retry.backoff_multiplier = 2.0;
  policy.retry.backoff_jitter = 0.0;
  return policy;
}

TEST(ResilienceTest, DefaultPolicyIsSingleAttemptPassThrough) {
  FlakySite site;
  site.recover_at_ms = 1e12;  // never recovers
  ResilienceInterceptor shield("umd", 1996, nullptr);
  CallContext ctx;
  Result<CallOutput> run = shield.Intercept(ctx, TheCall(), site.AsNext());
  EXPECT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsUnavailable());
  EXPECT_EQ(site.attempts, 1);
  EXPECT_EQ(ctx.metrics.retries, 0u);
  // Giving up names the lost source.
  ASSERT_EQ(ctx.source_errors.size(), 1u);
  EXPECT_EQ(ctx.source_errors[0].site, "umd");
  EXPECT_EQ(ctx.source_errors[0].cause, "outage");
  EXPECT_FALSE(ctx.source_errors[0].masked);
}

TEST(ResilienceTest, BackoffRidesOutAnOutageWindow) {
  // Attempt 0 at t=0 fails (+2000ms timeout, +100ms backoff); attempt 1 at
  // t=2100 fails (+2000, +200); attempt 2 at t=4300 is past the outage.
  FlakySite site;
  site.recover_at_ms = 2500.0;
  ResilienceInterceptor shield("umd", 1996, nullptr, NoJitterRetries(3));
  CallContext ctx;
  Result<CallOutput> run = shield.Intercept(ctx, TheCall(), site.AsNext());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(site.attempts, 3);
  EXPECT_EQ(ctx.metrics.retries, 2u);
  EXPECT_DOUBLE_EQ(ctx.metrics.retry_backoff_ms, 300.0);  // 100 + 200
  // The waits ride on the answer's simulated latency.
  EXPECT_DOUBLE_EQ(run->all_ms, 4300.0 + 10.0);
  EXPECT_DOUBLE_EQ(run->first_ms, 4300.0 + 5.0);
  EXPECT_TRUE(ctx.source_errors.empty());  // it recovered: nothing lost
}

TEST(ResilienceTest, BackoffJitterIsDeterministicPerQueryAndCall) {
  ResiliencePolicy policy = NoJitterRetries(2);
  policy.retry.backoff_jitter = 0.10;
  auto run_once = [&](uint64_t seed, uint64_t query_id) {
    FlakySite site;
    site.recover_at_ms = 1e12;
    ResilienceInterceptor shield("umd", seed, nullptr, policy);
    CallContext ctx;
    ctx.query_id = query_id;
    (void)shield.Intercept(ctx, TheCall(), site.AsNext());
    return ctx.metrics.retry_backoff_ms;
  };
  double first = run_once(1996, 7);
  EXPECT_DOUBLE_EQ(first, run_once(1996, 7));  // bit-identical replay
  // Jitter stays inside the +/-10% band around the nominal 100+200ms.
  EXPECT_GE(first, 300.0 * 0.9);
  EXPECT_LE(first, 300.0 * 1.1);
  // ... and the stream really is keyed on (seed, query).
  EXPECT_NE(first, run_once(1996, 8));
  EXPECT_NE(first, run_once(2024, 7));
}

TEST(ResilienceTest, CallDeadlineBoundsTheRetrySchedule) {
  FlakySite site;
  site.recover_at_ms = 1e12;
  ResiliencePolicy policy = NoJitterRetries(5);
  policy.call_deadline_ms = 1500.0;  // one 2000ms timeout already overshoots
  ResilienceInterceptor shield("umd", 1996, nullptr, policy);
  CallContext ctx;
  Result<CallOutput> run = shield.Intercept(ctx, TheCall(), site.AsNext());
  EXPECT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsDeadlineExceeded());
  EXPECT_EQ(site.attempts, 1);  // attempt 2 was never issued
  EXPECT_EQ(ctx.metrics.deadline_aborts, 1u);
  ASSERT_EQ(ctx.source_errors.size(), 1u);
  EXPECT_EQ(ctx.source_errors[0].cause, "deadline");
}

TEST(ResilienceTest, QueryDeadlineAbortsBeforeAnyAttempt) {
  FlakySite site;
  ResilienceInterceptor shield("umd", 1996, nullptr, NoJitterRetries(2));
  CallContext ctx;
  ctx.now_ms = 10.0;
  ctx.deadline_ms = 5.0;  // already past the query deadline
  Result<CallOutput> run = shield.Intercept(ctx, TheCall(), site.AsNext());
  EXPECT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsDeadlineExceeded());
  EXPECT_EQ(site.attempts, 0);
  EXPECT_EQ(ctx.metrics.deadline_aborts, 1u);
}

TEST(ResilienceTest, SlowResponseIsAbandonedAtTheCallDeadline) {
  FlakySite site;
  site.slow_all_ms = 50000.0;  // a slow-injection-sized response
  ResiliencePolicy policy;
  policy.call_deadline_ms = 10000.0;
  ResilienceInterceptor shield("umd", 1996, nullptr, policy);
  CallContext ctx;
  Result<CallOutput> run = shield.Intercept(ctx, TheCall(), site.AsNext());
  EXPECT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsDeadlineExceeded());
  EXPECT_EQ(ctx.metrics.deadline_aborts, 1u);
}

TEST(ResilienceTest, BreakerOpensShedsAndProbesBackClosed) {
  FlakySite site;
  site.recover_at_ms = 1e12;
  ResiliencePolicy policy;  // no retries: one attempt per call
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 2;
  policy.breaker.probe_interval = 4;
  ResilienceInterceptor shield("umd", 1996, nullptr, policy);
  CallContext ctx;

  // Calls 1-2 attempt and fail: the breaker trips at the threshold.
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(shield.Intercept(ctx, TheCall(), site.AsNext()).ok());
  }
  EXPECT_EQ(site.attempts, 2);
  ASSERT_EQ(ctx.breaker_states.count("umd"), 1u);
  EXPECT_EQ(ctx.breaker_states["umd"].state,
            CallContext::BreakerState::kOpen);

  // Calls 3-5 are shed without touching the site; call 6 is the probe.
  for (int i = 0; i < 3; ++i) {
    Result<CallOutput> shed = shield.Intercept(ctx, TheCall(), site.AsNext());
    EXPECT_FALSE(shed.ok());
  }
  EXPECT_EQ(site.attempts, 2);  // load was shed, not attempted
  EXPECT_EQ(ctx.metrics.breaker_shed, 3u);
  EXPECT_EQ(ctx.source_errors.back().cause, "breaker-open");

  site.recover_at_ms = 0.0;  // the site comes back...
  Result<CallOutput> probe = shield.Intercept(ctx, TheCall(), site.AsNext());
  ASSERT_TRUE(probe.ok()) << probe.status();  // ...and the probe finds out
  EXPECT_EQ(site.attempts, 3);
  EXPECT_EQ(ctx.breaker_states["umd"].state,
            CallContext::BreakerState::kClosed);
  // Closed again: the next call goes straight through.
  EXPECT_TRUE(shield.Intercept(ctx, TheCall(), site.AsNext()).ok());
  EXPECT_EQ(site.attempts, 4);
  EXPECT_EQ(ctx.metrics.breaker_shed, 3u);
}

TEST(ResilienceTest, FailedProbeReopensTheBreaker) {
  FlakySite site;
  site.recover_at_ms = 1e12;
  ResiliencePolicy policy;
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 1;
  policy.breaker.probe_interval = 2;
  ResilienceInterceptor shield("umd", 1996, nullptr, policy);
  CallContext ctx;
  EXPECT_FALSE(shield.Intercept(ctx, TheCall(), site.AsNext()).ok());  // trip
  EXPECT_FALSE(shield.Intercept(ctx, TheCall(), site.AsNext()).ok());  // shed
  EXPECT_FALSE(shield.Intercept(ctx, TheCall(), site.AsNext()).ok());  // probe
  EXPECT_EQ(site.attempts, 2);  // trip + failed probe
  EXPECT_EQ(ctx.breaker_states["umd"].state,
            CallContext::BreakerState::kOpen);
  EXPECT_EQ(ctx.metrics.breaker_shed, 1u);
}

TEST(ResilienceTest, FailoverReroutesAfterGivingUp) {
  FlakySite site;
  site.recover_at_ms = 1e12;
  ResilienceInterceptor shield("umd", 1996, nullptr);
  shield.set_failover([](CallContext&, const DomainCall&) {
    CallOutput out;
    out.answers = {Value::Str("mirror")};
    out.first_ms = 1.0;
    out.all_ms = 2.0;
    return Result<CallOutput>(std::move(out));
  });
  CallContext ctx;
  Result<CallOutput> run = shield.Intercept(ctx, TheCall(), site.AsNext());
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_EQ(run->answers.size(), 1u);
  EXPECT_EQ(run->answers[0], Value::Str("mirror"));
  EXPECT_EQ(ctx.metrics.failovers, 1u);
  // The time burned on the dead primary precedes the alternate's answer.
  EXPECT_DOUBLE_EQ(run->all_ms, kTimeoutMs + 2.0);
  EXPECT_TRUE(ctx.source_errors.empty());  // nothing was lost in the end
}

TEST(ResilienceTest, FailoverCanBeDisabledByPolicy) {
  FlakySite site;
  site.recover_at_ms = 1e12;
  ResiliencePolicy policy;
  policy.enable_failover = false;
  ResilienceInterceptor shield("umd", 1996, nullptr, policy);
  bool failover_ran = false;
  shield.set_failover([&](CallContext&, const DomainCall&) {
    failover_ran = true;
    return Result<CallOutput>(CallOutput{});
  });
  CallContext ctx;
  EXPECT_FALSE(shield.Intercept(ctx, TheCall(), site.AsNext()).ok());
  EXPECT_FALSE(failover_ran);
  EXPECT_EQ(ctx.metrics.failovers, 0u);
}

TEST(ResilienceTest, NonRetryableErrorsPassThroughUntouched) {
  ResilienceInterceptor shield("umd", 1996, nullptr, NoJitterRetries(3));
  CallContext ctx;
  int attempts = 0;
  auto next = [&](CallContext&, const DomainCall&) -> Result<CallOutput> {
    ++attempts;
    return Status::InvalidArgument("bad call shape");
  };
  Result<CallOutput> run = shield.Intercept(ctx, TheCall(), next);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(attempts, 1);  // invariant violations are not retried
  EXPECT_EQ(ctx.metrics.retries, 0u);
  EXPECT_TRUE(ctx.source_errors.empty());  // and not a "lost source" either
}

TEST(ResilienceTest, EstimatePassesThroughForFullyAvailableSites) {
  ResilienceInterceptor shield("umd", 1996, nullptr, NoJitterRetries(3));
  lang::DomainCallSpec spec;
  auto next = [](const lang::DomainCallSpec&) {
    return Result<CostVector>(CostVector(10.0, 20.0, 5.0));
  };
  Result<CostVector> cost = shield.EstimateCost(spec, next);
  ASSERT_TRUE(cost.ok());
  // No link → availability 1 → byte-identical inner estimate (what keeps
  // the historical experiment tables unchanged).
  EXPECT_DOUBLE_EQ(cost->t_first_ms, 10.0);
  EXPECT_DOUBLE_EQ(cost->t_all_ms, 20.0);
  EXPECT_DOUBLE_EQ(cost->cardinality, 5.0);
}

}  // namespace
}  // namespace hermes::resilience
