#include "common/row.h"

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/value.h"

namespace hermes {
namespace {

// ---------------------------------------------------------------------------
// RowSchema
// ---------------------------------------------------------------------------

TEST(RowSchemaTest, ForVariablesAndFieldIndex) {
  RowSchema schema = RowSchema::ForVariables({"A", "B", "Count"});
  EXPECT_EQ(schema.size(), 3u);
  EXPECT_EQ(schema.FieldIndex("A"), 0);
  EXPECT_EQ(schema.FieldIndex("Count"), 2);
  EXPECT_EQ(schema.FieldIndex("Missing"), -1);
  EXPECT_EQ(schema.field(1).name, "B");
  EXPECT_EQ(schema.field(1).type, RowFieldType::kAny);
}

TEST(RowSchemaTest, ToStringListsFieldsAndTypes) {
  RowSchema schema(
      {RowField{"Id", RowFieldType::kInt}, RowField{"Name", RowFieldType::kString}});
  EXPECT_EQ(schema.ToString(), "(Id: int, Name: string)");
  EXPECT_EQ(RowSchema().ToString(), "()");
}

// ---------------------------------------------------------------------------
// Round-trip: FromValues(ToValues(r)) is the identity across all types,
// nulls and nested payloads.
// ---------------------------------------------------------------------------

void ExpectRoundTrip(const ValueList& values) {
  Arena arena;
  RowSchema schema = RowSchema::ForVariables([&] {
    std::vector<std::string> names;
    for (size_t i = 0; i < values.size(); ++i) {
      names.push_back("V" + std::to_string(i));
    }
    return names;
  }());
  Row row = Row::FromValues(&schema, values, &arena);
  ValueList back = row.ToValues();
  ASSERT_EQ(back.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(back[i], values[i]) << "slot " << i;
    EXPECT_EQ(row.ToValue(i), values[i]) << "slot " << i;
  }
}

TEST(RowRoundTripTest, ElementaryTypes) {
  ExpectRoundTrip({Value::Null(), Value::Bool(true), Value::Bool(false),
                   Value::Int(0), Value::Int(-42),
                   Value::Int(9223372036854775807LL), Value::Double(0.0),
                   Value::Double(-2.5), Value::Str(""), Value::Str("frames"),
                   Value::Str(std::string(1000, 'x'))});
}

TEST(RowRoundTripTest, NestedListsAndStructs) {
  Value inner_list = Value::List({Value::Int(1), Value::Str("two"),
                                  Value::List({Value::Double(3.0)})});
  Value inner_struct = Value::Struct(
      {{"x", Value::Int(10)},
       {"y", Value::Struct({{"z", Value::List({Value::Null()})}})}});
  ExpectRoundTrip({inner_list, inner_struct, Value::List({}),
                   Value::Struct({})});
}

TEST(RowRoundTripTest, AllNullRowAndSetNull) {
  Arena arena;
  RowSchema schema = RowSchema::ForVariables({"A", "B"});
  Row row = Row::Make(&schema, &arena);
  EXPECT_EQ(row.ToValue(0), Value::Null());
  EXPECT_EQ(row.ToValue(1), Value::Null());

  row.Set(0, Value::Int(5), &arena);
  EXPECT_EQ(row.ToValue(0), Value::Int(5));
  row.SetNull(0);
  EXPECT_EQ(row.ToValue(0), Value::Null());
}

TEST(RowRoundTripTest, StringsAreArenaCopies) {
  Arena arena;
  RowSchema schema = RowSchema::ForVariables({"S"});
  Row row = Row::Make(&schema, &arena);
  {
    std::string transient = "short lived source";
    row.Set(0, Value::Str(transient), &arena);
    transient.assign(transient.size(), '!');
  }
  EXPECT_EQ(row.ToValue(0), Value::Str("short lived source"));
}

TEST(RowRoundTripTest, FromValuesPadsAndTruncates) {
  Arena arena;
  RowSchema schema = RowSchema::ForVariables({"A", "B", "C"});
  // Shorter input: trailing slots stay null.
  Row padded = Row::FromValues(&schema, {Value::Int(1)}, &arena);
  EXPECT_EQ(padded.ToValue(0), Value::Int(1));
  EXPECT_EQ(padded.ToValue(1), Value::Null());
  EXPECT_EQ(padded.ToValue(2), Value::Null());
  // Longer input: extras ignored.
  Row truncated = Row::FromValues(
      &schema,
      {Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)}, &arena);
  EXPECT_EQ(truncated.ToValues(),
            (ValueList{Value::Int(1), Value::Int(2), Value::Int(3)}));
}

TEST(RowRoundTripTest, RandomizedValuesSurviveRoundTrip) {
  std::mt19937 rng(2026);
  auto random_value = [&](auto&& self, int depth) -> Value {
    int pick = static_cast<int>(rng() % (depth > 0 ? 7 : 5));
    switch (pick) {
      case 0:
        return Value::Null();
      case 1:
        return Value::Bool(rng() % 2 == 0);
      case 2:
        return Value::Int(static_cast<int64_t>(rng()) - (1u << 31));
      case 3:
        return Value::Double(std::uniform_real_distribution<double>(-1e6,
                                                                    1e6)(rng));
      case 4:
        return Value::Str("s" + std::to_string(rng() % 1000));
      case 5: {
        ValueList items;
        for (size_t i = 0; i < rng() % 4; ++i) {
          items.push_back(self(self, depth - 1));
        }
        return Value::List(std::move(items));
      }
      default: {
        StructFields fields;
        for (size_t i = 0; i < rng() % 4; ++i) {
          fields.emplace_back("f" + std::to_string(i), self(self, depth - 1));
        }
        return Value::Struct(std::move(fields));
      }
    }
  };
  for (int trial = 0; trial < 50; ++trial) {
    ValueList values;
    size_t width = 1 + rng() % 6;
    for (size_t i = 0; i < width; ++i) {
      values.push_back(random_value(random_value, 2));
    }
    ExpectRoundTrip(values);
  }
}

// ---------------------------------------------------------------------------
// Comparison parity: Row::CompareField must reproduce Value::Compare
// exactly, including int/double cross-type ordering.
// ---------------------------------------------------------------------------

int Sign(int c) { return c == 0 ? 0 : (c < 0 ? -1 : 1); }

void ExpectComparisonParity(const Value& a, const Value& b) {
  Arena arena;
  RowSchema schema = RowSchema::ForVariables({"V"});
  Row ra = Row::FromValues(&schema, {a}, &arena);
  Row rb = Row::FromValues(&schema, {b}, &arena);
  EXPECT_EQ(Sign(ra.CompareField(0, rb)), Sign(a.Compare(b)))
      << a.ToString() << " vs " << b.ToString();
  EXPECT_EQ(Sign(rb.CompareField(0, ra)), Sign(b.Compare(a)))
      << b.ToString() << " vs " << a.ToString();
}

TEST(RowCompareTest, MixedIntDoubleMatchesValueOrdering) {
  ExpectComparisonParity(Value::Int(2), Value::Double(2.0));
  ExpectComparisonParity(Value::Int(2), Value::Double(2.5));
  ExpectComparisonParity(Value::Int(3), Value::Double(2.5));
  ExpectComparisonParity(Value::Int(-1), Value::Double(-0.5));
  ExpectComparisonParity(Value::Double(1.5), Value::Double(1.5));
  ExpectComparisonParity(Value::Int(7), Value::Int(7));
  ExpectComparisonParity(Value::Int(-8), Value::Int(3));
}

TEST(RowCompareTest, CrossTypeRankMatchesValueOrdering) {
  ValueList samples = {
      Value::Null(),         Value::Bool(false),
      Value::Bool(true),     Value::Int(1),
      Value::Double(2.5),    Value::Str("a"),
      Value::Str("b"),       Value::List({Value::Int(1)}),
      Value::Struct({{"k", Value::Int(1)}}),
  };
  for (const Value& a : samples) {
    for (const Value& b : samples) {
      ExpectComparisonParity(a, b);
    }
  }
}

TEST(RowCompareTest, WholeRowLexicographic) {
  Arena arena;
  RowSchema schema = RowSchema::ForVariables({"A", "B"});
  Row r1 = Row::FromValues(&schema, {Value::Int(1), Value::Str("z")}, &arena);
  Row r2 = Row::FromValues(&schema, {Value::Int(1), Value::Str("a")}, &arena);
  Row r3 = Row::FromValues(&schema, {Value::Int(0), Value::Str("z")}, &arena);
  EXPECT_GT(r1.Compare(r2), 0);
  EXPECT_LT(r2.Compare(r1), 0);
  EXPECT_GT(r1.Compare(r3), 0);
  EXPECT_EQ(r1.Compare(r1), 0);
}

TEST(RowCompareTest, RandomizedParityWithValueCompare) {
  std::mt19937 rng(55);
  auto random_scalar = [&]() -> Value {
    switch (rng() % 5) {
      case 0:
        return Value::Null();
      case 1:
        return Value::Bool(rng() % 2 == 0);
      case 2:
        return Value::Int(static_cast<int64_t>(rng() % 20) - 10);
      case 3:
        return Value::Double((static_cast<double>(rng() % 40) - 20) / 2.0);
      default:
        return Value::Str(std::string(1, static_cast<char>('a' + rng() % 4)));
    }
  };
  for (int trial = 0; trial < 500; ++trial) {
    ExpectComparisonParity(random_scalar(), random_scalar());
  }
}

}  // namespace
}  // namespace hermes
