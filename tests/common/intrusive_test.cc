#include "common/intrusive_heap.h"
#include "common/intrusive_map.h"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace hermes {
namespace {

// ---------------------------------------------------------------------------
// IntrusiveList
// ---------------------------------------------------------------------------

struct ListItem {
  explicit ListItem(int v) : value(v) {}
  int value;
  IntrusiveListNode node;
};

using ItemList = IntrusiveList<ListItem, &ListItem::node>;

std::vector<int> Collect(const ItemList& list) {
  std::vector<int> out;
  list.ForEach([&](ListItem& item) {
    out.push_back(item.value);
    return true;
  });
  return out;
}

TEST(IntrusiveListTest, PushFrontBackOrdering) {
  ItemList list;
  EXPECT_TRUE(list.empty());
  ListItem a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushFront(&c);
  EXPECT_EQ(Collect(list), (std::vector<int>{3, 1, 2}));
  EXPECT_EQ(list.Front(), &c);
  EXPECT_EQ(list.Back(), &b);
}

TEST(IntrusiveListTest, MoveToFrontIsLruDiscipline) {
  ItemList list;
  ListItem a(1), b(2), c(3);
  list.PushFront(&a);
  list.PushFront(&b);
  list.PushFront(&c);  // order: c b a
  list.MoveToFront(&a);
  EXPECT_EQ(Collect(list), (std::vector<int>{1, 3, 2}));
  list.MoveToFront(&a);  // already front: no-op
  EXPECT_EQ(Collect(list), (std::vector<int>{1, 3, 2}));
}

TEST(IntrusiveListTest, PopBackEvictsOldest) {
  ItemList list;
  ListItem a(1), b(2), c(3);
  list.PushFront(&a);
  list.PushFront(&b);
  list.PushFront(&c);
  EXPECT_EQ(list.PopBack(), &a);
  EXPECT_EQ(list.PopBack(), &b);
  EXPECT_EQ(list.PopBack(), &c);
  EXPECT_EQ(list.PopBack(), nullptr);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, RemoveMiddleAndLinkedFlag) {
  ItemList list;
  ListItem a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  EXPECT_TRUE(b.node.linked());
  ItemList::Remove(&b);
  EXPECT_FALSE(b.node.linked());
  EXPECT_EQ(Collect(list), (std::vector<int>{1, 3}));
}

TEST(IntrusiveListTest, ForEachEarlyStop) {
  ItemList list;
  ListItem a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  int seen = 0;
  list.ForEach([&](ListItem&) {
    ++seen;
    return seen < 2;
  });
  EXPECT_EQ(seen, 2);
}

// ---------------------------------------------------------------------------
// IntrusiveHashMap
// ---------------------------------------------------------------------------

struct MapItem {
  MapItem(std::string k, int v) : key(std::move(k)), value(v) {}
  std::string key;
  int value;
  IntrusiveMapNode node;
};

using ItemMap = IntrusiveHashMap<MapItem, &MapItem::node>;

size_t KeyHash(const std::string& key) { return std::hash<std::string>{}(key); }

MapItem* Lookup(const ItemMap& map, const std::string& key) {
  return map.Find(KeyHash(key),
                  [&](const MapItem& item) { return item.key == key; });
}

TEST(IntrusiveHashMapTest, InsertFindRemove) {
  ItemMap map;
  MapItem a("alpha", 1), b("beta", 2);
  EXPECT_EQ(Lookup(map, "alpha"), nullptr);
  map.Insert(&a, KeyHash(a.key));
  map.Insert(&b, KeyHash(b.key));
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(Lookup(map, "alpha"), &a);
  EXPECT_EQ(Lookup(map, "beta"), &b);
  EXPECT_EQ(Lookup(map, "gamma"), nullptr);

  map.Remove(&a);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(Lookup(map, "alpha"), nullptr);
  EXPECT_EQ(Lookup(map, "beta"), &b);
}

TEST(IntrusiveHashMapTest, SurvivesRehashUnderGrowth) {
  ItemMap map;
  std::vector<std::unique_ptr<MapItem>> items;
  for (int i = 0; i < 500; ++i) {
    items.push_back(std::make_unique<MapItem>("key" + std::to_string(i), i));
    map.Insert(items.back().get(), KeyHash(items.back()->key));
  }
  EXPECT_EQ(map.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    MapItem* found = Lookup(map, "key" + std::to_string(i));
    ASSERT_NE(found, nullptr) << "key" << i;
    EXPECT_EQ(found->value, i);
  }
}

TEST(IntrusiveHashMapTest, HashCollisionsResolvedByEquality) {
  ItemMap map;
  MapItem a("a", 1), b("b", 2);
  // Force both into the same chain with an identical hash.
  map.Insert(&a, 42);
  map.Insert(&b, 42);
  MapItem* fa = map.Find(42, [](const MapItem& i) { return i.key == "a"; });
  MapItem* fb = map.Find(42, [](const MapItem& i) { return i.key == "b"; });
  EXPECT_EQ(fa, &a);
  EXPECT_EQ(fb, &b);
  map.Remove(&a);
  EXPECT_EQ(map.Find(42, [](const MapItem& i) { return i.key == "a"; }),
            nullptr);
  EXPECT_EQ(map.Find(42, [](const MapItem& i) { return i.key == "b"; }), &b);
}

TEST(IntrusiveHashMapTest, ClearAndForEach) {
  ItemMap map;
  MapItem a("a", 1), b("b", 2), c("c", 3);
  map.Insert(&a, KeyHash(a.key));
  map.Insert(&b, KeyHash(b.key));
  map.Insert(&c, KeyHash(c.key));
  int sum = 0;
  map.ForEach([&](MapItem& item) {
    sum += item.value;
    return true;
  });
  EXPECT_EQ(sum, 6);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(Lookup(map, "a"), nullptr);
}

// Freeing the visited element inside ForEach is the teardown sweep both
// the result cache and the cost-vector database rely on; the chain link
// must be read before fn runs or the walk touches freed memory (caught by
// ASan/TSan as use-after-free).
TEST(IntrusiveHashMapTest, ForEachSurvivesFreeingTheVisitedElement) {
  ItemMap map;
  for (int i = 0; i < 100; ++i) {
    auto* item = new MapItem("key" + std::to_string(i), i);
    map.Insert(item, KeyHash(item->key));
  }
  int freed = 0;
  map.ForEach([&](MapItem& item) {
    delete &item;
    ++freed;
    return true;
  });
  EXPECT_EQ(freed, 100);
  map.Clear();
  EXPECT_TRUE(map.empty());
}

// An element threaded into a hash index AND an LRU list with no extra
// allocation — the exact shape the result cache uses.
struct CacheLikeEntry {
  explicit CacheLikeEntry(int k) : key(k) {}
  int key;
  IntrusiveMapNode hash_node;
  IntrusiveListNode lru_node;
};

TEST(IntrusiveHashMapTest, ElementInTwoContainersAtOnce) {
  IntrusiveHashMap<CacheLikeEntry, &CacheLikeEntry::hash_node> index;
  IntrusiveList<CacheLikeEntry, &CacheLikeEntry::lru_node> lru;
  CacheLikeEntry a(1), b(2);
  index.Insert(&a, 1u);
  index.Insert(&b, 2u);
  lru.PushFront(&a);
  lru.PushFront(&b);

  CacheLikeEntry* victim = lru.PopBack();
  ASSERT_EQ(victim, &a);
  index.Remove(victim);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.Find(2u, [](const CacheLikeEntry& e) { return e.key == 2; }),
            &b);
}

// ---------------------------------------------------------------------------
// IntrusiveMinHeap
// ---------------------------------------------------------------------------

struct HeapItem {
  explicit HeapItem(double k) : key(k) {}
  double key;
  IntrusiveHeapNode node;
};

struct HeapLess {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    return a.key < b.key;
  }
};

using ItemHeap = IntrusiveMinHeap<HeapItem, &HeapItem::node, HeapLess>;

TEST(IntrusiveHeapTest, PopsInSortedOrder) {
  std::mt19937 rng(7);
  std::vector<std::unique_ptr<HeapItem>> items;
  ItemHeap heap;
  for (int i = 0; i < 300; ++i) {
    items.push_back(std::make_unique<HeapItem>(
        std::uniform_real_distribution<double>(0, 1000)(rng)));
    heap.Push(items.back().get());
  }
  double prev = -1;
  int popped = 0;
  while (HeapItem* top = heap.Pop()) {
    EXPECT_GE(top->key, prev);
    EXPECT_FALSE(ItemHeap::Contains(top));
    prev = top->key;
    ++popped;
  }
  EXPECT_EQ(popped, 300);
  EXPECT_TRUE(heap.empty());
}

TEST(IntrusiveHeapTest, DecreaseKeyMovesItemUp) {
  ItemHeap heap;
  HeapItem a(10), b(20), c(30);
  heap.Push(&a);
  heap.Push(&b);
  heap.Push(&c);
  c.key = 5;
  heap.Update(&c);
  EXPECT_EQ(heap.Top(), &c);
  EXPECT_EQ(heap.Pop(), &c);
  EXPECT_EQ(heap.Pop(), &a);
  EXPECT_EQ(heap.Pop(), &b);
}

TEST(IntrusiveHeapTest, IncreaseKeyMovesItemDown) {
  ItemHeap heap;
  HeapItem a(10), b(20), c(30);
  heap.Push(&a);
  heap.Push(&b);
  heap.Push(&c);
  a.key = 25;
  heap.Update(&a);
  EXPECT_EQ(heap.Pop(), &b);
  EXPECT_EQ(heap.Pop(), &a);
  EXPECT_EQ(heap.Pop(), &c);
}

TEST(IntrusiveHeapTest, RemoveMiddleKeepsOrder) {
  ItemHeap heap;
  HeapItem a(1), b(2), c(3), d(4);
  heap.Push(&d);
  heap.Push(&b);
  heap.Push(&a);
  heap.Push(&c);
  heap.Remove(&b);
  EXPECT_FALSE(ItemHeap::Contains(&b));
  EXPECT_EQ(heap.Pop(), &a);
  EXPECT_EQ(heap.Pop(), &c);
  EXPECT_EQ(heap.Pop(), &d);
  EXPECT_EQ(heap.Pop(), nullptr);
}

TEST(IntrusiveHeapTest, ContainsTracksMembership) {
  ItemHeap heap;
  HeapItem a(1);
  EXPECT_FALSE(ItemHeap::Contains(&a));
  heap.Push(&a);
  EXPECT_TRUE(ItemHeap::Contains(&a));
  heap.Clear();
  EXPECT_FALSE(ItemHeap::Contains(&a));
  EXPECT_TRUE(heap.empty());
}

TEST(IntrusiveHeapTest, MatchesStdSortUnderRandomChurn) {
  std::mt19937 rng(99);
  std::vector<std::unique_ptr<HeapItem>> items;
  ItemHeap heap;
  for (int i = 0; i < 200; ++i) {
    items.push_back(std::make_unique<HeapItem>(static_cast<double>(i)));
    heap.Push(items.back().get());
  }
  // Random decrease-key churn.
  for (int i = 0; i < 500; ++i) {
    HeapItem* item = items[rng() % items.size()].get();
    item->key = std::uniform_real_distribution<double>(-100, 300)(rng);
    heap.Update(item);
  }
  std::vector<double> popped;
  while (HeapItem* top = heap.Pop()) popped.push_back(top->key);
  std::vector<double> sorted = popped;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(popped, sorted);
}

}  // namespace
}  // namespace hermes
