#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/rng.h"

namespace hermes {
namespace {

TEST(SimClockTest, AdvancesAndResets) {
  SimClock clock;
  EXPECT_EQ(clock.now_ms(), 0.0);
  clock.Advance(12.5);
  clock.Advance(7.5);
  EXPECT_EQ(clock.now_ms(), 20.0);
  clock.Reset();
  EXPECT_EQ(clock.now_ms(), 0.0);
}

TEST(SimClockTest, IgnoresNegativeCharges) {
  SimClock clock;
  clock.Advance(5.0);
  clock.Advance(-3.0);
  EXPECT_EQ(clock.now_ms(), 5.0);
}

TEST(LogicalTimeTest, StrictlyIncreases) {
  LogicalTime t;
  uint64_t a = t.Next();
  uint64_t b = t.Next();
  EXPECT_LT(a, b);
  EXPECT_EQ(t.last(), b);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextU64() != b.NextU64()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextInRangeIsInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, StreamSeedIsAPureFunctionOfBaseAndId) {
  EXPECT_EQ(Rng::StreamSeed(1996, 7), Rng::StreamSeed(1996, 7));
  EXPECT_NE(Rng::StreamSeed(1996, 7), Rng::StreamSeed(1996, 8));
  EXPECT_NE(Rng::StreamSeed(1996, 7), Rng::StreamSeed(1997, 7));
}

TEST(RngTest, StreamsAreIndependentOfConsumptionOrder) {
  // Stream 2's draws must not depend on how much stream 1 consumed — the
  // property the per-query network RNG relies on for thread-count-invariant
  // replay.
  Rng interleaved(Rng::StreamSeed(42, 2));
  Rng hungry(Rng::StreamSeed(42, 1));
  for (int i = 0; i < 1000; ++i) (void)hungry.NextU64();
  Rng fresh(Rng::StreamSeed(42, 2));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(interleaved.NextU64(), fresh.NextU64());
  }
}

TEST(RngTest, AdjacentStreamIdsDecorrelate) {
  // splitmix64 mixing: consecutive ids must not produce near-identical
  // first draws.
  Rng a(Rng::StreamSeed(0, 1));
  Rng b(Rng::StreamSeed(0, 2));
  uint64_t xa = a.NextU64(), xb = b.NextU64();
  EXPECT_NE(xa, xb);
  EXPECT_NE(xa ^ xb, 0x9e3779b97f4a7c15ULL);
}

TEST(RngTest, GaussianHasReasonableMoments) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

}  // namespace
}  // namespace hermes
