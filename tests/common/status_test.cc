#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace hermes {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("no table 'foo'");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "no table 'foo'");
  EXPECT_EQ(s.ToString(), "NotFound: no table 'foo'");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTypeError), "TypeError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, PredicateHelpers) {
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_FALSE(Status::Internal("x").IsNotFound());
}

Status FailsThrough() {
  HERMES_RETURN_IF_ERROR(Status::Unavailable("down"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(FailsThrough().IsUnavailable());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(9), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(9), 9);
}

Result<int> Doubler(Result<int> input) {
  HERMES_ASSIGN_OR_RETURN(int v, std::move(input));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_TRUE(Doubler(Status::Internal("bad")).status().code() ==
              StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

}  // namespace
}  // namespace hermes
