#include "common/io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "engine/mediator.h"
#include "relational/database.h"

namespace hermes {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(IoTest, WriteThenReadRoundTrips) {
  std::string path = TempPath("io_roundtrip.txt");
  const std::string payload = "line one\nline two\n\x01\x02 binary-ish\n";
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsNotFound) {
  EXPECT_TRUE(ReadFileToString("/nonexistent/truly/missing").status()
                  .IsNotFound());
}

TEST(IoTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteStringToFile("/nonexistent/dir/file", "x").ok());
}

TEST(IoTest, MediatorLoadsProgramFile) {
  std::string path = TempPath("program.hm");
  ASSERT_TRUE(WriteStringToFile(path,
                                "% a rule file\n"
                                "greeting('hello').\n"
                                "both(X) :- greeting(X).\n")
                  .ok());
  Mediator med;
  ASSERT_TRUE(med.LoadProgramFile(path).ok());
  Result<QueryResult> res = med.Query("?- both(X).", QueryOptions{});
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->execution.answers.size(), 1u);
  std::remove(path.c_str());
}

TEST(IoTest, MediatorLoadProgramFileMissing) {
  Mediator med;
  EXPECT_TRUE(med.LoadProgramFile("/no/such/file.hm").IsNotFound());
}

TEST(IoTest, DatabaseLoadsCsvFile) {
  std::string path = TempPath("cast.csv");
  ASSERT_TRUE(
      WriteStringToFile(path, "name:string,n:int\n'a',1\n'b',2\n").ok());
  relational::Database db;
  Result<relational::Table*> table = db.LoadCsvFile("cast", path);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->num_rows(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hermes
