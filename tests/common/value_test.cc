#include "common/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace hermes {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), Value::Type::kNull);
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, IntBasics) {
  Value v = Value::Int(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_EQ(v.as_number(), 42.0);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, DoubleBasics) {
  Value v = Value::Double(2.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.as_double(), 2.5);
  EXPECT_EQ(v.ToString(), "2.5");
}

TEST(ValueTest, IntegralDoublePrintsWithDecimalPoint) {
  EXPECT_EQ(Value::Double(3.0).ToString(), "3.0");
}

TEST(ValueTest, BoolBasics) {
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
}

TEST(ValueTest, StringEscaping) {
  Value v = Value::Str("it's");
  EXPECT_EQ(v.ToString(), "'it\\'s'");
}

TEST(ValueTest, ListToString) {
  Value v = Value::TupleOf({Value::Int(1), Value::Str("a")});
  EXPECT_EQ(v.ToString(), "[1, 'a']");
}

TEST(ValueTest, StructToString) {
  Value v = Value::Struct({{"x", Value::Int(1)}, {"y", Value::Int(2)}});
  EXPECT_EQ(v.ToString(), "{x: 1, y: 2}");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_NE(Value::Int(2), Value::Double(2.5));
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
}

TEST(ValueTest, CompareOrdersByTypeThenValue) {
  // null < bool < numeric < string < list < struct
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(5), Value::Str(""));
  EXPECT_LT(Value::Str("zzz"), Value::List({}));
  EXPECT_LT(Value::List({Value::Int(9)}), Value::Struct({}));
}

TEST(ValueTest, ListComparesLexicographically) {
  Value a = Value::TupleOf({Value::Int(1), Value::Int(2)});
  Value b = Value::TupleOf({Value::Int(1), Value::Int(3)});
  Value c = Value::TupleOf({Value::Int(1)});
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);  // shorter prefix first
  EXPECT_EQ(a, Value::TupleOf({Value::Int(1), Value::Int(2)}));
}

TEST(ValueTest, StructComparesFieldsInOrder) {
  Value a = Value::Struct({{"a", Value::Int(1)}});
  Value b = Value::Struct({{"a", Value::Int(2)}});
  Value c = Value::Struct({{"b", Value::Int(0)}});
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);  // field name 'a' < 'b'
}

TEST(ValueTest, GetAttrFindsField) {
  Value v = Value::Struct({{"name", Value::Str("rupert")}});
  Result<Value> r = v.GetAttr("name");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Value::Str("rupert"));
}

TEST(ValueTest, GetAttrMissingFieldIsNotFound) {
  Value v = Value::Struct({{"name", Value::Str("x")}});
  EXPECT_TRUE(v.GetAttr("role").status().IsNotFound());
}

TEST(ValueTest, GetAttrOnNonStructIsTypeError) {
  EXPECT_EQ(Value::Int(1).GetAttr("x").status().code(),
            StatusCode::kTypeError);
}

TEST(ValueTest, GetIndexIsOneBased) {
  Value v = Value::TupleOf({Value::Str("a"), Value::Str("b")});
  EXPECT_EQ(*v.GetIndex(1), Value::Str("a"));
  EXPECT_EQ(*v.GetIndex(2), Value::Str("b"));
  EXPECT_FALSE(v.GetIndex(0).ok());
  EXPECT_TRUE(v.GetIndex(3).status().IsNotFound());
}

TEST(ValueTest, GetIndexOnStructUsesFieldOrder) {
  Value v = Value::Struct({{"x", Value::Int(7)}, {"y", Value::Int(8)}});
  EXPECT_EQ(*v.GetIndex(2), Value::Int(8));
}

TEST(ValueTest, GetIndexOneOnScalarReturnsSelf) {
  EXPECT_EQ(*Value::Int(5).GetIndex(1), Value::Int(5));
  EXPECT_EQ(Value::Int(5).GetIndex(2).status().code(),
            StatusCode::kTypeError);
}

TEST(ValueTest, GetPathMixesNamesAndIndexes) {
  Value row = Value::Struct(
      {{"who", Value::Struct({{"name", Value::Str("stewart")}})},
       {"frames", Value::TupleOf({Value::Int(4), Value::Int(47)})}});
  EXPECT_EQ(*row.GetPath({"who", "name"}), Value::Str("stewart"));
  EXPECT_EQ(*row.GetPath({"frames", "2"}), Value::Int(47));
  EXPECT_EQ(*row.GetPath({}), row);
  EXPECT_FALSE(row.GetPath({"who", "role"}).ok());
}

TEST(ValueTest, HashIsConsistentWithEquality) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value::Str("abc"));
  set.insert(Value::Int(3));
  set.insert(Value::TupleOf({Value::Int(1), Value::Str("x")}));
  EXPECT_EQ(set.count(Value::Str("abc")), 1u);
  EXPECT_EQ(set.count(Value::Double(3.0)), 1u);  // 3 == 3.0
  EXPECT_EQ(set.count(Value::TupleOf({Value::Int(1), Value::Str("x")})), 1u);
  EXPECT_EQ(set.count(Value::Str("abd")), 0u);
}

TEST(ValueTest, ApproxByteSizeGrowsWithContent) {
  EXPECT_GE(Value::Str("hello world").ApproxByteSize(),
            Value::Str("hi").ApproxByteSize());
  Value big = Value::List(ValueList(100, Value::Int(1)));
  EXPECT_GT(big.ApproxByteSize(), 100u * 8u);
}

TEST(ValueTest, ValueListToStringJoins) {
  EXPECT_EQ(ValueListToString({Value::Int(1), Value::Int(2)}), "1, 2");
  EXPECT_EQ(ValueListToString({}), "");
}

// Property sweep: Compare is antisymmetric and consistent with hashing for
// a grid of representative values.
class ValueCompareProperty : public ::testing::TestWithParam<int> {};

std::vector<Value> RepresentativeValues() {
  return {
      Value::Null(),
      Value::Bool(false),
      Value::Bool(true),
      Value::Int(-3),
      Value::Int(0),
      Value::Int(42),
      Value::Double(-3.0),
      Value::Double(41.5),
      Value::Str(""),
      Value::Str("abc"),
      Value::List({}),
      Value::TupleOf({Value::Int(1)}),
      Value::TupleOf({Value::Int(1), Value::Int(2)}),
      Value::Struct({}),
      Value::Struct({{"a", Value::Int(1)}}),
  };
}

TEST_P(ValueCompareProperty, AntisymmetricAndHashConsistent) {
  std::vector<Value> values = RepresentativeValues();
  const Value& a = values[GetParam()];
  for (const Value& b : values) {
    int ab = a.Compare(b);
    int ba = b.Compare(a);
    EXPECT_EQ(ab, -ba) << a << " vs " << b;
    if (ab == 0) {
      EXPECT_EQ(a.Hash(), b.Hash()) << a << " vs " << b;
      EXPECT_EQ(a, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllValues, ValueCompareProperty,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace hermes
