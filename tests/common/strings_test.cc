#include "common/strings.h"

#include <gtest/gtest.h>

namespace hermes {
namespace {

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(SplitString(JoinStrings(parts, "|"), '|'), parts);
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringsTest, TrimStripsBothEnds) {
  EXPECT_EQ(TrimString("  hello \t\n"), "hello");
  EXPECT_EQ(TrimString("   "), "");
  EXPECT_EQ(TrimString("x"), "x");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("MiXeD 42"), "mixed 42");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("cim_video", "cim_"));
  EXPECT_FALSE(StartsWith("video", "cim_"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

}  // namespace
}  // namespace hermes
