#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace hermes {
namespace {

TEST(ArenaTest, AllocReturnsAlignedDistinctStorage) {
  Arena arena;
  void* a = arena.Alloc(8, 8);
  void* b = arena.Alloc(8, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);

  void* c = arena.Alloc(1, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
}

TEST(ArenaTest, BytesUsedTracksAllocations) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  arena.Alloc(100);
  arena.Alloc(28);
  EXPECT_EQ(arena.bytes_used(), 128u);
  EXPECT_GE(arena.bytes_reserved(), 128u);
}

TEST(ArenaTest, GrowsAcrossChunks) {
  Arena arena;
  // Far more than one minimum chunk; every allocation must stay usable.
  std::vector<int*> ptrs;
  for (int i = 0; i < 10000; ++i) {
    int* p = static_cast<int*>(arena.Alloc(sizeof(int), alignof(int)));
    *p = i;
    ptrs.push_back(p);
  }
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(*ptrs[i], i);
  EXPECT_GE(arena.bytes_used(), 10000 * sizeof(int));
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedChunk) {
  Arena arena;
  const size_t big = Arena::kMaxChunkBytes * 2;
  char* p = static_cast<char*>(arena.Alloc(big, 16));
  std::memset(p, 0xab, big);  // must all be addressable
  EXPECT_EQ(static_cast<unsigned char>(p[big - 1]), 0xabu);
}

TEST(ArenaTest, CopyStringIsNulTerminatedCopy) {
  Arena arena;
  std::string original = "mediator";
  const char* copy = arena.CopyString(original);
  original[0] = 'X';  // the copy must be independent
  EXPECT_STREQ(copy, "mediator");
  EXPECT_EQ(copy[8], '\0');

  const char* empty = arena.CopyString("");
  EXPECT_STREQ(empty, "");
}

struct DtorCounter {
  explicit DtorCounter(int* counter) : counter(counter) {}
  ~DtorCounter() { ++*counter; }
  int* counter;
  std::string payload = "needs a real destructor";
};

TEST(ArenaTest, NewRunsDestructorsOnReset) {
  int destroyed = 0;
  Arena arena;
  arena.New<DtorCounter>(&destroyed);
  arena.New<DtorCounter>(&destroyed);
  EXPECT_EQ(destroyed, 0);
  arena.Reset();
  EXPECT_EQ(destroyed, 2);
  // Reset must not double-run them on teardown.
  arena.New<DtorCounter>(&destroyed);
  EXPECT_EQ(destroyed, 2);
}

TEST(ArenaTest, DestructorRunsRegisteredDtors) {
  int destroyed = 0;
  {
    Arena arena;
    arena.New<DtorCounter>(&destroyed);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(ArenaTest, TriviallyDestructibleTypesSkipRegistration) {
  Arena arena;
  int* p = arena.New<int>(41);
  EXPECT_EQ(*p, 41);
  double* d = arena.New<double>(2.5);
  EXPECT_EQ(*d, 2.5);
  arena.Reset();  // must not crash touching unregistered objects
}

TEST(ArenaTest, ResetRewindsAndKeepsFirstChunkWarm) {
  Arena arena;
  arena.Alloc(512);
  size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // The first chunk survives the reset, so a small allocation reuses it.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  arena.Alloc(512);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, ResetAfterGrowthDropsExtraChunks) {
  Arena arena;
  for (int i = 0; i < 200; ++i) arena.Alloc(1024);
  size_t grown = arena.bytes_reserved();
  arena.Reset();
  EXPECT_LT(arena.bytes_reserved(), grown);
  EXPECT_GT(arena.bytes_reserved(), 0u);
}

}  // namespace
}  // namespace hermes
