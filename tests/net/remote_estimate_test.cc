#include <gtest/gtest.h>

#include "lang/parser.h"
#include "net/remote_domain.h"
#include "relational/relational_domain.h"
#include "testbed/scenario.h"

namespace hermes::net {
namespace {

TEST(RemoteEstimateTest, PassthroughAddsNetworkTime) {
  auto sim = std::make_shared<NetworkSimulator>(3);
  auto inner = std::make_shared<relational::RelationalDomain>(
      "ingres", testbed::MakeCastDatabase(), relational::RelationalCostParams{},
      /*provide_cost_model=*/true);
  SiteParams site = UsaSite();
  RemoteDomain remote(inner, site, sim);
  EXPECT_TRUE(remote.HasCostModel());

  Result<lang::DomainCallSpec> pattern =
      lang::Parser::ParseCallPattern("ingres:all('cast')");
  ASSERT_TRUE(pattern.ok());
  Result<CostVector> local = inner->EstimateCost(*pattern);
  Result<CostVector> wan = remote.EstimateCost(*pattern);
  ASSERT_TRUE(local.ok() && wan.ok());
  EXPECT_GT(wan->t_all_ms, local->t_all_ms + site.connect_ms);
  EXPECT_GT(wan->t_first_ms, local->t_first_ms + site.connect_ms);
  EXPECT_DOUBLE_EQ(wan->cardinality, local->cardinality);
}

TEST(RemoteEstimateTest, NoInnerModelMeansNoModel) {
  auto sim = std::make_shared<NetworkSimulator>(3);
  auto inner = std::make_shared<relational::RelationalDomain>(
      "ingres", testbed::MakeCastDatabase());
  RemoteDomain remote(inner, UsaSite(), sim);
  EXPECT_FALSE(remote.HasCostModel());
  Result<lang::DomainCallSpec> pattern =
      lang::Parser::ParseCallPattern("ingres:all('cast')");
  EXPECT_FALSE(remote.EstimateCost(*pattern).ok());
}

TEST(RemoteEstimateTest, MutableSiteInjectsFailures) {
  auto sim = std::make_shared<NetworkSimulator>(3);
  auto inner = std::make_shared<relational::RelationalDomain>(
      "ingres", testbed::MakeCastDatabase());
  RemoteDomain remote(inner, UsaSite(), sim);
  DomainCall call{"relation", "count", {Value::Str("cast")}};
  EXPECT_TRUE(remote.Run(call).ok());
  remote.mutable_site().availability = 0.0;
  EXPECT_TRUE(remote.Run(call).status().IsUnavailable());
  remote.mutable_site().availability = 1.0;
  EXPECT_TRUE(remote.Run(call).ok());
}

TEST(RemoteEstimateTest, FunctionsPassThrough) {
  auto sim = std::make_shared<NetworkSimulator>(3);
  auto inner = std::make_shared<relational::RelationalDomain>(
      "ingres", testbed::MakeCastDatabase());
  RemoteDomain remote(inner, UsaSite(), sim);
  EXPECT_EQ(remote.Functions().size(), inner->Functions().size());
}

}  // namespace
}  // namespace hermes::net
