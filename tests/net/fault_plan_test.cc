#include "net/faults/fault_plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

namespace hermes::net {
namespace {

TEST(FaultPlanParseTest, FullGrammar) {
  Result<FaultPlan> plan = FaultPlan::Parse(
      "# a comment line\n"
      "seed 42\n"
      "outage  site=umd from=0 until=5000\n"
      "flaky   site=cornell p=0.25\n"
      "latency site=* factor=3 from=1000 until=2000\n"
      "slow    site=umd extra_ms=40000 p=0.5  # trailing comment\n");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->seed, 42u);
  ASSERT_EQ(plan->rules.size(), 4u);

  EXPECT_EQ(plan->rules[0].kind, FaultRule::Kind::kOutage);
  EXPECT_EQ(plan->rules[0].site, "umd");
  EXPECT_DOUBLE_EQ(plan->rules[0].from_ms, 0.0);
  EXPECT_DOUBLE_EQ(plan->rules[0].until_ms, 5000.0);

  EXPECT_EQ(plan->rules[1].kind, FaultRule::Kind::kFlaky);
  EXPECT_DOUBLE_EQ(plan->rules[1].probability, 0.25);
  EXPECT_FALSE(std::isfinite(plan->rules[1].until_ms));  // default: always

  EXPECT_EQ(plan->rules[2].kind, FaultRule::Kind::kLatency);
  EXPECT_EQ(plan->rules[2].site, "*");
  EXPECT_DOUBLE_EQ(plan->rules[2].factor, 3.0);

  EXPECT_EQ(plan->rules[3].kind, FaultRule::Kind::kSlow);
  EXPECT_DOUBLE_EQ(plan->rules[3].extra_ms, 40000.0);
  EXPECT_DOUBLE_EQ(plan->rules[3].probability, 0.5);
}

TEST(FaultPlanParseTest, DefaultsAndBlankLines) {
  Result<FaultPlan> plan = FaultPlan::Parse("\n\nflaky site=x\n\n");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->rules.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->rules[0].probability, 1.0);
  EXPECT_DOUBLE_EQ(plan->rules[0].from_ms, 0.0);
  EXPECT_FALSE(std::isfinite(plan->rules[0].until_ms));
  EXPECT_EQ(plan->seed, FaultPlan{}.seed);  // default seed survives
}

TEST(FaultPlanParseTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("explode site=umd").ok());     // unknown rule
  EXPECT_FALSE(FaultPlan::Parse("outage from=0 until=9").ok());  // no site
  EXPECT_FALSE(FaultPlan::Parse("outage site=umd from=abc").ok());
  EXPECT_FALSE(FaultPlan::Parse("flaky site=x p=1.5").ok());   // p out of range
  EXPECT_FALSE(FaultPlan::Parse("latency site=x factor=0").ok());
  EXPECT_FALSE(FaultPlan::Parse("outage site=x from=10 until=10").ok());
  EXPECT_FALSE(FaultPlan::Parse("seed\n").ok());               // seed w/o value
  EXPECT_FALSE(FaultPlan::Parse("seed banana\n").ok());
  EXPECT_FALSE(FaultPlan::Parse("outage site=x naked-token").ok());
  EXPECT_FALSE(FaultPlan::Parse("outage site=x color=red").ok());
  // The error names the offending line.
  Status err = FaultPlan::Parse("seed 1\nbogus site=x\n").status();
  EXPECT_NE(err.message().find("line 2"), std::string::npos) << err;
}

TEST(FaultPlanParseTest, ToStringRoundTrips) {
  Result<FaultPlan> plan = FaultPlan::Parse(
      "seed 7\n"
      "outage site=umd until=5000\n"
      "flaky site=* p=0.25 from=100\n"
      "latency site=cornell factor=2.5\n"
      "slow site=umd extra_ms=1500 p=0.75\n");
  ASSERT_TRUE(plan.ok()) << plan.status();
  Result<FaultPlan> reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(plan->ToString(), reparsed->ToString());
}

TEST(FaultPlanParseTest, LoadReadsSpecFile) {
  std::string path = testing::TempDir() + "/fault_plan_test.faults";
  {
    std::ofstream out(path);
    out << "seed 9\noutage site=umd until=100\n";
  }
  Result<FaultPlan> plan = FaultPlan::Load(path);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->seed, 9u);
  ASSERT_EQ(plan->rules.size(), 1u);
  std::remove(path.c_str());
  EXPECT_FALSE(FaultPlan::Load(path).ok());  // gone now
}

FaultPlan MustParse(const std::string& text) {
  Result<FaultPlan> plan = FaultPlan::Parse(text);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return std::move(plan).value();
}

TEST(FaultInjectorTest, OutageWindowIsHalfOpen) {
  FaultInjector inject(MustParse("outage site=umd from=100 until=200\n"));
  EXPECT_FALSE(inject.Decide("umd", 1, 7, 0, 50.0).unavailable);
  EXPECT_TRUE(inject.Decide("umd", 1, 7, 0, 100.0).unavailable);
  EXPECT_STREQ(inject.Decide("umd", 1, 7, 0, 100.0).cause, "outage");
  EXPECT_TRUE(inject.Decide("umd", 1, 7, 0, 199.9).unavailable);
  EXPECT_FALSE(inject.Decide("umd", 1, 7, 0, 200.0).unavailable);
  // A retry scheduled past the window's end succeeds: that's the property
  // the resilience layer's backoff waits exploit.
  EXPECT_FALSE(inject.Decide("umd", 1, 7, 1, 250.0).unavailable);
  // Other sites are untouched; "*" would match them all.
  EXPECT_FALSE(inject.Decide("cornell", 1, 7, 0, 150.0).unavailable);
  FaultInjector everywhere(MustParse("outage site=*\n"));
  EXPECT_TRUE(everywhere.Decide("cornell", 1, 7, 0, 150.0).unavailable);
}

TEST(FaultInjectorTest, FlakyEdgeProbabilities) {
  FaultInjector never(MustParse("flaky site=umd p=0\n"));
  FaultInjector always(MustParse("flaky site=umd p=1\n"));
  for (uint64_t attempt = 0; attempt < 32; ++attempt) {
    EXPECT_FALSE(never.Decide("umd", 3, 11, attempt, 0.0).unavailable);
    FaultDecision fate = always.Decide("umd", 3, 11, attempt, 0.0);
    EXPECT_TRUE(fate.unavailable);
    EXPECT_STREQ(fate.cause, "flaky");
  }
}

TEST(FaultInjectorTest, DecisionsAreAPureFunctionOfTheirInputs) {
  const std::string spec =
      "seed 1234\nflaky site=umd p=0.5\nslow site=umd extra_ms=100 p=0.5\n";
  FaultInjector a(MustParse(spec));
  FaultInjector b(MustParse(spec));  // independent instance, same plan
  bool saw_up = false, saw_down = false;
  for (uint64_t query = 1; query <= 4; ++query) {
    for (uint64_t attempt = 0; attempt < 16; ++attempt) {
      FaultDecision da = a.Decide("umd", query, 99, attempt, 0.0);
      FaultDecision db = b.Decide("umd", query, 99, attempt, 0.0);
      EXPECT_EQ(da.unavailable, db.unavailable);
      EXPECT_DOUBLE_EQ(da.extra_response_ms, db.extra_response_ms);
      (da.unavailable ? saw_down : saw_up) = true;
    }
  }
  // p=0.5 over 64 draws: both outcomes occur, so the draws are real.
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_down);
  // A different plan seed redraws the fates.
  FaultInjector reseeded(
      MustParse("seed 4321\nflaky site=umd p=0.5\n"));
  bool any_differ = false;
  for (uint64_t attempt = 0; attempt < 64 && !any_differ; ++attempt) {
    any_differ = a.Decide("umd", 1, 99, attempt, 0.0).unavailable !=
                 reseeded.Decide("umd", 1, 99, attempt, 0.0).unavailable;
  }
  EXPECT_TRUE(any_differ);
}

TEST(FaultInjectorTest, LatencyAndSlowCompose) {
  FaultInjector inject(MustParse(
      "latency site=umd factor=3\n"
      "latency site=* factor=2 from=0 until=1000\n"
      "slow site=umd extra_ms=500 p=1\n"));
  FaultDecision in_window = inject.Decide("umd", 1, 7, 0, 10.0);
  EXPECT_DOUBLE_EQ(in_window.latency_factor, 6.0);  // factors multiply
  EXPECT_DOUBLE_EQ(in_window.extra_response_ms, 500.0);
  EXPECT_FALSE(in_window.unavailable);
  FaultDecision after = inject.Decide("umd", 1, 7, 0, 2000.0);
  EXPECT_DOUBLE_EQ(after.latency_factor, 3.0);  // windowed rule expired
  FaultDecision other = inject.Decide("cornell", 1, 7, 0, 10.0);
  EXPECT_DOUBLE_EQ(other.latency_factor, 2.0);  // only the wildcard matches
  EXPECT_DOUBLE_EQ(other.extra_response_ms, 0.0);
}

}  // namespace
}  // namespace hermes::net
