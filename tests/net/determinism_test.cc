#include <gtest/gtest.h>

#include "domain/pipeline.h"
#include "net/network.h"
#include "net/network_interceptor.h"
#include "net/remote_domain.h"
#include "net/site.h"

namespace hermes::net {
namespace {

/// Fixed-latency source for wrapping tests.
class StubDomain : public Domain {
 public:
  explicit StubDomain(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return {{"f", 1, "f(x): {x, x}"}};
  }
  Result<CallOutput> Run(const DomainCall& call) override {
    CallOutput out;
    out.answers = {call.args[0], call.args[0]};
    out.first_ms = 4.0;
    out.all_ms = 9.0;
    return out;
  }

 private:
  std::string name_;
};

DomainCall F(int64_t x) { return DomainCall{"stub", "f", {Value::Int(x)}}; }

TEST(NetworkDeterminismTest, SameSeedSameSequenceReplaysIdentically) {
  // Same seed + same call sequence ⇒ identical Transfer plans and identical
  // accumulated NetworkStats, even across distinct simulator instances.
  NetworkSimulator a(77), b(77);
  SiteParams site = ItalySite();
  site.availability = 0.9;  // exercise the availability branch too
  for (int i = 0; i < 200; ++i) {
    NetworkSimulator::Transfer ta = a.PlanCall(site, i % 7);
    NetworkSimulator::Transfer tb = b.PlanCall(site, i % 7);
    EXPECT_EQ(ta.available, tb.available);
    EXPECT_EQ(ta.request_ms, tb.request_ms);
    EXPECT_EQ(ta.response_lag_ms, tb.response_lag_ms);
    EXPECT_EQ(ta.per_byte_ms, tb.per_byte_ms);
    EXPECT_EQ(ta.penalty_ms, tb.penalty_ms);
    if (ta.available) {
      a.RecordTransfer(site, 100 + i, ta.request_ms);
      b.RecordTransfer(site, 100 + i, tb.request_ms);
    } else {
      a.RecordFailure();
      b.RecordFailure();
    }
  }
  EXPECT_EQ(a.stats().calls, b.stats().calls);
  EXPECT_EQ(a.stats().failures, b.stats().failures);
  EXPECT_EQ(a.stats().bytes_transferred, b.stats().bytes_transferred);
  EXPECT_EQ(a.stats().total_charge, b.stats().total_charge);
  EXPECT_EQ(a.stats().total_network_ms, b.stats().total_network_ms);
}

TEST(NetworkDeterminismTest, StatsRecordingDoesNotPerturbReplay) {
  // Stats accumulation (RecordTransfer/RecordFailure) must not advance the
  // jitter sequence: only PlanCall draws from the RNG.
  NetworkSimulator clean(5), noisy(5);
  SiteParams site = UsaSite();
  (void)noisy.RecordTransfer(site, 123456, 42.0);
  noisy.RecordFailure();
  for (int i = 0; i < 50; ++i) {
    NetworkSimulator::Transfer tc = clean.PlanCall(site, 1);
    NetworkSimulator::Transfer tn = noisy.PlanCall(site, 1);
    EXPECT_EQ(tc.request_ms, tn.request_ms);
    EXPECT_EQ(tc.per_byte_ms, tn.per_byte_ms);
  }
}

TEST(NetworkDeterminismTest, InterceptorAndLegacyWrapperAgreeExactly) {
  // The pipeline's network layer and the legacy RemoteDomain wrapper must
  // produce bit-identical simulated latencies for the same seed and call
  // sequence — both delegate to ComposeRemoteLatency.
  SiteParams site = ItalySite("milan");
  site.availability = 0.95;
  auto stub = std::make_shared<StubDomain>("stub");

  auto sim_a = std::make_shared<NetworkSimulator>(1996);
  PipelineDomain piped("stub@milan",
                       {std::make_shared<NetworkInterceptor>(site, sim_a)},
                       stub);
  auto sim_b = std::make_shared<NetworkSimulator>(1996);
  RemoteDomain legacy(stub, site, sim_b);

  CallContext ctx;
  for (int i = 0; i < 100; ++i) {
    Result<CallOutput> p = piped.Run(ctx, F(i % 5));
    Result<CallOutput> l = legacy.Run(F(i % 5));
    ASSERT_EQ(p.ok(), l.ok()) << "call " << i;
    if (!p.ok()) {
      EXPECT_TRUE(p.status().IsUnavailable());
      EXPECT_EQ(p.status().ToString(), l.status().ToString());
      continue;
    }
    EXPECT_EQ(p->answers, l->answers);
    EXPECT_EQ(p->first_ms, l->first_ms) << "call " << i;
    EXPECT_EQ(p->all_ms, l->all_ms) << "call " << i;
  }
  // Identical traffic accounted globally... and the interceptor also
  // attributed every byte to the context.
  EXPECT_EQ(sim_a->stats().calls, sim_b->stats().calls);
  EXPECT_EQ(sim_a->stats().failures, sim_b->stats().failures);
  EXPECT_EQ(sim_a->stats().bytes_transferred, sim_b->stats().bytes_transferred);
  EXPECT_EQ(sim_a->stats().total_charge, sim_b->stats().total_charge);
  EXPECT_EQ(ctx.metrics.remote_calls, sim_a->stats().calls);
  EXPECT_EQ(ctx.metrics.remote_failures, sim_a->stats().failures);
  EXPECT_EQ(ctx.metrics.bytes_transferred, sim_a->stats().bytes_transferred);
  EXPECT_DOUBLE_EQ(ctx.metrics.network_charge, sim_a->stats().total_charge);
}

TEST(NetworkDeterminismTest, UnavailableSiteChargesPenaltyAndFails) {
  SiteParams site = UsaSite();
  site.availability = 0.0;
  auto sim = std::make_shared<NetworkSimulator>(3);
  auto stub = std::make_shared<StubDomain>("stub");
  auto link = std::make_shared<NetworkInterceptor>(site, sim);
  PipelineDomain piped("stub@usa", {link}, stub);

  CallContext ctx;
  Result<CallOutput> out = piped.Run(ctx, F(1));
  EXPECT_TRUE(out.status().IsUnavailable());
  EXPECT_EQ(link->last_unavailable_penalty_ms(), site.retry_timeout_ms);
  EXPECT_EQ(ctx.metrics.remote_calls, 1u);
  EXPECT_EQ(ctx.metrics.remote_failures, 1u);
  EXPECT_EQ(ctx.metrics.bytes_transferred, 0u);
  EXPECT_EQ(sim->stats().failures, 1u);
}

}  // namespace
}  // namespace hermes::net
