#include "net/network.h"

#include <gtest/gtest.h>

#include "net/remote_domain.h"
#include "net/site.h"

namespace hermes::net {
namespace {

/// Fixed-latency local domain for wrapping tests.
class StubDomain : public Domain {
 public:
  StubDomain(std::string name, AnswerSet answers, double first_ms,
             double all_ms)
      : name_(std::move(name)),
        answers_(std::move(answers)),
        first_ms_(first_ms),
        all_ms_(all_ms) {}

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return {{"f", 0, "f(): fixed answers"}};
  }
  Result<CallOutput> Run(const DomainCall& call) override {
    (void)call;
    CallOutput out;
    out.answers = answers_;
    out.first_ms = first_ms_;
    out.all_ms = all_ms_;
    return out;
  }

 private:
  std::string name_;
  AnswerSet answers_;
  double first_ms_;
  double all_ms_;
};

TEST(SitePresetsTest, LatencyOrdering) {
  EXPECT_LT(LocalSite().connect_ms, UsaSite().connect_ms);
  EXPECT_LT(UsaSite().connect_ms, ItalySite().connect_ms);
  EXPECT_GT(AustraliaSite().charge_per_call, 0.0);
}

TEST(NetworkSimulatorTest, PlanCallIsDeterministicFromSeed) {
  NetworkSimulator a(7), b(7);
  SiteParams site = UsaSite();
  for (int i = 0; i < 20; ++i) {
    NetworkSimulator::Transfer ta = a.PlanCall(site, 123);
    NetworkSimulator::Transfer tb = b.PlanCall(site, 123);
    EXPECT_DOUBLE_EQ(ta.request_ms, tb.request_ms);
    EXPECT_DOUBLE_EQ(ta.per_byte_ms, tb.per_byte_ms);
  }
}

TEST(NetworkSimulatorTest, RepeatedCallsJitterIndependently) {
  NetworkSimulator sim(7);
  SiteParams site = UsaSite();
  NetworkSimulator::Transfer t1 = sim.PlanCall(site, 123);
  NetworkSimulator::Transfer t2 = sim.PlanCall(site, 123);
  EXPECT_NE(t1.request_ms, t2.request_ms);
}

TEST(NetworkSimulatorTest, JitterStaysWithinBounds) {
  NetworkSimulator sim(3);
  SiteParams site = UsaSite();
  for (int i = 0; i < 200; ++i) {
    NetworkSimulator::Transfer t = sim.PlanCall(site, i);
    double lo = (site.connect_ms + site.rtt_ms / 2) * (1 - site.jitter);
    double hi = (site.connect_ms + site.rtt_ms / 2) * (1 + site.jitter);
    EXPECT_GE(t.request_ms, lo);
    EXPECT_LE(t.request_ms, hi);
  }
}

TEST(NetworkSimulatorTest, AvailabilityProducesFailures) {
  NetworkSimulator sim(5);
  SiteParams site = UsaSite();
  site.availability = 0.5;
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    NetworkSimulator::Transfer t = sim.PlanCall(site, i);
    if (!t.available) {
      ++failures;
      EXPECT_EQ(t.penalty_ms, site.retry_timeout_ms);
    }
  }
  EXPECT_GT(failures, 350);
  EXPECT_LT(failures, 650);
}

TEST(NetworkSimulatorTest, StatsAccumulate) {
  NetworkSimulator sim(1);
  SiteParams site = AustraliaSite();
  (void)sim.PlanCall(site, 1);
  double charge = sim.RecordTransfer(site, 2048, 100.0);
  EXPECT_NEAR(charge, site.charge_per_call + 2 * site.charge_per_kb, 1e-9);
  sim.RecordFailure();
  EXPECT_EQ(sim.stats().calls, 1u);
  EXPECT_EQ(sim.stats().failures, 1u);
  EXPECT_EQ(sim.stats().bytes_transferred, 2048u);
  EXPECT_NEAR(sim.stats().total_charge, charge, 1e-9);
  sim.ResetStats();
  EXPECT_EQ(sim.stats().calls, 0u);
}

TEST(RemoteDomainTest, AddsNetworkLatency) {
  auto sim = std::make_shared<NetworkSimulator>(42);
  auto inner = std::make_shared<StubDomain>(
      "stub", AnswerSet{Value::Int(1), Value::Int(2)}, 5.0, 10.0);
  SiteParams site = UsaSite();
  site.jitter = 0.0;
  RemoteDomain remote(inner, site, sim);

  DomainCall call{"stub", "f", {}};
  Result<CallOutput> out = remote.Run(call);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->answers.size(), 2u);
  // first = connect + rtt + inner.first + first answer bytes / bw
  double per_byte = 1.0 / site.bytes_per_ms;
  double expected_first = site.connect_ms + site.rtt_ms + 5.0 +
                          per_byte * Value::Int(1).ApproxByteSize();
  EXPECT_NEAR(out->first_ms, expected_first, 1e-6);
  EXPECT_GT(out->all_ms, out->first_ms);
}

TEST(RemoteDomainTest, LocalSiteIsNearlyFree) {
  auto sim = std::make_shared<NetworkSimulator>(42);
  auto inner =
      std::make_shared<StubDomain>("stub", AnswerSet{Value::Int(1)}, 2.0, 2.0);
  RemoteDomain remote(inner, LocalSite(), sim);
  Result<CallOutput> out = remote.Run(DomainCall{"stub", "f", {}});
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out->all_ms, 3.0);
}

TEST(RemoteDomainTest, UnavailableSiteFailsWithPenalty) {
  auto sim = std::make_shared<NetworkSimulator>(11);
  auto inner =
      std::make_shared<StubDomain>("stub", AnswerSet{Value::Int(1)}, 1, 1);
  SiteParams site = UsaSite();
  site.availability = 0.0;  // always down
  RemoteDomain remote(inner, site, sim);
  Result<CallOutput> out = remote.Run(DomainCall{"stub", "f", {}});
  EXPECT_TRUE(out.status().IsUnavailable());
  EXPECT_EQ(remote.last_unavailable_penalty_ms(), site.retry_timeout_ms);
  EXPECT_EQ(sim->stats().failures, 1u);
}

TEST(RemoteDomainTest, NameCombinesInnerAndSite) {
  auto sim = std::make_shared<NetworkSimulator>(1);
  auto inner = std::make_shared<StubDomain>("avis", AnswerSet{}, 1, 1);
  RemoteDomain remote(inner, ItalySite("milan"), sim);
  EXPECT_EQ(remote.name(), "avis@milan");
}

TEST(RemoteDomainTest, ItalyCostsFarMoreThanUsa) {
  auto sim = std::make_shared<NetworkSimulator>(2);
  auto inner =
      std::make_shared<StubDomain>("stub", AnswerSet{Value::Int(1)}, 50, 100);
  RemoteDomain usa(inner, UsaSite(), sim);
  RemoteDomain italy(inner, ItalySite(), sim);
  Result<CallOutput> u = usa.Run(DomainCall{"stub", "f", {}});
  Result<CallOutput> i = italy.Run(DomainCall{"stub", "f", {}});
  ASSERT_TRUE(u.ok() && i.ok());
  EXPECT_GT(i->all_ms, 10.0 * u->all_ms);
}

}  // namespace
}  // namespace hermes::net
