// End-to-end tests of the paper's worked examples: the Section 4 spatial
// invariants, the Section 2 routetosupplies rule, and per-query traffic /
// financial-charge accounting over priced links.

#include <gtest/gtest.h>

#include "engine/mediator.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

TEST(SpatialInvariantTest, PaperSectionFourRangeClamping) {
  // "Dist > 142 ⇒ spatial:range('points',X,Y,Dist) =
  //  spatial:range('points',X,Y,142)." — all points lie in a 100×100
  // square, so any query radius beyond the diagonal returns everything.
  Mediator med;
  ASSERT_TRUE(med.RegisterRemoteDomain("spatial",
                                       testbed::MakeSectionFourSpatial(),
                                       net::UsaSite("umd"))
                  .ok());
  ASSERT_TRUE(med.EnableCaching("spatial").ok());
  ASSERT_TRUE(med.AddInvariants(
                     "Dist > 142 => spatial:range('points', X, Y, Dist) = "
                     "spatial:range('points', X, Y, 142).")
                  .ok());
  ASSERT_TRUE(med.LoadProgram("near(X, Y, D, P) :- "
                              "in(P, spatial:range('points', X, Y, D)).")
                  .ok());

  QueryOptions via_cim;
  via_cim.use_optimizer = false;

  // Warm with the clamped query.
  Result<QueryResult> clamped = med.Query("?- near(50, 50, 142, P).", via_cim);
  ASSERT_TRUE(clamped.ok()) << clamped.status();
  EXPECT_EQ(clamped->execution.answers.size(), 400u);

  // A huge radius is served by the equality invariant — no remote call.
  cim::CimDomain* cim = med.cim("spatial");
  uint64_t actual_before = cim->stats().actual_calls;
  Result<QueryResult> huge = med.Query("?- near(50, 50, 9000, P).", via_cim);
  ASSERT_TRUE(huge.ok()) << huge.status();
  EXPECT_EQ(huge->execution.answers.size(), 400u);
  EXPECT_EQ(cim->stats().actual_calls, actual_before);
  EXPECT_EQ(cim->stats().equality_hits, 1u);
  EXPECT_LT(huge->execution.t_all_ms, clamped->execution.t_all_ms / 5.0);

  // A radius below the clamp is NOT covered by the invariant.
  Result<QueryResult> small = med.Query("?- near(50, 50, 10, P).", via_cim);
  ASSERT_TRUE(small.ok());
  EXPECT_GT(cim->stats().actual_calls, actual_before);
  EXPECT_LT(small->execution.answers.size(), 400u);
}

TEST(SelectInvariantTest, PaperSectionFourContainment) {
  // "V1 ≤ V2 ⇒ relation:select_lt(T, A, V2) ⊇ relation:select_lt(T, A, V1)"
  Mediator med;
  auto db = std::make_shared<relational::Database>();
  ASSERT_TRUE(db->LoadCsv("inv", "item:string,qty:int\na,5\nb,12\nc,30\nd,47\n")
                  .ok());
  ASSERT_TRUE(
      med.RegisterRemoteDomain(
             "relation",
             std::make_shared<relational::RelationalDomain>("rel", db),
             net::UsaSite("bucknell"))
          .ok());
  ASSERT_TRUE(med.EnableCaching("relation").ok());
  ASSERT_TRUE(med.AddInvariants(
                     "V1 <= V2 => relation:select_lt(T, A, V2) >= "
                     "relation:select_lt(T, A, V1).")
                  .ok());
  ASSERT_TRUE(
      med.LoadProgram("low_stock(V, R) :- "
                      "in(R, relation:select_lt('inv', 'qty', V)).")
          .ok());

  QueryOptions via_cim;
  via_cim.use_optimizer = false;

  Result<QueryResult> narrow = med.Query("?- low_stock(13, R).", via_cim);
  ASSERT_TRUE(narrow.ok()) << narrow.status();
  EXPECT_EQ(narrow->execution.answers.size(), 2u);  // a, b

  // The wider threshold gets {a, b} from the cache immediately; the actual
  // call completes with c (a partial-invariant hit).
  Result<QueryResult> wide = med.Query("?- low_stock(31, R).", via_cim);
  ASSERT_TRUE(wide.ok()) << wide.status();
  EXPECT_EQ(wide->execution.answers.size(), 3u);
  EXPECT_EQ(med.cim("relation")->stats().partial_hits, 1u);
  EXPECT_LT(wide->execution.t_first_ms, narrow->execution.t_first_ms / 2.0);
}

TEST(TrafficAccountingTest, ChargesAccrueOnPricedLinks) {
  Mediator med;
  testbed::RopeScenarioOptions options;
  options.sites.video_site = net::AustraliaSite("canberra");
  options.enable_caching = true;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, options).ok());

  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;
  Result<QueryResult> paid =
      med.Query(testbed::AppendixQuery(1, true, 4, 47), direct);
  ASSERT_TRUE(paid.ok()) << paid.status();
  EXPECT_GT(paid->traffic.remote_calls, 0u);
  EXPECT_GT(paid->traffic.bytes, 0u);
  EXPECT_GT(paid->traffic.charge, 0.0);  // Australia charges per call/KB

  // The same query through the cache costs nothing further.
  QueryOptions via_cim;
  via_cim.use_optimizer = false;
  ASSERT_TRUE(med.Query(testbed::AppendixQuery(1, true, 4, 47), via_cim).ok());
  Result<QueryResult> cached =
      med.Query(testbed::AppendixQuery(1, true, 4, 47), via_cim);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->traffic.charge, 0.0);
  EXPECT_EQ(cached->traffic.bytes, 0u);
}

TEST(TrafficAccountingTest, FailuresCounted) {
  Mediator med;
  testbed::RopeScenarioOptions options;
  options.sites.video_site = net::UsaSite("umd");
  options.sites.video_site.availability = 0.0;
  options.enable_caching = false;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, options).ok());
  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;
  Result<QueryResult> res =
      med.Query(testbed::AppendixQuery(1, true, 4, 47), direct);
  EXPECT_TRUE(res.status().IsUnavailable());
  EXPECT_GT(med.network().stats().failures, 0u);
}

}  // namespace
}  // namespace hermes
