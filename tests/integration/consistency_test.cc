// Metamorphic consistency: whatever the optimizer, cache, invariants, or
// execution mode do to *performance*, they must never change the *answers*
// (up to ordering and duplicates-from-plan-shape). This sweeps every
// configuration over the appendix queries and a synthetic multi-video
// store and compares answer multisets.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "avis/avis_domain.h"
#include "engine/mediator.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

/// Sorted multiset rendering of the answers, independent of result order.
std::vector<std::string> Canonical(const engine::QueryExecution& exec) {
  std::vector<std::string> rows;
  rows.reserve(exec.answers.size());
  for (const ValueList& row : exec.answers) {
    rows.push_back(ValueListToString(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

struct Config {
  const char* label;
  bool use_optimizer;
  bool use_cim;
};

class ConsistencySweep : public ::testing::TestWithParam<int> {};

TEST_P(ConsistencySweep, AnswersInvariantAcrossConfigurations) {
  int query_number = GetParam() % 4 + 1;
  bool primed = GetParam() >= 4 && query_number <= 2;
  std::string query =
      testbed::AppendixQuery(query_number, primed, 4, 127);

  const Config configs[] = {
      {"as-written, direct", false, false},
      {"as-written, cim", false, true},
      {"optimized, direct-only", true, false},
      {"optimized, cim-allowed", true, true},
  };

  std::vector<std::string> reference;
  bool have_reference = false;
  for (const Config& config : configs) {
    // A fresh mediator per configuration so caches/statistics from one
    // configuration cannot leak into another.
    Mediator med;
    testbed::RopeScenarioOptions options;
    options.sites.video_site = net::LocalSite();
    options.sites.relation_site = net::LocalSite();
    ASSERT_TRUE(testbed::SetupRopeScenario(&med, options).ok());

    QueryOptions qo;
    qo.use_optimizer = config.use_optimizer;
    qo.use_cim = config.use_cim;

    // Run twice: cold and warm (the warm run exercises cache paths).
    for (int round = 0; round < 2; ++round) {
      Result<QueryResult> res = med.Query(query, qo);
      ASSERT_TRUE(res.ok()) << config.label << ": " << res.status();
      std::vector<std::string> rows = Canonical(res->execution);
      if (!have_reference) {
        reference = rows;
        have_reference = true;
      } else {
        EXPECT_EQ(rows, reference)
            << query << " under " << config.label << " round " << round;
      }
    }
  }
  EXPECT_TRUE(have_reference);
}

INSTANTIATE_TEST_SUITE_P(AppendixQueries, ConsistencySweep,
                         ::testing::Range(0, 6));

TEST(ConsistencyTest, InteractivePrefixOfAllAnswers) {
  // Interactive mode must return a prefix of the all-answers result (same
  // plan, same order).
  Mediator med;
  testbed::RopeScenarioOptions options;
  options.sites.video_site = net::LocalSite();
  options.sites.relation_site = net::LocalSite();
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, options).ok());

  QueryOptions all;
  all.use_optimizer = false;
  all.use_cim = false;
  std::string query = testbed::AppendixQuery(3, false, 4, 127);
  Result<QueryResult> full = med.Query(query, all);
  ASSERT_TRUE(full.ok());

  for (size_t k : {size_t(1), size_t(2), size_t(5)}) {
    QueryOptions first = all;
    first.mode = engine::ExecutionMode::kInteractive;
    first.interactive_batch = k;
    Result<QueryResult> batch = med.Query(query, first);
    ASSERT_TRUE(batch.ok());
    size_t expect =
        std::min(k, full->execution.answers.size());
    ASSERT_EQ(batch->execution.answers.size(), expect);
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(ValueListToString(batch->execution.answers[i]),
                ValueListToString(full->execution.answers[i]))
          << "k=" << k << " row " << i;
    }
  }
}

TEST(ConsistencyTest, SyntheticMultiVideoJoinStress) {
  // A larger synthetic store: answers through the CIM with invariants must
  // equal direct answers for nested range queries.
  Mediator med;
  auto videos = std::make_shared<avis::VideoDatabase>();
  avis::LoadSyntheticVideos(videos.get(), /*seed=*/123, /*num_videos=*/4,
                            /*objects_per_video=*/10,
                            /*frames_per_video=*/5000);
  auto avis_domain = std::make_shared<avis::AvisDomain>("avis", videos);
  ASSERT_TRUE(
      med.RegisterRemoteDomain("video", avis_domain, net::UsaSite("umd"))
          .ok());
  ASSERT_TRUE(med.EnableCaching("video").ok());
  ASSERT_TRUE(med.AddInvariants(
                     "F2 <= F1 & L1 <= L2 => "
                     "video:frames_to_objects(V, F2, L2) >= "
                     "video:frames_to_objects(V, F1, L1).")
                  .ok());
  ASSERT_TRUE(med.LoadProgram(
                     "objs(V, F, L, O) :- "
                     "in(O, video:frames_to_objects(V, F, L)).")
                  .ok());

  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;
  QueryOptions cached;
  cached.use_optimizer = false;
  cached.use_cim = true;

  // Nested ranges ensure plenty of partial-invariant traffic.
  for (int v = 0; v < 4; ++v) {
    std::string video = "'video_" + std::to_string(v) + "'";
    for (int64_t last : {500, 1200, 2500, 4900}) {
      std::string query =
          "?- objs(" + video + ", 100, " + std::to_string(last) + ", O).";
      Result<QueryResult> a = med.Query(query, direct);
      Result<QueryResult> b = med.Query(query, cached);
      ASSERT_TRUE(a.ok() && b.ok()) << query;
      EXPECT_EQ(Canonical(a->execution), Canonical(b->execution)) << query;
    }
  }
  EXPECT_GT(med.cim("video")->stats().partial_hits, 0u);
}

}  // namespace
}  // namespace hermes
