// Integration tests asserting the *shape* of every reproduced experiment:
// who wins, by roughly what factor, and where the crossovers fall — the
// qualitative results of the paper's Section 8.

#include <gtest/gtest.h>

#include <map>

#include "experiments/claims.h"
#include "experiments/fig5.h"
#include "experiments/fig6.h"
#include "experiments/tradeoff.h"

namespace hermes::experiments {
namespace {

class Fig5Shape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    static Result<std::vector<Fig5Row>> result = RunFig5();
    ASSERT_TRUE(result.ok()) << result.status();
    rows_ = &*result;
  }
  static const std::vector<Fig5Row>* rows_;

  static const Fig5Row& Find(const std::string& query, Fig5Config config,
                             const std::string& site) {
    for (const Fig5Row& row : *rows_) {
      if (row.query == query && row.config == config && row.site == site) {
        return row;
      }
    }
    static Fig5Row missing;
    ADD_FAILURE() << "row not found: " << query << " / "
                  << Fig5ConfigName(config) << " / " << site;
    return missing;
  }
};

const std::vector<Fig5Row>* Fig5Shape::rows_ = nullptr;

TEST_F(Fig5Shape, AllRowsPresent) {
  EXPECT_EQ(rows_->size(), 3u * 2u * 4u);
}

TEST_F(Fig5Shape, SameAnswersAcrossConfigurations) {
  // Caching and invariants must never change the answers.
  std::map<std::string, size_t> tuples;
  for (const Fig5Row& row : *rows_) {
    auto [it, inserted] = tuples.emplace(row.query, row.tuples);
    if (!inserted) {
      EXPECT_EQ(it->second, row.tuples)
          << row.query << " / " << Fig5ConfigName(row.config);
    }
  }
}

TEST_F(Fig5Shape, CachingAlwaysSavesTime) {
  // "Using caches always leads to savings in time when the software/data
  // is located at remote sites."
  for (const Fig5Row& row : *rows_) {
    if (row.config == Fig5Config::kNoCacheNoInvariants) continue;
    const Fig5Row& baseline =
        Find(row.query, Fig5Config::kNoCacheNoInvariants, row.site);
    EXPECT_LT(row.t_first_ms, baseline.t_first_ms)
        << row.query << " / " << Fig5ConfigName(row.config) << " @ "
        << row.site;
  }
}

TEST_F(Fig5Shape, ExactHitBeatsEqualityBeatsPartialFirstAnswer) {
  for (const std::string& query :
       {std::string("actors in 'rope'"), std::string("objects in frames [4,47]"),
        std::string("objects in frames [4,127]")}) {
    for (const std::string& site : {std::string("usa"), std::string("italy")}) {
      const Fig5Row& exact = Find(query, Fig5Config::kCacheOnly, site);
      const Fig5Row& equality =
          Find(query, Fig5Config::kCacheEqualityInvariant, site);
      EXPECT_LT(exact.t_first_ms, equality.t_first_ms) << query << "@" << site;
    }
  }
}

TEST_F(Fig5Shape, PartialInvariantGivesFastFirstAnswerButFullCompletion) {
  for (const std::string& site : {std::string("usa"), std::string("italy")}) {
    const Fig5Row& none =
        Find("objects in frames [4,127]", Fig5Config::kNoCacheNoInvariants,
             site);
    const Fig5Row& partial =
        Find("objects in frames [4,127]", Fig5Config::kCachePartialInvariant,
             site);
    // First answers come from the cache: much faster than the remote call.
    EXPECT_LT(partial.t_first_ms, none.t_first_ms / 4.0) << site;
    // But the actual call still has to complete the answer set.
    EXPECT_GT(partial.t_all_ms, none.t_all_ms / 2.0) << site;
  }
}

TEST_F(Fig5Shape, ItalyFarSlowerThanUsaWithoutCache) {
  for (const std::string& query :
       {std::string("actors in 'rope'"), std::string("objects in frames [4,47]")}) {
    const Fig5Row& usa = Find(query, Fig5Config::kNoCacheNoInvariants, "usa");
    const Fig5Row& italy =
        Find(query, Fig5Config::kNoCacheNoInvariants, "italy");
    EXPECT_GT(italy.t_first_ms, 10.0 * usa.t_first_ms) << query;
  }
}

TEST_F(Fig5Shape, CacheHitTimeIsSiteIndependent) {
  const Fig5Row& usa =
      Find("objects in frames [4,47]", Fig5Config::kCacheOnly, "usa");
  const Fig5Row& italy =
      Find("objects in frames [4,47]", Fig5Config::kCacheOnly, "italy");
  EXPECT_NEAR(usa.t_all_ms, italy.t_all_ms, 1.0);
}

class Fig6Shape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    static Result<std::vector<Fig6Row>> result = RunFig6();
    ASSERT_TRUE(result.ok()) << result.status();
    rows_ = &*result;
  }
  static const std::vector<Fig6Row>* rows_;
};

const std::vector<Fig6Row>* Fig6Shape::rows_ = nullptr;

TEST_F(Fig6Shape, SixQueriesReported) { EXPECT_EQ(rows_->size(), 6u); }

TEST_F(Fig6Shape, LosslessPredictionsCloseForAllAnswers) {
  // "The Lossy and the Lossless DCSM predictions closely match the actual
  // running times" — lossless within 25% on every query.
  for (const Fig6Row& row : *rows_) {
    double rel = std::abs(row.lossless_all_ms - row.actual_all_ms) /
                 row.actual_all_ms;
    EXPECT_LT(rel, 0.25) << row.query;
  }
}

TEST_F(Fig6Shape, LossyWorseThanLosslessOnAverage) {
  EXPECT_GT(MeanRelativeErrorAll(*rows_, /*lossy=*/true),
            MeanRelativeErrorAll(*rows_, /*lossy=*/false));
}

TEST_F(Fig6Shape, RewritingPairsHaveAConsistentWinner) {
  // query1 beats query1' (video_size once vs once per object) and the
  // prediction agrees.
  const Fig6Row *q1 = nullptr, *q1p = nullptr, *q3 = nullptr, *q4 = nullptr;
  for (const Fig6Row& row : *rows_) {
    if (row.query == "query1") q1 = &row;
    if (row.query == "query1'") q1p = &row;
    if (row.query == "query3") q3 = &row;
    if (row.query == "query4") q4 = &row;
  }
  ASSERT_NE(q1, nullptr);
  ASSERT_NE(q1p, nullptr);
  EXPECT_LT(q1->actual_all_ms, q1p->actual_all_ms);
  EXPECT_LT(q1->lossless_all_ms, q1p->lossless_all_ms);
  ASSERT_NE(q3, nullptr);
  ASSERT_NE(q4, nullptr);
  // query3 pushes the selection into the source; query4 scans 'cast'.
  EXPECT_LT(q3->actual_all_ms, q4->actual_all_ms);
  EXPECT_LT(q3->lossless_all_ms, q4->lossless_all_ms);
}

class ClaimsShape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    static Result<std::vector<PlanChoicePoint>> result = RunPlanChoice();
    ASSERT_TRUE(result.ok()) << result.status();
    points_ = &*result;
  }
  static const std::vector<PlanChoicePoint>* points_;
};

const std::vector<PlanChoicePoint>* ClaimsShape::points_ = nullptr;

TEST_F(ClaimsShape, AllAnswersWinnerAlmostAlwaysCorrect) {
  PlanChoiceSummary summary = SummarizePlanChoice(*points_);
  EXPECT_GE(summary.all_answers_accuracy, 0.9);  // "almost always"
  EXPECT_GE(summary.points, 30u);
}

TEST_F(ClaimsShape, BigFirstAnswerMarginsAreReliable) {
  PlanChoiceSummary summary = SummarizePlanChoice(*points_);
  ASSERT_GT(summary.big_margin_points, 0u);
  EXPECT_GE(summary.first_big_margin_accuracy, 0.9);
}

TEST_F(ClaimsShape, SmallMarginsLessReliableThanBig) {
  PlanChoiceSummary summary = SummarizePlanChoice(*points_);
  ASSERT_GT(summary.small_margin_points, 0u);
  EXPECT_LE(summary.first_small_margin_accuracy,
            summary.first_big_margin_accuracy);
}

TEST(TradeoffShape, LossySummariesTinyAndInaccurate) {
  Result<std::vector<TradeoffPoint>> points =
      RunSummarizationTradeoff({200, 3200});
  ASSERT_TRUE(points.ok()) << points.status();
  for (const TradeoffPoint& p : *points) {
    // Storage: fully-lossy ≪ program-lossy ≪ raw. The program-lossy table
    // has one row per distinct signal value, so its size is constant while
    // the raw database grows.
    EXPECT_LT(p.lossy_bytes, p.program_lossy_bytes);
    EXPECT_LT(p.program_lossy_bytes, p.raw_bytes / 5);
    // Lookup: summaries answer in O(1) simulated time, raw scales.
    EXPECT_LT(p.lossless_lookup_ms, p.raw_lookup_ms);
    // Accuracy: dropping the signal dimension destroys the estimate.
    EXPECT_LT(p.lossless_error, 0.1);
    EXPECT_GT(p.lossy_error, 0.5);
  }
  // Raw lookup cost grows with the database; summary lookup does not.
  EXPECT_GT((*points)[1].raw_lookup_ms, (*points)[0].raw_lookup_ms * 4);
  // At scale the program-lossy table is orders of magnitude below raw.
  EXPECT_LT((*points)[1].program_lossy_bytes, (*points)[1].raw_bytes / 100);
  EXPECT_NEAR((*points)[1].lossless_lookup_ms, (*points)[0].lossless_lookup_ms,
              1e-9);
}

}  // namespace
}  // namespace hermes::experiments
