// The adornment-keyed plan cache: constant masking in the key, exact vs
// rebinding hits, correctness of rebound plans against a cache-less
// mediator, and the three invalidation paths (breaker-open site, DCSM
// drift exceedance, wiring mutation).

#include "optimizer/plan_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "engine/mediator.h"
#include "lang/parser.h"
#include "net/faults/fault_plan.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

lang::Query MustParse(const std::string& text) {
  Result<lang::Query> query = lang::Parser::ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status();
  return *query;
}

std::unique_ptr<Mediator> RopeMediator(bool caching = true) {
  auto med = std::make_unique<Mediator>();
  testbed::RopeScenarioOptions scenario;
  scenario.enable_caching = caching;
  EXPECT_TRUE(testbed::SetupRopeScenario(med.get(), scenario).ok());
  return med;
}

// A rule-free query: rebinding requires every constant to live in the query
// text itself (rule bodies pin 'rope'/'cast' and force exact-only entries).
const char kFlattened[] =
    "?- in(Object, video:frames_to_objects('rope', %d, %d)) & "
    "in(T, relation:equal('cast', role, Object)) & =(Actor, T.name).";

std::string Flattened(int first, int last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), kFlattened, first, last);
  return buf;
}

// ---- MakeKey: masking and adornment ---------------------------------------

TEST(PlanCacheKeyTest, ConstantsAreMaskedButTypesAndPositionsKept) {
  std::vector<Value> c1, c2;
  optimizer::PlanCacheKey k1 =
      optimizer::PlanCache::MakeKey(MustParse("?- in(X, d:f(1, 'a'))."),
                                    "opt", &c1);
  optimizer::PlanCacheKey k2 =
      optimizer::PlanCache::MakeKey(MustParse("?- in(X, d:f(2, 'b'))."),
                                    "opt", &c2);
  // Same shape, same adornment: the keys collide; the constants differ.
  EXPECT_EQ(k1.text, k2.text);
  ASSERT_EQ(c1.size(), 2u);
  ASSERT_EQ(c2.size(), 2u);
  EXPECT_EQ(c1[0], Value::Int(1));
  EXPECT_EQ(c2[1], Value::Str("b"));

  // A type change at a constant position is a different adornment.
  std::vector<Value> c3;
  optimizer::PlanCacheKey k3 =
      optimizer::PlanCache::MakeKey(MustParse("?- in(X, d:f('one', 'a'))."),
                                    "opt", &c3);
  EXPECT_NE(k1.text, k3.text);

  // Constant-vs-variable argument positions differ too.
  std::vector<Value> c4;
  optimizer::PlanCacheKey k4 =
      optimizer::PlanCache::MakeKey(MustParse("?- in(X, d:f(Y, 'a'))."),
                                    "opt", &c4);
  EXPECT_NE(k1.text, k4.text);
  EXPECT_EQ(c4.size(), 1u);

  // The compile-options tag keys optimizer-on and as-written plans apart.
  std::vector<Value> c5;
  optimizer::PlanCacheKey k5 =
      optimizer::PlanCache::MakeKey(MustParse("?- in(X, d:f(1, 'a'))."),
                                    "raw", &c5);
  EXPECT_NE(k1.text, k5.text);
}

// ---- Hit/miss behavior through the mediator -------------------------------

TEST(PlanCacheTest, RepeatQueryHitsAndSkipsTheOptimizer) {
  std::unique_ptr<Mediator> med = RopeMediator();
  ASSERT_TRUE(med->EnablePlanCache().ok());

  Result<QueryResult> cold =
      med->Query(testbed::AppendixQuery(3, false, 4, 47), {});
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->plan_cache_hit);
  EXPECT_FALSE(cold->candidates.empty());  // the optimizer ran

  Result<QueryResult> warm =
      med->Query(testbed::AppendixQuery(3, false, 4, 47), {});
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->plan_cache_hit);
  EXPECT_TRUE(warm->candidates.empty());  // skeleton reused, no optimizer
  EXPECT_EQ(warm->plan_description, cold->plan_description);
  EXPECT_EQ(warm->execution.answers, cold->execution.answers);

  optimizer::PlanCacheStats stats = med->plan_cache()->stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCacheTest, RuleConstantsForceExactOnlyEntries) {
  std::unique_ptr<Mediator> med = RopeMediator();
  ASSERT_TRUE(med->EnablePlanCache().ok());

  // query3's rule body pins 'rope' and 'cast': a cached instance cannot be
  // rebound to new frame bounds, so a different-constant repeat must be a
  // miss (a wrong-answer hit would be silent corruption).
  ASSERT_TRUE(med->Query(testbed::AppendixQuery(3, false, 4, 47), {}).ok());
  Result<QueryResult> other =
      med->Query(testbed::AppendixQuery(3, false, 10, 60), {});
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_FALSE(other->plan_cache_hit);
  optimizer::PlanCacheStats stats = med->plan_cache()->stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(PlanCacheTest, RebindingHitMatchesAColdMediatorsAnswers) {
  QueryOptions options;
  options.record_statistics = false;  // keep both mediators' DCSMs static

  std::unique_ptr<Mediator> cached = RopeMediator();
  ASSERT_TRUE(cached->EnablePlanCache().ok());
  ASSERT_TRUE(cached->Query(Flattened(4, 47), options).ok());
  Result<QueryResult> rebound = cached->Query(Flattened(10, 60), options);
  ASSERT_TRUE(rebound.ok()) << rebound.status();
  EXPECT_TRUE(rebound->plan_cache_hit);

  std::unique_ptr<Mediator> cold = RopeMediator();
  Result<QueryResult> reference = cold->Query(Flattened(10, 60), options);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_FALSE(reference->execution.answers.empty());
  EXPECT_EQ(rebound->execution.answers, reference->execution.answers);
  EXPECT_EQ(rebound->execution.var_names, reference->execution.var_names);

  // And a third shape repeats the rebind off the pooled instance.
  Result<QueryResult> again = cached->Query(Flattened(4, 47), options);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->plan_cache_hit);
  EXPECT_EQ(cached->plan_cache()->stats().hits, 2u);
}

TEST(PlanCacheTest, HitAndMissLandInTheFlightStream) {
  std::unique_ptr<Mediator> med = RopeMediator();
  ASSERT_TRUE(med->EnableDiagnostics({}).ok());
  ASSERT_TRUE(med->EnablePlanCache().ok());

  Result<QueryResult> cold =
      med->Query(testbed::AppendixQuery(1, false, 1, 9000), {});
  ASSERT_TRUE(cold.ok());
  Result<QueryResult> warm =
      med->Query(testbed::AppendixQuery(1, false, 1, 9000), {});
  ASSERT_TRUE(warm.ok());

  auto has_kind = [&med](uint64_t query_id, obs::FlightEventKind kind) {
    for (const obs::FlightEvent& ev :
         med->flight_recorder()->SnapshotQuery(query_id)) {
      if (ev.kind == kind) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_kind(cold->query_id, obs::FlightEventKind::kPlanCacheMiss));
  EXPECT_FALSE(has_kind(cold->query_id, obs::FlightEventKind::kPlanCacheHit));
  EXPECT_TRUE(has_kind(warm->query_id, obs::FlightEventKind::kPlanCacheHit));

  std::string prom = med->metrics().ExposePrometheus();
  EXPECT_NE(prom.find("hermes_plan_cache_hits_total 1"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("hermes_plan_cache_misses_total 1"), std::string::npos);
  EXPECT_NE(prom.find("hermes_plan_cache_entries 1"), std::string::npos);
}

// ---- Invalidation ----------------------------------------------------------

TEST(PlanCacheTest, BreakerOpenInvalidatesPlansDependingOnTheSite) {
  std::unique_ptr<Mediator> med = RopeMediator();
  ASSERT_TRUE(med->EnablePlanCache().ok());
  QueryOptions options;
  options.use_optimizer = false;
  options.use_cim = false;
  options.record_statistics = false;

  ASSERT_TRUE(med->Query(Flattened(4, 47), options).ok());
  Result<QueryResult> warm = med->Query(Flattened(4, 47), options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);

  // Kill the relation site with a hair-trigger breaker: the next query
  // trips it, and the mediator invalidates every cornell-dependent entry.
  med->remote_link("relation")->mutable_site().availability = 0.0;
  resilience::ResiliencePolicy policy;
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 2;
  policy.breaker.probe_interval = 1e9;
  ASSERT_TRUE(med->SetResiliencePolicy("relation", policy).ok());

  options.partial_results = true;
  Result<QueryResult> tripped = med->Query(Flattened(4, 47), options);
  ASSERT_TRUE(tripped.ok()) << tripped.status();
  optimizer::PlanCacheStats stats = med->plan_cache()->stats();
  EXPECT_GE(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);

  Result<QueryResult> after = med->Query(Flattened(4, 47), options);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->plan_cache_hit);
}

TEST(PlanCacheTest, DriftExceedanceInvalidatesThroughTheTrackerHook) {
  std::unique_ptr<Mediator> med = RopeMediator(/*caching=*/false);
  DiagnosticsOptions diag;
  diag.drift.threshold = 0.5;
  diag.drift.min_samples = 1;
  ASSERT_TRUE(med->EnableDiagnostics(diag).ok());
  ASSERT_TRUE(med->EnablePlanCache().ok());

  // Warm-up populates the DCSM (and the cache) with calm-network numbers.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        med->Query(testbed::AppendixQuery(1, false, 1, 9000), {}).ok());
  }
  EXPECT_GT(med->plan_cache()->stats().hits, 0u);

  // ×8 latency: observations shoot past the recorded estimates, the drift
  // tracker crosses its threshold, and its hook drops dependent entries.
  Result<net::FaultPlan> plan = net::FaultPlan::Parse(
      "seed 7\nlatency site=* factor=8 from=0 until=100000000\n");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(med->SetFaultPlan(std::move(plan).value()).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        med->Query(testbed::AppendixQuery(1, false, 1, 9000), {}).ok());
  }
  EXPECT_FALSE(med->DriftReport().Exceeded().empty());
  EXPECT_GE(med->plan_cache()->stats().invalidations, 1u);
  std::string prom = med->metrics().ExposePrometheus();
  EXPECT_NE(prom.find("hermes_plan_cache_invalidations_total"),
            std::string::npos);
}

TEST(PlanCacheTest, WiringMutationsClearTheCache) {
  std::unique_ptr<Mediator> med = RopeMediator();
  ASSERT_TRUE(med->EnablePlanCache().ok());
  ASSERT_TRUE(med->Query(testbed::AppendixQuery(1, false, 1, 9000), {}).ok());
  EXPECT_EQ(med->plan_cache()->stats().entries, 1u);

  // Any wiring change may alter what plans mean; cached skeletons from the
  // old wiring must not survive it.
  ASSERT_TRUE(med->AddInvariants("F2 <= F1 & L1 <= L2 => "
                                 "video:frames_to_objects(V, F2, L2) >= "
                                 "video:frames_to_objects(V, F1, L1).")
                  .ok());
  EXPECT_EQ(med->plan_cache()->stats().entries, 0u);
  Result<QueryResult> after =
      med->Query(testbed::AppendixQuery(1, false, 1, 9000), {});
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->plan_cache_hit);
}

}  // namespace
}  // namespace hermes
