// Invalidation races: 8 threads acquiring/instantiating cached plans while
// drift- and breaker-style invalidations (and full clears) land mid-flight.
// Correctness bar: every query still returns the cold-mediator answers —
// an invalidation can cost a miss, never a stale or corrupt plan — and the
// cache's own accounting stays consistent. CI also runs this binary under
// ThreadSanitizer next to the chaos stress jobs.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/mediator.h"
#include "optimizer/plan_cache.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

std::string Flattened(int first, int last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "?- in(Object, video:frames_to_objects('rope', %d, %d)) & "
                "in(T, relation:equal('cast', role, Object)) & "
                "=(Actor, T.name).",
                first, last);
  return buf;
}

QueryOptions RaceQuery() {
  QueryOptions options;
  options.use_optimizer = false;
  options.use_cim = false;
  options.record_statistics = false;
  return options;
}

TEST(PlanCacheRaceTest, InvalidationsUnderConcurrentAcquiresStayCorrect) {
  constexpr size_t kThreads = 8;
  constexpr size_t kItersPerThread = 40;
  const std::vector<std::string> shapes = {
      Flattened(4, 47), Flattened(10, 60), Flattened(1, 9000),
      Flattened(20, 80)};

  // Reference answers from a mediator with no plan cache at all.
  std::map<std::string, std::vector<ValueList>> expected;
  {
    Mediator cold;
    ASSERT_TRUE(testbed::SetupRopeScenario(&cold, {}).ok());
    for (const std::string& shape : shapes) {
      Result<QueryResult> res = cold.Query(shape, RaceQuery());
      ASSERT_TRUE(res.ok()) << res.status();
      ASSERT_FALSE(res->execution.answers.empty());
      expected[shape] = res->execution.answers;
    }
  }

  Mediator med;
  ASSERT_TRUE(testbed::SetupRopeScenario(&med, {}).ok());
  // A deliberately tiny cache: one pooled instance per entry keeps every
  // thread on the instantiate path (the widest race window against the
  // invalid flag), and two small shards force LRU evictions throughout.
  optimizer::PlanCacheOptions cache_options;
  cache_options.shards = 2;
  cache_options.capacity_per_shard = 2;
  cache_options.max_instances_per_entry = 1;
  ASSERT_TRUE(med.EnablePlanCache(cache_options).ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> wrong{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = 0; i < kItersPerThread; ++i) {
        const std::string& shape = shapes[(t + i) % shapes.size()];
        Result<QueryResult> res = med.Query(shape, RaceQuery());
        if (!res.ok() || res->execution.answers != expected[shape]) {
          ++wrong;
        }
      }
    });
  }
  // The antagonist: drift-style and breaker-style invalidations plus full
  // clears, racing every Acquire/Insert above.
  std::thread invalidator([&] {
    size_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      switch (round++ % 3) {
        case 0:
          med.plan_cache()->InvalidateSite("umd");
          break;
        case 1:
          med.plan_cache()->InvalidateDrift("cornell", "relation", "");
          break;
        default:
          med.plan_cache()->Clear();
          break;
      }
      std::this_thread::yield();
    }
  });
  for (std::thread& w : workers) w.join();
  stop.store(true);
  invalidator.join();

  EXPECT_EQ(wrong.load(), 0u);
  optimizer::PlanCacheStats stats = med.plan_cache()->stats();
  // Every query either hit or missed — nothing double-counted or lost.
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kItersPerThread);
  EXPECT_GT(stats.misses, 0u);  // the invalidator landed at least once

  // After a final quiescent invalidation the next acquire must miss.
  med.plan_cache()->InvalidateSite("umd");
  Result<QueryResult> after = med.Query(shapes[0], RaceQuery());
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->plan_cache_hit);
  EXPECT_EQ(after->execution.answers, expected[shapes[0]]);
}

}  // namespace
}  // namespace hermes
