// PlanCompiler + EXPLAIN: structural checks of the lowered operator tree
// and golden-file tests of the EXPLAIN rendering for the paper's appendix
// queries over the rope testbed. Regenerate goldens after an intentional
// format change with:
//
//   HERMES_UPDATE_GOLDENS=1 ./tests/optimizer_plan_compiler_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/io.h"
#include "engine/mediator.h"
#include "optimizer/plan_compiler.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(HERMES_TEST_SRCDIR) + "/golden/" + name;
}

void CompareGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (std::getenv("HERMES_UPDATE_GOLDENS") != nullptr) {
    ASSERT_TRUE(WriteStringToFile(path, actual).ok());
    GTEST_SKIP() << "golden updated: " << path;
  }
  Result<std::string> expected = ReadFileToString(path);
  ASSERT_TRUE(expected.ok()) << "missing golden " << path
                             << " (run with HERMES_UPDATE_GOLDENS=1)";
  EXPECT_EQ(*expected, actual) << "EXPLAIN drifted from " << path
                               << "; regenerate with HERMES_UPDATE_GOLDENS=1 "
                                  "if the change is intentional";
}

struct RopeFixture {
  Mediator med;

  RopeFixture() {
    EXPECT_TRUE(testbed::SetupRopeScenario(&med, {}).ok());
  }
};

TEST(PlanCompilerTest, CompiledPlanExposesTreeAndPlan) {
  RopeFixture fx;
  Result<optimizer::OptimizerResult> planned =
      fx.med.Plan(testbed::AppendixQuery(3, false, 4, 47), {});
  ASSERT_TRUE(planned.ok()) << planned.status();

  optimizer::PlanCompiler compiler(&fx.med.dcsm());
  optimizer::CompiledPlan compiled = compiler.Compile(planned->best);
  EXPECT_EQ(compiled.plan().description, planned->best.description);
  ASSERT_NE(compiled.tree().root, nullptr);
  EXPECT_EQ(compiled.tree().root->kind(),
            engine::op::OpKind::kAnswerSink);

  std::string text = compiled.Explain();
  EXPECT_NE(text.find("plan: "), std::string::npos);
  EXPECT_NE(text.find("AnswerSink"), std::string::npos);
  // Moving the compiled plan keeps the tree's borrowed pointers valid.
  optimizer::CompiledPlan moved = std::move(compiled);
  EXPECT_EQ(moved.Explain(), text);
}

TEST(PlanCompilerTest, CimRedirectionIsPlanVisible) {
  RopeFixture fx;
  QueryOptions as_written;
  as_written.use_optimizer = false;
  Result<std::string> with_cim =
      fx.med.Explain(testbed::AppendixQuery(3, false, 4, 47), as_written);
  ASSERT_TRUE(with_cim.ok()) << with_cim.status();
  EXPECT_NE(with_cim->find("cim_video:"), std::string::npos) << *with_cim;
  EXPECT_NE(with_cim->find(", cim"), std::string::npos) << *with_cim;

  as_written.use_cim = false;
  Result<std::string> direct =
      fx.med.Explain(testbed::AppendixQuery(3, false, 4, 47), as_written);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->find("cim_video:"), std::string::npos) << *direct;
  EXPECT_EQ(direct->find(", cim"), std::string::npos) << *direct;
}

TEST(PlanCompilerGolden, AppendixQuery3AsWritten) {
  RopeFixture fx;
  QueryOptions options;
  options.use_optimizer = false;
  Result<std::string> text =
      fx.med.Explain(testbed::AppendixQuery(3, false, 4, 47), options);
  ASSERT_TRUE(text.ok()) << text.status();
  CompareGolden("explain_query3_as_written.txt", *text);
}

TEST(PlanCompilerGolden, AppendixQuery1AsWritten) {
  RopeFixture fx;
  QueryOptions options;
  options.use_optimizer = false;
  Result<std::string> text =
      fx.med.Explain(testbed::AppendixQuery(1, false, 4, 47), options);
  ASSERT_TRUE(text.ok()) << text.status();
  CompareGolden("explain_query1_as_written.txt", *text);
}

TEST(PlanCompilerGolden, AppendixQuery2NoCim) {
  RopeFixture fx;
  QueryOptions options;
  options.use_optimizer = false;
  options.use_cim = false;
  Result<std::string> text =
      fx.med.Explain(testbed::AppendixQuery(2, false, 4, 47), options);
  ASSERT_TRUE(text.ok()) << text.status();
  CompareGolden("explain_query2_no_cim.txt", *text);
}

TEST(PlanCompilerGolden, AppendixQuery3Optimized) {
  // Fresh DCSM: every call pattern estimates at the deterministic default
  // cost vector, so the optimizer's choice — and the rendering — is stable.
  RopeFixture fx;
  Result<std::string> text =
      fx.med.Explain(testbed::AppendixQuery(3, false, 4, 47), {});
  ASSERT_TRUE(text.ok()) << text.status();
  CompareGolden("explain_query3_optimized.txt", *text);
}

}  // namespace
}  // namespace hermes
