#include "optimizer/rewriter.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace hermes::optimizer {
namespace {

lang::Program MustProgram(const std::string& text) {
  Result<lang::Program> p = lang::Parser::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return p.ok() ? *p : lang::Program{};
}

lang::Query MustQuery(const std::string& text) {
  Result<lang::Query> q = lang::Parser::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return q.ok() ? *q : lang::Query{};
}

std::string BodyString(const std::vector<lang::Atom>& body) {
  std::string out;
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += " & ";
    out += body[i].ToString();
  }
  return out;
}

TEST(ValidOrderingsTest, DomainCallArgsMustBeBound) {
  // in(C, d:f(B)) cannot run before B is produced.
  lang::Rule rule = *lang::Parser::ParseRule(
      "m(C) :- in(B, d1:p()) & in(C, d2:q(B)).");
  std::vector<std::vector<lang::Atom>> orderings =
      RuleRewriter::ValidOrderings(rule.body, {}, 10);
  ASSERT_EQ(orderings.size(), 1u);
  EXPECT_EQ(BodyString(orderings[0]),
            "in(B, d1:p()) & in(C, d2:q(B))");
}

TEST(ValidOrderingsTest, IndependentCallsPermute) {
  lang::Rule rule = *lang::Parser::ParseRule(
      "m(A, B) :- in(A, d1:p()) & in(B, d2:q()).");
  std::vector<std::vector<lang::Atom>> orderings =
      RuleRewriter::ValidOrderings(rule.body, {}, 10);
  EXPECT_EQ(orderings.size(), 2u);
  // The original order is listed first.
  EXPECT_EQ(BodyString(orderings[0]), "in(A, d1:p()) & in(B, d2:q())");
}

TEST(ValidOrderingsTest, InitiallyBoundVarsEnableMoreOrders) {
  lang::Rule rule = *lang::Parser::ParseRule(
      "m(B, C) :- in(B, d1:p()) & in(C, d2:q(B)).");
  // With B initially bound (head adornment bb), d2:q(B) may run first.
  std::vector<std::vector<lang::Atom>> orderings =
      RuleRewriter::ValidOrderings(rule.body, {"B"}, 10);
  EXPECT_EQ(orderings.size(), 2u);
}

TEST(ValidOrderingsTest, ComparisonNeedsBoundOperands) {
  lang::Rule rule = *lang::Parser::ParseRule(
      "m(X) :- in(X, d:f()) & X > 5.");
  std::vector<std::vector<lang::Atom>> orderings =
      RuleRewriter::ValidOrderings(rule.body, {}, 10);
  ASSERT_EQ(orderings.size(), 1u);  // the comparison cannot lead
}

TEST(ValidOrderingsTest, EqualityAssignmentBindsFreeSide) {
  lang::Rule rule = *lang::Parser::ParseRule(
      "m(A) :- in(T, d:f()) & =(A, T.name) & in(X, e:g(A)).");
  std::vector<std::vector<lang::Atom>> orderings =
      RuleRewriter::ValidOrderings(rule.body, {}, 10);
  ASSERT_GE(orderings.size(), 1u);
  EXPECT_EQ(BodyString(orderings[0]),
            "in(T, d:f()) & A = T.name & in(X, e:g(A))");
}

TEST(ValidOrderingsTest, CapIsHonored) {
  lang::Rule rule = *lang::Parser::ParseRule(
      "m(A, B, C, D) :- in(A, d:f()) & in(B, d:f()) & in(C, d:f()) & "
      "in(D, d:f()).");
  std::vector<std::vector<lang::Atom>> orderings =
      RuleRewriter::ValidOrderings(rule.body, {}, 5);
  EXPECT_EQ(orderings.size(), 5u);  // 4! = 24 valid, capped at 5
}

TEST(RedirectToCimTest, RewritesOnlyListedDomains) {
  lang::Rule rule = *lang::Parser::ParseRule(
      "m(A, B) :- in(A, video:f()) & in(B, relation:g(A)).");
  size_t n = RuleRewriter::RedirectToCim(&rule.body, {"video"});
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(rule.body[0].call.domain, "cim_video");
  EXPECT_EQ(rule.body[1].call.domain, "relation");
}

TEST(PushSelectionsTest, EqualityPushesIntoEqualCall) {
  // The paper's query4 → query3 rewriting: relation:all + =(P.role, c)
  // becomes relation:equal('cast', 'role', c).
  lang::Rule rule = *lang::Parser::ParseRule(
      "q(A) :- in(P, relation:all('cast')) & =(P.role, 'rupert') & "
      "=(P.name, A).");
  size_t pushed = RuleRewriter::PushSelections(&rule.body, nullptr);
  EXPECT_EQ(pushed, 1u);
  ASSERT_EQ(rule.body.size(), 2u);
  EXPECT_EQ(rule.body[0].call.function, "equal");
  ASSERT_EQ(rule.body[0].call.args.size(), 3u);
  EXPECT_EQ(rule.body[0].call.args[1].constant, Value::Str("role"));
  EXPECT_EQ(rule.body[0].call.args[2].constant, Value::Str("rupert"));
}

TEST(PushSelectionsTest, RangePushesIntoSelectFamily) {
  lang::Rule rule = *lang::Parser::ParseRule(
      "q(P) :- in(P, relation:all('inv')) & P.qty < 10.");
  size_t pushed = RuleRewriter::PushSelections(&rule.body, nullptr);
  EXPECT_EQ(pushed, 1u);
  EXPECT_EQ(rule.body[0].call.function, "select_lt");
}

TEST(PushSelectionsTest, FlippedComparisonNormalizes) {
  lang::Rule rule = *lang::Parser::ParseRule(
      "q(P) :- in(P, relation:all('inv')) & 10 < P.qty.");
  size_t pushed = RuleRewriter::PushSelections(&rule.body, nullptr);
  EXPECT_EQ(pushed, 1u);
  EXPECT_EQ(rule.body[0].call.function, "select_gt");
}

TEST(PushSelectionsTest, RespectsDomainFunctionAvailability) {
  lang::Rule rule = *lang::Parser::ParseRule(
      "q(P) :- in(P, video:all('x')) & =(P.role, 'y').");
  auto has_fn = [](const std::string& domain, const std::string&, size_t) {
    return domain != "video";  // video exports no select family
  };
  EXPECT_EQ(RuleRewriter::PushSelections(&rule.body, has_fn), 0u);
  EXPECT_EQ(rule.body.size(), 2u);
}

TEST(PushSelectionsTest, MultipleSelectionsCascade) {
  lang::Rule rule = *lang::Parser::ParseRule(
      "q(P, Q) :- in(P, r:all('a')) & =(P.x, 1) & in(Q, r:all('b')) & "
      "=(Q.y, 2).");
  size_t pushed = RuleRewriter::PushSelections(&rule.body, nullptr);
  EXPECT_EQ(pushed, 2u);
  EXPECT_EQ(rule.body.size(), 2u);
}

TEST(RewriteTest, PaperSectionFivePlansP8AndP12) {
  // The (M1)/(Q7) example: with the query binding A and asking for C, the
  // rewriter must produce both plan P8 (d1 first) and P12 (d2 first).
  lang::Program program = MustProgram(R"(
    m(A, C) :- p(A, B) & q(B, C).
    p(A, B) :- in(B, d1:p_bf(A)).
    q(B, C) :- in(C, d2:q_bf(B)).
  )");
  lang::Query query = MustQuery("?- m('a', C).");
  RuleRewriter::Options options;
  Result<std::vector<CandidatePlan>> plans =
      RuleRewriter::Rewrite(program, query, options);
  ASSERT_TRUE(plans.ok()) << plans.status();
  // Both orderings of m's body appear in some plan.
  bool p_first = false, q_first = false;
  for (const CandidatePlan& plan : *plans) {
    for (const lang::Rule& rule : plan.program.rules) {
      if (rule.head.predicate != "m") continue;
      if (rule.body[0].predicate == "p") p_first = true;
      if (rule.body[0].predicate == "q") q_first = true;
    }
  }
  EXPECT_TRUE(p_first);
  EXPECT_TRUE(q_first);
}

TEST(RewriteTest, CimVariantsGenerated) {
  lang::Program program = MustProgram("m(A) :- in(A, video:f(1)).");
  lang::Query query = MustQuery("?- m(A).");
  RuleRewriter::Options options;
  options.cim_domains = {"video"};
  Result<std::vector<CandidatePlan>> plans =
      RuleRewriter::Rewrite(program, query, options);
  ASSERT_TRUE(plans.ok());
  bool direct = false, cim = false;
  for (const CandidatePlan& plan : *plans) {
    for (const lang::Rule& rule : plan.program.rules) {
      for (const lang::Atom& atom : rule.body) {
        if (!atom.is_domain_call()) continue;
        if (atom.call.domain == "video") direct = true;
        if (atom.call.domain == "cim_video") cim = true;
      }
    }
  }
  EXPECT_TRUE(direct);
  EXPECT_TRUE(cim);
}

TEST(RewriteTest, CimOnlySuppressesDirectPlans) {
  lang::Program program = MustProgram("m(A) :- in(A, video:f(1)).");
  lang::Query query = MustQuery("?- m(A).");
  RuleRewriter::Options options;
  options.cim_domains = {"video"};
  options.cim_only = true;
  Result<std::vector<CandidatePlan>> plans =
      RuleRewriter::Rewrite(program, query, options);
  ASSERT_TRUE(plans.ok());
  for (const CandidatePlan& plan : *plans) {
    for (const lang::Rule& rule : plan.program.rules) {
      for (const lang::Atom& atom : rule.body) {
        if (atom.is_domain_call()) {
          EXPECT_EQ(atom.call.domain, "cim_video");
        }
      }
    }
  }
}

TEST(RewriteTest, InfeasibleQueryGoalsRejected) {
  // A query whose own goals can never be ordered executably is rejected
  // outright (rule-level infeasibility is left to the cost estimator,
  // which knows the actual adornments).
  lang::Program program = MustProgram("m(A) :- in(A, d:f(1)).");
  lang::Query query = MustQuery("?- in(A, d:f(X)).");
  EXPECT_FALSE(
      RuleRewriter::Rewrite(program, query, RuleRewriter::Options{}).ok());
}

TEST(RewriteTest, PlanCapRespected) {
  lang::Program program = MustProgram(
      "m(A, B, C) :- in(A, d:f()) & in(B, d:f()) & in(C, d:f()).");
  lang::Query query = MustQuery("?- m(A, B, C).");
  RuleRewriter::Options options;
  options.max_plans = 4;
  Result<std::vector<CandidatePlan>> plans =
      RuleRewriter::Rewrite(program, query, options);
  ASSERT_TRUE(plans.ok());
  EXPECT_LE(plans->size(), 4u);
}

}  // namespace
}  // namespace hermes::optimizer
