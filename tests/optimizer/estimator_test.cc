#include "optimizer/estimator.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "optimizer/optimizer.h"

namespace hermes::optimizer {
namespace {

lang::Program MustProgram(const std::string& text) {
  Result<lang::Program> p = lang::Parser::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return p.ok() ? *p : lang::Program{};
}

lang::Query MustQuery(const std::string& text) {
  Result<lang::Query> q = lang::Parser::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return q.ok() ? *q : lang::Query{};
}

/// Loads the statistics of the paper's Example 6.1/7.1 scenario.
///   d1:p_bf('a'):  Ta 2.10, Card 2      (average of T16's 'a' rows)
///   d1:p_bb(a,b):  Ta 1.00, Card 1
///   d2:q_bf($b):   Ta 3.00, Card 4
///   d2:q_ff():     Ta 9.00, Card 10
void LoadExampleStats(dcsm::Dcsm* dcsm) {
  dcsm->RecordExecution(DomainCall{"d1", "p_bf", {Value::Str("a")}},
                        CostVector(0.5, 2.00, 2));
  dcsm->RecordExecution(DomainCall{"d1", "p_bf", {Value::Str("a")}},
                        CostVector(0.5, 2.20, 2));
  dcsm->RecordExecution(
      DomainCall{"d1", "p_bb", {Value::Str("a"), Value::Str("b")}},
      CostVector(0.4, 1.00, 1));
  dcsm->RecordExecution(DomainCall{"d2", "q_bf", {Value::Str("b1")}},
                        CostVector(1.0, 3.00, 4));
  dcsm->RecordExecution(DomainCall{"d2", "q_ff", {}},
                        CostVector(2.0, 9.00, 10));
}

TEST(EstimatorTest, PaperFormulaOnePlanP8) {
  // Plan P8: first d1:p_bf('a'), then one d2:q_bf($b) per answer.
  // Formula 1: Ta = Ta(p_bf) + Card(p_bf)·Ta(q_bf) = 2.10 + 2·3.00 = 8.10.
  dcsm::Dcsm dcsm;
  LoadExampleStats(&dcsm);
  RuleCostEstimator estimator(&dcsm);

  CandidatePlan plan;
  plan.program = MustProgram(R"(
    m(A, C) :- p(A, B) & q(B, C).
    p(A, B) :- in(B, d1:p_bf(A)).
    q(B, C) :- in(C, d2:q_bf(B)).
  )");
  plan.query = MustQuery("?- m('a', C).");

  Result<RuleCostEstimator::Estimate> est = estimator.EstimatePlan(plan);
  ASSERT_TRUE(est.ok()) << est.status();
  EXPECT_NEAR(est->cost.t_all_ms, 8.10, 1e-6);
  // Card = Card(p_bf) · Card(q_bf) = 2 · 4 = 8.
  EXPECT_NEAR(est->cost.cardinality, 8.0, 1e-6);
  // Tf = Tf(p_bf 'a') + Tf(q_bf $b) = 0.5 + 1.0.
  EXPECT_NEAR(est->cost.t_first_ms, 1.5, 1e-6);
}

TEST(EstimatorTest, PaperFormulaTwoPlanP12) {
  // Plan P12: first d2:q_ff(), then a d1:p_bb('a', $b) membership check
  // per answer. Formula 2: Ta = Ta(q_ff) + Card(q_ff)·Ta(p_bb)
  //                           = 9.00 + 10·1.00 = 19.00.
  dcsm::Dcsm dcsm;
  LoadExampleStats(&dcsm);
  RuleCostEstimator estimator(&dcsm);

  CandidatePlan plan;
  plan.program = MustProgram(R"(
    m(A, C) :- q(B, C) & p(A, B).
    p(A, B) :- in(X, d1:p_bb(A, B)).
    q(B, C) :- in(C, d2:q_bf(B)).
    q(B, C) :- in(B, d2:q_ff()) & in(C, d2:q_ff()).
  )");
  // Use the simple two-call shape the paper sketches:
  plan.program = MustProgram(R"(
    m2(A, C) :- in(BC, d2:q_ff()) & =(B, BC.1) & =(C, BC.2) &
                in(X, d1:p_bb(A, B)).
  )");
  plan.query = MustQuery("?- m2('a', C).");

  Result<RuleCostEstimator::Estimate> est = estimator.EstimatePlan(plan);
  ASSERT_TRUE(est.ok()) << est.status();
  // 19.0 from the paper's formula plus the tiny simulated CPU cost of the
  // two binding comparisons (2 × 0.001ms × 10 outer tuples).
  EXPECT_NEAR(est->cost.t_all_ms, 19.0, 0.05);
}

TEST(EstimatorTest, FreeDomainArgumentMakesPlanInfeasible) {
  dcsm::Dcsm dcsm;
  RuleCostEstimator estimator(&dcsm);
  CandidatePlan plan;
  plan.program = MustProgram("m(C) :- in(C, d2:q_bf(B)).");
  plan.query = MustQuery("?- m(C).");
  EXPECT_EQ(estimator.EstimatePlan(plan).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EstimatorTest, ComparisonSelectivityShrinksCardinality) {
  dcsm::Dcsm dcsm;
  LoadExampleStats(&dcsm);
  EstimatorParams params;
  params.range_selectivity = 0.25;
  RuleCostEstimator estimator(&dcsm, params);

  CandidatePlan plan;
  plan.program = MustProgram("m(C) :- in(C, d2:q_ff()) & C > 5.");
  plan.query = MustQuery("?- m(C).");
  Result<RuleCostEstimator::Estimate> est = estimator.EstimatePlan(plan);
  ASSERT_TRUE(est.ok()) << est.status();
  EXPECT_NEAR(est->cost.cardinality, 10 * 0.25, 1e-6);
}

TEST(EstimatorTest, StaticallyFalseComparisonZeroesCardinality) {
  dcsm::Dcsm dcsm;
  LoadExampleStats(&dcsm);
  RuleCostEstimator estimator(&dcsm);
  CandidatePlan plan;
  plan.program = MustProgram("m(C) :- in(C, d2:q_ff()) & 1 > 2.");
  plan.query = MustQuery("?- m(C).");
  Result<RuleCostEstimator::Estimate> est = estimator.EstimatePlan(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->cost.cardinality, 0.0);
}

TEST(EstimatorTest, MultiRulePredicateSumsTaAndCard) {
  dcsm::Dcsm dcsm;
  LoadExampleStats(&dcsm);
  RuleCostEstimator estimator(&dcsm);
  CandidatePlan plan;
  plan.program = MustProgram(R"(
    u(C) :- in(C, d2:q_ff()).
    u(C) :- in(C, d2:q_bf('b1')).
  )");
  plan.query = MustQuery("?- u(C).");
  Result<RuleCostEstimator::Estimate> est = estimator.EstimatePlan(plan);
  ASSERT_TRUE(est.ok()) << est.status();
  EXPECT_NEAR(est->cost.t_all_ms, 9.0 + 3.0, 1e-6);
  EXPECT_NEAR(est->cost.cardinality, 10.0 + 4.0, 1e-6);
  // First answer comes from the first rule.
  EXPECT_NEAR(est->cost.t_first_ms, 2.0, 1e-6);
}

TEST(EstimatorTest, RecursionIsRejected) {
  dcsm::Dcsm dcsm;
  RuleCostEstimator estimator(&dcsm);
  CandidatePlan plan;
  plan.program = MustProgram(R"(
    path(A, B) :- in(B, g:edge(A)).
    path(A, B) :- path(A, C) & path(C, B).
  )");
  plan.query = MustQuery("?- path('x', B).");
  EXPECT_EQ(estimator.EstimatePlan(plan).status().code(),
            StatusCode::kUnimplemented);
}

TEST(EstimatorTest, EstimationTimeAccumulatesDcsmLookups) {
  dcsm::Dcsm dcsm;
  LoadExampleStats(&dcsm);
  RuleCostEstimator estimator(&dcsm);
  CandidatePlan plan;
  plan.program = MustProgram("m(C) :- in(C, d2:q_ff()).");
  plan.query = MustQuery("?- m(C).");
  Result<RuleCostEstimator::Estimate> est = estimator.EstimatePlan(plan);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->estimation_ms, 0.0);
}

TEST(OptimizerTest, PicksCheaperPlanForAllAnswers) {
  // With the Example 7.1 numbers, P8-style (8.10) must beat P12-style
  // (19.0) for all-answers optimization.
  dcsm::Dcsm dcsm;
  LoadExampleStats(&dcsm);
  QueryOptimizer optimizer(&dcsm);
  lang::Program program = MustProgram(R"(
    m(A, C) :- p(A, B) & q(B, C).
    p(A, B) :- in(B, d1:p_bf(A)).
    q(B, C) :- in(C, d2:q_bf(B)).
  )");
  lang::Query query = MustQuery("?- m('a', C).");
  Result<OptimizerResult> result =
      optimizer.Optimize(program, query, OptimizationGoal::kAllAnswers);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->best.estimatable);
  EXPECT_NEAR(result->best.estimated.t_all_ms, 8.10, 1e-6);
  EXPECT_GE(result->candidates.size(), 1u);
}

TEST(OptimizerTest, GoalChangesWinner) {
  // Construct stats where plan A has better Ta but worse Tf than plan B.
  dcsm::Dcsm dcsm;
  // fast_all: Tf 50, Ta 60. fast_first: Tf 1, Ta 100.
  dcsm.RecordExecution(DomainCall{"s", "fast_all", {}},
                       CostVector(50, 60, 1));
  dcsm.RecordExecution(DomainCall{"s", "fast_first", {}},
                       CostVector(1, 100, 1));
  QueryOptimizer optimizer(&dcsm);
  lang::Program program = MustProgram(R"(
    m(X) :- in(X, s:fast_all()).
    m2(X) :- in(X, s:fast_first()).
    either(X) :- m(X).
    either(X) :- m2(X).
  )");
  // Two independent single-goal queries compete only through rule choice;
  // instead compare two candidate orderings directly:
  lang::Program prog2 = MustProgram(
      "both(X, Y) :- in(X, s:fast_all()) & in(Y, s:fast_first()).");
  (void)program;
  lang::Query query = MustQuery("?- both(X, Y).");
  Result<OptimizerResult> all =
      optimizer.Optimize(prog2, query, OptimizationGoal::kAllAnswers);
  Result<OptimizerResult> first =
      optimizer.Optimize(prog2, query, OptimizationGoal::kFirstAnswer);
  ASSERT_TRUE(all.ok() && first.ok());
  // Identical Ta either way (Card 1), so both estimatable; the goal picks
  // by Tf only in the first-answer case — both orders give the same sums
  // here, so just check both succeed and produce estimates.
  EXPECT_TRUE(all->best.estimatable);
  EXPECT_TRUE(first->best.estimatable);
}

}  // namespace
}  // namespace hermes::optimizer
