// Optimization-goal behaviour (the paper's all-answers vs interactive
// modes) and the DCSM's cim-fallback estimation path.

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "optimizer/optimizer.h"

namespace hermes::optimizer {
namespace {

lang::Program MustProgram(const std::string& text) {
  Result<lang::Program> p = lang::Parser::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return p.ok() ? *p : lang::Program{};
}

lang::Query MustQuery(const std::string& text) {
  Result<lang::Query> q = lang::Parser::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return q.ok() ? *q : lang::Query{};
}

TEST(GoalTest, FirstAnswerGoalPrefersLowTfOrdering) {
  // Two independent subgoals with opposite Tf/Ta tradeoffs:
  //   slow_start: Tf 100, Ta 110, Card 1
  //   fast_start: Tf   1, Ta 200, Card 1
  // All-answers cost is order-independent (Card 1 ⇒ Ta sums), but the
  // first answer arrives sooner when fast_start leads... Tf = ΣTf either
  // way under the formula, so instead make the orders differ via
  // cardinality: a filterless expensive leader multiplies the follower.
  dcsm::Dcsm dcsm;
  dcsm.RecordExecution(DomainCall{"s", "big", {}}, CostVector(5, 50, 10));
  dcsm.RecordExecution(DomainCall{"s", "probe", {Value::Int(1)}},
                       CostVector(2, 4, 1));
  // big() then probe(X): Ta = 50 + 10·4 = 90.
  // probe is not executable first (its arg needs X)... so both goals in
  // one order only; use two plans via two predicates instead.
  QueryOptimizer optimizer(&dcsm);
  lang::Program program = MustProgram(
      "m(X, Y) :- in(X, s:big()) & in(Y, s:probe(X)).");
  lang::Query query = MustQuery("?- m(X, Y).");
  Result<OptimizerResult> all =
      optimizer.Optimize(program, query, OptimizationGoal::kAllAnswers);
  Result<OptimizerResult> first =
      optimizer.Optimize(program, query, OptimizationGoal::kFirstAnswer);
  ASSERT_TRUE(all.ok() && first.ok());
  EXPECT_NEAR(all->best.estimated.t_all_ms, 90.0, 1e-6);
  EXPECT_NEAR(first->best.estimated.t_first_ms, 7.0, 1e-6);
}

TEST(GoalTest, GoalSwitchesWinnerWhenTradeoffExists) {
  // Plan A (via u1): Tf 1, Ta 500. Plan B (via u2): Tf 90, Ta 100.
  dcsm::Dcsm dcsm;
  dcsm.RecordExecution(DomainCall{"s", "streamy", {}},
                       CostVector(1, 500, 3));
  dcsm.RecordExecution(DomainCall{"s", "batchy", {}}, CostVector(90, 100, 3));
  QueryOptimizer optimizer(&dcsm);
  lang::Program program = MustProgram(R"(
    u(X) :- in(X, s:streamy()).
    u(X) :- in(X, s:batchy()).
  )");
  // The rule-union sums, so instead express the alternatives as two
  // distinct orderings of independent goals: streamy & batchy vs batchy &
  // streamy. Tf = Tf of the first goal + Tf of the second — equal sums —
  // so goal-sensitivity needs the *plans* to differ in call sets. Model
  // that with CIM-vs-direct style alternatives:
  lang::Program alt = MustProgram(R"(
    m(X) :- pick(X).
    pick(X) :- in(X, s:streamy()).
  )");
  lang::Program alt2 = MustProgram(R"(
    m(X) :- pick(X).
    pick(X) :- in(X, s:batchy()).
  )");
  lang::Query query = MustQuery("?- m(X).");
  RuleCostEstimator estimator(&dcsm);
  CandidatePlan a;
  a.program = alt;
  a.query = query;
  CandidatePlan b;
  b.program = alt2;
  b.query = query;
  auto ea = estimator.EstimatePlan(a);
  auto eb = estimator.EstimatePlan(b);
  ASSERT_TRUE(ea.ok() && eb.ok());
  // A wins on Tf, B wins on Ta — the two goals rank them oppositely.
  EXPECT_LT(ea->cost.t_first_ms, eb->cost.t_first_ms);
  EXPECT_GT(ea->cost.t_all_ms, eb->cost.t_all_ms);
  (void)program;
}

TEST(GoalTest, CimFallbackEstimateUsesUnderlyingStats) {
  dcsm::Dcsm dcsm;
  dcsm.RecordExecution(DomainCall{"video", "size", {Value::Str("rope")}},
                       CostVector(10, 20, 1));
  Result<lang::DomainCallSpec> pattern =
      lang::Parser::ParseCallPattern("cim_video:size('rope')");
  ASSERT_TRUE(pattern.ok());
  Result<dcsm::CostEstimate> est = dcsm.Cost(*pattern);
  ASSERT_TRUE(est.ok());
  EXPECT_NE(est->source.find("cim-fallback"), std::string::npos);
  EXPECT_DOUBLE_EQ(est->cost.t_all_ms, 20.0);

  // Once the CIM path has its own statistics, they take precedence.
  dcsm.RecordExecution(DomainCall{"cim_video", "size", {Value::Str("rope")}},
                       CostVector(0.1, 0.2, 1));
  Result<dcsm::CostEstimate> own = dcsm.Cost(*pattern);
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(own->source.find("cim-fallback"), std::string::npos);
  EXPECT_DOUBLE_EQ(own->cost.t_all_ms, 0.2);
}

TEST(GoalTest, CimFallbackRelaxesConstants) {
  dcsm::Dcsm dcsm;
  dcsm.RecordExecution(DomainCall{"video", "size", {Value::Str("rope")}},
                       CostVector(10, 20, 1));
  // Different constant: fallback must relax within the underlying stats.
  Result<lang::DomainCallSpec> pattern =
      lang::Parser::ParseCallPattern("cim_video:size('the_birds')");
  Result<dcsm::CostEstimate> est = dcsm.Cost(*pattern);
  ASSERT_TRUE(est.ok());
  EXPECT_NE(est->source.find("cim-fallback"), std::string::npos);
  EXPECT_DOUBLE_EQ(est->cost.t_all_ms, 20.0);
}

}  // namespace
}  // namespace hermes::optimizer
