#include "text/text_domain.h"

#include <gtest/gtest.h>

#include "engine/mediator.h"
#include "relational/relational_domain.h"

namespace hermes::text {
namespace {

std::shared_ptr<TextDomain> MakeDomain() {
  auto d = std::make_shared<TextDomain>("text");
  LoadNewsCorpus(d.get());
  return d;
}

DomainCall Call(const std::string& fn, ValueList args) {
  return DomainCall{"text", fn, std::move(args)};
}

TEST(TextDomainTest, SearchFindsAndRanks) {
  auto d = MakeDomain();
  Result<CallOutput> out =
      d->Run(Call("search", {Value::Str("usatoday"), Value::Str("supply")}));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_GE(out->answers.size(), 2u);
  // Ranked by descending hits.
  int64_t prev = out->answers[0].GetAttr("hits")->as_int();
  for (const Value& row : out->answers) {
    int64_t hits = row.GetAttr("hits")->as_int();
    EXPECT_LE(hits, prev);
    prev = hits;
  }
}

TEST(TextDomainTest, SearchIsCaseInsensitive) {
  auto d = MakeDomain();
  Result<CallOutput> lower =
      d->Run(Call("search", {Value::Str("usatoday"), Value::Str("rope")}));
  Result<CallOutput> upper =
      d->Run(Call("search", {Value::Str("usatoday"), Value::Str("Rope")}));
  ASSERT_TRUE(lower.ok() && upper.ok());
  EXPECT_EQ(lower->answers.size(), upper->answers.size());
  EXPECT_GE(lower->answers.size(), 2u);  // nw02, nw05
}

TEST(TextDomainTest, CooccurIntersectsPostings) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(Call(
      "cooccur",
      {Value::Str("usatoday"), Value::Str("terrain"), Value::Str("supply")}));
  ASSERT_TRUE(out.ok()) << out.status();
  // nw01 mentions terrain+supply; nw03 mentions terrain+supply too.
  EXPECT_EQ(out->answers.size(), 2u);
}

TEST(TextDomainTest, DocRetrievesFullText) {
  auto d = MakeDomain();
  Result<CallOutput> out =
      d->Run(Call("doc", {Value::Str("usatoday"), Value::Str("nw04")}));
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->answers[0].as_string().find("transatlantic"),
            std::string::npos);
  EXPECT_TRUE(
      d->Run(Call("doc", {Value::Str("usatoday"), Value::Str("zz")}))
          .status()
          .IsNotFound());
}

TEST(TextDomainTest, DocsAndCount) {
  auto d = MakeDomain();
  Result<CallOutput> docs = d->Run(Call("docs", {Value::Str("usatoday")}));
  Result<CallOutput> count =
      d->Run(Call("doc_count", {Value::Str("usatoday")}));
  ASSERT_TRUE(docs.ok() && count.ok());
  EXPECT_EQ(docs->answers.size(), 6u);
  EXPECT_EQ(count->answers, AnswerSet{Value::Int(6)});
}

TEST(TextDomainTest, ReindexOnReplace) {
  auto d = MakeDomain();
  d->AddDocument("usatoday", "nw01", "entirely new body about databases");
  Result<CallOutput> old_term =
      d->Run(Call("search", {Value::Str("usatoday"), Value::Str("convoys")}));
  ASSERT_TRUE(old_term.ok());
  // nw01 no longer matches 'convoys' (only nw06 does).
  EXPECT_EQ(old_term->answers.size(), 1u);
  Result<CallOutput> new_term = d->Run(
      Call("search", {Value::Str("usatoday"), Value::Str("databases")}));
  ASSERT_TRUE(new_term.ok());
  EXPECT_EQ(new_term->answers.size(), 2u);  // nw01 (new body) + nw03
}

TEST(TextDomainTest, UnknownCollectionAndBadArgs) {
  auto d = MakeDomain();
  EXPECT_TRUE(d->Run(Call("search", {Value::Str("ghost"), Value::Str("x")}))
                  .status()
                  .IsNotFound());
  EXPECT_FALSE(
      d->Run(Call("search", {Value::Str("usatoday"), Value::Str("two words")}))
          .ok());
  EXPECT_FALSE(d->Run(Call("search", {Value::Str("usatoday")})).ok());
}

TEST(TextDomainTest, MissingTermYieldsEmptyNotError) {
  auto d = MakeDomain();
  Result<CallOutput> out = d->Run(
      Call("search", {Value::Str("usatoday"), Value::Str("xylophone")}));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->answers.empty());
  EXPECT_GT(out->all_ms, 0.0);
}

TEST(TextDomainTest, MediatesWithOtherDomains) {
  // Join news mentions of actors against the cast relation via a rule.
  Mediator med;
  ASSERT_TRUE(med.RegisterDomain("text", MakeDomain()).ok());
  auto cast_db = std::make_shared<relational::Database>();
  ASSERT_TRUE(cast_db->LoadCsv("cast", "name:string,role:string\n"
                                       "'james stewart',rupert\n")
                  .ok());
  ASSERT_TRUE(
      med.RegisterDomain("relation",
                         std::make_shared<relational::RelationalDomain>(
                             "rel", cast_db))
          .ok());
  ASSERT_TRUE(med.LoadProgram(R"(
      press_mentions(Word, Doc, Text) :-
          in(Hit, text:search('usatoday', Word)) &
          =(Doc, Hit.doc) &
          in(Text, text:doc('usatoday', Doc)).
  )")
                  .ok());
  Result<QueryResult> res =
      med.Query("?- press_mentions('stewart', D, T).", QueryOptions{});
  ASSERT_TRUE(res.ok()) << res.status();
  ASSERT_EQ(res->execution.answers.size(), 1u);
}

}  // namespace
}  // namespace hermes::text
