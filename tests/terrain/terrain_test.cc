#include "terrain/terrain_domain.h"

#include <gtest/gtest.h>

#include "testbed/scenario.h"

namespace hermes::terrain {
namespace {

DomainCall Call(const std::string& fn, ValueList args) {
  return DomainCall{"terraindb", fn, std::move(args)};
}

TEST(TerrainTest, StraightLineRouteOnOpenGrid) {
  TerrainDomain d("t");
  d.InitGrid(10, 10);
  ASSERT_TRUE(d.AddLocation("a", 0, 0).ok());
  ASSERT_TRUE(d.AddLocation("b", 5, 0).ok());
  Result<CallOutput> out =
      d.Run(Call("findrte", {Value::Str("a"), Value::Str("b")}));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->answers.size(), 1u);
  const Value& route = out->answers[0];
  EXPECT_EQ(*route.GetAttr("cost"), Value::Double(5.0));
  EXPECT_EQ(*route.GetAttr("length"), Value::Int(6));  // 6 cells incl. ends
}

TEST(TerrainTest, RouteAvoidsObstacles) {
  TerrainDomain d("t");
  d.InitGrid(5, 5);
  // Wall at x=2 except the top row.
  for (int y = 0; y < 4; ++y) d.SetObstacle(2, y);
  ASSERT_TRUE(d.AddLocation("a", 0, 0).ok());
  ASSERT_TRUE(d.AddLocation("b", 4, 0).ok());
  Result<CallOutput> out =
      d.Run(Call("distance", {Value::Str("a"), Value::Str("b")}));
  ASSERT_TRUE(out.ok());
  // Must detour via y=4: 0,0 → 0,4 → 4,4 → 4,0 is 12 steps.
  EXPECT_EQ(out->answers[0], Value::Double(12.0));
}

TEST(TerrainTest, WeightedCellsChangeRouteCost) {
  TerrainDomain d("t");
  d.InitGrid(3, 1);
  d.SetCellCost(1, 0, 10.0);
  ASSERT_TRUE(d.AddLocation("a", 0, 0).ok());
  ASSERT_TRUE(d.AddLocation("b", 2, 0).ok());
  Result<CallOutput> out =
      d.Run(Call("distance", {Value::Str("a"), Value::Str("b")}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers[0], Value::Double(11.0));  // 10 + 1
}

TEST(TerrainTest, UnreachableTargetYieldsEmptySet) {
  TerrainDomain d("t");
  d.InitGrid(5, 1);
  d.SetObstacle(2, 0);
  ASSERT_TRUE(d.AddLocation("a", 0, 0).ok());
  ASSERT_TRUE(d.AddLocation("b", 4, 0).ok());
  Result<CallOutput> out =
      d.Run(Call("findrte", {Value::Str("a"), Value::Str("b")}));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->answers.empty());
  EXPECT_GT(out->all_ms, 0.0);  // the failed search still cost time
}

TEST(TerrainTest, ReachableEnumeratesConnectedLocations) {
  TerrainDomain d("t");
  d.InitGrid(5, 1);
  d.SetObstacle(2, 0);
  ASSERT_TRUE(d.AddLocation("a", 0, 0).ok());
  ASSERT_TRUE(d.AddLocation("near", 1, 0).ok());
  ASSERT_TRUE(d.AddLocation("far", 4, 0).ok());
  Result<CallOutput> out = d.Run(Call("reachable", {Value::Str("a")}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers, AnswerSet{Value::Str("near")});
}

TEST(TerrainTest, UnknownLocationIsNotFound) {
  TerrainDomain d("t");
  d.InitGrid(3, 3);
  ASSERT_TRUE(d.AddLocation("a", 0, 0).ok());
  EXPECT_TRUE(d.Run(Call("findrte", {Value::Str("a"), Value::Str("ghost")}))
                  .status()
                  .IsNotFound());
}

TEST(TerrainTest, LocationOutsideGridRejected) {
  TerrainDomain d("t");
  d.InitGrid(3, 3);
  EXPECT_FALSE(d.AddLocation("x", 5, 5).ok());
  EXPECT_FALSE(d.AddLocation("y", -1, 0).ok());
}

TEST(TerrainTest, LongerRouteCostsMoreSimTime) {
  TerrainDomain d("t");
  d.InitGrid(60, 60);
  ASSERT_TRUE(d.AddLocation("a", 0, 0).ok());
  ASSERT_TRUE(d.AddLocation("near", 2, 0).ok());
  ASSERT_TRUE(d.AddLocation("far", 59, 59).ok());
  Result<CallOutput> near_out =
      d.Run(Call("findrte", {Value::Str("a"), Value::Str("near")}));
  Result<CallOutput> far_out =
      d.Run(Call("findrte", {Value::Str("a"), Value::Str("far")}));
  ASSERT_TRUE(near_out.ok() && far_out.ok());
  EXPECT_GT(far_out->all_ms, near_out->all_ms);
}

TEST(TerrainTest, SupplyTerrainScenarioRoutes) {
  auto d = testbed::MakeSupplyTerrain();
  Result<CallOutput> locations = d->Run(Call("locations", {}));
  ASSERT_TRUE(locations.ok());
  EXPECT_EQ(locations->answers.size(), 5u);
  // place1 is west of the ridge; depot_east requires crossing the pass.
  Result<CallOutput> route =
      d->Run(Call("findrte", {Value::Str("place1"), Value::Str("depot_east")}));
  ASSERT_TRUE(route.ok());
  ASSERT_EQ(route->answers.size(), 1u);
  EXPECT_GT(route->answers[0].GetAttr("cost")->as_double(), 50.0);
}

}  // namespace
}  // namespace hermes::terrain
