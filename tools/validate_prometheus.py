#!/usr/bin/env python3
"""Validates a Prometheus text-format exposition produced by hermes.

Structural checks follow the text exposition format spec: HELP/TYPE
headers precede their family's samples, one header per family, sample
lines parse, label values are properly quoted. Hermes-specific checks:
the families every instrumented layer registers must be present, and
histogram bucket series must be cumulative and end in an '+Inf' bucket
matching the family's _count.

Usage: validate_prometheus.py FILE.prom [--require FAMILY ...]
Exits non-zero with a message on the first violation. Stdlib only.
"""

import re
import sys

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*)\})?'
    r' (?P<value>[0-9.eE+-]+|NaN|[+-]Inf)$'
)

DEFAULT_REQUIRED = [
    "hermes_queries_total",
    "hermes_query_sim_ms",
    "hermes_query_tf_sim_ms",
    "hermes_query_ta_sim_ms",
    "hermes_net_calls_total",
    "hermes_callpipe_singleflight_leader_total",
    "hermes_callpipe_singleflight_follower_total",
    "hermes_site_calls_total",
    "hermes_cache_hits_total",
    "hermes_cache_entry_age_sim_ms",
    "hermes_cache_evict_age_sim_ms",
    "hermes_cim_exact_hits_total",
    "hermes_dcsm_records_total",
    "hermes_dcsm_drift",
    "hermes_plan_cache_hits_total",
    "hermes_plan_cache_misses_total",
    "hermes_plan_cache_invalidations_total",
    "hermes_plan_cache_entries",
    "hermes_replan_triggers_total",
    "hermes_replan_splices_total",
    "hermes_flight_events_total",
    "hermes_flight_events_dropped_total",
    "hermes_diag_captures_total",
    "hermes_overload_admitted_total",
    "hermes_overload_shed_total",
    "hermes_overload_limit",
    "hermes_hedge_issued_total",
    "hermes_hedge_wins_total",
    "hermes_hedge_cancelled_total",
    "hermes_resilience_retries_total",
    "hermes_resilience_breaker_shed_total",
    "hermes_resilience_breaker_transitions_total",
    "hermes_resilience_deadline_aborts_total",
    "hermes_resilience_stale_serves_total",
]


def fail(msg):
    print(f"validate_prometheus: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def family_of(sample_name):
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def main(path, required):
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    types = {}       # family -> declared type
    helps = set()
    samples = []     # (name, labels-str, value, line-no)
    headers_seen = []
    for no, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                fail(f"line {no}: malformed HELP header")
            helps.add(parts[2])
        elif line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram", "summary"):
                fail(f"line {no}: malformed TYPE header: {line!r}")
            if parts[2] in types:
                fail(f"line {no}: duplicate TYPE header for {parts[2]}")
            types[parts[2]] = parts[3]
            headers_seen.append(parts[2])
        elif line.startswith("#"):
            fail(f"line {no}: unexpected comment: {line!r}")
        else:
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"line {no}: unparsable sample: {line!r}")
            samples.append((m.group("name"), m.group("labels") or "",
                            float(m.group("value")), no))

    if not samples:
        fail("no samples")
    for name, _, _, no in samples:
        fam = family_of(name)
        if fam not in types:
            fail(f"line {no}: sample {name} has no TYPE header")
        if fam not in helps:
            fail(f"line {no}: sample {name} has no HELP header")

    for fam in required:
        if fam not in types:
            fail(f"required family missing: {fam}")
        if not any(family_of(name) == fam for name, _, _, _ in samples):
            fail(f"required family has no samples: {fam}")

    # Histogram checks: per series (family + non-le labels), buckets are
    # cumulative, the last bucket is +Inf, and it equals _count.
    for fam, typ in types.items():
        if typ != "histogram":
            continue
        series = {}
        counts = {}
        for name, labels, value, no in samples:
            if family_of(name) != fam:
                continue
            if name.endswith("_bucket"):
                le = re.search(r'le="([^"]*)"', labels)
                if not le:
                    fail(f"line {no}: bucket sample without le label")
                rest = re.sub(r'le="[^"]*",?', "", labels).rstrip(",")
                series.setdefault(rest, []).append((le.group(1), value))
            elif name.endswith("_count"):
                counts[labels] = value
        for key, buckets in series.items():
            values = [v for _, v in buckets]
            if values != sorted(values):
                fail(f"{fam}{{{key}}}: bucket counts are not cumulative")
            if buckets[-1][0] != "+Inf":
                fail(f"{fam}{{{key}}}: last bucket is not +Inf")
            if key in counts and buckets[-1][1] != counts[key]:
                fail(f"{fam}{{{key}}}: +Inf bucket {buckets[-1][1]} != "
                     f"_count {counts[key]}")

    print(f"validate_prometheus: OK: {len(samples)} samples across "
          f"{len(types)} families "
          f"({sum(1 for t in types.values() if t == 'histogram')} histograms)")


if __name__ == "__main__":
    args = sys.argv[1:]
    if not args:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    file_path = args[0]
    req = DEFAULT_REQUIRED
    if len(args) > 1:
        if args[1] != "--require":
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        req = args[2:]
    main(file_path, req)
