#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file produced by hermes.

Checks the document shape (what chrome://tracing / Perfetto require) plus
the invariants hermes' tracer promises: complete events with non-negative
durations, per-query metadata tracks, and children contained within their
parents on each track.

Usage: validate_trace.py FILE.json
Exits non-zero with a message on the first violation. Stdlib only.
"""

import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    with open(path, "rb") as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    if doc.get("displayTimeUnit") != "ms":
        fail("displayTimeUnit is not 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    complete, metadata = [], []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph == "M":
            metadata.append(ev)
            if ev.get("name") not in ("process_name", "thread_name"):
                fail(f"event {i}: unexpected metadata name {ev.get('name')!r}")
        elif ph == "X":
            complete.append(ev)
            for key in ("name", "cat", "ts", "dur", "pid", "tid"):
                if key not in ev:
                    fail(f"event {i}: complete event missing {key!r}")
            if ev["dur"] < 0:
                fail(f"event {i}: negative duration {ev['dur']}")
            if ev["ts"] < 0:
                fail(f"event {i}: negative timestamp {ev['ts']}")
        else:
            fail(f"event {i}: unexpected phase {ph!r}")

    if not complete:
        fail("no complete ('X') events")
    if not any(ev.get("name") == "process_name" for ev in metadata):
        fail("no process_name metadata event")
    track_names = {
        ev["tid"]: ev.get("args", {}).get("name")
        for ev in metadata
        if ev.get("name") == "thread_name"
    }
    for ev in complete:
        if ev["tid"] not in track_names:
            fail(f"event on tid {ev['tid']} has no thread_name metadata")

    # Every track must carry exactly one root "query" span that contains
    # all other spans on that track.
    by_tid = {}
    for ev in complete:
        by_tid.setdefault(ev["tid"], []).append(ev)
    for tid, evs in by_tid.items():
        roots = [ev for ev in evs if ev["name"] == "query"]
        if len(roots) != 1:
            fail(f"tid {tid}: expected exactly one 'query' span, "
                 f"got {len(roots)}")
        root = roots[0]
        lo, hi = root["ts"], root["ts"] + root["dur"]
        for ev in evs:
            if ev["ts"] < lo or ev["ts"] + ev["dur"] > hi:
                fail(f"tid {tid}: span {ev['name']!r} "
                     f"[{ev['ts']}, {ev['ts'] + ev['dur']}] escapes its "
                     f"query envelope [{lo}, {hi}]")

    cats = {ev["cat"] for ev in complete}
    print(f"validate_trace: OK: {len(complete)} spans on "
          f"{len(by_tid)} track(s), categories: {', '.join(sorted(cats))}")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
