// hermes_obs_dump — exercise the rope scenario and dump the observability
// surfaces: Prometheus text, the JSON catalogue, and a Chrome trace of a
// cold vs. warm run of the Figure 5 appendix query.
//
//   hermes_obs_dump [--prom-out=FILE] [--json-out=FILE] [--trace-out=FILE]
//                   [--faults=FILE]
//
// With no flags the Prometheus exposition goes to stdout. The trace file
// loads directly in chrome://tracing or https://ui.perfetto.dev.
// --faults=FILE installs a deterministic fault-injection plan (see
// net/faults/fault_plan.h for the grammar); queries then run with retries,
// a circuit breaker, and graceful degradation enabled, so the
// hermes_resilience_* series move.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "engine/mediator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << contents;
  return out.good();
}

int Run(int argc, char** argv) {
  std::string prom_out, json_out, trace_out, faults_file;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--prom-out=", 0) == 0) {
      prom_out = value("--prom-out=");
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = value("--json-out=");
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = value("--trace-out=");
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults_file = value("--faults=");
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--prom-out=FILE] [--json-out=FILE] [--trace-out=FILE] "
          "[--faults=FILE]\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 1;
    }
  }

  Mediator med;
  if (!faults_file.empty()) {
    // Under fault injection, give every remote domain an active policy so
    // the resilience machinery (retries, breaker, degradation) engages.
    resilience::ResiliencePolicy policy;
    policy.retry.max_retries = 2;
    policy.breaker.enabled = true;
    med.set_default_resilience_policy(policy);
  }
  Status setup = testbed::SetupRopeScenario(&med, {});
  if (!setup.ok()) {
    std::fprintf(stderr, "scenario setup failed: %s\n",
                 setup.ToString().c_str());
    return 1;
  }
  // Diagnostics on (defaults: no capture thresholds) so the flight
  // recorder and DCSM drift families are part of the exposition this tool
  // exists to demonstrate — the warm run drifts against the cold run's
  // recorded statistics.
  Status diag = med.EnableDiagnostics({});
  if (!diag.ok()) {
    std::fprintf(stderr, "diagnostics setup failed: %s\n",
                 diag.ToString().c_str());
    return 1;
  }
  // Plan cache on, so the hermes_plan_cache_* families are part of the
  // exposition and move: each cold/warm pair below repeats one query text,
  // so the warm half serves the compiled plan from the cache.
  Status plan_cache = med.EnablePlanCache();
  if (!plan_cache.ok()) {
    std::fprintf(stderr, "plan cache setup failed: %s\n",
                 plan_cache.ToString().c_str());
    return 1;
  }
  if (!faults_file.empty()) {
    Status faults = med.LoadFaultPlan(faults_file);
    if (!faults.ok()) {
      std::fprintf(stderr, "fault plan rejected: %s\n",
                   faults.ToString().c_str());
      return 1;
    }
  }

  // Cold and warm runs of the appendix "objects in frames [4,47]" query:
  // the cold run pays the network, the warm run hits the CIM, and the two
  // span trees land side by side on the trace timeline.
  QueryOptions options;
  options.use_optimizer = false;
  options.partial_results = !faults_file.empty();
  std::string query = testbed::AppendixQuery(3, false, 4, 47);
  obs::Tracer cold, warm;
  options.tracer = &cold;
  Result<QueryResult> cold_run = med.Query(query, options);
  if (!cold_run.ok()) {
    std::fprintf(stderr, "cold query failed: %s\n",
                 cold_run.status().ToString().c_str());
    return 1;
  }
  options.tracer = &warm;
  Result<QueryResult> warm_run = med.Query(query, options);
  if (!warm_run.ok()) {
    std::fprintf(stderr, "warm query failed: %s\n",
                 warm_run.status().ToString().c_str());
    return 1;
  }
  // A second cold/warm pair leading with the relation source (query 4
  // scans the cast relation before touching video). Fault plans that black
  // out the video site stop the query-3 pair at its first subgoal; this
  // pair still completes remote calls, so the DCSM drift gauges have
  // estimates to move against in every mode.
  options.tracer = nullptr;
  std::string relation_query = testbed::AppendixQuery(4, false, 4, 47);
  for (int pass = 0; pass < 2; ++pass) {
    Result<QueryResult> run = med.Query(relation_query, options);
    if (!run.ok()) {
      std::fprintf(stderr, "relation query failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "cold: %.1f simulated ms (%s), warm: %.1f simulated ms (%s), "
               "%zu answers\n",
               cold_run->execution.t_all_ms,
               QueryCompletenessName(cold_run->completeness),
               warm_run->execution.t_all_ms,
               QueryCompletenessName(warm_run->completeness),
               warm_run->execution.answers.size());

  std::string prom = med.metrics().ExposePrometheus();
  if (!prom_out.empty()) {
    if (!WriteFile(prom_out, prom)) return 1;
  }
  if (!json_out.empty()) {
    if (!WriteFile(json_out, med.metrics().ExposeJson())) return 1;
  }
  if (!trace_out.empty()) {
    if (!WriteFile(trace_out, obs::ChromeTraceJson({&cold, &warm}))) return 1;
  }
  if (prom_out.empty() && json_out.empty() && trace_out.empty()) {
    std::fputs(prom.c_str(), stdout);
  }
  return 0;
}

}  // namespace
}  // namespace hermes

int main(int argc, char** argv) { return hermes::Run(argc, argv); }
