// hermes_diag — slow-query diagnostics over the rope testbed.
//
//   hermes_diag [--out=DIR] [--faults=FILE] [--queries=N]
//               [--slow-threshold=SIM_MS]
//
// Runs a mixed appendix-query workload with the diagnostics layer enabled:
// anomalous queries (slow past the threshold, degraded, partial, breaker-
// tripped) auto-persist debug bundles — flight-recorder slice, Chrome
// trace, EXPLAIN with actuals, Prometheus snapshot — under DIR/bundles/,
// and the tool finishes with Mediator::DumpDiagnostics(DIR) plus a
// summary (slow-query log, DCSM drift report) on stdout.
//
// With --faults the workload runs under the deterministic fault plan and
// an active resilience policy, so captures are guaranteed: outages force
// partial queries and 30s slow injections blow through the per-call
// deadline. CI's diagnostics-artifacts job runs exactly that and uploads
// DIR as a build artifact.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/diagnostics.h"
#include "engine/mediator.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

int Run(int argc, char** argv) {
  std::string out_dir = "diag_out";
  std::string faults_file;
  size_t num_queries = 12;
  double slow_threshold_ms = 25000.0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--out=", 0) == 0) {
      out_dir = value("--out=");
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults_file = value("--faults=");
    } else if (arg.rfind("--queries=", 0) == 0) {
      num_queries = static_cast<size_t>(std::stoul(value("--queries=")));
    } else if (arg.rfind("--slow-threshold=", 0) == 0) {
      slow_threshold_ms = std::stod(value("--slow-threshold="));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--out=DIR] [--faults=FILE] [--queries=N] "
          "[--slow-threshold=SIM_MS]\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 1;
    }
  }

  Mediator med;
  resilience::ResiliencePolicy policy;
  policy.retry.max_retries = 2;
  policy.breaker.enabled = true;
  policy.breaker.failure_threshold = 3;
  policy.call_deadline_ms = 25000.0;
  med.set_default_resilience_policy(policy);
  Status setup = testbed::SetupRopeScenario(&med, {});
  if (!setup.ok()) {
    std::fprintf(stderr, "scenario setup failed: %s\n",
                 setup.ToString().c_str());
    return 1;
  }
  if (!faults_file.empty()) {
    Status faults = med.LoadFaultPlan(faults_file);
    if (!faults.ok()) {
      std::fprintf(stderr, "fault plan rejected: %s\n",
                   faults.ToString().c_str());
      return 1;
    }
  }

  DiagnosticsOptions diag;
  diag.slow_threshold_sim_ms = slow_threshold_ms;
  diag.watermark_factor = 3.0;  // also catch relative outliers
  diag.bundle_dir = out_dir + "/bundles";
  Status enabled = med.EnableDiagnostics(diag);
  if (!enabled.ok()) {
    std::fprintf(stderr, "diagnostics setup failed: %s\n",
                 enabled.ToString().c_str());
    return 1;
  }

  // Adaptive execution armed, exactly as a production mediator would run:
  // repeated window shapes serve from the plan cache, and a breaker
  // opening mid-join re-plans the suffix — the capture_on_replan default
  // then persists the decision (old/new suffix, trigger) into the bundle.
  Status plan_cache = med.EnablePlanCache();
  if (!plan_cache.ok()) {
    std::fprintf(stderr, "plan cache setup failed: %s\n",
                 plan_cache.ToString().c_str());
    return 1;
  }
  engine::op::ReplanOptions replan;
  replan.enabled = true;
  med.set_replan_options(replan);

  // The chaos workload: appendix queries over shifting frame windows so
  // the run mixes cold calls, cache hits and fault windows.
  QueryOptions options;
  options.use_optimizer = false;
  options.partial_results = true;
  size_t failed = 0;
  for (size_t i = 0; i < num_queries; ++i) {
    int number = 1 + static_cast<int>(i % 4);
    int64_t first = 4 + static_cast<int64_t>(3 * (i % 5));
    int64_t last = first + 20 + static_cast<int64_t>(i % 7);
    Result<QueryResult> res =
        med.Query(testbed::AppendixQuery(number, false, first, last), options);
    if (!res.ok()) {
      ++failed;
      std::fprintf(stderr, "query %zu failed: %s\n", i,
                   res.status().ToString().c_str());
    }
  }

  Status dumped = med.DumpDiagnostics(out_dir);
  if (!dumped.ok()) {
    std::fprintf(stderr, "dump failed: %s\n", dumped.ToString().c_str());
    return 1;
  }

  DiagnosticsCenter* diag_center = med.diagnostics();
  std::vector<DebugBundle> bundles = diag_center->bundles();
  std::printf("queries: %zu (%zu failed)\n", num_queries, failed);
  std::printf("captures: %llu\n",
              static_cast<unsigned long long>(diag_center->captures()));
  for (const DebugBundle& bundle : bundles) {
    std::printf("bundle: q%llu reason=%s t_all=%.1fms %s\n",
                static_cast<unsigned long long>(bundle.query_id),
                bundle.reason.c_str(), bundle.t_all_ms,
                bundle.dir.empty() ? "(in memory)" : bundle.dir.c_str());
  }
  std::printf("\n-- slow-query log --\n");
  for (const std::string& record : diag_center->slow_query_log()) {
    std::fputs(record.c_str(), stdout);
  }
  std::printf("\n-- DCSM drift --\n%s", med.DriftReport().ToString().c_str());
  std::printf("\nwrote %s (events.json, metrics.prom, drift.txt, "
              "slow_queries.log)\n",
              out_dir.c_str());
  return 0;
}

}  // namespace
}  // namespace hermes

int main(int argc, char** argv) { return hermes::Run(argc, argv); }
