#!/usr/bin/env python3
"""Validates debug bundles persisted by the hermes diagnostics layer.

A bundle directory (bundle_NNN_qID/ under the diagnostics bundle_dir)
must contain the manifest plus the four capture components:

  manifest.json  - query id/reason/completeness, per-operator rows, and a
                   components map naming the other four files
  events.json    - the query's flight-recorder slice (non-empty)
  trace.json     - a Chrome trace (traceEvents array)
  explain.txt    - EXPLAIN of the executed tree with actuals (non-empty)
  metrics.prom   - Prometheus snapshot at capture time (non-empty)

Usage: validate_bundle.py BUNDLE_DIR [BUNDLE_DIR ...]
Exits non-zero with a message on the first violation. Stdlib only.
"""

import json
import os
import sys

MANIFEST_KEYS = (
    "query_id",
    "reason",
    "query",
    "t_all_sim_ms",
    "completeness",
    "event_count",
    "components",
    "rows",
)

EVENT_KEYS = ("query_id", "seq", "kind", "sim_ms")


def fail(msg):
    print(f"validate_bundle: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        fail(f"{path}: unreadable: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path}: invalid JSON: {e}")


def check_bundle(bundle_dir):
    manifest = load_json(os.path.join(bundle_dir, "manifest.json"))
    for key in MANIFEST_KEYS:
        if key not in manifest:
            fail(f"{bundle_dir}/manifest.json: missing key {key!r}")
    if not manifest["reason"]:
        fail(f"{bundle_dir}/manifest.json: empty capture reason")
    components = manifest["components"]
    for component in ("events", "trace", "explain", "metrics"):
        if component not in components:
            fail(f"{bundle_dir}/manifest.json: components lacks {component!r}")

    events_doc = load_json(os.path.join(bundle_dir, components["events"]))
    events = events_doc.get("events")
    if not isinstance(events, list) or not events:
        fail(f"{bundle_dir}/events.json: no events captured")
    for i, event in enumerate(events):
        for key in EVENT_KEYS:
            if key not in event:
                fail(f"{bundle_dir}/events.json: event {i} missing {key!r}")
    if manifest["event_count"] != len(events):
        fail(f"{bundle_dir}: manifest event_count {manifest['event_count']} "
             f"!= {len(events)} events in events.json")
    kinds = {event["kind"] for event in events}
    if "query_start" not in kinds or "query_end" not in kinds:
        fail(f"{bundle_dir}/events.json: stream lacks query_start/query_end "
             f"(kinds: {sorted(kinds)})")

    trace = load_json(os.path.join(bundle_dir, components["trace"]))
    if "traceEvents" not in trace or not isinstance(trace["traceEvents"], list):
        fail(f"{bundle_dir}/trace.json: no traceEvents array")

    for component, must_contain in (("explain", "("), ("metrics", "hermes_")):
        path = os.path.join(bundle_dir, components[component])
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            fail(f"{path}: unreadable: {e}")
        if not text.strip():
            fail(f"{path}: empty")
        if must_contain not in text:
            fail(f"{path}: expected {must_contain!r} somewhere in the file")

    return manifest


def main(bundle_dirs):
    for bundle_dir in bundle_dirs:
        if not os.path.isdir(bundle_dir):
            fail(f"{bundle_dir}: not a directory")
        manifest = check_bundle(bundle_dir)
        print(f"validate_bundle: OK: {bundle_dir} "
              f"(q{manifest['query_id']} reason={manifest['reason']} "
              f"{manifest['event_count']} events)")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1:])
