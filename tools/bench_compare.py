#!/usr/bin/env python3
"""Compares two google-benchmark JSON outputs (baseline vs contender).

Prints a per-benchmark table of real time (or items/s for throughput
benchmarks that report it) and the relative delta, and writes the same
table to a file when --out is given. Optionally enforces a regression
gate: --max-regression 0.10 fails (exit 1) if any compared benchmark got
more than 10% slower.

Matching is by full benchmark name (including /threads:N suffixes); names
present in only one file are listed as new/removed (with their one-sided
measurement) but not compared, and entries without a usable measurement —
error_occurred from SkipWithError, or a missing real_time field — are
reported instead of crashing the comparison. Stdlib only.

Usage: bench_compare.py BASELINE.json CONTENDER.json
           [--out FILE] [--max-regression FRAC] [--filter REGEX]
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    return out


def metric_of(bench):
    """(value, unit, higher_is_better) for one benchmark entry, or None
    when the entry carries no usable measurement (it errored out via
    SkipWithError, or predates the fields we read)."""
    if bench.get("error_occurred"):
        return None
    if "items_per_second" in bench:
        return bench["items_per_second"], "items/s", True
    if "real_time" in bench:
        return bench["real_time"], bench.get("time_unit", "ns"), False
    return None


def format_metric(bench):
    """One-sided display of an entry's measurement ('-' when it has none)."""
    metric = metric_of(bench)
    if metric is None:
        return "-"
    value, unit, _ = metric
    return f"{value:.4g} {unit}"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("contender")
    ap.add_argument("--out", help="also write the table to this file")
    ap.add_argument("--max-regression", type=float, default=None,
                    help="fail if any benchmark regresses by more than "
                         "this fraction (e.g. 0.10 = 10%%)")
    ap.add_argument("--filter", default=None,
                    help="only compare benchmarks whose name matches")
    args = ap.parse_args()

    base = load(args.baseline)
    cont = load(args.contender)
    name_filter = re.compile(args.filter) if args.filter else None

    rows = []
    regressions = []
    for name in sorted(set(base) | set(cont)):
        if name_filter and not name_filter.search(name):
            continue
        if name not in base:
            rows.append((name, "-", format_metric(cont[name]), "new"))
            continue
        if name not in cont:
            rows.append((name, format_metric(base[name]), "-", "removed"))
            continue
        b_metric = metric_of(base[name])
        c_metric = metric_of(cont[name])
        if b_metric is None or c_metric is None:
            rows.append((name, format_metric(base[name]),
                         format_metric(cont[name]), "error"))
            continue
        b_val, b_unit, higher_better = b_metric
        c_val, c_unit, _ = c_metric
        if b_unit != c_unit or b_val == 0:
            rows.append((name, format_metric(base[name]),
                         format_metric(cont[name]), "incomparable"))
            continue
        # delta > 0 always means "contender worse".
        delta = (b_val - c_val) / b_val if higher_better \
            else (c_val - b_val) / b_val
        rows.append((name, f"{b_val:.4g} {b_unit}", f"{c_val:.4g} {c_unit}",
                     f"{delta:+.1%}"))
        if args.max_regression is not None and delta > args.max_regression:
            regressions.append((name, delta))

    widths = [max(len(r[i]) for r in rows + [("benchmark", "baseline",
                                              "contender", "delta")])
              for i in range(4)]
    lines = []
    header = ("benchmark", "baseline", "contender", "delta")
    for row in [header] + rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    table = "\n".join(lines) + "\n"
    sys.stdout.write(table)
    if args.out:
        with open(args.out, "w") as f:
            f.write(table)

    if regressions:
        for name, delta in regressions:
            print(f"REGRESSION: {name} is {delta:.1%} worse than baseline",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
