// hermes_explain — render the physical operator tree (EXPLAIN) of a query
// against the paper's Section 8 "rope" testbed.
//
//   hermes_explain [--query=TEXT | --appendix=N] [--primed]
//                  [--first=F] [--last=L]
//                  [--no-optimize] [--no-cim] [--execute] [--faults=FILE]
//                  [--adaptive]
//
// By default the optimizer picks the plan and the tree is printed with
// static adornments and DCSM cost estimates, without executing anything.
// --execute runs the query first and appends per-operator actuals
// (opens/rows/virtual time) to every node. --faults=FILE installs a
// deterministic fault-injection plan (net/faults grammar) with retries and
// graceful degradation enabled, so the actuals show retries=/lost=
// annotations on the affected calls.
//
// --adaptive arms the full adaptive-execution stack — plan cache plus
// mid-query re-optimization — and implies --execute. The CIM wrappers are
// warmed first and the relation stack fails fast (no retries, two strikes
// open the breaker), so under a fault plan that takes the relation site
// down (e.g. tests/chaos/adaptive.faults) the running join re-plans its
// unexecuted suffix onto the warm CIM: the printed tree carries the
// replanned@ marker and the before/after re-plan decision record.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/mediator.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

int Run(int argc, char** argv) {
  std::string query_text;
  std::string faults_file;
  int appendix = 3;
  bool primed = false;
  long long first = 4, last = 47;
  bool optimize = true, use_cim = true, execute = false, adaptive = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--query=", 0) == 0) {
      query_text = value("--query=");
    } else if (arg.rfind("--appendix=", 0) == 0) {
      appendix = std::atoi(value("--appendix=").c_str());
    } else if (arg == "--primed") {
      primed = true;
    } else if (arg.rfind("--first=", 0) == 0) {
      first = std::atoll(value("--first=").c_str());
    } else if (arg.rfind("--last=", 0) == 0) {
      last = std::atoll(value("--last=").c_str());
    } else if (arg == "--no-optimize") {
      optimize = false;
    } else if (arg == "--no-cim") {
      use_cim = false;
    } else if (arg == "--execute") {
      execute = true;
    } else if (arg == "--adaptive") {
      adaptive = true;
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults_file = value("--faults=");
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--query=TEXT | --appendix=N] [--primed] [--first=F] "
          "[--last=L] [--no-optimize] [--no-cim] [--execute] "
          "[--faults=FILE] [--adaptive]\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 1;
    }
  }
  if (query_text.empty()) {
    if (adaptive) {
      // The flattened form exposes the goal chain to the top-level spine,
      // which is what mid-query re-optimization reorders and splices.
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "?- in(Object, video:frames_to_objects('rope', %lld, "
                    "%lld)) & in(T, relation:equal('cast', role, Object)) & "
                    "=(Actor, T.name).",
                    first, last);
      query_text = buf;
    } else {
      query_text = testbed::AppendixQuery(appendix, primed, first, last);
    }
  }

  Mediator med;
  if (!faults_file.empty()) {
    resilience::ResiliencePolicy policy;
    policy.retry.max_retries = 2;
    med.set_default_resilience_policy(policy);
  }
  Status setup = testbed::SetupRopeScenario(&med, {});
  if (!setup.ok()) {
    std::fprintf(stderr, "scenario setup failed: %s\n",
                 setup.ToString().c_str());
    return 1;
  }
  if (adaptive) {
    // Warm the CIM wrappers before any faults land so a replan redirect
    // finds its answers cached, then arm the adaptive stack: plan cache,
    // replanning, and a fail-fast relation policy whose breaker opens
    // after two failed per-object lookups.
    QueryOptions warm;
    warm.use_optimizer = false;
    warm.use_cim = true;
    Result<QueryResult> warmed = med.Query(
        "?- in(Object, video:frames_to_objects('rope', 1, 129999)) & "
        "in(T, relation:equal('cast', role, Object)) & =(Actor, T.name).",
        warm);
    if (!warmed.ok()) {
      std::fprintf(stderr, "CIM warm-up failed: %s\n",
                   warmed.status().ToString().c_str());
      return 1;
    }
    resilience::ResiliencePolicy relation_policy;
    relation_policy.retry.max_retries = 0;
    relation_policy.breaker.enabled = true;
    relation_policy.breaker.failure_threshold = 2;
    relation_policy.breaker.probe_interval = 1e9;  // no probe mid-query
    Status fail_fast = med.SetResiliencePolicy("relation", relation_policy);
    if (!fail_fast.ok()) {
      std::fprintf(stderr, "relation policy rejected: %s\n",
                   fail_fast.ToString().c_str());
      return 1;
    }
    Status plan_cache = med.EnablePlanCache();
    if (!plan_cache.ok()) {
      std::fprintf(stderr, "plan cache setup failed: %s\n",
                   plan_cache.ToString().c_str());
      return 1;
    }
    engine::op::ReplanOptions replan;
    replan.enabled = true;
    med.set_replan_options(replan);
  }
  if (!faults_file.empty()) {
    Status faults = med.LoadFaultPlan(faults_file);
    if (!faults.ok()) {
      std::fprintf(stderr, "fault plan rejected: %s\n",
                   faults.ToString().c_str());
      return 1;
    }
  }

  QueryOptions options;
  options.use_optimizer = optimize;
  options.use_cim = use_cim;
  options.partial_results = !faults_file.empty();
  if (adaptive) {
    options.use_optimizer = false;
    options.use_cim = false;  // the CIM enters only via a replan redirect
    options.partial_results = true;
    execute = true;  // a static tree cannot show a mid-query decision
  }

  if (execute) {
    options.explain = true;
    Result<QueryResult> run = med.Query(query_text, options);
    if (!run.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    std::fputs(run->explain_text.c_str(), stdout);
    std::fprintf(stderr, "%s completeness=%s\n",
                 run->execution.ToString().c_str(),
                 QueryCompletenessName(run->completeness));
    for (const SourceError& lost : run->lost_sources) {
      std::fprintf(stderr, "lost source: %s\n", lost.ToString().c_str());
    }
    return 0;
  }

  Result<std::string> explained = med.Explain(query_text, options);
  if (!explained.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 explained.status().ToString().c_str());
    return 1;
  }
  std::fputs(explained->c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace hermes

int main(int argc, char** argv) { return hermes::Run(argc, argv); }
