// hermes_explain — render the physical operator tree (EXPLAIN) of a query
// against the paper's Section 8 "rope" testbed.
//
//   hermes_explain [--query=TEXT | --appendix=N] [--primed]
//                  [--first=F] [--last=L]
//                  [--no-optimize] [--no-cim] [--execute] [--faults=FILE]
//
// By default the optimizer picks the plan and the tree is printed with
// static adornments and DCSM cost estimates, without executing anything.
// --execute runs the query first and appends per-operator actuals
// (opens/rows/virtual time) to every node. --faults=FILE installs a
// deterministic fault-injection plan (net/faults grammar) with retries and
// graceful degradation enabled, so the actuals show retries=/lost=
// annotations on the affected calls.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/mediator.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

int Run(int argc, char** argv) {
  std::string query_text;
  std::string faults_file;
  int appendix = 3;
  bool primed = false;
  long long first = 4, last = 47;
  bool optimize = true, use_cim = true, execute = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--query=", 0) == 0) {
      query_text = value("--query=");
    } else if (arg.rfind("--appendix=", 0) == 0) {
      appendix = std::atoi(value("--appendix=").c_str());
    } else if (arg == "--primed") {
      primed = true;
    } else if (arg.rfind("--first=", 0) == 0) {
      first = std::atoll(value("--first=").c_str());
    } else if (arg.rfind("--last=", 0) == 0) {
      last = std::atoll(value("--last=").c_str());
    } else if (arg == "--no-optimize") {
      optimize = false;
    } else if (arg == "--no-cim") {
      use_cim = false;
    } else if (arg == "--execute") {
      execute = true;
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults_file = value("--faults=");
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--query=TEXT | --appendix=N] [--primed] [--first=F] "
          "[--last=L] [--no-optimize] [--no-cim] [--execute] "
          "[--faults=FILE]\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 1;
    }
  }
  if (query_text.empty()) {
    query_text = testbed::AppendixQuery(appendix, primed, first, last);
  }

  Mediator med;
  if (!faults_file.empty()) {
    resilience::ResiliencePolicy policy;
    policy.retry.max_retries = 2;
    med.set_default_resilience_policy(policy);
  }
  Status setup = testbed::SetupRopeScenario(&med, {});
  if (!setup.ok()) {
    std::fprintf(stderr, "scenario setup failed: %s\n",
                 setup.ToString().c_str());
    return 1;
  }
  if (!faults_file.empty()) {
    Status faults = med.LoadFaultPlan(faults_file);
    if (!faults.ok()) {
      std::fprintf(stderr, "fault plan rejected: %s\n",
                   faults.ToString().c_str());
      return 1;
    }
  }

  QueryOptions options;
  options.use_optimizer = optimize;
  options.use_cim = use_cim;
  options.partial_results = !faults_file.empty();

  if (execute) {
    options.explain = true;
    Result<QueryResult> run = med.Query(query_text, options);
    if (!run.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    std::fputs(run->explain_text.c_str(), stdout);
    std::fprintf(stderr, "%s completeness=%s\n",
                 run->execution.ToString().c_str(),
                 QueryCompletenessName(run->completeness));
    for (const SourceError& lost : run->lost_sources) {
      std::fprintf(stderr, "lost source: %s\n", lost.ToString().c_str());
    }
    return 0;
  }

  Result<std::string> explained = med.Explain(query_text, options);
  if (!explained.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 explained.status().ToString().c_str());
    return 1;
  }
  std::fputs(explained->c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace hermes

int main(int argc, char** argv) { return hermes::Run(argc, argv); }
