// Open-loop saturation driver for the overload-control subsystem.
//
// Offered load is decoupled from service capacity (open loop): queries
// arrive at a fixed rate regardless of how far the pool has fallen behind,
// which is the regime where admission control, CoDel shedding, per-site
// concurrency limits and hedging earn their keep. The driver
//
//   1. calibrates 1x capacity (closed-loop queries/sec of the pool),
//   2. replays the same workload at 1x/2x/4x offered load under three
//      configurations — baseline (bounded queue only), overload (admission
//      + AIMD limiter + brownout), overload+hedge — and
//   3. records goodput, wall/simulated latency percentiles, shed rates and
//      hedge traffic per run into BENCH_overload.json.
//
// The workload runs on the generated 32-site topology (4 latency/
// availability tiers, fast failover replicas on even sites); each query
// scatter-gathers `kFanout` calls to one site, so the per-query limiter
// window and hedge trigger see real concurrency. Service pacing turns
// simulated latency into real, overlappable wall wait.
//
// Usage: bench_overload [--out=BENCH_overload.json] [--queries=N]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/mediator.h"
#include "engine/query_pool.h"
#include "testbed/topology.h"

namespace hermes {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kNumSites = 32;
constexpr size_t kFanout = 24;       ///< Same-site calls per query.
constexpr size_t kPoolThreads = 8;
constexpr size_t kQueueCapacity = 256;
constexpr double kPacing = 0.002;    ///< Wall ms slept per simulated ms.
constexpr double kDeadlineSimMs = 20000.0;  ///< Per-query deadline (sim).

struct RunConfig {
  std::string name;
  bool admission = false;  ///< Pool admission + CoDel + brownout ladder.
  bool limiter = false;    ///< Per-site AIMD concurrency limits.
  bool hedge = false;      ///< Hedged requests to failover replicas.
};

struct RunStats {
  double offered_qps = 0.0;
  double elapsed_s = 0.0;
  uint64_t offered = 0;    ///< Arrival events (submissions attempted).
  uint64_t good = 0;       ///< Queries answered OK and complete.
  uint64_t partial = 0;    ///< Answered OK but partial/degraded.
  uint64_t shed = 0;       ///< Typed kResourceExhausted anywhere.
  uint64_t failed = 0;     ///< Any other error.
  uint64_t calls = 0;      ///< Domain calls issued (admitted queries).
  uint64_t load_shed_calls = 0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  QueryPoolStats pool;
  int brownout_level = 0;  ///< Ladder level at end of run.
  std::vector<double> wall_ms;  ///< Submit → observed completion, answered.
  std::vector<double> sim_ms;   ///< ta_sim_ms of answered queries.
};

double Quantile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(v.size()));
  if (idx >= v.size()) idx = v.size() - 1;
  std::nth_element(v.begin(), v.begin() + idx, v.end());
  return v[idx];
}

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::unique_ptr<Mediator> MakeMediator(const RunConfig& cfg,
                                       testbed::TopologyInfo* info) {
  auto med = std::make_unique<Mediator>();
  testbed::TopologyOptions topo;
  topo.num_sites = kNumSites;
  Status wired = testbed::SetupOverloadTopology(med.get(), topo, info);
  if (!wired.ok()) {
    std::fprintf(stderr, "topology: %s\n", wired.ToString().c_str());
    std::exit(1);
  }
  med->set_per_query_network_rng(true);
  med->set_async_execution(true);
  med->set_service_pacing(kPacing);
  if (cfg.limiter || cfg.hedge) {
    overload::OverloadPolicy policy;
    policy.limiter.enabled = cfg.limiter;
    // The limiter starts at the full fanout: it sheds only after failures
    // or above-baseline latency shrank the limit — protection, not a cap.
    policy.limiter.initial_limit = static_cast<double>(kFanout);
    policy.limiter.max_limit = static_cast<double>(2 * kFanout);
    policy.limiter.min_limit = 4.0;
    // A single transient failure should not halve a 24-branch scatter's
    // limit mid-query: back off, but gently enough that the rest of the
    // fanout still lands.
    policy.limiter.multiplicative_decrease = 0.7;
    policy.hedge.enabled = cfg.hedge;
    // p97 of the trailing ring: a lower quantile hedges ~1-in-10 *successful*
    // calls (pure jitter) and blows the extra-call budget; the tail worth
    // paying for is failures and true stragglers.
    policy.hedge.quantile = 0.97;
    policy.hedge.min_samples = 6;
    // Cold-ring trigger sits at 3× the DCSM baseline: far enough out
    // that healthy jitter (≤1.3× mean) never hedges, close enough that a
    // straggling or failed call still beats the timeout penalty.
    policy.hedge.baseline_trigger_factor = 3.0;
    // Speculative-hedge budget (failure rescues are exempt — they replace
    // the failover retry that resilience would issue anyway). 4% of a
    // 24-call scatter rounds to a single speculative hedge per query: the
    // first is free and a second would need 25 calls. The measured
    // extra-call fraction is what the JSON reports.
    policy.hedge.budget_percent = 4;
    Status armed = med->EnableOverloadControl(policy, {});
    if (!armed.ok()) {
      std::fprintf(stderr, "overload: %s\n", armed.ToString().c_str());
      std::exit(1);
    }
  }
  return med;
}

QueryOptions WorkloadOptions(uint64_t k) {
  QueryOptions q;
  q.use_optimizer = false;
  q.record_statistics = true;  // feeds the DCSM → the limiter's baseline
  q.partial_results = true;    // a shed branch loses a source, not the query
  // 2:6:2 priority mix; only non-high classes face CoDel/brownout.
  const uint64_t r = k % 10;
  q.priority = r < 2 ? QueryPriority::kHigh
                     : (r < 8 ? QueryPriority::kNormal : QueryPriority::kLow);
  q.deadline_ms = kDeadlineSimMs;
  return q;
}

struct Pending {
  Clock::time_point submitted_at;
  std::future<Result<QueryResult>> future;
};

/// Drains every ready future in `pending` into `stats`.
void Harvest(std::deque<Pending>& pending, RunStats& stats, bool block) {
  while (!pending.empty()) {
    Pending& p = pending.front();
    if (!block &&
        p.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
      return;
    }
    Result<QueryResult> res = p.future.get();
    const double wall = MsBetween(p.submitted_at, Clock::now());
    if (res.ok()) {
      if (res->completeness == QueryCompleteness::kComplete) {
        ++stats.good;
      } else {
        ++stats.partial;
      }
      stats.wall_ms.push_back(wall);
      stats.sim_ms.push_back(res->ta_sim_ms);
      stats.calls += res->metrics.domain_calls;
      stats.load_shed_calls += res->metrics.load_shed;
      stats.hedges += res->metrics.hedges;
      stats.hedge_wins += res->metrics.hedge_wins;
    } else if (res.status().IsResourceExhausted()) {
      ++stats.shed;
    } else {
      ++stats.failed;
    }
    pending.pop_front();
  }
}

RunStats RunOpenLoop(const RunConfig& cfg, double offered_qps,
                     uint64_t num_queries) {
  testbed::TopologyInfo info;
  std::unique_ptr<Mediator> med = MakeMediator(cfg, &info);
  QueryPoolOptions pool_options;
  pool_options.num_threads = kPoolThreads;
  pool_options.queue_capacity = kQueueCapacity;
  pool_options.admission.enabled = cfg.admission;
  pool_options.admission.codel_target_ms = 10.0;
  pool_options.admission.codel_interval_ms = 40.0;
  std::unique_ptr<QueryPool> pool = med->Serve(pool_options);

  RunStats stats;
  stats.offered_qps = offered_qps;
  std::deque<Pending> pending;
  const Clock::time_point start = Clock::now();
  const double interarrival_ms = 1000.0 / offered_qps;
  for (uint64_t k = 0; k < num_queries; ++k) {
    // Open loop: the k-th arrival is due at a fixed instant, late or not.
    const Clock::time_point due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        interarrival_ms * static_cast<double>(k)));
    while (Clock::now() < due) {
      Harvest(pending, stats, /*block=*/false);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    ++stats.offered;
    Pending p;
    p.submitted_at = Clock::now();
    Status submitted = pool->TrySubmit(testbed::TopologyQuery(info, k, kFanout),
                                       WorkloadOptions(k), &p.future);
    if (submitted.ok()) {
      pending.push_back(std::move(p));
    } else if (submitted.IsResourceExhausted()) {
      ++stats.shed;
    } else {
      ++stats.failed;
    }
    Harvest(pending, stats, /*block=*/false);
  }
  Harvest(pending, stats, /*block=*/true);
  stats.elapsed_s = MsBetween(start, Clock::now()) / 1000.0;
  stats.pool = pool->stats();
  stats.brownout_level =
      med->brownout() != nullptr ? med->brownout()->level() : 0;
  pool->Shutdown();
  return stats;
}

/// Closed-loop calibration: queries/sec with the pool saturated but never
/// overloaded (backpressure via blocking Submit keeps exactly the queue +
/// workers busy).
double CalibrateCapacity(uint64_t num_queries) {
  RunConfig cfg;
  cfg.name = "calibrate";
  testbed::TopologyInfo info;
  std::unique_ptr<Mediator> med = MakeMediator(cfg, &info);
  QueryPoolOptions pool_options;
  pool_options.num_threads = kPoolThreads;
  pool_options.queue_capacity = 2 * kPoolThreads;
  std::unique_ptr<QueryPool> pool = med->Serve(pool_options);
  std::deque<std::future<Result<QueryResult>>> pending;
  const Clock::time_point start = Clock::now();
  for (uint64_t k = 0; k < num_queries; ++k) {
    pending.push_back(
        pool->Submit(testbed::TopologyQuery(info, k, kFanout),
                     WorkloadOptions(k)));
    while (pending.size() > 2 * kPoolThreads) {
      (void)pending.front().get();
      pending.pop_front();
    }
  }
  while (!pending.empty()) {
    (void)pending.front().get();
    pending.pop_front();
  }
  const double elapsed_s = MsBetween(start, Clock::now()) / 1000.0;
  pool->Shutdown();
  return static_cast<double>(num_queries) / elapsed_s;
}

std::string RunJson(const RunConfig& cfg, double load_factor, RunStats& s) {
  const double goodput_qps =
      static_cast<double>(s.good + s.partial) / std::max(s.elapsed_s, 1e-9);
  const uint64_t answered = s.good + s.partial;
  const double shed_rate =
      s.offered > 0
          ? static_cast<double>(s.shed) / static_cast<double>(s.offered)
          : 0.0;
  const double extra_call_fraction =
      s.calls > 0 ? static_cast<double>(s.hedges) / static_cast<double>(s.calls)
                  : 0.0;
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"config\": \"%s\", \"load_factor\": %.0f, "
      "\"offered_qps\": %.1f, \"elapsed_s\": %.3f, \"offered\": %llu, "
      "\"answered\": %llu, \"good\": %llu, \"partial\": %llu, "
      "\"shed\": %llu, \"failed\": %llu, \"goodput_qps\": %.1f, "
      "\"shed_rate\": %.4f, "
      "\"wall_p50_ms\": %.3f, \"wall_p95_ms\": %.3f, \"wall_p99_ms\": %.3f, "
      "\"sim_p50_ms\": %.1f, \"sim_p95_ms\": %.1f, \"sim_p99_ms\": %.1f, "
      "\"calls\": %llu, \"load_shed_calls\": %llu, \"hedges\": %llu, "
      "\"hedge_wins\": %llu, \"extra_call_fraction\": %.4f, "
      "\"pool_rejected\": %llu, \"pool_shed_deadline\": %llu, "
      "\"pool_shed_codel\": %llu, \"pool_shed_brownout\": %llu, "
      "\"brownout_level\": %d}",
      cfg.name.c_str(), load_factor, s.offered_qps, s.elapsed_s,
      static_cast<unsigned long long>(s.offered),
      static_cast<unsigned long long>(answered),
      static_cast<unsigned long long>(s.good),
      static_cast<unsigned long long>(s.partial),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.failed), goodput_qps, shed_rate,
      Quantile(s.wall_ms, 0.50), Quantile(s.wall_ms, 0.95),
      Quantile(s.wall_ms, 0.99), Quantile(s.sim_ms, 0.50),
      Quantile(s.sim_ms, 0.95), Quantile(s.sim_ms, 0.99),
      static_cast<unsigned long long>(s.calls),
      static_cast<unsigned long long>(s.load_shed_calls),
      static_cast<unsigned long long>(s.hedges),
      static_cast<unsigned long long>(s.hedge_wins), extra_call_fraction,
      static_cast<unsigned long long>(s.pool.rejected),
      static_cast<unsigned long long>(s.pool.shed_deadline),
      static_cast<unsigned long long>(s.pool.shed_codel),
      static_cast<unsigned long long>(s.pool.shed_brownout),
      s.brownout_level);
  return buf;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_overload.json";
  uint64_t num_queries = 1500;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      num_queries = std::strtoull(argv[i] + 10, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  std::printf("=== Overload-control saturation driver ===\n");
  std::printf("calibrating 1x capacity (closed loop)...\n");
  const double capacity_qps = CalibrateCapacity(num_queries / 2);
  std::printf("capacity: %.1f queries/sec\n\n", capacity_qps);

  const RunConfig configs[] = {
      {"baseline", false, false, false},
      {"overload", true, true, false},
      {"overload+hedge", true, true, true},
  };
  const double loads[] = {1.0, 2.0, 4.0};

  std::string runs_json;
  for (const RunConfig& cfg : configs) {
    for (double load : loads) {
      RunStats stats = RunOpenLoop(cfg, load * capacity_qps, num_queries);
      std::printf(
          "%-15s %.0fx: offered=%llu answered=%llu shed=%llu failed=%llu "
          "goodput=%.1f/s wall p50/p95/p99=%.1f/%.1f/%.1fms "
          "hedges=%llu (wins=%llu)\n",
          cfg.name.c_str(), load,
          static_cast<unsigned long long>(stats.offered),
          static_cast<unsigned long long>(stats.good + stats.partial),
          static_cast<unsigned long long>(stats.shed),
          static_cast<unsigned long long>(stats.failed),
          static_cast<double>(stats.good + stats.partial) /
              std::max(stats.elapsed_s, 1e-9),
          Quantile(stats.wall_ms, 0.50), Quantile(stats.wall_ms, 0.95),
          Quantile(stats.wall_ms, 0.99),
          static_cast<unsigned long long>(stats.hedges),
          static_cast<unsigned long long>(stats.hedge_wins));
      if (!runs_json.empty()) runs_json += ",\n";
      runs_json += RunJson(cfg, load, stats);
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"driver\": \"bench_overload\",\n"
               "  \"topology\": {\"sites\": %zu, \"fanout\": %zu, "
               "\"pool_threads\": %zu, \"queue_capacity\": %zu, "
               "\"pacing\": %g},\n"
               "  \"capacity_qps\": %.1f,\n  \"runs\": [\n%s\n  ]\n}\n",
               kNumSites, kFanout, kPoolThreads, kQueueCapacity, kPacing,
               capacity_qps, runs_json.c_str());
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace hermes

int main(int argc, char** argv) { return hermes::Main(argc, argv); }
