// Reproduces the paper's Figure 5: "Executing Remote Calls with Caching
// and/or Invariants" — four cache/invariant configurations × three AVIS
// workloads × {USA, Italy} sites, reporting simulated time-to-first-answer
// and time-to-all-answers.
//
// The google-benchmark entries then measure the *host* cost of each
// configuration's query execution (the simulator itself), plus counters
// carrying the simulated milliseconds.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "engine/mediator.h"
#include "experiments/fig5.h"
#include "obs/trace.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

// With --trace-out=FILE, additionally runs the appendix query cold and
// warm on a fresh rope scenario with per-query tracers and writes the two
// span trees as one Chrome trace_event document.
void MaybeWriteTrace() {
  const std::string& path = bench::TraceOutPath();
  if (path.empty()) return;
  Mediator med;
  Status setup = testbed::SetupRopeScenario(&med, {});
  if (!setup.ok()) {
    std::fprintf(stderr, "trace-out: scenario setup failed: %s\n",
                 setup.ToString().c_str());
    return;
  }
  QueryOptions options;
  options.use_optimizer = false;
  std::string query = testbed::AppendixQuery(3, false, 4, 47);
  obs::Tracer cold, warm;
  options.tracer = &cold;
  (void)med.Query(query, options);
  options.tracer = &warm;
  (void)med.Query(query, options);
  if (bench::WriteTraceFile(path, obs::ChromeTraceJson({&cold, &warm}))) {
    std::fprintf(stderr, "trace-out: wrote cold+warm query trace to %s\n",
                 path.c_str());
  }
}

void PrintReproduction() {
  Result<std::vector<experiments::Fig5Row>> rows = experiments::RunFig5();
  if (!rows.ok()) {
    std::printf("Figure 5 reproduction failed: %s\n",
                rows.status().ToString().c_str());
    return;
  }
  bench::PrintTable(
      "Figure 5 — Executing Remote Calls with Caching and/or Invariants "
      "(simulated ms)",
      experiments::RenderFig5(*rows));
  MaybeWriteTrace();
}

/// Benchmark fixture: the rope scenario with a warmed video cache.
struct Fig5Bench {
  Mediator med;
  QueryOptions direct;
  QueryOptions via_cim;

  Fig5Bench() {
    testbed::RopeScenarioOptions options;
    options.sites.video_site = net::UsaSite("umd");
    (void)testbed::SetupRopeScenario(&med, options);
    direct.use_optimizer = false;
    direct.use_cim = false;
    via_cim.use_optimizer = false;
    via_cim.use_cim = true;
    // Warm both the exact query and a narrower range for partial hits.
    (void)med.Query(testbed::AppendixQuery(3, false, 4, 47), via_cim);
    (void)med.Query(testbed::AppendixQuery(3, false, 4, 9000), via_cim);
  }
};

Fig5Bench& Shared() {
  static Fig5Bench* instance = new Fig5Bench();
  return *instance;
}

void BM_Fig5_DirectRemoteQuery(benchmark::State& state) {
  Fig5Bench& fx = Shared();
  double sim_ms = 0;
  for (auto _ : state) {
    Result<QueryResult> res =
        fx.med.Query(testbed::AppendixQuery(3, false, 4, 47), fx.direct);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    sim_ms = res->execution.t_all_ms;
    benchmark::DoNotOptimize(res);
  }
  state.counters["sim_ms"] = sim_ms;
}
BENCHMARK(BM_Fig5_DirectRemoteQuery);

void BM_Fig5_ExactCacheHit(benchmark::State& state) {
  Fig5Bench& fx = Shared();
  double sim_ms = 0;
  for (auto _ : state) {
    Result<QueryResult> res =
        fx.med.Query(testbed::AppendixQuery(3, false, 4, 47), fx.via_cim);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    sim_ms = res->execution.t_all_ms;
    benchmark::DoNotOptimize(res);
  }
  state.counters["sim_ms"] = sim_ms;
}
BENCHMARK(BM_Fig5_ExactCacheHit);

void BM_Fig5_PartialInvariantHit(benchmark::State& state) {
  Fig5Bench& fx = Shared();
  double sim_ms = 0;
  for (auto _ : state) {
    Result<QueryResult> res =
        fx.med.Query(testbed::AppendixQuery(3, false, 4, 9500), fx.via_cim);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    sim_ms = res->execution.t_all_ms;
    benchmark::DoNotOptimize(res);
  }
  state.counters["sim_ms"] = sim_ms;
}
BENCHMARK(BM_Fig5_PartialInvariantHit);

void BM_Fig5_FullExperiment(benchmark::State& state) {
  for (auto _ : state) {
    Result<std::vector<experiments::Fig5Row>> rows = experiments::RunFig5();
    if (!rows.ok()) state.SkipWithError(rows.status().ToString().c_str());
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_Fig5_FullExperiment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hermes

HERMES_BENCH_MAIN(hermes::PrintReproduction)
