// Reproduces the paper's Section 8 plan-choice claims:
//   1. when the DCSM predicts plan Q1 beats Q2 for *all answers*, Q1
//      almost always runs much faster;
//   2. for *first answers*, the prediction is reliable only when the
//      predicted margin is at least 50%.
// Sweeps the three rewriting pairs (query1/1', query2/2', query3/4) over a
// grid of frame ranges and scores winner-prediction accuracy per claim.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "engine/mediator.h"
#include "experiments/claims.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

void PrintReproduction() {
  Result<std::vector<experiments::PlanChoicePoint>> points =
      experiments::RunPlanChoice();
  if (!points.ok()) {
    std::printf("plan-choice experiment failed: %s\n",
                points.status().ToString().c_str());
    return;
  }
  bench::PrintTable(
      "Section 8 claims — DCSM plan-choice accuracy (simulated ms)",
      experiments::RenderPlanChoice(*points));
}

void BM_OptimizeAppendixQuery(benchmark::State& state) {
  static Mediator* med = [] {
    auto* m = new Mediator();
    testbed::RopeScenarioOptions options;
    options.enable_caching = false;
    (void)testbed::SetupRopeScenario(m, options);
    QueryOptions direct;
    direct.use_optimizer = false;
    direct.use_cim = false;
    (void)m->Query(testbed::AppendixQuery(3, false, 4, 47), direct);
    return m;
  }();
  for (auto _ : state) {
    Result<optimizer::OptimizerResult> plan =
        med->Plan(testbed::AppendixQuery(3, false, 4, 47), QueryOptions{});
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizeAppendixQuery);

void BM_PlanChoiceFullSweep(benchmark::State& state) {
  for (auto _ : state) {
    Result<std::vector<experiments::PlanChoicePoint>> points =
        experiments::RunPlanChoice();
    if (!points.ok()) state.SkipWithError(points.status().ToString().c_str());
    benchmark::DoNotOptimize(points);
  }
}
BENCHMARK(BM_PlanChoiceFullSweep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hermes

HERMES_BENCH_MAIN(hermes::PrintReproduction)
