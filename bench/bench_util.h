#ifndef HERMES_BENCH_BENCH_UTIL_H_
#define HERMES_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace hermes::bench {

/// Prints a titled section around a reproduced paper table.
inline void PrintTable(const std::string& title, const std::string& body) {
  std::printf("\n=== %s ===\n%s\n", title.c_str(), body.c_str());
  std::fflush(stdout);
}

/// Shared custom main: print the reproduction first (side effect of the
/// binary's PrintReproduction()), then run the registered benchmarks.
#define HERMES_BENCH_MAIN(print_fn)                       \
  int main(int argc, char** argv) {                       \
    print_fn();                                           \
    ::benchmark::Initialize(&argc, argv);                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }

}  // namespace hermes::bench

#endif  // HERMES_BENCH_BENCH_UTIL_H_
