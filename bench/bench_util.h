#ifndef HERMES_BENCH_BENCH_UTIL_H_
#define HERMES_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

namespace hermes::bench {

/// Prints a titled section around a reproduced paper table.
inline void PrintTable(const std::string& title, const std::string& body) {
  std::printf("\n=== %s ===\n%s\n", title.c_str(), body.c_str());
  std::fflush(stdout);
}

/// Destination of `--trace-out=FILE`; empty when the flag was not given.
/// Benchmarks that support tracing check this in their reproduction hook
/// and write a Chrome trace_event JSON document there.
inline std::string& TraceOutPath() {
  static std::string path;
  return path;
}

/// Consumes a leading `--trace-out=FILE` flag before google-benchmark sees
/// the argument list (it would reject the unknown flag otherwise).
inline void ExtractTraceOut(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      TraceOutPath() = argv[i] + 12;
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
}

/// Writes `contents` to `path`; returns false (with a note on stderr) on
/// failure so CI surfaces the problem instead of validating a stale file.
inline bool WriteTraceFile(const std::string& path,
                           const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "trace-out: cannot open %s\n", path.c_str());
    return false;
  }
  out << contents;
  return out.good();
}

/// Shared custom main: strip harness flags, print the reproduction (side
/// effect of the binary's PrintReproduction(), which may also honor
/// --trace-out), then run the registered benchmarks.
#define HERMES_BENCH_MAIN(print_fn)                       \
  int main(int argc, char** argv) {                       \
    ::hermes::bench::ExtractTraceOut(&argc, argv);        \
    print_fn();                                           \
    ::benchmark::Initialize(&argc, argv);                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }

}  // namespace hermes::bench

#endif  // HERMES_BENCH_BENCH_UTIL_H_
