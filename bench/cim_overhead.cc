// Reproduces the Section 8 observation that "the overhead of checking the
// cache and the invariants without success and making the actual call [is]
// negligible": measures the simulated cost added by a CIM miss — with a
// growing number of never-matching invariants and cache entries — relative
// to the direct remote call.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "cim/cim.h"
#include "engine/mediator.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

struct OverheadPoint {
  size_t invariants;
  size_t cache_entries;
  double direct_ms;
  double miss_ms;
  double overhead_pct;
};

Result<OverheadPoint> MeasureMissOverhead(size_t num_invariants,
                                          size_t cache_entries) {
  Mediator med;
  testbed::RopeScenarioOptions options;
  options.add_frame_invariants = false;
  // Zero network jitter so the measured delta is pure CIM overhead.
  options.sites.video_site = net::UsaSite("umd");
  options.sites.video_site.jitter = 0.0;
  options.sites.relation_site.jitter = 0.0;
  HERMES_RETURN_IF_ERROR(testbed::SetupRopeScenario(&med, options));
  cim::CimDomain* cim = med.cim("video");

  // Install never-matching invariants (they target a different function).
  for (size_t i = 0; i < num_invariants; ++i) {
    HERMES_RETURN_IF_ERROR(med.AddInvariants(
        "X > " + std::to_string(1000000 + i) +
        " => video:object_to_frames(V, X) >= video:object_to_frames(V, X)."));
  }
  // And unrelated cache entries the invariant scans must wade through.
  QueryOptions via_cim;
  via_cim.use_optimizer = false;
  via_cim.use_cim = true;
  for (size_t i = 0; i < cache_entries; ++i) {
    HERMES_RETURN_IF_ERROR(
        med.Query("?- in(F, video:object_to_frames('rope', 'rupert')).",
                  via_cim)
            .status());
    cim->cache().Put(
        DomainCall{"video",
                   "object_to_frames",
                   {Value::Str("rope"), Value::Str("pad" + std::to_string(i))}},
        AnswerSet{});
  }

  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;

  const std::string query =
      "?- in(O, video:frames_to_objects('rope', 7, 53)).";
  HERMES_ASSIGN_OR_RETURN(QueryResult direct_res, med.Query(query, direct));
  HERMES_ASSIGN_OR_RETURN(QueryResult miss_res, med.Query(query, via_cim));

  OverheadPoint point;
  point.invariants = num_invariants;
  point.cache_entries = cache_entries;
  point.direct_ms = direct_res.execution.t_all_ms;
  point.miss_ms = miss_res.execution.t_all_ms;
  point.overhead_pct =
      100.0 * (point.miss_ms - point.direct_ms) / point.direct_ms;
  return point;
}

void PrintReproduction() {
  std::string body;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%10s %8s %12s %12s %10s\n", "invariants",
                "entries", "direct (ms)", "miss (ms)", "overhead");
  body += buf;
  body += std::string(56, '-') + "\n";
  for (size_t invariants : {0, 4, 16, 64}) {
    for (size_t entries : {0, 20, 100}) {
      Result<OverheadPoint> point = MeasureMissOverhead(invariants, entries);
      if (!point.ok()) {
        body += "error: " + point.status().ToString() + "\n";
        continue;
      }
      std::snprintf(buf, sizeof(buf), "%10zu %8zu %12.0f %12.0f %9.1f%%\n",
                    point->invariants, point->cache_entries, point->direct_ms,
                    point->miss_ms, point->overhead_pct);
      body += buf;
    }
  }
  bench::PrintTable(
      "Section 4.1/8 — CIM miss-path overhead vs direct remote call "
      "(simulated ms; the jitter between direct runs is the noise floor)",
      body);
}

void BM_CimMissPath(benchmark::State& state) {
  for (auto _ : state) {
    Result<OverheadPoint> point =
        MeasureMissOverhead(static_cast<size_t>(state.range(0)), 50);
    if (!point.ok()) state.SkipWithError(point.status().ToString().c_str());
    benchmark::DoNotOptimize(point);
  }
}
BENCHMARK(BM_CimMissPath)->Arg(0)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hermes

HERMES_BENCH_MAIN(hermes::PrintReproduction)
