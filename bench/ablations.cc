// Ablation studies for the design choices DESIGN.md calls out:
//
//   A. Predicate first-answer statistics (the paper's Section 8 remedy for
//      backtracking-blind T_f estimates) — prediction error with the
//      compositional formula alone vs. with cached predicate T_f.
//
//   B. The Section 6.3 relaxation lookup — estimation error when the
//      estimator may relax constants one at a time (most-specific-first)
//      vs. jumping straight to the fully-relaxed global average.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.h"
#include "engine/mediator.h"
#include "lang/parser.h"
#include "optimizer/estimator.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

constexpr const char* kBacktrackRule =
    "mismatched(F, L, Y) :- "
    "in(X, video:frames_to_objects('rope', F, L)) & "
    "in(T, relation:equal('cast', 'name', X)) & =(Y, T.role).";

void PrintPredicateTfAblation() {
  Mediator med;
  testbed::RopeScenarioOptions options;
  options.enable_caching = false;
  if (!testbed::SetupRopeScenario(&med, options).ok()) return;
  if (!med.LoadProgram(kBacktrackRule).ok()) return;

  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;

  // Warm: run the backtracking workload over several ranges.
  for (int64_t last : {47, 127, 500, 900}) {
    (void)med.Query("?- mismatched(4, " + std::to_string(last) + ", Y).",
                    direct);
  }

  std::string body;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-14s %12s %14s %14s\n", "query",
                "actual Tf", "formula Tf", "learned Tf");
  body += buf;
  body += std::string(58, '-') + "\n";

  optimizer::RuleCostEstimator formula(&med.dcsm());
  optimizer::EstimatorParams learned_params;
  learned_params.use_predicate_first_answer_stats = true;
  optimizer::RuleCostEstimator learned(&med.dcsm(), learned_params);

  double formula_err = 0, learned_err = 0;
  int n = 0;
  for (int64_t last : {47, 127, 500, 900}) {
    std::string query_text =
        "?- mismatched(4, " + std::to_string(last) + ", Y).";
    Result<QueryResult> actual = med.Query(query_text, direct);
    Result<lang::Query> query = lang::Parser::ParseQuery(query_text);
    if (!actual.ok() || !query.ok()) continue;
    auto f = formula.EstimateBody(med.program(), query->goals,
                                  optimizer::BindingEnv());
    auto l = learned.EstimateBody(med.program(), query->goals,
                                  optimizer::BindingEnv());
    if (!f.ok() || !l.ok()) continue;
    double tf = actual->execution.t_first_ms;
    std::snprintf(buf, sizeof(buf), "[4,%-4lld]      %12.0f %14.0f %14.0f\n",
                  static_cast<long long>(last), tf, f->cost.t_first_ms,
                  l->cost.t_first_ms);
    body += buf;
    formula_err += std::fabs(f->cost.t_first_ms - tf) / tf;
    learned_err += std::fabs(l->cost.t_first_ms - tf) / tf;
    ++n;
  }
  if (n > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\nmean relative Tf error: formula-only %.0f%%, "
                  "with predicate stats %.0f%%\n",
                  100 * formula_err / n, 100 * learned_err / n);
    body += buf;
  }
  bench::PrintTable(
      "Ablation A — predicate first-answer statistics on a backtracking "
      "workload (every outer tuple fails the join)",
      body);
}

void PrintRelaxationAblation() {
  // Statistics for d:f(A, B): cost depends strongly on A.
  dcsm::Dcsm relaxing;   // normal Section 6.3 behavior
  dcsm::Dcsm blind;      // fully-lossy only: global average
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 6; ++b) {
      CostVector cost(10.0 * (a + 1), 100.0 * (a + 1), 4);
      DomainCall call{"d", "f", {Value::Int(a), Value::Int(b)}};
      relaxing.RecordExecution(call, cost);
      blind.RecordExecution(call, cost);
    }
  }
  (void)blind.BuildFullyLossySummaries();
  blind.options().use_raw_database = false;

  std::string body;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-18s %12s %14s %14s\n", "pattern",
                "true Ta", "relaxation", "global-only");
  body += buf;
  body += std::string(62, '-') + "\n";
  double relax_err = 0, blind_err = 0;
  for (int a = 0; a < 8; a += 2) {
    // Unseen B value forces one relaxation step; A stays informative.
    std::string text = "d:f(" + std::to_string(a) + ", 999)";
    Result<lang::DomainCallSpec> pattern =
        lang::Parser::ParseCallPattern(text);
    if (!pattern.ok()) continue;
    double truth = 100.0 * (a + 1);
    Result<dcsm::CostEstimate> r = relaxing.Cost(*pattern);
    Result<dcsm::CostEstimate> g = blind.Cost(*pattern);
    if (!r.ok() || !g.ok()) continue;
    std::snprintf(buf, sizeof(buf), "%-18s %12.0f %14.1f %14.1f\n",
                  text.c_str(), truth, r->cost.t_all_ms, g->cost.t_all_ms);
    body += buf;
    relax_err += std::fabs(r->cost.t_all_ms - truth) / truth;
    blind_err += std::fabs(g->cost.t_all_ms - truth) / truth;
  }
  std::snprintf(buf, sizeof(buf),
                "\nmean relative error: relaxation %.1f%%, global-only "
                "%.1f%%\n",
                100 * relax_err / 4, 100 * blind_err / 4);
  body += buf;
  bench::PrintTable(
      "Ablation B — Section 6.3 relaxation lookup vs. straight-to-global "
      "averaging",
      body);
}

void PrintRecencyAblation() {
  // The paper's Section 6.2 direction: "perform the summaries in a more
  // biased fashion, especially for the remote domain calls, by observing
  // the load of the network, by giving precedence to more recent
  // statistics". Simulate a link that degrades 5× mid-run and compare
  // unweighted vs recency-weighted estimates against the new reality.
  std::string body;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-26s %12s %12s %12s\n",
                "records (old->new regime)", "true Ta now", "unweighted",
                "recency-weighted");
  body += buf;
  body += std::string(66, '-') + "\n";

  for (int new_records : {2, 5, 10, 20}) {
    dcsm::Dcsm flat;
    dcsm::Dcsm recent;
    recent.options().recency_halflife = 4.0;
    DomainCall call{"video", "size", {Value::Str("rope")}};
    // 20 records from the fast era (Ta 1000ms)...
    for (int i = 0; i < 20; ++i) {
      flat.RecordExecution(call, CostVector(250, 1000, 1));
      recent.RecordExecution(call, CostVector(250, 1000, 1));
    }
    // ...then the link degrades: Ta 5000ms.
    for (int i = 0; i < new_records; ++i) {
      flat.RecordExecution(call, CostVector(1250, 5000, 1));
      recent.RecordExecution(call, CostVector(1250, 5000, 1));
    }
    Result<lang::DomainCallSpec> pattern =
        lang::Parser::ParseCallPattern("video:size('rope')");
    if (!pattern.ok()) return;
    Result<dcsm::CostEstimate> f = flat.Cost(*pattern);
    Result<dcsm::CostEstimate> r = recent.Cost(*pattern);
    if (!f.ok() || !r.ok()) return;
    std::snprintf(buf, sizeof(buf), "20 fast + %-2d slow          %12.0f %12.0f %12.0f\n",
                  new_records, 5000.0, f->cost.t_all_ms, r->cost.t_all_ms);
    body += buf;
  }
  bench::PrintTable(
      "Ablation C — recency-weighted statistics after a 5x link "
      "degradation (halflife = 4 records)",
      body);
}

void PrintReproduction() {
  PrintPredicateTfAblation();
  PrintRelaxationAblation();
  PrintRecencyAblation();
}

void BM_EstimateWithPredicateStats(benchmark::State& state) {
  static Mediator* med = [] {
    auto* m = new Mediator();
    testbed::RopeScenarioOptions options;
    options.enable_caching = false;
    (void)testbed::SetupRopeScenario(m, options);
    (void)m->LoadProgram(kBacktrackRule);
    QueryOptions direct;
    direct.use_optimizer = false;
    direct.use_cim = false;
    (void)m->Query("?- mismatched(4, 47, Y).", direct);
    return m;
  }();
  optimizer::EstimatorParams params;
  params.use_predicate_first_answer_stats = state.range(0) == 1;
  optimizer::RuleCostEstimator estimator(&med->dcsm(), params);
  Result<lang::Query> query =
      lang::Parser::ParseQuery("?- mismatched(4, 47, Y).");
  for (auto _ : state) {
    auto est = estimator.EstimateBody(med->program(), query->goals,
                                      optimizer::BindingEnv());
    if (!est.ok()) state.SkipWithError(est.status().ToString().c_str());
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_EstimateWithPredicateStats)->Arg(0)->Arg(1);

}  // namespace
}  // namespace hermes

HERMES_BENCH_MAIN(hermes::PrintReproduction)
