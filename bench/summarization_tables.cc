// Reproduces the illustrative statistics tables of the paper's Section 6:
// the cost vector database tables T16/T19 (Figure 2), their lossless
// summaries T20/T21 (Figure 3), and the lossy summaries of Figure 4.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dcsm/dcsm.h"
#include "lang/parser.h"

namespace hermes {
namespace {

/// Loads Figure 2's tables: d1:p_bf (T16) and d2:q_bf (T18).
void LoadFigure2(dcsm::Dcsm* dcsm) {
  auto rec = [dcsm](const char* d, const char* f, const char* arg, double ta,
                    double card) {
    dcsm->RecordExecution(DomainCall{d, f, {Value::Str(arg)}},
                          CostVector(ta / 4, ta, card));
  };
  // (T16) d1:p_bf — the paper's exact values.
  rec("d1", "p_bf", "a", 2.00, 2);
  rec("d1", "p_bf", "a", 2.20, 2);
  rec("d1", "p_bf", "c", 2.80, 3);
  rec("d1", "p_bf", "c", 2.84, 3);
  // (T18)-style d2:q_bf entries.
  rec("d2", "q_bf", "b1", 3.10, 4);
  rec("d2", "q_bf", "b1", 3.30, 4);
  rec("d2", "q_bf", "b2", 2.50, 1);
}

std::string RenderGroup(const dcsm::Dcsm& dcsm, const dcsm::CallGroupKey& key) {
  std::string out = "table " + key.ToString() + " (raw records):\n";
  const std::vector<dcsm::CostRecord>* group = dcsm.database().GetGroup(key);
  if (group == nullptr) return out + "  <empty>\n";
  char buf[128];
  for (const dcsm::CostRecord& r : *group) {
    std::snprintf(buf, sizeof(buf), "  %-18s Ta=%5.2f Card=%4.1f t=%llu\n",
                  ValueListToString(r.call.args).c_str(), r.cost.t_all_ms,
                  r.cost.cardinality,
                  static_cast<unsigned long long>(r.record_time));
    out += buf;
  }
  return out;
}

std::string RenderSummary(const dcsm::Dcsm& dcsm,
                          const dcsm::CallGroupKey& key, const char* label) {
  std::string out = std::string(label) + ":\n";
  const std::vector<dcsm::SummaryTable>* tables = dcsm.SummariesFor(key);
  if (tables == nullptr) return out + "  <none>\n";
  char buf[160];
  for (const dcsm::SummaryTable& table : *tables) {
    std::string dims = "dims={";
    for (size_t i = 0; i < table.dims().size(); ++i) {
      if (i) dims += ",";
      dims += std::to_string(table.dims()[i]);
    }
    dims += "}";
    out += "  " + key.ToString() + " " + dims +
           (table.IsLossless() ? " (lossless)" : " (lossy)") + "\n";
    for (const auto& [row_key, row] : table.rows()) {
      CostVector mean = row.Mean();
      std::snprintf(buf, sizeof(buf),
                    "    %-14s Ta=%5.2f Card=%4.2f l=%llu\n",
                    ValueListToString(row.dims).c_str(), mean.t_all_ms,
                    mean.cardinality, static_cast<unsigned long long>(row.l));
      out += buf;
    }
  }
  return out;
}

void PrintReproduction() {
  dcsm::Dcsm dcsm;
  LoadFigure2(&dcsm);
  dcsm::CallGroupKey p_key{"d1", "p_bf", 1};
  dcsm::CallGroupKey q_key{"d2", "q_bf", 1};

  std::string body = RenderGroup(dcsm, p_key) + RenderGroup(dcsm, q_key);
  bench::PrintTable("Figure 2 — cost vector database (T16, T18)", body);

  (void)dcsm.BuildLosslessSummaries();
  body = RenderSummary(dcsm, p_key, "lossless summary of d1:p_bf (T20)") +
         RenderSummary(dcsm, q_key, "lossless summary of d2:q_bf (T21)");
  bench::PrintTable("Figure 3 — lossless summarizations", body);

  dcsm.ClearSummaries();
  (void)dcsm.BuildFullyLossySummaries();
  body = RenderSummary(dcsm, p_key, "lossy summary of d1:p_bf") +
         RenderSummary(dcsm, q_key, "lossy summary of d2:q_bf");
  bench::PrintTable("Figure 4 — lossy summarizations (dimensions dropped)",
                    body);

  // Sanity estimates quoted in the running text.
  Result<lang::DomainCallSpec> pa =
      lang::Parser::ParseCallPattern("d1:p_bf('a')");
  Result<lang::DomainCallSpec> pb =
      lang::Parser::ParseCallPattern("d1:p_bf($b)");
  dcsm::Dcsm fresh;
  LoadFigure2(&fresh);
  std::printf("Section 6.1 checks: cost(d1:p_bf('a')).Ta = %.2f (paper: 2.10)"
              ", cost(d1:p_bf($b)).Ta = %.2f (paper: 2.46)\n\n",
              fresh.Cost(*pa)->cost.t_all_ms, fresh.Cost(*pb)->cost.t_all_ms);
}

void BM_SummaryExactLookup(benchmark::State& state) {
  dcsm::Dcsm dcsm;
  LoadFigure2(&dcsm);
  (void)dcsm.BuildLosslessSummaries();
  dcsm.options().use_raw_database = false;
  Result<lang::DomainCallSpec> pattern =
      lang::Parser::ParseCallPattern("d1:p_bf('a')");
  for (auto _ : state) {
    benchmark::DoNotOptimize(dcsm.Cost(*pattern));
  }
}
BENCHMARK(BM_SummaryExactLookup);

void BM_RawAggregation(benchmark::State& state) {
  dcsm::Dcsm dcsm;
  LoadFigure2(&dcsm);
  Result<lang::DomainCallSpec> pattern =
      lang::Parser::ParseCallPattern("d1:p_bf($b)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(dcsm.Cost(*pattern));
  }
}
BENCHMARK(BM_RawAggregation);

}  // namespace
}  // namespace hermes

HERMES_BENCH_MAIN(hermes::PrintReproduction)
