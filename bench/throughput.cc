// Host-performance benchmarks of the library itself (not the simulated
// testbed): how fast the implementation parses, plans, executes and
// serves cache hits. These are the numbers a downstream adopter of the
// library cares about — wall-clock cost per mediator operation.

#include <benchmark/benchmark.h>

#include <atomic>
#include <string>

#include "bench/bench_util.h"
#include "engine/mediator.h"
#include "lang/parser.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"

namespace hermes {
namespace {

void PrintReproduction() {
  std::printf(
      "\n=== Library host-performance benchmarks ===\n"
      "(wall-clock per operation; the simulated testbed latencies do not\n"
      " apply here — a cache-hit query's *simulated* time is ~1ms while\n"
      " its *host* cost below is microseconds)\n\n");
}

Mediator* SharedMediator() {
  static Mediator* med = [] {
    auto* m = new Mediator();
    testbed::RopeScenarioOptions options;
    options.sites.video_site = net::LocalSite();
    options.sites.relation_site = net::LocalSite();
    (void)testbed::SetupRopeScenario(m, options);
    QueryOptions warm;
    warm.use_optimizer = false;
    (void)m->Query(testbed::AppendixQuery(3, false, 4, 47), warm);
    return m;
  }();
  return med;
}

void BM_ParseRule(benchmark::State& state) {
  const std::string text =
      "routetosupplies(From, Sup, To, R) :- "
      "in(T, ingres:select_eq('inventory', item, Sup)) & =(T.loc, To) & "
      "in(R, terraindb:findrte(From, To)).";
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::Parser::ParseRule(text));
  }
}
BENCHMARK(BM_ParseRule);

void BM_ParseQuery(benchmark::State& state) {
  const std::string text = testbed::AppendixQuery(2, true, 4, 47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::Parser::ParseQuery(text));
  }
}
BENCHMARK(BM_ParseQuery);

void BM_PlanQuery(benchmark::State& state) {
  Mediator* med = SharedMediator();
  const std::string query = testbed::AppendixQuery(3, false, 4, 47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->Plan(query, QueryOptions{}));
  }
}
BENCHMARK(BM_PlanQuery)->Unit(benchmark::kMicrosecond);

void BM_ExecuteJoinQueryDirect(benchmark::State& state) {
  Mediator* med = SharedMediator();
  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;
  direct.record_statistics = false;
  const std::string query = testbed::AppendixQuery(3, false, 4, 47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->Query(query, direct));
  }
}
BENCHMARK(BM_ExecuteJoinQueryDirect)->Unit(benchmark::kMicrosecond);

void BM_ExecuteCacheHitQuery(benchmark::State& state) {
  Mediator* med = SharedMediator();
  QueryOptions cached;
  cached.use_optimizer = false;
  cached.use_cim = true;
  cached.record_statistics = false;
  const std::string query = testbed::AppendixQuery(3, false, 4, 47);
  (void)med->Query(query, cached);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->Query(query, cached));
  }
}
BENCHMARK(BM_ExecuteCacheHitQuery)->Unit(benchmark::kMicrosecond);

void BM_EndToEndOptimizedQuery(benchmark::State& state) {
  Mediator* med = SharedMediator();
  QueryOptions full;  // optimizer + cim
  full.record_statistics = false;
  const std::string query = testbed::AppendixQuery(3, false, 4, 127);
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->Query(query, full));
  }
}
BENCHMARK(BM_EndToEndOptimizedQuery)->Unit(benchmark::kMicrosecond);

// --- Concurrent serving -----------------------------------------------------
//
// Aggregate queries/sec of N client threads sharing one mediator. Pacing
// turns each query's *simulated* service time into real wall-clock wait
// (sleep t_all_ms × scale), so these benchmarks measure what a worker pool
// buys a real mediator: threads overlapping the time blocked on (simulated)
// remote sources, exactly the regime the lock-striped cache and lock-light
// statistics are built for. Aggregate items/sec should scale with threads
// even on a single core, because the waits — not the CPU — dominate.

constexpr const char* kObjectsRule =
    "objects(F, L, O) :- in(O, video:frames_to_objects('rope', F, L)).";

QueryOptions ConcurrentOptions() {
  QueryOptions q;
  q.use_optimizer = false;
  q.record_statistics = false;
  return q;
}

// Cache-hit mix: every query is an exact hit on a pre-warmed entry; rotating
// over eight ranges spreads the probes across cache shards. Simulated hit
// latency is ~1ms, paced 1:1 into real sleep.
Mediator* HitMixMediator() {
  static Mediator* med = [] {
    auto* m = new Mediator();
    testbed::RopeScenarioOptions options;
    options.add_frame_invariants = false;
    (void)testbed::SetupRopeScenario(m, options);
    (void)m->LoadProgram(kObjectsRule);
    for (int i = 0; i < 8; ++i) {  // warm (unpaced: pacing not yet set)
      (void)m->Query("?- objects(4, " + std::to_string(40 + i) + ", O).",
                     ConcurrentOptions());
    }
    m->set_per_query_network_rng(true);
    m->set_service_pacing(1.0);
    return m;
  }();
  return med;
}

// Cache-miss mix: every query asks a never-seen frame range, so each one
// plans, executes the remote call, and inserts into the cache. Simulated
// service time is seconds (UsaSite), paced down 500:1 so a miss costs a few
// real milliseconds of overlappable wait.
Mediator* MissMixMediator() {
  static Mediator* med = [] {
    auto* m = new Mediator();
    testbed::RopeScenarioOptions options;
    options.add_frame_invariants = false;
    (void)testbed::SetupRopeScenario(m, options);
    (void)m->LoadProgram(kObjectsRule);
    m->set_per_query_network_rng(true);
    m->set_service_pacing(0.002);
    return m;
  }();
  return med;
}

void BM_ConcurrentQuery_CacheHitMix(benchmark::State& state) {
  Mediator* med = HitMixMediator();
  const QueryOptions options = ConcurrentOptions();
  int n = state.thread_index();
  for (auto _ : state) {
    std::string query =
        "?- objects(4, " + std::to_string(40 + n++ % 8) + ", O).";
    Result<QueryResult> res = med->Query(query, options);
    if (!res.ok()) {
      state.SkipWithError(res.status().message().c_str());
      break;
    }
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentQuery_CacheHitMix)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Same hit mix with the diagnostics layer on (flight recorder, drift
// tracker, internal tracer, no capture thresholds): the contrast against
// BM_ConcurrentQuery_CacheHitMix is the whole cost of always-on
// diagnostics on the hot path.
Mediator* HitMixRecorderMediator() {
  static Mediator* med = [] {
    auto* m = new Mediator();
    testbed::RopeScenarioOptions options;
    options.add_frame_invariants = false;
    (void)testbed::SetupRopeScenario(m, options);
    (void)m->EnableDiagnostics({});
    (void)m->LoadProgram(kObjectsRule);
    for (int i = 0; i < 8; ++i) {  // warm (unpaced: pacing not yet set)
      (void)m->Query("?- objects(4, " + std::to_string(40 + i) + ", O).",
                     ConcurrentOptions());
    }
    m->set_per_query_network_rng(true);
    m->set_service_pacing(1.0);
    return m;
  }();
  return med;
}

void BM_ConcurrentQuery_CacheHitMixRecorder(benchmark::State& state) {
  Mediator* med = HitMixRecorderMediator();
  const QueryOptions options = ConcurrentOptions();
  int n = state.thread_index();
  for (auto _ : state) {
    std::string query =
        "?- objects(4, " + std::to_string(40 + n++ % 8) + ", O).";
    Result<QueryResult> res = med->Query(query, options);
    if (!res.ok()) {
      state.SkipWithError(res.status().message().c_str());
      break;
    }
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentQuery_CacheHitMixRecorder)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_ConcurrentQuery_CacheMissMix(benchmark::State& state) {
  Mediator* med = MissMixMediator();
  const QueryOptions options = ConcurrentOptions();
  // Never-repeating ranges — the counter is shared across every thread and
  // every thread-count run so later runs cannot accidentally hit entries
  // cached by earlier ones.
  static std::atomic<int64_t> counter{0};
  for (auto _ : state) {
    int64_t first = 1 + counter.fetch_add(1, std::memory_order_relaxed);
    std::string query = "?- objects(" + std::to_string(first) + ", " +
                        std::to_string(first + 40) + ", O).";
    Result<QueryResult> res = med->Query(query, options);
    if (!res.ok()) {
      state.SkipWithError(res.status().message().c_str());
      break;
    }
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentQuery_CacheMissMix)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Fan-out miss mix: every query makes three *independent* remote calls to
// three mirror sites, and every call is a never-seen miss. With async
// scatter-gather off the simulated service time is the SUM of the three
// hops; with it on the calls overlap and the query costs ≈ the slowest
// hop — the sim_ms_per_query counter reports the per-query simulated
// latency so the max-vs-sum effect is visible next to the QPS. Pacing
// turns that simulated time into real overlappable wait as above.

/// Echo-style source for the fan-out mix: work(x) → {x} at fixed inner cost.
class FanoutSource : public Domain {
 public:
  explicit FanoutSource(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return {{"work", 1, "work(x): {x}"}};
  }
  Result<CallOutput> Run(const DomainCall& call) override {
    CallOutput out;
    out.answers = {call.args[0]};
    out.first_ms = 3.0;
    out.all_ms = 7.0;
    return out;
  }

 private:
  std::string name_;
};

/// A mirror site at roughly half the UsaSite latency, so even the slowest
/// branch of an async fan-out beats one UsaSite hop.
net::SiteParams MirrorSite(std::string name) {
  net::SiteParams site = net::UsaSite(std::move(name));
  site.connect_ms = 450.0;
  site.rtt_ms = 80.0;
  site.bytes_per_ms = 4.0;
  return site;
}

Mediator* FanoutMediator(bool async) {
  auto make = [](bool on) {
    auto* m = new Mediator();
    for (int i = 1; i <= 3; ++i) {
      std::string domain = "f" + std::to_string(i);
      (void)m->RegisterRemoteDomain(domain,
                                    std::make_shared<FanoutSource>(domain),
                                    MirrorSite("mirror" + std::to_string(i)));
    }
    m->set_per_query_network_rng(true);
    m->set_async_execution(on);
    // Coalescing enabled but never firing (every call is unique): the mix
    // also measures that the single-flight layer is free on the miss path.
    SingleFlightOptions sf;
    sf.enabled = true;
    m->set_single_flight(sf);
    m->set_service_pacing(0.002);
    return m;
  };
  static Mediator* sync_med = make(false);
  static Mediator* async_med = make(true);
  return async ? async_med : sync_med;
}

void BM_ConcurrentQuery_FanoutMissMix(benchmark::State& state) {
  const bool async = state.range(0) != 0;
  Mediator* med = FanoutMediator(async);
  const QueryOptions options = ConcurrentOptions();
  // Never-repeating arguments, shared across threads and thread counts.
  static std::atomic<int64_t> counter{0};
  double sim_ms = 0.0;
  for (auto _ : state) {
    int64_t k = counter.fetch_add(1, std::memory_order_relaxed);
    std::string query = "?- in(X, f1:work(" + std::to_string(3 * k) +
                        ")) & in(Y, f2:work(" + std::to_string(3 * k + 1) +
                        ")) & in(Z, f3:work(" + std::to_string(3 * k + 2) +
                        ")).";
    Result<QueryResult> res = med->Query(query, options);
    if (!res.ok()) {
      state.SkipWithError(res.status().message().c_str());
      break;
    }
    sim_ms += res->ta_sim_ms;
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sim_ms_per_query"] =
      benchmark::Counter(sim_ms, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ConcurrentQuery_FanoutMissMix)
    ->ArgNames({"async"})->Args({0})->Args({1})
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Plan-cache hit mix: one rebindable query shape over eight rotating frame
// windows, against local sites with no pacing, so the measured cost is pure
// host work. plan_cache:0 compiles every query from scratch; plan_cache:1
// compiles once and serves every later query by rebinding a pooled
// instance's constants — the delta is the per-query compilation cost the
// cache deletes, and the thread sweep shows the sharded hit path does not
// serialize the pool.

std::string PlanCacheMixQuery(int window) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "?- in(Object, video:frames_to_objects('rope', 4, %d)) & "
                "in(T, relation:equal('cast', role, Object)) & "
                "=(Actor, T.name).",
                40 + window % 8);
  return buf;
}

QueryOptions PlanCacheMixOptions() {
  QueryOptions q;
  q.use_optimizer = false;
  q.use_cim = false;
  q.record_statistics = false;
  return q;
}

Mediator* PlanCacheMixMediator(bool cached) {
  auto make = [](bool on) {
    auto* m = new Mediator();
    testbed::RopeScenarioOptions options;
    options.sites.video_site = net::LocalSite();
    options.sites.relation_site = net::LocalSite();
    options.add_frame_invariants = false;
    (void)testbed::SetupRopeScenario(m, options);
    if (on) (void)m->EnablePlanCache();
    for (int i = 0; i < 8; ++i) {  // warm: insert + pool one instance
      (void)m->Query(PlanCacheMixQuery(i), PlanCacheMixOptions());
    }
    return m;
  };
  static Mediator* raw_med = make(false);
  static Mediator* cached_med = make(true);
  return cached ? cached_med : raw_med;
}

void BM_ConcurrentQuery_PlanCacheHitMix(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  Mediator* med = PlanCacheMixMediator(cached);
  const QueryOptions options = PlanCacheMixOptions();
  int n = state.thread_index();
  for (auto _ : state) {
    Result<QueryResult> res = med->Query(PlanCacheMixQuery(n++), options);
    if (!res.ok()) {
      state.SkipWithError(res.status().message().c_str());
      break;
    }
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentQuery_PlanCacheHitMix)
    ->ArgNames({"plan_cache"})->Args({0})->Args({1})
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

// Overload mix: fan-out queries over the generated 32-site topology with
// the overload layer in the three states a production mediator would run —
// off, limiter armed, limiter+hedging armed. The contrast shows what the
// per-site AIMD window and the hedge bookkeeping cost on the hot path
// (overload:0 vs 1) and what hedging pays/saves end to end (hedge:1, which
// also reports hedge traffic via sim_ms_per_query shifts). Never-repeating
// arguments keep every call a miss.

Mediator* OverloadMixMediator(bool overload_on, bool hedge_on) {
  auto make = [](bool arm, bool hedge) {
    auto* m = new Mediator();
    testbed::TopologyOptions topo;
    (void)testbed::SetupOverloadTopology(m, topo, nullptr);
    m->set_per_query_network_rng(true);
    m->set_async_execution(true);
    if (arm) {
      overload::OverloadPolicy policy;
      policy.limiter.enabled = true;
      policy.limiter.initial_limit = 8.0;
      policy.hedge.enabled = hedge;
      policy.hedge.min_samples = 4;
      policy.hedge.budget_percent = 25;
      (void)m->EnableOverloadControl(policy, {});
    }
    m->set_service_pacing(0.002);
    return m;
  };
  static Mediator* off_med = make(false, false);
  static Mediator* limiter_med = make(true, false);
  static Mediator* hedge_med = make(true, true);
  return overload_on ? (hedge_on ? hedge_med : limiter_med) : off_med;
}

void BM_ConcurrentQuery_OverloadMix(benchmark::State& state) {
  const bool overload_on = state.range(0) != 0;
  const bool hedge_on = state.range(1) != 0;
  Mediator* med = OverloadMixMediator(overload_on, hedge_on);
  // Mirrors what SetupOverloadTopology registered (TopologyQuery only
  // needs the primary domain names).
  static testbed::TopologyInfo info = [] {
    testbed::TopologyInfo built;
    for (size_t i = 0; i < 32; ++i) {
      built.domains.push_back("s" + std::to_string(i));
      built.tiers.push_back(static_cast<testbed::SiteTier>(i % 4));
    }
    return built;
  }();
  QueryOptions options = ConcurrentOptions();
  options.partial_results = true;
  // Never-repeating arguments, shared across threads and thread counts.
  static std::atomic<int64_t> counter{0};
  double sim_ms = 0.0;
  for (auto _ : state) {
    int64_t k = counter.fetch_add(1, std::memory_order_relaxed);
    std::string query =
        testbed::TopologyQuery(info, static_cast<uint64_t>(k), 8);
    Result<QueryResult> res = med->Query(query, options);
    if (!res.ok()) {
      state.SkipWithError(res.status().message().c_str());
      break;
    }
    sim_ms += res->ta_sim_ms;
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sim_ms_per_query"] =
      benchmark::Counter(sim_ms, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ConcurrentQuery_OverloadMix)
    ->ArgNames({"overload", "hedge"})->Args({0, 0})->Args({1, 0})->Args({1, 1})
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_DcsmCostLookup(benchmark::State& state) {
  Mediator* med = SharedMediator();
  Result<lang::DomainCallSpec> pattern = lang::Parser::ParseCallPattern(
      "video:frames_to_objects('rope', 4, $b)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->dcsm().Cost(*pattern));
  }
}
BENCHMARK(BM_DcsmCostLookup);

}  // namespace
}  // namespace hermes

HERMES_BENCH_MAIN(hermes::PrintReproduction)
