// Host-performance benchmarks of the library itself (not the simulated
// testbed): how fast the implementation parses, plans, executes and
// serves cache hits. These are the numbers a downstream adopter of the
// library cares about — wall-clock cost per mediator operation.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "engine/mediator.h"
#include "lang/parser.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

void PrintReproduction() {
  std::printf(
      "\n=== Library host-performance benchmarks ===\n"
      "(wall-clock per operation; the simulated testbed latencies do not\n"
      " apply here — a cache-hit query's *simulated* time is ~1ms while\n"
      " its *host* cost below is microseconds)\n\n");
}

Mediator* SharedMediator() {
  static Mediator* med = [] {
    auto* m = new Mediator();
    testbed::RopeScenarioOptions options;
    options.sites.video_site = net::LocalSite();
    options.sites.relation_site = net::LocalSite();
    (void)testbed::SetupRopeScenario(m, options);
    QueryOptions warm;
    warm.use_optimizer = false;
    (void)m->Query(testbed::AppendixQuery(3, false, 4, 47), warm);
    return m;
  }();
  return med;
}

void BM_ParseRule(benchmark::State& state) {
  const std::string text =
      "routetosupplies(From, Sup, To, R) :- "
      "in(T, ingres:select_eq('inventory', item, Sup)) & =(T.loc, To) & "
      "in(R, terraindb:findrte(From, To)).";
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::Parser::ParseRule(text));
  }
}
BENCHMARK(BM_ParseRule);

void BM_ParseQuery(benchmark::State& state) {
  const std::string text = testbed::AppendixQuery(2, true, 4, 47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::Parser::ParseQuery(text));
  }
}
BENCHMARK(BM_ParseQuery);

void BM_PlanQuery(benchmark::State& state) {
  Mediator* med = SharedMediator();
  const std::string query = testbed::AppendixQuery(3, false, 4, 47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->Plan(query, QueryOptions{}));
  }
}
BENCHMARK(BM_PlanQuery)->Unit(benchmark::kMicrosecond);

void BM_ExecuteJoinQueryDirect(benchmark::State& state) {
  Mediator* med = SharedMediator();
  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;
  direct.record_statistics = false;
  const std::string query = testbed::AppendixQuery(3, false, 4, 47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->Query(query, direct));
  }
}
BENCHMARK(BM_ExecuteJoinQueryDirect)->Unit(benchmark::kMicrosecond);

void BM_ExecuteCacheHitQuery(benchmark::State& state) {
  Mediator* med = SharedMediator();
  QueryOptions cached;
  cached.use_optimizer = false;
  cached.use_cim = true;
  cached.record_statistics = false;
  const std::string query = testbed::AppendixQuery(3, false, 4, 47);
  (void)med->Query(query, cached);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->Query(query, cached));
  }
}
BENCHMARK(BM_ExecuteCacheHitQuery)->Unit(benchmark::kMicrosecond);

void BM_EndToEndOptimizedQuery(benchmark::State& state) {
  Mediator* med = SharedMediator();
  QueryOptions full;  // optimizer + cim
  full.record_statistics = false;
  const std::string query = testbed::AppendixQuery(3, false, 4, 127);
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->Query(query, full));
  }
}
BENCHMARK(BM_EndToEndOptimizedQuery)->Unit(benchmark::kMicrosecond);

void BM_DcsmCostLookup(benchmark::State& state) {
  Mediator* med = SharedMediator();
  Result<lang::DomainCallSpec> pattern = lang::Parser::ParseCallPattern(
      "video:frames_to_objects('rope', 4, $b)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->dcsm().Cost(*pattern));
  }
}
BENCHMARK(BM_DcsmCostLookup);

}  // namespace
}  // namespace hermes

HERMES_BENCH_MAIN(hermes::PrintReproduction)
