// Host-performance benchmarks of the library itself (not the simulated
// testbed): how fast the implementation parses, plans, executes and
// serves cache hits. These are the numbers a downstream adopter of the
// library cares about — wall-clock cost per mediator operation.

#include <benchmark/benchmark.h>

#include <atomic>
#include <string>

#include "bench/bench_util.h"
#include "engine/mediator.h"
#include "lang/parser.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

void PrintReproduction() {
  std::printf(
      "\n=== Library host-performance benchmarks ===\n"
      "(wall-clock per operation; the simulated testbed latencies do not\n"
      " apply here — a cache-hit query's *simulated* time is ~1ms while\n"
      " its *host* cost below is microseconds)\n\n");
}

Mediator* SharedMediator() {
  static Mediator* med = [] {
    auto* m = new Mediator();
    testbed::RopeScenarioOptions options;
    options.sites.video_site = net::LocalSite();
    options.sites.relation_site = net::LocalSite();
    (void)testbed::SetupRopeScenario(m, options);
    QueryOptions warm;
    warm.use_optimizer = false;
    (void)m->Query(testbed::AppendixQuery(3, false, 4, 47), warm);
    return m;
  }();
  return med;
}

void BM_ParseRule(benchmark::State& state) {
  const std::string text =
      "routetosupplies(From, Sup, To, R) :- "
      "in(T, ingres:select_eq('inventory', item, Sup)) & =(T.loc, To) & "
      "in(R, terraindb:findrte(From, To)).";
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::Parser::ParseRule(text));
  }
}
BENCHMARK(BM_ParseRule);

void BM_ParseQuery(benchmark::State& state) {
  const std::string text = testbed::AppendixQuery(2, true, 4, 47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::Parser::ParseQuery(text));
  }
}
BENCHMARK(BM_ParseQuery);

void BM_PlanQuery(benchmark::State& state) {
  Mediator* med = SharedMediator();
  const std::string query = testbed::AppendixQuery(3, false, 4, 47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->Plan(query, QueryOptions{}));
  }
}
BENCHMARK(BM_PlanQuery)->Unit(benchmark::kMicrosecond);

void BM_ExecuteJoinQueryDirect(benchmark::State& state) {
  Mediator* med = SharedMediator();
  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;
  direct.record_statistics = false;
  const std::string query = testbed::AppendixQuery(3, false, 4, 47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->Query(query, direct));
  }
}
BENCHMARK(BM_ExecuteJoinQueryDirect)->Unit(benchmark::kMicrosecond);

void BM_ExecuteCacheHitQuery(benchmark::State& state) {
  Mediator* med = SharedMediator();
  QueryOptions cached;
  cached.use_optimizer = false;
  cached.use_cim = true;
  cached.record_statistics = false;
  const std::string query = testbed::AppendixQuery(3, false, 4, 47);
  (void)med->Query(query, cached);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->Query(query, cached));
  }
}
BENCHMARK(BM_ExecuteCacheHitQuery)->Unit(benchmark::kMicrosecond);

void BM_EndToEndOptimizedQuery(benchmark::State& state) {
  Mediator* med = SharedMediator();
  QueryOptions full;  // optimizer + cim
  full.record_statistics = false;
  const std::string query = testbed::AppendixQuery(3, false, 4, 127);
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->Query(query, full));
  }
}
BENCHMARK(BM_EndToEndOptimizedQuery)->Unit(benchmark::kMicrosecond);

// --- Concurrent serving -----------------------------------------------------
//
// Aggregate queries/sec of N client threads sharing one mediator. Pacing
// turns each query's *simulated* service time into real wall-clock wait
// (sleep t_all_ms × scale), so these benchmarks measure what a worker pool
// buys a real mediator: threads overlapping the time blocked on (simulated)
// remote sources, exactly the regime the lock-striped cache and lock-light
// statistics are built for. Aggregate items/sec should scale with threads
// even on a single core, because the waits — not the CPU — dominate.

constexpr const char* kObjectsRule =
    "objects(F, L, O) :- in(O, video:frames_to_objects('rope', F, L)).";

QueryOptions ConcurrentOptions() {
  QueryOptions q;
  q.use_optimizer = false;
  q.record_statistics = false;
  return q;
}

// Cache-hit mix: every query is an exact hit on a pre-warmed entry; rotating
// over eight ranges spreads the probes across cache shards. Simulated hit
// latency is ~1ms, paced 1:1 into real sleep.
Mediator* HitMixMediator() {
  static Mediator* med = [] {
    auto* m = new Mediator();
    testbed::RopeScenarioOptions options;
    options.add_frame_invariants = false;
    (void)testbed::SetupRopeScenario(m, options);
    (void)m->LoadProgram(kObjectsRule);
    for (int i = 0; i < 8; ++i) {  // warm (unpaced: pacing not yet set)
      (void)m->Query("?- objects(4, " + std::to_string(40 + i) + ", O).",
                     ConcurrentOptions());
    }
    m->set_per_query_network_rng(true);
    m->set_service_pacing(1.0);
    return m;
  }();
  return med;
}

// Cache-miss mix: every query asks a never-seen frame range, so each one
// plans, executes the remote call, and inserts into the cache. Simulated
// service time is seconds (UsaSite), paced down 500:1 so a miss costs a few
// real milliseconds of overlappable wait.
Mediator* MissMixMediator() {
  static Mediator* med = [] {
    auto* m = new Mediator();
    testbed::RopeScenarioOptions options;
    options.add_frame_invariants = false;
    (void)testbed::SetupRopeScenario(m, options);
    (void)m->LoadProgram(kObjectsRule);
    m->set_per_query_network_rng(true);
    m->set_service_pacing(0.002);
    return m;
  }();
  return med;
}

void BM_ConcurrentQuery_CacheHitMix(benchmark::State& state) {
  Mediator* med = HitMixMediator();
  const QueryOptions options = ConcurrentOptions();
  int n = state.thread_index();
  for (auto _ : state) {
    std::string query =
        "?- objects(4, " + std::to_string(40 + n++ % 8) + ", O).";
    Result<QueryResult> res = med->Query(query, options);
    if (!res.ok()) {
      state.SkipWithError(res.status().message().c_str());
      break;
    }
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentQuery_CacheHitMix)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_ConcurrentQuery_CacheMissMix(benchmark::State& state) {
  Mediator* med = MissMixMediator();
  const QueryOptions options = ConcurrentOptions();
  // Never-repeating ranges — the counter is shared across every thread and
  // every thread-count run so later runs cannot accidentally hit entries
  // cached by earlier ones.
  static std::atomic<int64_t> counter{0};
  for (auto _ : state) {
    int64_t first = 1 + counter.fetch_add(1, std::memory_order_relaxed);
    std::string query = "?- objects(" + std::to_string(first) + ", " +
                        std::to_string(first + 40) + ", O).";
    Result<QueryResult> res = med->Query(query, options);
    if (!res.ok()) {
      state.SkipWithError(res.status().message().c_str());
      break;
    }
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentQuery_CacheMissMix)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_DcsmCostLookup(benchmark::State& state) {
  Mediator* med = SharedMediator();
  Result<lang::DomainCallSpec> pattern = lang::Parser::ParseCallPattern(
      "video:frames_to_objects('rope', 4, $b)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(med->dcsm().Cost(*pattern));
  }
}
BENCHMARK(BM_DcsmCostLookup);

}  // namespace
}  // namespace hermes

HERMES_BENCH_MAIN(hermes::PrintReproduction)
