// Reproduces the Section 6.2 summarization tradeoff: storage footprint,
// simulated estimation latency and estimation accuracy of the raw cost
// vector database vs. lossless vs. lossy summary tables, as the statistics
// database grows.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "dcsm/dcsm.h"
#include "experiments/tradeoff.h"
#include "lang/parser.h"

namespace hermes {
namespace {

void PrintReproduction() {
  Result<std::vector<experiments::TradeoffPoint>> points =
      experiments::RunSummarizationTradeoff(
          {100, 400, 1600, 6400, 25600});
  if (!points.ok()) {
    std::printf("tradeoff experiment failed: %s\n",
                points.status().ToString().c_str());
    return;
  }
  bench::PrintTable(
      "Section 6.2 — lossless vs lossy summarization tradeoffs "
      "(storage / simulated lookup / accuracy)",
      experiments::RenderTradeoff(*points));
}

dcsm::Dcsm* MakeWarmDcsm(size_t records) {
  auto* dcsm = new dcsm::Dcsm();
  Rng rng(7);
  for (size_t i = 0; i < records; ++i) {
    int a = static_cast<int>(rng.NextBelow(16));
    int b = static_cast<int>(rng.NextBelow(10000));
    dcsm->RecordExecution(
        DomainCall{"d", "f", {Value::Int(a), Value::Int(b)}},
        CostVector(10, 100.0 * (a + 1), 5));
  }
  return dcsm;
}

void BM_EstimateFromRaw(benchmark::State& state) {
  dcsm::Dcsm* dcsm = MakeWarmDcsm(static_cast<size_t>(state.range(0)));
  dcsm->options().use_summaries = false;
  Result<lang::DomainCallSpec> pattern =
      lang::Parser::ParseCallPattern("d:f(3, $b)");
  for (auto _ : state) {
    Result<dcsm::CostEstimate> est = dcsm->Cost(*pattern);
    if (!est.ok()) state.SkipWithError(est.status().ToString().c_str());
    benchmark::DoNotOptimize(est);
  }
  state.counters["sim_lookup_ms"] =
      dcsm->Cost(*pattern).value_or(dcsm::CostEstimate{}).lookup_ms;
  delete dcsm;
}
BENCHMARK(BM_EstimateFromRaw)->Arg(100)->Arg(1600)->Arg(25600);

void BM_EstimateFromLosslessSummary(benchmark::State& state) {
  dcsm::Dcsm* dcsm = MakeWarmDcsm(static_cast<size_t>(state.range(0)));
  (void)dcsm->BuildLosslessSummaries();
  (void)dcsm->BuildSummary(dcsm::CallGroupKey{"d", "f", 2}, {0});
  dcsm->options().use_raw_database = false;
  Result<lang::DomainCallSpec> pattern =
      lang::Parser::ParseCallPattern("d:f(3, $b)");
  for (auto _ : state) {
    Result<dcsm::CostEstimate> est = dcsm->Cost(*pattern);
    if (!est.ok()) state.SkipWithError(est.status().ToString().c_str());
    benchmark::DoNotOptimize(est);
  }
  state.counters["sim_lookup_ms"] =
      dcsm->Cost(*pattern).value_or(dcsm::CostEstimate{}).lookup_ms;
  delete dcsm;
}
BENCHMARK(BM_EstimateFromLosslessSummary)->Arg(100)->Arg(1600)->Arg(25600);

void BM_BuildLosslessSummaries(benchmark::State& state) {
  dcsm::Dcsm* dcsm = MakeWarmDcsm(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    dcsm->ClearSummaries();
    benchmark::DoNotOptimize(dcsm->BuildLosslessSummaries());
  }
  delete dcsm;
}
BENCHMARK(BM_BuildLosslessSummaries)->Arg(1600)->Arg(25600)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hermes

HERMES_BENCH_MAIN(hermes::PrintReproduction)
