// Reproduces the paper's Figure 6: "The Utility of DCSM" — actual
// execution times of the six appendix queries vs. the DCSM's predictions
// from lossless and from lossy statistics tables, for both the first
// answer and all answers.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "engine/mediator.h"
#include "experiments/fig6.h"
#include "lang/parser.h"
#include "optimizer/estimator.h"
#include "testbed/scenario.h"

namespace hermes {
namespace {

void PrintReproduction() {
  Result<std::vector<experiments::Fig6Row>> rows = experiments::RunFig6();
  if (!rows.ok()) {
    std::printf("Figure 6 reproduction failed: %s\n",
                rows.status().ToString().c_str());
    return;
  }
  bench::PrintTable("Figure 6 — The Utility of DCSM (simulated ms)",
                    experiments::RenderFig6(*rows));
  std::printf("mean relative Ta error: lossless %.1f%%, lossy %.1f%%\n\n",
              100 * experiments::MeanRelativeErrorAll(*rows, false),
              100 * experiments::MeanRelativeErrorAll(*rows, true));
}

/// Fixture with a warmed statistics database for prediction benchmarks.
struct Fig6Bench {
  Mediator med;

  Fig6Bench() {
    testbed::RopeScenarioOptions options;
    options.enable_caching = false;
    (void)testbed::SetupRopeScenario(&med, options);
    QueryOptions direct;
    direct.use_optimizer = false;
    direct.use_cim = false;
    for (int64_t last : {20, 47, 127, 500, 2500, 9000}) {
      (void)med.Query(testbed::AppendixQuery(3, false, 1, last), direct);
    }
    (void)med.dcsm().BuildLosslessSummaries();
  }
};

Fig6Bench& Shared() {
  static Fig6Bench* instance = new Fig6Bench();
  return *instance;
}

void BM_Fig6_PredictFromRawStatistics(benchmark::State& state) {
  Fig6Bench& fx = Shared();
  fx.med.dcsm().options().use_summaries = false;
  fx.med.dcsm().options().use_raw_database = true;
  Result<lang::Query> query =
      lang::Parser::ParseQuery(testbed::AppendixQuery(3, false, 4, 47));
  optimizer::RuleCostEstimator estimator(&fx.med.dcsm());
  for (auto _ : state) {
    auto est = estimator.EstimateBody(fx.med.program(), query->goals,
                                      optimizer::BindingEnv());
    if (!est.ok()) state.SkipWithError(est.status().ToString().c_str());
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_Fig6_PredictFromRawStatistics);

void BM_Fig6_PredictFromSummaries(benchmark::State& state) {
  Fig6Bench& fx = Shared();
  fx.med.dcsm().options().use_summaries = true;
  fx.med.dcsm().options().use_raw_database = false;
  Result<lang::Query> query =
      lang::Parser::ParseQuery(testbed::AppendixQuery(3, false, 4, 47));
  optimizer::RuleCostEstimator estimator(&fx.med.dcsm());
  for (auto _ : state) {
    auto est = estimator.EstimateBody(fx.med.program(), query->goals,
                                      optimizer::BindingEnv());
    if (!est.ok()) state.SkipWithError(est.status().ToString().c_str());
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_Fig6_PredictFromSummaries);

void BM_Fig6_ActualExecution(benchmark::State& state) {
  Fig6Bench& fx = Shared();
  fx.med.dcsm().options().use_raw_database = true;
  fx.med.dcsm().options().use_summaries = true;
  QueryOptions direct;
  direct.use_optimizer = false;
  direct.use_cim = false;
  direct.record_statistics = false;
  double sim_ms = 0;
  for (auto _ : state) {
    Result<QueryResult> res =
        fx.med.Query(testbed::AppendixQuery(3, false, 4, 47), direct);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    sim_ms = res->execution.t_all_ms;
    benchmark::DoNotOptimize(res);
  }
  state.counters["sim_ms"] = sim_ms;
}
BENCHMARK(BM_Fig6_ActualExecution);

void BM_Fig6_FullExperiment(benchmark::State& state) {
  for (auto _ : state) {
    Result<std::vector<experiments::Fig6Row>> rows = experiments::RunFig6();
    if (!rows.ok()) state.SkipWithError(rows.status().ToString().c_str());
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_Fig6_FullExperiment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hermes

HERMES_BENCH_MAIN(hermes::PrintReproduction)
