#include "terrain/terrain_domain.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/intrusive_heap.h"

namespace hermes::terrain {

namespace {

/// One grid cell's frontier state: tentative distance plus its embedded
/// heap position, so the planner's decrease-key is native (Update) instead
/// of pushing duplicate entries and lazily skipping stale ones.
struct FrontierCell {
  double dist = 0.0;
  int cell = 0;
  IntrusiveHeapNode heap;
};

/// Strict (dist, cell) order — ties broken by cell index, matching the
/// std::pair ordering of the previous priority_queue frontier so the
/// expansion sequence (and expanded counts) stay identical.
struct FrontierLess {
  bool operator()(const FrontierCell& a, const FrontierCell& b) const {
    return a.dist < b.dist || (a.dist == b.dist && a.cell < b.cell);
  }
};

}  // namespace

void TerrainDomain::InitGrid(int width, int height) {
  width_ = width;
  height_ = height;
  cell_cost_.assign(static_cast<size_t>(width) * height, 1.0);
  locations_.clear();
}

void TerrainDomain::SetObstacle(int x, int y) { SetCellCost(x, y, 0.0); }

void TerrainDomain::SetCellCost(int x, int y, double cost) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return;
  cell_cost_[CellIndex(x, y)] = cost;
}

Status TerrainDomain::AddLocation(const std::string& name, int x, int y) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    return Status::InvalidArgument("location '" + name +
                                   "' outside the grid");
  }
  locations_[name] = CellIndex(x, y);
  return Status::OK();
}

Result<int> TerrainDomain::CellOfLocation(const std::string& loc) const {
  auto it = locations_.find(loc);
  if (it == locations_.end()) {
    return Status::NotFound("no location '" + loc + "' on the terrain map");
  }
  return it->second;
}

TerrainDomain::PlanResult TerrainDomain::Plan(int from_cell,
                                              int to_cell) const {
  PlanResult result;
  size_t n = cell_cost_.size();
  std::vector<FrontierCell> cells(n);
  std::vector<int> prev(n, -1);
  for (size_t i = 0; i < n; ++i) {
    cells[i].dist = std::numeric_limits<double>::infinity();
    cells[i].cell = static_cast<int>(i);
  }
  IntrusiveMinHeap<FrontierCell, &FrontierCell::heap, FrontierLess> frontier;
  cells[from_cell].dist = 0.0;
  frontier.Push(&cells[from_cell]);

  const int dx[] = {1, -1, 0, 0};
  const int dy[] = {0, 0, 1, -1};

  while (FrontierCell* top = frontier.Pop()) {
    const double d = top->dist;
    const int cell = top->cell;
    ++result.expanded;
    if (cell == to_cell) break;
    int x = cell % width_;
    int y = cell / width_;
    for (int k = 0; k < 4; ++k) {
      int nx = x + dx[k];
      int ny = y + dy[k];
      if (nx < 0 || nx >= width_ || ny < 0 || ny >= height_) continue;
      int ncell = CellIndex(nx, ny);
      double step = cell_cost_[ncell];
      if (step <= 0.0) continue;  // impassable
      double nd = d + step;
      FrontierCell& neighbor = cells[ncell];
      if (nd < neighbor.dist) {
        neighbor.dist = nd;
        prev[ncell] = cell;
        if (frontier.Contains(&neighbor)) {
          frontier.Update(&neighbor);  // native decrease-key
        } else {
          frontier.Push(&neighbor);
        }
      }
    }
  }

  if (!std::isfinite(cells[to_cell].dist)) return result;
  result.found = true;
  result.cost = cells[to_cell].dist;
  for (int cell = to_cell; cell != -1; cell = prev[cell]) {
    result.cells.push_back(cell);
    if (cell == from_cell) break;
  }
  std::reverse(result.cells.begin(), result.cells.end());
  return result;
}

std::vector<FunctionInfo> TerrainDomain::Functions() const {
  return {
      {"findrte", 2, "findrte(from, to): singleton route struct"},
      {"distance", 2, "distance(from, to): singleton planned path cost"},
      {"reachable", 1, "reachable(from): reachable location names"},
      {"locations", 0, "locations(): all location names"},
  };
}

Result<CallOutput> TerrainDomain::Run(const DomainCall& call) {
  const std::string& fn = call.function;
  // Planning must finish before any part of a route exists, so the first
  // answer is only marginally cheaper than the full set.
  auto finish = [this](AnswerSet answers, size_t expanded, size_t waypoints) {
    CallOutput out;
    double plan_ms =
        params_.base_ms +
        params_.per_expanded_ms * static_cast<double>(expanded);
    out.all_ms = plan_ms +
                 params_.per_waypoint_ms * static_cast<double>(waypoints);
    out.first_ms = answers.empty()
                       ? out.all_ms
                       : plan_ms + params_.per_waypoint_ms;
    out.answers = std::move(answers);
    return out;
  };

  if (fn == "locations") {
    if (!call.args.empty()) {
      return Status::InvalidArgument(call.ToString() + ": takes 0 args");
    }
    AnswerSet answers;
    for (const auto& [name, cell] : locations_) {
      answers.push_back(Value::Str(name));
    }
    size_t n = answers.size();
    return finish(std::move(answers), 0, n);
  }

  if (fn == "findrte" || fn == "distance") {
    if (call.args.size() != 2 || !call.args[0].is_string() ||
        !call.args[1].is_string()) {
      return Status::InvalidArgument(call.ToString() + ": takes (from, to)");
    }
    HERMES_ASSIGN_OR_RETURN(int from_cell,
                            CellOfLocation(call.args[0].as_string()));
    HERMES_ASSIGN_OR_RETURN(int to_cell,
                            CellOfLocation(call.args[1].as_string()));
    PlanResult plan = Plan(from_cell, to_cell);
    if (!plan.found) {
      return finish(AnswerSet{}, plan.expanded, 0);  // no route
    }
    if (fn == "distance") {
      return finish(AnswerSet{Value::Double(plan.cost)}, plan.expanded, 1);
    }

    ValueList waypoints;
    waypoints.reserve(plan.cells.size());
    for (int cell : plan.cells) {
      waypoints.push_back(
          Value::Struct({{"x", Value::Int(cell % width_)},
                         {"y", Value::Int(cell / width_)}}));
    }
    size_t route_len = plan.cells.size();
    return finish(
        AnswerSet{Value::Struct(
            {{"from", call.args[0]},
             {"to", call.args[1]},
             {"length", Value::Int(static_cast<int64_t>(route_len))},
             {"cost", Value::Double(plan.cost)},
             {"waypoints", Value::List(std::move(waypoints))}})},
        plan.expanded, route_len);
  }

  if (fn == "reachable") {
    if (call.args.size() != 1 || !call.args[0].is_string()) {
      return Status::InvalidArgument(call.ToString() + ": takes (from)");
    }
    HERMES_ASSIGN_OR_RETURN(int from_cell,
                            CellOfLocation(call.args[0].as_string()));
    size_t total_expanded = 0;
    AnswerSet answers;
    for (const auto& [name, cell] : locations_) {
      if (cell == from_cell) continue;
      PlanResult plan = Plan(from_cell, cell);
      total_expanded += plan.expanded;
      if (plan.found) answers.push_back(Value::Str(name));
    }
    size_t n = answers.size();
    return finish(std::move(answers), total_expanded, n);
  }

  return Status::NotFound("domain '" + name_ + "' has no function '" + fn +
                          "'");
}

}  // namespace hermes::terrain
