#ifndef HERMES_TERRAIN_TERRAIN_DOMAIN_H_
#define HERMES_TERRAIN_TERRAIN_DOMAIN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "domain/domain.h"

namespace hermes::terrain {

/// Simulated compute-cost parameters of the path-planning package.
struct TerrainCostParams {
  double base_ms = 40.0;          ///< Map load / planner setup.
  double per_expanded_ms = 0.03;  ///< Per search node expanded.
  double per_waypoint_ms = 0.5;   ///< Per route waypoint emitted.
};

/// Grid-world route planner (the paper's US Army terrain-reasoning / path
/// planning package, used by the Section 2 `routetosupplies` example).
///
/// The world is a W×H grid of traversal costs (0 = impassable). Named
/// locations map to grid cells. Exported functions:
///   findrte(from, to)    — singleton route struct
///                          {from, to, length, cost, waypoints}
///   distance(from, to)   — singleton planned path cost (double)
///   reachable(from)      — names of locations reachable from `from`
///   locations()          — all location names
///
/// Routing runs Dijkstra; node expansions dominate the (simulated) cost,
/// making this an expensive, hard-to-model domain like AVIS.
class TerrainDomain : public Domain {
 public:
  explicit TerrainDomain(std::string name, TerrainCostParams params = {})
      : name_(std::move(name)), params_(params) {}

  /// Resets the world to a W×H grid with all cells traversable at cost 1.
  void InitGrid(int width, int height);
  /// Marks a cell impassable.
  void SetObstacle(int x, int y);
  /// Sets the traversal cost of a cell (0 = impassable).
  void SetCellCost(int x, int y, double cost);
  /// Names a grid cell as a location.
  Status AddLocation(const std::string& name, int x, int y);

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override;
  Result<CallOutput> Run(const DomainCall& call) override;

 private:
  struct PlanResult {
    bool found = false;
    double cost = 0.0;
    std::vector<int> cells;  // route as cell indexes, from → to
    size_t expanded = 0;
  };
  PlanResult Plan(int from_cell, int to_cell) const;
  Result<int> CellOfLocation(const std::string& loc) const;
  int CellIndex(int x, int y) const { return y * width_ + x; }

  std::string name_;
  TerrainCostParams params_;
  int width_ = 0;
  int height_ = 0;
  std::vector<double> cell_cost_;        // 0 = impassable
  std::map<std::string, int> locations_;  // name → cell index
};

}  // namespace hermes::terrain

#endif  // HERMES_TERRAIN_TERRAIN_DOMAIN_H_
