#ifndef HERMES_FACE_FACE_DOMAIN_H_
#define HERMES_FACE_FACE_DOMAIN_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "domain/domain.h"

namespace hermes::face {

/// Dimensionality of the synthetic face embeddings.
constexpr size_t kEmbeddingDim = 16;
using Embedding = std::array<double, kEmbeddingDim>;

/// Simulated compute-cost parameters of the face-recognition package.
///
/// Like AVIS, this is a source "for which it is extremely difficult to
/// develop a reasonable cost model": matching cost grows with the gallery
/// and with how ambiguous the probe is (more candidates survive the
/// coarse pass), plus a per-call deterministic jitter.
struct FaceCostParams {
  double load_ms = 70.0;          ///< Model + gallery load.
  double per_face_coarse_ms = 0.8;   ///< Coarse distance per gallery face.
  double per_candidate_fine_ms = 9.0;  ///< Fine re-scoring per candidate.
  double coarse_threshold = 1.6;  ///< Distance admitting the fine pass.
  double jitter = 0.2;
};

/// Synthetic face-recognition domain (HERMES's face database).
///
/// A gallery maps person names to embeddings; probes are *photo ids* that
/// also carry embeddings (registered via AddPhoto). Exported functions:
///   match(photo, threshold)  — {person, distance} structs with
///                              distance <= threshold, nearest first
///   identify(photo)          — singleton best match (empty if gallery empty)
///   people()                 — all gallery names
class FaceDomain : public Domain {
 public:
  explicit FaceDomain(std::string name, FaceCostParams params = {})
      : name_(std::move(name)), params_(params) {}

  /// Enrolls a person with a deterministic synthetic embedding derived
  /// from `seed`.
  void Enroll(const std::string& person, uint64_t seed);

  /// Registers a probe photo whose embedding is the person's plus noise
  /// (so `photo` should match `person` best).
  void AddPhoto(const std::string& photo, const std::string& person,
                uint64_t noise_seed, double noise = 0.3);

  size_t gallery_size() const { return gallery_.size(); }

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override;
  Result<CallOutput> Run(const DomainCall& call) override;

 private:
  static Embedding MakeEmbedding(uint64_t seed);
  static double Distance(const Embedding& a, const Embedding& b);

  std::string name_;
  FaceCostParams params_;
  std::map<std::string, Embedding> gallery_;  // person → embedding
  std::map<std::string, Embedding> photos_;   // photo id → embedding
};

}  // namespace hermes::face

#endif  // HERMES_FACE_FACE_DOMAIN_H_
