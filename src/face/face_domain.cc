#include "face/face_domain.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace hermes::face {

Embedding FaceDomain::MakeEmbedding(uint64_t seed) {
  Rng rng(seed);
  Embedding e;
  for (double& x : e) x = rng.NextGaussian();
  return e;
}

double FaceDomain::Distance(const Embedding& a, const Embedding& b) {
  double sum = 0.0;
  for (size_t i = 0; i < kEmbeddingDim; ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

void FaceDomain::Enroll(const std::string& person, uint64_t seed) {
  gallery_[person] = MakeEmbedding(seed);
}

void FaceDomain::AddPhoto(const std::string& photo, const std::string& person,
                          uint64_t noise_seed, double noise) {
  Embedding base{};
  auto it = gallery_.find(person);
  if (it != gallery_.end()) base = it->second;
  Rng rng(noise_seed);
  for (double& x : base) x += noise * rng.NextGaussian() / 4.0;
  photos_[photo] = base;
}

std::vector<FunctionInfo> FaceDomain::Functions() const {
  return {
      {"match", 2,
       "match(photo, threshold): {person, distance} within threshold"},
      {"identify", 1, "identify(photo): singleton best match"},
      {"people", 0, "people(): all enrolled names"},
  };
}

Result<CallOutput> FaceDomain::Run(const DomainCall& call) {
  const std::string& fn = call.function;

  Rng jitter_rng(call.Hash() ^ 0xFACEULL);
  double jitter =
      1.0 + params_.jitter * (2.0 * jitter_rng.NextDouble() - 1.0);

  if (fn == "people") {
    if (!call.args.empty()) {
      return Status::InvalidArgument(call.ToString() + ": takes 0 args");
    }
    CallOutput out;
    for (const auto& [person, emb] : gallery_) {
      out.answers.push_back(Value::Str(person));
    }
    out.first_ms = out.all_ms = params_.load_ms * jitter;
    return out;
  }

  if (call.args.empty() || !call.args[0].is_string()) {
    return Status::InvalidArgument(call.ToString() +
                                   ": first argument must be a photo id");
  }
  auto pit = photos_.find(call.args[0].as_string());
  if (pit == photos_.end()) {
    return Status::NotFound("no photo '" + call.args[0].as_string() + "'");
  }
  const Embedding& probe = pit->second;

  if (fn != "match" && fn != "identify") {
    return Status::NotFound("domain '" + name_ + "' has no function '" + fn +
                            "'");
  }
  double threshold;
  if (fn == "match") {
    if (call.args.size() != 2 || !call.args[1].is_numeric()) {
      return Status::InvalidArgument(call.ToString() +
                                     ": match takes (photo, threshold)");
    }
    threshold = call.args[1].as_number();
  } else {
    if (call.args.size() != 1) {
      return Status::InvalidArgument(call.ToString() +
                                     ": identify takes (photo)");
    }
    threshold = std::numeric_limits<double>::infinity();
  }

  // Coarse pass over the whole gallery, fine pass over survivors — the
  // data-dependent cost structure that defeats analytic modeling.
  std::vector<std::pair<double, std::string>> candidates;
  for (const auto& [person, emb] : gallery_) {
    double d = Distance(probe, emb);
    if (d <= params_.coarse_threshold || fn == "identify") {
      candidates.emplace_back(d, person);
    }
  }
  std::sort(candidates.begin(), candidates.end());

  CallOutput out;
  if (fn == "identify") {
    if (!candidates.empty()) {
      out.answers.push_back(Value::Struct(
          {{"person", Value::Str(candidates[0].second)},
           {"distance", Value::Double(candidates[0].first)}}));
    }
  } else {
    for (const auto& [d, person] : candidates) {
      if (d > threshold) break;
      out.answers.push_back(Value::Struct(
          {{"person", Value::Str(person)}, {"distance", Value::Double(d)}}));
    }
  }
  double work_ms =
      params_.load_ms +
      params_.per_face_coarse_ms * static_cast<double>(gallery_.size()) +
      params_.per_candidate_fine_ms * static_cast<double>(candidates.size());
  out.all_ms = work_ms * jitter;
  out.first_ms =
      out.answers.empty()
          ? out.all_ms
          : (params_.load_ms +
             params_.per_face_coarse_ms * static_cast<double>(gallery_.size()) +
             params_.per_candidate_fine_ms) *
                jitter;
  return out;
}

}  // namespace hermes::face
