#ifndef HERMES_NET_NETWORK_H_
#define HERMES_NET_NETWORK_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "net/site.h"

namespace hermes::net {

/// Aggregate traffic statistics kept by the network simulator.
struct NetworkStats {
  uint64_t calls = 0;           ///< Remote calls attempted.
  uint64_t failures = 0;        ///< Calls lost to site unavailability.
  uint64_t bytes_transferred = 0;
  double total_charge = 0.0;    ///< Financial charges accrued.
  double total_network_ms = 0.0;
};

/// Deterministic wide-area-network simulator.
///
/// The simulator never sleeps: it *plans* the latency profile of a remote
/// call (connection, request flight, per-byte transfer, jitter,
/// availability) and the caller folds those times into the simulated
/// CallOutput latencies. All randomness is derived from the constructor
/// seed plus the call hash, so a given experiment replays identically.
class NetworkSimulator {
 public:
  explicit NetworkSimulator(uint64_t seed = 1996) : seed_(seed) {}

  NetworkSimulator(const NetworkSimulator&) = delete;
  NetworkSimulator& operator=(const NetworkSimulator&) = delete;

  /// The planned latency profile of shipping one call to `site`.
  struct Transfer {
    bool available = true;
    double request_ms = 0.0;       ///< connect + request flight time.
    double response_lag_ms = 0.0;  ///< Return flight time (first byte).
    double per_byte_ms = 0.0;      ///< Transfer cost per response byte.
    double penalty_ms = 0.0;       ///< Retry timeout when unavailable.
  };

  /// Plans a call. `call_hash` individualizes jitter per distinct call;
  /// an internal sequence counter makes *repetitions* of the same call
  /// jitter independently.
  Transfer PlanCall(const SiteParams& site, size_t call_hash);

  /// Records a completed transfer of `bytes` answer bytes to `site`,
  /// accumulating byte counts and financial charges.
  /// Returns the financial charge for this call.
  double RecordTransfer(const SiteParams& site, size_t bytes,
                        double network_ms);

  /// Records a failed (unavailable) call.
  void RecordFailure();

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

 private:
  uint64_t seed_;
  uint64_t sequence_ = 0;
  NetworkStats stats_;
};

}  // namespace hermes::net

#endif  // HERMES_NET_NETWORK_H_
