#ifndef HERMES_NET_NETWORK_H_
#define HERMES_NET_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "net/site.h"
#include "obs/metrics.h"

namespace hermes::net {

/// Aggregate traffic statistics of the network simulator — a plain
/// snapshot view over the simulator's live obs counters (the one source of
/// truth, also exposable through a MetricsRegistry).
struct NetworkStats {
  uint64_t calls = 0;           ///< Remote calls attempted.
  uint64_t failures = 0;        ///< Calls lost to site unavailability.
  uint64_t bytes_transferred = 0;
  double total_charge = 0.0;    ///< Financial charges accrued.
  double total_network_ms = 0.0;
};

/// Deterministic wide-area-network simulator.
///
/// The simulator never sleeps: it *plans* the latency profile of a remote
/// call (connection, request flight, per-byte transfer, jitter,
/// availability) and the caller folds those times into the simulated
/// CallOutput latencies. All randomness is derived from the constructor
/// seed plus the call hash, so a given experiment replays identically.
///
/// Concurrency: all methods are thread-safe. Statistics are relaxed
/// atomics merged into a snapshot by `stats()`. Randomness comes in two
/// flavours:
///  - the legacy shared stream (two-argument `PlanCall`), which folds a
///    global sequence counter into each draw — bit-identical to the
///    historical single-threaded behaviour, but draw values depend on the
///    global interleaving of calls;
///  - caller-owned streams (three-argument `PlanCall`), where the caller
///    passes an `Rng` it seeded per query via `Rng::StreamSeed(seed(),
///    query_id)` — draws then depend only on that stream's own history,
///    so per-query latencies replay identically at any thread count.
class NetworkSimulator {
 public:
  explicit NetworkSimulator(uint64_t seed = 1996) : seed_(seed) {}

  NetworkSimulator(const NetworkSimulator&) = delete;
  NetworkSimulator& operator=(const NetworkSimulator&) = delete;

  /// The planned latency profile of shipping one call to `site`.
  struct Transfer {
    bool available = true;
    double request_ms = 0.0;       ///< connect + request flight time.
    double response_lag_ms = 0.0;  ///< Return flight time (first byte).
    double per_byte_ms = 0.0;      ///< Transfer cost per response byte.
    double penalty_ms = 0.0;       ///< Retry timeout when unavailable.
  };

  /// Plans a call using the legacy shared stream. `call_hash`
  /// individualizes jitter per distinct call; an internal sequence counter
  /// makes *repetitions* of the same call jitter independently.
  /// Counts the call in the global statistics.
  Transfer PlanCall(const SiteParams& site, size_t call_hash);

  /// Plans a call drawing jitter/availability from the caller's own
  /// `stream` (per-query determinism; see class comment). The shared
  /// sequence counter is not consulted or advanced.
  /// Counts the call in the global statistics.
  Transfer PlanCall(const SiteParams& site, size_t call_hash, Rng& stream);

  /// PlanCall without the global call count: for callers that decide only
  /// *after* planning whether the call actually ships (a single-flight
  /// follower adopts its leader's execution and never ships its own
  /// request). Such callers invoke RecordCall() for the calls that do go
  /// out. Draw sequences are identical to the counting overloads.
  Transfer PlanCallUncounted(const SiteParams& site, size_t call_hash);
  Transfer PlanCallUncounted(const SiteParams& site, size_t call_hash,
                             Rng& stream);

  /// Counts one attempted remote call in the global statistics (already
  /// included in PlanCall; pairs with the Uncounted variants).
  void RecordCall();

  /// The financial charge of shipping `bytes` from `site` — the fee
  /// formula RecordTransfer accrues, for callers that need the per-query
  /// figure without touching the global counters.
  static double ChargeFor(const SiteParams& site, size_t bytes);

  /// Records a completed transfer of `bytes` answer bytes to `site`,
  /// accumulating byte counts and financial charges.
  /// Returns the financial charge for this call.
  double RecordTransfer(const SiteParams& site, size_t bytes,
                        double network_ms);

  /// Records a failed (unavailable) call.
  void RecordFailure();

  /// A coherent-enough snapshot of the counters (each counter is
  /// individually exact; the set is not read atomically as a whole).
  NetworkStats stats() const;
  void ResetStats();

  /// Registers the live counters with `registry` under hermes_net_* names.
  /// The counters exist (and count) whether or not this is ever called.
  void BindMetrics(obs::MetricsRegistry& registry);

  /// The base seed, for deriving per-query streams via Rng::StreamSeed.
  uint64_t seed() const { return seed_; }

 private:
  /// Draws one transfer plan for `site` from `rng` (seeded by the caller).
  Transfer PlanWith(const SiteParams& site, Rng& rng);

  uint64_t seed_;
  std::atomic<uint64_t> sequence_{0};

  // Live statistics: sharded lock-light counters; stats() merges them into
  // a NetworkStats snapshot, BindMetrics exposes them by reference.
  std::shared_ptr<obs::Counter> calls_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> failures_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> bytes_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::FloatCounter> charge_ =
      std::make_shared<obs::FloatCounter>();
  std::shared_ptr<obs::FloatCounter> network_ms_ =
      std::make_shared<obs::FloatCounter>();
};

}  // namespace hermes::net

#endif  // HERMES_NET_NETWORK_H_
