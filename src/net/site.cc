#include "net/site.h"

namespace hermes::net {

SiteParams LocalSite() {
  SiteParams p;
  p.name = "local";
  p.connect_ms = 0.05;
  p.rtt_ms = 0.1;
  p.bytes_per_ms = 1e6;
  p.jitter = 0.0;
  return p;
}

SiteParams UsaSite(std::string name) {
  SiteParams p;
  p.name = std::move(name);
  p.connect_ms = 900.0;
  p.rtt_ms = 160.0;
  p.bytes_per_ms = 2.0;  // ~2 KB/s effective mid-90s WAN throughput
  p.jitter = 0.10;
  return p;
}

SiteParams ItalySite(std::string name) {
  SiteParams p;
  p.name = std::move(name);
  p.connect_ms = 42000.0;  // transatlantic dial-through, 1996-style
  p.rtt_ms = 1400.0;
  p.bytes_per_ms = 0.6;
  p.jitter = 0.15;
  return p;
}

SiteParams AustraliaSite(std::string name) {
  SiteParams p;
  p.name = std::move(name);
  p.connect_ms = 8000.0;
  p.rtt_ms = 900.0;
  p.bytes_per_ms = 1.0;
  p.jitter = 0.12;
  p.charge_per_call = 0.25;
  p.charge_per_kb = 0.02;
  return p;
}

}  // namespace hermes::net
