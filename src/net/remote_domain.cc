#include "net/remote_domain.h"

#include "net/network_interceptor.h"

namespace hermes::net {

Result<CallOutput> RemoteDomain::Run(const DomainCall& call) {
  NetworkSimulator::Transfer transfer = network_->PlanCall(site_, call.Hash());
  if (!transfer.available) {
    last_penalty_ms_ = transfer.penalty_ms;
    network_->RecordFailure();
    return Status::Unavailable("site '" + site_.name +
                               "' is temporarily unavailable for " +
                               call.ToString());
  }
  last_penalty_ms_ = 0.0;

  HERMES_ASSIGN_OR_RETURN(CallOutput inner_out, inner_->Run(call));

  size_t total_bytes = AnswerSetByteSize(inner_out.answers);
  CallOutput out = ComposeRemoteLatency(transfer, std::move(inner_out));

  double network_ms = out.all_ms;
  network_->RecordTransfer(site_, total_bytes, network_ms);
  return out;
}

Result<CostVector> RemoteDomain::EstimateCost(
    const lang::DomainCallSpec& pattern) const {
  HERMES_ASSIGN_OR_RETURN(CostVector inner_cost,
                          inner_->EstimateCost(pattern));
  return DecorateRemoteEstimate(site_, inner_cost);
}

std::shared_ptr<RemoteDomain> MakeRemoteDomain(
    std::shared_ptr<Domain> inner, SiteParams site,
    std::shared_ptr<NetworkSimulator> network) {
  return std::make_shared<RemoteDomain>(std::move(inner), std::move(site),
                                        std::move(network));
}

}  // namespace hermes::net
