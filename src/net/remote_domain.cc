#include "net/remote_domain.h"

namespace hermes::net {

Result<CallOutput> RemoteDomain::Run(const DomainCall& call) {
  NetworkSimulator::Transfer transfer = network_->PlanCall(site_, call.Hash());
  if (!transfer.available) {
    last_penalty_ms_ = transfer.penalty_ms;
    network_->RecordFailure();
    return Status::Unavailable("site '" + site_.name +
                               "' is temporarily unavailable for " +
                               call.ToString());
  }
  last_penalty_ms_ = 0.0;

  HERMES_ASSIGN_OR_RETURN(CallOutput inner_out, inner_->Run(call));

  size_t total_bytes = AnswerSetByteSize(inner_out.answers);
  size_t first_bytes =
      inner_out.answers.empty() ? 0 : inner_out.answers[0].ApproxByteSize();

  CallOutput out;
  out.first_ms = transfer.request_ms + inner_out.first_ms +
                 transfer.response_lag_ms +
                 transfer.per_byte_ms * static_cast<double>(first_bytes);
  out.all_ms = transfer.request_ms + inner_out.all_ms +
               transfer.response_lag_ms +
               transfer.per_byte_ms * static_cast<double>(total_bytes);
  if (out.first_ms > out.all_ms) out.first_ms = out.all_ms;
  out.answers = std::move(inner_out.answers);

  double network_ms = out.all_ms;
  network_->RecordTransfer(site_, total_bytes, network_ms);
  return out;
}

Result<CostVector> RemoteDomain::EstimateCost(
    const lang::DomainCallSpec& pattern) const {
  HERMES_ASSIGN_OR_RETURN(CostVector inner_cost,
                          inner_->EstimateCost(pattern));
  // Add expected (jitter-free) network time on top of the inner model.
  double request = site_.connect_ms + site_.rtt_ms;
  double per_byte = site_.bytes_per_ms > 0 ? 1.0 / site_.bytes_per_ms : 0.0;
  // Without knowing answer sizes, assume ~64 bytes per answer.
  double transfer = per_byte * 64.0 * inner_cost.cardinality;
  return CostVector(inner_cost.t_first_ms + request + per_byte * 64.0,
                    inner_cost.t_all_ms + request + transfer,
                    inner_cost.cardinality);
}

std::shared_ptr<RemoteDomain> MakeRemoteDomain(
    std::shared_ptr<Domain> inner, SiteParams site,
    std::shared_ptr<NetworkSimulator> network) {
  return std::make_shared<RemoteDomain>(std::move(inner), std::move(site),
                                        std::move(network));
}

}  // namespace hermes::net
