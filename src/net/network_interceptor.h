#ifndef HERMES_NET_NETWORK_INTERCEPTOR_H_
#define HERMES_NET_NETWORK_INTERCEPTOR_H_

#include <atomic>
#include <memory>
#include <string>

#include "domain/pipeline.h"
#include "net/faults/fault_plan.h"
#include "net/network.h"
#include "net/site.h"
#include "obs/metrics.h"

namespace hermes::net {

/// Folds a planned transfer into an inner call's latency profile:
///   first_ms = connect + request flight + inner first_ms
///            + return flight + first answer transfer
///   all_ms   = connect + request flight + inner all_ms
///            + return flight + full answer-set transfer
/// Shared by RemoteDomain (the legacy wrapper) and NetworkInterceptor so
/// both paths produce bit-identical simulated times.
CallOutput ComposeRemoteLatency(const NetworkSimulator::Transfer& transfer,
                                CallOutput inner_out);

/// The network layer of the call pipeline: plans each call's transfer over
/// a simulated wide-area link, composes the latency profile onto the inner
/// result, and attributes traffic (calls, bytes, charges, failures) to the
/// query via CallContext::metrics — in addition to the simulator's global
/// aggregate statistics.
///
/// When the site is (probabilistically) unavailable the call fails with
/// Status::Unavailable after charging the retry timeout, which a cache
/// layer above can mask with cached results — the paper's "temporary
/// unavailability" motivation.
class NetworkInterceptor : public CallInterceptor {
 public:
  NetworkInterceptor(SiteParams site, std::shared_ptr<NetworkSimulator> network)
      : site_(std::move(site)), network_(std::move(network)) {}

  const std::string& name() const override;

  Result<CallOutput> Intercept(CallContext& ctx, const DomainCall& call,
                               const Next& next) override;

  /// Cost estimation decorates the inner model with expected (jitter-free)
  /// network time — same formula as RemoteDomain::EstimateCost.
  Result<CostVector> EstimateCost(const lang::DomainCallSpec& pattern,
                                  const EstimateNext& next) const override;

  const SiteParams& site() const { return site_; }
  /// Mutable link parameters — used by failure-injection scenarios to take
  /// a site down (set availability to 0) or degrade it mid-run.
  SiteParams& mutable_site() { return site_; }

  /// Installs (or clears) a deterministic fault-injection plan: each call
  /// attempt first consults `faults` (outage windows, flakiness, latency
  /// spikes, slow responses) before the simulator's own availability draw.
  /// Wiring-time only; Mediator::LoadFaultPlan fans one injector out to
  /// every registered link.
  void set_fault_injector(std::shared_ptr<const FaultInjector> faults) {
    faults_ = std::move(faults);
  }
  const std::shared_ptr<const FaultInjector>& fault_injector() const {
    return faults_;
  }

  /// Installs (or clears) the shared cross-query single-flight registry.
  /// Wiring-time only; Mediator fans one registry out to every link. While
  /// the registry is enabled, concurrent identical calls to this site
  /// coalesce onto one leader execution (see SingleFlightRegistry).
  void set_single_flight(std::shared_ptr<SingleFlightRegistry> registry) {
    single_flight_ = std::move(registry);
  }

  /// Simulated time the last call (by any thread) lost to an unavailable
  /// site (0 when the last call succeeded).
  double last_unavailable_penalty_ms() const {
    return last_penalty_ms_.load(std::memory_order_relaxed);
  }

  /// Registers this link's per-site counters and hop-latency histogram
  /// with `registry`, labeled {site=<site name>, domain=<domain>} (the
  /// domain label keeps two domains on one site distinct; empty omits it).
  /// Counting happens whether or not this is ever called.
  void BindMetrics(obs::MetricsRegistry& registry,
                   const std::string& domain = "");

 private:
  SiteParams site_;
  std::shared_ptr<NetworkSimulator> network_;
  std::shared_ptr<const FaultInjector> faults_;
  std::shared_ptr<SingleFlightRegistry> single_flight_;
  std::atomic<double> last_penalty_ms_{0.0};

  // Per-site slice of the traffic, mirrored into the registry on bind.
  std::shared_ptr<obs::Counter> site_calls_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> site_failures_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> site_bytes_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::FloatCounter> site_charge_ =
      std::make_shared<obs::FloatCounter>();
  std::shared_ptr<obs::Histogram> hop_sim_ms_ = std::make_shared<obs::Histogram>(
      obs::Histogram::ExponentialBounds(1.0, 2.0, 16));
};

/// Expected (jitter-free) network cost decoration shared by the interceptor
/// and RemoteDomain: request/response flight plus ~64 bytes per answer.
CostVector DecorateRemoteEstimate(const SiteParams& site,
                                  const CostVector& inner_cost);

}  // namespace hermes::net

#endif  // HERMES_NET_NETWORK_INTERCEPTOR_H_
