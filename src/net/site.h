#ifndef HERMES_NET_SITE_H_
#define HERMES_NET_SITE_H_

#include <string>

#include "common/sim_costs.h"

namespace hermes::net {

/// Link characteristics of one remote site hosting a domain.
///
/// Values are calibrated so the preset sites reproduce the latency regimes
/// of the paper's Section 8 testbed (mid-1990s Internet): nearby US sites
/// cost ~1–2 s per remote call, the Italian site tens of seconds.
struct SiteParams {
  std::string name;

  double connect_ms = 5.0;     ///< Connection setup overhead per call.
  double rtt_ms = 10.0;        ///< Round-trip time.
  double bytes_per_ms = 1000;  ///< Transfer bandwidth.
  double jitter = 0.10;        ///< Relative jitter on all network times.

  double charge_per_call = 0.0;  ///< Financial access fee per call.
  double charge_per_kb = 0.0;    ///< Financial fee per KB transferred.

  double availability = 1.0;  ///< Per-call probability of reachability.
  /// Time lost discovering unavailability (single-sourced with the
  /// simulation cost constants so executor, resilience layer and estimator
  /// charge the same penalty).
  double retry_timeout_ms = kDefaultRetryTimeoutMs;
};

/// Same-machine "site": negligible latency.
SiteParams LocalSite();

/// A site elsewhere in the USA (the paper's Maryland/Cornell/Bucknell
/// class): ~1 s connection, moderate bandwidth.
SiteParams UsaSite(std::string name = "usa");

/// The paper's Italian site: very high connection overhead and a thin,
/// jittery transatlantic link (tens of seconds per call).
SiteParams ItalySite(std::string name = "italy");

/// An intercontinental site with an access fee, for charge-accounting
/// scenarios (the paper's Australia site).
SiteParams AustraliaSite(std::string name = "australia");

}  // namespace hermes::net

#endif  // HERMES_NET_SITE_H_
