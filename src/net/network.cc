#include "net/network.h"

#include <functional>

namespace hermes::net {

namespace {

/// Adds `delta` to an atomic double (no fetch_add for doubles pre-C++20
/// on all toolchains; a CAS loop is portable and uncontended in practice).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

NetworkSimulator::Transfer NetworkSimulator::PlanWith(const SiteParams& site,
                                                      Rng& rng) {
  Transfer t;
  stats_.calls.fetch_add(1, std::memory_order_relaxed);

  if (site.availability < 1.0 && rng.NextDouble() >= site.availability) {
    t.available = false;
    t.penalty_ms = site.retry_timeout_ms;
    return t;
  }

  auto jittered = [&rng, &site](double base) {
    return base * (1.0 + site.jitter * (2.0 * rng.NextDouble() - 1.0));
  };
  t.request_ms = jittered(site.connect_ms) + jittered(site.rtt_ms / 2.0);
  t.response_lag_ms = jittered(site.rtt_ms / 2.0);
  t.per_byte_ms =
      site.bytes_per_ms > 0 ? jittered(1.0 / site.bytes_per_ms) : 0.0;
  return t;
}

NetworkSimulator::Transfer NetworkSimulator::PlanCall(const SiteParams& site,
                                                      size_t call_hash) {
  // fetch_add(1) + 1 reproduces the historical pre-increment values, so
  // single-threaded draw sequences stay bit-identical to the old code.
  uint64_t seq = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  Rng rng(seed_ ^ call_hash ^ std::hash<std::string>()(site.name) ^
          (seq * 0x2545F4914F6CDD1DULL));
  return PlanWith(site, rng);
}

NetworkSimulator::Transfer NetworkSimulator::PlanCall(const SiteParams& site,
                                                      size_t call_hash,
                                                      Rng& stream) {
  // Per-query stream: fold the call hash and site into the draw via a
  // sub-stream so distinct calls within the query jitter independently,
  // while the sequence within one (call, site) pair follows the caller's
  // stream — untouched by other queries.
  Rng rng(Rng::StreamSeed(
      stream.NextU64(),
      call_hash ^ std::hash<std::string>()(site.name)));
  return PlanWith(site, rng);
}

double NetworkSimulator::RecordTransfer(const SiteParams& site, size_t bytes,
                                        double network_ms) {
  stats_.bytes_transferred.fetch_add(bytes, std::memory_order_relaxed);
  AtomicAdd(stats_.total_network_ms, network_ms);
  double charge = site.charge_per_call +
                  site.charge_per_kb * (static_cast<double>(bytes) / 1024.0);
  AtomicAdd(stats_.total_charge, charge);
  return charge;
}

void NetworkSimulator::RecordFailure() {
  stats_.failures.fetch_add(1, std::memory_order_relaxed);
}

NetworkStats NetworkSimulator::stats() const {
  NetworkStats snapshot;
  snapshot.calls = stats_.calls.load(std::memory_order_relaxed);
  snapshot.failures = stats_.failures.load(std::memory_order_relaxed);
  snapshot.bytes_transferred =
      stats_.bytes_transferred.load(std::memory_order_relaxed);
  snapshot.total_charge = stats_.total_charge.load(std::memory_order_relaxed);
  snapshot.total_network_ms =
      stats_.total_network_ms.load(std::memory_order_relaxed);
  return snapshot;
}

void NetworkSimulator::ResetStats() {
  stats_.calls.store(0, std::memory_order_relaxed);
  stats_.failures.store(0, std::memory_order_relaxed);
  stats_.bytes_transferred.store(0, std::memory_order_relaxed);
  stats_.total_charge.store(0.0, std::memory_order_relaxed);
  stats_.total_network_ms.store(0.0, std::memory_order_relaxed);
}

}  // namespace hermes::net
