#include "net/network.h"

#include <functional>

namespace hermes::net {

NetworkSimulator::Transfer NetworkSimulator::PlanWith(const SiteParams& site,
                                                      Rng& rng) {
  Transfer t;

  if (site.availability < 1.0 && rng.NextDouble() >= site.availability) {
    t.available = false;
    t.penalty_ms = site.retry_timeout_ms;
    return t;
  }

  auto jittered = [&rng, &site](double base) {
    return base * (1.0 + site.jitter * (2.0 * rng.NextDouble() - 1.0));
  };
  t.request_ms = jittered(site.connect_ms) + jittered(site.rtt_ms / 2.0);
  t.response_lag_ms = jittered(site.rtt_ms / 2.0);
  t.per_byte_ms =
      site.bytes_per_ms > 0 ? jittered(1.0 / site.bytes_per_ms) : 0.0;
  return t;
}

NetworkSimulator::Transfer NetworkSimulator::PlanCall(const SiteParams& site,
                                                      size_t call_hash) {
  calls_->Add(1);
  return PlanCallUncounted(site, call_hash);
}

NetworkSimulator::Transfer NetworkSimulator::PlanCall(const SiteParams& site,
                                                      size_t call_hash,
                                                      Rng& stream) {
  calls_->Add(1);
  return PlanCallUncounted(site, call_hash, stream);
}

NetworkSimulator::Transfer NetworkSimulator::PlanCallUncounted(
    const SiteParams& site, size_t call_hash) {
  // fetch_add(1) + 1 reproduces the historical pre-increment values, so
  // single-threaded draw sequences stay bit-identical to the old code.
  uint64_t seq = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  Rng rng(seed_ ^ call_hash ^ std::hash<std::string>()(site.name) ^
          (seq * 0x2545F4914F6CDD1DULL));
  return PlanWith(site, rng);
}

NetworkSimulator::Transfer NetworkSimulator::PlanCallUncounted(
    const SiteParams& site, size_t call_hash, Rng& stream) {
  // Per-query stream: fold the call hash and site into the draw via a
  // sub-stream so distinct calls within the query jitter independently,
  // while the sequence within one (call, site) pair follows the caller's
  // stream — untouched by other queries.
  Rng rng(Rng::StreamSeed(
      stream.NextU64(),
      call_hash ^ std::hash<std::string>()(site.name)));
  return PlanWith(site, rng);
}

void NetworkSimulator::RecordCall() { calls_->Add(1); }

double NetworkSimulator::ChargeFor(const SiteParams& site, size_t bytes) {
  return site.charge_per_call +
         site.charge_per_kb * (static_cast<double>(bytes) / 1024.0);
}

double NetworkSimulator::RecordTransfer(const SiteParams& site, size_t bytes,
                                        double network_ms) {
  bytes_->Add(bytes);
  network_ms_->Add(network_ms);
  double charge = ChargeFor(site, bytes);
  charge_->Add(charge);
  return charge;
}

void NetworkSimulator::RecordFailure() { failures_->Add(1); }

NetworkStats NetworkSimulator::stats() const {
  NetworkStats snapshot;
  snapshot.calls = calls_->Value();
  snapshot.failures = failures_->Value();
  snapshot.bytes_transferred = bytes_->Value();
  snapshot.total_charge = charge_->Value();
  snapshot.total_network_ms = network_ms_->Value();
  return snapshot;
}

void NetworkSimulator::ResetStats() {
  calls_->Reset();
  failures_->Reset();
  bytes_->Reset();
  charge_->Reset();
  network_ms_->Reset();
}

void NetworkSimulator::BindMetrics(obs::MetricsRegistry& registry) {
  registry.Register("hermes_net_calls_total",
                    "Remote calls attempted across all sites",
                    {}, calls_);
  registry.Register("hermes_net_failures_total",
                    "Remote calls lost to site unavailability", {}, failures_);
  registry.Register("hermes_net_bytes_total",
                    "Answer bytes shipped over simulated links", {}, bytes_);
  registry.Register("hermes_net_charge_total",
                    "Financial access fees accrued (simulated)", {}, charge_);
  registry.Register("hermes_net_sim_ms_total",
                    "Simulated network milliseconds consumed", {}, network_ms_);
}

}  // namespace hermes::net
