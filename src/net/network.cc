#include "net/network.h"

#include <functional>

namespace hermes::net {

NetworkSimulator::Transfer NetworkSimulator::PlanCall(const SiteParams& site,
                                                      size_t call_hash) {
  Rng rng(seed_ ^ call_hash ^ std::hash<std::string>()(site.name) ^
          (++sequence_ * 0x2545F4914F6CDD1DULL));
  Transfer t;
  ++stats_.calls;

  if (site.availability < 1.0 && rng.NextDouble() >= site.availability) {
    t.available = false;
    t.penalty_ms = site.retry_timeout_ms;
    return t;
  }

  auto jittered = [&rng, &site](double base) {
    return base * (1.0 + site.jitter * (2.0 * rng.NextDouble() - 1.0));
  };
  t.request_ms = jittered(site.connect_ms) + jittered(site.rtt_ms / 2.0);
  t.response_lag_ms = jittered(site.rtt_ms / 2.0);
  t.per_byte_ms =
      site.bytes_per_ms > 0 ? jittered(1.0 / site.bytes_per_ms) : 0.0;
  return t;
}

double NetworkSimulator::RecordTransfer(const SiteParams& site, size_t bytes,
                                        double network_ms) {
  stats_.bytes_transferred += bytes;
  stats_.total_network_ms += network_ms;
  double charge = site.charge_per_call +
                  site.charge_per_kb * (static_cast<double>(bytes) / 1024.0);
  stats_.total_charge += charge;
  return charge;
}

void NetworkSimulator::RecordFailure() { ++stats_.failures; }

}  // namespace hermes::net
