#ifndef HERMES_NET_REMOTE_DOMAIN_H_
#define HERMES_NET_REMOTE_DOMAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "domain/domain.h"
#include "net/network.h"
#include "net/site.h"

namespace hermes::net {

/// Wraps any local Domain behind a simulated wide-area link.
///
/// This is the self-contained Domain-wrapper form of the network layer,
/// kept for direct construction (tests, ad-hoc registries). The mediator's
/// query path uses NetworkInterceptor inside a PipelineDomain instead,
/// which shares the exact latency composition (ComposeRemoteLatency) and
/// additionally attributes traffic to the querying CallContext.
///
/// The returned latency profile composes:
///   first_ms = connect + request flight + inner first_ms
///            + return flight + first answer transfer
///   all_ms   = connect + request flight + inner all_ms
///            + return flight + full answer-set transfer
///
/// When the site is (probabilistically) unavailable the call fails with
/// Status::Unavailable after charging the retry timeout, which the CIM
/// layer can mask with cached results — the paper's "temporary
/// unavailability" motivation.
class RemoteDomain : public Domain {
 public:
  RemoteDomain(std::shared_ptr<Domain> inner, SiteParams site,
               std::shared_ptr<NetworkSimulator> network)
      : inner_(std::move(inner)),
        site_(std::move(site)),
        network_(std::move(network)),
        name_(inner_->name() + "@" + site_.name) {}

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return inner_->Functions();
  }

  Result<CallOutput> Run(const DomainCall& call) override;

  /// Cost estimation passes through to the wrapped domain, with network
  /// time added (the wrapped model knows nothing about the link).
  bool HasCostModel() const override { return inner_->HasCostModel(); }
  Result<CostVector> EstimateCost(
      const lang::DomainCallSpec& pattern) const override;

  const SiteParams& site() const { return site_; }
  /// Mutable link parameters — used by failure-injection scenarios to take
  /// a site down (set availability to 0) or degrade it mid-run.
  SiteParams& mutable_site() { return site_; }
  Domain* inner() { return inner_.get(); }

  /// Simulated time the last Run() lost to an unavailable site (0 when the
  /// last call succeeded). Exposed so callers can account the penalty.
  double last_unavailable_penalty_ms() const { return last_penalty_ms_; }

 private:
  std::shared_ptr<Domain> inner_;
  SiteParams site_;
  std::shared_ptr<NetworkSimulator> network_;
  std::string name_;
  double last_penalty_ms_ = 0.0;
};

/// Convenience factory.
std::shared_ptr<RemoteDomain> MakeRemoteDomain(
    std::shared_ptr<Domain> inner, SiteParams site,
    std::shared_ptr<NetworkSimulator> network);

}  // namespace hermes::net

#endif  // HERMES_NET_REMOTE_DOMAIN_H_
