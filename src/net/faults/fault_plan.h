#ifndef HERMES_NET_FAULTS_FAULT_PLAN_H_
#define HERMES_NET_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"

namespace hermes::net {

/// One fault-injection rule. Rules are matched against a call's site and
/// the query's simulated clock; every probabilistic draw comes from a
/// stream derived via Rng::StreamSeed from (plan seed, query id, call
/// hash, attempt), so a plan's decisions are a pure function of those four
/// values — independent of thread interleaving and of the network
/// simulator's own jitter stream.
struct FaultRule {
  enum class Kind {
    kOutage,   ///< Site unreachable inside [from_ms, until_ms).
    kFlaky,    ///< Each attempt fails with `probability`.
    kLatency,  ///< Network times multiplied by `factor` inside the window.
    kSlow,     ///< Response delayed by `extra_ms` with `probability`
               ///< (deadline-exceeding injection).
  };

  Kind kind = Kind::kOutage;
  /// Site the rule applies to; "*" matches every site.
  std::string site = "*";
  /// Window on the query's simulated clock (each query's timeline starts
  /// at 0). Default: always active.
  double from_ms = 0.0;
  double until_ms = std::numeric_limits<double>::infinity();
  double probability = 1.0;  ///< Flaky/slow draw probability.
  double factor = 1.0;       ///< Latency multiplier (kLatency).
  double extra_ms = 0.0;     ///< Added response delay (kSlow).

  std::string ToString() const;
};

/// A deterministic fault-injection plan: a seed plus an ordered rule list.
///
/// Text spec grammar (one rule per line; '#' starts a comment):
///
///   seed 42
///   outage  site=umd from=0 until=5000
///   flaky   site=cornell p=0.25
///   latency site=* factor=3 from=1000 until=2000
///   slow    site=umd extra_ms=40000 p=0.5
///
/// Every keyword argument is optional except `site`; omitted window bounds
/// mean "always", omitted p means 1.0.
struct FaultPlan {
  uint64_t seed = 0x51713;  ///< Base seed of the plan's RNG streams.
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  /// Parses the text spec above.
  static Result<FaultPlan> Parse(const std::string& text);
  /// Reads and parses a spec file (the --faults=FILE payload).
  static Result<FaultPlan> Load(const std::string& path);

  /// Renders the plan back in spec syntax (one rule per line).
  std::string ToString() const;
};

/// What the injector decided for one call attempt.
struct FaultDecision {
  bool unavailable = false;       ///< Fail this attempt.
  const char* cause = "";         ///< "outage" or "flaky" when unavailable.
  double latency_factor = 1.0;    ///< Multiplier on planned network times.
  double extra_response_ms = 0.0; ///< Added response lag (slow injection).
};

/// Evaluates a FaultPlan for individual call attempts. Immutable and
/// thread-safe: Decide() draws from a stream it derives per call attempt,
/// never from shared state.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const { return plan_; }

  /// Decides the fate of attempt `attempt` of the call identified by
  /// `call_hash` from query `query_id` against `site`, at simulated time
  /// `now_ms` on the query's clock. Deterministic in its arguments.
  FaultDecision Decide(const std::string& site, uint64_t query_id,
                       size_t call_hash, uint64_t attempt,
                       double now_ms) const;

 private:
  FaultPlan plan_;
};

}  // namespace hermes::net

#endif  // HERMES_NET_FAULTS_FAULT_PLAN_H_
