#include "net/faults/fault_plan.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/io.h"
#include "common/rng.h"

namespace hermes::net {

namespace {

const char* KindName(FaultRule::Kind kind) {
  switch (kind) {
    case FaultRule::Kind::kOutage: return "outage";
    case FaultRule::Kind::kFlaky: return "flaky";
    case FaultRule::Kind::kLatency: return "latency";
    case FaultRule::Kind::kSlow: return "slow";
  }
  return "unknown";
}

std::string FormatMs(double ms) {
  char buf[32];
  if (ms == static_cast<double>(static_cast<long long>(ms))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(ms));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", ms);
  }
  return buf;
}

Status ParseDouble(const std::string& token, const std::string& value,
                   size_t line_no, double* out) {
  try {
    size_t used = 0;
    *out = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
  } catch (const std::exception&) {
    return Status::ParseError("fault spec line " + std::to_string(line_no) +
                              ": bad number '" + value + "' in '" + token +
                              "'");
  }
  return Status::OK();
}

}  // namespace

std::string FaultRule::ToString() const {
  std::string out = KindName(kind);
  out += " site=" + site;
  if (kind == Kind::kFlaky || kind == Kind::kSlow) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " p=%g", probability);
    out += buf;
  }
  if (kind == Kind::kLatency) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " factor=%g", factor);
    out += buf;
  }
  if (kind == Kind::kSlow) {
    out += " extra_ms=" + FormatMs(extra_ms);
  }
  if (from_ms > 0.0) out += " from=" + FormatMs(from_ms);
  if (std::isfinite(until_ms)) out += " until=" + FormatMs(until_ms);
  return out;
}

std::string FaultPlan::ToString() const {
  std::string out = "seed " + std::to_string(seed) + "\n";
  for (const FaultRule& rule : rules) out += rule.ToString() + "\n";
  return out;
}

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream lines(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream words(line);
    std::string head;
    if (!(words >> head)) continue;  // blank / comment-only line

    if (head == "seed") {
      std::string value;
      if (!(words >> value)) {
        return Status::ParseError("fault spec line " +
                                  std::to_string(line_no) +
                                  ": seed needs a value");
      }
      try {
        plan.seed = std::stoull(value);
      } catch (const std::exception&) {
        return Status::ParseError("fault spec line " +
                                  std::to_string(line_no) + ": bad seed '" +
                                  value + "'");
      }
      continue;
    }

    FaultRule rule;
    if (head == "outage") {
      rule.kind = FaultRule::Kind::kOutage;
    } else if (head == "flaky") {
      rule.kind = FaultRule::Kind::kFlaky;
    } else if (head == "latency") {
      rule.kind = FaultRule::Kind::kLatency;
    } else if (head == "slow") {
      rule.kind = FaultRule::Kind::kSlow;
    } else {
      return Status::ParseError("fault spec line " + std::to_string(line_no) +
                                ": unknown rule '" + head +
                                "' (want outage/flaky/latency/slow/seed)");
    }

    bool saw_site = false;
    std::string token;
    while (words >> token) {
      size_t eq = token.find('=');
      if (eq == std::string::npos) {
        return Status::ParseError("fault spec line " +
                                  std::to_string(line_no) + ": '" + token +
                                  "' is not key=value");
      }
      std::string key = token.substr(0, eq);
      std::string value = token.substr(eq + 1);
      if (key == "site") {
        rule.site = value;
        saw_site = !value.empty();
      } else if (key == "from") {
        HERMES_RETURN_IF_ERROR(
            ParseDouble(token, value, line_no, &rule.from_ms));
      } else if (key == "until") {
        HERMES_RETURN_IF_ERROR(
            ParseDouble(token, value, line_no, &rule.until_ms));
      } else if (key == "p") {
        HERMES_RETURN_IF_ERROR(
            ParseDouble(token, value, line_no, &rule.probability));
      } else if (key == "factor") {
        HERMES_RETURN_IF_ERROR(ParseDouble(token, value, line_no, &rule.factor));
      } else if (key == "extra_ms") {
        HERMES_RETURN_IF_ERROR(
            ParseDouble(token, value, line_no, &rule.extra_ms));
      } else {
        return Status::ParseError("fault spec line " +
                                  std::to_string(line_no) +
                                  ": unknown key '" + key + "'");
      }
    }
    if (!saw_site) {
      return Status::ParseError("fault spec line " + std::to_string(line_no) +
                                ": rule needs site=<name|*>");
    }
    if (rule.probability < 0.0 || rule.probability > 1.0) {
      return Status::ParseError("fault spec line " + std::to_string(line_no) +
                                ": p must be in [0, 1]");
    }
    if (rule.factor <= 0.0) {
      return Status::ParseError("fault spec line " + std::to_string(line_no) +
                                ": factor must be > 0");
    }
    if (rule.until_ms <= rule.from_ms) {
      return Status::ParseError("fault spec line " + std::to_string(line_no) +
                                ": empty window (until <= from)");
    }
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

Result<FaultPlan> FaultPlan::Load(const std::string& path) {
  HERMES_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return Parse(text);
}

FaultDecision FaultInjector::Decide(const std::string& site,
                                    uint64_t query_id, size_t call_hash,
                                    uint64_t attempt, double now_ms) const {
  FaultDecision decision;
  // Stream identity of this attempt: (plan seed, query, call, attempt).
  // Each rule then mixes in its own index, so a rule's draw is unaffected
  // by how many other rules precede it in the plan.
  uint64_t attempt_seed = Rng::StreamSeed(
      Rng::StreamSeed(Rng::StreamSeed(plan_.seed, query_id),
                      static_cast<uint64_t>(call_hash)),
      attempt);
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.site != "*" && rule.site != site) continue;
    if (now_ms < rule.from_ms || now_ms >= rule.until_ms) continue;
    switch (rule.kind) {
      case FaultRule::Kind::kOutage:
        if (!decision.unavailable) {
          decision.unavailable = true;
          decision.cause = "outage";
        }
        break;
      case FaultRule::Kind::kFlaky: {
        Rng rng(Rng::StreamSeed(attempt_seed, i));
        if (!decision.unavailable && rng.NextDouble() < rule.probability) {
          decision.unavailable = true;
          decision.cause = "flaky";
        }
        break;
      }
      case FaultRule::Kind::kLatency:
        decision.latency_factor *= rule.factor;
        break;
      case FaultRule::Kind::kSlow: {
        Rng rng(Rng::StreamSeed(attempt_seed, i));
        if (rng.NextDouble() < rule.probability) {
          decision.extra_response_ms += rule.extra_ms;
        }
        break;
      }
    }
  }
  return decision;
}

}  // namespace hermes::net
