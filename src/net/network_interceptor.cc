#include "net/network_interceptor.h"

#include <utility>

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace hermes::net {

CallOutput ComposeRemoteLatency(const NetworkSimulator::Transfer& transfer,
                                CallOutput inner_out) {
  size_t total_bytes = AnswerSetByteSize(inner_out.answers);
  size_t first_bytes =
      inner_out.answers.empty() ? 0 : inner_out.answers[0].ApproxByteSize();

  CallOutput out;
  out.first_ms = transfer.request_ms + inner_out.first_ms +
                 transfer.response_lag_ms +
                 transfer.per_byte_ms * static_cast<double>(first_bytes);
  out.all_ms = transfer.request_ms + inner_out.all_ms +
               transfer.response_lag_ms +
               transfer.per_byte_ms * static_cast<double>(total_bytes);
  if (out.first_ms > out.all_ms) out.first_ms = out.all_ms;
  out.answers = std::move(inner_out.answers);
  return out;
}

const std::string& NetworkInterceptor::name() const {
  static const std::string kName = "network";
  return kName;
}

Result<CallOutput> NetworkInterceptor::Intercept(CallContext& ctx,
                                                 const DomainCall& call,
                                                 const Next& next) {
  // A context carrying its own RNG stream gets per-query-deterministic
  // jitter; otherwise fall back to the simulator's shared legacy stream.
  // The transfer is planned (and the RNG draw consumed) for every call —
  // including ones that later coalesce onto a leader's execution — so a
  // query's draw sequence never depends on what other queries are in
  // flight. The global call count is recorded below, once this call is
  // known to actually ship.
  NetworkSimulator::Transfer transfer =
      ctx.net_rng != nullptr
          ? network_->PlanCallUncounted(site_, call.Hash(), *ctx.net_rng)
          : network_->PlanCallUncounted(site_, call.Hash());
  // The fault plan overlays the simulator's own availability draw. Its
  // decisions come from streams keyed on (plan seed, query, call, attempt)
  // — never from ctx.net_rng — so an empty/absent plan leaves the legacy
  // jitter sequence untouched byte for byte.
  const char* cause = transfer.available ? "" : "unavailable";
  if (faults_ != nullptr) {
    FaultDecision fate = faults_->Decide(site_.name, ctx.query_id,
                                         call.Hash(), ctx.call_attempt,
                                         ctx.now_ms);
    if (fate.unavailable && transfer.available) {
      transfer.available = false;
      transfer.penalty_ms = site_.retry_timeout_ms;
      cause = fate.cause;
    }
    transfer.request_ms *= fate.latency_factor;
    transfer.per_byte_ms *= fate.latency_factor;
    transfer.response_lag_ms =
        transfer.response_lag_ms * fate.latency_factor +
        fate.extra_response_ms;
  }
  ++ctx.metrics.remote_calls;
  obs::SpanScope hop(ctx.tracer, "network-hop", "net", ctx.now_ms);
  hop.AddArg("site", site_.name);
  if (!transfer.available) {
    network_->RecordCall();
    site_calls_->Add(1);
    last_penalty_ms_.store(transfer.penalty_ms, std::memory_order_relaxed);
    network_->RecordFailure();
    ++ctx.metrics.remote_failures;
    site_failures_->Add(1);
    ctx.last_failure_site = site_.name;
    ctx.last_failure_cause = cause;
    ctx.last_call_penalty_ms = transfer.penalty_ms;
    hop.set_sim_end(ctx.now_ms + transfer.penalty_ms);
    hop.MarkFailed(cause);
    // The plain availability draw keeps the legacy wrapper's exact message
    // (NetworkDeterminismTest pins the two paths byte-identical); only
    // fault-plan causes annotate it.
    std::string msg = "site '" + site_.name + "' is temporarily unavailable";
    if (std::string(cause) != "unavailable") {
      msg += " (" + std::string(cause) + ")";
    }
    msg += " for " + call.ToString();
    return Status::Unavailable(std::move(msg));
  }
  last_penalty_ms_.store(0.0, std::memory_order_relaxed);

  // Cross-query single-flight: identical concurrent calls share one inner
  // execution. A follower adopts the leader's materialized inner output —
  // bit-identical to what its own call would have produced (the inner
  // domains are deterministic in the call arguments) — and composes it
  // with its *own* transfer plan, so its simulated latencies and per-query
  // accounting match a non-coalesced replay exactly. Only the global
  // traffic counters (and the host-side domain work) see one call.
  SingleFlightRegistry* sf = single_flight_.get();
  std::shared_ptr<SingleFlightRegistry::Flight> lead_flight;
  if (sf != nullptr && sf->enabled()) {
    SingleFlightRegistry::Join join =
        sf->JoinOrLead(SingleFlightRegistry::KeyFor(site_.name, call));
    auto record_single_flight = [&ctx, this](const char* role) {
      if (ctx.recorder == nullptr) return;
      obs::FlightEvent ev =
          obs::FlightEvent::Make(obs::FlightEventKind::kSingleFlight,
                                 ctx.query_id, ctx.recorder_seq++, ctx.now_ms);
      ev.set_site(site_.name);
      ev.set_detail(role);
      ctx.recorder->Emit(ev);
    };
    if (join.leader) {
      lead_flight = std::move(join.flight);
      record_single_flight("leader");
    } else {
      Result<CallOutput> shared = sf->Await(*join.flight);
      if (!shared.ok()) record_single_flight("fallback");
      if (shared.ok()) {
        record_single_flight("follower");
        ++ctx.metrics.coalesced_calls;
        size_t total_bytes = AnswerSetByteSize(shared->answers);
        CallOutput out =
            ComposeRemoteLatency(transfer, std::move(shared).value());
        double network_ms = out.all_ms;
        ctx.metrics.bytes_transferred += total_bytes;
        ctx.metrics.network_charge += NetworkSimulator::ChargeFor(site_,
                                                                 total_bytes);
        ctx.metrics.network_ms += network_ms;
        hop.set_sim_end(ctx.now_ms + network_ms);
        hop.AddArg("bytes", std::to_string(total_bytes));
        hop.AddArg("coalesced", "true");
        return out;
      }
      // Leader failure or wall-clock timeout: fall through to our own
      // call. Per-query retry/breaker accounting proceeds exactly as if
      // no coalescing had been attempted.
    }
  }

  network_->RecordCall();
  site_calls_->Add(1);
  Result<CallOutput> inner = next(ctx, call);
  if (lead_flight != nullptr) {
    sf->Publish(*lead_flight, inner.ok() ? Status::OK() : inner.status(),
                inner.ok() ? *inner : CallOutput{});
  }
  HERMES_ASSIGN_OR_RETURN(CallOutput inner_out, std::move(inner));

  size_t total_bytes = AnswerSetByteSize(inner_out.answers);
  CallOutput out = ComposeRemoteLatency(transfer, std::move(inner_out));

  double network_ms = out.all_ms;
  double charge = network_->RecordTransfer(site_, total_bytes, network_ms);
  ctx.metrics.bytes_transferred += total_bytes;
  ctx.metrics.network_charge += charge;
  ctx.metrics.network_ms += network_ms;
  site_bytes_->Add(total_bytes);
  site_charge_->Add(charge);
  hop_sim_ms_->Observe(network_ms);
  hop.set_sim_end(ctx.now_ms + network_ms);
  hop.AddArg("bytes", std::to_string(total_bytes));
  return out;
}

void NetworkInterceptor::BindMetrics(obs::MetricsRegistry& registry,
                                     const std::string& domain) {
  obs::Labels labels = {{"site", site_.name}};
  if (!domain.empty()) labels.push_back({"domain", domain});
  registry.Register("hermes_site_calls_total",
                    "Remote calls attempted against this site", labels,
                    site_calls_);
  registry.Register("hermes_site_failures_total",
                    "Calls lost to this site's unavailability", labels,
                    site_failures_);
  registry.Register("hermes_site_bytes_total",
                    "Answer bytes shipped from this site", labels, site_bytes_);
  registry.Register("hermes_site_charge_total",
                    "Access fees accrued at this site (simulated)", labels,
                    site_charge_);
  registry.Register("hermes_site_hop_sim_ms",
                    "Per-call simulated network time for this site's hops",
                    labels, hop_sim_ms_);
}

Result<CostVector> NetworkInterceptor::EstimateCost(
    const lang::DomainCallSpec& pattern, const EstimateNext& next) const {
  HERMES_ASSIGN_OR_RETURN(CostVector inner_cost, next(pattern));
  return DecorateRemoteEstimate(site_, inner_cost);
}

CostVector DecorateRemoteEstimate(const SiteParams& site,
                                  const CostVector& inner_cost) {
  // Add expected (jitter-free) network time on top of the inner model.
  double request = site.connect_ms + site.rtt_ms;
  double per_byte = site.bytes_per_ms > 0 ? 1.0 / site.bytes_per_ms : 0.0;
  // Without knowing answer sizes, assume ~64 bytes per answer.
  double transfer = per_byte * 64.0 * inner_cost.cardinality;
  return CostVector(inner_cost.t_first_ms + request + per_byte * 64.0,
                    inner_cost.t_all_ms + request + transfer,
                    inner_cost.cardinality);
}

}  // namespace hermes::net
