#include "net/network_interceptor.h"

namespace hermes::net {

CallOutput ComposeRemoteLatency(const NetworkSimulator::Transfer& transfer,
                                CallOutput inner_out) {
  size_t total_bytes = AnswerSetByteSize(inner_out.answers);
  size_t first_bytes =
      inner_out.answers.empty() ? 0 : inner_out.answers[0].ApproxByteSize();

  CallOutput out;
  out.first_ms = transfer.request_ms + inner_out.first_ms +
                 transfer.response_lag_ms +
                 transfer.per_byte_ms * static_cast<double>(first_bytes);
  out.all_ms = transfer.request_ms + inner_out.all_ms +
               transfer.response_lag_ms +
               transfer.per_byte_ms * static_cast<double>(total_bytes);
  if (out.first_ms > out.all_ms) out.first_ms = out.all_ms;
  out.answers = std::move(inner_out.answers);
  return out;
}

const std::string& NetworkInterceptor::name() const {
  static const std::string kName = "network";
  return kName;
}

Result<CallOutput> NetworkInterceptor::Intercept(CallContext& ctx,
                                                 const DomainCall& call,
                                                 const Next& next) {
  // A context carrying its own RNG stream gets per-query-deterministic
  // jitter; otherwise fall back to the simulator's shared legacy stream.
  NetworkSimulator::Transfer transfer =
      ctx.net_rng != nullptr
          ? network_->PlanCall(site_, call.Hash(), *ctx.net_rng)
          : network_->PlanCall(site_, call.Hash());
  ++ctx.metrics.remote_calls;
  if (!transfer.available) {
    last_penalty_ms_.store(transfer.penalty_ms, std::memory_order_relaxed);
    network_->RecordFailure();
    ++ctx.metrics.remote_failures;
    return Status::Unavailable("site '" + site_.name +
                               "' is temporarily unavailable for " +
                               call.ToString());
  }
  last_penalty_ms_.store(0.0, std::memory_order_relaxed);

  HERMES_ASSIGN_OR_RETURN(CallOutput inner_out, next(ctx, call));

  size_t total_bytes = AnswerSetByteSize(inner_out.answers);
  CallOutput out = ComposeRemoteLatency(transfer, std::move(inner_out));

  double network_ms = out.all_ms;
  double charge = network_->RecordTransfer(site_, total_bytes, network_ms);
  ctx.metrics.bytes_transferred += total_bytes;
  ctx.metrics.network_charge += charge;
  ctx.metrics.network_ms += network_ms;
  return out;
}

Result<CostVector> NetworkInterceptor::EstimateCost(
    const lang::DomainCallSpec& pattern, const EstimateNext& next) const {
  HERMES_ASSIGN_OR_RETURN(CostVector inner_cost, next(pattern));
  return DecorateRemoteEstimate(site_, inner_cost);
}

CostVector DecorateRemoteEstimate(const SiteParams& site,
                                  const CostVector& inner_cost) {
  // Add expected (jitter-free) network time on top of the inner model.
  double request = site.connect_ms + site.rtt_ms;
  double per_byte = site.bytes_per_ms > 0 ? 1.0 / site.bytes_per_ms : 0.0;
  // Without knowing answer sizes, assume ~64 bytes per answer.
  double transfer = per_byte * 64.0 * inner_cost.cardinality;
  return CostVector(inner_cost.t_first_ms + request + per_byte * 64.0,
                    inner_cost.t_all_ms + request + transfer,
                    inner_cost.cardinality);
}

}  // namespace hermes::net
