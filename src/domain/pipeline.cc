#include "domain/pipeline.h"

#include <chrono>
#include <cstdio>
#include <utility>

namespace hermes {

namespace {

// A new CallMetrics field that is missing from the field-list macros makes
// this mirror struct smaller than the real one — failing to compile here
// instead of being silently dropped by Merge and the registry fold.
struct CallMetricsMirror {
#define HERMES_FIELD(f) uint64_t f;
  HERMES_CALL_METRICS_UINT64_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD
#define HERMES_FIELD(f) double f;
  HERMES_CALL_METRICS_DOUBLE_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD
};
static_assert(sizeof(CallMetricsMirror) == sizeof(CallMetrics),
              "CallMetrics has a field that is not listed in "
              "HERMES_CALL_METRICS_UINT64_FIELDS / _DOUBLE_FIELDS; add it "
              "there so Merge and the metrics fold cover it");

/// One physical line per trace entry: embedded newlines in multi-line
/// error messages are escaped so a trace stays line-sortable by its
/// leading t= timestamp.
std::string FlattenError(const std::string& error) {
  std::string out;
  out.reserve(error.size());
  for (char c : error) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void CallMetrics::Merge(const CallMetrics& other) {
#define HERMES_FIELD(f) f += other.f;
  HERMES_CALL_METRICS_UINT64_FIELDS(HERMES_FIELD)
  HERMES_CALL_METRICS_DOUBLE_FIELDS(HERMES_FIELD)
#undef HERMES_FIELD
}

std::string CallTrace::ToString() const {
  char buf[160];
  if (failed) {
    std::snprintf(buf, sizeof(buf), "t=%9.1fms  %-44s FAILED", t_start_ms,
                  call.ToString().c_str());
    std::string out = buf;
    if (!site.empty()) out += " site=" + site;
    if (!cause.empty()) out += " cause=" + cause;
    return out + ": " + FlattenError(error);
  }
  std::snprintf(buf, sizeof(buf),
                "t=%9.1fms  %-44s %4zu answer(s) first=%.1fms all=%.1fms",
                t_start_ms, call.ToString().c_str(), answers, first_ms,
                all_ms);
  return buf;
}

std::string SourceError::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "t=%9.1fms  ", t_ms);
  std::string out = std::string(buf) + domain + ":" + function +
                    (masked ? " DEGRADED" : " LOST");
  if (!site.empty()) out += " site=" + site;
  if (!cause.empty()) out += " cause=" + cause;
  if (!message.empty()) out += ": " + FlattenError(message);
  return out;
}

Status CallContext::ChargeCall() {
  if (metrics.domain_calls >= call_budget) {
    return Status::Internal("domain-call budget exhausted (" +
                            std::to_string(call_budget) +
                            "); runaway query?");
  }
  ++metrics.domain_calls;
  return Status::OK();
}

Result<CallOutput> CallPipeline::Run(CallContext& ctx,
                                     const DomainCall& call) const {
  return RunFrom(0, ctx, call);
}

Result<CallOutput> CallPipeline::RunFrom(size_t index, CallContext& ctx,
                                         const DomainCall& call) const {
  if (index == stack_.size()) return terminal_(ctx, call);
  return stack_[index]->Intercept(
      ctx, call,
      [this, index](CallContext& c, const DomainCall& k) {
        return RunFrom(index + 1, c, k);
      });
}

PipelineDomain::PipelineDomain(
    std::string name, std::vector<std::shared_ptr<CallInterceptor>> stack,
    std::shared_ptr<Domain> terminal)
    : name_(std::move(name)),
      terminal_(std::move(terminal)),
      pipeline_(std::move(stack),
                [this](CallContext& ctx, const DomainCall& call) {
                  return terminal_->Run(ctx, call);
                }) {}

Result<CallOutput> PipelineDomain::Run(const DomainCall& call) {
  CallContext scratch;
  return Run(scratch, call);
}

Result<CallOutput> PipelineDomain::Run(CallContext& ctx,
                                       const DomainCall& call) {
  return pipeline_.Run(ctx, call);
}

bool PipelineDomain::HasCostModel() const {
  bool has = terminal_->HasCostModel();
  const auto& stack = pipeline_.stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    has = (*it)->HasCostModel(has);
  }
  return has;
}

Result<CostVector> PipelineDomain::EstimateCost(
    const lang::DomainCallSpec& pattern) const {
  // Fold the estimate bottom-up: the terminal's model, decorated by each
  // layer in reverse stack order (mirroring how Run composes latencies).
  CallInterceptor::EstimateNext next =
      [this](const lang::DomainCallSpec& p) -> Result<CostVector> {
    return terminal_->EstimateCost(p);
  };
  const auto& stack = pipeline_.stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    const CallInterceptor* layer = it->get();
    CallInterceptor::EstimateNext inner = std::move(next);
    next = [layer, inner = std::move(inner)](
               const lang::DomainCallSpec& p) -> Result<CostVector> {
      return layer->EstimateCost(p, inner);
    };
  }
  return next(pattern);
}

CallInterceptor* PipelineDomain::FindLayer(const std::string& layer) const {
  for (const auto& interceptor : pipeline_.stack()) {
    if (interceptor->name() == layer) return interceptor.get();
  }
  return nullptr;
}

const std::string& TraceInterceptor::name() const {
  static const std::string kName = "trace";
  return kName;
}

Result<CallOutput> TraceInterceptor::Intercept(CallContext& ctx,
                                               const DomainCall& call,
                                               const Next& next) {
  // The trace layer sits on top of the stack, so clearing the failure
  // attribution here scopes whatever the layers below write to this call.
  ctx.last_failure_site.clear();
  ctx.last_failure_cause.clear();
  Result<CallOutput> run = next(ctx, call);
  if (ctx.trace != nullptr) {
    CallTrace entry;
    entry.call = call;
    entry.t_start_ms = ctx.now_ms;
    entry.failed = !run.ok();
    if (run.ok()) {
      entry.first_ms = run->first_ms;
      entry.all_ms = run->all_ms;
      entry.answers = run->answers.size();
    } else {
      entry.error = run.status().ToString();
      entry.site = ctx.last_failure_site;
      entry.cause = ctx.last_failure_cause;
    }
    ctx.trace->push_back(std::move(entry));
    ++ctx.metrics.traced_calls;
  }
  return run;
}

std::string SingleFlightRegistry::KeyFor(const std::string& site,
                                         const DomainCall& call) {
  return site + "|" + call.ToString();
}

SingleFlightRegistry::Join SingleFlightRegistry::JoinOrLead(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flights_.find(key);
  if (it != flights_.end()) {
    return {/*leader=*/false, it->second};
  }
  auto flight = std::make_shared<Flight>();
  flight->key = key;
  flights_.emplace(key, flight);
  leaders_->Add(1);
  return {/*leader=*/true, std::move(flight)};
}

void SingleFlightRegistry::Publish(Flight& flight, const Status& status,
                                   CallOutput output) {
  {
    std::lock_guard<std::mutex> lock(flight.mu);
    flight.status = status;
    flight.output = std::move(output);
    flight.done = true;
  }
  flight.cv.notify_all();
  // Retire the key: calls arriving after publication lead a fresh flight
  // (the published answers belong to the queries that overlapped it).
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flights_.find(flight.key);
  if (it != flights_.end() && it->second.get() == &flight) {
    flights_.erase(it);
  }
}

Result<CallOutput> SingleFlightRegistry::Await(Flight& flight) {
  const auto timeout = std::chrono::duration<double, std::milli>(
      options_.wait_timeout_ms);
  std::unique_lock<std::mutex> lock(flight.mu);
  waiting_.fetch_add(1, std::memory_order_relaxed);
  const bool published =
      flight.cv.wait_for(lock, timeout, [&flight] { return flight.done; });
  waiting_.fetch_sub(1, std::memory_order_relaxed);
  if (!published) {
    fallbacks_->Add(1);
    return Status::DeadlineExceeded(
        "single-flight leader did not publish within " +
        std::to_string(options_.wait_timeout_ms) + "ms");
  }
  if (!flight.status.ok()) {
    fallbacks_->Add(1);
    return flight.status;
  }
  followers_->Add(1);
  return flight.output;
}

SingleFlightRegistry::Stats SingleFlightRegistry::stats() const {
  Stats s;
  s.leaders = leaders_->Value();
  s.followers = followers_->Value();
  s.fallbacks = fallbacks_->Value();
  s.waiting = waiting_.load(std::memory_order_relaxed);
  return s;
}

void SingleFlightRegistry::BindMetrics(obs::MetricsRegistry& registry) {
  registry.Register("hermes_callpipe_singleflight_leader_total",
                    "Remote calls that executed as single-flight leaders",
                    {}, leaders_);
  registry.Register("hermes_callpipe_singleflight_follower_total",
                    "Remote calls coalesced onto a leader's in-flight "
                    "execution",
                    {}, followers_);
  registry.Register("hermes_callpipe_singleflight_fallback_total",
                    "Follower waits that fell back to their own call "
                    "(leader failure or wall-clock timeout)",
                    {}, fallbacks_);
}

}  // namespace hermes
