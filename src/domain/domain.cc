#include "domain/domain.h"

namespace hermes {

double ArrivalOffsetMs(const CallOutput& output, size_t index) {
  size_t n = output.answers.size();
  if (n <= 1 || index == 0) return output.first_ms;
  if (index >= n - 1) return output.all_ms;
  double frac = static_cast<double>(index) / static_cast<double>(n - 1);
  return output.first_ms + (output.all_ms - output.first_ms) * frac;
}

}  // namespace hermes
