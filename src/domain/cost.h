#ifndef HERMES_DOMAIN_COST_H_
#define HERMES_DOMAIN_COST_H_

#include <string>

namespace hermes {

/// The paper's cost vector `[T_f, T_a, Card]` (Section 6): estimated time to
/// the first answer, time to all answers (milliseconds of simulated time),
/// and cardinality of the answer set.
struct CostVector {
  double t_first_ms = 0.0;
  double t_all_ms = 0.0;
  double cardinality = 0.0;

  CostVector() = default;
  CostVector(double t_first, double t_all, double card)
      : t_first_ms(t_first), t_all_ms(t_all), cardinality(card) {}

  CostVector operator+(const CostVector& other) const {
    return CostVector(t_first_ms + other.t_first_ms,
                      t_all_ms + other.t_all_ms,
                      cardinality + other.cardinality);
  }

  bool operator==(const CostVector& other) const {
    return t_first_ms == other.t_first_ms && t_all_ms == other.t_all_ms &&
           cardinality == other.cardinality;
  }

  std::string ToString() const {
    return "[Tf=" + std::to_string(t_first_ms) +
           "ms, Ta=" + std::to_string(t_all_ms) +
           "ms, Card=" + std::to_string(cardinality) + "]";
  }
};

}  // namespace hermes

#endif  // HERMES_DOMAIN_COST_H_
