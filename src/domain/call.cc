#include "domain/call.h"

namespace hermes {

Result<DomainCall> DomainCall::FromSpec(const lang::DomainCallSpec& spec) {
  DomainCall call;
  call.domain = spec.domain;
  call.function = spec.function;
  call.args.reserve(spec.args.size());
  for (const lang::Term& arg : spec.args) {
    if (!arg.is_constant()) {
      return Status::InvalidArgument(
          "domain call must be ground before execution: " + spec.ToString());
    }
    call.args.push_back(arg.constant);
  }
  return call;
}

lang::DomainCallSpec DomainCall::ToSpec() const {
  lang::DomainCallSpec spec;
  spec.domain = domain;
  spec.function = function;
  spec.args.reserve(args.size());
  for (const Value& v : args) spec.args.push_back(lang::Term::Const(v));
  return spec;
}

size_t DomainCall::Hash() const {
  size_t seed = std::hash<std::string>()(domain);
  seed ^= std::hash<std::string>()(function) + 0x9e3779b97f4a7c15ULL +
          (seed << 6) + (seed >> 2);
  for (const Value& v : args) {
    seed ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  }
  return seed;
}

std::string DomainCall::ToString() const {
  std::string out = domain;
  out += ":";
  out += function;
  out += "(";
  out += ValueListToString(args);
  out += ")";
  return out;
}

size_t AnswerSetByteSize(const AnswerSet& answers) {
  size_t total = 0;
  for (const Value& v : answers) total += v.ApproxByteSize();
  return total;
}

}  // namespace hermes
