#include "domain/registry.h"

namespace hermes {

Status DomainRegistry::Register(const std::string& name,
                                std::shared_ptr<Domain> domain) {
  if (domain == nullptr) {
    return Status::InvalidArgument("cannot register null domain '" + name +
                                   "'");
  }
  auto [it, inserted] = domains_.emplace(name, std::move(domain));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("domain '" + name + "' already registered");
  }
  return Status::OK();
}

void DomainRegistry::RegisterOrReplace(const std::string& name,
                                       std::shared_ptr<Domain> domain) {
  domains_[name] = std::move(domain);
}

Status DomainRegistry::Unregister(const std::string& name) {
  if (domains_.erase(name) == 0) {
    return Status::NotFound("domain '" + name + "' is not registered");
  }
  return Status::OK();
}

Result<std::shared_ptr<Domain>> DomainRegistry::Get(
    const std::string& name) const {
  auto it = domains_.find(name);
  if (it == domains_.end()) {
    return Status::NotFound("domain '" + name + "' is not registered");
  }
  return it->second;
}

Result<CallOutput> DomainRegistry::Run(CallContext& ctx,
                                       const DomainCall& call) const {
  HERMES_ASSIGN_OR_RETURN(std::shared_ptr<Domain> domain, Get(call.domain));
  return domain->Run(ctx, call);
}

Result<CallOutput> DomainRegistry::Run(const DomainCall& call) const {
  CallContext scratch;
  return Run(scratch, call);
}

std::vector<std::string> DomainRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(domains_.size());
  for (const auto& [name, domain] : domains_) out.push_back(name);
  return out;
}

}  // namespace hermes
