#ifndef HERMES_DOMAIN_OVERLOAD_H_
#define HERMES_DOMAIN_OVERLOAD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "domain/pipeline.h"
#include "obs/metrics.h"

namespace hermes::overload {

/// AIMD per-site concurrency limiter: each admitted call occupies a slot in
/// the site's window for its simulated duration; a call arriving when the
/// window is at the limit is shed with kResourceExhausted. The limit grows
/// additively on calls that complete near the DCSM baseline and shrinks
/// multiplicatively on failures or latencies past `latency_factor` ×
/// baseline — so a slow site backpressures its own callers instead of
/// starving the pool.
struct LimiterPolicy {
  bool enabled = false;
  double initial_limit = 8.0;
  double min_limit = 1.0;   ///< Floor; also the cap while the breaker is open.
  double max_limit = 64.0;
  double additive_increase = 1.0;      ///< Limit growth per healthy call.
  double multiplicative_decrease = 0.5;  ///< Limit cut on a congestion signal.
  /// Observed all_ms above `latency_factor` × baseline is congestion.
  double latency_factor = 3.0;
};

/// Hedged requests: a call with a registered failover replica whose primary
/// response is slower than the per-(site, domain) trailing-p95 latency gets
/// a speculative second attempt at that trigger time on the simulated
/// clock; the first response wins and the loser is cancelled. Hedges are
/// capped at `budget_percent` of the query's admitted calls to that site.
struct HedgePolicy {
  bool enabled = false;
  double quantile = 0.95;    ///< Trailing-latency quantile that arms a hedge.
  size_t min_samples = 4;    ///< Observations before the trigger is armed.
  size_t window = 32;        ///< Trailing-latency ring size per site.
  double budget_percent = 5.0;  ///< Max hedges as % of admitted calls.
  /// While the trailing ring has fewer than min_samples observations, arm
  /// the hedge at baseline_trigger_factor × the DCSM baseline for the call
  /// shape instead of leaving it unarmed. Early failures on a cold ring are
  /// exactly the tail a hedge exists to cut; 0 disables the fallback.
  double baseline_trigger_factor = 2.0;
};

/// Everything the overload layer enforces for one site's calls. The default
/// policy is exact pass-through (no limiter, no hedging) — historical
/// behavior byte-for-byte.
struct OverloadPolicy {
  LimiterPolicy limiter;
  HedgePolicy hedge;
};

/// The brownout ladder: under sustained shed pressure the mediator degrades
/// in steps instead of collapsing.
///
///   level 0 kNormal   — full service.
///   level 1 kNoHedge  — hedging disabled (shed speculative load first).
///   level 2 kDegrade  — + prefer stale-cache serves, shrink scatter-gather
///                         fanout (sequential execution) for low-priority
///                         queries.
///   level 3 kShedLow  — + low-priority queries shed at pool admission.
///
/// Pressure is the EWMA of the shed fraction over fixed-size event windows
/// (every limiter/admission decision reports an outcome); escalation and
/// de-escalation use separate thresholds plus a dwell so the ladder does
/// not flap. Event-count driven — no wall clock — but fed by load-dependent
/// shed decisions, so deterministic replay tests must run with the ladder
/// cold or assert on outcomes, not levels.
class BrownoutController {
 public:
  enum Level : int { kNormal = 0, kNoHedge = 1, kDegrade = 2, kShedLow = 3 };

  struct Options {
    uint64_t window_events = 64;   ///< Outcomes per pressure evaluation.
    double up_threshold = 0.20;    ///< Shed fraction that escalates a level.
    double down_threshold = 0.05;  ///< Shed fraction that de-escalates.
    double ewma_alpha = 0.4;       ///< Smoothing across windows.
    uint64_t min_dwell_windows = 2;  ///< Windows between level changes.
  };

  /// (from_level, to_level, shed_rate) on every ladder transition. Wiring
  /// time only; the mediator uses it to capture diag bundles and emit
  /// kBrownout flight events.
  using TransitionHook = std::function<void(int, int, double)>;

  // Two overloads rather than one defaulted argument: Options' member
  // initializers are not available for default arguments until the
  // enclosing class is complete.
  BrownoutController() : BrownoutController(Options()) {}
  explicit BrownoutController(Options options) : options_(options) {}

  BrownoutController(const BrownoutController&) = delete;
  BrownoutController& operator=(const BrownoutController&) = delete;

  /// Reports one admission/limiter decision. Thread-safe.
  void RecordOutcome(bool shed);

  int level() const { return level_.load(std::memory_order_relaxed); }
  double shed_rate() const;
  uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }

  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }
  const Options& options() const { return options_; }

  /// Stable lowercase name ("normal", "no_hedge", "degrade", "shed_low").
  static const char* LevelName(int level);

  /// Registers hermes_overload_brownout_level (gauge) and
  /// hermes_overload_brownout_transitions_total with `registry`.
  void BindMetrics(obs::MetricsRegistry& registry);

 private:
  const Options options_;
  mutable std::mutex mu_;
  uint64_t window_events_ = 0;  ///< Outcomes in the current window.
  uint64_t window_sheds_ = 0;
  uint64_t dwell_windows_ = 0;  ///< Windows since the last level change.
  double ewma_ = 0.0;
  bool ewma_valid_ = false;
  std::atomic<int> level_{kNormal};
  std::atomic<uint64_t> transitions_{0};
  TransitionHook hook_;
  std::shared_ptr<obs::Gauge> level_gauge_ = std::make_shared<obs::Gauge>();
  std::shared_ptr<obs::Counter> transitions_total_ =
      std::make_shared<obs::Counter>();
};

/// The overload layer of the call pipeline. Sits between resilience and the
/// network link ([cache →] resilience → overload → network → domain) and
/// enforces the OverloadPolicy: per-site AIMD concurrency limiting plus
/// hedged requests.
///
/// Determinism contract (the breaker precedent): limiter windows, trailing
/// latency rings and hedge budgets live on the query's CallContext, so
/// every shed/hedge decision is a pure function of the query's own call
/// sequence on the simulated clock — bit-identical replay at any QueryPool
/// thread count. Shared members are advisory only (metrics).
class OverloadInterceptor : public CallInterceptor {
 public:
  /// Reroutes a hedge to the registered failover replica (the mediator
  /// installs the same reroute AddFailover gives the resilience layer).
  using HedgeFn =
      std::function<Result<CallOutput>(CallContext&, const DomainCall&)>;
  /// Expected all_ms of `call` from the DCSM; <= 0 means unknown (the
  /// limiter then falls back to the query's own trailing mean).
  using BaselineFn = std::function<double(const DomainCall&)>;

  explicit OverloadInterceptor(std::string site_name)
      : site_name_(std::move(site_name)) {}

  const std::string& name() const override;

  Result<CallOutput> Intercept(CallContext& ctx, const DomainCall& call,
                               const Next& next) override;

  /// Wiring-time only: policies must not change while queries run.
  void set_policy(const OverloadPolicy& policy) { policy_ = policy; }
  const OverloadPolicy& policy() const { return policy_; }

  void set_baseline(BaselineFn baseline) { baseline_ = std::move(baseline); }
  /// Wiring-time only: where hedged calls go. No route = no hedging.
  void set_hedge_route(HedgeFn route) { hedge_route_ = std::move(route); }
  bool has_hedge_route() const { return hedge_route_ != nullptr; }
  void set_brownout(std::shared_ptr<BrownoutController> brownout) {
    brownout_ = std::move(brownout);
  }

  /// Registers the hermes_overload_* / hermes_hedge_* instruments with
  /// `registry`, labeled {site=<site name>, domain=<domain>}.
  void BindMetrics(obs::MetricsRegistry& registry,
                   const std::string& domain = "");

 private:
  /// The armed hedge trigger for `st`: the trailing-quantile latency once
  /// the ring has min_samples, else baseline_trigger_factor × the DCSM
  /// baseline for `call`, else negative (unarmed).
  double TriggerMs(const CallContext::OverloadState& st,
                   const DomainCall& call) const;

  std::string site_name_;
  OverloadPolicy policy_;
  BaselineFn baseline_;
  HedgeFn hedge_route_;
  std::shared_ptr<BrownoutController> brownout_;

  // hermes_overload_* / hermes_hedge_* instruments (count whether or not
  // bound). The limit gauge is advisory: last writer wins across queries.
  std::shared_ptr<obs::Counter> admitted_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> shed_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Gauge> limit_ = std::make_shared<obs::Gauge>();
  std::shared_ptr<obs::Counter> hedges_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> hedge_wins_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> hedge_cancelled_ =
      std::make_shared<obs::Counter>();
};

}  // namespace hermes::overload

#endif  // HERMES_DOMAIN_OVERLOAD_H_
