#ifndef HERMES_DOMAIN_PIPELINE_H_
#define HERMES_DOMAIN_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "domain/cost.h"
#include "domain/domain.h"
#include "lang/ast.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hermes {

// CallContext holds only pointers to these; the emitting .cc files include
// the real headers. Keeps the domain layer free of dcsm header cycles.
namespace obs {
class FlightRecorder;
}  // namespace obs
namespace dcsm {
class DriftTracker;
}  // namespace dcsm

/// The authoritative field lists of CallMetrics, split by type. Everything
/// that iterates the struct's fields — Merge, the registry fold in the
/// mediator, the coverage tests — expands these macros, so adding a field
/// here is the ONLY step needed to keep them all in sync (and adding a
/// field to the struct without adding it here trips the mirror
/// static_assert in pipeline.cc).
#define HERMES_CALL_METRICS_UINT64_FIELDS(X) \
  X(domain_calls)                            \
  X(traced_calls)                            \
  X(stats_records)                           \
  X(cache_hits)                              \
  X(cache_misses)                            \
  X(remote_calls)                            \
  X(remote_failures)                         \
  X(bytes_transferred)                       \
  X(retries)                                 \
  X(breaker_shed)                            \
  X(deadline_aborts)                         \
  X(degraded_calls)                          \
  X(failovers)                               \
  X(coalesced_calls)                         \
  X(load_shed)                               \
  X(hedges)                                  \
  X(hedge_wins)

#define HERMES_CALL_METRICS_DOUBLE_FIELDS(X) \
  X(network_charge)                          \
  X(network_ms)                              \
  X(retry_backoff_ms)

/// Per-layer counters accumulated along one query's call path. Each
/// interceptor owns a slice: the trace layer counts traced calls, the cache
/// layer hit/miss outcomes, the network layer traffic and charges. The
/// engine counts dispatched calls. Metrics are additive, so a caller can
/// attribute exactly what one query consumed without diffing any global
/// statistics (the old QueryTraffic-by-NetworkStats-delta bug).
///
/// Every field must be listed in HERMES_CALL_METRICS_*_FIELDS above.
struct CallMetrics {
  // Dispatch layer (the executor charging calls against the budget).
  uint64_t domain_calls = 0;
  // Trace layer.
  uint64_t traced_calls = 0;
  // Statistics layer (cost vectors recorded into the DCSM).
  uint64_t stats_records = 0;
  // Cache layer (exact + equality + partial hits vs. actual-call misses).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Network layer.
  uint64_t remote_calls = 0;     ///< Remote calls attempted (incl. failures).
  uint64_t remote_failures = 0;  ///< Calls lost to site unavailability.
  uint64_t bytes_transferred = 0;
  // Resilience layer.
  uint64_t retries = 0;          ///< Retry attempts after a failed call.
  uint64_t breaker_shed = 0;     ///< Calls short-circuited by an open breaker.
  uint64_t deadline_aborts = 0;  ///< Calls abandoned at a deadline.
  uint64_t degraded_calls = 0;   ///< Calls served from stale/partial material.
  uint64_t failovers = 0;        ///< Calls completed via an alternate site.
  // Single-flight layer.
  uint64_t coalesced_calls = 0;  ///< Calls served from another query's flight.
  // Overload layer.
  uint64_t load_shed = 0;    ///< Calls shed by the per-site AIMD limiter.
  uint64_t hedges = 0;       ///< Speculative hedge calls issued.
  uint64_t hedge_wins = 0;   ///< Hedges that beat the primary call.
  double network_charge = 0.0;   ///< Financial access fees accrued.
  double network_ms = 0.0;       ///< Simulated network time consumed.
  double retry_backoff_ms = 0.0; ///< Simulated backoff wait between retries.

  /// Adds `other`'s counters into this one.
  void Merge(const CallMetrics& other);
};

/// One domain call as the trace layer saw it — the execution trace element.
struct CallTrace {
  DomainCall call;
  double t_start_ms = 0.0;  ///< Pipeline time when the call was opened.
  double first_ms = 0.0;    ///< The call's own first-answer latency.
  double all_ms = 0.0;      ///< The call's own completion latency.
  size_t answers = 0;
  bool failed = false;
  std::string error;
  /// Failure attribution (empty on success or when the failing layer did
  /// not identify itself): the site the call was lost at and the proximate
  /// cause ("outage", "flaky", "breaker-open", "deadline", ...).
  std::string site;
  std::string cause;

  std::string ToString() const;
};

/// Structured record of one source the query lost — who failed, why, and
/// whether degraded material (stale/partial cache answers) stood in.
/// Accumulated on the CallContext by whichever layer gives up on a call;
/// the mediator folds the list into QueryResult::completeness.
struct SourceError {
  std::string site;      ///< Site name; empty for local/unknown sources.
  std::string domain;    ///< Registry name the call targeted.
  std::string function;  ///< Function of the lost call.
  std::string cause;     ///< "outage", "flaky", "breaker-open", "deadline"...
  std::string message;   ///< Full Status message of the final failure.
  double t_ms = 0.0;     ///< Simulated time the call was given up at.
  /// True when the answers were substituted from cache (degraded) rather
  /// than lost outright (partial).
  bool masked = false;

  std::string ToString() const;
};

/// One cost observation buffered in the query's context instead of being
/// written straight into the shared DCSM. The statistics layer appends to
/// the buffer lock-free (it is per-query state); the executor flushes the
/// whole batch into the DCSM under one short lock when the query ends.
struct PendingCostSample {
  DomainCall call;
  CostVector cost;
  bool complete = true;
};

/// Per-query state threaded from the executor through the registry down to
/// the leaf domain. Every layer reads the simulated clock from it and
/// accumulates its metrics into it; the caller that created the context
/// (Mediator::Query) reads the per-query attribution off it afterwards.
struct CallContext {
  /// Identifier of the query this call belongs to (0 for standalone calls).
  uint64_t query_id = 0;
  /// Simulated pipeline time at which the current call was opened.
  double now_ms = 0.0;
  /// Domain-call budget for the whole query (the runaway-query guard).
  uint64_t call_budget = std::numeric_limits<uint64_t>::max();
  /// Counters accumulated by every layer the call path crossed.
  CallMetrics metrics;
  /// Trace sink; the trace layer records into it when non-null.
  std::vector<CallTrace>* trace = nullptr;
  /// When true the statistics layer appends observations to
  /// `pending_stats` instead of writing the shared DCSM per call; whoever
  /// set the flag owns flushing the buffer (Executor::Execute does both).
  /// Off by default so standalone pipeline calls with scratch contexts
  /// keep recording directly — a scratch buffer would be silently dropped.
  bool buffer_stats = false;
  /// Cost observations buffered by the statistics layer, flushed into the
  /// shared DCSM in one batch when the query ends (see StatsInterceptor).
  std::vector<PendingCostSample> pending_stats;
  /// Per-query network RNG stream. When non-null the network simulator
  /// draws this query's jitter/availability from it (seeded from the base
  /// seed and query id), so simulated latencies replay identically at any
  /// thread count. Null selects the simulator's shared legacy stream.
  Rng* net_rng = nullptr;
  /// Per-query span recorder. When non-null, each layer the call path
  /// crosses opens a span (domain-call, cache-lookup, network-hop), giving
  /// the query an exportable execution timeline. The tracer belongs to
  /// this query alone and is not thread-safe.
  obs::Tracer* tracer = nullptr;
  /// Flight recorder for structured diagnostic events. When non-null every
  /// layer appends its milestone events (call issued/completed, retry,
  /// breaker transition, cache outcome, ...) stamped with this query's id
  /// and `recorder_seq`. Null (the default) costs one branch per site.
  obs::FlightRecorder* recorder = nullptr;
  /// Per-query flight-event sequence number. The query runs on one thread,
  /// so `recorder_seq++` orders its events deterministically regardless of
  /// QueryPool thread count or ring layout.
  uint32_t recorder_seq = 0;
  /// DCSM drift tracker. When non-null DomainCallOp feeds every successful
  /// call's observed [Tf Ta card] vs. the DCSM estimate into it.
  dcsm::DriftTracker* drift = nullptr;

  // ---- Resilience state (per-query, so replay is thread-count-invariant).

  /// Absolute simulated-time deadline of the whole query; +inf = none.
  /// DomainCallOp observes it between Next() calls, the resilience layer
  /// before each (re)attempt.
  double deadline_ms = std::numeric_limits<double>::infinity();
  /// Attempt number of the call currently running (0 = first attempt).
  /// Set by the resilience layer's retry loop; the fault injector keys its
  /// per-attempt draws on it so a retry redraws its fate.
  uint64_t call_attempt = 0;
  /// Attribution of the most recent call failure, written by the failing
  /// layer (network: site + cause) and read by whoever gives up on the
  /// call (resilience giveup, cache-mask, engine tolerance) to name the
  /// lost source.
  std::string last_failure_site;
  std::string last_failure_cause;
  /// Simulated time the most recent failed attempt cost (the retry
  /// timeout); the resilience layer charges it into the retry schedule.
  double last_call_penalty_ms = 0.0;
  /// Sources this query lost (or served degraded), in failure order.
  std::vector<SourceError> source_errors;

  /// Per-site circuit-breaker state, scoped to this query: breaker
  /// decisions are then a pure function of this query's own call sequence,
  /// which is what makes transitions replay bit-identically at any
  /// QueryPool thread count (see DESIGN.md "Failure model & resilience").
  struct BreakerState {
    enum State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
    State state = kClosed;
    uint64_t consecutive_failures = 0;  ///< Failures since last success.
    uint64_t shed_since_probe = 0;      ///< Calls shed while open.
  };
  std::map<std::string, BreakerState> breaker_states;  ///< Keyed by site.

  // ---- Overload state (per-query, same determinism contract as breakers).

  /// True while the resilience layer is running a half-open breaker probe;
  /// the overload layer below exempts probes from limiter accounting so a
  /// recovering site is never starved of its probe traffic.
  bool breaker_probe = false;
  /// When true the cache layer serves stale entries as if
  /// `serve_stale_on_unavailable` were wired on — set by the mediator while
  /// the brownout ladder is at the degrade level or above.
  bool prefer_stale = false;
  /// When true the overload layer never hedges this query's calls — set by
  /// the mediator while the brownout ladder disables hedging.
  bool hedging_disabled = false;

  /// Per-site AIMD limiter + hedge-trigger state, scoped to this query so
  /// shed/hedge decisions are a pure function of the query's own call
  /// sequence on the simulated clock (bit-identical replay at any QueryPool
  /// thread count — the breaker precedent).
  struct OverloadState {
    double limit = 0.0;  ///< Current AIMD window limit (0 = uninitialized).
    /// Simulated completion times of in-window calls; entries at or before
    /// `now_ms` have drained and are pruned at the next admission check.
    std::vector<double> in_flight_until_ms;
    /// Trailing observed all_ms latencies (bounded ring, hedge trigger).
    std::vector<double> latency_window;
    size_t latency_next = 0;  ///< Next write slot in `latency_window`.
    uint64_t calls_seen = 0;  ///< Admitted calls (hedge-budget denominator).
    uint64_t hedges_issued = 0;
  };
  std::map<std::string, OverloadState> overload_states;  ///< Keyed by site.

  /// Charges one domain call against the budget; fails once exhausted.
  Status ChargeCall();
};

/// One composable stage of the domain-call path.
///
/// An interceptor wraps the call on its way down to the domain (and the
/// answers on their way back up): it may serve the call itself (cache hit),
/// decorate latencies (network link), or observe the outcome (trace,
/// statistics). `next` continues with the remainder of the stack; not
/// invoking it short-circuits the call.
class CallInterceptor {
 public:
  using Next =
      std::function<Result<CallOutput>(CallContext&, const DomainCall&)>;
  using EstimateNext =
      std::function<Result<CostVector>(const lang::DomainCallSpec&)>;

  virtual ~CallInterceptor() = default;

  /// Layer name for diagnostics ("trace", "stats", "cache", "network").
  virtual const std::string& name() const = 0;

  virtual Result<CallOutput> Intercept(CallContext& ctx,
                                       const DomainCall& call,
                                       const Next& next) = 0;

  /// Optimizer-time cost-model composition. `inner_has` tells whether the
  /// layers below ship a cost model; a layer that hides the model (cache)
  /// returns false, one that decorates it (network) returns `inner_has`.
  virtual bool HasCostModel(bool inner_has) const { return inner_has; }

  /// Cost estimation through this layer; the default passes through.
  virtual Result<CostVector> EstimateCost(const lang::DomainCallSpec& pattern,
                                          const EstimateNext& next) const {
    return next(pattern);
  }
};

/// An ordered interceptor stack over a terminal call handler.
class CallPipeline {
 public:
  using Handler =
      std::function<Result<CallOutput>(CallContext&, const DomainCall&)>;

  CallPipeline() = default;
  CallPipeline(std::vector<std::shared_ptr<CallInterceptor>> stack,
               Handler terminal)
      : stack_(std::move(stack)), terminal_(std::move(terminal)) {}

  /// Runs `call` through the stack, top first, ending at the terminal.
  Result<CallOutput> Run(CallContext& ctx, const DomainCall& call) const;

  const std::vector<std::shared_ptr<CallInterceptor>>& stack() const {
    return stack_;
  }

 private:
  Result<CallOutput> RunFrom(size_t index, CallContext& ctx,
                             const DomainCall& call) const;

  std::vector<std::shared_ptr<CallInterceptor>> stack_;
  Handler terminal_;
};

/// An interceptor stack over a terminal domain, packaged as a Domain so it
/// registers like any other (the paper's "behaves like any other domain").
///
/// Context-aware callers (DomainRegistry::Run with a CallContext) thread
/// their context through the stack; legacy callers get a scratch context,
/// so the answers and simulated latencies are identical either way — only
/// the per-query attribution is lost.
class PipelineDomain : public Domain {
 public:
  PipelineDomain(std::string name,
                 std::vector<std::shared_ptr<CallInterceptor>> stack,
                 std::shared_ptr<Domain> terminal);

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return terminal_->Functions();
  }

  Result<CallOutput> Run(const DomainCall& call) override;
  Result<CallOutput> Run(CallContext& ctx, const DomainCall& call) override;

  /// Cost-model visibility/estimation folded through the stack, bottom-up.
  bool HasCostModel() const override;
  Result<CostVector> EstimateCost(
      const lang::DomainCallSpec& pattern) const override;

  const std::vector<std::shared_ptr<CallInterceptor>>& stack() const {
    return pipeline_.stack();
  }
  const std::shared_ptr<Domain>& terminal() const { return terminal_; }

  /// First interceptor in the stack named `layer`, or nullptr. Lets callers
  /// reach a layer for scenario control (e.g. taking a site down).
  CallInterceptor* FindLayer(const std::string& layer) const;

 private:
  std::string name_;
  std::shared_ptr<Domain> terminal_;
  CallPipeline pipeline_;
};

/// The trace layer: records every call it sees (including ones a cache
/// layer below serves without contacting the source) into `ctx.trace`.
class TraceInterceptor : public CallInterceptor {
 public:
  const std::string& name() const override;
  Result<CallOutput> Intercept(CallContext& ctx, const DomainCall& call,
                               const Next& next) override;
};

/// Knobs of the cross-query single-flight layer. Disabled by default, in
/// which case the call path is byte-identical to the pre-coalescing code.
struct SingleFlightOptions {
  bool enabled = false;
  /// Wall-clock milliseconds a follower waits for its leader to publish
  /// before giving up and issuing its own call. Host time only — the
  /// simulated clock never blocks, so a timeout costs extra host work but
  /// never changes a query's simulated outcome.
  double wait_timeout_ms = 2000.0;
};

/// Cross-query single-flight coalescing, keyed on `(site, domain,
/// function, normalized args)` — the site name plus DomainCall::ToString(),
/// whose rendering is the canonical cache-key form of the call.
///
/// The first query to arrive at a key becomes the *leader* and executes
/// the inner call; queries arriving while it is in flight become
/// *followers*: they wait (host wall clock only) for the leader to publish
/// and adopt its materialized inner output instead of re-executing the
/// source call. The inner domains are deterministic functions of the call
/// arguments, so the adopted output is bit-identical to what the
/// follower's own call would have produced — coalescing saves host work
/// and global network traffic but never changes a query's simulated
/// answers, latencies, or per-query accounting (each follower still plans
/// its own transfer from its own RNG stream and charges its own simulated
/// network time). A leader that fails publishes the failure, and every
/// follower falls back to its own call: leader failure cannot poison
/// followers, and per-query retry/breaker accounting stays untouched.
///
/// Thread-safe. One registry is shared by every site's network layer (the
/// Mediator owns it); the site name inside the key keeps same-named calls
/// to different sites apart.
class SingleFlightRegistry {
 public:
  /// One in-flight call publication slot.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();  ///< Leader's inner-call status.
    CallOutput output;             ///< Leader's inner output when ok.
    std::string key;
  };

  struct Join {
    bool leader = false;
    std::shared_ptr<Flight> flight;
  };

  SingleFlightRegistry() = default;
  SingleFlightRegistry(const SingleFlightRegistry&) = delete;
  SingleFlightRegistry& operator=(const SingleFlightRegistry&) = delete;

  /// The canonical flight key of `call` at `site`.
  static std::string KeyFor(const std::string& site, const DomainCall& call);

  /// Joins the in-flight execution of `key`, or starts leading one.
  /// A leader MUST eventually call Publish() on the returned flight
  /// (success or failure) — followers block on it.
  Join JoinOrLead(const std::string& key);

  /// Leader: publishes the inner result and retires the key; every waiting
  /// follower wakes. Later arrivals at the key lead a fresh flight.
  void Publish(Flight& flight, const Status& status, CallOutput output);

  /// Follower: waits for the leader's publication. Returns the shared
  /// inner output, the leader's failure, or DeadlineExceeded on wall-clock
  /// timeout; callers fall back to their own call on any failure.
  Result<CallOutput> Await(Flight& flight);

  /// Wiring-time configuration (set before queries run).
  void set_options(const SingleFlightOptions& options) { options_ = options; }
  bool enabled() const { return options_.enabled; }
  const SingleFlightOptions& options() const { return options_; }

  struct Stats {
    uint64_t leaders = 0;    ///< Calls that executed as flight leaders.
    uint64_t followers = 0;  ///< Calls served from a leader's publication.
    uint64_t fallbacks = 0;  ///< Follower waits that fell back to own calls.
    uint64_t waiting = 0;    ///< Followers currently blocked on a leader.
  };
  Stats stats() const;

  /// Registers hermes_callpipe_singleflight_{leader,follower}_total (and
  /// the fallback counter) with `registry`. The counters exist and count
  /// whether or not this is ever called.
  void BindMetrics(obs::MetricsRegistry& registry);

 private:
  SingleFlightOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
  std::atomic<uint64_t> waiting_{0};
  std::shared_ptr<obs::Counter> leaders_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> followers_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> fallbacks_ = std::make_shared<obs::Counter>();
};

}  // namespace hermes

#endif  // HERMES_DOMAIN_PIPELINE_H_
