#include "domain/overload.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace hermes::overload {

namespace {

/// Flight-recorder note of an overload decision on `site` at `sim_ms`.
void RecordOverloadEvent(CallContext& ctx, obs::FlightEventKind kind,
                         const std::string& site, const std::string& domain,
                         const char* detail, double sim_ms, double value,
                         uint64_t aux) {
  if (ctx.recorder == nullptr) return;
  obs::FlightEvent ev =
      obs::FlightEvent::Make(kind, ctx.query_id, ctx.recorder_seq++, sim_ms);
  ev.set_site(site);
  ev.set_domain(domain);
  ev.set_detail(detail);
  ev.value = value;
  ev.aux = aux;
  ctx.recorder->Emit(ev);
}

}  // namespace

// ---- BrownoutController -----------------------------------------------------

const char* BrownoutController::LevelName(int level) {
  switch (level) {
    case kNormal: return "normal";
    case kNoHedge: return "no_hedge";
    case kDegrade: return "degrade";
    case kShedLow: return "shed_low";
  }
  return "unknown";
}

void BrownoutController::BindMetrics(obs::MetricsRegistry& registry) {
  registry.Register("hermes_overload_brownout_level",
                    "Current brownout-ladder level (0 = normal, 3 = shedding "
                    "low-priority queries at admission)",
                    {}, level_gauge_);
  registry.Register("hermes_overload_brownout_transitions_total",
                    "Brownout-ladder level transitions", {},
                    transitions_total_);
}

double BrownoutController::shed_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_valid_ ? ewma_ : 0.0;
}

void BrownoutController::RecordOutcome(bool shed) {
  int from = -1;
  int to = -1;
  double rate = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++window_events_;
    if (shed) ++window_sheds_;
    if (window_events_ < options_.window_events) return;
    double window_rate =
        static_cast<double>(window_sheds_) / static_cast<double>(window_events_);
    window_events_ = 0;
    window_sheds_ = 0;
    ewma_ = ewma_valid_
                ? options_.ewma_alpha * window_rate +
                      (1.0 - options_.ewma_alpha) * ewma_
                : window_rate;
    ewma_valid_ = true;
    ++dwell_windows_;
    if (dwell_windows_ < options_.min_dwell_windows) return;
    int current = level_.load(std::memory_order_relaxed);
    int next = current;
    if (ewma_ > options_.up_threshold && current < kShedLow) {
      next = current + 1;
    } else if (ewma_ < options_.down_threshold && current > kNormal) {
      next = current - 1;
    }
    if (next == current) return;
    dwell_windows_ = 0;
    level_.store(next, std::memory_order_relaxed);
    level_gauge_->Set(static_cast<double>(next));
    transitions_.fetch_add(1, std::memory_order_relaxed);
    transitions_total_->Add(1);
    from = current;
    to = next;
    rate = ewma_;
  }
  // Hook outside the lock: it captures diag bundles and snapshots metrics,
  // which must not nest under the controller's mutex.
  if (hook_) hook_(from, to, rate);
}

// ---- OverloadInterceptor ----------------------------------------------------

const std::string& OverloadInterceptor::name() const {
  static const std::string kName = "overload";
  return kName;
}

void OverloadInterceptor::BindMetrics(obs::MetricsRegistry& registry,
                                      const std::string& domain) {
  obs::Labels labels = {{"site", site_name_}};
  if (!domain.empty()) labels.push_back({"domain", domain});
  registry.Register("hermes_overload_admitted_total",
                    "Calls admitted through the per-site concurrency limiter",
                    labels, admitted_);
  registry.Register("hermes_overload_shed_total",
                    "Calls shed by the per-site AIMD concurrency limiter",
                    labels, shed_);
  registry.Register("hermes_overload_limit",
                    "Most recent per-query AIMD concurrency limit (advisory)",
                    labels, limit_);
  registry.Register("hermes_hedge_issued_total",
                    "Speculative hedge calls issued past the trailing-p95 "
                    "trigger",
                    labels, hedges_);
  registry.Register("hermes_hedge_wins_total",
                    "Hedge calls whose response beat the primary", labels,
                    hedge_wins_);
  registry.Register("hermes_hedge_cancelled_total",
                    "Hedge calls cancelled because the primary won", labels,
                    hedge_cancelled_);
}

double OverloadInterceptor::TriggerMs(const CallContext::OverloadState& st,
                                      const DomainCall& call) const {
  if (st.latency_window.size() < policy_.hedge.min_samples) {
    // Cold ring: borrow the cross-query DCSM baseline so the first few
    // calls of a query are still hedgeable. The factor keeps ordinary
    // jitter (bounded well under 2× the mean) from wasting budget.
    if (policy_.hedge.baseline_trigger_factor > 0.0 && baseline_) {
      double base = baseline_(call);
      if (base > 0.0) return policy_.hedge.baseline_trigger_factor * base;
    }
    return -1.0;
  }
  // Nearest-rank quantile over a copy of the trailing ring; the ring is
  // bounded by HedgePolicy::window so this stays cheap and allocation-light.
  std::vector<double> sorted(st.latency_window);
  std::sort(sorted.begin(), sorted.end());
  double rank = policy_.hedge.quantile * static_cast<double>(sorted.size() - 1);
  size_t index = static_cast<size_t>(rank);
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

Result<CallOutput> OverloadInterceptor::Intercept(CallContext& ctx,
                                                  const DomainCall& call,
                                                  const Next& next) {
  if (!policy_.limiter.enabled && !policy_.hedge.enabled) {
    return next(ctx, call);  // pass-through: historical behavior exactly
  }

  const std::string& site_key = site_name_.empty() ? call.domain : site_name_;
  CallContext::OverloadState& st = ctx.overload_states[site_key];
  if (st.limit <= 0.0) st.limit = policy_.limiter.initial_limit;
  const double t_open = ctx.now_ms;
  const bool probe = ctx.breaker_probe;

  if (policy_.limiter.enabled && !probe) {
    // Drain completed intervals: a slot whose simulated completion is at or
    // before this call's open time is free again.
    auto& window = st.in_flight_until_ms;
    window.erase(
        std::remove_if(window.begin(), window.end(),
                       [t_open](double end_ms) { return end_ms <= t_open; }),
        window.end());
    // Breaker open ⇒ the site gets the limit floor regardless of AIMD
    // state: probes trickle through, everything else stays off its back.
    double limit = st.limit;
    auto breaker = ctx.breaker_states.find(site_key);
    if (breaker != ctx.breaker_states.end() &&
        breaker->second.state == CallContext::BreakerState::kOpen) {
      limit = policy_.limiter.min_limit;
    }
    if (static_cast<double>(window.size()) >= limit) {
      ++ctx.metrics.load_shed;
      shed_->Add(1);
      if (brownout_ != nullptr) brownout_->RecordOutcome(true);
      RecordOverloadEvent(ctx, obs::FlightEventKind::kLoadShed, site_key,
                          call.domain, "limit", t_open, limit, window.size());
      obs::SpanScope span(ctx.tracer, "load-shed", "overload", t_open);
      span.MarkFailed("limit");
      ctx.last_failure_site = site_key;
      ctx.last_failure_cause = "load-shed";
      ctx.last_call_penalty_ms = 0.0;
      SourceError err;
      err.site = site_key;
      err.domain = call.domain;
      err.function = call.function;
      err.cause = "load-shed";
      err.t_ms = t_open;
      Status shed = Status::ResourceExhausted(
          "per-site concurrency limit " + std::to_string(window.size()) + "/" +
          std::to_string(limit) + " reached for site '" + site_key +
          "': " + call.ToString() + " shed");
      err.message = shed.ToString();
      ctx.source_errors.push_back(std::move(err));
      return shed;
    }
    if (brownout_ != nullptr) brownout_->RecordOutcome(false);
  }

  Result<CallOutput> run = next(ctx, call);

  // Half-open breaker probes are exempt from all limiter accounting: they
  // must neither occupy a window slot nor move the AIMD limit, or a
  // recovering site would be starved of exactly the traffic that closes
  // its breaker.
  if (probe) return run;

  const bool hedging_armed =
      policy_.hedge.enabled && hedge_route_ != nullptr &&
      !ctx.hedging_disabled &&
      (brownout_ == nullptr ||
       brownout_->level() < BrownoutController::kNoHedge);

  if (!run.ok()) {
    if (policy_.limiter.enabled) {
      st.limit = std::max(policy_.limiter.min_limit,
                          st.limit * policy_.limiter.multiplicative_decrease);
      limit_->Set(st.limit);
    }
    // Failure rescue: on the simulated clock the speculative request was
    // already in flight at trigger time, so a failed primary adopts the
    // hedge's answer instead of surfacing the failure. This is the hedge
    // win that cuts the *unavailability* tail (timeout penalties), not
    // just the jitter tail. Shed calls are excluded — hedging a load-shed
    // call would defeat the limiter.
    if (hedging_armed && !run.status().IsResourceExhausted()) {
      const double trigger = TriggerMs(st, call);
      // Rescues are deliberately not budget-gated: when a failover route
      // exists, the resilience layer above would retry this failure anyway
      // — after the full timeout penalty. The rescue is that same extra
      // call moved earlier, not an additional one, so only speculative
      // hedges (below) draw down the budget.
      if (trigger >= 0.0) {
        ++st.hedges_issued;
        ++ctx.metrics.hedges;
        hedges_->Add(1);
        RecordOverloadEvent(ctx, obs::FlightEventKind::kHedge, site_key,
                            call.domain, "issued", t_open + trigger, trigger,
                            st.hedges_issued);
        obs::SpanScope span(ctx.tracer, "hedge", "overload", t_open + trigger);
        ctx.now_ms = t_open + trigger;
        Result<CallOutput> alt = hedge_route_(ctx, call);
        ctx.now_ms = t_open;
        if (alt.ok()) {
          CallOutput won = std::move(alt).value();
          won.first_ms += trigger;
          won.all_ms += trigger;
          span.set_sim_end(t_open + won.all_ms);
          ++ctx.metrics.hedge_wins;
          hedge_wins_->Add(1);
          RecordOverloadEvent(ctx, obs::FlightEventKind::kHedge, site_key,
                              call.domain, "win", t_open + won.all_ms,
                              won.all_ms, st.hedges_issued);
          // The hedge answered for the failed primary: mask its source
          // error (mirrors the failover and cache-degradation paths).
          for (auto it = ctx.source_errors.rbegin();
               it != ctx.source_errors.rend(); ++it) {
            if (it->function == call.function && !it->masked) {
              it->masked = true;
              break;
            }
          }
          ++st.calls_seen;
          admitted_->Add(1);
          return won;
        }
        span.MarkFailed(alt.status().ToString());
        hedge_cancelled_->Add(1);
        RecordOverloadEvent(ctx, obs::FlightEventKind::kHedge, site_key,
                            call.domain, "cancelled", t_open + trigger, 0.0,
                            st.hedges_issued);
      }
    }
    return run;
  }
  CallOutput out = std::move(run).value();

  if (policy_.limiter.enabled) {
    st.in_flight_until_ms.push_back(t_open + out.all_ms);
    // AIMD feed: congestion = observed latency past latency_factor × the
    // DCSM baseline (falling back to this query's own trailing mean while
    // the DCSM has no estimate for the call shape).
    double baseline = baseline_ ? baseline_(call) : 0.0;
    if (baseline <= 0.0 && !st.latency_window.empty()) {
      double sum = 0.0;
      for (double v : st.latency_window) sum += v;
      baseline = sum / static_cast<double>(st.latency_window.size());
    }
    if (baseline > 0.0 && out.all_ms > policy_.limiter.latency_factor * baseline) {
      st.limit = std::max(policy_.limiter.min_limit,
                          st.limit * policy_.limiter.multiplicative_decrease);
    } else {
      st.limit = std::min(policy_.limiter.max_limit,
                          st.limit + policy_.limiter.additive_increase);
    }
    limit_->Set(st.limit);
  }
  ++st.calls_seen;
  admitted_->Add(1);

  // Hedge decision — after the primary's simulated latency is known, which
  // on the simulated clock is equivalent to arming a timer at the trigger:
  // the hedge runs iff the primary is still in flight at trigger time.
  const double primary_ms = out.all_ms;
  if (hedging_armed) {
    double trigger = TriggerMs(st, call);
    // Speculative hedges draw down the budget: the first is free, after
    // that issued hedges (rescues included) must stay inside
    // budget_percent of this query's calls to the site.
    bool budget_ok =
        static_cast<double>(st.hedges_issued) * 100.0 <=
        policy_.hedge.budget_percent * static_cast<double>(st.calls_seen);
    if (trigger >= 0.0 && primary_ms > trigger && budget_ok) {
      ++st.hedges_issued;
      ++ctx.metrics.hedges;
      hedges_->Add(1);
      RecordOverloadEvent(ctx, obs::FlightEventKind::kHedge, site_key,
                          call.domain, "issued", t_open + trigger, trigger,
                          st.hedges_issued);
      obs::SpanScope span(ctx.tracer, "hedge", "overload", t_open + trigger);
      // The hedge opens at trigger time on the simulated clock; the route
      // runs the replica's full pipeline under this query's context, so
      // its traffic and latency are charged to this query (the ≤ budget %
      // extra calls the policy allows).
      ctx.now_ms = t_open + trigger;
      Result<CallOutput> alt = hedge_route_(ctx, call);
      ctx.now_ms = t_open;
      if (alt.ok() && trigger + alt->all_ms < primary_ms) {
        // The hedge answered first: adopt it and cancel the primary (its
        // remaining in-flight time is abandoned on the simulated clock).
        CallOutput won = std::move(alt).value();
        won.first_ms = std::min(out.first_ms, trigger + won.first_ms);
        won.all_ms = trigger + won.all_ms;
        span.set_sim_end(t_open + won.all_ms);
        ++ctx.metrics.hedge_wins;
        hedge_wins_->Add(1);
        RecordOverloadEvent(ctx, obs::FlightEventKind::kHedge, site_key,
                            call.domain, "win", t_open + won.all_ms,
                            primary_ms - won.all_ms, st.hedges_issued);
        out = std::move(won);
      } else {
        // The primary won (or the hedge failed): the hedge is cancelled at
        // the primary's completion time.
        span.set_sim_end(t_open + primary_ms);
        hedge_cancelled_->Add(1);
        RecordOverloadEvent(ctx, obs::FlightEventKind::kHedge, site_key,
                            call.domain, "cancelled", t_open + primary_ms,
                            primary_ms, st.hedges_issued);
      }
    }
  }

  // Trailing-latency ring (hedge trigger + limiter fallback baseline),
  // observed from the primary's raw latency after this call's own trigger
  // was computed — a call never hedges against itself.
  if (policy_.hedge.window > 0) {
    if (st.latency_window.size() < policy_.hedge.window) {
      st.latency_window.push_back(primary_ms);
    } else {
      st.latency_window[st.latency_next % policy_.hedge.window] = primary_ms;
    }
    ++st.latency_next;
  }

  return out;
}

}  // namespace hermes::overload
