#ifndef HERMES_DOMAIN_DOMAIN_H_
#define HERMES_DOMAIN_DOMAIN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "domain/call.h"
#include "domain/cost.h"
#include "lang/ast.h"

namespace hermes {

struct CallContext;

/// Signature of one callable function exported by a domain.
struct FunctionInfo {
  std::string name;
  size_t arity = 0;
  std::string doc;
};

/// The result of executing one ground domain call, with its simulated
/// latency profile.
///
/// `first_ms` is the simulated delay until the first answer is available
/// to the caller and `all_ms` the delay until the full answer set is.
/// The pipelined executor interpolates the arrival time of answer i
/// linearly between the two (see ArrivalOffsetMs), which is how the system
/// measures the paper's T_f / T_a without ever sleeping.
struct CallOutput {
  AnswerSet answers;
  double first_ms = 0.0;
  double all_ms = 0.0;
  /// False when `answers` is only a partial answer set (e.g. a CIM
  /// subset-invariant hit served in interactive mode before the real call).
  bool complete = true;
  /// True when the answers were served from degraded material — a stale or
  /// partial cache entry stood in for an unreachable source. The engine
  /// folds this into QueryResult::completeness.
  bool degraded = false;
};

/// Simulated arrival offset (ms after call start) of answer `index` out of
/// `output.answers.size()` answers.
double ArrivalOffsetMs(const CallOutput& output, size_t index);

/// An external software package / data source mediated by HERMES.
///
/// Domains execute ground calls and report simulated latency in the
/// returned CallOutput. A domain that "has a well-understood cost model"
/// (Section 6) may additionally answer cost-estimation requests; DCSM then
/// delegates to it instead of caching statistics.
class Domain {
 public:
  virtual ~Domain() = default;

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Registry name of the domain ("ingres", "video", "spatial", ...).
  virtual const std::string& name() const = 0;

  /// The functions this domain exports.
  virtual std::vector<FunctionInfo> Functions() const = 0;

  /// Executes a ground call. The call's `domain` field may differ from
  /// name() when the domain is wrapped (by RemoteDomain or CIM);
  /// implementations should dispatch on `call.function`/`call.args` only.
  virtual Result<CallOutput> Run(const DomainCall& call) = 0;

  /// Context-aware execution (the call-pipeline path). Plain domains ignore
  /// the context; PipelineDomain threads it through its interceptor stack
  /// so per-query metrics accumulate. Results are identical either way.
  virtual Result<CallOutput> Run(CallContext& ctx, const DomainCall& call) {
    (void)ctx;
    return Run(call);
  }

  /// True when the domain ships its own cost-estimation module.
  virtual bool HasCostModel() const { return false; }

  /// Native cost estimate for a call pattern (only when HasCostModel()).
  virtual Result<CostVector> EstimateCost(
      const lang::DomainCallSpec& pattern) const {
    (void)pattern;
    return Status::Unimplemented("domain '" + name() +
                                 "' has no native cost model");
  }

 protected:
  Domain() = default;
};

}  // namespace hermes

#endif  // HERMES_DOMAIN_DOMAIN_H_
