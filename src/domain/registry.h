#ifndef HERMES_DOMAIN_REGISTRY_H_
#define HERMES_DOMAIN_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "domain/domain.h"    // IWYU pragma: export
#include "domain/pipeline.h"  // IWYU pragma: export

namespace hermes {

/// Name → Domain routing table used by the execution engine.
///
/// The registry owns its domains via shared_ptr so the same underlying
/// domain object can be registered under several names (e.g. a raw domain
/// plus a RemoteDomain wrapper around it for a different site).
class DomainRegistry {
 public:
  DomainRegistry() = default;

  DomainRegistry(const DomainRegistry&) = delete;
  DomainRegistry& operator=(const DomainRegistry&) = delete;

  /// Registers `domain` under `name`. Fails if the name is taken.
  Status Register(const std::string& name, std::shared_ptr<Domain> domain);

  /// Replaces any existing registration for `name`.
  void RegisterOrReplace(const std::string& name,
                         std::shared_ptr<Domain> domain);

  /// Removes a registration; returns NotFound when absent.
  Status Unregister(const std::string& name);

  bool Has(const std::string& name) const {
    return domains_.find(name) != domains_.end();
  }

  /// Looks up the domain registered under `name`.
  Result<std::shared_ptr<Domain>> Get(const std::string& name) const;

  /// Executes a ground call by routing on call.domain, threading `ctx`
  /// through the target's interceptor stack (when it has one).
  Result<CallOutput> Run(CallContext& ctx, const DomainCall& call) const;

  /// Executes a ground call by routing on call.domain. Forwards to the
  /// context-taking overload with a default (scratch) context.
  Result<CallOutput> Run(const DomainCall& call) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::shared_ptr<Domain>> domains_;
};

}  // namespace hermes

#endif  // HERMES_DOMAIN_REGISTRY_H_
