#include "domain/resilience/resilience.h"

#include <cmath>

#include "common/rng.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace hermes::resilience {

namespace {

/// Flight-recorder note of a breaker state change on `site` at `sim_ms`.
void RecordBreakerEvent(CallContext& ctx, const std::string& site,
                        const char* to_state, double sim_ms,
                        uint64_t consecutive_failures) {
  if (ctx.recorder == nullptr) return;
  obs::FlightEvent ev =
      obs::FlightEvent::Make(obs::FlightEventKind::kBreakerTransition,
                             ctx.query_id, ctx.recorder_seq++, sim_ms);
  ev.set_site(site);
  ev.set_detail(to_state);
  ev.aux = consecutive_failures;
  ctx.recorder->Emit(ev);
}

/// Salt separating the backoff-jitter streams from the network-jitter and
/// fault-plan streams derived from the same base seed.
constexpr uint64_t kBackoffStreamSalt = 0xb0ff0e75ULL;

using BreakerState = CallContext::BreakerState;

}  // namespace

const std::string& ResilienceInterceptor::name() const {
  static const std::string kName = "resilience";
  return kName;
}

void ResilienceInterceptor::BindMetrics(obs::MetricsRegistry& registry,
                                        const std::string& domain) {
  obs::Labels labels = {{"site", site_name_}};
  if (!domain.empty()) labels.push_back({"domain", domain});
  registry.Register("hermes_resilience_retries_total",
                    "Retry attempts issued after a failed call", labels,
                    retries_);
  registry.Register("hermes_resilience_giveups_total",
                    "Calls abandoned after exhausting the retry budget",
                    labels, giveups_);
  registry.Register("hermes_resilience_breaker_shed_total",
                    "Calls short-circuited by an open circuit breaker",
                    labels, shed_);
  obs::Labels open_labels = labels;
  open_labels.push_back({"to", "open"});
  registry.Register("hermes_resilience_breaker_transitions_total",
                    "Circuit-breaker state transitions", open_labels,
                    to_open_);
  obs::Labels half_labels = labels;
  half_labels.push_back({"to", "half_open"});
  registry.Register("hermes_resilience_breaker_transitions_total",
                    "Circuit-breaker state transitions", half_labels,
                    to_half_open_);
  obs::Labels closed_labels = labels;
  closed_labels.push_back({"to", "closed"});
  registry.Register("hermes_resilience_breaker_transitions_total",
                    "Circuit-breaker state transitions", closed_labels,
                    to_closed_);
  registry.Register("hermes_resilience_deadline_aborts_total",
                    "Calls abandoned at a per-call or per-query deadline",
                    labels, deadline_aborts_);
  registry.Register("hermes_resilience_failovers_total",
                    "Calls rerouted to an alternate source after giving up",
                    labels, failovers_);
  registry.Register("hermes_resilience_backoff_sim_ms_total",
                    "Simulated time spent waiting between retry attempts",
                    labels, backoff_ms_);
}

Result<CallOutput> ResilienceInterceptor::AttemptWithRetries(
    CallContext& ctx, const DomainCall& call, const Next& next,
    bool single_attempt, double* waited_ms) {
  const double t_call = ctx.now_ms;
  const int attempts = single_attempt ? 1 : policy_.retry.max_retries + 1;
  double waited = 0.0;
  Status last_failure;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    // Deadlines bound the whole retry schedule, not just the first try.
    const char* expired = nullptr;
    if (t_call + waited >= ctx.deadline_ms) {
      expired = "query";
    } else if (waited >= policy_.call_deadline_ms) {
      expired = "call";
    }
    if (expired != nullptr) {
      ++ctx.metrics.deadline_aborts;
      deadline_aborts_->Add(1);
      ctx.last_failure_site = site_name_;
      ctx.last_failure_cause = "deadline";
      ctx.last_call_penalty_ms = waited;
      *waited_ms = waited;
      return Status::DeadlineExceeded(
          std::string(expired) + " deadline expired before attempt " +
          std::to_string(attempt + 1) + " of " + call.ToString());
    }

    // The attempt sees the query clock advanced by the waits so far: an
    // outage window can end while the call backs off, and the fault plan
    // redraws this attempt's fate under its own attempt index.
    ctx.call_attempt = static_cast<uint64_t>(attempt);
    ctx.now_ms = t_call + waited;
    ctx.last_call_penalty_ms = 0.0;
    Result<CallOutput> run = next(ctx, call);
    ctx.now_ms = t_call;
    ctx.call_attempt = 0;

    if (run.ok()) {
      CallOutput out = std::move(run).value();
      out.first_ms += waited;
      out.all_ms += waited;
      if (out.all_ms > policy_.call_deadline_ms) {
        // Slow-response injection landed: the answers would arrive, but
        // past the deadline — the caller abandons the call at the
        // deadline instead of waiting them out.
        ++ctx.metrics.deadline_aborts;
        deadline_aborts_->Add(1);
        ctx.last_failure_site = site_name_;
        ctx.last_failure_cause = "deadline";
        ctx.last_call_penalty_ms = policy_.call_deadline_ms;
        *waited_ms = policy_.call_deadline_ms;
        return Status::DeadlineExceeded(
            "response to " + call.ToString() + " abandoned at the " +
            std::to_string(policy_.call_deadline_ms) + "ms call deadline");
      }
      *waited_ms = waited;
      return out;
    }

    last_failure = run.status();
    if (!last_failure.IsUnavailable()) {
      *waited_ms = waited;
      return last_failure;  // non-retryable error class
    }
    waited += ctx.last_call_penalty_ms;  // the failed attempt's timeout
    if (attempt + 1 < attempts) {
      double backoff = policy_.retry.backoff_base_ms *
                       std::pow(policy_.retry.backoff_multiplier, attempt);
      if (policy_.retry.backoff_jitter > 0.0) {
        Rng jitter(Rng::StreamSeed(
            Rng::StreamSeed(
                Rng::StreamSeed(seed_ ^ kBackoffStreamSalt, ctx.query_id),
                static_cast<uint64_t>(call.Hash())),
            static_cast<uint64_t>(attempt)));
        backoff *=
            1.0 + policy_.retry.backoff_jitter * (2.0 * jitter.NextDouble() - 1.0);
      }
      obs::SpanScope wait(ctx.tracer, "retry-wait", "resilience",
                          t_call + waited);
      wait.AddArg("attempt", std::to_string(attempt + 1));
      wait.set_sim_end(t_call + waited + backoff);
      waited += backoff;
      ++ctx.metrics.retries;
      ctx.metrics.retry_backoff_ms += backoff;
      retries_->Add(1);
      backoff_ms_->Add(backoff);
      if (ctx.recorder != nullptr) {
        obs::FlightEvent ev =
            obs::FlightEvent::Make(obs::FlightEventKind::kRetry, ctx.query_id,
                                   ctx.recorder_seq++, t_call + waited);
        ev.set_site(site_name_);
        ev.set_domain(call.domain);
        ev.set_detail(ctx.last_failure_cause);
        ev.value = backoff;
        ev.aux = static_cast<uint64_t>(attempt) + 1;
        ctx.recorder->Emit(ev);
      }
    }
  }
  ctx.last_call_penalty_ms = waited;
  *waited_ms = waited;
  return last_failure;
}

Result<CallOutput> ResilienceInterceptor::GiveUp(CallContext& ctx,
                                                 const DomainCall& call,
                                                 Status failure,
                                                 const std::string& cause,
                                                 double lost_ms) {
  if (policy_.enable_failover && failover_ != nullptr) {
    ++ctx.metrics.failovers;
    failovers_->Add(1);
    obs::SpanScope span(ctx.tracer, "failover", "resilience", ctx.now_ms);
    span.AddArg("from", site_name_);
    Result<CallOutput> alternate = failover_(ctx, call);
    if (alternate.ok()) {
      CallOutput out = std::move(alternate).value();
      out.first_ms += lost_ms;  // the time lost before failing over
      out.all_ms += lost_ms;
      span.set_sim_end(ctx.now_ms + out.all_ms);
      return out;
    }
    span.MarkFailed(alternate.status().ToString());
  }

  SourceError err;
  err.site = ctx.last_failure_site.empty() ? site_name_ : ctx.last_failure_site;
  err.domain = call.domain;
  err.function = call.function;
  err.cause = cause;
  err.message = failure.ToString();
  err.t_ms = ctx.now_ms + lost_ms;
  err.masked = false;  // the cache layer above flips this when it masks
  ctx.source_errors.push_back(std::move(err));
  ctx.last_failure_cause = cause;
  if (ctx.last_failure_site.empty()) ctx.last_failure_site = site_name_;
  return failure;
}

Result<CallOutput> ResilienceInterceptor::Intercept(CallContext& ctx,
                                                    const DomainCall& call,
                                                    const Next& next) {
  const std::string& breaker_key =
      site_name_.empty() ? call.domain : site_name_;
  BreakerState* breaker = nullptr;
  bool probe = false;
  if (policy_.breaker.enabled) {
    breaker = &ctx.breaker_states[breaker_key];
    if (breaker->state != BreakerState::kClosed) {
      ++breaker->shed_since_probe;
      if (policy_.breaker.probe_interval > 0 &&
          breaker->shed_since_probe % policy_.breaker.probe_interval == 0) {
        probe = true;
        breaker->state = BreakerState::kHalfOpen;
        to_half_open_->Add(1);
        RecordBreakerEvent(ctx, breaker_key, "half_open", ctx.now_ms,
                           breaker->consecutive_failures);
      } else {
        // Shed: fail fast without attempting the call (that is the load
        // the breaker takes off a struggling site).
        ++ctx.metrics.breaker_shed;
        shed_->Add(1);
        obs::SpanScope span(ctx.tracer, "breaker-shed", "resilience",
                            ctx.now_ms);
        span.MarkFailed("breaker-open");
        ctx.last_failure_site = site_name_;
        ctx.last_failure_cause = "breaker-open";
        ctx.last_call_penalty_ms = 0.0;
        return GiveUp(ctx, call,
                      Status::Unavailable("circuit breaker open for site '" +
                                          site_name_ + "': " +
                                          call.ToString() + " shed"),
                      "breaker-open", 0.0);
      }
    }
  }

  double waited = 0.0;
  // Mark half-open probes for the overload layer below: probe traffic is
  // exempt from the AIMD limiter so a recovering site always sees its probe.
  ctx.breaker_probe = probe;
  Result<CallOutput> run =
      AttemptWithRetries(ctx, call, next, /*single_attempt=*/probe, &waited);
  ctx.breaker_probe = false;
  if (run.ok()) {
    if (breaker != nullptr) {
      if (breaker->state != BreakerState::kClosed) {
        to_closed_->Add(1);
        RecordBreakerEvent(ctx, breaker_key, "closed", ctx.now_ms + waited, 0);
      }
      breaker->state = BreakerState::kClosed;
      breaker->consecutive_failures = 0;
      breaker->shed_since_probe = 0;
    }
    return run;
  }
  if (!run.status().IsUnavailable() && !run.status().IsDeadlineExceeded()) {
    return run;  // invariant violations etc. are not resilience's business
  }

  if (breaker != nullptr) {
    ++breaker->consecutive_failures;
    bool opened = false;
    if (breaker->state == BreakerState::kHalfOpen) {
      opened = true;  // failed probe re-opens
    } else if (breaker->state == BreakerState::kClosed &&
               breaker->consecutive_failures >=
                   policy_.breaker.failure_threshold) {
      opened = true;
    }
    if (opened) {
      breaker->state = BreakerState::kOpen;
      breaker->shed_since_probe = 0;
      to_open_->Add(1);
      RecordBreakerEvent(ctx, breaker_key, "open", ctx.now_ms + waited,
                         breaker->consecutive_failures);
    }
  }
  giveups_->Add(1);
  std::string cause = !ctx.last_failure_cause.empty()
                          ? ctx.last_failure_cause
                          : std::string(run.status().IsDeadlineExceeded()
                                            ? "deadline"
                                            : "unavailable");
  return GiveUp(ctx, call, run.status(), cause, waited);
}

Result<CostVector> ResilienceInterceptor::EstimateCost(
    const lang::DomainCallSpec& pattern, const EstimateNext& next) const {
  HERMES_ASSIGN_OR_RETURN(CostVector inner, next(pattern));
  double availability = link_ != nullptr ? link_->site().availability : 1.0;
  double p = 1.0 - availability;
  if (p <= 0.0) return inner;  // fully available: exact pass-through
  double timeout = link_ != nullptr ? link_->site().retry_timeout_ms
                                    : kDefaultRetryTimeoutMs;
  // Expected penalty of the retry schedule: attempt k (k = 0..R) fails
  // with probability p^(k+1), costing one retry timeout; each retry k is
  // reached with probability p^(k+1) and waits the k-th backoff first.
  double penalty = 0.0;
  double p_k = p;
  double backoff = policy_.retry.backoff_base_ms;
  for (int k = 0; k <= policy_.retry.max_retries; ++k) {
    penalty += p_k * timeout;
    if (k < policy_.retry.max_retries) {
      penalty += p_k * backoff;
      backoff *= policy_.retry.backoff_multiplier;
    }
    p_k *= p;
  }
  return CostVector(inner.t_first_ms + penalty, inner.t_all_ms + penalty,
                    inner.cardinality);
}

}  // namespace hermes::resilience
