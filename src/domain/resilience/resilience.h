#ifndef HERMES_DOMAIN_RESILIENCE_RESILIENCE_H_
#define HERMES_DOMAIN_RESILIENCE_RESILIENCE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "common/sim_costs.h"
#include "domain/pipeline.h"
#include "net/network_interceptor.h"
#include "obs/metrics.h"

namespace hermes::resilience {

/// Bounded-retry policy: a failed (Unavailable) call is reattempted up to
/// `max_retries` times, waiting base * multiplier^attempt (+/- jitter) of
/// simulated time between attempts. Waits are charged on the simulated
/// clock — never slept — and the wait advances the call's view of the
/// query clock, so a retry scheduled past the end of an outage window
/// succeeds.
struct RetryPolicy {
  int max_retries = 0;  ///< Extra attempts after the first (0 = no retry).
  double backoff_base_ms = kDefaultRetryBackoffBaseMs;
  double backoff_multiplier = kDefaultRetryBackoffMultiplier;
  /// Relative jitter on each wait, drawn from a per-(query, call, attempt)
  /// stream — the schedule replays bit-identically at any thread count.
  double backoff_jitter = kDefaultRetryBackoffJitter;
};

/// Per-site circuit breaker (closed → open → half-open). State is scoped
/// to the query's CallContext, so breaker transitions are a pure function
/// of the query's own call sequence (thread-count-invariant replay).
struct BreakerPolicy {
  bool enabled = false;
  /// Consecutive final failures (retries included) that trip the breaker.
  uint64_t failure_threshold = 3;
  /// While open, every `probe_interval`-th call becomes a half-open probe
  /// that actually goes out; the rest are shed without any attempt.
  uint64_t probe_interval = 8;
};

/// Everything the resilience layer enforces for one site's calls.
struct ResiliencePolicy {
  RetryPolicy retry;
  BreakerPolicy breaker;
  /// Per-call deadline on the simulated clock: a call (retries, backoff
  /// and response time included) that would complete later is abandoned
  /// with DeadlineExceeded. +inf = none.
  double call_deadline_ms = std::numeric_limits<double>::infinity();
  /// Allow failover to a wired alternate source on final failure.
  bool enable_failover = true;
};

/// The resilience layer of the call pipeline. Sits between the cache layer
/// and the network layer ([cache →] resilience → network → domain) and
/// implements the degradation ladder's active steps:
///
///   1. circuit breaker: under sustained failure, shed calls without
///      attempting them (half-open probes excepted);
///   2. bounded retries with exponential backoff + jitter, charged on the
///      simulated clock;
///   3. per-call and per-query deadlines (slow responses are abandoned);
///   4. failover to an alternate source exporting the same function;
///   5. structured SourceError recording — the cache layer above may still
///      mask the failure from stale material (marked degraded), and the
///      engine folds unmasked errors into QueryResult::completeness.
///
/// With the default policy the layer is pass-through: one attempt, no
/// breaker, no deadline, identical latencies and statuses — which is what
/// keeps the historical experiment tables byte-identical.
class ResilienceInterceptor : public CallInterceptor {
 public:
  using FailoverFn =
      std::function<Result<CallOutput>(CallContext&, const DomainCall&)>;

  /// `link` is the network layer below (for the site's availability and
  /// retry timeout); may be null for local domains, in which case
  /// estimates pass through and penalties use the defaults. `seed` salts
  /// the backoff-jitter streams (the mediator passes the network seed).
  ResilienceInterceptor(std::string site_name, uint64_t seed,
                        std::shared_ptr<net::NetworkInterceptor> link,
                        ResiliencePolicy policy = {})
      : site_name_(std::move(site_name)),
        seed_(seed),
        link_(std::move(link)),
        policy_(policy) {}

  const std::string& name() const override;

  Result<CallOutput> Intercept(CallContext& ctx, const DomainCall& call,
                               const Next& next) override;

  /// Adds the expected retry penalty — (1-availability)-weighted retry
  /// timeouts plus expected backoff waits — onto the inner estimate. A
  /// fully available site passes through unchanged.
  Result<CostVector> EstimateCost(const lang::DomainCallSpec& pattern,
                                  const EstimateNext& next) const override;

  const ResiliencePolicy& policy() const { return policy_; }
  /// Wiring-time only: policies must not change while queries run.
  void set_policy(const ResiliencePolicy& policy) { policy_ = policy; }

  /// Wiring-time only: where to send a call whose site was given up on.
  /// Mediator::AddFailover installs a function that reroutes the call to
  /// an alternate registered domain exporting the same function.
  void set_failover(FailoverFn failover) { failover_ = std::move(failover); }
  bool has_failover() const { return failover_ != nullptr; }

  /// Registers the hermes_resilience_* counters with `registry`, labeled
  /// {site=<site name>, domain=<domain>}.
  void BindMetrics(obs::MetricsRegistry& registry,
                   const std::string& domain = "");

 private:
  /// The retry loop: runs `next` up to 1 + max_retries times, charging
  /// failed-attempt penalties and backoff waits into `*waited_ms` and
  /// advancing the call's clock view between attempts.
  Result<CallOutput> AttemptWithRetries(CallContext& ctx,
                                        const DomainCall& call,
                                        const Next& next, bool single_attempt,
                                        double* waited_ms);

  /// Final-failure path: failover if wired, else record a SourceError and
  /// propagate `failure` annotated with site and cause.
  Result<CallOutput> GiveUp(CallContext& ctx, const DomainCall& call,
                            Status failure, const std::string& cause,
                            double lost_ms);

  std::string site_name_;
  uint64_t seed_;
  std::shared_ptr<net::NetworkInterceptor> link_;
  ResiliencePolicy policy_;
  FailoverFn failover_;

  // hermes_resilience_* instruments (count whether or not bound).
  std::shared_ptr<obs::Counter> retries_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> giveups_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> shed_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> to_open_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> to_half_open_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> to_closed_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> deadline_aborts_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> failovers_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::FloatCounter> backoff_ms_ =
      std::make_shared<obs::FloatCounter>();
};

}  // namespace hermes::resilience

#endif  // HERMES_DOMAIN_RESILIENCE_RESILIENCE_H_
