#ifndef HERMES_DOMAIN_CALL_H_
#define HERMES_DOMAIN_CALL_H_

#include <string>

#include "common/result.h"
#include "common/value.h"
#include "lang/ast.h"

namespace hermes {

/// A fully-ground external call `domain:function(v_1, ..., v_N)`.
///
/// This is the unit of execution, caching (CIM keys its result cache on it)
/// and statistics recording (DCSM keys cost vectors on it).
struct DomainCall {
  std::string domain;
  std::string function;
  ValueList args;

  /// Converts a ground DomainCallSpec; fails if any argument is non-constant.
  static Result<DomainCall> FromSpec(const lang::DomainCallSpec& spec);

  /// Back-conversion to an all-constant spec.
  lang::DomainCallSpec ToSpec() const;

  bool operator==(const DomainCall& other) const {
    return domain == other.domain && function == other.function &&
           args == other.args;
  }

  size_t Hash() const;

  /// `domain:function(arg, ...)` rendering, usable as a cache key.
  std::string ToString() const;
};

/// Hash functor for unordered containers keyed by DomainCall.
struct DomainCallHash {
  size_t operator()(const DomainCall& call) const { return call.Hash(); }
};

/// The answers returned by one domain call, in domain-defined order.
using AnswerSet = ValueList;

/// Approximate wire size of an answer set in bytes (network accounting).
size_t AnswerSetByteSize(const AnswerSet& answers);

}  // namespace hermes

#endif  // HERMES_DOMAIN_CALL_H_
