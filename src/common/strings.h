#ifndef HERMES_COMMON_STRINGS_H_
#define HERMES_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace hermes {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(const std::string& text, char sep);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

/// Strips leading and trailing ASCII whitespace.
std::string TrimString(const std::string& text);

/// ASCII lower-casing.
std::string ToLower(const std::string& text);

/// True when `text` begins with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

}  // namespace hermes

#endif  // HERMES_COMMON_STRINGS_H_
