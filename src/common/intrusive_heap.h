#ifndef HERMES_COMMON_INTRUSIVE_HEAP_H_
#define HERMES_COMMON_INTRUSIVE_HEAP_H_

#include <cstddef>
#include <vector>

namespace hermes {

/// Embedded heap bookkeeping: the element's current position in the heap
/// array, maintained by IntrusiveMinHeap so Update/Remove are O(log n)
/// without any auxiliary index (the kernel min_heap idiom).
struct IntrusiveHeapNode {
  static constexpr size_t kNotInHeap = static_cast<size_t>(-1);
  size_t index = kNotInHeap;

  bool in_heap() const { return index != kNotInHeap; }
};

/// Binary min-heap over elements embedding an IntrusiveHeapNode at member
/// pointer `Node`, ordered by `Less` over the elements. The heap stores
/// only pointers; elements are allocated and freed by the caller, so
/// membership costs zero per-entry allocations (the backing pointer vector
/// grows amortized and can be Reserve()d up front).
///
/// Because every element knows its own position, decrease-key is native:
/// mutate the element's key, then call Update(item) — no duplicate entries
/// and no lazy-deletion pass, unlike std::priority_queue.
template <typename T, IntrusiveHeapNode T::*Node, typename Less>
class IntrusiveMinHeap {
 public:
  explicit IntrusiveMinHeap(Less less = Less()) : less_(std::move(less)) {}

  IntrusiveMinHeap(const IntrusiveMinHeap&) = delete;
  IntrusiveMinHeap& operator=(const IntrusiveMinHeap&) = delete;

  bool empty() const { return slots_.empty(); }
  size_t size() const { return slots_.size(); }
  void Reserve(size_t n) { slots_.reserve(n); }

  static bool Contains(const T* item) { return (item->*Node).in_heap(); }

  T* Top() const { return slots_.empty() ? nullptr : slots_[0]; }

  void Push(T* item) {
    (item->*Node).index = slots_.size();
    slots_.push_back(item);
    SiftUp(slots_.size() - 1);
  }

  T* Pop() {
    if (slots_.empty()) return nullptr;
    T* top = slots_[0];
    RemoveAt(0);
    (top->*Node).index = IntrusiveHeapNode::kNotInHeap;
    return top;
  }

  /// Restores heap order after `item`'s key changed in either direction.
  void Update(T* item) {
    size_t i = (item->*Node).index;
    if (!SiftUp(i)) SiftDown(i);
  }

  void Remove(T* item) {
    size_t i = (item->*Node).index;
    RemoveAt(i);
    (item->*Node).index = IntrusiveHeapNode::kNotInHeap;
  }

  void Clear() {
    for (T* item : slots_) (item->*Node).index = IntrusiveHeapNode::kNotInHeap;
    slots_.clear();
  }

 private:
  void Place(T* item, size_t i) {
    slots_[i] = item;
    (item->*Node).index = i;
  }

  bool SiftUp(size_t i) {
    bool moved = false;
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!less_(*slots_[i], *slots_[parent])) break;
      T* tmp = slots_[i];
      Place(slots_[parent], i);
      Place(tmp, parent);
      i = parent;
      moved = true;
    }
    return moved;
  }

  void SiftDown(size_t i) {
    size_t n = slots_.size();
    for (;;) {
      size_t smallest = i;
      size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && less_(*slots_[l], *slots_[smallest])) smallest = l;
      if (r < n && less_(*slots_[r], *slots_[smallest])) smallest = r;
      if (smallest == i) return;
      T* tmp = slots_[i];
      Place(slots_[smallest], i);
      Place(tmp, smallest);
      i = smallest;
    }
  }

  void RemoveAt(size_t i) {
    T* last = slots_.back();
    slots_.pop_back();
    if (i < slots_.size()) {
      Place(last, i);
      if (!SiftUp(i)) SiftDown(i);
    }
  }

  std::vector<T*> slots_;
  Less less_;
};

}  // namespace hermes

#endif  // HERMES_COMMON_INTRUSIVE_HEAP_H_
