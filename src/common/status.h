#ifndef HERMES_COMMON_STATUS_H_
#define HERMES_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace hermes {

/// Coarse error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input from the caller.
  kNotFound,          ///< Lookup target does not exist.
  kAlreadyExists,     ///< Insert target already present.
  kUnavailable,       ///< Source temporarily unreachable (retryable).
  kDeadlineExceeded,  ///< Per-call or per-query deadline expired.
  kFailedPrecondition,  ///< Operation illegal in the object's current state.
  kParseError,        ///< Mediator-language text failed to parse.
  kTypeError,         ///< Value of an unexpected runtime type.
  kUnimplemented,     ///< Feature not supported by this domain/module.
  kInternal,          ///< Invariant violation inside the library.
  kResourceExhausted,  ///< Shed by admission control or a concurrency limit.
};

/// Human-readable name of a StatusCode ("Ok", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// Error-or-success result of an operation, in the RocksDB/Arrow style.
///
/// Library functions that can fail return a Status (or a Result<T>, see
/// result.h) instead of throwing; exceptions never cross the public API.
class Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define HERMES_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::hermes::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (false)

}  // namespace hermes

#endif  // HERMES_COMMON_STATUS_H_
