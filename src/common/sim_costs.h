#ifndef HERMES_COMMON_SIM_COSTS_H_
#define HERMES_COMMON_SIM_COSTS_H_

namespace hermes {

/// Simulated CPU cost constants shared by the execution engine and the
/// optimizer's cost estimator. Single-sourced here so the two sides of the
/// cost model — what the executor charges and what the estimator predicts —
/// can never drift apart (they used to be duplicated literals in
/// engine/executor.h and optimizer/estimator.h).

/// Simulated per-comparison CPU time (evaluating one constraint atom, and
/// the estimator's per-tuple comparison charge).
inline constexpr double kDefaultComparisonCostMs = 0.001;

/// Simulated per-tuple plumbing cost of moving one rule-body solution
/// through a head unification.
inline constexpr double kDefaultUnificationCostMs = 0.0005;

}  // namespace hermes

#endif  // HERMES_COMMON_SIM_COSTS_H_
