#ifndef HERMES_COMMON_SIM_COSTS_H_
#define HERMES_COMMON_SIM_COSTS_H_

namespace hermes {

/// Simulated CPU cost constants shared by the execution engine and the
/// optimizer's cost estimator. Single-sourced here so the two sides of the
/// cost model — what the executor charges and what the estimator predicts —
/// can never drift apart (they used to be duplicated literals in
/// engine/executor.h and optimizer/estimator.h).

/// Simulated per-comparison CPU time (evaluating one constraint atom, and
/// the estimator's per-tuple comparison charge).
inline constexpr double kDefaultComparisonCostMs = 0.001;

/// Simulated per-tuple plumbing cost of moving one rule-body solution
/// through a head unification.
inline constexpr double kDefaultUnificationCostMs = 0.0005;

/// Simulated time one remote call loses discovering that its site is
/// unavailable (the paper's LinkParams.penalty_ms "retry timeout"). The
/// default of SiteParams::retry_timeout_ms, and the per-attempt penalty
/// both the resilience layer's retry loop and the estimator's expected
/// retry costing charge.
inline constexpr double kDefaultRetryTimeoutMs = 2000.0;

/// Defaults of the resilience layer's exponential backoff between retry
/// attempts: wait = base * multiplier^attempt, +/- the jitter fraction,
/// charged on the simulated clock (never slept).
inline constexpr double kDefaultRetryBackoffBaseMs = 100.0;
inline constexpr double kDefaultRetryBackoffMultiplier = 2.0;
inline constexpr double kDefaultRetryBackoffJitter = 0.10;

}  // namespace hermes

#endif  // HERMES_COMMON_SIM_COSTS_H_
