#ifndef HERMES_COMMON_ROW_H_
#define HERMES_COMMON_ROW_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/value.h"

namespace hermes {

/// Field type of a row slot. `kAny` means the planner could not pin the
/// type statically (the mediator's domains are dynamically typed); the slot
/// then carries its runtime tag like a miniature variant.
enum class RowFieldType : uint8_t {
  kAny,
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
  kList,
  kStruct,
};

const char* RowFieldTypeName(RowFieldType type);

/// One result column: the variable name it carries and its statically
/// inferred type (from adornments, rule heads and comparison constants at
/// PlanCompiler time).
struct RowField {
  std::string name;
  RowFieldType type = RowFieldType::kAny;
};

/// The shape of a query's result rows, resolved once at plan-compile time
/// so per-row work never touches field names again: operators address
/// slots by position.
class RowSchema {
 public:
  RowSchema() = default;
  explicit RowSchema(std::vector<RowField> fields)
      : fields_(std::move(fields)) {}

  /// Schema over plain variables, all typed kAny.
  static RowSchema ForVariables(const std::vector<std::string>& names);

  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }
  const RowField& field(size_t i) const { return fields_[i]; }
  std::vector<RowField>& fields() { return fields_; }

  /// Position of `name`, or -1. Linear scan — schemas are a handful of
  /// columns and this runs at compile time, not per row.
  int FieldIndex(std::string_view name) const;

  std::string ToString() const;

 private:
  std::vector<RowField> fields_;
};

/// A flat, schema-described result row.
///
/// The payload is one contiguous arena-allocated slot array: ints, doubles
/// and bools inline (8 bytes); strings as arena-copied (pointer, length)
/// pairs; lists and structs as pointers to arena-owned legacy Values (the
/// one escape hatch for deeply nested payloads, still a single pointer in
/// the row itself). A Row is therefore a 2-word handle — copying it copies
/// no data, and dropping it frees nothing: the arena reclaims everything
/// wholesale at query end.
///
/// Rows convert to the heap-owned legacy representation only at the
/// mediator boundary (ToValues/ToValue — answers, CIM keys, EXPLAIN);
/// inside the operator tree they never touch the global heap.
class Row {
 public:
  struct Slot {
    enum class Tag : uint8_t { kNull, kBool, kInt, kDouble, kString, kRef };
    Tag tag = Tag::kNull;
    uint32_t len = 0;  ///< String length (kString only).
    union {
      bool b;
      int64_t i;
      double d;
      const char* s;    ///< Arena-copied, NUL-terminated.
      const Value* ref; ///< Arena-owned deep copy (kList/kStruct payloads).
    };
    Slot() : i(0) {}
  };

  Row() = default;

  /// An all-null row of `schema`'s width, slots allocated from `arena`.
  static Row Make(const RowSchema* schema, Arena* arena);

  /// Packs `values` (padded with nulls / truncated to the schema width).
  static Row FromValues(const RowSchema* schema, const ValueList& values,
                        Arena* arena);

  bool valid() const { return slots_ != nullptr; }
  const RowSchema* schema() const { return schema_; }
  size_t size() const { return schema_ == nullptr ? 0 : schema_->size(); }

  /// Packs `v` into slot `i`. String payloads are copied into the arena;
  /// list/struct payloads become arena-owned Value copies.
  void Set(size_t i, const Value& v, Arena* arena);
  void SetNull(size_t i) { slots_[i] = Slot(); }

  /// Rebuilds the heap-owned legacy Value of slot `i`.
  Value ToValue(size_t i) const;
  /// Rebuilds the whole row as a legacy value list.
  ValueList ToValues() const;

  /// Three-way comparison of slot `i` against the same slot of `other`,
  /// byte-identical in outcome to Value::Compare (numeric cross-type
  /// comparison included).
  int CompareField(size_t i, const Row& other) const;
  /// Lexicographic whole-row comparison (schema widths must match).
  int Compare(const Row& other) const;

 private:
  const RowSchema* schema_ = nullptr;
  Slot* slots_ = nullptr;
};

}  // namespace hermes

#endif  // HERMES_COMMON_ROW_H_
