#ifndef HERMES_COMMON_RESULT_H_
#define HERMES_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hermes {

/// Value-or-Status, in the style of arrow::Result / absl::StatusOr.
///
/// A Result<T> holds either a T (when status().ok()) or a non-OK Status.
/// Accessing value() on an error Result is a programming error and asserts.
template <typename T>
class Result {
 public:
  /// Constructs an error Result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without value");
  }
  /// Constructs a successful Result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` when this Result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs`.
#define HERMES_ASSIGN_OR_RETURN(lhs, rexpr)             \
  HERMES_ASSIGN_OR_RETURN_IMPL_(                        \
      HERMES_RESULT_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define HERMES_RESULT_CONCAT_INNER_(a, b) a##b
#define HERMES_RESULT_CONCAT_(a, b) HERMES_RESULT_CONCAT_INNER_(a, b)
#define HERMES_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr)  \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace hermes

#endif  // HERMES_COMMON_RESULT_H_
