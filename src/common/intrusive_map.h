#ifndef HERMES_COMMON_INTRUSIVE_MAP_H_
#define HERMES_COMMON_INTRUSIVE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace hermes {

/// Intrusive containers in the Linux-kernel hashtable/list idiom: the link
/// words are embedded in the element itself, so membership costs zero
/// per-entry allocations — the element is allocated once by its owner and
/// threaded into however many indexes it participates in (e.g. a cache
/// entry that sits in a hash index AND an LRU list with one allocation).

/// Embedded doubly-linked-list links (kernel `struct list_head`).
struct IntrusiveListNode {
  IntrusiveListNode* prev = nullptr;
  IntrusiveListNode* next = nullptr;

  bool linked() const { return next != nullptr; }
  void Unlink() {
    prev->next = next;
    next->prev = prev;
    prev = next = nullptr;
  }
};

/// Circular doubly-linked list over elements embedding an
/// IntrusiveListNode at member pointer `Node`. The list owns nothing.
template <typename T, IntrusiveListNode T::*Node>
class IntrusiveList {
 public:
  IntrusiveList() { head_.prev = head_.next = &head_; }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }

  void PushFront(T* item) {
    NoteOffset(item);
    InsertAfter(&head_, &(item->*Node));
  }
  void PushBack(T* item) {
    NoteOffset(item);
    InsertAfter(head_.prev, &(item->*Node));
  }

  static void Remove(T* item) { (item->*Node).Unlink(); }

  void MoveToFront(T* item) {
    IntrusiveListNode* n = &(item->*Node);
    if (head_.next == n) return;
    n->Unlink();
    InsertAfter(&head_, n);
  }

  T* Front() { return empty() ? nullptr : FromNode(head_.next); }
  T* Back() { return empty() ? nullptr : FromNode(head_.prev); }

  T* PopBack() {
    if (empty()) return nullptr;
    T* item = FromNode(head_.prev);
    head_.prev->Unlink();
    return item;
  }

  void Clear() { head_.prev = head_.next = &head_; }

  /// Iterates front (most recent) to back; `fn` returning false stops.
  /// `fn` must not unlink elements other than the one it was given.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (IntrusiveListNode* n = head_.next; n != &head_;) {
      IntrusiveListNode* next = n->next;
      if (!fn(*FromNode(n))) return;
      n = next;
    }
  }

 private:
  // container_of: the node lives at a fixed offset inside its element,
  // measured once from a real element at link time (no fabricated-object
  // arithmetic, so sanitizers stay quiet).
  T* FromNode(IntrusiveListNode* n) const {
    return reinterpret_cast<T*>(reinterpret_cast<char*>(n) - offset_);
  }

  void NoteOffset(T* item) {
    offset_ = reinterpret_cast<char*>(&(item->*Node)) -
              reinterpret_cast<char*>(item);
  }

  static void InsertAfter(IntrusiveListNode* pos, IntrusiveListNode* n) {
    n->prev = pos;
    n->next = pos->next;
    pos->next->prev = n;
    pos->next = n;
  }

  IntrusiveListNode head_;
  ptrdiff_t offset_ = 0;
};

/// Embedded hash-chain link plus the entry's cached hash (computed once at
/// insert; rehash and lookups never re-hash the key).
struct IntrusiveMapNode {
  IntrusiveMapNode* next = nullptr;
  size_t hash = 0;
};

/// Chained hash table over elements embedding an IntrusiveMapNode at
/// member pointer `Node` — the kernel `DECLARE_HASHTABLE`/`hash_add` idiom
/// with dynamic resizing. The table owns only its bucket array; elements
/// are allocated (once) and freed by the caller.
///
/// Keys live inside the elements: lookups take a precomputed hash plus an
/// equality predicate over the candidate element, so the map imposes no key
/// type of its own and never copies keys.
template <typename T, IntrusiveMapNode T::*Node>
class IntrusiveHashMap {
 public:
  IntrusiveHashMap() = default;

  IntrusiveHashMap(const IntrusiveHashMap&) = delete;
  IntrusiveHashMap& operator=(const IntrusiveHashMap&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// First element with matching hash for which `eq(candidate)` is true.
  template <typename Eq>
  T* Find(size_t hash, Eq&& eq) const {
    if (buckets_ == nullptr) return nullptr;
    for (IntrusiveMapNode* n = buckets_[Bucket(hash)]; n != nullptr;
         n = n->next) {
      if (n->hash == hash) {
        T* item = FromNode(n);
        if (eq(*item)) return item;
      }
    }
    return nullptr;
  }

  /// Inserts `item` under `hash`. The caller guarantees the key is not
  /// already present (use Find first) — duplicate keys would shadow.
  void Insert(T* item, size_t hash) {
    if (size_ + 1 > (num_buckets_ - num_buckets_ / 4)) {  // load > 0.75
      Rehash(num_buckets_ == 0 ? kMinBuckets : num_buckets_ * 2);
    }
    offset_ = reinterpret_cast<char*>(&(item->*Node)) -
              reinterpret_cast<char*>(item);
    IntrusiveMapNode* n = &(item->*Node);
    n->hash = hash;
    size_t b = Bucket(hash);
    n->next = buckets_[b];
    buckets_[b] = n;
    ++size_;
  }

  /// Unlinks `item` (which must be present). Does not free it.
  void Remove(T* item) {
    IntrusiveMapNode* n = &(item->*Node);
    IntrusiveMapNode** slot = &buckets_[Bucket(n->hash)];
    while (*slot != n) slot = &(*slot)->next;
    *slot = n->next;
    n->next = nullptr;
    --size_;
  }

  /// Unlinks every element without touching them (owners free separately).
  void Clear() {
    for (size_t i = 0; i < num_buckets_; ++i) buckets_[i] = nullptr;
    size_ = 0;
  }

  /// Iterates all elements in unspecified order; `fn` returning false
  /// stops. `fn` may free the element it was given (its chain link is read
  /// first) but must not otherwise mutate the table.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < num_buckets_; ++i) {
      for (IntrusiveMapNode* n = buckets_[i]; n != nullptr;) {
        IntrusiveMapNode* next = n->next;
        if (!fn(*FromNode(n))) return;
        n = next;
      }
    }
  }

 private:
  static constexpr size_t kMinBuckets = 16;  // power of two

  size_t Bucket(size_t hash) const { return hash & (num_buckets_ - 1); }

  T* FromNode(IntrusiveMapNode* n) const {
    return reinterpret_cast<T*>(reinterpret_cast<char*>(n) - offset_);
  }

  void Rehash(size_t new_buckets) {
    auto fresh = std::make_unique<IntrusiveMapNode*[]>(new_buckets);
    for (size_t i = 0; i < new_buckets; ++i) fresh[i] = nullptr;
    size_t old_count = num_buckets_;
    auto old = std::move(buckets_);
    buckets_ = std::move(fresh);
    num_buckets_ = new_buckets;
    for (size_t i = 0; i < old_count; ++i) {
      for (IntrusiveMapNode* n = old[i]; n != nullptr;) {
        IntrusiveMapNode* next = n->next;
        size_t b = Bucket(n->hash);
        n->next = buckets_[b];
        buckets_[b] = n;
        n = next;
      }
    }
  }

  std::unique_ptr<IntrusiveMapNode*[]> buckets_;
  size_t num_buckets_ = 0;
  size_t size_ = 0;
  ptrdiff_t offset_ = 0;
};

}  // namespace hermes

#endif  // HERMES_COMMON_INTRUSIVE_MAP_H_
