#ifndef HERMES_COMMON_CLOCK_H_
#define HERMES_COMMON_CLOCK_H_

#include <cstdint>

namespace hermes {

/// Deterministic virtual clock, measured in milliseconds.
///
/// All costs in the system — network latency, domain computation, transfer
/// time — are *charged* to a SimClock instead of being slept through. The
/// execution engine reads time-to-first-answer and time-to-all-answers off
/// this clock, which makes every experiment deterministic and instantaneous
/// in wall-clock terms while preserving the relative shapes the paper's
/// evaluation reports.
class SimClock {
 public:
  SimClock() = default;

  /// Current virtual time in milliseconds since construction/Reset().
  double now_ms() const { return now_ms_; }

  /// Charges `ms` of simulated elapsed time. Negative charges are ignored.
  void Advance(double ms) {
    if (ms > 0) now_ms_ += ms;
  }

  /// Rewinds the clock to zero.
  void Reset() { now_ms_ = 0.0; }

 private:
  double now_ms_ = 0.0;
};

/// Monotonically increasing logical timestamp used to order statistics
/// records (the paper's `record.time` column).
class LogicalTime {
 public:
  uint64_t Next() { return ++last_; }
  uint64_t last() const { return last_; }

 private:
  uint64_t last_ = 0;
};

}  // namespace hermes

#endif  // HERMES_COMMON_CLOCK_H_
