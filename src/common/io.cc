#include "common/io.h"

#include <fstream>
#include <sstream>

namespace hermes {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("I/O error reading '" + path + "'");
  }
  return out.str();
}

Status WriteStringToFile(const std::string& path,
                         const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << contents;
  out.flush();
  if (!out) {
    return Status::Internal("I/O error writing '" + path + "'");
  }
  return Status::OK();
}

}  // namespace hermes
