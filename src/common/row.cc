#include "common/row.h"

#include <algorithm>
#include <new>

namespace hermes {

namespace {

/// Type rank mirroring Value::Compare's ordering of mixed-type slots.
int SlotRank(const Row::Slot& s) {
  switch (s.tag) {
    case Row::Slot::Tag::kNull:
      return 0;
    case Row::Slot::Tag::kBool:
      return 1;
    case Row::Slot::Tag::kInt:
    case Row::Slot::Tag::kDouble:
      return 2;
    case Row::Slot::Tag::kString:
      return 3;
    case Row::Slot::Tag::kRef:
      return -1;  // resolved through the referenced Value
  }
  return 0;
}

int Sign3(int c) { return c == 0 ? 0 : (c < 0 ? -1 : 1); }

}  // namespace

const char* RowFieldTypeName(RowFieldType type) {
  switch (type) {
    case RowFieldType::kAny:
      return "any";
    case RowFieldType::kNull:
      return "null";
    case RowFieldType::kBool:
      return "bool";
    case RowFieldType::kInt:
      return "int";
    case RowFieldType::kDouble:
      return "double";
    case RowFieldType::kString:
      return "string";
    case RowFieldType::kList:
      return "list";
    case RowFieldType::kStruct:
      return "struct";
  }
  return "any";
}

RowSchema RowSchema::ForVariables(const std::vector<std::string>& names) {
  std::vector<RowField> fields;
  fields.reserve(names.size());
  for (const std::string& name : names) {
    fields.push_back(RowField{name, RowFieldType::kAny});
  }
  return RowSchema(std::move(fields));
}

int RowSchema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string RowSchema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += RowFieldTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

Row Row::Make(const RowSchema* schema, Arena* arena) {
  Row row;
  row.schema_ = schema;
  size_t n = schema->size();
  row.slots_ = static_cast<Slot*>(
      arena->Alloc(n * sizeof(Slot), alignof(Slot)));
  for (size_t i = 0; i < n; ++i) new (&row.slots_[i]) Slot();
  return row;
}

Row Row::FromValues(const RowSchema* schema, const ValueList& values,
                    Arena* arena) {
  Row row = Make(schema, arena);
  size_t n = std::min(schema->size(), values.size());
  for (size_t i = 0; i < n; ++i) row.Set(i, values[i], arena);
  return row;
}

void Row::Set(size_t i, const Value& v, Arena* arena) {
  Slot& slot = slots_[i];
  switch (v.type()) {
    case Value::Type::kNull:
      slot = Slot();
      return;
    case Value::Type::kBool:
      slot.tag = Slot::Tag::kBool;
      slot.b = v.as_bool();
      return;
    case Value::Type::kInt:
      slot.tag = Slot::Tag::kInt;
      slot.i = v.as_int();
      return;
    case Value::Type::kDouble:
      slot.tag = Slot::Tag::kDouble;
      slot.d = v.as_double();
      return;
    case Value::Type::kString: {
      const std::string& s = v.as_string();
      slot.tag = Slot::Tag::kString;
      slot.len = static_cast<uint32_t>(s.size());
      slot.s = arena->CopyString(s);
      return;
    }
    case Value::Type::kList:
    case Value::Type::kStruct:
      slot.tag = Slot::Tag::kRef;
      slot.ref = arena->New<Value>(v);
      return;
  }
}

Value Row::ToValue(size_t i) const {
  const Slot& slot = slots_[i];
  switch (slot.tag) {
    case Slot::Tag::kNull:
      return Value::Null();
    case Slot::Tag::kBool:
      return Value::Bool(slot.b);
    case Slot::Tag::kInt:
      return Value::Int(slot.i);
    case Slot::Tag::kDouble:
      return Value::Double(slot.d);
    case Slot::Tag::kString:
      return Value::Str(std::string(slot.s, slot.len));
    case Slot::Tag::kRef:
      return *slot.ref;
  }
  return Value::Null();
}

ValueList Row::ToValues() const {
  ValueList out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) out.push_back(ToValue(i));
  return out;
}

int Row::CompareField(size_t i, const Row& other) const {
  const Slot& a = slots_[i];
  const Slot& b = other.slots_[i];

  // Referenced payloads fall back to the legacy comparison (they hold
  // legacy Values already); mixed slot/ref pairs rebuild the slot side.
  if (a.tag == Slot::Tag::kRef || b.tag == Slot::Tag::kRef) {
    if (a.tag == Slot::Tag::kRef && b.tag == Slot::Tag::kRef) {
      return a.ref->Compare(*b.ref);
    }
    if (a.tag == Slot::Tag::kRef) return a.ref->Compare(other.ToValue(i));
    return ToValue(i).Compare(*b.ref);
  }

  int ra = SlotRank(a), rb = SlotRank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a.tag) {
    case Slot::Tag::kNull:
      return 0;
    case Slot::Tag::kBool:
      return a.b == b.b ? 0 : (a.b < b.b ? -1 : 1);
    case Slot::Tag::kInt:
    case Slot::Tag::kDouble: {
      if (a.tag == Slot::Tag::kInt && b.tag == Slot::Tag::kInt) {
        return a.i == b.i ? 0 : (a.i < b.i ? -1 : 1);
      }
      double da = a.tag == Slot::Tag::kInt ? static_cast<double>(a.i) : a.d;
      double db = b.tag == Slot::Tag::kInt ? static_cast<double>(b.i) : b.d;
      return da == db ? 0 : (da < db ? -1 : 1);
    }
    case Slot::Tag::kString: {
      std::string_view sa(a.s, a.len), sb(b.s, b.len);
      return Sign3(static_cast<int>(sa.compare(sb)));
    }
    case Slot::Tag::kRef:
      break;  // handled above
  }
  return 0;
}

int Row::Compare(const Row& other) const {
  for (size_t i = 0; i < size(); ++i) {
    int c = CompareField(i, other);
    if (c != 0) return c;
  }
  return 0;
}

}  // namespace hermes
