#ifndef HERMES_COMMON_VALUE_H_
#define HERMES_COMMON_VALUE_H_

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hermes {

class Value;

/// Ordered field list of a structured value. Field order is preserved so
/// positional access ($ans.1, $ans.2 in the paper's rule syntax) is defined.
using StructFields = std::vector<std::pair<std::string, Value>>;
using ValueList = std::vector<Value>;

/// Dynamically-typed runtime value exchanged between the mediator and
/// external domains.
///
/// Domains may return elementary values (ints, strings, ...) or complex
/// types: lists and attribute-named structs. Attribute paths such as
/// `X.loc` or positional `$ans.2` are resolved with GetAttr()/GetIndex().
class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kList, kStruct };

  /// Null value.
  Value() : repr_(std::monostate{}) {}
  explicit Value(bool b) : repr_(b) {}
  explicit Value(int64_t i) : repr_(i) {}
  explicit Value(int i) : repr_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : repr_(d) {}
  explicit Value(std::string s) : repr_(std::move(s)) {}
  explicit Value(const char* s) : repr_(std::string(s)) {}
  explicit Value(ValueList list) : repr_(std::move(list)) {}
  explicit Value(StructFields fields) : repr_(std::move(fields)) {}

  /// Convenience factories (clearer at call sites than constructor picks).
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(b); }
  static Value Int(int64_t i) { return Value(i); }
  static Value Double(double d) { return Value(d); }
  static Value Str(std::string s) { return Value(std::move(s)); }
  static Value List(ValueList items) { return Value(std::move(items)); }
  static Value Struct(StructFields fields) { return Value(std::move(fields)); }
  /// A positional tuple, represented as a list.
  static Value TupleOf(std::initializer_list<Value> items) {
    return Value(ValueList(items));
  }

  Type type() const { return static_cast<Type>(repr_.index()); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_list() const { return std::holds_alternative<ValueList>(repr_); }
  bool is_struct() const { return std::holds_alternative<StructFields>(repr_); }

  bool as_bool() const { return std::get<bool>(repr_); }
  int64_t as_int() const { return std::get<int64_t>(repr_); }
  double as_double() const { return std::get<double>(repr_); }
  /// Numeric value widened to double; valid only when is_numeric().
  double as_number() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }
  const std::string& as_string() const& { return std::get<std::string>(repr_); }
  const ValueList& as_list() const& { return std::get<ValueList>(repr_); }
  const StructFields& as_struct() const& {
    return std::get<StructFields>(repr_);
  }

  /// Rvalue overloads move the payload out instead of forcing a copy at the
  /// call site (`std::move(v).as_list()` steals the vector).
  std::string as_string() && { return std::get<std::string>(std::move(repr_)); }
  ValueList as_list() && { return std::get<ValueList>(std::move(repr_)); }
  StructFields as_struct() && {
    return std::get<StructFields>(std::move(repr_));
  }

  /// Named attribute of a struct value.
  Result<Value> GetAttr(const std::string& name) const;
  /// 1-based positional component of a list or struct value.
  Result<Value> GetIndex(size_t index1) const;
  /// Resolves a dotted path: each element is an attribute name or a 1-based
  /// index written as decimal digits. An empty path yields *this.
  Result<Value> GetPath(const std::vector<std::string>& path) const;

  /// View accessors: the returned pointer aliases this value's own storage
  /// (or *this itself for the elementary 1-tuple case) and stays valid while
  /// the value is alive and unmodified. These are the hot-path forms — no
  /// payload is copied.
  ///
  /// `memo` optionally caches the field position across calls: pass the same
  /// slot for repeated lookups of the same attribute and the linear scan is
  /// skipped whenever the memoized index still names the right field (rows
  /// from one domain share their struct layout, so it nearly always does).
  Result<const Value*> GetAttrPtr(const std::string& name,
                                  size_t* memo = nullptr) const;
  Result<const Value*> GetIndexPtr(size_t index1) const;
  Result<const Value*> GetPathPtr(const std::vector<std::string>& path) const;

  /// Three-way comparison; ints and doubles compare numerically, otherwise
  /// values of different types order by type id. Returns -1/0/+1.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Stable hash, consistent with operator== (numeric cross-type equality
  /// included).
  size_t Hash() const;

  /// Literal syntax: 42, 3.5, true, 'str', [v1, v2], {a: v1, b: v2}, null.
  std::string ToString() const;

  /// Approximate serialized size in bytes, used by the network simulator to
  /// charge transfer time for answer sets.
  size_t ApproxByteSize() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, ValueList,
               StructFields>
      repr_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Joins the ToString() of each element with ", ".
std::string ValueListToString(const ValueList& values);

}  // namespace hermes

#endif  // HERMES_COMMON_VALUE_H_
