#ifndef HERMES_COMMON_IO_H_
#define HERMES_COMMON_IO_H_

#include <string>

#include "common/result.h"

namespace hermes {

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, const std::string& contents);

}  // namespace hermes

#endif  // HERMES_COMMON_IO_H_
