#ifndef HERMES_COMMON_RNG_H_
#define HERMES_COMMON_RNG_H_

#include <cstdint>

namespace hermes {

/// Deterministic 64-bit PRNG (splitmix64). Used for synthetic data
/// generation and simulated network jitter so that every experiment is
/// exactly reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound) { return NextU64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double NextDoubleIn(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Approximately normal sample (Irwin–Hall of 12 uniforms), mean 0, sd 1.
  double NextGaussian() {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) sum += NextDouble();
    return sum - 6.0;
  }

  /// Derives an independent stream seed from (base seed, stream id) — one
  /// splitmix64 mixing round over their combination. Streams with distinct
  /// ids are statistically independent, and a stream's draws depend only on
  /// (base, stream_id), never on what other streams consumed. This is what
  /// makes per-query simulated latencies replayable at any thread count:
  /// query N's network jitter comes from StreamSeed(base, N) no matter how
  /// queries interleave.
  static uint64_t StreamSeed(uint64_t base, uint64_t stream_id) {
    uint64_t z = base + stream_id * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

}  // namespace hermes

#endif  // HERMES_COMMON_RNG_H_
