#ifndef HERMES_COMMON_ARENA_H_
#define HERMES_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>

namespace hermes {

/// Monotonic bump allocator for per-query scratch data.
///
/// Allocations come out of geometrically-growing malloc'd chunks and are
/// never freed individually: the whole arena is released wholesale when the
/// query ends (destructor or Reset()). Objects with non-trivial destructors
/// registered through New<T>() are destroyed in reverse allocation order on
/// Reset — the protobuf-arena discipline.
///
/// Not thread-safe: one arena belongs to one query's execution thread, the
/// same ownership rule as ExecContext itself.
class Arena {
 public:
  static constexpr size_t kMinChunkBytes = 4 * 1024;
  static constexpr size_t kMaxChunkBytes = 256 * 1024;

  Arena() = default;
  ~Arena() { FreeAll(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw uninitialized storage. `align` must be a power of two.
  void* Alloc(size_t size, size_t align = alignof(std::max_align_t)) {
    uintptr_t p = (cursor_ + (align - 1)) & ~uintptr_t(align - 1);
    if (p + size > limit_) {
      Refill(size, align);
      p = (cursor_ + (align - 1)) & ~uintptr_t(align - 1);
    }
    cursor_ = p + size;
    bytes_used_ += size;
    return reinterpret_cast<void*>(p);
  }

  /// Constructs a T in the arena. Non-trivially-destructible types are
  /// registered for destruction at Reset()/arena teardown.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    T* obj = new (Alloc(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      auto* node = static_cast<DtorNode*>(
          Alloc(sizeof(DtorNode), alignof(DtorNode)));
      node->object = obj;
      node->destroy = [](void* p) { static_cast<T*>(p)->~T(); };
      node->next = dtors_;
      dtors_ = node;
    }
    return obj;
  }

  /// Copies `s` into the arena (NUL-terminated). Returns the copy.
  const char* CopyString(std::string_view s) {
    char* out = static_cast<char*>(Alloc(s.size() + 1, 1));
    std::memcpy(out, s.data(), s.size());
    out[s.size()] = '\0';
    return out;
  }

  /// Destroys registered objects and releases every chunk except the first,
  /// which is rewound for reuse — a served query leaves its first chunk
  /// warm for the next one when the arena is pooled.
  void Reset() {
    RunDtors();
    Chunk* keep = nullptr;
    for (Chunk* c = chunks_; c != nullptr;) {
      Chunk* next = c->next;
      if (next == nullptr) {
        keep = c;  // the first chunk allocated is the tail of the list
      } else {
        std::free(c);
      }
      c = next;
    }
    chunks_ = keep;
    if (keep != nullptr) {
      keep->next = nullptr;
      cursor_ = reinterpret_cast<uintptr_t>(keep + 1);
      limit_ = reinterpret_cast<uintptr_t>(keep) + keep->size;
      bytes_reserved_ = keep->size;
    } else {
      cursor_ = limit_ = 0;
      bytes_reserved_ = 0;
    }
    bytes_used_ = 0;
  }

  /// Bytes handed out since construction/Reset (excluding alignment waste).
  size_t bytes_used() const { return bytes_used_; }
  /// Bytes of chunk capacity currently reserved from the heap.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Chunk {
    Chunk* next;
    size_t size;  ///< Including this header.
  };
  struct DtorNode {
    void* object;
    void (*destroy)(void*);
    DtorNode* next;
  };

  void Refill(size_t size, size_t align) {
    size_t want = sizeof(Chunk) + size + align;
    size_t chunk_size = chunks_ == nullptr
                            ? kMinChunkBytes
                            : std::min(chunks_->size * 2, kMaxChunkBytes);
    if (chunk_size < want) chunk_size = want;
    auto* chunk = static_cast<Chunk*>(std::malloc(chunk_size));
    if (chunk == nullptr) throw std::bad_alloc();
    chunk->next = chunks_;
    chunk->size = chunk_size;
    chunks_ = chunk;
    bytes_reserved_ += chunk_size;
    cursor_ = reinterpret_cast<uintptr_t>(chunk + 1);
    limit_ = reinterpret_cast<uintptr_t>(chunk) + chunk_size;
  }

  void RunDtors() {
    for (DtorNode* n = dtors_; n != nullptr; n = n->next) {
      n->destroy(n->object);
    }
    dtors_ = nullptr;
  }

  void FreeAll() {
    RunDtors();
    for (Chunk* c = chunks_; c != nullptr;) {
      Chunk* next = c->next;
      std::free(c);
      c = next;
    }
    chunks_ = nullptr;
  }

  Chunk* chunks_ = nullptr;      ///< Newest first; the oldest is the tail.
  DtorNode* dtors_ = nullptr;    ///< Newest first (reverse destruction).
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace hermes

#endif  // HERMES_COMMON_ARENA_H_
