#include "common/value.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>

namespace hermes {

namespace {

// Rank used to order values of different types deterministically.
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_bool()) return 1;
  if (v.is_numeric()) return 2;  // ints and doubles share a rank.
  if (v.is_string()) return 3;
  if (v.is_list()) return 4;
  return 5;  // struct
}

bool IsAllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

void HashCombine(size_t& seed, size_t h) {
  seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

std::string FormatDouble(double d) {
  // Integral doubles print with a trailing ".0" so the literal re-parses as
  // a double rather than an int.
  std::ostringstream os;
  os << d;
  std::string s = os.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

}  // namespace

Result<const Value*> Value::GetAttrPtr(const std::string& name,
                                       size_t* memo) const {
  if (!is_struct()) {
    return Status::TypeError("attribute '" + name +
                             "' requested on non-struct value " + ToString());
  }
  const StructFields& fields = as_struct();
  if (memo != nullptr && *memo < fields.size() &&
      fields[*memo].first == name) {
    return &fields[*memo].second;
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].first == name) {
      if (memo != nullptr) *memo = i;
      return &fields[i].second;
    }
  }
  return Status::NotFound("no attribute '" + name + "' in " + ToString());
}

Result<const Value*> Value::GetIndexPtr(size_t index1) const {
  if (index1 == 0) {
    return Status::InvalidArgument("positional attribute indexes are 1-based");
  }
  if (is_list()) {
    const ValueList& items = as_list();
    if (index1 > items.size()) {
      return Status::NotFound("index " + std::to_string(index1) +
                              " out of range for " + ToString());
    }
    return &items[index1 - 1];
  }
  if (is_struct()) {
    const StructFields& fields = as_struct();
    if (index1 > fields.size()) {
      return Status::NotFound("index " + std::to_string(index1) +
                              " out of range for " + ToString());
    }
    return &fields[index1 - 1].second;
  }
  if (index1 == 1) return this;  // Elementary value acts as a 1-tuple.
  return Status::TypeError("positional access on elementary value " +
                           ToString());
}

Result<const Value*> Value::GetPathPtr(
    const std::vector<std::string>& path) const {
  const Value* current = this;
  for (const std::string& step : path) {
    Result<const Value*> next = IsAllDigits(step)
                                    ? current->GetIndexPtr(std::stoul(step))
                                    : current->GetAttrPtr(step);
    if (!next.ok()) return next.status();
    current = next.value();
  }
  return current;
}

Result<Value> Value::GetAttr(const std::string& name) const {
  HERMES_ASSIGN_OR_RETURN(const Value* found, GetAttrPtr(name));
  return *found;
}

Result<Value> Value::GetIndex(size_t index1) const {
  HERMES_ASSIGN_OR_RETURN(const Value* found, GetIndexPtr(index1));
  return *found;
}

Result<Value> Value::GetPath(const std::vector<std::string>& path) const {
  HERMES_ASSIGN_OR_RETURN(const Value* found, GetPathPtr(path));
  return *found;
}

int Value::Compare(const Value& other) const {
  int lr = TypeRank(*this);
  int rr = TypeRank(other);
  if (lr != rr) return lr < rr ? -1 : 1;
  switch (lr) {
    case 0:  // null
      return 0;
    case 1: {  // bool
      bool a = as_bool(), b = other.as_bool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case 2: {  // numeric
      if (is_int() && other.is_int()) {
        int64_t a = as_int(), b = other.as_int();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      double a = as_number(), b = other.as_number();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case 3: {  // string
      int c = as_string().compare(other.as_string());
      return c == 0 ? 0 : (c < 0 ? -1 : 1);
    }
    case 4: {  // list
      const ValueList& a = as_list();
      const ValueList& b = other.as_list();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return a.size() == b.size() ? 0 : (a.size() < b.size() ? -1 : 1);
    }
    default: {  // struct: field names then values, in declared order.
      const StructFields& a = as_struct();
      const StructFields& b = other.as_struct();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].first.compare(b[i].first);
        if (c != 0) return c < 0 ? -1 : 1;
        c = a[i].second.Compare(b[i].second);
        if (c != 0) return c;
      }
      return a.size() == b.size() ? 0 : (a.size() < b.size() ? -1 : 1);
    }
  }
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(TypeRank(*this));
  switch (TypeRank(*this)) {
    case 0:
      break;
    case 1:
      HashCombine(seed, std::hash<bool>()(as_bool()));
      break;
    case 2: {
      // Hash ints and integral doubles identically so 2 == 2.0 hash-collide.
      double d = as_number();
      double integral;
      if (std::modf(d, &integral) == 0.0 &&
          integral >= -9.2e18 && integral <= 9.2e18) {
        HashCombine(seed, std::hash<int64_t>()(static_cast<int64_t>(integral)));
      } else {
        HashCombine(seed, std::hash<double>()(d));
      }
      break;
    }
    case 3:
      HashCombine(seed, std::hash<std::string>()(as_string()));
      break;
    case 4:
      for (const Value& v : as_list()) HashCombine(seed, v.Hash());
      break;
    default:
      for (const auto& [name, v] : as_struct()) {
        HashCombine(seed, std::hash<std::string>()(name));
        HashCombine(seed, v.Hash());
      }
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return as_bool() ? "true" : "false";
    case Type::kInt:
      return std::to_string(as_int());
    case Type::kDouble:
      return FormatDouble(as_double());
    case Type::kString: {
      std::string out = "'";
      for (char c : as_string()) {
        if (c == '\'' || c == '\\') out += '\\';
        out += c;
      }
      out += "'";
      return out;
    }
    case Type::kList: {
      std::string out = "[";
      out += ValueListToString(as_list());
      out += "]";
      return out;
    }
    case Type::kStruct: {
      std::string out = "{";
      bool first = true;
      for (const auto& [name, v] : as_struct()) {
        if (!first) out += ", ";
        first = false;
        out += name;
        out += ": ";
        out += v.ToString();
      }
      out += "}";
      return out;
    }
  }
  return "<?>";
}

size_t Value::ApproxByteSize() const {
  switch (type()) {
    case Type::kNull:
      return 1;
    case Type::kBool:
      return 1;
    case Type::kInt:
      return 8;
    case Type::kDouble:
      return 8;
    case Type::kString:
      return as_string().size() + 1;
    case Type::kList: {
      size_t total = 2;
      for (const Value& v : as_list()) total += v.ApproxByteSize();
      return total;
    }
    case Type::kStruct: {
      size_t total = 2;
      for (const auto& [name, v] : as_struct()) {
        total += name.size() + 1 + v.ApproxByteSize();
      }
      return total;
    }
  }
  return 1;
}

std::string ValueListToString(const ValueList& values) {
  std::string out;
  bool first = true;
  for (const Value& v : values) {
    if (!first) out += ", ";
    first = false;
    out += v.ToString();
  }
  return out;
}

}  // namespace hermes
