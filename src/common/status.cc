#include "common/status.h"

namespace hermes {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hermes
