#include "spatial/spatial_domain.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace hermes::spatial {

void SpatialDomain::PointFile::BuildIndex() {
  if (points.empty()) {
    min_x = min_y = 0;
    max_x = max_y = 1;
  } else {
    min_x = max_x = points[0].x;
    min_y = max_y = points[0].y;
    for (const Point& p : points) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
  }
  // Aim for ~4 points per cell.
  double area = std::max((max_x - min_x) * (max_y - min_y), 1e-9);
  double target_cells = std::max<double>(points.size() / 4.0, 1.0);
  cell = std::sqrt(area / target_cells);
  if (cell <= 0) cell = 1.0;
  cells_x = std::max(1, static_cast<int>((max_x - min_x) / cell) + 1);
  cells_y = std::max(1, static_cast<int>((max_y - min_y) / cell) + 1);
  grid.assign(static_cast<size_t>(cells_x) * cells_y, {});
  for (size_t i = 0; i < points.size(); ++i) {
    grid[CellOf(points[i].x, points[i].y)].push_back(i);
  }
}

int SpatialDomain::PointFile::CellOf(double x, double y) const {
  int cx = std::clamp(static_cast<int>((x - min_x) / cell), 0, cells_x - 1);
  int cy = std::clamp(static_cast<int>((y - min_y) / cell), 0, cells_y - 1);
  return cy * cells_x + cx;
}

void SpatialDomain::PutFile(const std::string& file,
                            std::vector<Point> points) {
  PointFile pf;
  pf.points = std::move(points);
  pf.BuildIndex();
  files_[file] = std::move(pf);
}

std::vector<FunctionInfo> SpatialDomain::Functions() const {
  return {
      {"range", 4, "range(file, x, y, dist): points within dist of (x, y)"},
      {"count_range", 4, "count_range(file, x, y, dist): singleton count"},
      {"extent", 1, "extent(file): singleton bounding box struct"},
  };
}

Result<CallOutput> SpatialDomain::Run(const DomainCall& call) {
  if (call.args.empty() || !call.args[0].is_string()) {
    return Status::InvalidArgument(call.ToString() +
                                   ": first argument must be a file name");
  }
  auto it = files_.find(call.args[0].as_string());
  if (it == files_.end()) {
    return Status::NotFound("no point file '" + call.args[0].as_string() +
                            "'");
  }
  const PointFile& pf = it->second;
  const std::string& fn = call.function;

  if (fn == "extent") {
    if (call.args.size() != 1) {
      return Status::InvalidArgument(call.ToString() + ": extent takes 1 arg");
    }
    CallOutput out;
    out.answers = {Value::Struct({{"min_x", Value::Double(pf.min_x)},
                                  {"min_y", Value::Double(pf.min_y)},
                                  {"max_x", Value::Double(pf.max_x)},
                                  {"max_y", Value::Double(pf.max_y)}})};
    out.first_ms = out.all_ms = params_.base_ms;
    return out;
  }

  if (fn == "range" || fn == "count_range") {
    if (call.args.size() != 4 || !call.args[1].is_numeric() ||
        !call.args[2].is_numeric() || !call.args[3].is_numeric()) {
      return Status::InvalidArgument(call.ToString() +
                                     ": takes (file, x, y, dist)");
    }
    double qx = call.args[1].as_number();
    double qy = call.args[2].as_number();
    double dist = call.args[3].as_number();
    if (dist < 0) {
      return Status::InvalidArgument(call.ToString() + ": negative distance");
    }

    // Visit the grid cells overlapping the query square.
    int cx_lo = std::clamp(static_cast<int>((qx - dist - pf.min_x) / pf.cell),
                           0, pf.cells_x - 1);
    int cx_hi = std::clamp(static_cast<int>((qx + dist - pf.min_x) / pf.cell),
                           0, pf.cells_x - 1);
    int cy_lo = std::clamp(static_cast<int>((qy - dist - pf.min_y) / pf.cell),
                           0, pf.cells_y - 1);
    int cy_hi = std::clamp(static_cast<int>((qy + dist - pf.min_y) / pf.cell),
                           0, pf.cells_y - 1);

    size_t cells_visited = 0;
    size_t points_tested = 0;
    std::vector<const Point*> hits;
    for (int cy = cy_lo; cy <= cy_hi; ++cy) {
      for (int cx = cx_lo; cx <= cx_hi; ++cx) {
        ++cells_visited;
        for (size_t idx : pf.grid[static_cast<size_t>(cy) * pf.cells_x + cx]) {
          ++points_tested;
          const Point& p = pf.points[idx];
          double dx = p.x - qx, dy = p.y - qy;
          if (dx * dx + dy * dy <= dist * dist) hits.push_back(&p);
        }
      }
    }
    double search_ms =
        params_.per_cell_ms * static_cast<double>(cells_visited) +
        params_.per_point_ms * static_cast<double>(points_tested);
    CallOutput out;
    if (fn == "count_range") {
      out.answers = {Value::Int(static_cast<int64_t>(hits.size()))};
      out.all_ms = params_.base_ms + search_ms;
      out.first_ms = out.all_ms;  // a count is only known after the search
      return out;
    }
    out.answers.reserve(hits.size());
    for (const Point* p : hits) {
      out.answers.push_back(Value::Struct({{"id", Value::Str(p->id)},
                                           {"x", Value::Double(p->x)},
                                           {"y", Value::Double(p->y)}}));
    }
    size_t n = out.answers.size();
    out.all_ms = params_.base_ms + search_ms +
                 params_.per_result_ms * static_cast<double>(n);
    out.first_ms = n == 0 ? out.all_ms
                          : params_.base_ms +
                                search_ms / static_cast<double>(n + 1) +
                                params_.per_result_ms;
    return out;
  }

  return Status::NotFound("domain '" + name_ + "' has no function '" + fn +
                          "'");
}

std::vector<Point> MakeUniformPoints(uint64_t seed, size_t count, double width,
                                     double height) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    points.push_back({"p" + std::to_string(i), rng.NextDoubleIn(0, width),
                      rng.NextDoubleIn(0, height)});
  }
  return points;
}

}  // namespace hermes::spatial
