#ifndef HERMES_SPATIAL_SPATIAL_DOMAIN_H_
#define HERMES_SPATIAL_SPATIAL_DOMAIN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "domain/domain.h"

namespace hermes::spatial {

/// One named 2-D point.
struct Point {
  std::string id;
  double x = 0.0;
  double y = 0.0;
};

/// Simulated compute-cost parameters of the spatial package.
struct SpatialCostParams {
  double base_ms = 3.0;        ///< Index open overhead.
  double per_cell_ms = 0.05;   ///< Per grid cell visited.
  double per_point_ms = 0.02;  ///< Per candidate point tested.
  double per_result_ms = 0.05; ///< Per answer materialized.
};

/// Grid-indexed point-set domain (the paper's spatial data structure
/// package, used in the Section 4 invariant example).
///
/// Exported functions:
///   range(file, x, y, dist)   — points within Euclidean `dist` of (x, y),
///                               as {id, x, y} structs
///   count_range(file, x, y, dist) — singleton count
///   extent(file)              — singleton {min_x, min_y, max_x, max_y}
class SpatialDomain : public Domain {
 public:
  explicit SpatialDomain(std::string name, SpatialCostParams params = {})
      : name_(std::move(name)), params_(params) {}

  /// Creates or replaces a point file; builds its grid index.
  void PutFile(const std::string& file, std::vector<Point> points);

  bool HasFile(const std::string& file) const {
    return files_.find(file) != files_.end();
  }

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override;
  Result<CallOutput> Run(const DomainCall& call) override;

 private:
  struct PointFile {
    std::vector<Point> points;
    // Uniform grid index: cell → point indices.
    double min_x = 0, min_y = 0, max_x = 0, max_y = 0;
    double cell = 1.0;
    int cells_x = 1, cells_y = 1;
    std::vector<std::vector<size_t>> grid;  // cells_x * cells_y buckets

    void BuildIndex();
    int CellOf(double x, double y) const;
  };

  std::string name_;
  SpatialCostParams params_;
  std::map<std::string, PointFile> files_;
};

/// Deterministically generates `count` points uniform in
/// [0, width] × [0, height].
std::vector<Point> MakeUniformPoints(uint64_t seed, size_t count, double width,
                                     double height);

}  // namespace hermes::spatial

#endif  // HERMES_SPATIAL_SPATIAL_DOMAIN_H_
