#ifndef HERMES_CIM_SUBSTITUTION_H_
#define HERMES_CIM_SUBSTITUTION_H_

#include <map>
#include <string>

#include "common/result.h"
#include "common/value.h"
#include "domain/call.h"
#include "lang/ast.h"

namespace hermes::cim {

/// Variable → ground value binding set (the θ of Section 4.1).
using Substitution = std::map<std::string, Value>;

/// Attempts to match the ground `call` against an invariant's call
/// `pattern`, extending `theta`. Constants must equal; variables bind (or
/// must agree with an existing binding). Returns false — leaving `theta`
/// possibly partially extended — when the match fails; callers should pass
/// a scratch copy.
bool MatchCallAgainstSpec(const lang::DomainCallSpec& pattern,
                          const DomainCall& call, Substitution* theta);

/// Applies `theta` to `spec`, producing a new spec in which bound
/// variables are replaced with their values (unbound variables remain).
lang::DomainCallSpec ApplySubstitution(const lang::DomainCallSpec& spec,
                                       const Substitution& theta);

/// True when every argument of `spec` is a constant.
bool IsGroundSpec(const lang::DomainCallSpec& spec);

/// Evaluates an invariant's condition conjunction under `theta`.
/// Conditions mentioning unbound variables evaluate to false (the
/// invariant cannot be applied). Attribute paths on condition variables
/// are resolved against their bound values.
Result<bool> EvalConditions(const std::vector<lang::Atom>& conditions,
                            const Substitution& theta);

/// Resolves a term to a ground value under `theta` (constants pass
/// through; variables must be bound, then any attribute path is applied).
Result<Value> ResolveTerm(const lang::Term& term, const Substitution& theta);

}  // namespace hermes::cim

#endif  // HERMES_CIM_SUBSTITUTION_H_
