#include "cim/cim.h"

#include <algorithm>
#include <unordered_set>

#include "lang/parser.h"

namespace hermes::cim {

Status CimDomain::AddInvariants(const std::string& text) {
  HERMES_ASSIGN_OR_RETURN(std::vector<lang::Invariant> parsed,
                          lang::Parser::ParseInvariants(text));
  for (lang::Invariant& inv : parsed) AddInvariant(std::move(inv));
  return Status::OK();
}

CimStats CimDomain::stats() const {
  CimStats snapshot;
  snapshot.exact_hits = stats_.exact_hits->Value();
  snapshot.equality_hits = stats_.equality_hits->Value();
  snapshot.partial_hits = stats_.partial_hits->Value();
  snapshot.misses = stats_.misses->Value();
  snapshot.actual_calls = stats_.actual_calls->Value();
  snapshot.unavailable_masked = stats_.unavailable_masked->Value();
  snapshot.unavailable_failed = stats_.unavailable_failed->Value();
  snapshot.stale_serves = stats_.stale_serves->Value();
  return snapshot;
}

void CimDomain::ResetStats() {
  stats_.exact_hits->Reset();
  stats_.equality_hits->Reset();
  stats_.partial_hits->Reset();
  stats_.misses->Reset();
  stats_.actual_calls->Reset();
  stats_.unavailable_masked->Reset();
  stats_.unavailable_failed->Reset();
  stats_.stale_serves->Reset();
}

void CimDomain::BindMetrics(obs::MetricsRegistry& registry) {
  obs::Labels labels = {{"domain", target_domain_}};
  registry.Register("hermes_cim_exact_hits_total",
                    "Calls answered by an exact cache hit", labels,
                    stats_.exact_hits);
  registry.Register("hermes_cim_equality_hits_total",
                    "Calls answered via an equality invariant", labels,
                    stats_.equality_hits);
  registry.Register("hermes_cim_partial_hits_total",
                    "Calls served a cached subset via a containment invariant",
                    labels, stats_.partial_hits);
  registry.Register("hermes_cim_misses_total",
                    "Calls the cache and invariants could not answer", labels,
                    stats_.misses);
  registry.Register("hermes_cim_actual_calls_total",
                    "Calls forwarded to the actual source", labels,
                    stats_.actual_calls);
  registry.Register("hermes_cim_unavailable_masked_total",
                    "Source outages masked by serving stale cached answers",
                    labels, stats_.unavailable_masked);
  registry.Register("hermes_cim_unavailable_failed_total",
                    "Source outages the cache could not mask", labels,
                    stats_.unavailable_failed);
  // Registered under the resilience family: the stale-fallback serve is a
  // rung of the degradation ladder, observed alongside retries/breakers.
  registry.Register("hermes_resilience_stale_serves_total",
                    "Miss-path outages masked by stale/incomplete entries",
                    labels, stats_.stale_serves);
  cache_.BindMetrics(registry, target_domain_);
}

CallOutput CimDomain::ServeFromCache(CacheEntry entry, double lead_ms,
                                     bool complete) const {
  CallOutput out;
  out.first_ms = lead_ms + params_.per_cached_answer_ms;
  out.all_ms = lead_ms + params_.per_cached_answer_ms *
                             static_cast<double>(
                                 std::max<size_t>(entry.answers.size(), 1));
  out.complete = complete && entry.complete;
  out.answers = std::move(entry.answers);
  return out;
}

Result<CallOutput> CimDomain::RunActual(const DomainCall& call,
                                        const ActualCallFn& actual) {
  stats_.actual_calls->Add(1);
  HERMES_ASSIGN_OR_RETURN(CallOutput out, actual(call));
  // Entries age against accumulated source-call sim time; each actual
  // call moves the clock its own service time forward.
  cache_.AdvanceSimClock(out.all_ms);
  if (options_.cache_results && out.complete) {
    cache_.Put(call, out.answers, /*complete=*/true,
               tick_.load(std::memory_order_relaxed));
  }
  return out;
}

bool CimDomain::IsStale(const CacheEntry& entry) const {
  return options_.max_entry_age > 0 &&
         tick_.load(std::memory_order_relaxed) - entry.inserted_at >
             options_.max_entry_age;
}

std::optional<CacheEntry> CimDomain::ProbeForSpec(
    const lang::DomainCallSpec& target, const Substitution& theta,
    const std::vector<lang::Atom>& conditions, double* search_ms,
    bool allow_stale) const {
  lang::DomainCallSpec substituted = ApplySubstitution(target, theta);

  if (substituted.is_ground()) {
    Result<bool> holds = EvalConditions(conditions, theta);
    if (!holds.ok() || !*holds) return std::nullopt;
    *search_ms += params_.per_cache_probe_ms;
    Result<DomainCall> target_call = DomainCall::FromSpec(substituted);
    if (!target_call.ok()) return std::nullopt;
    std::optional<CacheEntry> entry = cache_.Peek(*target_call);
    if (entry.has_value() && !allow_stale && IsStale(*entry)) {
      return std::nullopt;
    }
    return entry;
  }

  // The target still has free variables (e.g. the V_1 of the paper's
  // select_< invariant): scan the cache for an entry that unifies with it
  // and satisfies the conditions.
  std::optional<CacheEntry> found;
  cache_.ForEach([&](const CacheEntry& entry) {
    *search_ms += params_.per_cache_probe_ms;
    if (!allow_stale && IsStale(entry)) return true;
    Substitution extended = theta;
    if (!MatchCallAgainstSpec(substituted, entry.call, &extended)) return true;
    Result<bool> holds = EvalConditions(conditions, extended);
    if (!holds.ok() || !*holds) return true;
    found = entry;   // snapshot by value; `entry` dies with the shard lock
    return false;    // stop scanning
  });
  return found;
}

std::optional<CimDomain::InvariantHit> CimDomain::FindViaInvariants(
    const DomainCall& call, double* search_ms, bool allow_stale) {
  std::optional<InvariantHit> best_partial;

  for (const lang::Invariant& inv : invariants_) {
    *search_ms += params_.per_invariant_attempt_ms;

    if (inv.relation == lang::InvariantRelation::kEqual) {
      // Equality is symmetric: the requested call may match either side.
      const lang::DomainCallSpec* sides[2][2] = {{&inv.lhs, &inv.rhs},
                                                 {&inv.rhs, &inv.lhs}};
      for (auto& [pattern, target] : sides) {
        Substitution theta;
        if (!MatchCallAgainstSpec(*pattern, call, &theta)) continue;
        *search_ms += params_.per_invariant_ms;
        std::optional<CacheEntry> entry =
            ProbeForSpec(*target, theta, inv.conditions, search_ms,
                         allow_stale);
        if (entry.has_value() && entry->complete) {
          InvariantHit hit;
          hit.entry = std::move(*entry);
          hit.equality = true;
          hit.search_ms = *search_ms;
          hit.via = inv.ToString();
          return hit;
        }
      }
      continue;
    }

    // Containment: we can serve cached answers as a *partial* result when
    // the cached call is on the ⊆ side and the requested call on the ⊇
    // side of the invariant.
    const lang::DomainCallSpec& pattern =
        inv.relation == lang::InvariantRelation::kSuperset ? inv.lhs
                                                           : inv.rhs;
    const lang::DomainCallSpec& target =
        inv.relation == lang::InvariantRelation::kSuperset ? inv.rhs
                                                           : inv.lhs;
    Substitution theta;
    if (!MatchCallAgainstSpec(pattern, call, &theta)) continue;
    *search_ms += params_.per_invariant_ms;
    std::optional<CacheEntry> entry =
        ProbeForSpec(target, theta, inv.conditions, search_ms, allow_stale);
    if (!entry.has_value()) continue;
    if (!best_partial.has_value() ||
        entry->bytes > best_partial->entry.bytes) {
      InvariantHit hit;
      hit.entry = std::move(*entry);
      hit.equality = false;
      hit.search_ms = *search_ms;
      hit.via = inv.ToString();
      best_partial = std::move(hit);
    }
  }
  return best_partial;
}

std::optional<CacheEntry> CimDomain::FindStaleFallback(const DomainCall& call,
                                                       double* search_ms) {
  // Exact key first — even a stale or incomplete entry names the right
  // answer set, which beats no answers at all when the source is down.
  *search_ms += params_.exact_lookup_ms;
  std::optional<CacheEntry> entry = cache_.Peek(call);
  if (entry.has_value()) return entry;
  if (!options_.use_invariants) return std::nullopt;
  std::optional<InvariantHit> hit =
      FindViaInvariants(call, search_ms, /*allow_stale=*/true);
  if (!hit.has_value()) return std::nullopt;
  return std::move(hit->entry);
}

Result<CallOutput> CimDomain::Run(const DomainCall& raw_call) {
  return RunWith(raw_call,
                 [this](const DomainCall& call) { return inner_->Run(call); });
}

Result<CallOutput> CimDomain::RunWith(const DomainCall& raw_call,
                                      const ActualCallFn& actual,
                                      CimOutcome* outcome,
                                      bool prefer_stale) {
  // Normalize to the logical domain name used by rules/invariants/cache.
  DomainCall call = raw_call;
  call.domain = target_domain_;

  tick_.fetch_add(1, std::memory_order_relaxed);
  if (outcome != nullptr) *outcome = CimOutcome::kMiss;
  double lead_ms = 0.0;

  // Step 1: exact cache hit.
  if (options_.use_cache) {
    lead_ms += params_.exact_lookup_ms;
    std::optional<CacheEntry> entry = cache_.Get(call);
    if (entry.has_value() && IsStale(*entry)) {
      if (prefer_stale && entry->complete) {
        // Brownout: a stale complete entry stands in without touching the
        // source at all — that is exactly the load the ladder sheds.
        stats_.stale_serves->Add(1);
        if (outcome != nullptr) *outcome = CimOutcome::kExactHit;
        CallOutput out =
            ServeFromCache(std::move(*entry), lead_ms, /*complete=*/true);
        out.degraded = true;
        return out;
      }
      // Lazily age out — except when stale entries double as the outage
      // fallback's salvage material (a successful refresh overwrites them
      // anyway).
      if (!options_.serve_stale_on_unavailable) cache_.Remove(call);
      entry.reset();
    }
    if (entry.has_value() && entry->complete) {
      stats_.exact_hits->Add(1);
      if (outcome != nullptr) *outcome = CimOutcome::kExactHit;
      return ServeFromCache(std::move(*entry), lead_ms, /*complete=*/true);
    }
  }

  // Steps 2 & 3: invariants.
  std::optional<InvariantHit> hit;
  if (options_.use_cache && options_.use_invariants) {
    double search_ms = 0.0;
    hit = FindViaInvariants(call, &search_ms);
    lead_ms += search_ms;
  }

  if (hit.has_value() && hit->equality) {
    stats_.equality_hits->Add(1);
    if (outcome != nullptr) *outcome = CimOutcome::kEqualityHit;
    return ServeFromCache(std::move(hit->entry), lead_ms, /*complete=*/true);
  }

  if (hit.has_value()) {
    // Subset-invariant (partial) hit. `partial` is this call's own value
    // snapshot, so downstream cache writes (our RunActual's Put, or any
    // concurrent query's) cannot invalidate it.
    stats_.partial_hits->Add(1);
    if (outcome != nullptr) *outcome = CimOutcome::kPartialHit;
    CacheEntry& partial = hit->entry;

    if (!options_.complete_partial_hits) {
      // Interactive mode: hand back the fast partial set; the engine may
      // never need the rest.
      return ServeFromCache(std::move(partial), lead_ms, /*complete=*/false);
    }

    // All-answers mode: issue the actual call "in parallel" with serving
    // the cached subset, then merge with duplicate elimination.
    Result<CallOutput> full = RunActual(call, actual);
    if (!full.ok()) {
      if (full.status().IsUnavailable() && options_.mask_unavailability) {
        stats_.unavailable_masked->Add(1);
        CallOutput masked = ServeFromCache(std::move(partial), lead_ms,
                                           /*complete=*/false);
        masked.degraded = true;  // the subset stood in for a live source
        return masked;
      }
      return full.status();
    }

    CallOutput out;
    out.answers = partial.answers;  // cached subset arrives first
    std::unordered_set<Value, ValueHash> seen(partial.answers.begin(),
                                              partial.answers.end());
    for (Value& v : full->answers) {
      if (seen.find(v) == seen.end()) out.answers.push_back(std::move(v));
    }
    double cached_all_ms =
        lead_ms + params_.per_cached_answer_ms *
                      static_cast<double>(
                          std::max<size_t>(partial.answers.size(), 1));
    // CIM "must keep the answers from the cache in memory and compare them
    // with the answers from the actual call" — the merge cost scales with
    // the partial answer size.
    double merge_ms =
        params_.per_compare_byte_ms * static_cast<double>(partial.bytes);
    out.first_ms = lead_ms + params_.per_cached_answer_ms;
    out.all_ms = std::max(cached_all_ms, lead_ms + full->all_ms) + merge_ms;
    out.complete = true;
    return out;
  }

  // Step 4: miss — the actual call must be made.
  stats_.misses->Add(1);
  Result<CallOutput> full = RunActual(call, actual);
  if (!full.ok()) {
    // Under brownout the stale fallback also masks load-shed calls — the
    // limiter turned the source away, the cache keeps the query whole.
    const bool maskable =
        full.status().IsUnavailable() ||
        (prefer_stale && full.status().IsResourceExhausted());
    if (maskable) {
      if (options_.serve_stale_on_unavailable || prefer_stale) {
        // Last rung of the degradation ladder: any subsuming entry — stale
        // or incomplete — beats failing the query outright.
        double salvage_ms = 0.0;
        std::optional<CacheEntry> fallback =
            FindStaleFallback(call, &salvage_ms);
        if (fallback.has_value()) {
          stats_.stale_serves->Add(1);
          CallOutput out = ServeFromCache(std::move(*fallback),
                                          lead_ms + salvage_ms,
                                          /*complete=*/true);
          out.degraded = true;
          return out;
        }
      }
      if (full.status().IsUnavailable()) stats_.unavailable_failed->Add(1);
    }
    return full.status();
  }
  full->first_ms += lead_ms;
  full->all_ms += lead_ms;
  return std::move(full).value();
}

}  // namespace hermes::cim
