#ifndef HERMES_CIM_RESULT_CACHE_H_
#define HERMES_CIM_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "domain/call.h"

namespace hermes::cim {

/// One cached (domain call, answer set) pair — Section 4's cache element.
struct CacheEntry {
  DomainCall call;
  AnswerSet answers;
  bool complete = true;  ///< False when only a partial set was retained.
  size_t bytes = 0;      ///< Approximate answer-set size.
  uint64_t inserted_at = 0;  ///< Logical tick when cached (staleness).
};

/// Counters exported by the result cache.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
};

/// LRU-bounded map from ground domain calls to their answer sets.
///
/// The cache is bounded both by entry count and by total answer bytes;
/// exceeding either bound evicts least-recently-used entries. A zero bound
/// means unbounded.
class ResultCache {
 public:
  ResultCache(size_t max_entries = 0, size_t max_bytes = 0)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Inserts or replaces the entry for `call`. `now` is an optional
  /// logical timestamp enabling staleness bounds (see CimOptions).
  void Put(DomainCall call, AnswerSet answers, bool complete = true,
           uint64_t now = 0);

  /// Exact lookup; bumps recency. Returns nullptr on miss. The pointer is
  /// valid until the next Put/Remove/Clear.
  const CacheEntry* Get(const DomainCall& call);

  /// Exact lookup without touching recency or stats (used by invariant
  /// scans so they don't distort exact-hit statistics).
  const CacheEntry* Peek(const DomainCall& call) const;

  /// Removes the entry for `call` if present.
  void Remove(const DomainCall& call);

  void Clear();

  /// Iterates entries in unspecified order; `fn` returning false stops the
  /// scan. Does not affect recency.
  void ForEach(
      const std::function<bool(const CacheEntry& entry)>& fn) const;

  size_t size() const { return lru_.size(); }
  size_t total_bytes() const { return total_bytes_; }
  const ResultCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ResultCacheStats{}; }

 private:
  void EvictIfNeeded();

  size_t max_entries_;
  size_t max_bytes_;
  size_t total_bytes_ = 0;

  // LRU list: front = most recent. Map points into the list.
  std::list<CacheEntry> lru_;
  std::unordered_map<DomainCall, std::list<CacheEntry>::iterator,
                     DomainCallHash>
      index_;
  ResultCacheStats stats_;
};

}  // namespace hermes::cim

#endif  // HERMES_CIM_RESULT_CACHE_H_
