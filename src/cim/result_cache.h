#ifndef HERMES_CIM_RESULT_CACHE_H_
#define HERMES_CIM_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/intrusive_map.h"
#include "common/result.h"
#include "domain/call.h"
#include "obs/metrics.h"

namespace hermes::cim {

/// One cached (domain call, answer set) pair — Section 4's cache element.
struct CacheEntry {
  DomainCall call;
  AnswerSet answers;
  bool complete = true;  ///< False when only a partial set was retained.
  size_t bytes = 0;      ///< Approximate answer-set size.
  uint64_t inserted_at = 0;  ///< Logical tick when cached (staleness).
  /// Cache sim-clock reading when cached (see AdvanceSimClock); feeds the
  /// hermes_cache_*_age_sim_ms gauges.
  double inserted_sim_ms = 0.0;
};

/// Counters exported by the result cache — a snapshot view over the
/// cache's live obs counters (the one source of truth, also exposable
/// through a MetricsRegistry via BindMetrics).
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Inserts refused because one entry alone exceeded a shard's byte
  /// budget (inserting it would have evicted the whole shard for nothing).
  uint64_t oversize_rejects = 0;
};

/// Lock-striped, LRU-bounded map from ground domain calls to their answer
/// sets.
///
/// The cache is split into independent shards selected by `DomainCall`
/// hash; each shard has its own mutex, LRU list and slice of the entry/byte
/// budgets, so concurrent lookups of distinct calls proceed in parallel —
/// cache hits (the paper's headline win) scale with cores instead of
/// serializing on one cache-wide lock.
///
/// Concurrency contract:
///  - Every public method is safe to call from any thread.
///  - `Get`/`Peek` return the entry BY VALUE (a snapshot taken under the
///    shard lock). The previous pointer-returning API was only valid until
///    the next `Put`/`Remove`/`Clear`, a lifetime rule that is unenforceable
///    once writers run concurrently with readers.
///  - `ForEach` locks one shard at a time (shard 0 upward, most- to
///    least-recently-used within a shard). It observes no cross-shard
///    atomic snapshot, and `fn` must not call back into the cache.
///
/// Bounds semantics: entry and byte budgets are divided evenly across
/// shards (rounded up), and eviction is per-shard LRU. When bounds are
/// requested without an explicit shard count the cache uses a single shard,
/// which preserves exact global-LRU eviction order; unbounded caches
/// default to `kDefaultShards`. A zero bound means unbounded.
class ResultCache {
 public:
  static constexpr size_t kDefaultShards = 16;

  /// `num_shards` = 0 picks the default: `kDefaultShards` when unbounded,
  /// 1 (exact global LRU) when any bound is set.
  ResultCache(size_t max_entries = 0, size_t max_bytes = 0,
              size_t num_shards = 0);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Inserts or replaces the entry for `call`. `now` is an optional
  /// logical timestamp enabling staleness bounds (see CimOptions). An
  /// entry whose answers alone exceed the shard byte budget is rejected
  /// (counted in `oversize_rejects`) instead of evicting every resident
  /// entry on its way to being evicted itself.
  void Put(DomainCall call, AnswerSet answers, bool complete = true,
           uint64_t now = 0);

  /// Exact lookup; bumps recency. Returns a copy of the entry (taken under
  /// the shard lock), or nullopt on miss.
  std::optional<CacheEntry> Get(const DomainCall& call);

  /// Exact lookup without touching recency or stats (used by invariant
  /// scans so they don't distort exact-hit statistics).
  std::optional<CacheEntry> Peek(const DomainCall& call) const;

  /// Removes the entry for `call` if present.
  void Remove(const DomainCall& call);

  void Clear();

  /// Iterates entries shard by shard; `fn` returning false stops the scan.
  /// Does not affect recency. `fn` runs under the shard's lock and must not
  /// call back into the cache.
  void ForEach(
      const std::function<bool(const CacheEntry& entry)>& fn) const;

  /// Advances the cache-wide simulated clock entries are aged against.
  /// The CIM adds each actual call's simulated service time, so "age" is
  /// measured in accumulated source-call milliseconds — the denominator
  /// the paper's staleness discussion actually cares about — rather than
  /// wall time, which a simulator burns through in microseconds.
  void AdvanceSimClock(double delta_ms);
  double sim_clock_ms() const {
    return sim_clock_ms_.load(std::memory_order_relaxed);
  }

  size_t size() const;
  size_t total_bytes() const;
  size_t num_shards() const { return shards_.size(); }
  /// The live counters merged into one snapshot.
  ResultCacheStats stats() const;
  void ResetStats();

  /// Registers the hit/miss/insertion/eviction counters plus live
  /// entry-count and byte-occupancy callback gauges with `registry`,
  /// labeled {domain=<domain>}. The gauges capture `this`, so the cache
  /// must outlive any Expose() call on the registry.
  void BindMetrics(obs::MetricsRegistry& registry, const std::string& domain);

 private:
  /// One resident entry, allocated exactly once: the payload plus both of
  /// its index memberships (hash chain + LRU links) embedded in the same
  /// block — the kernel hashtable/list_head idiom. The node-based
  /// std::unordered_map + std::list layout this replaces cost two extra
  /// allocations per entry and re-hashed the key on every touch; here the
  /// hash is computed once per operation and cached in the hash node.
  struct Node {
    CacheEntry entry;
    IntrusiveMapNode hash_node;
    IntrusiveListNode lru_node;
  };

  struct Shard {
    mutable std::mutex mu;
    size_t total_bytes = 0;
    size_t count = 0;
    /// Σ inserted_sim_ms over resident entries, maintained incrementally
    /// so the mean-age gauge is O(1) at exposition time.
    double inserted_sim_sum_ms = 0.0;
    /// Sim-clock age of the most recent LRU victim; 0 until one exists.
    double last_evict_age_ms = 0.0;
    IntrusiveList<Node, &Node::lru_node> lru;  ///< Front = most recent.
    IntrusiveHashMap<Node, &Node::hash_node> index;
    ~Shard();
  };

  Shard& ShardFor(size_t hash) { return *shards_[hash % shards_.size()]; }
  const Shard& ShardFor(size_t hash) const {
    return *shards_[hash % shards_.size()];
  }
  /// Exact-match node for `call` (whose Hash() is `hash`), or nullptr.
  /// Caller holds the shard lock.
  static Node* FindLocked(const Shard& shard, const DomainCall& call,
                          size_t hash);
  /// Unlinks and frees `node`; caller holds the shard lock.
  void RemoveNodeLocked(Shard& shard, Node* node);
  /// Evicts LRU entries until `shard` fits its budgets; caller holds lock.
  void EvictIfNeededLocked(Shard& shard);

  size_t shard_max_entries_;  ///< Per-shard entry budget (0 = unbounded).
  size_t shard_max_bytes_;    ///< Per-shard byte budget (0 = unbounded).
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Accumulated simulated source-call time (see AdvanceSimClock).
  std::atomic<double> sim_clock_ms_{0.0};

  // Live statistics (cache-wide; the obs counters stripe internally).
  std::shared_ptr<obs::Counter> hits_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> misses_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> insertions_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> evictions_ = std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Counter> oversize_rejects_ =
      std::make_shared<obs::Counter>();
};

}  // namespace hermes::cim

#endif  // HERMES_CIM_RESULT_CACHE_H_
