#include "cim/substitution.h"

namespace hermes::cim {

bool MatchCallAgainstSpec(const lang::DomainCallSpec& pattern,
                          const DomainCall& call, Substitution* theta) {
  if (pattern.domain != call.domain || pattern.function != call.function ||
      pattern.args.size() != call.args.size()) {
    return false;
  }
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    const lang::Term& t = pattern.args[i];
    const Value& v = call.args[i];
    switch (t.kind) {
      case lang::Term::Kind::kConstant:
        if (t.constant != v) return false;
        break;
      case lang::Term::Kind::kVariable: {
        auto [it, inserted] = theta->emplace(t.var_name, v);
        if (!inserted && it->second != v) return false;
        break;
      }
      case lang::Term::Kind::kBoundPattern:
        return false;  // '$b' has no place in invariants.
    }
  }
  return true;
}

lang::DomainCallSpec ApplySubstitution(const lang::DomainCallSpec& spec,
                                       const Substitution& theta) {
  lang::DomainCallSpec out;
  out.domain = spec.domain;
  out.function = spec.function;
  out.args.reserve(spec.args.size());
  for (const lang::Term& t : spec.args) {
    if (t.is_variable()) {
      auto it = theta.find(t.var_name);
      if (it != theta.end()) {
        out.args.push_back(lang::Term::Const(it->second));
        continue;
      }
    }
    out.args.push_back(t);
  }
  return out;
}

bool IsGroundSpec(const lang::DomainCallSpec& spec) {
  return spec.is_ground();
}

Result<Value> ResolveTerm(const lang::Term& term, const Substitution& theta) {
  if (term.is_constant()) return term.constant;
  if (term.is_bound_pattern()) {
    return Status::InvalidArgument("'$b' cannot be resolved to a value");
  }
  auto it = theta.find(term.var_name);
  if (it == theta.end()) {
    return Status::NotFound("variable '" + term.var_name +
                            "' is unbound in substitution");
  }
  if (term.path.empty()) return it->second;
  return it->second.GetPath(term.path);
}

Result<bool> EvalConditions(const std::vector<lang::Atom>& conditions,
                            const Substitution& theta) {
  for (const lang::Atom& cond : conditions) {
    if (!cond.is_comparison()) {
      return Status::InvalidArgument(
          "invariant condition is not a comparison: " + cond.ToString());
    }
    Result<Value> lhs = ResolveTerm(cond.lhs, theta);
    Result<Value> rhs = ResolveTerm(cond.rhs, theta);
    if (!lhs.ok() || !rhs.ok()) return false;  // unbound ⇒ inapplicable
    if (!lang::EvalRelOp(cond.op, *lhs, *rhs)) return false;
  }
  return true;
}

}  // namespace hermes::cim
