#ifndef HERMES_CIM_CACHE_INTERCEPTOR_H_
#define HERMES_CIM_CACHE_INTERCEPTOR_H_

#include <memory>
#include <string>

#include "cim/cim.h"
#include "domain/pipeline.h"

namespace hermes::cim {

/// The cache layer of the call pipeline: the CIM entry path.
///
/// Delegates to the shared CimDomain lookup algorithm (exact hit →
/// equality invariant → subset invariant → actual call), but routes the
/// actual call down the rest of the pipeline — so the network layer below
/// only sees calls the cache could not fully answer, and unavailability
/// surfacing from below is masked with cached results per CimOptions.
/// Cache hit/miss outcomes are attributed to the query via
/// CallContext::metrics.
class CacheInterceptor : public CallInterceptor {
 public:
  explicit CacheInterceptor(std::shared_ptr<CimDomain> cim)
      : cim_(std::move(cim)) {}

  const std::string& name() const override;

  Result<CallOutput> Intercept(CallContext& ctx, const DomainCall& call,
                               const Next& next) override;

  /// Cached domains have no usable native cost model: hit costs depend on
  /// cache state, not the source model (mirrors CimDomain, which never
  /// forwards HasCostModel).
  bool HasCostModel(bool inner_has) const override {
    (void)inner_has;
    return false;
  }

  const std::shared_ptr<CimDomain>& cim() const { return cim_; }

 private:
  std::shared_ptr<CimDomain> cim_;
};

}  // namespace hermes::cim

#endif  // HERMES_CIM_CACHE_INTERCEPTOR_H_
