#include "cim/result_cache.h"

namespace hermes::cim {

namespace {

/// Splits `budget` across `shards` (rounded up so the aggregate budget is
/// never smaller than requested). Zero stays zero (unbounded).
size_t SplitBudget(size_t budget, size_t shards) {
  if (budget == 0) return 0;
  return (budget + shards - 1) / shards;
}

}  // namespace

ResultCache::ResultCache(size_t max_entries, size_t max_bytes,
                         size_t num_shards) {
  if (num_shards == 0) {
    // Bounded caches default to a single shard so eviction remains exact
    // global LRU; unbounded caches only ever gain from striping.
    num_shards = (max_entries > 0 || max_bytes > 0) ? 1 : kDefaultShards;
  }
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_max_entries_ = SplitBudget(max_entries, num_shards);
  shard_max_bytes_ = SplitBudget(max_bytes, num_shards);
}

ResultCache::Shard& ResultCache::ShardFor(const DomainCall& call) {
  return *shards_[call.Hash() % shards_.size()];
}

const ResultCache::Shard& ResultCache::ShardFor(const DomainCall& call) const {
  return *shards_[call.Hash() % shards_.size()];
}

void ResultCache::Put(DomainCall call, AnswerSet answers, bool complete,
                      uint64_t now) {
  CacheEntry entry;
  entry.bytes = AnswerSetByteSize(answers);
  entry.call = std::move(call);
  entry.answers = std::move(answers);
  entry.complete = complete;
  entry.inserted_at = now;

  Shard& shard = ShardFor(entry.call);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard_max_bytes_ > 0 && entry.bytes > shard_max_bytes_) {
    // The entry alone busts the byte budget: inserting it would evict
    // every resident entry and then the entry itself — reject instead.
    RemoveLocked(shard, entry.call);
    oversize_rejects_->Add(1);
    return;
  }
  RemoveLocked(shard, entry.call);
  shard.total_bytes += entry.bytes;
  shard.lru.push_front(std::move(entry));
  shard.index[shard.lru.front().call] = shard.lru.begin();
  insertions_->Add(1);
  EvictIfNeededLocked(shard);
}

std::optional<CacheEntry> ResultCache::Get(const DomainCall& call) {
  Shard& shard = ShardFor(call);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(call);
  if (it == shard.index.end()) {
    misses_->Add(1);
    return std::nullopt;
  }
  hits_->Add(1);
  // Bump to front.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  it->second = shard.lru.begin();
  return *it->second;
}

std::optional<CacheEntry> ResultCache::Peek(const DomainCall& call) const {
  const Shard& shard = ShardFor(call);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(call);
  if (it == shard.index.end()) return std::nullopt;
  return *it->second;
}

void ResultCache::Remove(const DomainCall& call) {
  Shard& shard = ShardFor(call);
  std::lock_guard<std::mutex> lock(shard.mu);
  RemoveLocked(shard, call);
}

void ResultCache::RemoveLocked(Shard& shard, const DomainCall& call) {
  auto it = shard.index.find(call);
  if (it == shard.index.end()) return;
  shard.total_bytes -= it->second->bytes;
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

void ResultCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->total_bytes = 0;
  }
}

void ResultCache::ForEach(
    const std::function<bool(const CacheEntry& entry)>& fn) const {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const CacheEntry& entry : shard->lru) {
      if (!fn(entry)) return;
    }
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

size_t ResultCache::total_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->total_bytes;
  }
  return total;
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats merged;
  merged.hits = hits_->Value();
  merged.misses = misses_->Value();
  merged.insertions = insertions_->Value();
  merged.evictions = evictions_->Value();
  merged.oversize_rejects = oversize_rejects_->Value();
  return merged;
}

void ResultCache::ResetStats() {
  hits_->Reset();
  misses_->Reset();
  insertions_->Reset();
  evictions_->Reset();
  oversize_rejects_->Reset();
}

void ResultCache::BindMetrics(obs::MetricsRegistry& registry,
                              const std::string& domain) {
  obs::Labels labels = {{"domain", domain}};
  registry.Register("hermes_cache_hits_total", "Exact result-cache hits",
                    labels, hits_);
  registry.Register("hermes_cache_misses_total", "Exact result-cache misses",
                    labels, misses_);
  registry.Register("hermes_cache_insertions_total",
                    "Answer sets admitted into the result cache", labels,
                    insertions_);
  registry.Register("hermes_cache_evictions_total",
                    "Entries evicted by the LRU byte/entry budgets", labels,
                    evictions_);
  registry.Register("hermes_cache_oversize_rejects_total",
                    "Inserts refused for exceeding a shard's byte budget",
                    labels, oversize_rejects_);
  registry.RegisterCallbackGauge("hermes_cache_entries",
                                 "Entries currently resident in the cache",
                                 labels, [this] {
                                   return static_cast<double>(size());
                                 });
  registry.RegisterCallbackGauge(
      "hermes_cache_bytes", "Approximate bytes currently resident", labels,
      [this] { return static_cast<double>(total_bytes()); });
}

void ResultCache::EvictIfNeededLocked(Shard& shard) {
  while ((shard_max_entries_ > 0 && shard.lru.size() > shard_max_entries_) ||
         (shard_max_bytes_ > 0 && shard.total_bytes > shard_max_bytes_)) {
    if (shard.lru.empty()) return;
    const CacheEntry& victim = shard.lru.back();
    shard.total_bytes -= victim.bytes;
    shard.index.erase(victim.call);
    shard.lru.pop_back();
    evictions_->Add(1);
  }
}

}  // namespace hermes::cim
