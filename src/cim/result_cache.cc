#include "cim/result_cache.h"

namespace hermes::cim {

namespace {

/// Splits `budget` across `shards` (rounded up so the aggregate budget is
/// never smaller than requested). Zero stays zero (unbounded).
size_t SplitBudget(size_t budget, size_t shards) {
  if (budget == 0) return 0;
  return (budget + shards - 1) / shards;
}

}  // namespace

ResultCache::Shard::~Shard() {
  // The LRU list threads through every resident node exactly once; the
  // hash index shares the same nodes, so one sweep frees everything.
  lru.ForEach([](Node& node) {
    delete &node;
    return true;
  });
}

ResultCache::ResultCache(size_t max_entries, size_t max_bytes,
                         size_t num_shards) {
  if (num_shards == 0) {
    // Bounded caches default to a single shard so eviction remains exact
    // global LRU; unbounded caches only ever gain from striping.
    num_shards = (max_entries > 0 || max_bytes > 0) ? 1 : kDefaultShards;
  }
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_max_entries_ = SplitBudget(max_entries, num_shards);
  shard_max_bytes_ = SplitBudget(max_bytes, num_shards);
}

ResultCache::Node* ResultCache::FindLocked(const Shard& shard,
                                           const DomainCall& call,
                                           size_t hash) {
  return shard.index.Find(
      hash, [&](const Node& node) { return node.entry.call == call; });
}

void ResultCache::Put(DomainCall call, AnswerSet answers, bool complete,
                      uint64_t now) {
  const size_t hash = call.Hash();
  const size_t bytes = AnswerSetByteSize(answers);

  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard_max_bytes_ > 0 && bytes > shard_max_bytes_) {
    // The entry alone busts the byte budget: inserting it would evict
    // every resident entry and then the entry itself — reject instead.
    if (Node* stale = FindLocked(shard, call, hash)) {
      RemoveNodeLocked(shard, stale);
    }
    oversize_rejects_->Add(1);
    return;
  }
  if (Node* old = FindLocked(shard, call, hash)) {
    RemoveNodeLocked(shard, old);
  }
  Node* node = new Node;
  node->entry.call = std::move(call);
  node->entry.answers = std::move(answers);
  node->entry.complete = complete;
  node->entry.bytes = bytes;
  node->entry.inserted_at = now;
  node->entry.inserted_sim_ms = sim_clock_ms();
  shard.inserted_sim_sum_ms += node->entry.inserted_sim_ms;
  shard.total_bytes += bytes;
  ++shard.count;
  shard.index.Insert(node, hash);
  shard.lru.PushFront(node);
  insertions_->Add(1);
  EvictIfNeededLocked(shard);
}

std::optional<CacheEntry> ResultCache::Get(const DomainCall& call) {
  const size_t hash = call.Hash();
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  Node* node = FindLocked(shard, call, hash);
  if (node == nullptr) {
    misses_->Add(1);
    return std::nullopt;
  }
  hits_->Add(1);
  shard.lru.MoveToFront(node);
  return node->entry;
}

std::optional<CacheEntry> ResultCache::Peek(const DomainCall& call) const {
  const size_t hash = call.Hash();
  const Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  const Node* node = FindLocked(shard, call, hash);
  if (node == nullptr) return std::nullopt;
  return node->entry;
}

void ResultCache::Remove(const DomainCall& call) {
  const size_t hash = call.Hash();
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (Node* node = FindLocked(shard, call, hash)) {
    RemoveNodeLocked(shard, node);
  }
}

void ResultCache::RemoveNodeLocked(Shard& shard, Node* node) {
  shard.total_bytes -= node->entry.bytes;
  shard.inserted_sim_sum_ms -= node->entry.inserted_sim_ms;
  --shard.count;
  shard.index.Remove(node);
  IntrusiveList<Node, &Node::lru_node>::Remove(node);
  delete node;
}

void ResultCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.ForEach([](Node& node) {
      delete &node;
      return true;
    });
    shard->lru.Clear();
    shard->index.Clear();
    shard->total_bytes = 0;
    shard->count = 0;
    shard->inserted_sim_sum_ms = 0.0;
  }
}

void ResultCache::AdvanceSimClock(double delta_ms) {
  if (delta_ms <= 0.0) return;
  // std::atomic<double>::fetch_add is C++20 but not universally lock-free;
  // the CAS loop compiles everywhere and the clock is advanced at most
  // once per actual source call.
  double cur = sim_clock_ms_.load(std::memory_order_relaxed);
  while (!sim_clock_ms_.compare_exchange_weak(cur, cur + delta_ms,
                                              std::memory_order_relaxed)) {
  }
}

void ResultCache::ForEach(
    const std::function<bool(const CacheEntry& entry)>& fn) const {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    bool keep_going = true;
    shard->lru.ForEach([&](const Node& node) {
      keep_going = fn(node.entry);
      return keep_going;
    });
    if (!keep_going) return;
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->count;
  }
  return total;
}

size_t ResultCache::total_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->total_bytes;
  }
  return total;
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats merged;
  merged.hits = hits_->Value();
  merged.misses = misses_->Value();
  merged.insertions = insertions_->Value();
  merged.evictions = evictions_->Value();
  merged.oversize_rejects = oversize_rejects_->Value();
  return merged;
}

void ResultCache::ResetStats() {
  hits_->Reset();
  misses_->Reset();
  insertions_->Reset();
  evictions_->Reset();
  oversize_rejects_->Reset();
}

void ResultCache::BindMetrics(obs::MetricsRegistry& registry,
                              const std::string& domain) {
  obs::Labels labels = {{"domain", domain}};
  registry.Register("hermes_cache_hits_total", "Exact result-cache hits",
                    labels, hits_);
  registry.Register("hermes_cache_misses_total", "Exact result-cache misses",
                    labels, misses_);
  registry.Register("hermes_cache_insertions_total",
                    "Answer sets admitted into the result cache", labels,
                    insertions_);
  registry.Register("hermes_cache_evictions_total",
                    "Entries evicted by the LRU byte/entry budgets", labels,
                    evictions_);
  registry.Register("hermes_cache_oversize_rejects_total",
                    "Inserts refused for exceeding a shard's byte budget",
                    labels, oversize_rejects_);
  registry.RegisterCallbackGauge("hermes_cache_entries",
                                 "Entries currently resident in the cache",
                                 labels, [this] {
                                   return static_cast<double>(size());
                                 });
  registry.RegisterCallbackGauge(
      "hermes_cache_bytes", "Approximate bytes currently resident", labels,
      [this] { return static_cast<double>(total_bytes()); });
  for (size_t i = 0; i < shards_.size(); ++i) {
    obs::Labels shard_labels = labels;
    shard_labels.emplace_back("shard", std::to_string(i));
    Shard* shard = shards_[i].get();
    registry.RegisterCallbackGauge(
        "hermes_cache_entry_age_sim_ms",
        "Mean sim-clock age of this shard's resident entries", shard_labels,
        [this, shard] {
          std::lock_guard<std::mutex> lock(shard->mu);
          if (shard->count == 0) return 0.0;
          return sim_clock_ms() - shard->inserted_sim_sum_ms /
                                      static_cast<double>(shard->count);
        });
    registry.RegisterCallbackGauge(
        "hermes_cache_evict_age_sim_ms",
        "Sim-clock age of this shard's most recent LRU victim", shard_labels,
        [shard] {
          std::lock_guard<std::mutex> lock(shard->mu);
          return shard->last_evict_age_ms;
        });
  }
}

void ResultCache::EvictIfNeededLocked(Shard& shard) {
  while ((shard_max_entries_ > 0 && shard.count > shard_max_entries_) ||
         (shard_max_bytes_ > 0 && shard.total_bytes > shard_max_bytes_)) {
    Node* victim = shard.lru.PopBack();
    if (victim == nullptr) return;
    shard.total_bytes -= victim->entry.bytes;
    shard.inserted_sim_sum_ms -= victim->entry.inserted_sim_ms;
    shard.last_evict_age_ms = sim_clock_ms() - victim->entry.inserted_sim_ms;
    --shard.count;
    shard.index.Remove(victim);
    delete victim;
    evictions_->Add(1);
  }
}

}  // namespace hermes::cim
