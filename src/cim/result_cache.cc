#include "cim/result_cache.h"

namespace hermes::cim {

void ResultCache::Put(DomainCall call, AnswerSet answers, bool complete,
                      uint64_t now) {
  Remove(call);
  CacheEntry entry;
  entry.bytes = AnswerSetByteSize(answers);
  entry.call = std::move(call);
  entry.answers = std::move(answers);
  entry.complete = complete;
  entry.inserted_at = now;
  total_bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[lru_.front().call] = lru_.begin();
  ++stats_.insertions;
  EvictIfNeeded();
}

const CacheEntry* ResultCache::Get(const DomainCall& call) {
  auto it = index_.find(call);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  // Bump to front.
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
  return &*it->second;
}

const CacheEntry* ResultCache::Peek(const DomainCall& call) const {
  auto it = index_.find(call);
  return it == index_.end() ? nullptr : &*it->second;
}

void ResultCache::Remove(const DomainCall& call) {
  auto it = index_.find(call);
  if (it == index_.end()) return;
  total_bytes_ -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
}

void ResultCache::Clear() {
  lru_.clear();
  index_.clear();
  total_bytes_ = 0;
}

void ResultCache::ForEach(
    const std::function<bool(const CacheEntry& entry)>& fn) const {
  for (const CacheEntry& entry : lru_) {
    if (!fn(entry)) return;
  }
}

void ResultCache::EvictIfNeeded() {
  while ((max_entries_ > 0 && lru_.size() > max_entries_) ||
         (max_bytes_ > 0 && total_bytes_ > max_bytes_)) {
    if (lru_.empty()) return;
    const CacheEntry& victim = lru_.back();
    total_bytes_ -= victim.bytes;
    index_.erase(victim.call);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace hermes::cim
