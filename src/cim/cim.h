#ifndef HERMES_CIM_CIM_H_
#define HERMES_CIM_CIM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cim/result_cache.h"
#include "cim/substitution.h"
#include "domain/domain.h"
#include "lang/ast.h"

namespace hermes::cim {

/// Simulated processing-time parameters of the CIM module. These are
/// deliberately small relative to remote-call latencies — the paper found
/// "the overhead of checking the cache and the invariants without success
/// ... to be negligible".
struct CimCostParams {
  double exact_lookup_ms = 0.3;    ///< Hash probe into the result cache.
  double per_cached_answer_ms = 0.05;  ///< Streaming one answer from memory.
  /// Testing whether an invariant's call pattern applies at all (fails fast
  /// on a different function/arity) — charged for every invariant.
  double per_invariant_attempt_ms = 0.4;
  /// Processing a *matching* invariant: building the substitution and
  /// checking conditions.
  double per_invariant_ms = 25.0;
  double per_cache_probe_ms = 8.0; ///< Probing one cache entry during search.
  double per_compare_byte_ms = 0.12;  ///< Merging partial answers with the
                                      ///< actual call's (duplicate check).
};

/// Behavioural switches of the CIM module.
struct CimOptions {
  bool use_cache = true;       ///< Serve exact cache hits.
  bool use_invariants = true;  ///< Consult invariants on exact-miss.
  bool cache_results = true;   ///< Insert actual-call results into the cache.
  /// On a subset-invariant (partial) hit, still execute the actual call and
  /// merge (all-answers mode). When false the partial answers are returned
  /// as an incomplete set (interactive mode).
  bool complete_partial_hits = true;
  /// Serve stale cached partial/equality results when the source is
  /// temporarily unavailable instead of failing.
  bool mask_unavailability = true;
  /// Degradation-ladder fallback (see DESIGN.md "Failure model &
  /// resilience"): when the actual call fails Unavailable on a cache MISS,
  /// serve any cache entry that subsumes the call — stale and incomplete
  /// entries included — marked CallOutput::degraded instead of failing.
  /// Off by default: the historical miss-path behaviour is to fail.
  bool serve_stale_on_unavailable = false;
  /// Staleness bound: entries older than this many CIM calls are treated
  /// as absent (and dropped lazily). 0 disables aging. Result caches over
  /// *changing* sources need this — the paper's caches assume static
  /// sources, so the default keeps entries forever.
  uint64_t max_entry_age = 0;
};

/// Outcome counters of the CIM module — a snapshot view over CimDomain's
/// live obs counters (the one source of truth, also exposable through a
/// MetricsRegistry via BindMetrics).
struct CimStats {
  uint64_t exact_hits = 0;
  uint64_t equality_hits = 0;
  uint64_t partial_hits = 0;
  uint64_t misses = 0;
  uint64_t actual_calls = 0;
  uint64_t unavailable_masked = 0;
  uint64_t unavailable_failed = 0;
  uint64_t stale_serves = 0;  ///< Miss-path outages masked by stale entries.
};

/// How one CIM lookup was resolved — reported per call so concurrent
/// callers can attribute hit/miss outcomes to their own query without
/// diffing the shared counters (which is racy under concurrency).
enum class CimOutcome {
  kExactHit,
  kEqualityHit,
  kPartialHit,
  kMiss,
};

/// Section 4.1's Cache and Invariant Manager, packaged as a Domain.
///
/// "During run-time the CIM behaves like any other domain" — the execution
/// engine needs no special operators; the rule rewriter simply redirects
/// `in(X, d:f(args))` subgoals to the CIM wrapper of `d`. On each call CIM
/// tries, in order:
///   1. an exact cache hit,
///   2. an equality-invariant hit (a cached call the invariants prove
///      equivalent),
///   3. a subset-invariant hit (a cached call whose answers are a subset
///      of the requested call's) — served immediately as partial answers,
///      with the actual call executed in parallel to complete the set,
///   4. the actual domain call, whose result is then cached.
///
/// Concurrency: `RunWith`/`Run` are safe to call from many threads at once.
/// The result cache is internally lock-striped, outcome counters and the
/// staleness tick are relaxed atomics, and lookups operate on value
/// snapshots of cache entries (never on pointers into the cache). The
/// invariant list is the one piece of configuration state with no internal
/// lock: AddInvariant(s) must happen before concurrent serving starts
/// (Mediator enforces this by freezing wiring while a QueryPool serves).
class CimDomain : public Domain {
 public:
  /// `target_domain` is the logical domain name the mediator's rules and
  /// invariants use (e.g. "video"); incoming calls are normalized to it so
  /// that cache keys and invariant matching are independent of the CIM
  /// wrapper's own registry name (e.g. "cim_video").
  CimDomain(std::string name, std::string target_domain,
            std::shared_ptr<Domain> inner, CimOptions options = {},
            CimCostParams params = {}, size_t cache_max_entries = 0,
            size_t cache_max_bytes = 0, size_t cache_shards = 0)
      : name_(std::move(name)),
        target_domain_(std::move(target_domain)),
        inner_(std::move(inner)),
        options_(options),
        params_(params),
        cache_(cache_max_entries, cache_max_bytes, cache_shards) {}

  /// Registers an invariant. Invariants whose calls mention other domains
  /// are accepted and simply never match calls routed to this CIM.
  void AddInvariant(lang::Invariant invariant) {
    invariants_.push_back(std::move(invariant));
  }

  /// Parses and registers every invariant in `text`.
  Status AddInvariants(const std::string& text);

  const std::string& name() const override { return name_; }
  std::vector<FunctionInfo> Functions() const override {
    return inner_->Functions();
  }
  Result<CallOutput> Run(const DomainCall& call) override;
  using Domain::Run;

  /// How the CIM reaches the real source when the cache cannot (fully)
  /// answer. CacheInterceptor passes the rest of its pipeline; plain
  /// Run(call) passes the wrapped inner domain.
  using ActualCallFn = std::function<Result<CallOutput>(const DomainCall&)>;

  /// Section 4.1's lookup algorithm with the actual-call path factored out:
  /// exact hit → equality invariant → subset invariant (partial) → actual
  /// call via `actual`, whose complete results are inserted into the cache.
  /// When `outcome` is non-null it receives how the call was resolved.
  /// `prefer_stale` (brownout ladder) serves a stale complete entry
  /// directly instead of refreshing it, and arms the stale fallback for
  /// unavailable AND load-shed actual calls regardless of
  /// `serve_stale_on_unavailable` — shedding source load at the cost of
  /// degraded freshness.
  Result<CallOutput> RunWith(const DomainCall& raw_call,
                             const ActualCallFn& actual,
                             CimOutcome* outcome = nullptr,
                             bool prefer_stale = false);

  ResultCache& cache() { return cache_; }
  /// A coherent-enough snapshot of the outcome counters (each counter is
  /// individually exact; the set is not read atomically as a whole).
  CimStats stats() const;
  void ResetStats();

  /// Registers the outcome counters (and the inner cache's series) with
  /// `registry`, labeled {domain=<target domain>}.
  void BindMetrics(obs::MetricsRegistry& registry);
  CimOptions& options() { return options_; }
  Domain* inner() { return inner_.get(); }
  size_t num_invariants() const { return invariants_.size(); }

 private:
  /// A usable cached entry found through the invariants. Holds a value
  /// snapshot of the entry: a pointer would dangle as soon as a concurrent
  /// (or downstream RunActual) Put/eviction touched its shard.
  struct InvariantHit {
    CacheEntry entry;
    bool equality = false;   ///< True: answers identical; false: subset.
    double search_ms = 0.0;  ///< Simulated time spent finding it.
    std::string via;         ///< The invariant that justified the hit.
  };

  /// Scans the invariants (and, where needed, the cache) for an entry the
  /// invariants prove equal to — or a subset of — `call`'s answer set.
  /// Accumulates simulated search time in `*search_ms` even on failure.
  /// `allow_stale` admits aged-out entries (the stale-fallback ladder).
  std::optional<InvariantHit> FindViaInvariants(const DomainCall& call,
                                                double* search_ms,
                                                bool allow_stale = false);

  /// Attempts to find a cached entry matching `target` (which may still
  /// contain free variables) under `theta`, such that the invariant's
  /// conditions hold. Adds probe costs to `*search_ms`.
  std::optional<CacheEntry> ProbeForSpec(
      const lang::DomainCallSpec& target, const Substitution& theta,
      const std::vector<lang::Atom>& conditions, double* search_ms,
      bool allow_stale = false) const;

  /// Stale-fallback probe of the degradation ladder: any entry — stale or
  /// incomplete — that subsumes `call`, by exact key first, then through
  /// the invariants.
  std::optional<CacheEntry> FindStaleFallback(const DomainCall& call,
                                              double* search_ms);

  /// Serves answers straight from an owned entry snapshot (moves them out).
  CallOutput ServeFromCache(CacheEntry entry, double lead_ms,
                            bool complete) const;

  /// Runs the actual call through `actual`, caching on success.
  Result<CallOutput> RunActual(const DomainCall& call,
                               const ActualCallFn& actual);

  std::string name_;
  std::string target_domain_;
  std::shared_ptr<Domain> inner_;
  CimOptions options_;
  CimCostParams params_;
  /// True when `entry` is too old to serve under options_.max_entry_age.
  bool IsStale(const CacheEntry& entry) const;

  ResultCache cache_;
  std::vector<lang::Invariant> invariants_;

  // Live outcome counters (lock-light obs instruments; stats() snapshots
  // them, BindMetrics exposes them by reference).
  struct LiveStats {
    std::shared_ptr<obs::Counter> exact_hits = std::make_shared<obs::Counter>();
    std::shared_ptr<obs::Counter> equality_hits =
        std::make_shared<obs::Counter>();
    std::shared_ptr<obs::Counter> partial_hits =
        std::make_shared<obs::Counter>();
    std::shared_ptr<obs::Counter> misses = std::make_shared<obs::Counter>();
    std::shared_ptr<obs::Counter> actual_calls =
        std::make_shared<obs::Counter>();
    std::shared_ptr<obs::Counter> unavailable_masked =
        std::make_shared<obs::Counter>();
    std::shared_ptr<obs::Counter> unavailable_failed =
        std::make_shared<obs::Counter>();
    std::shared_ptr<obs::Counter> stale_serves =
        std::make_shared<obs::Counter>();
  };
  LiveStats stats_;
  std::atomic<uint64_t> tick_{0};  ///< Logical call counter for staleness.
};

}  // namespace hermes::cim

#endif  // HERMES_CIM_CIM_H_
