#include "cim/cache_interceptor.h"

namespace hermes::cim {

const std::string& CacheInterceptor::name() const {
  static const std::string kName = "cache";
  return kName;
}

Result<CallOutput> CacheInterceptor::Intercept(CallContext& ctx,
                                               const DomainCall& call,
                                               const Next& next) {
  // The outcome is reported per call rather than inferred by diffing the
  // CIM's shared counters, which would misattribute concurrent queries'
  // hits and misses to each other.
  CimOutcome outcome = CimOutcome::kMiss;
  Result<CallOutput> out = cim_->RunWith(
      call,
      [&ctx, &next](const DomainCall& actual) { return next(ctx, actual); },
      &outcome);

  if (outcome == CimOutcome::kMiss) {
    ++ctx.metrics.cache_misses;
  } else {
    ++ctx.metrics.cache_hits;
  }
  return out;
}

}  // namespace hermes::cim
