#include "cim/cache_interceptor.h"

namespace hermes::cim {

const std::string& CacheInterceptor::name() const {
  static const std::string kName = "cache";
  return kName;
}

Result<CallOutput> CacheInterceptor::Intercept(CallContext& ctx,
                                               const DomainCall& call,
                                               const Next& next) {
  const CimStats& stats = cim_->stats();
  uint64_t hits_before =
      stats.exact_hits + stats.equality_hits + stats.partial_hits;
  uint64_t misses_before = stats.misses;

  Result<CallOutput> out = cim_->RunWith(
      call, [&ctx, &next](const DomainCall& actual) {
        return next(ctx, actual);
      });

  ctx.metrics.cache_hits +=
      stats.exact_hits + stats.equality_hits + stats.partial_hits -
      hits_before;
  ctx.metrics.cache_misses += stats.misses - misses_before;
  return out;
}

}  // namespace hermes::cim
