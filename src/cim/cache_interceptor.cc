#include "cim/cache_interceptor.h"

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace hermes::cim {

namespace {

const char* OutcomeName(CimOutcome outcome) {
  switch (outcome) {
    case CimOutcome::kExactHit: return "exact-hit";
    case CimOutcome::kEqualityHit: return "equality-hit";
    case CimOutcome::kPartialHit: return "partial-hit";
    case CimOutcome::kMiss: return "miss";
  }
  return "unknown";
}

}  // namespace

const std::string& CacheInterceptor::name() const {
  static const std::string kName = "cache";
  return kName;
}

Result<CallOutput> CacheInterceptor::Intercept(CallContext& ctx,
                                               const DomainCall& call,
                                               const Next& next) {
  // The outcome is reported per call rather than inferred by diffing the
  // CIM's shared counters, which would misattribute concurrent queries'
  // hits and misses to each other.
  CimOutcome outcome = CimOutcome::kMiss;
  obs::SpanScope lookup(ctx.tracer, "cache-lookup", "cache", ctx.now_ms);
  Result<CallOutput> out = cim_->RunWith(
      call,
      [&ctx, &next](const DomainCall& actual) { return next(ctx, actual); },
      &outcome, ctx.prefer_stale);

  if (outcome == CimOutcome::kMiss) {
    ++ctx.metrics.cache_misses;
  } else {
    ++ctx.metrics.cache_hits;
  }
  if (ctx.recorder != nullptr) {
    obs::FlightEvent ev =
        obs::FlightEvent::Make(obs::FlightEventKind::kCacheOutcome,
                               ctx.query_id, ctx.recorder_seq++, ctx.now_ms);
    ev.set_domain(call.domain);
    ev.set_detail(OutcomeName(outcome));
    if (out.ok()) {
      ev.value = out->all_ms;
      ev.aux = out->answers.size();
    }
    ctx.recorder->Emit(ev);
  }
  if (out.ok() && out->degraded) {
    // Cached answers stood in for an unreachable source: the query still
    // succeeds, but its completeness is reported as degraded. Flip the
    // underlying failure's source error to masked (or record one if no
    // resilience layer ran below us).
    ++ctx.metrics.degraded_calls;
    bool masked = false;
    for (auto it = ctx.source_errors.rbegin(); it != ctx.source_errors.rend();
         ++it) {
      if (it->function == call.function && !it->masked) {
        it->masked = true;
        masked = true;
        break;
      }
    }
    if (!masked) {
      SourceError err;
      err.site = ctx.last_failure_site;
      err.domain = cim_->inner() != nullptr ? cim_->inner()->name()
                                            : call.domain;
      err.function = call.function;
      err.cause = ctx.last_failure_cause.empty() ? "unavailable"
                                                 : ctx.last_failure_cause;
      err.message = "served degraded answers from cache";
      err.t_ms = ctx.now_ms;
      err.masked = true;
      ctx.source_errors.push_back(std::move(err));
    }
  }
  if (lookup.active()) {
    lookup.AddArg("outcome", OutcomeName(outcome));
    if (out.ok()) {
      lookup.set_sim_end(ctx.now_ms + out->all_ms);
      if (out->degraded) lookup.AddArg("degraded", "true");
    }
    if (!out.ok()) lookup.MarkFailed(out.status().ToString());
  }
  return out;
}

}  // namespace hermes::cim
