#ifndef HERMES_ENGINE_MEDIATOR_H_
#define HERMES_ENGINE_MEDIATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cim/cim.h"
#include "common/result.h"
#include "dcsm/dcsm.h"
#include "domain/pipeline.h"
#include "domain/registry.h"
#include "engine/executor.h"
#include "lang/ast.h"
#include "net/network.h"
#include "net/network_interceptor.h"
#include "optimizer/optimizer.h"

namespace hermes {

/// Per-query options of Mediator::Query().
struct QueryOptions {
  /// Run the rewriter + cost-based optimizer; false executes the query and
  /// rules exactly as written.
  bool use_optimizer = true;
  optimizer::OptimizationGoal goal = optimizer::OptimizationGoal::kAllAnswers;
  engine::ExecutionMode mode = engine::ExecutionMode::kAllAnswers;
  size_t interactive_batch = 1;
  /// Redirect calls to CIM wrappers where one exists. With the optimizer
  /// on, both direct and CIM plans are generated and costed; with it off,
  /// every wrapped domain is redirected unconditionally.
  bool use_cim = true;
  /// With the optimizer on: emit only CIM-redirected candidate plans.
  bool cim_only = false;
  bool record_statistics = true;  ///< Feed executed calls into the DCSM.
  bool collect_trace = false;     ///< Fill QueryExecution::trace.
};

/// Network traffic attributable to one query. Derived from the query's
/// CallContext metrics (the network layer attributes per-query), never by
/// diffing the shared simulator's global statistics.
struct QueryTraffic {
  uint64_t remote_calls = 0;
  uint64_t failures = 0;       ///< Calls lost to unavailable sites.
  uint64_t bytes = 0;
  double charge = 0.0;         ///< Financial access fees accrued.
};

/// The answers plus optimizer/engine diagnostics of one query.
struct QueryResult {
  engine::QueryExecution execution;
  /// Every candidate plan the optimizer considered (empty when it did not
  /// run), with estimates filled where estimatable.
  std::vector<optimizer::CandidatePlan> candidates;
  std::string plan_description;     ///< Which plan was executed.
  CostVector predicted;             ///< DCSM's prediction for that plan.
  bool predicted_valid = false;
  double optimize_ms = 0.0;         ///< Simulated optimizer time.
  QueryTraffic traffic;             ///< Remote calls/bytes/charges used.
  /// Per-layer counters of this query's call path (trace/stats/cache/
  /// network), accumulated through its CallContext.
  CallMetrics metrics;
};

/// Top-level facade of the mediator system — the public API a downstream
/// user programs against. Owns the domain registry, the network simulator,
/// the DCSM, per-domain CIM state, the optimizer and the executor.
///
/// Domains are registered as declarative interceptor stacks (PipelineDomain):
/// RegisterRemoteDomain installs [network → domain], EnableCaching installs
/// [cache → network → domain] under "cim_<name>". At query time the executor
/// prepends its trace and stats layers and threads a per-query CallContext
/// through the whole stack, which is where QueryResult::traffic/metrics
/// come from.
///
/// Typical use:
///   Mediator med;
///   med.RegisterRemoteDomain("video", avis, net::ItalySite());
///   med.EnableCaching("video");
///   med.AddInvariants("F2 <= F1 & L1 <= L2 => "
///       "video:frames_to_objects(V,F2,L2) >= video:frames_to_objects(V,F1,L1).");
///   med.LoadProgram("actors(A) :- in(A, video:frames_to_objects('rope', 1, 9000)).");
///   auto res = med.Query("?- actors(A).", {});
class Mediator {
 public:
  Mediator();
  explicit Mediator(uint64_t network_seed);

  Mediator(const Mediator&) = delete;
  Mediator& operator=(const Mediator&) = delete;

  // ---- Domain wiring -------------------------------------------------------

  /// Registers a local (same-machine) domain under `name`.
  Status RegisterDomain(const std::string& name,
                        std::shared_ptr<Domain> domain);

  /// Registers `inner` under `name`, behind a simulated link to `site`.
  Status RegisterRemoteDomain(const std::string& name,
                              std::shared_ptr<Domain> inner,
                              net::SiteParams site);

  /// Wraps the domain registered as `name` with a CIM (cache + invariant
  /// manager), registered as "cim_<name>". Idempotent per name.
  Status EnableCaching(const std::string& name, cim::CimOptions options = {},
                       cim::CimCostParams params = {},
                       size_t cache_max_entries = 0,
                       size_t cache_max_bytes = 0);

  /// Parses invariants and installs each into the CIM of its lhs domain
  /// (EnableCaching must have been called for that domain).
  Status AddInvariants(const std::string& text);

  /// Registers the domain's native cost model with the DCSM (the domain
  /// must return true from HasCostModel()).
  Status UseNativeCostModel(const std::string& name);

  // ---- Program management -----------------------------------------------------

  /// Parses `text` and appends its rules to the mediator program.
  Status LoadProgram(const std::string& text);
  /// Reads a rule file and appends its rules.
  Status LoadProgramFile(const std::string& path);
  void ClearProgram() { program_.rules.clear(); }
  const lang::Program& program() const { return program_; }

  // ---- Querying ---------------------------------------------------------------

  Result<QueryResult> Query(const std::string& query_text,
                            const QueryOptions& options = {});

  /// Optimizes without executing (returns the ranked candidates).
  Result<optimizer::OptimizerResult> Plan(const std::string& query_text,
                                          const QueryOptions& options = {});

  // ---- Introspection ------------------------------------------------------------

  dcsm::Dcsm& dcsm() { return dcsm_; }
  net::NetworkSimulator& network() { return *network_; }
  std::shared_ptr<net::NetworkSimulator> network_ptr() { return network_; }
  DomainRegistry& registry() { return registry_; }
  /// The CIM wrapper of `name`, or nullptr when caching is not enabled.
  cim::CimDomain* cim(const std::string& name);
  /// The network layer of the domain registered under `name` (the original
  /// registration name, e.g. "video"), or nullptr when the domain is local.
  /// Failure-injection scenarios use it to take a site down mid-run.
  net::NetworkInterceptor* remote_link(const std::string& name);
  /// Names of domains with CIM wrappers.
  std::vector<std::string> CachedDomains() const;

  optimizer::RuleRewriter::Options& rewriter_options() {
    return rewriter_options_;
  }
  optimizer::EstimatorParams& estimator_params() { return estimator_params_; }
  engine::ExecutorOptions& executor_options() { return executor_options_; }

 private:
  Result<lang::Query> ParseAndPrepare(const std::string& query_text);
  optimizer::RuleRewriter::Options EffectiveRewriterOptions(
      const QueryOptions& options) const;

  DomainRegistry registry_;
  std::shared_ptr<net::NetworkSimulator> network_;
  dcsm::Dcsm dcsm_;
  lang::Program program_;
  uint64_t next_query_id_ = 0;
  std::map<std::string, std::shared_ptr<cim::CimDomain>> cims_;
  optimizer::RuleRewriter::Options rewriter_options_;
  optimizer::EstimatorParams estimator_params_;
  engine::ExecutorOptions executor_options_;
};

}  // namespace hermes

#endif  // HERMES_ENGINE_MEDIATOR_H_
